// Package wayfinder is the public API of the Wayfinder OS-specialization
// framework — a from-scratch Go reproduction of "Wayfinder: Automated
// Operating System Specialization" (EuroSys 2026).
//
// Wayfinder specializes an operating system's configuration (compile-time,
// boot-time, and runtime parameters) for a target application, workload,
// and metric, fully automatically. The framework couples an automated
// benchmarking pipeline (configure → build → boot → benchmark, with
// virtual-time accounting) with pluggable search algorithms, of which
// DeepTune — a multitask neural network predicting configuration
// performance, crash probability, and uncertainty — is the paper's
// contribution.
//
// # Quick start
//
// The one-liner: build a session and run it to completion.
//
//	model := wayfinder.NewLinuxModel()                  // simulated kernel
//	model.Space.Favor(wayfinder.CompileTime, 0)         // runtime search
//	app := wayfinder.AppNginx()
//	session, err := wayfinder.New(model, app,
//	    wayfinder.WithBudget(250, 0),
//	    wayfinder.WithSeed(7),
//	)
//	report, err := session.Run(context.Background())
//
// The default strategy is DeepTune; WithSearcher selects another, and
// WithMetric another objective (memory footprint, throughput–memory
// score). Run honors the context: on cancellation or deadline it returns
// ctx.Err() together with a valid partial report — the exact observation
// prefix of the uninterrupted run — and the session can be continued
// afterwards.
//
// # Sessions are first-class
//
// A Session is an explicit state machine advanced one observation at a
// time, which is what a multiplexing daemon needs to interleave many
// sessions over one warm fleet, and what custom stopping rules hook into:
//
//	for !session.Done() {
//	    session.Step(1)                       // exactly one observation
//	    if session.Report().CrashRate() > 0.5 {
//	        break                             // custom stopping rule
//	    }
//	}
//
// Typed events stream in deterministic observation order — EvalDone,
// NewBest, CacheEvent, RoundBarrier, Progress, SessionDone — for live
// rendering (wfctl -progress) or fan-out:
//
//	events := session.Events() // subscribe before running
//	go session.Run(ctx)
//	for ev := range events {
//	    if best, ok := ev.(wayfinder.NewBest); ok {
//	        fmt.Println("new best:", best.Result.Metric)
//	    }
//	}
//
// Sessions checkpoint and resume byte-identically — searcher state
// included, via the search package's Checkpointable interface (Random,
// RandomMutate, Grid, Bayesian, DeepTune):
//
//	snap, err := session.Snapshot()           // []byte, JSON
//	...
//	resumed, err := wayfinder.Resume(model, app, snap,
//	    wayfinder.WithSearcher(freshSearcherSameArgs))
//	report, err := resumed.Run(ctx)           // ≡ the uninterrupted run
//
// # Parallel evaluation
//
// Sessions parallelize across simulated worker VMs, as the paper's
// platform does: WithWorkers(W) evaluates W configurations concurrently
// with deterministic per-worker noise streams and per-worker virtual
// clocks merged into a wall-clock. WithAsync(staleness) replaces the round
// barrier with the event-driven bounded-staleness scheduler (one slow
// build no longer stalls the pool), and WithHosts(H) splits the fleet
// across hosts sharing per-host artifact-store partitions with a
// cross-host transfer cost:
//
//	session, err := wayfinder.New(model, app,
//	    wayfinder.WithSearcher(searcher),
//	    wayfinder.WithWorkers(8),
//	    wayfinder.WithAsync(-1),              // unbounded asynchrony
//	    wayfinder.WithHosts(4),
//	    wayfinder.WithBudget(250, 0),
//	    wayfinder.WithSeed(7),
//	)
//
// Reproducibility is a platform invariant: reports, event streams, and
// resumed sessions are pure functions of (seed, workers, staleness,
// hosts), never of goroutine scheduling.
//
// The report carries the best configuration found, the full history, and
// the crash-rate/performance series the paper's figures plot. See the
// examples/ directory for runnable end-to-end programs (examples/streaming
// consumes the event stream) and cmd/wfbench for the reproduction of every
// table and figure in the paper's evaluation.
package wayfinder

import (
	"context"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/core"
	"wayfinder/internal/cozart"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/fault"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
	"wayfinder/internal/vm"
)

// Re-exported configuration-space types.
type (
	// Space is an ordered collection of typed OS configuration parameters.
	Space = configspace.Space
	// Param is one configuration parameter.
	Param = configspace.Param
	// Config is a concrete assignment over a Space (a "permutation").
	Config = configspace.Config
	// Value is a parameter value.
	Value = configspace.Value
	// Job is a parsed YAML job file (§3.1/§3.4).
	Job = configspace.Job
)

// Parameter classes (when in the OS lifecycle a parameter applies).
const (
	CompileTime = configspace.CompileTime
	BootTime    = configspace.BootTime
	Runtime     = configspace.Runtime
)

// Re-exported simulator types.
type (
	// Model is a simulated OS profile (visible space + hidden ground truth).
	Model = simos.Model
	// App is an application workload under test.
	App = simos.App
)

// Re-exported engine types.
type (
	// SessionOptions configures a search session.
	SessionOptions = core.Options
	// Report summarizes a session.
	Report = core.Report
	// EvalResult is one evaluated configuration.
	EvalResult = core.Result
	// Metric maps a configuration evaluation to the optimization target.
	Metric = core.Metric
	// PerfMetric optimizes the application's benchmark metric.
	PerfMetric = core.PerfMetric
	// MemoryMetric minimizes the booted image's footprint.
	MemoryMetric = core.MemoryMetric
	// ScoreMetric co-optimizes throughput and memory (Eq. 4).
	ScoreMetric = core.ScoreMetric
	// ParamImpact is a learned parameter-importance estimate.
	ParamImpact = core.ParamImpact
	// HostStats is one host's per-host report breakdown
	// (Report.HostBreakdown).
	HostStats = core.HostStats
)

// Re-exported fault-injection types (internal/fault): a deterministic,
// serializable schedule of virtual-time fleet faults a session replays
// exactly — same schedule, same seed, same topology → byte-identical
// report.
type (
	// FaultSchedule is a deterministic schedule of virtual-time fleet
	// faults plus the retry policy governing lost observations.
	FaultSchedule = fault.Schedule
	// FaultEvent is one scheduled fault.
	FaultEvent = fault.Event
	// RetryPolicy bounds re-dispatch attempts and paces their backoff.
	RetryPolicy = fault.RetryPolicy
)

// Dispatch policy names for SessionOptions.Dispatch / WithDispatchPolicy.
const (
	// DispatchStatic is the historical static placement (iteration i on
	// worker i mod W in rounds; first idle worker asynchronously).
	DispatchStatic = core.DispatchStatic
	// DispatchLocality prefers placing an evaluation on a worker that
	// already holds its image — its own disk, then its host's store
	// partition — falling back to the static choice.
	DispatchLocality = core.DispatchLocality
)

// ParseFaultSchedule parses the compact fault-schedule DSL shared by the
// CLIs and the daemon spec: comma-separated "down:HOST@SEC",
// "up:HOST@SEC", "preempt:WORKER@SEC", "buildfail:ITER#ATTEMPT",
// "bootfail:ITER#ATTEMPT", and "retry:MAX/BACKOFF/MULT" items. An empty
// string parses to nil (no faults).
func ParseFaultSchedule(src string) (*FaultSchedule, error) { return fault.Parse(src) }

// Searcher decides which configuration to evaluate next (§3.1's pluggable
// search-algorithm API).
type Searcher = search.Searcher

// BatchSearcher is the concurrency-safe batch protocol parallel sessions
// speak; single-proposal searchers are adapted automatically, so custom
// strategies only implement it when they can propose smarter batches.
type BatchSearcher = search.BatchSearcher

// DeepTuneConfig holds the DTM hyperparameters.
type DeepTuneConfig = deeptune.Config

// Clock is the virtual clock evaluation costs are charged to.
type Clock = vm.Clock

// NewLinuxModel returns the simulated Linux kernel profile at the
// experiment scale used throughout the paper's §4.1.
func NewLinuxModel() *Model { return simos.NewLinux(simos.DefaultLinuxOptions()) }

// NewUnikraftModel returns the simulated Unikraft unikernel profile
// (§4.4, Fig 9).
func NewUnikraftModel() *Model { return simos.NewUnikraft(1) }

// NewRiscvModel returns the RISC-V Linux profile used for memory-footprint
// minimization (§4.4, Fig 10).
func NewRiscvModel() *Model { return simos.NewRiscv(simos.DefaultRiscvOptions()) }

// AppNginx returns the Nginx/wrk workload.
func AppNginx() *App { return apps.Nginx() }

// AppRedis returns the Redis/redis-benchmark workload.
func AppRedis() *App { return apps.Redis() }

// AppSQLite returns the SQLite/db_bench workload.
func AppSQLite() *App { return apps.SQLite() }

// AppNPB returns the NAS Parallel Benchmarks workload.
func AppNPB() *App { return apps.NPB() }

// AppByName resolves an application by name ("nginx", "redis", "sqlite",
// "npb").
func AppByName(name string) (*App, error) { return apps.ByName(name) }

// DefaultDeepTuneConfig returns the DTM hyperparameters used in the
// paper's experiments.
func DefaultDeepTuneConfig() DeepTuneConfig { return deeptune.DefaultConfig() }

// NewDeepTuneSearcher returns the DeepTune search strategy (§3.2).
func NewDeepTuneSearcher(space *Space, maximize bool, cfg DeepTuneConfig) *search.DeepTune {
	return search.NewDeepTune(space, maximize, cfg)
}

// NewRandomSearcher returns the random-search baseline.
func NewRandomSearcher(space *Space, seed uint64) *search.Random {
	return search.NewRandom(space, seed)
}

// NewRandomMutateSearcher returns the mutation-based random baseline used
// for compile-time exploration.
func NewRandomMutateSearcher(space *Space, k int, seed uint64) *search.RandomMutate {
	return search.NewRandomMutate(space, k, seed)
}

// NewGridSearcher returns the grid-search strategy.
func NewGridSearcher(space *Space) *search.Grid { return search.NewGrid(space) }

// NewBayesianSearcher returns the Bayesian-optimization baseline.
func NewBayesianSearcher(space *Space, maximize bool, seed uint64) *search.Bayesian {
	return search.NewBayesian(space, maximize, seed)
}

// NewUnicornSearcher returns the causal-inference comparator (Fig 7).
func NewUnicornSearcher(space *Space, maximize bool, seed uint64) *search.Unicorn {
	return search.NewUnicorn(space, maximize, seed)
}

// ParseJob parses a YAML job file (§3.1, §3.4).
func ParseJob(src string) (*Job, error) { return configspace.ParseJobYAML(src) }

// Specialize runs one search session with the application's own benchmark
// metric, on a fresh virtual clock, and returns the report.
//
// Deprecated: Specialize is the v1 blocking entry point, kept working as a
// thin wrapper over the Session API. New code should construct a session —
// wayfinder.New(model, app, WithSearcher(s), WithOptions(opts)) — and call
// Run(ctx), which adds cancellation, stepping, events, and checkpointing.
func Specialize(model *Model, app *App, s Searcher, opts SessionOptions) (*Report, error) {
	return SpecializeMetric(model, app, &core.PerfMetric{App: app}, s, opts)
}

// SpecializeMetric is Specialize with an explicit optimization metric
// (memory footprint, throughput–memory score, ...).
//
// Deprecated: like Specialize, kept as a wrapper over the Session API. Use
// wayfinder.New with WithMetric and WithSearcher instead.
func SpecializeMetric(model *Model, app *App, metric Metric, s Searcher, opts SessionOptions) (*Report, error) {
	session, err := New(model, app, WithMetric(metric), WithSearcher(s), WithOptions(opts))
	if err != nil {
		return nil, err
	}
	return session.Run(context.Background())
}

// CozartDebloat applies the Cozart-style compile-time debloater to a
// model: it traces the workload, derives a reduced baseline configuration,
// rebases the space defaults onto it, and returns the baseline (§4.4).
func CozartDebloat(model *Model, app *App, seed uint64) (*Config, error) {
	return cozart.Apply(model, app, seed)
}

// HighImpactParams queries a trained DeepTune searcher for the parameters
// it learned to be most performance-impactful (§4.1).
func HighImpactParams(s *search.DeepTune, model *Model, ref *Config, maximize bool) []ParamImpact {
	return core.HighImpactParams(s.Selector().Model(), s.Selector().Encoder(), model.Space, ref, maximize)
}
