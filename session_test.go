// Public Session API tests: the v2 lifecycle against the deprecated
// blocking entry points, the functional-option surface, and the
// snapshot/resume path as library callers drive it. The exhaustive
// byte-equivalence matrix (all schedulers × all Checkpointable searchers ×
// Step/cancel/resume) lives in internal/core/session_test.go; these tests
// pin the public wiring on top of it.
package wayfinder

import (
	"context"
	"encoding/json"
	"testing"

	"wayfinder/internal/simos"
)

// testModel is a reduced Linux profile for fast public-API tests.
func testModel() *Model {
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 40, FillerBoot: 5, FillerCompile: 10, Seed: 1})
	m.Space.Favor(CompileTime, 0)
	return m
}

// reportJSON canonicalizes a report (decision costs are wall time).
func reportJSON(t *testing.T, rep *Report) string {
	t.Helper()
	cp := *rep
	cp.History = append([]EvalResult(nil), rep.History...)
	for i := range cp.History {
		cp.History[i].DecisionCost = 0
	}
	if cp.Best != nil {
		best := *cp.Best
		best.DecisionCost = 0
		cp.Best = &best
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSessionMatchesSpecialize: the deprecated one-liner and the Session
// lifecycle are the same session, byte for byte, across schedulers.
func TestSessionMatchesSpecialize(t *testing.T) {
	optsMatrix := []SessionOptions{
		{Iterations: 24, Seed: 5},
		{Iterations: 24, Seed: 5, Workers: 8},
		{Iterations: 24, Seed: 5, Workers: 8, Async: true, Staleness: -1, Hosts: 2},
	}
	for i, opts := range optsMatrix {
		m1 := testModel()
		app := AppNginx()
		legacy, err := Specialize(m1, app, NewRandomSearcher(m1.Space, 5), opts)
		if err != nil {
			t.Fatal(err)
		}
		m2 := testModel()
		session, err := New(m2, app,
			WithSearcher(NewRandomSearcher(m2.Space, 5)),
			WithOptions(opts),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := session.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if reportJSON(t, legacy) != reportJSON(t, rep) {
			t.Fatalf("case %d: Session.Run diverged from Specialize", i)
		}
	}
}

// TestSessionFaultOptions pins the public fault wiring: the DSL parses,
// WithFaultSchedule/WithDispatchPolicy drive a deterministic faulted
// session end to end, and Resume rejects both (a schedule is session
// topology — it rides in the snapshot, not the resume call).
func TestSessionFaultOptions(t *testing.T) {
	sched, err := ParseFaultSchedule("down:1@100,up:1@600,buildfail:3#1,retry:3/15/2")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Report {
		m := testModel()
		session, err := New(m, AppNginx(),
			WithSearcher(NewRandomSearcher(m.Space, 5)),
			WithOptions(SessionOptions{Iterations: 24, Seed: 5, Workers: 8, Hosts: 2}),
			WithFaultSchedule(sched),
			WithDispatchPolicy(DispatchLocality),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := session.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if reportJSON(t, a) != reportJSON(t, b) {
		t.Fatal("faulted public session diverged between identical runs")
	}
	if len(a.History) != 24 || a.LostObservations != 0 {
		t.Fatalf("history %d, lost %d — churn cost coverage", len(a.History), a.LostObservations)
	}
	if a.Retries == 0 {
		t.Fatal("injected failure produced no retries")
	}

	m := testModel()
	session, err := New(m, AppNginx(),
		WithSearcher(NewRandomSearcher(m.Space, 5)),
		WithOptions(SessionOptions{Iterations: 24, Seed: 5}))
	if err != nil {
		t.Fatal(err)
	}
	session.Step(4)
	snap, err := session.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2 := testModel()
	if _, err := Resume(m2, AppNginx(), snap,
		WithSearcher(NewRandomSearcher(m2.Space, 5)),
		WithFaultSchedule(sched)); err == nil {
		t.Fatal("Resume accepted WithFaultSchedule; schedules must ride in the snapshot")
	}
}

// TestSessionEventsChannel: the channel view delivers the full typed
// stream and closes at completion.
func TestSessionEventsChannel(t *testing.T) {
	m := testModel()
	app := AppNginx()
	session, err := New(m, app,
		WithSearcher(NewRandomSearcher(m.Space, 3)),
		WithWorkers(4),
		WithBudget(16, 0),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	events := session.Events()
	go session.Run(context.Background())
	evalDone, sawDone := 0, false
	for ev := range events {
		switch ev.(type) {
		case EvalDone:
			evalDone++
		case SessionDone:
			sawDone = true
		}
	}
	if evalDone != 16 || !sawDone {
		t.Fatalf("channel delivered %d EvalDone events (want 16), SessionDone=%v", evalDone, sawDone)
	}
}

// TestPublicResume: the library-level snapshot/resume round trip, with the
// budget extended on resume.
func TestPublicResume(t *testing.T) {
	app := AppNginx()
	build := func() (*Model, *Session) {
		m := testModel()
		s, err := New(m, app,
			WithSearcher(NewBayesianSearcher(m.Space, true, 9)),
			WithWorkers(4),
			WithBudget(20, 0),
			WithSeed(9),
		)
		if err != nil {
			t.Fatal(err)
		}
		return m, s
	}
	_, full := build()
	fullRep, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	_, sess := build()
	if n := sess.Step(7); n != 7 {
		t.Fatalf("Step(7) advanced %d", n)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m := testModel()
	resumed, err := Resume(m, app, snap, WithSearcher(NewBayesianSearcher(m.Space, true, 9)))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Observed() != 7 {
		t.Fatalf("resumed at %d observations", resumed.Observed())
	}
	rep, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, fullRep) != reportJSON(t, rep) {
		t.Fatal("public resume diverged from the uninterrupted session")
	}

	// Topology overrides are refused on resume; budget extension works.
	if _, err := Resume(testModel(), app, snap, WithWorkers(8)); err == nil {
		t.Fatal("Resume accepted a topology override")
	}
	m2 := testModel()
	extended, err := Resume(m2, app, snap,
		WithSearcher(NewBayesianSearcher(m2.Space, true, 9)),
		WithBudget(30, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	extRep, err := extended.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(extRep.History) != 30 {
		t.Fatalf("extended resume ran %d observations, want 30", len(extRep.History))
	}
	// The first 20 observations are the original session's exactly.
	for i := range fullRep.History {
		a, b := fullRep.History[i], extRep.History[i]
		a.DecisionCost, b.DecisionCost = 0, 0
		if a.ConfigKV == nil && a.Config != nil {
			a.ConfigKV = a.Config.KV()
		}
		if b.ConfigKV == nil && b.Config != nil {
			b.ConfigKV = b.Config.KV()
		}
		aj, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(aj) != string(bj) {
			t.Fatalf("extended-resume history[%d] diverged", i)
		}
	}
}

// TestCloseThenContinue: closing the event stream releases consumers but
// leaves the session steppable — later events are dropped, not sent on a
// closed channel.
func TestCloseThenContinue(t *testing.T) {
	m := testModel()
	app := AppNginx()
	session, err := New(m, app,
		WithSearcher(NewRandomSearcher(m.Space, 2)),
		WithBudget(10, 0),
		WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	events := session.Events()
	session.Step(3)
	session.Close()
	for range events { // the consumer's range loop ends
	}
	if n := session.Step(7); n != 7 { // would panic before the drop guard
		t.Fatalf("Step after Close advanced %d", n)
	}
	if n := session.Step(1); n != 0 { // budget exhausted: discovers done
		t.Fatalf("Step past the budget advanced %d", n)
	}
	if !session.Done() || len(session.Report().History) != 10 {
		t.Fatalf("session did not complete after Close: done=%v history=%d",
			session.Done(), len(session.Report().History))
	}
}

// TestNewValidation: construction-time validation surfaces the centralized
// option errors.
func TestNewValidation(t *testing.T) {
	m := testModel()
	app := AppNginx()
	if _, err := New(m, app); err == nil {
		t.Fatal("New accepted a session without a budget")
	}
	if _, err := New(m, app, WithBudget(10, 0), WithWorkers(2), WithHosts(4)); err == nil {
		t.Fatal("New accepted more hosts than workers")
	}
	if _, err := New(nil, app, WithBudget(10, 0)); err == nil {
		t.Fatal("New accepted a nil model")
	}
}
