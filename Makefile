# Wayfinder build/test entry points. CI (.github/workflows/ci.yml) runs
# exactly these targets, so a green `make ci` locally means a green build.

GO ?= go

# Lint tooling is pinned so local runs and CI agree on what "clean"
# means. `make tools` installs both; `make lint` runs whatever is
# present and prints install instructions for what is not, so a machine
# without network access (or without the tools) degrades to a warning
# instead of a red build.
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race fmt vet vet-wf bench bench-cache bench-search \
	smoke smoke-wfd smoke-window smoke-faults smoke-transfer tools lint cover ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# vet-wf runs the repository's own determinism-invariant analyzers
# (cmd/wfvet: walltime, globalrand, maprange, floateq) over the whole
# tree. A finding is a red build; deliberate violations carry a
# //wfvet:ignore <analyzer> <reason> pragma in source.
vet-wf:
	$(GO) run ./cmd/wfvet ./...

tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# lint runs staticcheck and govulncheck when they are installed and
# degrades to a warning when they are not, so `make lint` is safe to run
# everywhere while CI (which runs `make tools` first) gets the real
# checks.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (make tools installs $(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (make tools installs $(GOVULNCHECK_VERSION))"; \
	fi

# cover enforces coverage floors on the packages that carry the
# correctness guarantees: the deterministic engine and the daemon's
# scheduler/journal/recovery machinery.
COVER_FLOOR_CORE ?= 85
COVER_FLOOR_WFD  ?= 85

cover:
	@set -e; \
	check() { \
		pkg=$$1; floor=$$2; \
		pct=$$($(GO) test -cover "$$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$pkg"; exit 1; fi; \
		echo "cover: $$pkg $$pct% (floor $$floor%)"; \
		if [ "$$(awk "BEGIN{print ($$pct < $$floor)}")" = 1 ]; then \
			echo "cover: $$pkg coverage $$pct% is below the $$floor% floor"; exit 1; \
		fi; \
	}; \
	check ./internal/core $(COVER_FLOOR_CORE); \
	check ./internal/wfd $(COVER_FLOOR_WFD)

# bench is a smoke pass: one iteration per benchmark, no tests. The
# scheduler benchmarks (worker pool, async event queue, straggler study)
# additionally run under the race detector, so the concurrent dispatch
# paths are raced on every push without paying race overhead on the
# heavyweight model-training benchmarks.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
	$(GO) test -race -bench='Parallel|Straggler|Scaling' -benchtime=1x -run='^$$' .

# bench-cache races the artifact-cache and fleet-topology benchmarks: the
# shared-store dedup (in-flight build tickets, two-wave batch execution,
# cross-host fetches) is the newest concurrent machinery, so it gets its
# own race-detector smoke on every push.
bench-cache:
	$(GO) test -race -bench='CacheHit|Fleet' -benchtime=1x -run='^$$' .

# bench-search races the incremental-surrogate hot paths: the in-place
# Cholesky extension vs the full-refit baseline, the sliding-window add
# (extend + rank-1 downdate), the batched acquisition paths (batch EI and
# the DTM pool pass, each with a 0-alloc steady-state assertion), the
# native constant-liar Bayesian batch proposal, and the DeepTune observe
# path — so the model side of the search loop gets its own race-detector
# smoke on every push.
bench-search:
	$(GO) test -race -bench='GPAdd|GPWindowed|EIBatch|DTMScorePool|BayesianProposeBatch|DeepTuneObserve' -benchtime=1x -run='^$$' .

# smoke builds and runs the end-to-end example programs with a small
# budget: quickstart exercises the blocking Session lifecycle, streaming
# exercises the v2 lifecycle end to end (event stream, mid-session
# cancellation, snapshot, byte-identical resume) and fails non-zero if the
# resumed session diverges from the uninterrupted reference.
smoke:
	$(GO) run ./examples/quickstart -l 24
	$(GO) run ./examples/streaming -l 32

# smoke-wfd is the daemon's SIGKILL gauntlet: build race-enabled wfd and
# wfctl binaries, run a journaling daemon, kill -9 it mid-flight, restart
# it over the same state dir, and assert every job's canonical report is
# byte-identical to an uninterrupted reference run.
smoke-wfd:
	./scripts/smoke_wfd.sh

# smoke-window runs the sliding-window flat-cost study at a small stream:
# the experiment itself fails (non-zero exit) if the batched acquisition
# paths diverge bit-for-bit from the scalar loops, so this is a
# correctness gate as much as a perf snapshot. The committed BENCH_PR8.json
# is the same experiment at quick scale (`wfbench -exp searcherscale-window
# -json`).
smoke-window:
	$(GO) run ./cmd/wfbench -exp searcherscale-window -obs 600 -gp-window 64

# smoke-transfer is the tuning-memory gauntlet under the race detector:
# the empty-corpus golden pin (cold start ≡ today, byte-for-byte), the
# frozen-corpus byte-reproducibility and warm snapshot/resume tests, the
# corpus store's own deposit/query determinism suite, then the
# transferscale experiment end to end — it reports whether the median
# observations-to-target falls strictly as the corpus grows, and the
# committed BENCH_PR10.json is the same run captured as JSON. The test
# legs carry the race coverage (the experiment's sessions are
# sequential; racing them only multiplies its wall-clock several-fold).
smoke-transfer:
	$(GO) test -race -count=1 -run 'TestCorpusEmptyGolden|TestCorpusFrozenDeterminism|TestCorpusWarmSnapshotResume' ./internal/core
	$(GO) test -race -count=1 ./internal/corpus
	$(GO) run ./cmd/wfbench -exp transferscale

# smoke-faults is the fault-injection gauntlet under the race detector:
# the churn byte-identity and mid-fault snapshot/resume tests, then the
# elasticity and locality experiments end to end (complete histories
# under host churn; locality-dispatch transfer recovery).
smoke-faults:
	$(GO) test -race -count=1 -run 'TestFaultDeterminism|TestFaultSnapshotResume|TestRetryElsewhere|TestEmptyScheduleGolden' ./internal/core
	$(GO) run -race ./cmd/wfbench -exp elasticity
	$(GO) run -race ./cmd/wfbench -exp locality

ci: fmt vet vet-wf build race bench bench-cache bench-search smoke smoke-wfd smoke-window smoke-faults smoke-transfer
