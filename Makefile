# Wayfinder build/test entry points. CI (.github/workflows/ci.yml) runs
# exactly these targets, so a green `make ci` locally means a green build.

GO ?= go

.PHONY: all build test race fmt vet bench bench-cache bench-search smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# bench is a smoke pass: one iteration per benchmark, no tests. The
# scheduler benchmarks (worker pool, async event queue, straggler study)
# additionally run under the race detector, so the concurrent dispatch
# paths are raced on every push without paying race overhead on the
# heavyweight model-training benchmarks.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
	$(GO) test -race -bench='Parallel|Straggler|Scaling' -benchtime=1x -run='^$$' .

# bench-cache races the artifact-cache and fleet-topology benchmarks: the
# shared-store dedup (in-flight build tickets, two-wave batch execution,
# cross-host fetches) is the newest concurrent machinery, so it gets its
# own race-detector smoke on every push.
bench-cache:
	$(GO) test -race -bench='CacheHit|Fleet' -benchtime=1x -run='^$$' .

# bench-search races the incremental-surrogate hot paths: the in-place
# Cholesky extension vs the full-refit baseline, the native constant-liar
# Bayesian batch proposal, and the DeepTune observe path — so the model
# side of the search loop gets its own race-detector smoke on every push.
bench-search:
	$(GO) test -race -bench='GPAdd|BayesianProposeBatch|DeepTuneObserve' -benchtime=1x -run='^$$' .

# smoke builds and runs the end-to-end example programs with a small
# budget: quickstart exercises the blocking Session lifecycle, streaming
# exercises the v2 lifecycle end to end (event stream, mid-session
# cancellation, snapshot, byte-identical resume) and fails non-zero if the
# resumed session diverges from the uninterrupted reference.
smoke:
	$(GO) run ./examples/quickstart -l 24
	$(GO) run ./examples/streaming -l 32

ci: fmt vet build race bench bench-cache bench-search smoke
