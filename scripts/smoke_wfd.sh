#!/bin/sh
# smoke_wfd.sh — the daemon's SIGKILL gauntlet.
#
# Builds race-enabled wfd and wfctl, runs one daemon to completion for a
# reference, then runs a journaling daemon over the same workload, kills
# it with SIGKILL mid-flight, restarts it over the same state dir, and
# asserts:
#
#   - the restarted daemon recovered every job (at least one resumed
#     from a journal snapshot rather than restarting from scratch);
#   - every job's canonical final report is byte-identical to the
#     uninterrupted reference run.
#
# This is the crash-restart guarantee from the package docs, exercised
# through real processes, real signals, and the real HTTP API.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
	[ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "smoke-wfd: building race-enabled binaries"
$GO build -race -o "$WORK/wfd" ./cmd/wfd
$GO build -race -o "$WORK/wfctl" ./cmd/wfctl

cat >"$WORK/job.yaml" <<'EOF'
name: smoke
os: linux
app: nginx
metric: throughput
maximize: true
iterations: 120
EOF

SOCK="$WORK/wfd.sock"

# wait_ready polls the daemon until its status endpoint answers. The
# budget is generous: after a crash, recovery restores every snapshotted
# session (replaying searcher state) before the socket opens, and the
# race-enabled binaries make that slow. $1 names the daemon log to dump
# if it never answers.
wait_ready() {
	i=0
	while ! "$WORK/wfctl" status -d "$SOCK" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 2400 ]; then
			echo "smoke-wfd: daemon never came up"
			[ -n "${1:-}" ] && [ -f "$WORK/$1" ] && cat "$WORK/$1"
			exit 1
		fi
		sleep 0.05
	done
}

# submit_workload submits the same three jobs (different searchers and
# seeds) and prints their ids. Submission order is fixed, so job ids are
# deterministic across runs: j000001 j000002 j000003.
submit_workload() {
	"$WORK/wfctl" submit -d "$SOCK" -tenant alice -s random -seed 11 "$WORK/job.yaml"
	"$WORK/wfctl" submit -d "$SOCK" -tenant alice -s bayesian -seed 12 "$WORK/job.yaml"
	"$WORK/wfctl" submit -d "$SOCK" -tenant bob -s deeptune -seed 13 "$WORK/job.yaml"
}

served_count() {
	"$WORK/wfctl" status -d "$SOCK" | sed -n 's/^served \([0-9]*\) observations.*/\1/p'
}

echo "smoke-wfd: reference run (uninterrupted)"
"$WORK/wfd" -listen "$SOCK" -state "$WORK/ref-state" -quantum 4 -journal-every 8 -quiet &
DAEMON_PID=$!
wait_ready
IDS=$(submit_workload)
mkdir -p "$WORK/ref"
for id in $IDS; do
	"$WORK/wfctl" report -d "$SOCK" -wait "$id" >"$WORK/ref/$id.json"
done
kill "$DAEMON_PID" && wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "smoke-wfd: gauntlet run (SIGKILL mid-flight)"
STATE="$WORK/state"
"$WORK/wfd" -listen "$SOCK" -state "$STATE" -quantum 4 -journal-every 8 \
	>"$WORK/wfd1.log" 2>&1 &
DAEMON_PID=$!
wait_ready wfd1.log
GIDS=$(submit_workload)
[ "$GIDS" = "$IDS" ] || { echo "smoke-wfd: job ids diverged: $GIDS vs $IDS"; exit 1; }

# Let the daemon serve roughly a third of the 360-observation demand,
# then SIGKILL it: no drain, no shutdown snapshots — only the periodic
# journal survives.
i=0
while :; do
	served=$(served_count || echo 0)
	[ "${served:-0}" -ge 120 ] && break
	i=$((i + 1))
	[ "$i" -gt 2400 ] && { echo "smoke-wfd: daemon never reached mid-flight (served=$served)"; exit 1; }
	sleep 0.05
done
echo "smoke-wfd: kill -9 at $served/360 observations"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "smoke-wfd: restarting over the same state dir"
"$WORK/wfd" -listen "$SOCK" -state "$STATE" -quantum 4 -journal-every 8 \
	>"$WORK/wfd2.log" 2>&1 &
DAEMON_PID=$!
wait_ready wfd2.log

grep -q "resumed from snapshot" "$WORK/wfd2.log" || {
	echo "smoke-wfd: no job resumed from a journal snapshot"
	cat "$WORK/wfd2.log"
	exit 1
}

status=$("$WORK/wfctl" status -d "$SOCK")
echo "$status" | grep -q "recovered 3" || {
	echo "smoke-wfd: expected 3 recovered jobs; status was:"
	echo "$status"
	exit 1
}

mkdir -p "$WORK/got"
for id in $IDS; do
	"$WORK/wfctl" report -d "$SOCK" -wait "$id" >"$WORK/got/$id.json"
	cmp "$WORK/ref/$id.json" "$WORK/got/$id.json" || {
		echo "smoke-wfd: $id: report after SIGKILL-restart differs from the uninterrupted run"
		exit 1
	}
	echo "smoke-wfd: $id byte-identical after crash-restart"
done

kill "$DAEMON_PID" && wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "smoke-wfd: PASS"
