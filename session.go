// Session API v2: the public, first-class session object. A Session is
// constructed with functional options, then driven through an explicit
// lifecycle — run to completion under a context, stepped one observation
// at a time, observed through a typed event stream, snapshotted to bytes,
// and resumed byte-identically. The blocking Specialize helpers remain as
// deprecated wrappers over it.
package wayfinder

import (
	"context"
	"fmt"
	"sync"

	"wayfinder/internal/core"
	"wayfinder/internal/corpus"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/search"
	"wayfinder/internal/vm"
)

// Re-exported session event types. Events are emitted in deterministic
// observation order — the same order the report history grows and the
// searcher observes — so a consumer sees the identical stream for the
// identical (seed, workers, staleness, hosts) session.
type (
	// Event is one typed session notification.
	Event = core.Event
	// EvalDone is emitted for every recorded observation.
	EvalDone = core.EvalDone
	// NewBest is emitted when an observation improves the session best.
	NewBest = core.NewBest
	// CacheEvent is emitted when a build was satisfied without compiling.
	CacheEvent = core.CacheEvent
	// RoundBarrier is emitted when a round-barrier dispatch round completes.
	RoundBarrier = core.RoundBarrier
	// Progress is a per-observation summary for live status rendering.
	Progress = core.Progress
	// SessionDone is emitted once, when the session exhausts its budget.
	SessionDone = core.SessionDone
	// CorpusEvent is emitted when a session warm-starts from or deposits
	// into its transfer corpus.
	CorpusEvent = core.CorpusEvent
	// HostStateChanged is emitted when the fault schedule takes a host
	// down or brings it back.
	HostStateChanged = core.HostStateChanged
	// FaultInjected is emitted when a scheduled fault lands on a
	// dispatched evaluation.
	FaultInjected = core.FaultInjected
	// RetryScheduled is emitted when a fault-lost iteration is queued for
	// re-dispatch.
	RetryScheduled = core.RetryScheduled
)

// Checkpointable is the optional searcher extension session snapshots
// require; Random, RandomMutate, Grid, Bayesian, and DeepTune implement
// it.
type Checkpointable = search.Checkpointable

// Usage is a session's cumulative quantum accounting — observations,
// virtual compute seconds, real searcher decision time — the counters a
// multiplexing daemon charges tenants by (read before and after a Step
// quantum; Sub gives the delta).
type Usage = core.Usage

// CorpusStore is a shared tuning-memory corpus: a persistent,
// content-addressed store of completed session outcomes that sessions
// warm-start from and deposit into. One store may back many sessions
// concurrently (the wfd daemon shares one across tenants).
type CorpusStore = corpus.Store

// OpenCorpus opens (creating if needed) a corpus directory. An empty dir
// opens a memory-only corpus.
func OpenCorpus(dir string) (*CorpusStore, error) { return corpus.Open(dir) }

// sessionConfig accumulates functional options before engine assembly.
type sessionConfig struct {
	opts      core.Options
	searcher  Searcher
	metric    Metric
	clock     *Clock
	observers []func(Event)
	corpus    *CorpusStore
	corpusErr error

	budgetSet   bool
	topologySet bool
	searcherSet bool
}

// Option configures a Session at construction.
type Option func(*sessionConfig)

// WithSearcher selects the search strategy (default: DeepTune with the
// paper's hyperparameters, seeded from the session seed).
func WithSearcher(s Searcher) Option {
	return func(c *sessionConfig) { c.searcher = s; c.searcherSet = true }
}

// WithMetric selects the optimization metric (default: the application's
// own benchmark metric).
func WithMetric(m Metric) Option {
	return func(c *sessionConfig) { c.metric = m }
}

// WithBudget sets the session budget: an iteration count, a virtual-time
// budget in seconds, or both (whichever exhausts first stops the session;
// zero means unbounded for that dimension, and at least one must be set).
func WithBudget(iterations int, timeBudgetSec float64) Option {
	return func(c *sessionConfig) {
		c.opts.Iterations = iterations
		c.opts.TimeBudgetSec = timeBudgetSec
		c.budgetSet = true
	}
}

// WithSeed sets the session seed driving measurement noise, evaluation
// jitter, and (for the default searcher) the strategy's own streams.
func WithSeed(seed uint64) Option {
	return func(c *sessionConfig) { c.opts.Seed = seed; c.topologySet = true }
}

// WithWorkers evaluates configurations on n concurrent simulated workers
// (default 1: sequential).
func WithWorkers(n int) Option {
	return func(c *sessionConfig) { c.opts.Workers = n; c.topologySet = true }
}

// WithAsync enables the event-driven bounded-staleness scheduler with the
// given staleness bound: a proposal may be drawn only while at most
// `staleness` dispatched evaluations remain unobserved. Negative means
// unbounded asynchrony; 0 degenerates to synchronous rounds. Only
// meaningful with WithWorkers(n > 1).
func WithAsync(staleness int) Option {
	return func(c *sessionConfig) {
		c.opts.Async = true
		c.opts.Staleness = staleness
		c.topologySet = true
	}
}

// WithHosts splits the worker fleet across n simulated hosts, each with
// its own artifact-store partition and a cross-host transfer cost.
func WithHosts(n int) Option {
	return func(c *sessionConfig) { c.opts.Hosts = n; c.topologySet = true }
}

// WithWorkerSpeedFactors models heterogeneous worker hardware: worker i's
// virtual task durations are multiplied by factors[i] (1 = nominal).
func WithWorkerSpeedFactors(factors []float64) Option {
	return func(c *sessionConfig) {
		c.opts.WorkerSpeedFactors = append([]float64(nil), factors...)
		c.topologySet = true
	}
}

// WithWarmStart evaluates the space default first, anchoring the session.
func WithWarmStart() Option {
	return func(c *sessionConfig) { c.opts.WarmStart = true; c.topologySet = true }
}

// WithoutCache disables the shared content-addressed artifact store
// (per-worker image reuse only).
func WithoutCache() Option {
	return func(c *sessionConfig) { c.opts.DisableCache = true; c.topologySet = true }
}

// WithCacheCapacity bounds each host's artifact-store partition to n
// images (LRU eviction beyond it; 0 or below = unbounded).
func WithCacheCapacity(n int) Option {
	return func(c *sessionConfig) { c.opts.CacheCapacity = n; c.topologySet = true }
}

// WithSurrogateWindow bounds a learned searcher's surrogate to a sliding
// window of the n most recent observations (minimum 8; 0 = unbounded, the
// default), keeping per-decision cost flat on unbounded sessions: the
// Bayesian GP downdates the oldest observation out of its Cholesky factor
// in O(n²) — and adapts its hyperparameters online, since a window can
// drift away from construction-time assumptions — while DeepTune retrains
// over the window only. Requires a windowed-capable searcher (the default
// DeepTune, or Bayesian).
func WithSurrogateWindow(n int) Option {
	return func(c *sessionConfig) { c.opts.SurrogateWindow = n; c.topologySet = true }
}

// WithFaultSchedule replays a deterministic schedule of virtual-time
// fleet faults against the session: host churn (down/up), worker
// preemption, and per-iteration transient build/boot failures, with
// bounded-attempt retry under the schedule's policy. The report stays a
// pure function of (seed, workers, staleness, hosts, schedule); a nil or
// empty schedule is exactly the fault-free session.
func WithFaultSchedule(s *FaultSchedule) Option {
	return func(c *sessionConfig) { c.opts.Faults = s; c.topologySet = true }
}

// WithDispatchPolicy selects the placement policy mapping dispatch slots
// to workers: DispatchStatic (the default) or DispatchLocality, which
// prefers workers already holding the evaluation's image and recovers
// cross-host transfer time on cache-heavy fleets.
func WithDispatchPolicy(name string) Option {
	return func(c *sessionConfig) { c.opts.Dispatch = name; c.topologySet = true }
}

// WithCorpus attaches a persistent transfer corpus by directory: the
// session deposits its outcome there on completion, and — combined with
// WithWarmStartFromCorpus — draws its first proposals from it. An empty
// or absent corpus leaves the session byte-identical to one without the
// option. On Resume, the option re-attaches the corpus for the completion
// deposit only; warm-start resolution happened at original construction
// and travels in the snapshot. Open errors surface from New/Resume.
func WithCorpus(dir string) Option {
	return func(c *sessionConfig) {
		st, err := corpus.Open(dir)
		c.corpus, c.corpusErr = st, err
	}
}

// WithCorpusStore is WithCorpus for an already-open (possibly shared)
// store — the form a daemon multiplexing many sessions over one corpus
// uses.
func WithCorpusStore(st *CorpusStore) Option {
	return func(c *sessionConfig) { c.corpus, c.corpusErr = st, nil }
}

// WithWarmStartFromCorpus asks the corpus for up to k seed
// configurations, evaluated ahead of the searcher's own proposals, plus a
// DeepTune weight restore when the nearest neighbor deposited one.
// Requires WithCorpus/WithCorpusStore. Construction-only: a resumed
// session inherits its warm start from the snapshot.
func WithWarmStartFromCorpus(k int) Option {
	return func(c *sessionConfig) { c.opts.WarmStartK = k; c.topologySet = true }
}

// WithObserver registers a synchronous event observer, invoked on the
// session's stepping goroutine in deterministic observation order. Multiple
// observers run in registration order.
func WithObserver(fn func(Event)) Option {
	return func(c *sessionConfig) { c.observers = append(c.observers, fn) }
}

// WithClock shares a virtual clock between sessions, chaining them on one
// timeline (sequential experiment chains, transfer-learning pipelines).
func WithClock(clock *Clock) Option {
	return func(c *sessionConfig) { c.clock = clock }
}

// WithOptions overlays a complete core options struct — the escape hatch
// for programmatic construction; later options still apply on top.
func WithOptions(opts SessionOptions) Option {
	return func(c *sessionConfig) {
		c.opts = opts
		c.budgetSet = opts.Iterations > 0 || opts.TimeBudgetSec > 0
		c.topologySet = true
	}
}

// Session is one specialization session: a first-class object that can be
// run, stepped, observed, canceled, snapshotted, and resumed. Construct
// with New or Resume.
//
// A Session is not safe for concurrent method calls. The intended
// concurrency pattern is one driver goroutine (calling Run or Step) with
// Events consumers on other goroutines; the event channel is the boundary.
type Session struct {
	core *core.Session
	// evMu guards the lazily-created event channel: Events() is commonly
	// called from a consumer goroutine while another drives Run (whose
	// completion closes the channel).
	evMu         sync.Mutex
	events       chan Event
	eventsClosed bool
}

// New assembles a session over a model and application workload.
//
//	session, err := wayfinder.New(model, app,
//	    wayfinder.WithSearcher(searcher),
//	    wayfinder.WithWorkers(8),
//	    wayfinder.WithAsync(-1),
//	    wayfinder.WithHosts(4),
//	    wayfinder.WithSeed(7),
//	    wayfinder.WithBudget(250, 0),
//	)
//
// Nothing is evaluated until the first Run or Step call. Option validation
// errors (no budget, staleness without async, more hosts than workers, …)
// are returned here, not at run time.
func New(model *Model, app *App, opts ...Option) (*Session, error) {
	cfg, err := buildConfig(model, app, opts)
	if err != nil {
		return nil, err
	}
	if cfg.searcher == nil {
		dc := deeptune.DefaultConfig()
		dc.Seed = cfg.opts.Seed
		cfg.searcher = search.NewDeepTune(model.Space, cfg.metric.Maximize(), dc)
	}
	cfg.opts.Corpus = cfg.corpus
	eng := core.NewEngine(model, app, cfg.metric, cfg.searcher, cfg.clock, cfg.opts.Seed)
	cs, err := eng.NewSession(cfg.opts)
	if err != nil {
		return nil, err
	}
	return newSession(cs, cfg), nil
}

// Resume reconstructs a session from a Snapshot and continues it
// byte-identically to an uninterrupted run. The model and app must be
// constructed exactly as the snapshotted session's were, and the searcher
// (WithSearcher, required unless the snapshot used the default DeepTune
// setup) must be a fresh instance built with the same constructor
// arguments — its accumulated state is restored from the snapshot.
// Topology options (workers, async, hosts, seed, …) live in the snapshot
// and cannot be overridden; WithBudget may extend or shorten the remaining
// budget, and observers, metric, and clock are supplied fresh.
func Resume(model *Model, app *App, snapshot []byte, opts ...Option) (*Session, error) {
	cfg, err := buildConfig(model, app, opts)
	if err != nil {
		return nil, err
	}
	if cfg.topologySet {
		return nil, fmt.Errorf("wayfinder: Resume cannot override snapshot topology options (workers/async/hosts/seed/…); only WithBudget, WithSearcher, WithMetric, WithObserver, and WithClock apply")
	}
	stored, err := core.PeekSnapshot(snapshot)
	if err != nil {
		return nil, err
	}
	if cfg.searcher == nil {
		// The default searcher must be reconstructed with the snapshot's
		// seed, exactly as New seeded it.
		dc := deeptune.DefaultConfig()
		dc.Seed = stored.Seed
		cfg.searcher = search.NewDeepTune(model.Space, cfg.metric.Maximize(), dc)
	}
	eng := core.NewEngine(model, app, cfg.metric, cfg.searcher, cfg.clock, stored.Seed)
	cs, err := eng.RestoreSession(snapshot)
	if err != nil {
		return nil, err
	}
	if cfg.corpus != nil {
		// Deposit-only reattach: warm-start resolution happened at the
		// original construction and travels in the snapshot.
		cs.AttachCorpus(cfg.corpus)
	}
	if cfg.budgetSet {
		// Budget extension is legitimate on resume (continue a finished
		// session longer); everything else in the options is topology.
		if err := cs.SetBudget(cfg.opts.Iterations, cfg.opts.TimeBudgetSec); err != nil {
			return nil, err
		}
	}
	return newSession(cs, cfg), nil
}

// buildConfig folds the options into a validated construction config.
func buildConfig(model *Model, app *App, opts []Option) (*sessionConfig, error) {
	if model == nil || app == nil {
		return nil, fmt.Errorf("wayfinder: nil model or app")
	}
	cfg := &sessionConfig{}
	for _, o := range opts {
		o(cfg)
	}
	if cfg.corpusErr != nil {
		return nil, fmt.Errorf("wayfinder: opening corpus: %w", cfg.corpusErr)
	}
	if cfg.metric == nil {
		cfg.metric = &core.PerfMetric{App: app}
	}
	if cfg.clock == nil {
		cfg.clock = &vm.Clock{}
	}
	return cfg, nil
}

// newSession wires the config's observers onto the core session.
func newSession(cs *core.Session, cfg *sessionConfig) *Session {
	s := &Session{core: cs}
	for _, fn := range cfg.observers {
		cs.AddObserver(fn)
	}
	return s
}

// Run drives the session to completion, honoring ctx cancellation and
// deadline at every observation boundary. On interruption it returns the
// context's error together with a valid partial report — the exact
// observation-prefix of the uninterrupted run — and the session remains
// resumable: a further Run or Step continues it.
func (s *Session) Run(ctx context.Context) (*Report, error) {
	rep, err := s.core.Run(ctx)
	s.closeEventsIfDone()
	return rep, err
}

// Step advances the session by up to n observations (exactly n unless the
// budget or strategy exhausts first) and returns how many were recorded.
// Interleaving Step calls across many sessions is the serve-many-sessions
// daemon primitive; Step(1) loops implement custom stopping rules.
func (s *Session) Step(n int) int {
	advanced := s.core.Step(n)
	s.closeEventsIfDone()
	return advanced
}

// Done reports whether the session has exhausted its budget or strategy.
func (s *Session) Done() bool { return s.core.Done() }

// Usage returns the session's cumulative quantum accounting — the
// observation, virtual-compute, and decision-time counters a daemon
// charges a tenant per Step quantum. O(1), valid at any observation
// boundary; call from the driving goroutine only.
func (s *Session) Usage() Usage { return s.core.Usage() }

// Observed returns the number of observations recorded so far.
func (s *Session) Observed() int { return s.core.Observed() }

// Report returns the session's report, valid at any point: a finished
// session's final report, or a consistent partial report mid-session.
func (s *Session) Report() *Report { return s.core.Report() }

// Events returns a channel carrying the session's typed events in
// deterministic observation order. The channel is created on first call
// (call before the first Run/Step to receive the full stream), is closed
// when the session completes, and is buffered; if the buffer fills, the
// session's stepping goroutine blocks until the consumer drains it — so
// consume concurrently with Run, or between Step calls. For fully
// synchronous consumption use WithObserver instead.
func (s *Session) Events() <-chan Event {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	if s.events == nil {
		ch := make(chan Event, 4096)
		s.events = ch
		if s.core.Done() {
			close(ch)
			s.eventsClosed = true
		} else {
			s.core.AddObserver(func(ev Event) {
				// The observer runs on the stepping goroutine; a driver
				// that Closed the stream and stepped again (an abandoned
				// consumer) gets its events dropped, not a send on a
				// closed channel.
				s.evMu.Lock()
				closed := s.eventsClosed
				s.evMu.Unlock()
				if !closed {
					ch <- ev
				}
			})
		}
	}
	return s.events
}

// Snapshot serializes the session's complete state — scheduler position,
// worker clocks and noise streams, artifact cache, in-flight evaluations,
// report, stateful metric, and the searcher's own history via
// Checkpointable — so Resume continues byte-identically. It requires a
// Checkpointable searcher and must not be called concurrently with Run.
func (s *Session) Snapshot() ([]byte, error) { return s.core.Snapshot() }

// Close releases the session's event stream, ending consumer range loops.
// Call it when abandoning a session before completion (after a canceled
// Run, say, once the partial report or snapshot is taken); a session
// driven to completion closes the stream itself. Close does not invalidate
// the session — it may still be stepped, snapshotted, or resumed — but
// events emitted after Close are dropped, not delivered. Call Close only
// from the driving goroutine, never concurrently with Run or Step.
func (s *Session) Close() {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	if s.events != nil && !s.eventsClosed {
		close(s.events)
		s.eventsClosed = true
	}
}

// closeEventsIfDone closes the event channel once the session reaches its
// terminal state, ending consumer range loops.
func (s *Session) closeEventsIfDone() {
	if s.core.Done() {
		s.Close()
	}
}
