// Streaming sessions: drive a parallel specialization session through the
// Session API v2 lifecycle — consume the typed event stream while it runs,
// interrupt it with a context deadline, snapshot the interrupted session,
// and resume it byte-identically to completion.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"

	"wayfinder"
)

const seed = 7

var (
	iterations = flag.Int("l", 96, "observation budget (CI smoke runs pass a small one)")
	interrupt  = flag.Int("interrupt", 0, "observations before cancel+snapshot+resume (default: budget/2)")
)

// newSearcher builds the session's strategy; a resumed session needs a
// fresh instance constructed with the same arguments (its accumulated
// state is restored from the snapshot).
func newSearcher(model *wayfinder.Model) wayfinder.Searcher {
	return wayfinder.NewBayesianSearcher(model.Space, true, seed)
}

func newModel() *wayfinder.Model {
	model := wayfinder.NewLinuxModel()
	model.Space.Favor(wayfinder.CompileTime, 0)
	return model
}

func main() {
	flag.Parse()
	if *iterations < 2 {
		log.Fatal("streaming: the budget must be at least 2 observations (one before and one after the interrupt)")
	}
	if *interrupt <= 0 || *interrupt >= *iterations {
		*interrupt = *iterations / 2
	}
	model := newModel()
	app := wayfinder.AppNginx()

	// Cancel the session mid-run with a synchronous observer: it fires on
	// the stepping goroutine while observation #interrupt is recorded, the
	// context is checked at the next observation boundary, so the partial
	// report is a consistent prefix of exactly *interrupt observations —
	// deterministic, unlike canceling from an asynchronous consumer.
	ctx, cancel := context.WithCancel(context.Background())
	session, err := wayfinder.New(model, app,
		wayfinder.WithSearcher(newSearcher(model)),
		wayfinder.WithWorkers(8),
		wayfinder.WithHosts(2),
		wayfinder.WithBudget(*iterations, 0),
		wayfinder.WithSeed(seed),
		wayfinder.WithObserver(func(ev wayfinder.Event) {
			if p, ok := ev.(wayfinder.Progress); ok && p.Observed == *interrupt {
				cancel()
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	done := make(chan struct{})
	events := session.Events() // subscribe before running: the stream starts at observation 0
	go func() {
		defer close(done)
		for ev := range events {
			switch e := ev.(type) {
			case wayfinder.NewBest:
				fmt.Printf("  [%3d] new best: %8.0f %s  (%s)\n",
					e.Result.Iteration, e.Result.Metric, app.Unit, trim(e.Result.ConfigString, 48))
			case wayfinder.CacheEvent:
				if e.Source == "remote" {
					fmt.Printf("  [%3d] image fetched cross-host\n", e.Result.Iteration)
				}
			}
		}
	}()

	fmt.Printf("streaming a W=8, 2-host session (budget %d observations)...\n", *iterations)
	if _, err := session.Run(ctx); err != context.Canceled {
		log.Fatalf("expected a canceled run, got %v", err)
	}
	partial := session.Report()
	fmt.Printf("\ninterrupted after %d/%d observations (%.1f virtual minutes, %d builds saved)\n",
		len(partial.History), *iterations, partial.ElapsedSec/60, partial.BuildsSaved)

	// Checkpoint the interrupted session and resume it elsewhere: the
	// snapshot carries worker clocks, noise streams, the artifact cache,
	// in-flight evaluations, and the searcher's full surrogate state.
	snap, err := session.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes of JSON\n\n", len(snap))
	session.Close() // end the event stream; we continue from the snapshot
	<-done

	resumedModel := newModel()
	resumed, err := wayfinder.Resume(resumedModel, app, snap,
		wayfinder.WithSearcher(newSearcher(resumedModel)),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Drive the rest one observation at a time — the daemon primitive —
	// with a custom stopping rule available at every boundary.
	for !resumed.Done() {
		resumed.Step(1)
	}
	report := resumed.Report()

	fmt.Printf("resumed to completion: %d observations, %.1f virtual minutes\n",
		len(report.History), report.ElapsedSec/60)
	fmt.Printf("best %s: %.0f %s (%.2fx the default)\n",
		report.Metric, report.Best.Metric, report.Unit, report.Best.Metric/app.Base)

	// The resumed session is byte-identical to an uninterrupted one.
	refModel := newModel()
	uninterrupted, err := wayfinder.New(refModel, app,
		wayfinder.WithSearcher(newSearcher(refModel)),
		wayfinder.WithWorkers(8),
		wayfinder.WithHosts(2),
		wayfinder.WithBudget(*iterations, 0),
		wayfinder.WithSeed(seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := uninterrupted.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if canonicalReport(ref) == canonicalReport(report) {
		fmt.Println("verified: snapshot → resume reproduced the uninterrupted session byte-for-byte")
	} else {
		log.Fatalf("resumed session diverged from the uninterrupted reference (best %.2f vs %.2f, elapsed %.2f vs %.2f)",
			report.Best.Metric, ref.Best.Metric, report.ElapsedSec, ref.ElapsedSec)
	}
}

// canonicalReport renders a report's full JSON with the wall-time decision
// costs zeroed — the only content that legitimately varies between runs of
// the same (seed, workers, staleness, hosts) session.
func canonicalReport(rep *wayfinder.Report) string {
	cp := *rep
	cp.History = append([]wayfinder.EvalResult(nil), rep.History...)
	for i := range cp.History {
		cp.History[i].DecisionCost = 0
	}
	if cp.Best != nil {
		best := *cp.Best
		best.DecisionCost = 0
		cp.Best = &best
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		log.Fatal(err)
	}
	return string(data)
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
