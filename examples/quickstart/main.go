// Quickstart: specialize the simulated Linux kernel for Nginx throughput
// with DeepTune, print the best configuration found and the parameters
// the model learned to be high-impact.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"wayfinder"
)

func main() {
	iterations := flag.Int("l", 120, "iteration budget (CI smoke runs pass a small one)")
	flag.Parse()
	// The simulated Linux kernel: ~300 runtime sysctls, boot parameters,
	// and compile-time options, with a hidden performance/crash model.
	model := wayfinder.NewLinuxModel()

	// Follow the paper's §4.1 setup: favor runtime parameters (compile-time
	// exploration off, so no rebuilds), optimize Nginx throughput.
	model.Space.Favor(wayfinder.CompileTime, 0)
	app := wayfinder.AppNginx()

	searcher := wayfinder.NewDeepTuneSearcher(model.Space, app.Maximize,
		wayfinder.DefaultDeepTuneConfig())
	session, err := wayfinder.New(model, app,
		wayfinder.WithSearcher(searcher),
		wayfinder.WithBudget(*iterations, 0),
		wayfinder.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := session.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("explored %d configurations in %.1f virtual minutes (%d crashes, %.0f%%)\n",
		len(report.History), report.ElapsedSec/60, report.Crashes, 100*report.CrashRate())
	fmt.Printf("default throughput:    %8.0f %s\n", app.Base, app.Unit)
	fmt.Printf("best found:            %8.0f %s (%.2fx)\n",
		report.Best.Metric, app.Unit, report.Best.Metric/app.Base)
	fmt.Printf("best configuration:    %s\n\n", report.Best.ConfigString)

	fmt.Println("top-5 high-impact parameters (learned by the DTM):")
	impacts := wayfinder.HighImpactParams(searcher, model, report.Best.Config, true)
	for i, pi := range impacts {
		if i == 5 {
			break
		}
		fmt.Printf("  %-40s impact %7.0f  best=%s\n", pi.Name, pi.Impact, pi.BestValue)
	}
}
