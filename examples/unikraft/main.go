// Unikraft specialization (the Fig 9 scenario): optimize an Nginx
// unikernel's 33 parameters (10 application + 23 OS) under a virtual time
// budget, comparing DeepTune against Bayesian optimization and random
// search on the same small-but-deep space.
//
// Run with: go run ./examples/unikraft
package main

import (
	"context"
	"fmt"
	"log"

	"wayfinder"
)

func main() {
	app := wayfinder.AppNginx()
	app.Base = 9500 // unikernel default config is slow; the headroom is large
	app.BenchSeconds = 30

	const budget = 2 * 3600 // two virtual hours

	fmt.Printf("search space: 33 parameters, log10 size %.1f\n\n",
		wayfinder.NewUnikraftModel().Space.LogCardinality())
	fmt.Printf("%-10s %12s %10s %8s %10s\n", "searcher", "best req/s", "vs default", "iters", "crash rate")

	for _, kind := range []string{"random", "bayesian", "deeptune"} {
		model := wayfinder.NewUnikraftModel()
		var s wayfinder.Searcher
		switch kind {
		case "random":
			s = wayfinder.NewRandomSearcher(model.Space, 2)
		case "bayesian":
			s = wayfinder.NewBayesianSearcher(model.Space, true, 2)
		default:
			cfg := wayfinder.DefaultDeepTuneConfig()
			cfg.Seed = 2
			s = wayfinder.NewDeepTuneSearcher(model.Space, true, cfg)
		}
		session, err := wayfinder.New(model, app,
			wayfinder.WithSearcher(s),
			wayfinder.WithBudget(0, budget),
			wayfinder.WithSeed(2),
		)
		if err != nil {
			log.Fatal(err)
		}
		report, err := session.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		best := 0.0
		if report.Best != nil {
			best = report.Best.Metric
		}
		fmt.Printf("%-10s %12.0f %9.2fx %8d %9.1f%%\n",
			kind, best, best/app.Base, len(report.History), 100*report.CrashRate())
	}
	fmt.Println("\nunikernels expose their whole stack at build time: with the right")
	fmt.Println("allocator, LWIP buffers, and worker configuration the same hardware")
	fmt.Println("serves several times the default throughput (cf. paper Fig 9).")
}
