// Transfer learning through tuning memory (the §4.2 scenario): run a
// DeepTune session on Redis and deposit its outcome into a transfer
// corpus, then warm-start the specialization of Nginx from that corpus
// and compare against a cold start. Both applications are
// network-intensive, so the deposited entry — seed configurations plus
// the trained model's weights — already knows which parameters matter
// and which regions crash.
//
// Run with: go run ./examples/transfer-learning
package main

import (
	"context"
	"fmt"
	"log"

	"wayfinder"
)

func main() {
	const iterations = 150

	// The corpus is the session-to-session memory. An empty dir opens a
	// memory-only store; pass a directory to persist entries across
	// processes (wayfinder.WithCorpus("path") does both steps at once).
	corpus, err := wayfinder.OpenCorpus("")
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: tune Redis with the corpus attached. On completion the
	// session deposits its outcome — app fingerprint, parameter
	// importances, best seed configurations, DeepTune weights.
	fmt.Println("tuning redis (depositing into the corpus)...")
	redis := wayfinder.AppRedis()
	sourceModel := wayfinder.NewLinuxModel()
	sourceModel.Space.Favor(wayfinder.CompileTime, 0)
	source, err := wayfinder.New(sourceModel, redis,
		wayfinder.WithBudget(iterations, 0),
		wayfinder.WithSeed(11),
		wayfinder.WithCorpusStore(corpus),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := source.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus now holds %d entries (hash %.12s)\n", corpus.Len(), corpus.Hash())

	// Phase 2: specialize Nginx cold vs warm. The warm run asks the
	// corpus for its nearest neighbors through the importance-similarity
	// index: up to 4 seed configurations evaluated before the searcher's
	// own proposals, plus a weight restore from the closest entry.
	nginx := wayfinder.AppNginx()
	run := func(warm bool) *wayfinder.Report {
		model := wayfinder.NewLinuxModel()
		model.Space.Favor(wayfinder.CompileTime, 0)
		opts := []wayfinder.Option{
			wayfinder.WithBudget(iterations, 0),
			wayfinder.WithSeed(12),
		}
		if warm {
			opts = append(opts,
				wayfinder.WithCorpusStore(corpus),
				wayfinder.WithWarmStartFromCorpus(4),
				wayfinder.WithObserver(func(ev wayfinder.Event) {
					if ce, ok := ev.(wayfinder.CorpusEvent); ok && ce.Kind == "warmstart" {
						fmt.Printf("warm start: %d seed configs, weights=%v\n", ce.Seeds, ce.DTM)
					}
				}),
			)
		}
		session, err := wayfinder.New(model, nginx, opts...)
		if err != nil {
			log.Fatal(err)
		}
		report, err := session.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		return report
	}
	cold := run(false)
	warm := run(true)

	fmt.Printf("\n%-22s %12s %12s %12s\n", "", "best req/s", "crash rate", "early crash")
	for _, entry := range []struct {
		name string
		rep  *wayfinder.Report
	}{{"cold start", cold}, {"transfer from corpus", warm}} {
		early := entry.rep.CrashRateSeries(25)
		quarter := len(early) / 4
		fmt.Printf("%-22s %12.0f %11.1f%% %11.1f%%\n",
			entry.name, entry.rep.Best.Metric,
			100*entry.rep.CrashRate(), 100*early[quarter])
	}
	fmt.Printf("\ncorpus after the warm run: %d entries — the nginx outcome was\n", corpus.Len())
	fmt.Println("deposited too, ready to warm-start the next session. The corpus-seeded")
	fmt.Println("run starts from redis's crash-avoidance and parameter knowledge, so")
	fmt.Println("early iterations crash less and exploit sooner.")
}
