// Transfer learning (the §4.2 scenario): pre-train a DeepTune model on
// Redis, then reuse it to warm-start the specialization of Nginx, and
// compare against a cold-started model. Both applications are
// network-intensive, so the pre-trained model already knows which
// parameters matter and which regions crash.
//
// Run with: go run ./examples/transfer-learning
package main

import (
	"context"
	"fmt"
	"log"

	"wayfinder"
)

func main() {
	const iterations = 150

	// Phase 1: train on Redis.
	fmt.Println("pre-training on redis...")
	redis := wayfinder.AppRedis()
	pretrainModel := wayfinder.NewLinuxModel()
	pretrainModel.Space.Favor(wayfinder.CompileTime, 0)
	cfg := wayfinder.DefaultDeepTuneConfig()
	cfg.Seed = 11
	source := wayfinder.NewDeepTuneSearcher(pretrainModel.Space, redis.Maximize, cfg)
	pretrain, err := wayfinder.New(pretrainModel, redis,
		wayfinder.WithSearcher(source),
		wayfinder.WithBudget(iterations, 0),
		wayfinder.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pretrain.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	snapshot, err := source.Selector().Model().Snapshot(map[string]string{"app": "redis"})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2: specialize Nginx cold vs warm.
	nginx := wayfinder.AppNginx()
	run := func(warm bool) *wayfinder.Report {
		model := wayfinder.NewLinuxModel()
		model.Space.Favor(wayfinder.CompileTime, 0)
		c := wayfinder.DefaultDeepTuneConfig()
		c.Seed = 12
		s := wayfinder.NewDeepTuneSearcher(model.Space, nginx.Maximize, c)
		if warm {
			if err := s.Selector().Model().Restore(snapshot); err != nil {
				log.Fatal(err)
			}
		}
		session, err := wayfinder.New(model, nginx,
			wayfinder.WithSearcher(s),
			wayfinder.WithBudget(iterations, 0),
			wayfinder.WithSeed(12),
		)
		if err != nil {
			log.Fatal(err)
		}
		report, err := session.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		return report
	}
	cold := run(false)
	warm := run(true)

	fmt.Printf("\n%-22s %12s %12s %12s\n", "", "best req/s", "crash rate", "early crash")
	for _, entry := range []struct {
		name string
		rep  *wayfinder.Report
	}{{"cold start", cold}, {"transfer from redis", warm}} {
		early := entry.rep.CrashRateSeries(25)
		quarter := len(early) / 4
		fmt.Printf("%-22s %12.0f %11.1f%% %11.1f%%\n",
			entry.name, entry.rep.Best.Metric,
			100*entry.rep.CrashRate(), 100*early[quarter])
	}
	fmt.Println("\nthe transferred model starts with Redis's crash-avoidance and")
	fmt.Println("parameter knowledge, so early iterations crash less and exploit sooner.")
}
