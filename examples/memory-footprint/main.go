// Memory-footprint minimization (the Fig 10 scenario): shrink the booted
// RISC-V Linux image by exploring compile-time options under a virtual
// time budget, while learning not to remove boot-essential subsystems.
//
// Run with: go run ./examples/memory-footprint
package main

import (
	"context"
	"fmt"
	"log"

	"wayfinder"
)

func main() {
	model := wayfinder.NewRiscvModel()
	// Compile-time options dominate this profile; keep the single runtime
	// parameter mostly pinned.
	model.Space.Favor(wayfinder.Runtime, 0.2)
	app := wayfinder.AppNginx() // the workload only needs to boot

	cfg := wayfinder.DefaultDeepTuneConfig()
	cfg.Seed = 5
	// Proposals mutate up to 30 options from the distro default — fully
	// random compile-time configurations essentially never boot.
	cfg.PoolMutateK = 30
	searcher := wayfinder.NewDeepTuneSearcher(model.Space, false, cfg)

	session, err := wayfinder.New(model, app,
		wayfinder.WithMetric(wayfinder.MemoryMetric{}),
		wayfinder.WithSearcher(searcher),
		wayfinder.WithBudget(0, 2*3600), // two virtual hours
		wayfinder.WithSeed(5),
		wayfinder.WithWarmStart(), // measure the default footprint first
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := session.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	defaultMB := report.History[0].Metric
	fmt.Printf("evaluated %d images over %.1f virtual hours (%d builds)\n",
		len(report.History), report.ElapsedSec/3600, report.Builds)
	fmt.Printf("default image footprint: %6.1f MB\n", defaultMB)
	fmt.Printf("best image footprint:    %6.1f MB (-%.1f%%)\n",
		report.Best.Metric, 100*(defaultMB-report.Best.Metric)/defaultMB)
	fmt.Printf("crashes along the way:   %d (%.0f%% — unbootable debloat attempts)\n",
		report.Crashes, 100*report.CrashRate())
	fmt.Printf("removed options: %s\n", report.Best.ConfigString)
}
