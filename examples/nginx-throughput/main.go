// Nginx throughput study (the Fig 6a scenario): run random search and
// DeepTune head-to-head on the simulated Linux kernel and print the
// evolution of the smoothed throughput and crash rate.
//
// Run with: go run ./examples/nginx-throughput
package main

import (
	"context"
	"fmt"
	"log"

	"wayfinder"
)

func main() {
	app := wayfinder.AppNginx()
	const iterations = 200

	type outcome struct {
		name   string
		report *wayfinder.Report
	}
	var outcomes []outcome

	for _, kind := range []string{"random", "deeptune"} {
		model := wayfinder.NewLinuxModel()
		model.Space.Favor(wayfinder.CompileTime, 0)
		var s wayfinder.Searcher
		if kind == "random" {
			s = wayfinder.NewRandomSearcher(model.Space, 1)
		} else {
			cfg := wayfinder.DefaultDeepTuneConfig()
			cfg.Seed = 1
			s = wayfinder.NewDeepTuneSearcher(model.Space, app.Maximize, cfg)
		}
		session, err := wayfinder.New(model, app,
			wayfinder.WithSearcher(s),
			wayfinder.WithBudget(iterations, 0),
			wayfinder.WithSeed(1),
		)
		if err != nil {
			log.Fatal(err)
		}
		report, err := session.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{kind, report})
	}

	fmt.Printf("%-10s %12s %10s %12s %12s\n",
		"searcher", "best req/s", "vs default", "crash rate", "late crash")
	for _, o := range outcomes {
		crash := o.report.CrashRateSeries(40)
		fmt.Printf("%-10s %12.0f %9.2fx %11.2f%% %11.2f%%\n",
			o.name, o.report.Best.Metric, o.report.Best.Metric/app.Base,
			100*o.report.CrashRate(), 100*crash[len(crash)-1])
	}

	// A coarse terminal rendering of the Fig 6a curves: smoothed
	// throughput every 25 iterations.
	fmt.Println("\nsmoothed throughput by iteration:")
	fmt.Printf("%-6s", "iter")
	for _, o := range outcomes {
		fmt.Printf(" %12s", o.name)
	}
	fmt.Println()
	for i := 24; i < iterations; i += 25 {
		fmt.Printf("%-6d", i+1)
		for _, o := range outcomes {
			sm := o.report.SmoothedMetricSeries(0.15)
			fmt.Printf(" %12.0f", sm[i])
		}
		fmt.Println()
	}
}
