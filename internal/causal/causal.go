// Package causal implements a Unicorn-style causal-inference configuration
// optimizer (Iqbal et al., EuroSys'22 — the paper's closest comparator).
//
// The optimizer follows Unicorn's recipe: after every observation it
// *recomputes* a causal graph over all configuration options and the
// outcome (a PC-algorithm skeleton built from marginal and order-1 partial
// correlations), estimates each option's average causal effect on the
// outcome by covariate-adjusted regression, and picks the next candidate
// whose option settings push the highest-effect causes in the beneficial
// direction.
//
// The costs are structural, not artifacts: skeleton discovery runs
// conditional-independence tests over all (i, j, k) triples — Θ(d³) tests,
// each needing correlations over the full history — and the graph cannot
// be updated incrementally, so every iteration refits from scratch over a
// growing dataset. The paper cites O(n³)–O(n⁴) for causal analysis and
// shows both per-iteration time and memory growing without bound (Fig 7);
// this implementation reproduces exactly that scaling, measured by the
// FitStats it records.
package causal

import (
	"math"
	"runtime"
	"time"

	"wayfinder/internal/stats"
)

// Optimizer is a causal-inference-driven configuration optimizer.
type Optimizer struct {
	// Alpha is the correlation threshold below which an edge is considered
	// absent (the CI-test significance surrogate).
	Alpha float64
	// Maximize selects the optimization direction.
	Maximize bool

	dim int
	xs  [][]float64
	ys  []float64

	// graphs retains every refitted causal model, mirroring Unicorn's
	// model bookkeeping across iterations; it is the dominant memory-growth
	// term together with the residual caches built per fit.
	graphs []*Graph

	lastStats FitStats
}

// Graph is one fitted causal model.
type Graph struct {
	// Adj is the skeleton adjacency over d features + outcome (index d).
	Adj [][]bool
	// Effect is the estimated average causal effect of each feature on the
	// outcome (0 for features with no edge to the outcome).
	Effect []float64
	// residuals retains the order-1 CI residual matrices computed during
	// the fit (one t-length vector per conditioned variable pair class),
	// matching the naive PC implementation's working set.
	residuals [][]float64
}

// FitStats records the cost of one Fit call.
type FitStats struct {
	// Duration is the wall-clock fit time.
	Duration time.Duration
	// HeapBytes is the live-heap size after the fit, capturing the
	// accumulated model/residual storage.
	HeapBytes uint64
	// Tests is the number of conditional-independence tests executed.
	Tests int
	// Work counts sample touches (correlation and residual arithmetic over
	// the history) — a deterministic proxy for fit cost that grows with
	// both dimensionality and history length.
	Work int64
}

// New returns an optimizer over dim-dimensional feature vectors.
func New(dim int, maximize bool) *Optimizer {
	return &Optimizer{Alpha: 0.1, Maximize: maximize, dim: dim}
}

// Observe appends a (configuration, outcome) observation.
func (o *Optimizer) Observe(x []float64, y float64) {
	o.xs = append(o.xs, append([]float64(nil), x...))
	o.ys = append(o.ys, y)
}

// Len returns the number of observations.
func (o *Optimizer) Len() int { return len(o.xs) }

// LastStats returns the cost of the most recent Fit.
func (o *Optimizer) LastStats() FitStats { return o.lastStats }

// Fit recomputes the causal graph from the full history. It must be called
// after new observations; there is no incremental path (see the package
// comment — this is the point).
func (o *Optimizer) Fit() *Graph {
	start := time.Now() //wfvet:ignore walltime causal-fit cost is measured real compute time, never session-visible state
	t := len(o.xs)
	d := o.dim
	g := &Graph{Adj: make([][]bool, d+1), Effect: make([]float64, d)}
	for i := range g.Adj {
		g.Adj[i] = make([]bool, d+1)
	}
	tests := 0
	var work int64
	if t >= 3 {
		// Column views, with the outcome as column d.
		cols := make([][]float64, d+1)
		for j := 0; j <= d; j++ {
			cols[j] = make([]float64, t)
		}
		for i, x := range o.xs {
			for j := 0; j < d; j++ {
				cols[j][i] = x[j]
			}
			cols[d][i] = o.ys[i]
		}
		// Marginal correlation matrix: Θ(d²·t).
		corr := make([][]float64, d+1)
		for i := range corr {
			corr[i] = make([]float64, d+1)
			corr[i][i] = 1
		}
		for i := 0; i <= d; i++ {
			for j := i + 1; j <= d; j++ {
				c := stats.PearsonCorrelation(cols[i], cols[j])
				corr[i][j], corr[j][i] = c, c
				g.Adj[i][j] = math.Abs(c) > o.Alpha
				g.Adj[j][i] = g.Adj[i][j]
				tests++
				work += int64(t)
			}
		}
		// Order-1 PC step: remove edge (i,j) if some k renders them
		// conditionally independent. Θ(d³) partial-correlation tests.
		for i := 0; i <= d; i++ {
			for j := i + 1; j <= d; j++ {
				if !g.Adj[i][j] {
					continue
				}
				for k := 0; k <= d; k++ {
					if k == i || k == j {
						continue
					}
					if !g.Adj[i][k] && !g.Adj[j][k] {
						continue
					}
					den := (1 - corr[i][k]*corr[i][k]) * (1 - corr[j][k]*corr[j][k])
					if den <= 1e-12 {
						continue
					}
					pc := (corr[i][j] - corr[i][k]*corr[j][k]) / math.Sqrt(den)
					tests++
					work += int64(t)
					// The naive implementation materializes the residual
					// vectors the partial correlation corresponds to; we
					// retain them on the graph as Unicorn's Python
					// implementation effectively does within a fit.
					if len(g.residuals) < 4096 {
						res := make([]float64, t)
						for s := 0; s < t; s++ {
							res[s] = cols[i][s] - corr[i][k]*cols[k][s]
						}
						g.residuals = append(g.residuals, res)
					}
					if math.Abs(pc) < o.Alpha {
						g.Adj[i][j], g.Adj[j][i] = false, false
						break
					}
				}
			}
		}
		// Average causal effect: regress outcome on each parent of the
		// outcome, adjusting for the other parents (ordinary least squares
		// over the parent set).
		var parents []int
		for i := 0; i < d; i++ {
			if g.Adj[i][d] {
				parents = append(parents, i)
			}
		}
		if len(parents) > 0 {
			coef := olsCoefficients(cols, parents, d, t)
			for idx, p := range parents {
				g.Effect[p] = coef[idx]
			}
		}
	}
	o.graphs = append(o.graphs, g)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	//wfvet:ignore walltime causal-fit cost is measured real compute time, never session-visible state
	o.lastStats = FitStats{Duration: time.Since(start), HeapBytes: ms.HeapAlloc, Tests: tests, Work: work}
	return g
}

// olsCoefficients solves the normal equations for regressing column yCol on
// the parent columns (with intercept folded out via centering).
func olsCoefficients(cols [][]float64, parents []int, yCol, t int) []float64 {
	p := len(parents)
	means := make([]float64, p)
	for i, c := range parents {
		means[i] = stats.Mean(cols[c][:t])
	}
	yMean := stats.Mean(cols[yCol][:t])
	xtx := stats.NewMatrix(p, p)
	xty := make([]float64, p)
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			sum := 0.0
			for s := 0; s < t; s++ {
				sum += (cols[parents[i]][s] - means[i]) * (cols[parents[j]][s] - means[j])
			}
			xtx.Set(i, j, sum)
			xtx.Set(j, i, sum)
		}
		xtx.Set(i, i, xtx.At(i, i)+1e-6) // ridge for stability
		sum := 0.0
		for s := 0; s < t; s++ {
			sum += (cols[parents[i]][s] - means[i]) * (cols[yCol][s] - yMean)
		}
		xty[i] = sum
	}
	chol, err := stats.Cholesky(xtx)
	if err != nil {
		return make([]float64, p)
	}
	return stats.SolveCholesky(chol, xty)
}

// SelectNext scores the candidate feature vectors under the latest causal
// model and returns the index of the most promising one. It must be called
// after at least one Fit; with no model it returns 0.
func (o *Optimizer) SelectNext(cands [][]float64) int {
	if len(cands) == 0 {
		return -1
	}
	if len(o.graphs) == 0 {
		return 0
	}
	g := o.graphs[len(o.graphs)-1]
	best, bestIdx := math.Inf(-1), 0
	for ci, x := range cands {
		score := 0.0
		for i, e := range g.Effect {
			if i < len(x) {
				score += e * x[i]
			}
		}
		if !o.Maximize {
			score = -score
		}
		if score > best {
			best, bestIdx = score, ci
		}
	}
	return bestIdx
}

// Graphs returns the number of retained causal models (grows with every
// Fit — the memory signature of Fig 7).
func (o *Optimizer) Graphs() int { return len(o.graphs) }
