package causal

import (
	"testing"

	"wayfinder/internal/rng"
)

// synthDataset: y = 5*x0 - 3*x1 + noise; x2.. are distractors. x3 is a
// correlated shadow of x0 (mediator-style), which the order-1 PC step
// should separate from y.
func synthObserve(o *Optimizer, n int, seed uint64) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		x := make([]float64, o.dim)
		for d := range x {
			x[d] = r.Float64()
		}
		if o.dim > 3 {
			x[3] = x[0] + r.Normal(0, 0.05)
		}
		y := 5*x[0] - 3*x[1] + r.Normal(0, 0.1)
		o.Observe(x, y)
	}
}

func TestFitFindsCausalParents(t *testing.T) {
	o := New(6, true)
	synthObserve(o, 200, 1)
	g := o.Fit()
	if !g.Adj[0][6] {
		t.Fatal("x0 -> y edge missing")
	}
	if !g.Adj[1][6] {
		t.Fatal("x1 -> y edge missing")
	}
	// Distractor features should have no outcome edge.
	for _, d := range []int{2, 4, 5} {
		if g.Adj[d][6] {
			t.Fatalf("spurious edge x%d -> y", d)
		}
	}
}

func TestEffectSigns(t *testing.T) {
	o := New(6, true)
	synthObserve(o, 300, 2)
	g := o.Fit()
	if g.Effect[0] < 2 {
		t.Fatalf("effect of x0 = %v, want strongly positive", g.Effect[0])
	}
	if g.Effect[1] > -1 {
		t.Fatalf("effect of x1 = %v, want strongly negative", g.Effect[1])
	}
	for _, d := range []int{2, 4, 5} {
		if g.Effect[d] != 0 {
			t.Fatalf("distractor x%d has effect %v", d, g.Effect[d])
		}
	}
}

func TestSelectNextPushesEffects(t *testing.T) {
	o := New(6, true)
	synthObserve(o, 300, 3)
	o.Fit()
	// Candidate 1 maximizes x0 and minimizes x1 — it should win.
	cands := [][]float64{
		{0, 1, 0.5, 0, 0.5, 0.5},
		{1, 0, 0.5, 1, 0.5, 0.5},
		{0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
	}
	if got := o.SelectNext(cands); got != 1 {
		t.Fatalf("SelectNext = %d, want 1", got)
	}
	// Minimizing flips the preference.
	o.Maximize = false
	if got := o.SelectNext(cands); got != 0 {
		t.Fatalf("minimize SelectNext = %d, want 0", got)
	}
}

func TestSelectNextEdgeCases(t *testing.T) {
	o := New(3, true)
	if o.SelectNext(nil) != -1 {
		t.Fatal("empty candidates should return -1")
	}
	if o.SelectNext([][]float64{{1, 2, 3}}) != 0 {
		t.Fatal("no model yet should return 0")
	}
}

func TestFitTooFewSamples(t *testing.T) {
	o := New(4, true)
	o.Observe([]float64{1, 0, 0, 0}, 1)
	g := o.Fit()
	for _, e := range g.Effect {
		if e != 0 {
			t.Fatal("underdetermined fit should have zero effects")
		}
	}
}

func TestIterationCostGrows(t *testing.T) {
	// The defining property vs DeepTune: per-iteration fit cost grows with
	// history length (Fig 7). Compare CI-test counts, which are
	// deterministic unlike wall time.
	o := New(20, true)
	synthObserve(o, 30, 4)
	o.Fit()
	early := o.LastStats()
	synthObserve(o, 270, 5)
	o.Fit()
	late := o.LastStats()
	if o.Graphs() != 2 {
		t.Fatalf("retained %d graphs, want 2", o.Graphs())
	}
	// Work (sample touches) must grow with the history even if edge pruning
	// reduces the number of CI tests: each test costs Θ(t).
	if late.Work <= early.Work {
		t.Fatalf("fit work should grow with history: %d vs %d", late.Work, early.Work)
	}
}

func TestOptimizationLoopImproves(t *testing.T) {
	// End-to-end: causal optimizer should find better configs than the
	// starting random batch on the synthetic objective.
	r := rng.New(6)
	dim := 8
	obj := func(x []float64) float64 { return 5*x[0] - 3*x[1] }
	o := New(dim, true)
	startBest := -1e9
	for i := 0; i < 30; i++ {
		x := make([]float64, dim)
		for d := range x {
			x[d] = r.Float64()
		}
		y := obj(x) + r.Normal(0, 0.1)
		if y > startBest {
			startBest = y
		}
		o.Observe(x, y)
	}
	best := startBest
	for iter := 0; iter < 15; iter++ {
		o.Fit()
		cands := make([][]float64, 30)
		for c := range cands {
			x := make([]float64, dim)
			for d := range x {
				x[d] = r.Float64()
			}
			cands[c] = x
		}
		pick := cands[o.SelectNext(cands)]
		y := obj(pick) + r.Normal(0, 0.1)
		o.Observe(pick, y)
		if y > best {
			best = y
		}
	}
	if best <= startBest {
		t.Fatalf("causal optimization did not improve: %v vs start %v", best, startBest)
	}
	if best < 3.5 {
		t.Fatalf("best found = %v, expected near-optimal (max 5)", best)
	}
}

func BenchmarkFitScaling(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		name := map[int]string{50: "hist50", 100: "hist100", 200: "hist200"}[n]
		b.Run(name, func(b *testing.B) {
			o := New(20, true)
			synthObserve(o, n, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.graphs = o.graphs[:0]
				o.Fit()
			}
		})
	}
}
