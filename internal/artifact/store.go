// Package artifact implements the shared content-addressed build cache of
// the evaluation pipeline: built OS images addressed by the digest of
// their build-stage configuration (configspace.Config.CompileKey), stored
// in per-host partitions so every worker on a simulated host shares one
// cache instead of carrying a private "previous image" slot.
//
// Determinism is the design constraint, as everywhere in Wayfinder: the
// store performs no locking and tolerates no concurrent access. The engine
// guarantees all lookups, puts, and evictions happen coordinator-side in
// canonical observation order, which makes every cache outcome — and
// therefore every session report — a pure function of (seed, workers,
// staleness, hosts) rather than of goroutine scheduling.
package artifact

import (
	"container/list"
	"fmt"
)

// Artifact is one cached build product.
type Artifact struct {
	// Key is the content digest of the build-stage configuration.
	Key uint64
	// Host is the partition the artifact lives in.
	Host int
	// Builder is the worker index that produced (or last refreshed) it.
	Builder int
	// ReadySec is the virtual time its build (or fetch) completed.
	ReadySec float64
}

// Locality classifies a Lookup outcome.
type Locality int

const (
	// Miss: no partition holds the artifact — a full build is needed.
	Miss Locality = iota
	// LocalHit: the requesting host's partition holds it — a store fetch.
	LocalHit
	// RemoteHit: another host's partition holds it — fetch plus a
	// cross-host transfer.
	RemoteHit
)

// String names the locality.
func (l Locality) String() string {
	switch l {
	case LocalHit:
		return "local"
	case RemoteHit:
		return "remote"
	default:
		return "miss"
	}
}

// Stats are the store's monotone counters.
type Stats struct {
	Hits       int // same-host lookups served
	RemoteHits int // lookups served from another host's partition
	Misses     int // lookups no partition could serve
	Puts       int // inserts and refreshes
	Evictions  int // LRU evictions forced by the capacity bound
}

// Store is an LRU-bounded content-addressed artifact store partitioned by
// host. Partition capacity models the per-host image-cache disk budget:
// beyond it, the least-recently-used artifact of that partition is
// evicted. A capacity of 0 or below means unbounded.
type Store struct {
	parts []partition
	cap   int
	stats Stats
}

// partition is one host's slice of the store: a digest index over an LRU
// list (front = most recently used). list.Element values are Artifact.
type partition struct {
	byKey map[uint64]*list.Element
	order *list.List
}

// NewStore returns a store with one partition per host.
func NewStore(hosts, capacityPerHost int) *Store {
	if hosts < 1 {
		hosts = 1
	}
	s := &Store{parts: make([]partition, hosts), cap: capacityPerHost}
	for i := range s.parts {
		s.parts[i] = partition{byKey: map[uint64]*list.Element{}, order: list.New()}
	}
	return s
}

// Hosts returns the partition count.
func (s *Store) Hosts() int { return len(s.parts) }

// Len returns the number of artifacts in a host's partition.
func (s *Store) Len(host int) int { return len(s.part(host).byKey) }

// Stats returns the counters.
func (s *Store) Stats() Stats { return s.stats }

func (s *Store) part(host int) *partition {
	if host < 0 || host >= len(s.parts) {
		panic(fmt.Sprintf("artifact: host %d outside the %d-partition store", host, len(s.parts)))
	}
	return &s.parts[host]
}

// Lookup resolves a digest for a worker on the given host: its own
// partition first, then the other partitions in ascending host order (the
// deterministic tie-break when several hosts hold the artifact). A hit
// refreshes the artifact's recency in the partition that holds it.
func (s *Store) Lookup(host int, key uint64) (Artifact, Locality) {
	if el, ok := s.part(host).touch(key); ok {
		s.stats.Hits++
		return el, LocalHit
	}
	for h := range s.parts {
		if h == host {
			continue
		}
		if el, ok := s.parts[h].touch(key); ok {
			s.stats.RemoteHits++
			return el, RemoteHit
		}
	}
	s.stats.Misses++
	return Artifact{}, Miss
}

// Contains reports whether the host's partition holds the digest, without
// touching recency or counters — the read-only probe dispatch policies
// use, so a placement question never perturbs a later lookup's outcome.
func (s *Store) Contains(host int, key uint64) bool {
	_, ok := s.part(host).byKey[key]
	return ok
}

// ClearHost empties a host's partition — the artifact loss of a host-down
// fault — and returns how many artifacts were lost. Counters are
// unchanged: loss is not eviction, and the monotone stats keep describing
// lookup traffic only.
func (s *Store) ClearHost(host int) int {
	p := s.part(host)
	n := len(p.byKey)
	p.byKey = map[uint64]*list.Element{}
	p.order.Init()
	return n
}

// touch returns the partition's artifact for key, moving it to the front
// of the LRU order.
func (p *partition) touch(key uint64) (Artifact, bool) {
	el, ok := p.byKey[key]
	if !ok {
		return Artifact{}, false
	}
	p.order.MoveToFront(el)
	return el.Value.(Artifact), true
}

// State is a serializable image of a store: per-partition artifact lists
// in LRU order (most recent first) plus the counters. It is the unit of
// session checkpointing — a restored store resumes with identical lookup,
// recency, and eviction behavior.
type State struct {
	// Partitions lists each host's artifacts front-to-back (most recently
	// used first).
	Partitions [][]Artifact `json:"partitions"`
	// Capacity is the per-host capacity bound the store ran with.
	Capacity int `json:"capacity"`
	// Stats are the monotone counters at checkpoint time.
	Stats Stats `json:"stats"`
}

// Snapshot captures the store's full state.
func (s *Store) Snapshot() *State {
	st := &State{Partitions: make([][]Artifact, len(s.parts)), Capacity: s.cap, Stats: s.stats}
	for h := range s.parts {
		arts := make([]Artifact, 0, s.parts[h].order.Len())
		for el := s.parts[h].order.Front(); el != nil; el = el.Next() {
			arts = append(arts, el.Value.(Artifact))
		}
		st.Partitions[h] = arts
	}
	return st
}

// Restore rebuilds a store from a snapshot, reproducing partition
// contents, LRU order, and counters exactly.
func Restore(st *State) *Store {
	s := NewStore(len(st.Partitions), st.Capacity)
	for h, arts := range st.Partitions {
		p := s.part(h)
		// PushBack in front-to-back order reproduces the recency list.
		for _, a := range arts {
			p.byKey[a.Key] = p.order.PushBack(a)
		}
	}
	s.stats = st.Stats
	return s
}

// Put inserts the artifact into its host's partition (or refreshes the
// existing entry's metadata and recency), evicting the partition's
// least-recently-used artifact when the capacity bound is exceeded.
func (s *Store) Put(a Artifact) {
	p := s.part(a.Host)
	s.stats.Puts++
	if el, ok := p.byKey[a.Key]; ok {
		el.Value = a
		p.order.MoveToFront(el)
		return
	}
	p.byKey[a.Key] = p.order.PushFront(a)
	if s.cap > 0 && p.order.Len() > s.cap {
		lru := p.order.Back()
		p.order.Remove(lru)
		delete(p.byKey, lru.Value.(Artifact).Key)
		s.stats.Evictions++
	}
}
