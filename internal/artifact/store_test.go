package artifact

import "testing"

func TestLookupMissThenLocalHit(t *testing.T) {
	s := NewStore(2, 0)
	if _, loc := s.Lookup(0, 42); loc != Miss {
		t.Fatalf("empty store lookup = %v, want miss", loc)
	}
	s.Put(Artifact{Key: 42, Host: 0, Builder: 3, ReadySec: 100})
	a, loc := s.Lookup(0, 42)
	if loc != LocalHit {
		t.Fatalf("lookup = %v, want local hit", loc)
	}
	if a.Builder != 3 || a.ReadySec != 100 {
		t.Fatalf("artifact metadata lost: %+v", a)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.RemoteHits != 0 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRemoteHitPrefersOwnPartition(t *testing.T) {
	s := NewStore(3, 0)
	s.Put(Artifact{Key: 7, Host: 2})
	if _, loc := s.Lookup(0, 7); loc != RemoteHit {
		t.Fatalf("cross-host lookup = %v, want remote hit", loc)
	}
	// Once the requesting host also holds it, the local copy wins.
	s.Put(Artifact{Key: 7, Host: 0, Builder: 1})
	a, loc := s.Lookup(0, 7)
	if loc != LocalHit || a.Host != 0 {
		t.Fatalf("lookup after replication = %v host %d, want local hit on host 0", loc, a.Host)
	}
	if st := s.Stats(); st.RemoteHits != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRemoteLookupAscendingHostOrder(t *testing.T) {
	// When several hosts hold the artifact, the lowest host index serves it
	// — the deterministic tie-break.
	s := NewStore(4, 0)
	s.Put(Artifact{Key: 9, Host: 3, Builder: 30})
	s.Put(Artifact{Key: 9, Host: 1, Builder: 10})
	a, loc := s.Lookup(0, 9)
	if loc != RemoteHit || a.Host != 1 {
		t.Fatalf("lookup = %v host %d, want remote hit from host 1", loc, a.Host)
	}
}

func TestLRUEvictionPerPartition(t *testing.T) {
	s := NewStore(2, 2)
	s.Put(Artifact{Key: 1, Host: 0})
	s.Put(Artifact{Key: 2, Host: 0})
	s.Lookup(0, 1) // refresh 1: now 2 is the LRU entry
	s.Put(Artifact{Key: 3, Host: 0})
	if s.Len(0) != 2 {
		t.Fatalf("partition length %d, want capacity 2", s.Len(0))
	}
	if _, loc := s.Lookup(0, 2); loc != Miss {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	for _, key := range []uint64{1, 3} {
		if _, loc := s.Lookup(0, key); loc != LocalHit {
			t.Fatalf("key %d should have survived eviction", key)
		}
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// The other partition has its own budget: filling host 1 evicts
	// nothing further from host 0.
	s.Put(Artifact{Key: 10, Host: 1})
	s.Put(Artifact{Key: 11, Host: 1})
	if s.Len(0) != 2 || s.Len(1) != 2 {
		t.Fatalf("partition lengths %d/%d, want 2/2", s.Len(0), s.Len(1))
	}
}

func TestPutRefreshDoesNotEvict(t *testing.T) {
	s := NewStore(1, 2)
	s.Put(Artifact{Key: 1, Host: 0})
	s.Put(Artifact{Key: 2, Host: 0})
	s.Put(Artifact{Key: 1, Host: 0, Builder: 9}) // refresh, not insert
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("refresh evicted: %+v", st)
	}
	if a, loc := s.Lookup(0, 1); loc != LocalHit || a.Builder != 9 {
		t.Fatalf("refresh lost metadata: %+v (%v)", a, loc)
	}
	// Refresh moved 1 to the front, so the next insert evicts 2.
	s.Put(Artifact{Key: 3, Host: 0})
	if _, loc := s.Lookup(0, 2); loc != Miss {
		t.Fatal("key 2 should be the eviction victim after 1's refresh")
	}
}

func TestUnboundedCapacity(t *testing.T) {
	s := NewStore(1, 0)
	for k := uint64(0); k < 100; k++ {
		s.Put(Artifact{Key: k, Host: 0})
	}
	if s.Len(0) != 100 || s.Stats().Evictions != 0 {
		t.Fatalf("unbounded store evicted: len %d, stats %+v", s.Len(0), s.Stats())
	}
}

func TestHostClamping(t *testing.T) {
	if NewStore(0, 0).Hosts() != 1 {
		t.Fatal("a store needs at least one partition")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range host must panic (engine bug)")
		}
	}()
	NewStore(2, 0).Lookup(5, 1)
}
