// Package core implements the Wayfinder engine: the automated
// configure→build→boot→benchmark loop of §3.1, with the build-skip
// optimization, crash accounting, iteration/virtual-time budgets, result
// history, and reporting. It is the paper's "evaluation platform able to
// configure, build, run, and benchmark OSes automatically".
package core

import (
	"encoding/json"
	"fmt"

	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
	"wayfinder/internal/simos"
	"wayfinder/internal/stats"
)

// Metric turns a successfully-benchmarked configuration into the value
// the search optimizes. Implementations may be stateful (the Fig 11 score
// normalizes against the session's running range).
type Metric interface {
	// Name identifies the metric.
	Name() string
	// Unit is the reporting unit.
	Unit() string
	// Maximize reports the optimization direction.
	Maximize() bool
	// Measure evaluates a non-crashing configuration.
	Measure(m *simos.Model, app *simos.App, c *configspace.Config, noise *rng.RNG) float64
}

// PerfMetric measures the application benchmark metric (throughput or
// latency, per the app's definition).
type PerfMetric struct {
	App *simos.App
}

// Name implements Metric.
func (p *PerfMetric) Name() string { return "performance" }

// Unit implements Metric.
func (p *PerfMetric) Unit() string { return p.App.Unit }

// Maximize implements Metric.
func (p *PerfMetric) Maximize() bool { return p.App.Maximize }

// Measure implements Metric.
func (p *PerfMetric) Measure(m *simos.Model, app *simos.App, c *configspace.Config, noise *rng.RNG) float64 {
	return m.Performance(c, app, noise)
}

// MemoryMetric measures the booted image's memory footprint in MB
// (minimize) — the Fig 10 objective.
type MemoryMetric struct{}

// Name implements Metric.
func (MemoryMetric) Name() string { return "memory" }

// Unit implements Metric.
func (MemoryMetric) Unit() string { return "MB" }

// Maximize implements Metric.
func (MemoryMetric) Maximize() bool { return false }

// Measure implements Metric.
func (MemoryMetric) Measure(m *simos.Model, app *simos.App, c *configspace.Config, noise *rng.RNG) float64 {
	return m.MemoryMB(c, noise)
}

// ScoreMetric is the joint throughput–memory objective of Fig 11/Table 4:
//
//	s = mXNorm(t) − mXNorm(m)                     (Eq. 4)
//
// where mXNorm is min-max normalization over the session's observations so
// far. Throughput and memory are measured on every evaluation; the raw
// pairs are retained so the final report can re-normalize over the whole
// session exactly as the paper's post-processing does.
type ScoreMetric struct {
	throughputs []float64
	memories    []float64
}

// Name implements Metric.
func (s *ScoreMetric) Name() string { return "score" }

// Unit implements Metric.
func (s *ScoreMetric) Unit() string { return "score" }

// Maximize implements Metric.
func (s *ScoreMetric) Maximize() bool { return true }

// Measure implements Metric.
func (s *ScoreMetric) Measure(m *simos.Model, app *simos.App, c *configspace.Config, noise *rng.RNG) float64 {
	t := m.Performance(c, app, noise)
	mem := m.MemoryMB(c, noise)
	s.throughputs = append(s.throughputs, t)
	s.memories = append(s.memories, mem)
	return s.scoreAt(len(s.throughputs) - 1)
}

// scoreAt computes the Eq. 4 score of observation i under the *current*
// normalization ranges.
func (s *ScoreMetric) scoreAt(i int) float64 {
	tn := stats.MinMaxNorm(s.throughputs)
	mn := stats.MinMaxNorm(s.memories)
	return tn[i] - mn[i]
}

// Pair returns the raw (throughput, memory) observation i.
func (s *ScoreMetric) Pair(i int) (throughput, memory float64) {
	return s.throughputs[i], s.memories[i]
}

// Len returns the number of measured pairs.
func (s *ScoreMetric) Len() int { return len(s.throughputs) }

// scoreMetricState is the serialized running-normalization state.
type scoreMetricState struct {
	Throughputs []float64 `json:"throughputs"`
	Memories    []float64 `json:"memories"`
}

// CheckpointMetric implements CheckpointableMetric: the running
// normalization ranges are session state, and a resumed session must
// normalize exactly as the uninterrupted one would.
func (s *ScoreMetric) CheckpointMetric() ([]byte, error) {
	return json.Marshal(scoreMetricState{Throughputs: s.throughputs, Memories: s.memories})
}

// RestoreMetric implements CheckpointableMetric.
func (s *ScoreMetric) RestoreMetric(data []byte) error {
	var st scoreMetricState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: score-metric checkpoint: %w", err)
	}
	s.throughputs = append(s.throughputs[:0:0], st.Throughputs...)
	s.memories = append(s.memories[:0:0], st.Memories...)
	return nil
}

// FinalScores re-normalizes all observations over the whole session and
// returns the Eq. 4 score per observation — the values Table 4 ranks.
func (s *ScoreMetric) FinalScores() []float64 {
	tn := stats.MinMaxNorm(s.throughputs)
	mn := stats.MinMaxNorm(s.memories)
	out := make([]float64, len(tn))
	for i := range tn {
		out[i] = tn[i] - mn[i]
	}
	return out
}
