package core

import (
	"encoding/json"
	"fmt"
	"time"

	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
	"wayfinder/internal/stats"
	"wayfinder/internal/vm"
)

// Options configures one search session.
type Options struct {
	// Iterations is the iteration budget (0 = unbounded; TimeBudgetSec
	// must then be set).
	Iterations int
	// TimeBudgetSec is the virtual-time budget in seconds (0 = unbounded).
	TimeBudgetSec float64
	// Seed drives measurement noise and evaluation-time jitter.
	Seed uint64
	// WarmStart evaluates the space default first, anchoring the session
	// (off by default: the paper kickstarts every search with a random
	// configuration).
	WarmStart bool
}

// Result is one evaluated configuration.
type Result struct {
	// Iteration is the 0-based iteration index.
	Iteration int `json:"iteration"`
	// Config is the evaluated configuration (not serialized).
	Config *configspace.Config `json:"-"`
	// ConfigString is the compact non-default rendering.
	ConfigString string `json:"config"`
	// Metric is the measured value; 0 when Crashed.
	Metric float64 `json:"metric"`
	// Crashed reports a build/boot/run failure.
	Crashed bool `json:"crashed"`
	// Stage is the failing stage ("ok" otherwise).
	Stage string `json:"stage"`
	// Reason is the failure reason, if any.
	Reason string `json:"reason,omitempty"`
	// BuildSkipped reports the §3.1 optimization: the previous image was
	// reused because only runtime/boot parameters changed.
	BuildSkipped bool `json:"build_skipped"`
	// StartSec/EndSec are virtual timestamps.
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
	// DecisionCost is the real time the searcher spent deciding.
	DecisionCost time.Duration `json:"decision_cost_ns"`
}

// Report summarizes a session.
type Report struct {
	// Searcher names the strategy.
	Searcher string `json:"searcher"`
	// Metric and Unit describe the objective.
	Metric string `json:"metric"`
	Unit   string `json:"unit"`
	// Maximize is the optimization direction.
	Maximize bool `json:"maximize"`
	// History lists every iteration in order.
	History []Result `json:"history"`
	// Best is the best non-crashed result (nil if every run crashed).
	Best *Result `json:"best,omitempty"`
	// BestTimeSec is the virtual time at which Best finished — Table 2's
	// "avg. time to find".
	BestTimeSec float64 `json:"best_time_sec"`
	// Crashes is the total crash count.
	Crashes int `json:"crashes"`
	// ElapsedSec is the session's virtual duration.
	ElapsedSec float64 `json:"elapsed_sec"`
	// Builds counts actual image builds (vs skipped).
	Builds int `json:"builds"`
}

// CrashRate returns the overall crash fraction.
func (r *Report) CrashRate() float64 {
	if len(r.History) == 0 {
		return 0
	}
	return float64(r.Crashes) / float64(len(r.History))
}

// CrashRateSeries returns the trailing-window crash rate per iteration
// (the dashed curves of Fig 6).
func (r *Report) CrashRateSeries(window int) []float64 {
	events := make([]bool, len(r.History))
	for i, h := range r.History {
		events[i] = h.Crashed
	}
	return stats.MovingRate(events, window)
}

// BestSoFarSeries returns, per iteration, the best metric value observed
// up to and including it (crashes carry the previous best forward).
func (r *Report) BestSoFarSeries() []float64 {
	out := make([]float64, len(r.History))
	have := false
	best := 0.0
	for i, h := range r.History {
		if !h.Crashed {
			if !have || (r.Maximize && h.Metric > best) || (!r.Maximize && h.Metric < best) {
				best, have = h.Metric, true
			}
		}
		out[i] = best
	}
	return out
}

// SmoothedMetricSeries returns the EWMA-smoothed per-iteration metric, with
// crashes holding the previous smoothed value (how the paper's Fig 6
// renders noisy sessions).
func (r *Report) SmoothedMetricSeries(alpha float64) []float64 {
	out := make([]float64, len(r.History))
	var cur float64
	started := false
	for i, h := range r.History {
		if h.Crashed {
			out[i] = cur
			continue
		}
		if !started {
			cur, started = h.Metric, true
		} else {
			cur = alpha*h.Metric + (1-alpha)*cur
		}
		out[i] = cur
	}
	return out
}

// MarshalJSON serializes the report (configs as strings).
func (r *Report) MarshalJSON() ([]byte, error) {
	type alias Report
	return json.Marshal((*alias)(r))
}

// Engine runs search sessions against a simulated OS model.
type Engine struct {
	Model    *simos.Model
	App      *simos.App
	Metric   Metric
	Searcher search.Searcher
	Clock    *vm.Clock

	enc   *configspace.Encoder
	noise *rng.RNG
}

// NewEngine assembles an engine. The clock may be shared across engines
// to model sequential experiments.
func NewEngine(model *simos.Model, app *simos.App, metric Metric, s search.Searcher, clock *vm.Clock, seed uint64) *Engine {
	return &Engine{
		Model:    model,
		App:      app,
		Metric:   metric,
		Searcher: s,
		Clock:    clock,
		enc:      configspace.NewEncoder(model.Space),
		noise:    rng.New(seed ^ 0xe7617e),
	}
}

// Run executes the core loop of §3.1: 1) build and boot an image for the
// proposed configuration, 2) benchmark the application, 3) ask the search
// algorithm for the next configuration — until the budget is exhausted.
func (e *Engine) Run(opts Options) (*Report, error) {
	if opts.Iterations <= 0 && opts.TimeBudgetSec <= 0 {
		return nil, fmt.Errorf("core: no budget given (iterations or virtual time)")
	}
	report := &Report{
		Searcher: e.Searcher.Name(),
		Metric:   e.Metric.Name(),
		Unit:     e.Metric.Unit(),
		Maximize: e.Metric.Maximize(),
	}
	var prevBuilt *configspace.Config // configuration of the last built image
	var prevBooted *configspace.Config

	for iter := 0; ; iter++ {
		if opts.Iterations > 0 && iter >= opts.Iterations {
			break
		}
		if opts.TimeBudgetSec > 0 && e.Clock.Now() >= opts.TimeBudgetSec {
			break
		}
		var cfg *configspace.Config
		if opts.WarmStart && iter == 0 {
			cfg = e.Model.Space.Default()
		} else {
			cfg = e.Searcher.Propose()
		}
		res := e.evaluate(iter, cfg, &prevBuilt, &prevBooted, report)
		report.History = append(report.History, res)
		if res.Crashed {
			report.Crashes++
		} else if report.Best == nil ||
			(report.Maximize && res.Metric > report.Best.Metric) ||
			(!report.Maximize && res.Metric < report.Best.Metric) {
			best := res
			report.Best = &best
			report.BestTimeSec = res.EndSec
		}
		e.Searcher.Observe(search.Observation{
			Config:  cfg,
			X:       e.enc.Encode(cfg),
			Metric:  res.Metric,
			Crashed: res.Crashed,
			Stage:   res.Stage,
		})
		report.History[len(report.History)-1].DecisionCost = e.Searcher.DecisionCost()
		// Grid adopts improvements as its sweep base.
		if g, ok := e.Searcher.(*search.Grid); ok && report.Best != nil {
			g.AdoptBase(report.Best.Config)
		}
	}
	report.ElapsedSec = e.Clock.Now()
	return report, nil
}

// evaluate charges the virtual costs of building, booting, and
// benchmarking one configuration, honoring the §3.1 build-skip
// optimization, and returns the result.
func (e *Engine) evaluate(iter int, cfg *configspace.Config, prevBuilt, prevBooted **configspace.Config, report *Report) Result {
	res := Result{
		Iteration:    iter,
		Config:       cfg,
		ConfigString: cfg.String(),
		Stage:        "ok",
		StartSec:     e.Clock.Now(),
	}
	jitter := func(base, frac float64) float64 {
		return base * (1 + frac*(e.noise.Float64()-0.5))
	}
	stage, reason := e.Model.CrashOutcome(cfg)

	// Build task: skipped when the configuration differs from the last
	// built image only in boot/runtime parameters (§3.1).
	needBuild := *prevBuilt == nil || !cfg.OnlyBootOrRuntimeDiff(*prevBuilt)
	if needBuild {
		e.Clock.Advance(jitter(e.Model.BuildSeconds, 0.3))
		report.Builds++
		if stage == simos.StageBuild {
			res.Crashed, res.Stage, res.Reason = true, stage.String(), reason
			res.EndSec = e.Clock.Now()
			return res
		}
		*prevBuilt = cfg.Clone()
		*prevBooted = nil // new image must boot
	} else {
		res.BuildSkipped = true
		if stage == simos.StageBuild {
			// The differing parameters are boot/runtime, but the hidden
			// build outcome keys off compile parameters only, so a skipped
			// build cannot fail. Guard anyway.
			res.Crashed, res.Stage, res.Reason = true, stage.String(), reason
			res.EndSec = e.Clock.Now()
			return res
		}
	}

	// Boot task: a reboot is needed unless only runtime parameters differ
	// from the currently-running instance; runtime deltas are applied live
	// (a few seconds of sysctl writes).
	needBoot := *prevBooted == nil || !cfg.OnlyRuntimeDiff(*prevBooted)
	if needBoot {
		e.Clock.Advance(jitter(e.Model.BootSeconds, 0.3))
	} else {
		e.Clock.Advance(jitter(2, 0.5))
	}
	if stage == simos.StageBoot {
		res.Crashed, res.Stage, res.Reason = true, stage.String(), reason
		res.EndSec = e.Clock.Now()
		*prevBooted = nil
		return res
	}
	*prevBooted = cfg.Clone()

	// Test task: run the benchmark.
	benchTime := e.App.BenchSeconds
	if _, isMem := e.Metric.(MemoryMetric); isMem {
		benchTime = 6 // footprint measurement needs no load generation
	}
	if stage == simos.StageRun {
		// Crashes surface partway through the benchmark.
		e.Clock.Advance(jitter(benchTime*0.4, 0.5))
		res.Crashed, res.Stage, res.Reason = true, stage.String(), reason
		res.EndSec = e.Clock.Now()
		*prevBooted = nil // crashed instance must be replaced
		return res
	}
	e.Clock.Advance(jitter(benchTime, 0.25))
	res.Metric = e.Metric.Measure(e.Model, e.App, cfg, e.noise)
	res.EndSec = e.Clock.Now()
	return res
}
