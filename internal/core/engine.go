package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"wayfinder/internal/configspace"
	"wayfinder/internal/corpus"
	"wayfinder/internal/fault"
	"wayfinder/internal/rng"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
	"wayfinder/internal/stats"
	"wayfinder/internal/vm"
)

// Options configures one search session.
type Options struct {
	// Iterations is the iteration budget (0 = unbounded; TimeBudgetSec
	// must then be set).
	Iterations int
	// TimeBudgetSec is the virtual-time budget in seconds (0 = unbounded).
	TimeBudgetSec float64
	// Seed drives measurement noise and evaluation-time jitter.
	Seed uint64
	// WarmStart evaluates the space default first, anchoring the session
	// (off by default: the paper kickstarts every search with a random
	// configuration).
	WarmStart bool
	// Workers is the number of concurrent evaluators (§3.1's parallel
	// worker VMs). 0 or 1 preserves the sequential engine exactly; W > 1
	// evaluates W configurations concurrently per round, with per-worker
	// virtual clocks merged into a wall-clock (max over workers) and
	// deterministic per-worker noise streams, so a session is reproducible
	// for a fixed (Seed, Workers) pair.
	Workers int
	// Async replaces the round-barrier worker pool with the event-driven
	// asynchronous scheduler: a virtual event queue ordered by
	// (finish-time, worker-index) refills each worker the moment its
	// previous evaluation completes, so one slow build no longer stalls
	// the whole pool. Dispatch order is a pure function of virtual finish
	// times, never goroutine scheduling, so sessions stay byte-reproducible
	// for a fixed (Seed, Workers, Staleness) triple. Only meaningful with
	// Workers > 1.
	Async bool
	// Staleness bounds the asynchrony: a proposal may be drawn only while
	// at most Staleness already-dispatched evaluations remain unobserved,
	// so no proposal conditions on a history more than Staleness
	// evaluations behind the frontier. 0 degenerates to the synchronous
	// round scheduler (every proposal batch sees a fully-observed
	// history); negative (or ≥ Workers-1) means unbounded — full
	// asynchrony. Ignored unless Async is set.
	Staleness int
	// WorkerSpeedFactors models heterogeneous worker hardware: the virtual
	// duration of every task (build, boot, benchmark) on worker i is
	// multiplied by WorkerSpeedFactors[i]. 1 (or a missing entry) is
	// nominal speed; 4 models a four-times-slower straggler. The factor
	// scales durations only — noise streams draw identically — so
	// sessions remain deterministic.
	WorkerSpeedFactors []float64
	// Hosts partitions the workers into that many simulated hosts (0 or 1
	// = a single host). Workers on one host share an artifact-store
	// partition; an image cached on another host costs an extra
	// Model.TransferSeconds to fetch. Placement is HostOf, a pure function
	// of (worker, Workers, Hosts), so sessions stay byte-reproducible per
	// (Seed, Workers, Staleness, Hosts).
	Hosts int
	// DisableCache turns the shared content-addressed artifact store off,
	// restoring the historical behavior where each worker only ever reuses
	// its own previously-built image. With Hosts ≤ 1 this reproduces
	// pre-cache reports byte-for-byte.
	DisableCache bool
	// CacheCapacity bounds each host's artifact-store partition (the
	// per-host image-cache disk budget, in artifacts); beyond it the
	// least-recently-used artifact is evicted. 0 or below = unbounded.
	CacheCapacity int
	// Faults is the deterministic fault schedule injected into the session
	// (nil = fault-free, today's behavior exactly). Host-down events lose
	// the host's artifacts and kill its in-flight evaluations; preemptions
	// kill one worker's evaluation; build/boot injections fail a specific
	// (iteration, attempt). Killed or injected-failed evaluations are
	// retried under the schedule's RetryPolicy — on another host when the
	// original is down — and the session stays a pure function of (Seed,
	// Workers, Staleness, Hosts, Faults, Dispatch).
	Faults *fault.Schedule
	// Dispatch selects the worker-placement policy: "" or "static" keeps
	// the historical i-mod-W placement; "locality" routes an evaluation to
	// a live worker whose host already holds the image artifact (falling
	// back to static), recovering most of the cross-host transfer cost.
	Dispatch string
	// SurrogateWindow bounds a learned searcher's surrogate to a sliding
	// window of the most recent observations (0 = unbounded history, the
	// historical behavior). With a window, per-decision cost stops growing
	// with session length: the GP downdates the oldest observation out of
	// its factor in O(n²) instead of refitting, and DeepTune retrains over
	// the window only. Requires a searcher implementing search.Windowed
	// (bayesian, deeptune); minimum 8 — smaller windows leave the
	// surrogate nothing to learn from.
	SurrogateWindow int
	// Corpus is the transfer corpus the session draws warm starts from
	// and deposits its outcome into on completion (nil = no tuning
	// memory, the historical behavior). Never serialized: snapshots
	// capture the resolved warm-start seeds instead, so a resumed session
	// replays the exact query answer rather than re-asking a corpus that
	// may have grown since.
	Corpus *corpus.Store `json:"-"`
	// WarmStartK asks the corpus for up to K seed configurations to
	// evaluate before the searcher's own proposals (plus a DTM weight
	// restore when both the corpus entry and the searcher are DeepTune).
	// 0 disables warm starting — the session still deposits on
	// completion. Requires Corpus. An empty corpus resolves to zero seeds
	// and leaves the session byte-identical to one with no corpus at all.
	WarmStartK int
}

// Validate rejects option combinations that would otherwise run a
// silently-misconfigured session. It is the single validation authority:
// Session construction (and therefore Engine.Run), wfctl, and wfbench all
// call it, so a library caller gets the same errors the CLI surfaces
// instead of a quietly clamped or reinterpreted session.
func (o *Options) Validate() error {
	if o.Iterations <= 0 && o.TimeBudgetSec <= 0 {
		return fmt.Errorf("core: no budget given (iterations or virtual time)")
	}
	if o.Iterations < 0 {
		return fmt.Errorf("core: negative iteration budget %d", o.Iterations)
	}
	if o.TimeBudgetSec < 0 {
		return fmt.Errorf("core: negative time budget %g", o.TimeBudgetSec)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d", o.Workers)
	}
	if o.Staleness != 0 && !o.Async {
		return fmt.Errorf("core: Staleness only applies to the async scheduler; set Async")
	}
	if o.Hosts < 0 {
		return fmt.Errorf("core: negative host count %d", o.Hosts)
	}
	if o.Hosts > o.effWorkers() {
		return fmt.Errorf("core: %d hosts exceed %d workers: a host without workers contributes nothing",
			o.Hosts, o.effWorkers())
	}
	if o.DisableCache && o.Hosts > 1 {
		return fmt.Errorf("core: Hosts only shapes artifact-cache locality, which DisableCache disables")
	}
	for i, f := range o.WorkerSpeedFactors {
		if f < 0 {
			return fmt.Errorf("core: negative speed factor %g for worker %d", f, i)
		}
	}
	if o.SurrogateWindow != 0 && o.SurrogateWindow < 8 {
		return fmt.Errorf("core: surrogate window %d is too small for a surrogate to learn from (minimum 8; 0 disables)",
			o.SurrogateWindow)
	}
	if o.WarmStartK < 0 {
		return fmt.Errorf("core: negative warm-start count %d", o.WarmStartK)
	}
	switch o.Dispatch {
	case "", DispatchStatic:
	case DispatchLocality:
		if o.DisableCache {
			return fmt.Errorf("core: locality dispatch routes builds by artifact-store contents, which DisableCache disables")
		}
	default:
		return fmt.Errorf("core: unknown dispatch policy %q (want %q or %q)", o.Dispatch, DispatchStatic, DispatchLocality)
	}
	if err := o.Faults.Validate(o.effHosts(), o.effWorkers()); err != nil {
		return fmt.Errorf("core: fault schedule: %w", err)
	}
	return nil
}

// Dispatch policy names (Options.Dispatch).
const (
	// DispatchStatic is the historical placement: iteration i prefers
	// worker i mod W (round scheduler) or the first idle worker (async).
	DispatchStatic = "static"
	// DispatchLocality prefers a live worker already holding the image —
	// its own disk first, then a worker whose host store has the digest —
	// falling back to static placement.
	DispatchLocality = "locality"
)

// effWorkers returns the effective worker count (sequential = 1).
func (o *Options) effWorkers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// effHosts returns the effective host count, clamped to [1, workers]: a
// host with no workers contributes nothing to a session.
func (o *Options) effHosts() int {
	h := o.Hosts
	if h < 1 {
		h = 1
	}
	if w := o.effWorkers(); h > w {
		h = w
	}
	return h
}

// HostOf returns the host index worker w runs on: workers are split into
// Hosts contiguous, balanced groups (worker·Hosts/Workers), a pure
// function of (worker, Workers, Hosts) so fleet placement never depends
// on scheduling.
func (o *Options) HostOf(worker int) int {
	return worker * o.effHosts() / o.effWorkers()
}

// workerSpeed returns worker i's virtual-duration multiplier (1 = nominal).
func (o *Options) workerSpeed(i int) float64 {
	if i < len(o.WorkerSpeedFactors) && o.WorkerSpeedFactors[i] > 0 {
		return o.WorkerSpeedFactors[i]
	}
	return 1
}

// StragglerFleet returns WorkerSpeedFactors for a fleet of nominal workers
// with the last one slowed by the given factor — the canonical straggler
// scenario the wfctl -straggler knob and the straggler experiment share.
func StragglerFleet(workers int, slow float64) []float64 {
	factors := make([]float64, workers)
	for i := range factors {
		factors[i] = 1
	}
	if workers > 0 {
		factors[workers-1] = slow
	}
	return factors
}

// Result is one evaluated configuration.
type Result struct {
	// Iteration is the 0-based iteration index.
	Iteration int `json:"iteration"`
	// Config is the evaluated configuration (not serialized directly —
	// ConfigKV is its round-trippable form).
	Config *configspace.Config `json:"-"`
	// ConfigString is the compact non-default rendering (lossy: a display
	// string, not a parseable assignment).
	ConfigString string `json:"config"`
	// ConfigKV is the canonical non-default assignment as a name→value
	// map — the round-trippable serialization of Config, filled when the
	// result is marshaled (reports, snapshots). Space.FromKV inverts it.
	ConfigKV map[string]string `json:"config_kv"`
	// Metric is the measured value; 0 when Crashed.
	Metric float64 `json:"metric"`
	// Crashed reports a build/boot/run failure.
	Crashed bool `json:"crashed"`
	// Stage is the failing stage ("ok" otherwise).
	Stage string `json:"stage"`
	// Reason is the failure reason, if any.
	Reason string `json:"reason,omitempty"`
	// BuildSkipped reports the §3.1 optimization: the previous image was
	// reused because only runtime/boot parameters changed.
	BuildSkipped bool `json:"build_skipped"`
	// CacheHit reports that the build was satisfied from the shared
	// artifact store (or by waiting on another worker's in-flight build of
	// the same image) instead of compiling.
	CacheHit bool `json:"cache_hit,omitempty"`
	// CacheRemote reports a CacheHit served from another host's store
	// partition, paying the cross-host transfer term.
	CacheRemote bool `json:"cache_remote,omitempty"`
	// StartSec/EndSec are virtual timestamps on the evaluating worker's
	// clock (in a sequential session, the session clock).
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
	// Worker is the evaluating worker's index (always 0 sequentially).
	Worker int `json:"worker"`
	// Host is the simulated host the evaluating worker belongs to.
	Host int `json:"host"`
	// DecisionCost is the real time the searcher spent deciding.
	DecisionCost time.Duration `json:"decision_cost_ns"`
	// Retries is the number of prior faulted attempts this observation
	// survived (0 in fault-free sessions — the field stays absent, keeping
	// empty-schedule reports byte-identical to historical ones).
	Retries int `json:"retries,omitempty"`

	// artifactKey is the image digest the build stage resolved; ticket the
	// in-flight-build registration (builders only); buildEndSec the
	// virtual time the worker held a usable image. The coordinator uses
	// them to publish artifacts in canonical observation order.
	artifactKey uint64
	ticket      *buildTicket
	buildEndSec float64
}

// Report summarizes a session.
type Report struct {
	// Searcher names the strategy.
	Searcher string `json:"searcher"`
	// Metric and Unit describe the objective.
	Metric string `json:"metric"`
	Unit   string `json:"unit"`
	// Maximize is the optimization direction.
	Maximize bool `json:"maximize"`
	// History lists every iteration in order.
	History []Result `json:"history"`
	// Best is the best non-crashed result (nil if every run crashed).
	Best *Result `json:"best,omitempty"`
	// BestTimeSec is the virtual time at which Best finished — Table 2's
	// "avg. time to find".
	BestTimeSec float64 `json:"best_time_sec"`
	// Crashes is the total crash count.
	Crashes int `json:"crashes"`
	// ElapsedSec is the session's virtual wall-clock duration: with
	// parallel workers, the maximum over per-worker clocks.
	ElapsedSec float64 `json:"elapsed_sec"`
	// ComputeSec is the aggregate virtual compute time summed over
	// workers — the cost-accounting figure. Equals the session's clock
	// advance for a sequential run.
	ComputeSec float64 `json:"compute_sec"`
	// IdleSec is the aggregate virtual idle time summed over workers: the
	// wall-clock wasted waiting (round barriers behind a straggler, the
	// end-of-session drain) rather than evaluating. Always 0 sequentially.
	IdleSec float64 `json:"idle_sec"`
	// Utilization is ComputeSec / (ComputeSec + IdleSec) — the fraction of
	// worker-time spent evaluating.
	Utilization float64 `json:"utilization"`
	// Workers is the worker count the session ran with.
	Workers int `json:"workers"`
	// Async reports whether the event-driven asynchronous scheduler ran
	// the session (false for sequential and round-barrier sessions).
	Async bool `json:"async,omitempty"`
	// Staleness is the effective staleness bound of an async session: the
	// maximum number of unobserved in-flight evaluations a proposal may
	// lag behind (at most Workers-1, the one-evaluation-per-worker cap).
	Staleness int `json:"staleness,omitempty"`
	// Hosts is the fleet size the session ran with (1 = single host).
	Hosts int `json:"hosts"`
	// Builds counts actual image builds (vs skipped or cache-served).
	Builds int `json:"builds"`
	// CacheHits counts builds served by the shared artifact store (local
	// and cross-host fetches, plus waits on another worker's in-flight
	// build). Always 0 when the store is disabled.
	CacheHits int `json:"cache_hits"`
	// CacheMisses counts full builds the store could not prevent (the
	// image digest was nowhere in the fleet). Always 0 when disabled.
	CacheMisses int `json:"cache_misses"`
	// CacheRemoteHits is the subset of CacheHits served from another
	// host's store partition, paying the cross-host transfer term.
	CacheRemoteHits int `json:"cache_remote_hits"`
	// BuildsSaved counts every avoided image build: §3.1 same-worker skips
	// plus CacheHits.
	BuildsSaved int `json:"builds_saved"`
	// Retries counts re-dispatches of faulted evaluations (each retry
	// attempt, not each retried iteration). 0 — and absent — in fault-free
	// sessions.
	Retries int `json:"retries,omitempty"`
	// LostObservations counts evaluations still awaiting a retry when the
	// session ended — iterations the fault schedule cost the report. The
	// elasticity acceptance criterion is that this stays 0.
	LostObservations int `json:"lost_observations,omitempty"`
	// HostDowntimeSec sums, over hosts, the virtual time spent down within
	// the session span — the independent variable wall-clock degradation
	// is measured against.
	HostDowntimeSec float64 `json:"host_downtime_sec,omitempty"`
	// TransferSavedSec estimates the cross-host transfer seconds locality
	// dispatch avoided versus static placement (accumulated at placement
	// time; 0 under static dispatch).
	TransferSavedSec float64 `json:"transfer_saved_sec,omitempty"`
	// CorpusHash is the content hash of the transfer corpus the session
	// warm-started from — part of the determinism contract: a session is
	// byte-reproducible per (seed, workers, staleness, hosts, schedule,
	// corpus hash). Absent when the session resolved nothing from a
	// corpus (no corpus, empty corpus, or WarmStartK 0), keeping those
	// reports byte-identical to historical ones.
	CorpusHash string `json:"corpus_hash,omitempty"`
	// CorpusSeeds is the number of corpus seed configurations the session
	// evaluated before its searcher's own proposals. Absent when 0.
	CorpusSeeds int `json:"corpus_seeds,omitempty"`
}

// HostStats is one host's slice of a report — the per-host build/fetch
// breakdown the fleet and locality experiments print.
type HostStats struct {
	Host       int     `json:"host"`
	Evals      int     `json:"evals"`
	Builds     int     `json:"builds"`      // full builds charged on this host
	CacheHits  int     `json:"cache_hits"`  // store-served builds (local + remote)
	RemoteHits int     `json:"remote_hits"` // subset fetched from another host
	BuildSkips int     `json:"build_skips"` // §3.1 same-worker reuses
	Crashes    int     `json:"crashes"`
	ComputeSec float64 `json:"compute_sec"` // end−start summed over the host's evals
}

// HostBreakdown aggregates the report history per host. The slice is
// indexed by host (length Hosts).
func (r *Report) HostBreakdown() []HostStats {
	hosts := r.Hosts
	if hosts < 1 {
		hosts = 1
	}
	out := make([]HostStats, hosts)
	for h := range out {
		out[h].Host = h
	}
	for i := range r.History {
		res := &r.History[i]
		if res.Host < 0 || res.Host >= hosts {
			continue
		}
		hs := &out[res.Host]
		hs.Evals++
		switch {
		case res.CacheHit:
			hs.CacheHits++
			if res.CacheRemote {
				hs.RemoteHits++
			}
		case res.BuildSkipped:
			hs.BuildSkips++
		default:
			hs.Builds++
		}
		if res.Crashed {
			hs.Crashes++
		}
		if d := res.EndSec - res.StartSec; d > 0 {
			hs.ComputeSec += d
		}
	}
	return out
}

// utilization is the shared ComputeSec/(ComputeSec+IdleSec) helper.
func utilization(computeSec, idleSec float64) float64 {
	if computeSec+idleSec <= 0 {
		return 0
	}
	return computeSec / (computeSec + idleSec)
}

// CrashRate returns the overall crash fraction.
func (r *Report) CrashRate() float64 {
	if len(r.History) == 0 {
		return 0
	}
	return float64(r.Crashes) / float64(len(r.History))
}

// CrashRateSeries returns the trailing-window crash rate per iteration
// (the dashed curves of Fig 6).
func (r *Report) CrashRateSeries(window int) []float64 {
	events := make([]bool, len(r.History))
	for i, h := range r.History {
		events[i] = h.Crashed
	}
	return stats.MovingRate(events, window)
}

// BestSoFarSeries returns, per iteration, the best metric value observed
// up to and including it (crashes carry the previous best forward).
// Iterations before the first non-crashed observation hold NaN: there is
// no best yet, and emitting 0.0 would chart leading crashes as a best of
// zero — wrong for maximize metrics and catastrophically wrong for
// minimize ones.
func (r *Report) BestSoFarSeries() []float64 {
	out := make([]float64, len(r.History))
	have := false
	best := math.NaN()
	for i, h := range r.History {
		if !h.Crashed {
			if !have || (r.Maximize && h.Metric > best) || (!r.Maximize && h.Metric < best) {
				best, have = h.Metric, true
			}
		}
		out[i] = best
	}
	return out
}

// SmoothedMetricSeries returns the EWMA-smoothed per-iteration metric, with
// crashes holding the previous smoothed value (how the paper's Fig 6
// renders noisy sessions).
func (r *Report) SmoothedMetricSeries(alpha float64) []float64 {
	out := make([]float64, len(r.History))
	var cur float64
	started := false
	for i, h := range r.History {
		if h.Crashed {
			out[i] = cur
			continue
		}
		if !started {
			cur, started = h.Metric, true
		} else {
			cur = alpha*h.Metric + (1-alpha)*cur
		}
		out[i] = cur
	}
	return out
}

// fillConfigKV populates the result's round-trippable assignment map from
// its in-memory Config (a no-op when already filled or configless).
func (r *Result) fillConfigKV() {
	if r.Config != nil && r.ConfigKV == nil {
		r.ConfigKV = r.Config.KV()
	}
}

// MarshalJSON serializes the report with every result's canonical
// config_kv assignment filled in, so a parsed report (or snapshot) can
// reconstruct the exact configurations via Space.FromKV instead of being
// left with the lossy display string.
func (r *Report) MarshalJSON() ([]byte, error) {
	type alias Report
	cp := *r
	cp.History = append([]Result(nil), r.History...)
	for i := range cp.History {
		cp.History[i].fillConfigKV()
	}
	if r.Best != nil {
		best := *r.Best
		best.fillConfigKV()
		cp.Best = &best
	}
	return json.Marshal((*alias)(&cp))
}

// noiseSalt decorrelates the engine's measurement-noise stream from other
// consumers of the session seed.
const noiseSalt = 0xe7617e

// Engine runs search sessions against a simulated OS model.
type Engine struct {
	Model    *simos.Model
	App      *simos.App
	Metric   Metric
	Searcher search.Searcher
	Clock    *vm.Clock

	enc   *configspace.Encoder
	noise *rng.RNG
	seed  uint64
}

// NewEngine assembles an engine. The clock may be shared across engines
// to model sequential experiments.
func NewEngine(model *simos.Model, app *simos.App, metric Metric, s search.Searcher, clock *vm.Clock, seed uint64) *Engine {
	return &Engine{
		Model:    model,
		App:      app,
		Metric:   metric,
		Searcher: s,
		Clock:    clock,
		enc:      configspace.NewEncoder(model.Space),
		noise:    rng.New(seed ^ noiseSalt),
		seed:     seed,
	}
}

// evalState is the state one evaluator (worker) threads through its
// evaluations: its virtual clock, its private noise stream, the stage
// digests of the image on its disk and the instance it is running (what
// the §3.1 skip optimizations key off), its build count, and its speed
// factor. Each worker owns one exclusively, so evaluations on distinct
// workers never share mutable state.
type evalState struct {
	worker int
	host   int
	clock  *vm.Clock
	// wall is the session wall-clock in parallel/async sessions (nil
	// sequentially); the build stage stalls against it while waiting on
	// another worker's in-flight build, so the wait is charged as idle
	// time. Stall touches only this worker's slice of the wall-clock, so
	// concurrent evaluations stay race-free.
	wall  *vm.WallClock
	noise *rng.RNG
	speed float64 // virtual-duration multiplier; 0 reads as nominal 1

	imageKey  uint64 // CompileKey of the image on the worker's disk
	haveImage bool
	bootKey   uint64 // BootKey of the currently-running instance
	haveBoot  bool
	builds    int
}

// advance charges a virtual duration to the worker's clock, scaled by its
// speed factor. The scaling happens after every noise draw, so slow and
// nominal workers consume their streams identically.
func (st *evalState) advance(seconds float64) {
	if st.speed > 0 {
		seconds *= st.speed
	}
	st.clock.Advance(seconds)
}

// jitter draws one multiplicative noise sample for a stage duration.
// Every build-stage outcome (build, fetch, await) draws exactly once, so
// a worker's stream position after any evaluation is independent of how
// its builds were satisfied.
func (st *evalState) jitter(base, frac float64) float64 {
	return base * (1 + frac*(st.noise.Float64()-0.5))
}

// Run executes the core loop of §3.1: 1) build and boot an image for the
// proposed configuration, 2) benchmark the application, 3) ask the search
// algorithm for the next configuration — until the budget is exhausted.
// With Options.Workers > 1 the loop is executed by the round-barrier
// worker-pool scheduler, or — with Options.Async and a non-zero staleness
// bound — by the event-driven asynchronous scheduler.
//
// Run is the blocking convenience wrapper over the stepwise Session state
// machine (session.go); callers that need to observe, interleave, cancel,
// or checkpoint a session use NewSession directly.
func (e *Engine) Run(opts Options) (*Report, error) {
	s, err := e.NewSession(opts)
	if err != nil {
		return nil, err
	}
	return s.Run(context.Background())
}

// runParallel forces the round-barrier scheduler regardless of the worker
// count — the W=1 ≡ sequential equivalence tests' entry point.
func (e *Engine) runParallel(opts Options) (*Report, error) {
	return e.newSession(opts, modeRound).Run(context.Background())
}

// runAsync forces the event-driven asynchronous scheduler.
func (e *Engine) runAsync(opts Options) (*Report, error) {
	return e.newSession(opts, modeAsync).Run(context.Background())
}

// newReport initializes a report's session-constant fields.
func (e *Engine) newReport(opts Options, workers int) *Report {
	return &Report{
		Searcher: e.Searcher.Name(),
		Metric:   e.Metric.Name(),
		Unit:     e.Metric.Unit(),
		Maximize: e.Metric.Maximize(),
		Workers:  workers,
		Hosts:    opts.effHosts(),
	}
}

// evaluate — the staged Build → Boot → Measure pipeline every scheduler
// (sequential, round-barrier, async) runs one configuration through —
// lives in pipeline.go, together with the coordinator-side build planning
// that consults the shared artifact store. The schedulers themselves are
// the Session state machine: session.go holds the shared stepwise loop and
// the sequential scheduler, parallel.go the round-barrier scheduler,
// async.go the bounded-staleness scheduler.
