package core

import (
	"context"
	"testing"

	"wayfinder/internal/apps"
	"wayfinder/internal/corpus"
	"wayfinder/internal/search"
	"wayfinder/internal/vm"
)

// corpusEngine builds an engine for corpus tests: app by pointer, searcher
// by kind, fresh clock.
func corpusEngine(t testing.TB, app string, kind string, seed uint64) *Engine {
	t.Helper()
	m := smallLinux(t)
	a, err := apps.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(m, a, &PerfMetric{App: a}, newSearcher(m, kind, seed), &vm.Clock{}, seed)
}

// seedCorpus runs one completed source session against the store so it
// holds exactly one deposited entry.
func seedCorpus(t testing.TB, st *corpus.Store, app, kind string, seed uint64, iters int) {
	t.Helper()
	eng := corpusEngine(t, app, kind, seed)
	if _, err := eng.Run(Options{Iterations: iters, Seed: seed, Corpus: st}); err != nil {
		t.Fatal(err)
	}
}

// TestCorpusEmptyGolden: a session given an empty corpus (with warm
// starting requested) must be byte-identical to a session with no corpus
// at all — pinned to the very hashes TestEmptyScheduleGolden pins the
// corpusless engine to, on all three schedulers.
func TestCorpusEmptyGolden(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"sequential", Options{Iterations: 40, Seed: 7},
			"15d65fc3a4b2a34440f1b1e4007dbe30f630199a499938420fc04a20d9c7f842"},
		{"round-w8-h4", Options{Iterations: 40, Seed: 7, Workers: 8, Hosts: 4},
			"8b76064dbf82d0d0b411c7c57176f86b962205aa3df27ef41a86077dd0e7a8bb"},
		{"async-w8-h2-s2", Options{Iterations: 40, Seed: 7, Workers: 8, Hosts: 2, Async: true, Staleness: 2},
			"252eec90b306a8f0981f3e0729d589655aae3577908511a60e96af6c6bbdd5a8"},
	}
	for _, tc := range cases {
		bare := tc.opts
		m := smallLinux(t)
		app := apps.Nginx()
		eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 7), &vm.Clock{}, 7)
		noCorpus, err := eng.Run(bare)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}

		st, err := corpus.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		warm := tc.opts
		warm.Corpus = st
		warm.WarmStartK = 4
		m2 := smallLinux(t)
		eng2 := NewEngine(m2, app, &PerfMetric{App: app}, search.NewRandom(m2.Space, 7), &vm.Clock{}, 7)
		withEmpty, err := eng2.Run(warm)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}

		if a, b := canonicalJSON(t, noCorpus), canonicalJSON(t, withEmpty); a != b {
			t.Errorf("%s: empty-corpus report differs from no-corpus report", tc.name)
		}
		if got := reportHash(t, withEmpty); got != tc.want {
			t.Errorf("%s: empty-corpus report hash %s, want the corpusless golden %s", tc.name, got, tc.want)
		}
		// The cold start must still deposit: memory accumulates even when
		// nothing was there to draw from.
		if st.Len() != 1 {
			t.Errorf("%s: completed session deposited %d entries, want 1", tc.name, st.Len())
		}
	}
}

// TestCorpusDepositAndWarmStart: a redis session deposits its outcome;
// an nginx session then warm-starts from it — seed configs first, DTM
// weights restored, report provenance recorded, events emitted, and its
// own outcome deposited back.
func TestCorpusDepositAndWarmStart(t *testing.T) {
	st, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, st, "redis", "deeptune", 11, 40)
	if st.Len() != 1 {
		t.Fatalf("source session deposited %d entries, want 1", st.Len())
	}
	var src *corpus.Entry
	for _, d := range st.Digests() {
		src, _ = st.Get(d)
	}
	if src.App != "redis" || len(src.Importance) == 0 || len(src.Seeds) == 0 || len(src.DTM) == 0 {
		t.Fatalf("deposited entry incomplete: app=%s imp=%d seeds=%d dtm=%d",
			src.App, len(src.Importance), len(src.Seeds), len(src.DTM))
	}
	frozenHash := st.Hash()

	eng := corpusEngine(t, "nginx", "deeptune", 12)
	sess, err := eng.NewSession(Options{Iterations: 30, Seed: 12, Corpus: st, WarmStartK: 3})
	if err != nil {
		t.Fatal(err)
	}
	var events []CorpusEvent
	sess.AddObserver(func(ev Event) {
		if ce, ok := ev.(CorpusEvent); ok {
			events = append(events, ce)
		}
	})
	rep, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorpusHash != frozenHash {
		t.Fatalf("report corpus hash %s, want the query-time hash %s", rep.CorpusHash, frozenHash)
	}
	if rep.CorpusSeeds != 3 {
		t.Fatalf("report corpus seeds %d, want 3", rep.CorpusSeeds)
	}
	// The first proposals are the corpus seeds, in ranked order.
	for i := 0; i < 3; i++ {
		want, err := eng.Model.Space.FromKV(src.Seeds[i].ConfigKV)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.History[i].Config.Equal(want) {
			t.Fatalf("history[%d] is not corpus seed %d", i, i)
		}
	}
	if len(events) != 2 {
		t.Fatalf("got %d corpus events, want warmstart+deposit: %+v", len(events), events)
	}
	if events[0].Kind != "warmstart" || events[0].Seeds != 3 || !events[0].DTM || events[0].Hash != frozenHash {
		t.Fatalf("warmstart event wrong: %+v", events[0])
	}
	if events[1].Kind != "deposit" || events[1].Digest == "" {
		t.Fatalf("deposit event wrong: %+v", events[1])
	}
	if _, ok := st.Get(events[1].Digest); !ok {
		t.Fatalf("deposit event names digest %s not in the corpus", events[1].Digest)
	}
	if st.Len() != 2 {
		t.Fatalf("corpus holds %d entries after the target session, want 2", st.Len())
	}
}

// TestCorpusFrozenDeterminism: against a frozen corpus, warm-started
// sessions are byte-reproducible on every scheduler — the (seed, workers,
// staleness, hosts, schedule, corpus hash) contract.
func TestCorpusFrozenDeterminism(t *testing.T) {
	base, err := corpus.Open("")
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, base, "redis", "bayesian", 11, 30)
	frozen := base.Hash()
	// Each run gets a private copy of the frozen corpus, so completion
	// deposits from one run can never leak into another's query.
	freeze := func() *corpus.Store {
		cp, _ := corpus.Open("")
		for _, d := range base.Digests() {
			e, _ := base.Get(d)
			if _, err := cp.Deposit(e); err != nil {
				t.Fatal(err)
			}
		}
		return cp
	}
	cases := []Options{
		{Iterations: 24, Seed: 9},
		{Iterations: 24, Seed: 9, Workers: 4, Hosts: 2},
		{Iterations: 24, Seed: 9, Workers: 4, Async: true, Staleness: 2},
	}
	for _, opts := range cases {
		opts.WarmStartK = 4
		opts.Corpus = freeze()
		a, err := corpusEngine(t, "nginx", "bayesian", 9).Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.CorpusHash != frozen || a.CorpusSeeds == 0 {
			t.Fatalf("warm start did not resolve: hash=%q seeds=%d", a.CorpusHash, a.CorpusSeeds)
		}
		opts.Corpus = freeze()
		b, err := corpusEngine(t, "nginx", "bayesian", 9).Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if canonicalJSON(t, a) != canonicalJSON(t, b) {
			t.Fatalf("workers=%d async=%v: two runs against the frozen corpus diverged", opts.Workers, opts.Async)
		}
	}
}

// TestCorpusWarmSnapshotResume: a warm-started session snapshotted
// mid-run — including before its seed queue is drained — and resumed into
// a fresh engine must finish byte-identical to the uninterrupted run,
// with the warm DTM weights re-applied before checkpoint replay.
func TestCorpusWarmSnapshotResume(t *testing.T) {
	st, err := corpus.Open("")
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, st, "redis", "deeptune", 11, 40)

	for _, tc := range []struct {
		name string
		opts Options
		at   int
	}{
		{"seq-midseed", Options{Iterations: 26, Seed: 12}, 2},
		{"seq-postseed", Options{Iterations: 26, Seed: 12}, 13},
		{"round-midseed", Options{Iterations: 26, Seed: 12, Workers: 4}, 2},
	} {
		opts := tc.opts
		opts.Corpus, opts.WarmStartK = st, 4

		// The uninterrupted reference run and the snapshotted run must see
		// the same frozen corpus, so deposits from either cannot leak into
		// the other's query: freeze a private copy per run.
		freeze := func() *corpus.Store {
			cp, _ := corpus.Open("")
			for _, d := range st.Digests() {
				e, _ := st.Get(d)
				if _, err := cp.Deposit(e); err != nil {
					t.Fatal(err)
				}
			}
			return cp
		}

		refOpts := opts
		refOpts.Corpus = freeze()
		full, err := corpusEngine(t, "nginx", "deeptune", 12).Run(refOpts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if full.CorpusSeeds != 4 || len(full.CorpusHash) == 0 {
			t.Fatalf("%s: warm start did not resolve: %+v", tc.name, full.CorpusSeeds)
		}

		runOpts := opts
		runOpts.Corpus = freeze()
		sess, err := corpusEngine(t, "nginx", "deeptune", 12).NewSession(runOpts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sess.Step(tc.at)
		snap, err := sess.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot: %v", tc.name, err)
		}
		resumed, err := corpusEngine(t, "nginx", "deeptune", 12).RestoreSession(snap)
		if err != nil {
			t.Fatalf("%s: restore: %v", tc.name, err)
		}
		rep, err := resumed.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: resumed run: %v", tc.name, err)
		}
		if canonicalJSON(t, full) != canonicalJSON(t, rep) {
			t.Fatalf("%s: snapshot-at-%d + resume diverged from the uninterrupted warm run", tc.name, tc.at)
		}
	}
}

// TestCorpusValidation: WarmStartK without a corpus is a loud
// construction error; negative K fails validation.
func TestCorpusValidation(t *testing.T) {
	eng := corpusEngine(t, "nginx", "random", 1)
	if _, err := eng.NewSession(Options{Iterations: 5, WarmStartK: 2}); err == nil {
		t.Fatal("WarmStartK without Corpus was accepted")
	}
	if err := (&Options{Iterations: 5, WarmStartK: -1}).Validate(); err == nil {
		t.Fatal("negative WarmStartK was accepted")
	}
}
