// Stepwise session state machine: the three run-to-completion scheduler
// loops the engine historically ran (sequential, round-barrier, async
// bounded-staleness) restructured into one first-class Session object that
// advances by exactly one recorded observation per step. That single
// primitive is what the public API's whole v2 lifecycle is built from:
//
//   - Run(ctx) is a step loop with a cancellation check at every
//     observation boundary, so interruption always leaves a consistent
//     prefix-of-the-uninterrupted-run report.
//   - Step(n) advances n observations and returns, letting a caller
//     interleave many sessions over one process (the daemon primitive) or
//     implement custom stopping rules.
//   - Typed events (events.go) are emitted from the one shared record
//     path, in deterministic observation order, regardless of scheduler.
//   - Snapshot/Restore (snapshot.go) serialize the machine's explicit
//     state — worker clocks and RNG streams, cache and in-flight builds,
//     undelivered scheduler buffers, searcher checkpoints — because the
//     state is now data in this struct rather than local variables of
//     three bespoke loops.
//
// Reproducibility is unchanged from the loop implementations: every step
// performs the same proposals, evaluations, stalls, and observations in
// the same order the old loops did, so a session remains a pure function
// of (Seed, Workers, Staleness, Hosts) — the equivalence tests pin Run,
// Step-driven, and snapshot/resume sessions to byte-identical reports.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
	"wayfinder/internal/search"
	"wayfinder/internal/vm"
)

// schedMode selects which scheduler a session steps with.
type schedMode int

const (
	// modeSequential is the single-evaluator loop.
	modeSequential schedMode = iota
	// modeRound is the round-barrier worker pool (parallel.go).
	modeRound
	// modeAsync is the event-driven bounded-staleness scheduler (async.go).
	modeAsync
)

// modeFor maps options to the scheduler Engine.Run historically chose:
// Staleness 0 means every proposal batch must see a fully-observed history
// — exactly the synchronous round scheduler.
func modeFor(opts Options) schedMode {
	if opts.Workers > 1 {
		if opts.Async && opts.Staleness != 0 {
			return modeAsync
		}
		return modeRound
	}
	return modeSequential
}

// Session is one specialization session as an explicit, steppable state
// machine. It is not safe for concurrent use: Step, Run, and Snapshot
// must be called from one goroutine at a time. AddObserver is the
// exception — it may hook in while another goroutine drives Run (Run may
// be driven from its own goroutine while a consumer drains an event
// channel; the channel, not the Session, is the concurrency boundary).
type Session struct {
	eng  *Engine
	opts Options
	mode schedMode

	report   *Report
	recorder search.Searcher      // observation sink: the batcher in parallel modes, the searcher itself sequentially
	batcher  search.BatchSearcher // batch-protocol view (nil in sequential mode)
	cache    *sessionCache
	// observers is guarded by obsMu so AddObserver (the public Events()
	// hookup) is safe while another goroutine drives Run; the list is
	// copy-on-write and emit iterates a snapshot.
	obsMu     sync.Mutex
	observers []func(Event)

	base    float64
	wall    *vm.WallClock // nil in sequential mode
	workers []*evalState

	next     int // next iteration index to propose/dispatch
	observed int // observations recorded so far
	// done is atomic so the public layer's Done()/Events() may read it
	// while another goroutine drives Run; everything else on the stepping
	// path remains single-driver.
	done   atomic.Bool
	folded float64 // wall-clock advance already folded onto the engine clock

	// decisionNS accumulates the searcher's real decision time across the
	// session — the third axis of the Usage quantum accounting.
	decisionNS time.Duration

	// Round-barrier scheduler state: the current round's evaluated-but-
	// unrecorded results, drained one observation per step.
	buf   []*batchEval
	round int

	// Async scheduler state (the old loop's locals, now resumable data).
	staleBound int
	inflight   []*batchEval // per worker; nil = idle
	busy       int          // dispatched-but-unobserved evaluations
	exhausted  bool         // the strategy stopped producing
	frontier   float64      // virtual time of the latest observation

	// Fault runtime state (fault.go): lost observations awaiting
	// re-dispatch (ascending iteration order) and the schedule-timeline
	// cursor of already-applied host events.
	retries  []*retryItem
	faultCur int

	// Corpus warm-start state (corpus.go): seed configurations resolved
	// at construction (or restored from a snapshot), consumed ahead of
	// searcher proposals; the encoded DeepTune snapshot applied to the
	// searcher, kept so a restore re-applies it before checkpoint replay;
	// and whether the lazy warm-start event fired.
	seeds           []*configspace.Config
	warmDTM         []byte
	corpusAnnounced bool
}

// NewSession validates the options and assembles a session in its initial
// state. Nothing is proposed or evaluated until the first step.
func (e *Engine) NewSession(opts Options) (*Session, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := e.applySurrogateWindow(opts); err != nil {
		return nil, err
	}
	s := e.newSession(opts, modeFor(opts))
	if err := s.resolveCorpus(); err != nil {
		return nil, err
	}
	return s, nil
}

// applySurrogateWindow pushes Options.SurrogateWindow onto the engine's
// searcher. It runs during session assembly — and, on restore, before the
// searcher checkpoint is replayed, so a windowed DeepTune restore re-trims
// its history exactly as the live session did.
func (e *Engine) applySurrogateWindow(opts Options) error {
	if opts.SurrogateWindow == 0 {
		return nil
	}
	w, ok := e.Searcher.(search.Windowed)
	if !ok {
		return fmt.Errorf("core: SurrogateWindow set, but searcher %q has no learned surrogate to bound",
			e.Searcher.Name())
	}
	return w.SetSurrogateWindow(opts.SurrogateWindow)
}

// newSession assembles a session with a forced scheduler mode (the
// equivalence tests step the round scheduler at W=1 against the sequential
// one; NewSession always routes through modeFor).
func (e *Engine) newSession(opts Options, mode schedMode) *Session {
	s := &Session{
		eng:   e,
		opts:  opts,
		mode:  mode,
		cache: newSessionCache(opts),
		base:  e.Clock.Now(),
	}
	if mode == modeSequential {
		s.report = e.newReport(opts, 1)
		s.workers = []*evalState{{clock: e.Clock, noise: e.noise, speed: opts.workerSpeed(0)}}
		s.recorder = e.Searcher
		return s
	}
	w := opts.effWorkers()
	s.report = e.newReport(opts, w)
	s.wall = vm.NewWallClock(w, s.base)
	s.workers = make([]*evalState, w)
	for i := range s.workers {
		s.workers[i] = &evalState{
			worker: i,
			host:   opts.HostOf(i),
			clock:  s.wall.Worker(i),
			wall:   s.wall,
			noise:  rng.New(rng.WorkerSeed(e.seed, i) ^ noiseSalt),
			speed:  opts.workerSpeed(i),
		}
	}
	s.batcher = search.AsBatch(e.Searcher)
	s.recorder = s.batcher
	if mode == modeAsync {
		bound := opts.Staleness
		if bound < 0 || bound > w-1 {
			bound = w - 1
		}
		s.staleBound = bound
		s.report.Async = true
		s.report.Staleness = bound
		s.inflight = make([]*batchEval, w)
		s.frontier = s.base
	}
	return s
}

// Done reports whether the session has exhausted its budget (or its
// strategy): further steps record nothing.
func (s *Session) Done() bool { return s.done.Load() }

// Observed returns the number of observations recorded so far.
func (s *Session) Observed() int { return s.observed }

// Options returns the options the session runs with.
func (s *Session) Options() Options { return s.opts }

// Report returns the session's report, finalized to the current position:
// aggregates (elapsed/compute/idle/utilization/builds) are recomputed so a
// partially-run session yields a valid report. The returned report is live
// — it keeps growing as the session advances.
func (s *Session) Report() *Report {
	s.finalize()
	return s.report
}

// Step advances the session by up to n observations (exactly n unless the
// budget or strategy is exhausted first) and returns how many were
// recorded. The report is finalized on return, so interleaved callers
// always observe a valid partial report.
func (s *Session) Step(n int) int {
	advanced := 0
	for advanced < n && !s.done.Load() {
		if !s.stepOnce() {
			s.markDone()
			break
		}
		advanced++
	}
	s.finalize()
	return advanced
}

// Run drives the session to completion, honoring context cancellation and
// deadline at every observation boundary. On interruption it returns the
// context's error together with a valid partial report — the exact
// observation-prefix of what the uninterrupted run would have produced —
// and the session remains resumable (further Step or Run calls continue
// it).
func (s *Session) Run(ctx context.Context) (*Report, error) {
	for !s.done.Load() {
		if err := ctx.Err(); err != nil {
			s.finalize()
			return s.report, err
		}
		if !s.stepOnce() {
			s.markDone()
		}
	}
	s.finalize()
	return s.report, nil
}

// stepOnce advances the scheduler by exactly one recorded observation,
// reporting false when the session is exhausted.
func (s *Session) stepOnce() bool {
	if s.done.Load() {
		return false
	}
	s.announceCorpus()
	switch s.mode {
	case modeRound:
		return s.stepRound()
	case modeAsync:
		return s.stepAsync()
	default:
		return s.stepSequential()
	}
}

// markDone transitions the session to its terminal state and notifies
// observers once.
func (s *Session) markDone() {
	if s.done.Load() {
		return
	}
	s.done.Store(true)
	s.finalize()
	s.depositCorpus()
	s.emit(SessionDone{Report: s.report})
}

// stepSequential is one iteration of the single-evaluator loop: budget
// check, propose (or re-dispatch a fault-lost iteration), evaluate,
// measure, record. The loop repeats — without recording — when a
// dispatch is lost to a scheduled fault, so a step still means exactly
// one recorded observation.
func (s *Session) stepSequential() bool {
	e, o := s.eng, &s.opts
	for {
		now := e.Clock.Now()
		s.advanceFaults(now)
		if o.TimeBudgetSec > 0 && now >= o.TimeBudgetSec {
			return false
		}
		var iter, attempt int
		var cfg *configspace.Config
		if ready := s.takeReadyRetries(now, 1); len(ready) > 0 {
			r := ready[0]
			iter, attempt, cfg = r.iter, r.attempt, r.cfg
			s.report.Retries++
		} else if o.Iterations <= 0 || s.next < o.Iterations {
			iter = s.next
			if o.WarmStart && s.next == 0 {
				cfg = e.Model.Space.Default()
			} else if len(s.seeds) > 0 {
				cfg, s.seeds = s.seeds[0], s.seeds[1:]
			} else {
				cfg = e.Searcher.Propose()
			}
			s.next++
		} else if at, ok := s.earliestRetry(); ok {
			// Fresh proposals are spent, but lost iterations are still
			// waiting out their backoff: idle forward to the deadline.
			if at > now {
				e.Clock.Advance(at - now)
			}
			continue
		} else {
			return false
		}
		st := s.workers[0]
		plan := s.planBuild(cfg, st)
		plan.inject = s.injectFor(iter, attempt+1)
		ev := &batchEval{iter: iter, cfg: cfg, st: st, plan: plan, attempt: attempt,
			preImageKey: st.imageKey, preHaveImage: st.haveImage, preBuilds: st.builds}
		ev.res = e.evaluate(iter, cfg, st, plan)
		kept := s.resolveFaults([]*batchEval{ev})
		if len(kept) == 0 {
			continue // lost to a fault; its retry is queued
		}
		res := kept[0].res
		if !res.Crashed {
			res.Metric = e.Metric.Measure(e.Model, e.App, cfg, st.noise)
		}
		s.record(res)
		return true
	}
}

// record appends one result to the report, maintains best/crash
// accounting, publishes the evaluation's image to the shared artifact
// store (commitArtifact — in observation order, so store state is a pure
// function of the observation sequence), reports the observation back to
// the recorder (the batch adapter in parallel sessions, so pending-set
// bookkeeping sees it and decision costs are read with batch semantics),
// and emits the observation's events.
func (s *Session) record(res Result) {
	e, report := s.eng, s.report
	s.commitArtifact(report, &res)
	report.History = append(report.History, res)
	var prevBest *Result
	improved := false
	if res.Crashed {
		report.Crashes++
	} else if report.Best == nil ||
		(report.Maximize && res.Metric > report.Best.Metric) ||
		(!report.Maximize && res.Metric < report.Best.Metric) {
		prevBest = report.Best
		best := res
		report.Best = &best
		report.BestTimeSec = res.EndSec
		improved = true
	}
	s.recorder.Observe(search.Observation{
		Config:  res.Config,
		X:       e.enc.Encode(res.Config),
		Metric:  res.Metric,
		Crashed: res.Crashed,
		Stage:   res.Stage,
	})
	dc := s.recorder.DecisionCost()
	report.History[len(report.History)-1].DecisionCost = dc
	s.decisionNS += dc
	// Grid adopts improvements as its sweep base.
	if g, ok := e.Searcher.(*search.Grid); ok && report.Best != nil && report.Best.Config != nil {
		g.AdoptBase(report.Best.Config)
	}
	s.observed++
	s.emitObservation(report.History[len(report.History)-1], improved, prevBest)
}

// finalize recomputes the report's aggregate fields for the session's
// current position. It is idempotent, so partial reports are always valid,
// and — for parallel sessions — folds any new wall-clock advance onto the
// engine clock exactly once, keeping engines that share a clock
// (sequential experiment chains) consistent with the historical behavior.
func (s *Session) finalize() {
	rep := s.report
	if s.wall == nil {
		now := s.eng.Clock.Now()
		rep.ElapsedSec = now
		rep.ComputeSec = now - s.base
		rep.Utilization = utilization(rep.ComputeSec, 0)
	} else {
		rep.ElapsedSec = s.wall.Now()
		rep.ComputeSec = s.wall.ComputeSec()
		rep.IdleSec = s.wall.IdleSec()
		rep.Utilization = utilization(rep.ComputeSec, rep.IdleSec)
		if adv := s.wall.Now() - s.base - s.folded; adv > 0 {
			s.eng.Clock.Advance(adv)
			s.folded += adv
		}
	}
	rep.Builds = 0
	for _, st := range s.workers {
		rep.Builds += st.builds
	}
	if s.faultsActive() {
		rep.HostDowntimeSec = 0
		for h := 0; h < s.opts.effHosts(); h++ {
			rep.HostDowntimeSec += s.opts.Faults.Downtime(h, s.base, rep.ElapsedSec)
		}
		if s.done.Load() {
			// Retries still queued when the session ends are observations
			// the budget (or a permanent outage) swallowed.
			rep.LostObservations = len(s.retries)
		}
	}
}

// SetBudget replaces the session's budget — the one option a resumed (or
// finished) session may legitimately change, to continue longer or stop
// earlier. A session completed under the old budget becomes steppable
// again when the new budget allows more observations.
func (s *Session) SetBudget(iterations int, timeBudgetSec float64) error {
	o := s.opts
	o.Iterations, o.TimeBudgetSec = iterations, timeBudgetSec
	if err := o.Validate(); err != nil {
		return err
	}
	s.opts = o
	s.done.Store(false)
	return nil
}

// Usage is the session's cumulative quantum accounting: the three axes a
// multiplexing daemon charges a tenant for — observations recorded,
// aggregate virtual compute seconds consumed across the session's workers,
// and the real time its searcher spent deciding. A daemon reads Usage
// before and after a Step quantum and charges the tenant the difference.
type Usage struct {
	// Observations is the number of recorded observations (== Observed()).
	Observations int `json:"observations"`
	// ComputeSec is the aggregate virtual compute time over all workers.
	ComputeSec float64 `json:"compute_sec"`
	// DecisionCost is the cumulative real time spent in the searcher.
	DecisionCost time.Duration `json:"decision_cost_ns"`
}

// Sub returns the usage delta u − prev: what one quantum consumed, given
// the accounting read before it.
func (u Usage) Sub(prev Usage) Usage {
	return Usage{
		Observations: u.Observations - prev.Observations,
		ComputeSec:   u.ComputeSec - prev.ComputeSec,
		DecisionCost: u.DecisionCost - prev.DecisionCost,
	}
}

// Usage returns the session's cumulative quantum accounting at the current
// position. Like Report, it is valid at any observation boundary; unlike
// the report it is O(1) to read, sized for a per-quantum charging loop.
func (s *Session) Usage() Usage {
	s.finalize()
	return Usage{
		Observations: s.observed,
		ComputeSec:   s.report.ComputeSec,
		DecisionCost: s.decisionNS,
	}
}

// checkpointable returns the searcher's checkpoint interface, or an error
// naming the strategy when it does not support one.
func (s *Session) checkpointable() (search.Checkpointable, error) {
	if ck, ok := s.eng.Searcher.(search.Checkpointable); ok {
		return ck, nil
	}
	return nil, fmt.Errorf("core: searcher %q does not implement search.Checkpointable", s.eng.Searcher.Name())
}
