// Asynchronous bounded-staleness scheduler: the round-barrier worker pool
// of parallel.go stalls all W workers on the round's slowest evaluation,
// so one straggling build wastes W-1 workers' virtual time. This file
// removes that barrier with an event-driven scheduler over the simulated
// substrate: a virtual event queue ordered by (finish-time, worker-index)
// hands the next proposal to a worker the moment its previous evaluation
// completes.
//
// Determinism is preserved by the same discipline as the synchronous
// scheduler, with one replacement rule:
//
//  1. Private worker state — each worker owns its clock (merged by
//     vm.WallClock), its rng stream (rng.WorkerSeed derivation), its speed
//     factor, and its §3.1 skip digests. The shared artifact store is
//     consulted by the coordinator only, at planning time (pipeline.go);
//     worker goroutines touch nothing shared.
//  2. Virtual-time dispatch — placement is dynamic (the next proposal
//     goes to whichever worker frees first in *virtual* time), but the
//     completion order is a pure function of virtual finish times with
//     worker index as the tie-break, never of goroutine scheduling. The
//     coordinator pops exactly one completion event per step, measures
//     and Observes it, and refills workers through the same
//     search.BatchSearcher pending-set protocol the round scheduler uses
//     (natively for Grid/Bayesian/DeepTune, via the AsBatch adapter
//     otherwise).
//  3. Bounded staleness — Options.Staleness caps how many unobserved
//     in-flight evaluations may exist when a proposal batch is drawn, so
//     no proposal conditions on a history more than S evaluations behind
//     the frontier. S=0 is the full barrier (handled by the round
//     scheduler); S ≥ W-1 (or negative) is full asynchrony, since one
//     evaluation per worker bounds in-flight work at W anyway.
//
// A session is therefore byte-reproducible for a fixed (Seed, Workers,
// Staleness) triple, and the report's history is ordered by virtual
// completion time — the order the searcher actually observed.
//
// The stepwise restructuring maps one-to-one onto the old loop body:
// dispatch-refill, pop the earliest completion event, record. The loop's
// locals (in-flight table, busy count, frontier, exhaustion) are now
// Session fields, which is what makes an async session interruptible and
// serializable between observations — in-flight evaluations are finished
// virtual work awaiting observation, and snapshot as such.
//
// Host-side concurrency note: evaluations within one dispatch batch run
// on goroutines, but in the unbounded steady state a batch refills a
// single worker, so the host executes the session nearly serially — a
// consequence of the data dependency (each refill's proposal conditions
// on the observation that freed the worker), not of the implementation.
// Evaluation here is microseconds of host time; the concurrency being
// scheduled is virtual. The goroutines exist for protocol fidelity (the
// race detector patrols the worker-state handoff), not host speedup.
package core

import (
	"wayfinder/internal/configspace"
)

// stepAsync refills idle workers (staleness bound permitting), pops the
// earliest completion event, and records it. Under a fault schedule a
// dispatch may produce no in-flight work (everything killed, or the
// session waiting out a backoff or a host outage with an advanced
// frontier); the loop re-dispatches until an event exists or the
// dispatcher reports no way to make progress.
func (s *Session) stepAsync() bool {
	for {
		progressed := s.dispatchAsync()
		if s.busy > 0 {
			break
		}
		if !progressed {
			return false
		}
	}
	// Pop the earliest completion event: minimum virtual finish time,
	// lowest worker index on ties. Strict < keeps the first (lowest index)
	// candidate on equal finish times.
	sel := -1
	for i, ev := range s.inflight {
		if ev == nil {
			continue
		}
		if sel < 0 || ev.res.EndSec < s.inflight[sel].res.EndSec {
			sel = i
		}
	}
	ev := s.inflight[sel]
	s.inflight[sel] = nil
	s.busy--
	res := ev.res
	if res.EndSec > s.frontier {
		s.frontier = res.EndSec
	}
	if !res.Crashed {
		// The worker is quiescent between completion and observation, so
		// its noise stream sits exactly past this evaluation's stage
		// jitters — the same position the round scheduler measures from.
		res.Metric = s.eng.Metric.Measure(s.eng.Model, s.eng.App, ev.cfg, s.workers[sel].noise)
	}
	s.record(res)
	return true
}

// dispatchAsync refills every idle worker that still has budget, provided
// the staleness bound admits a new proposal batch: drawing now means each
// proposal lags exactly `busy` unobserved evaluations. Workers evaluate
// concurrently (their state is private), and the coordinator joins them
// before touching any clock or result.
//
// frontier is the virtual time of the latest observation — the moment the
// current dispatch decision became possible. A refilled worker whose
// clock lags it (it sat out waiting for the staleness bound) stalls
// forward to the frontier, so no evaluation starts before the observation
// that admitted it and the wait is charged as idle time.
// It reports whether it made progress — dispatched work, or advanced the
// frontier over dead air (a backoff deadline or a host outage with no
// event to pop) — so stepAsync knows when the session truly cannot move.
func (s *Session) dispatchAsync() bool {
	e, o := s.eng, &s.opts
	s.advanceFaults(s.frontier)
	w := len(s.workers)
	idle := make([]int, 0, w)
	for i, ev := range s.inflight {
		if ev != nil {
			continue
		}
		// A refilled worker starts no earlier than max(own clock,
		// frontier) — the budget and liveness checks use that effective
		// start, so a worker whose host is down at dispatch time is
		// simply not refilled (its proposals are never burned).
		start := s.workers[i].clock.Now()
		if start < s.frontier {
			start = s.frontier
		}
		if !s.workerLive(i, start) {
			continue
		}
		if o.TimeBudgetSec > 0 && start >= o.TimeBudgetSec {
			continue
		}
		idle = append(idle, i)
	}
	// Ready retries dispatch first; they are re-dispatches of proposals
	// the searcher already conditioned on, so the staleness bound does not
	// gate them.
	slots := make([]roundSlot, 0, len(idle))
	for _, r := range s.takeReadyRetries(s.frontier, len(idle)) {
		slots = append(slots, roundSlot{iter: r.iter, attempt: r.attempt, cfg: r.cfg})
		s.report.Retries++
	}
	if fresh := len(idle) - len(slots); fresh > 0 && !s.exhausted && s.busy <= s.staleBound {
		n := fresh
		if o.Iterations > 0 && o.Iterations-s.next < n {
			n = o.Iterations - s.next
		}
		if n > 0 {
			cfgs := make([]*configspace.Config, 0, n)
			if o.WarmStart && s.next == 0 {
				cfgs = append(cfgs, e.Model.Space.Default())
			}
			// Corpus warm-start seeds dispatch ahead of the searcher's own
			// proposals, exactly like the WarmStart default.
			for len(s.seeds) > 0 && len(cfgs) < n {
				cfgs, s.seeds = append(cfgs, s.seeds[0]), s.seeds[1:]
			}
			if want := n - len(cfgs); want > 0 {
				cfgs = append(cfgs, s.batcher.ProposeBatch(want)...)
			}
			if len(cfgs) == 0 {
				s.exhausted = true
			}
			for _, cfg := range cfgs {
				slots = append(slots, roundSlot{iter: s.next, cfg: cfg})
				s.next++
			}
		}
	}
	if len(slots) == 0 {
		if s.busy > 0 {
			return false // an event is pending; popping it advances the frontier
		}
		// Idle session: jump the frontier to the next actionable instant —
		// the earliest backoff deadline or host revival strictly ahead.
		target, ok := 0.0, false
		if at, has := s.earliestRetry(); has && at > s.frontier {
			target, ok = at, true
		}
		if at, has := s.nextRevival(s.frontier); has && at > s.frontier && (!ok || at < target) {
			target, ok = at, true
		}
		if ok {
			s.frontier = target
			return true
		}
		return false
	}
	// Plan builds in dispatch order (coordinator-only store access,
	// pipeline.go), then execute the batch. An in-flight build from an
	// earlier dispatch is already resolved — its goroutines joined before
	// this dispatch — so an awaiter planned here reads a settled ticket;
	// same-batch duplicates run in runBatch's second wave. Placement draws
	// from the idle live workers (ascending index statically; the locality
	// policy may reorder to chase image digests).
	avail := make([]bool, w)
	for _, i := range idle {
		avail[i] = true
	}
	batch := make([]*batchEval, 0, len(slots))
	for _, sl := range slots {
		wi := s.placeSlot(avail, sl.iter, sl.cfg, false)
		if wi < 0 {
			break
		}
		avail[wi] = false
		s.wall.Stall(wi, s.frontier)
		st := s.workers[wi]
		plan := s.planBuild(sl.cfg, st)
		plan.inject = s.injectFor(sl.iter, sl.attempt+1)
		batch = append(batch, &batchEval{iter: sl.iter, cfg: sl.cfg, st: st, plan: plan,
			attempt: sl.attempt, preImageKey: st.imageKey, preHaveImage: st.haveImage,
			preBuilds: st.builds, preStall: s.wall.WorkerStallSec(wi)})
	}
	e.runBatch(batch)
	for _, ev := range s.resolveFaults(batch) {
		s.inflight[ev.st.worker] = ev
		s.busy++
	}
	return true
}
