// Asynchronous bounded-staleness scheduler: the round-barrier worker pool
// of parallel.go stalls all W workers on the round's slowest evaluation,
// so one straggling build wastes W-1 workers' virtual time. This file
// removes that barrier with an event-driven scheduler over the simulated
// substrate: a virtual event queue ordered by (finish-time, worker-index)
// hands the next proposal to a worker the moment its previous evaluation
// completes.
//
// Determinism is preserved by the same discipline as the synchronous
// scheduler, with one replacement rule:
//
//  1. Private worker state — each worker owns its clock (merged by
//     vm.WallClock), its rng stream (rng.WorkerSeed derivation), its speed
//     factor, and its §3.1 skip digests. The shared artifact store is
//     consulted by the coordinator only, at planning time (pipeline.go);
//     worker goroutines touch nothing shared.
//  2. Virtual-time dispatch — placement is dynamic (the next proposal
//     goes to whichever worker frees first in *virtual* time), but the
//     completion order is a pure function of virtual finish times with
//     worker index as the tie-break, never of goroutine scheduling. The
//     coordinator pops exactly one completion event per step, measures
//     and Observes it, and refills workers through the same
//     search.BatchSearcher pending-set protocol the round scheduler uses
//     (natively for Grid/Bayesian/DeepTune, via the AsBatch adapter
//     otherwise).
//  3. Bounded staleness — Options.Staleness caps how many unobserved
//     in-flight evaluations may exist when a proposal batch is drawn, so
//     no proposal conditions on a history more than S evaluations behind
//     the frontier. S=0 is the full barrier (handled by the round
//     scheduler); S ≥ W-1 (or negative) is full asynchrony, since one
//     evaluation per worker bounds in-flight work at W anyway.
//
// A session is therefore byte-reproducible for a fixed (Seed, Workers,
// Staleness) triple, and the report's history is ordered by virtual
// completion time — the order the searcher actually observed.
//
// The stepwise restructuring maps one-to-one onto the old loop body:
// dispatch-refill, pop the earliest completion event, record. The loop's
// locals (in-flight table, busy count, frontier, exhaustion) are now
// Session fields, which is what makes an async session interruptible and
// serializable between observations — in-flight evaluations are finished
// virtual work awaiting observation, and snapshot as such.
//
// Host-side concurrency note: evaluations within one dispatch batch run
// on goroutines, but in the unbounded steady state a batch refills a
// single worker, so the host executes the session nearly serially — a
// consequence of the data dependency (each refill's proposal conditions
// on the observation that freed the worker), not of the implementation.
// Evaluation here is microseconds of host time; the concurrency being
// scheduled is virtual. The goroutines exist for protocol fidelity (the
// race detector patrols the worker-state handoff), not host speedup.
package core

import (
	"wayfinder/internal/configspace"
)

// stepAsync refills idle workers (staleness bound permitting), pops the
// earliest completion event, and records it.
func (s *Session) stepAsync() bool {
	s.dispatchAsync()
	if s.busy == 0 {
		return false
	}
	// Pop the earliest completion event: minimum virtual finish time,
	// lowest worker index on ties. Strict < keeps the first (lowest index)
	// candidate on equal finish times.
	sel := -1
	for i, ev := range s.inflight {
		if ev == nil {
			continue
		}
		if sel < 0 || ev.res.EndSec < s.inflight[sel].res.EndSec {
			sel = i
		}
	}
	ev := s.inflight[sel]
	s.inflight[sel] = nil
	s.busy--
	res := ev.res
	if res.EndSec > s.frontier {
		s.frontier = res.EndSec
	}
	if !res.Crashed {
		// The worker is quiescent between completion and observation, so
		// its noise stream sits exactly past this evaluation's stage
		// jitters — the same position the round scheduler measures from.
		res.Metric = s.eng.Metric.Measure(s.eng.Model, s.eng.App, ev.cfg, s.workers[sel].noise)
	}
	s.record(res)
	return true
}

// dispatchAsync refills every idle worker that still has budget, provided
// the staleness bound admits a new proposal batch: drawing now means each
// proposal lags exactly `busy` unobserved evaluations. Workers evaluate
// concurrently (their state is private), and the coordinator joins them
// before touching any clock or result.
//
// frontier is the virtual time of the latest observation — the moment the
// current dispatch decision became possible. A refilled worker whose
// clock lags it (it sat out waiting for the staleness bound) stalls
// forward to the frontier, so no evaluation starts before the observation
// that admitted it and the wait is charged as idle time.
func (s *Session) dispatchAsync() {
	e, o := s.eng, &s.opts
	if s.exhausted || s.busy > s.staleBound {
		return
	}
	w := len(s.workers)
	idle := make([]int, 0, w)
	for i, ev := range s.inflight {
		if ev != nil {
			continue
		}
		// A refilled worker starts no earlier than max(own clock,
		// frontier) — the budget check uses that effective start.
		start := s.workers[i].clock.Now()
		if start < s.frontier {
			start = s.frontier
		}
		if o.TimeBudgetSec > 0 && start >= o.TimeBudgetSec {
			continue
		}
		idle = append(idle, i)
	}
	n := len(idle)
	if o.Iterations > 0 && o.Iterations-s.next < n {
		n = o.Iterations - s.next
	}
	if n <= 0 {
		return
	}
	cfgs := make([]*configspace.Config, 0, n)
	if o.WarmStart && s.next == 0 {
		cfgs = append(cfgs, e.Model.Space.Default())
	}
	if want := n - len(cfgs); want > 0 {
		cfgs = append(cfgs, s.batcher.ProposeBatch(want)...)
	}
	if len(cfgs) == 0 {
		s.exhausted = true
		return
	}
	// Plan builds in dispatch order (coordinator-only store access,
	// pipeline.go), then execute the batch. An in-flight build from an
	// earlier dispatch is already resolved — its goroutines joined before
	// this dispatch — so an awaiter planned here reads a settled ticket;
	// same-batch duplicates run in runBatch's second wave.
	batch := make([]*batchEval, 0, len(cfgs))
	for k, cfg := range cfgs {
		worker := idle[k]
		s.wall.Stall(worker, s.frontier)
		st := s.workers[worker]
		ev := &batchEval{iter: s.next, cfg: cfg, st: st, plan: s.planBuild(cfg, st)}
		s.inflight[worker] = ev
		s.busy++
		s.next++
		batch = append(batch, ev)
	}
	e.runBatch(batch)
}
