package core

import (
	"reflect"
	"testing"

	"wayfinder/internal/snapcover"
)

// TestSessionSnapshotCoverage pins the Session ↔ sessionSnapshot field
// mapping: adding session state without serializing it (or without a
// written reason why restore can rebuild it) fails here, immediately,
// instead of as a diverging resumed run much later.
func TestSessionSnapshotCoverage(t *testing.T) {
	snapcover.Pair(t, reflect.TypeFor[Session](), reflect.TypeFor[sessionSnapshot](), snapcover.Spec{
		Covered: map[string]string{
			"opts":      "Options",
			"mode":      "Mode",
			"report":    "Report",
			"base":      "BaseSec",
			"folded":    "FoldedSec",
			"next":      "Next",
			"observed":  "Observed",
			"done":      "Done",
			"round":     "Round",
			"buf":       "Buffer",
			"inflight":  "Inflight",
			"exhausted": "Exhausted",
			"frontier":  "Frontier",
			"cache":     "Cache",
			"retries":   "Retries",
			"faultCur":  "FaultCursor",
			// The per-worker clock and stall positions serialize the wall
			// clock; workers carry the rest of the evaluator state.
			"wall":    "Workers",
			"workers": "Workers",
			// The recorder is the searcher (or its batch view); its dynamic
			// state is the searcher checkpoint, the adapter's pending
			// multiset rides separately.
			"recorder": "SearcherState",
			"batcher":  "AdapterPending",
			// Recomputed on restore by summing Report.History decision costs.
			"decisionNS": "Report",
			// Corpus warm-start state: the unconsumed seed queue and the
			// applied DTM weights travel explicitly, so a restored session
			// replays the original query answer instead of re-asking a
			// corpus that may have grown since.
			"seeds":   "CorpusSeedKVs",
			"warmDTM": "WarmDTM",
		},
		Excluded: map[string]string{
			"eng":             "construction-time: the restore engine is built with the same constructor arguments",
			"obsMu":           "sync primitive",
			"observers":       "event callbacks cannot serialize; consumers re-register after restore",
			"staleBound":      "derived from Options in newSession",
			"busy":            "recomputed on restore by counting non-nil Inflight entries",
			"corpusAnnounced": "event bookkeeping: a restored warm session harmlessly re-announces its warm start to its (re-registered) observers",
		},
		Synthesized: map[string]string{
			"Version":      "snapshot format tag",
			"SearcherName": "validation: checked against the restore engine's searcher",
			"MetricName":   "validation: checked against the restore engine's metric",
			"MetricState":  "the engine metric's CheckpointMetric payload; the metric lives on the (excluded) engine",
		},
	})
}

// TestWorkerSnapshotCoverage pins evalState ↔ workerSnap the same way.
func TestWorkerSnapshotCoverage(t *testing.T) {
	snapcover.Pair(t, reflect.TypeFor[evalState](), reflect.TypeFor[workerSnap](), snapcover.Spec{
		Covered: map[string]string{
			"clock":     "ClockSec",
			"wall":      "StallSec",
			"noise":     "RNG",
			"imageKey":  "ImageKey",
			"haveImage": "HaveImage",
			"bootKey":   "BootKey",
			"haveBoot":  "HaveBoot",
			"builds":    "Builds",
		},
		Excluded: map[string]string{
			"worker": "positional: the worker's index in the snapshot's Workers list",
			"host":   "derived from Options.HostOf at construction",
			"speed":  "derived from Options.workerSpeed at construction",
		},
	})
}
