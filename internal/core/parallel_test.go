package core

import (
	"encoding/json"
	"testing"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
	"wayfinder/internal/vm"
)

// canonicalJSON marshals a report with the wall-clock DecisionCost fields
// zeroed — the only Report content that legitimately varies between runs
// of the same (seed, workers) session.
func canonicalJSON(t *testing.T, rep *Report) string {
	t.Helper()
	cp := *rep
	cp.History = append([]Result(nil), rep.History...)
	for i := range cp.History {
		cp.History[i].DecisionCost = 0
	}
	if cp.Best != nil {
		best := *cp.Best
		best.DecisionCost = 0
		cp.Best = &best
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// newSearcher builds a fresh searcher by name so every session in a
// comparison starts from identical searcher state.
func newSearcher(m *simos.Model, kind string, seed uint64) search.Searcher {
	switch kind {
	case "random":
		return search.NewRandom(m.Space, seed)
	case "grid":
		return search.NewGrid(m.Space)
	case "bayesian":
		return search.NewBayesian(m.Space, true, seed)
	case "unicorn":
		return search.NewUnicorn(m.Space, true, seed)
	case "deeptune":
		cfg := deeptune.DefaultConfig()
		cfg.Seed = seed
		return search.NewDeepTune(m.Space, true, cfg)
	}
	panic("unknown searcher " + kind)
}

func parallelRun(t *testing.T, kind string, seed uint64, opts Options) *Report {
	t.Helper()
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, kind, seed), &vm.Clock{}, seed)
	rep, err := eng.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParallelWorkersOneMatchesSequential(t *testing.T) {
	// The worker-pool scheduler with a single worker must reproduce the
	// sequential engine bit-for-bit: worker 0's noise stream, clock, and
	// build caches are definitionally the sequential ones, and the batch
	// protocol degenerates to propose-evaluate-observe.
	for _, kind := range []string{"random", "grid", "bayesian"} {
		m := smallLinux(t)
		app := apps.Nginx()
		seqEng := NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, kind, 42), &vm.Clock{}, 42)
		seq, err := seqEng.Run(Options{Iterations: 40, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		m2 := smallLinux(t)
		parEng := NewEngine(m2, app, &PerfMetric{App: app}, newSearcher(m2, kind, 42), &vm.Clock{}, 42)
		par, err := parEng.runParallel(Options{Iterations: 40, Seed: 42, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if canonicalJSON(t, seq) != canonicalJSON(t, par) {
			t.Fatalf("%s: one-worker parallel session diverged from the sequential engine", kind)
		}
	}
}

func TestParallelDeterministicAcrossRuns(t *testing.T) {
	// Same seed + same worker count ⇒ byte-identical report, regardless of
	// goroutine scheduling. Random exercises the pool cheaply; bayesian is
	// the stateful-surrogate case where observation order matters.
	cases := []struct {
		kind  string
		iters int
	}{
		{"random", 64},
		{"bayesian", 24},
	}
	for _, c := range cases {
		opts := Options{Iterations: c.iters, Seed: 7, Workers: 8}
		a := canonicalJSON(t, parallelRun(t, c.kind, 7, opts))
		b := canonicalJSON(t, parallelRun(t, c.kind, 7, opts))
		if a != b {
			t.Fatalf("%s: two W=8 runs with the same seed produced different reports", c.kind)
		}
	}
}

func TestParallelHistoryCanonicalOrder(t *testing.T) {
	rep := parallelRun(t, "random", 3, Options{Iterations: 50, Seed: 3, Workers: 8})
	if len(rep.History) != 50 {
		t.Fatalf("history length %d, want 50", len(rep.History))
	}
	for i, h := range rep.History {
		if h.Iteration != i {
			t.Fatalf("history[%d].Iteration = %d: history must be canonicalized by iteration index", i, h.Iteration)
		}
		if h.Worker != i%8 {
			t.Fatalf("iteration %d ran on worker %d, want static placement %d", i, h.Worker, i%8)
		}
	}
	if rep.Workers != 8 {
		t.Fatalf("report workers = %d, want 8", rep.Workers)
	}
}

func TestParallelWallClockSpeedup(t *testing.T) {
	// At an equal iteration budget, 8 workers must shrink the virtual
	// wall-clock near-linearly while the aggregate compute stays in the
	// same ballpark as the sequential session's.
	seq := parallelRun(t, "random", 5, Options{Iterations: 96, Seed: 5})
	par := parallelRun(t, "random", 5, Options{Iterations: 96, Seed: 5, Workers: 8})
	if par.ElapsedSec >= seq.ElapsedSec/4 {
		t.Fatalf("W=8 wall clock %.0fs, want ≥4x below sequential %.0fs", par.ElapsedSec, seq.ElapsedSec)
	}
	if par.ComputeSec <= par.ElapsedSec {
		t.Fatalf("aggregate compute %.0fs should exceed wall clock %.0fs with 8 workers", par.ComputeSec, par.ElapsedSec)
	}
	// Per-worker build caches cost at most W-1 extra builds vs sequential;
	// beyond that, compute should track the sequential session.
	if par.ComputeSec > 1.5*seq.ComputeSec {
		t.Fatalf("aggregate compute %.0fs far exceeds sequential %.0fs", par.ComputeSec, seq.ComputeSec)
	}
}

func TestParallelTimeBudget(t *testing.T) {
	rep := parallelRun(t, "random", 6, Options{TimeBudgetSec: 600, Seed: 6, Workers: 4})
	if rep.ElapsedSec < 600 {
		t.Fatalf("stopped at %.0fs, before exhausting the 600s wall-clock budget", rep.ElapsedSec)
	}
	// Overshoot is bounded by one round (one evaluation per worker).
	if rep.ElapsedSec > 600+300 {
		t.Fatalf("overshot budget: %.0fs", rep.ElapsedSec)
	}
	if len(rep.History)%4 != 0 {
		t.Fatalf("time-budgeted session ran %d iterations, want whole rounds of 4", len(rep.History))
	}
}

func TestParallelWarmStart(t *testing.T) {
	rep := parallelRun(t, "random", 8, Options{Iterations: 12, Seed: 8, Workers: 4, WarmStart: true})
	if rep.History[0].ConfigString != "<default>" {
		t.Fatalf("first iteration = %q, want default", rep.History[0].ConfigString)
	}
}

func TestParallelNoDuplicateConfigsInFlight(t *testing.T) {
	// Within any round (a window of W consecutive iterations), the batch
	// protocol must not hand the same configuration to two workers.
	const w = 8
	rep := parallelRun(t, "random", 9, Options{Iterations: 64, Seed: 9, Workers: w})
	for round := 0; round < len(rep.History); round += w {
		seen := map[uint64]int{}
		for i := round; i < round+w && i < len(rep.History); i++ {
			h := rep.History[i].Config.Hash()
			if prev, dup := seen[h]; dup {
				t.Fatalf("iterations %d and %d evaluated the same configuration concurrently", prev, i)
			}
			seen[h] = i
		}
	}
}

func TestParallelScoreMetricDeterministic(t *testing.T) {
	// ScoreMetric normalizes over the session's running history — the
	// stateful-metric case that forces measurement onto the coordinator in
	// canonical order. Two runs must agree exactly.
	run := func() string {
		m := smallLinux(t)
		app := apps.Nginx()
		eng := NewEngine(m, app, &ScoreMetric{}, newSearcher(m, "random", 11), &vm.Clock{}, 11)
		rep, err := eng.Run(Options{Iterations: 48, Seed: 11, Workers: 6})
		if err != nil {
			t.Fatal(err)
		}
		return canonicalJSON(t, rep)
	}
	if run() != run() {
		t.Fatal("parallel ScoreMetric session is not deterministic")
	}
}

func TestParallelBestConsistent(t *testing.T) {
	rep := parallelRun(t, "random", 13, Options{Iterations: 80, Seed: 13, Workers: 8})
	if rep.Best == nil {
		t.Fatal("no best over 80 iterations")
	}
	for _, h := range rep.History {
		if !h.Crashed && h.Metric > rep.Best.Metric {
			t.Fatalf("history iteration %d (%.2f) beats Best (%.2f)", h.Iteration, h.Metric, rep.Best.Metric)
		}
	}
	if rep.Crashes == 0 {
		t.Fatal("random search over the crashy space should crash sometimes")
	}
}

func TestParallelDeepTuneSession(t *testing.T) {
	// DeepTune through the default batch adapter: the heavyweight searcher
	// must survive the batch protocol and stay deterministic.
	if testing.Short() {
		t.Skip("neural searcher session is slow")
	}
	opts := Options{Iterations: 32, Seed: 2, Workers: 4}
	a := canonicalJSON(t, parallelRun(t, "deeptune", 2, opts))
	b := canonicalJSON(t, parallelRun(t, "deeptune", 2, opts))
	if a != b {
		t.Fatal("parallel DeepTune session is not deterministic")
	}
}

func TestParallelSharedClockAdvances(t *testing.T) {
	// Engines sharing a clock model sequential experiment chains; a
	// parallel session must fold its wall time back onto the shared clock.
	m := smallLinux(t)
	app := apps.Nginx()
	var clock vm.Clock
	eng := NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, "random", 14), &clock, 14)
	rep, err := eng.Run(Options{Iterations: 16, Seed: 14, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now() != rep.ElapsedSec {
		t.Fatalf("shared clock at %.2fs, want the session's wall time %.2fs", clock.Now(), rep.ElapsedSec)
	}
}

// shortBatcher is a native BatchSearcher that legally returns fewer
// proposals than asked (at most two per round).
type shortBatcher struct {
	search.Searcher
}

func (s *shortBatcher) ProposeBatch(n int) []*configspace.Config {
	if n > 2 {
		n = 2
	}
	out := make([]*configspace.Config, 0, n)
	for len(out) < n {
		out = append(out, s.Propose())
	}
	return out
}

func TestParallelShortNativeBatches(t *testing.T) {
	// A native BatchSearcher may return fewer than n proposals; the
	// scheduler must shrink the round instead of evaluating nil configs,
	// and still exhaust the iteration budget.
	m := smallLinux(t)
	app := apps.Nginx()
	s := &shortBatcher{Searcher: search.NewRandom(m.Space, 21)}
	eng := NewEngine(m, app, &PerfMetric{App: app}, s, &vm.Clock{}, 21)
	rep, err := eng.Run(Options{Iterations: 11, Seed: 21, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.History) != 11 {
		t.Fatalf("history length %d, want 11", len(rep.History))
	}
	for i, h := range rep.History {
		if h.Iteration != i {
			t.Fatalf("history[%d].Iteration = %d", i, h.Iteration)
		}
	}
}
