// Session serialization: Snapshot captures the state machine's complete
// state — options, report, worker clocks and RNG streams, artifact-store
// contents and in-flight build tickets, undelivered scheduler buffers, the
// searcher's checkpoint (search.Checkpointable), and any stateful metric —
// and RestoreSession rebuilds a Session that continues byte-identically to
// the uninterrupted run. Snapshots are taken between steps (any
// observation boundary, including mid-round: a buffered round is finished
// virtual work, and serializes as such).
//
// The format is JSON for inspectability; exactness is preserved because
// Go's JSON round-trips float64 (shortest-representation encoding) and
// 64-bit integers bit-for-bit when decoded into typed fields. Config
// assignments travel as canonical key=value maps (Config.KV /
// Space.FromKV), never as the lossy display string.
package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"wayfinder/internal/artifact"
	"wayfinder/internal/configspace"
	"wayfinder/internal/nn"
	"wayfinder/internal/search"
)

// snapshotVersion guards the serialization format.
const snapshotVersion = 1

// workerSnap is one worker's serialized evaluation state.
type workerSnap struct {
	ClockSec  float64   `json:"clock_sec"`
	StallSec  float64   `json:"stall_sec,omitempty"`
	RNG       [4]uint64 `json:"rng"`
	ImageKey  uint64    `json:"image_key,omitempty"`
	HaveImage bool      `json:"have_image,omitempty"`
	BootKey   uint64    `json:"boot_key,omitempty"`
	HaveBoot  bool      `json:"have_boot,omitempty"`
	Builds    int       `json:"builds,omitempty"`
}

// ticketSnap is one in-flight-build registration.
type ticketSnap struct {
	Key      uint64  `json:"key"`
	Host     int     `json:"host"`
	EndSec   float64 `json:"end_sec"`
	OK       bool    `json:"ok"`
	Resolved bool    `json:"resolved"`
}

// cacheSnap is the session cache: store contents plus the in-flight
// registry (sorted by key for a canonical serialization).
type cacheSnap struct {
	Store    *artifact.State `json:"store,omitempty"`
	Building []ticketSnap    `json:"building,omitempty"`
}

// evalSnap is one evaluated-but-unrecorded evaluation (a buffered round
// slot or an async in-flight completion event).
type evalSnap struct {
	Iter   int    `json:"iter"`
	Worker int    `json:"worker"`
	Result Result `json:"result"`
	// ArtifactKey and BuildEndSec carry Result's unexported pipeline
	// fields.
	ArtifactKey uint64  `json:"artifact_key"`
	BuildEndSec float64 `json:"build_end_sec"`
	// TicketRegistered marks a ticket that is (identity-wise) the cache's
	// registered in-flight build for ArtifactKey; Ticket carries a
	// replaced (crashed-builder) ticket's contents otherwise.
	TicketRegistered bool        `json:"ticket_registered,omitempty"`
	Ticket           *ticketSnap `json:"ticket,omitempty"`
}

// retrySnap is one queued re-dispatch of a fault-lost iteration.
type retrySnap struct {
	Iter         int               `json:"iter"`
	ConfigKV     map[string]string `json:"config_kv"`
	Attempt      int               `json:"attempt"`
	NotBeforeSec float64           `json:"not_before_sec"`
}

// sessionSnapshot is the serialized session.
type sessionSnapshot struct {
	Version      int     `json:"version"`
	Mode         int     `json:"mode"`
	Options      Options `json:"options"`
	SearcherName string  `json:"searcher"`
	MetricName   string  `json:"metric"`

	BaseSec   float64 `json:"base_sec"`
	FoldedSec float64 `json:"folded_sec,omitempty"`
	Next      int     `json:"next"`
	Observed  int     `json:"observed"`
	Done      bool    `json:"done,omitempty"`
	Round     int     `json:"round,omitempty"`
	Exhausted bool    `json:"exhausted,omitempty"`
	Frontier  float64 `json:"frontier,omitempty"`

	// Fault runtime state: the queued re-dispatches of fault-lost
	// iterations and the schedule-timeline cursor. Pending evaluations
	// need nothing extra — a buffered or in-flight evaluation is already
	// fault-resolved (resolveFaults runs before anything is buffered).
	Retries     []retrySnap `json:"retries,omitempty"`
	FaultCursor int         `json:"fault_cursor,omitempty"`

	Report  *Report      `json:"report"`
	Workers []workerSnap `json:"workers"`
	Cache   *cacheSnap   `json:"cache,omitempty"`

	// Buffer is the round scheduler's undrained results; Inflight the
	// async scheduler's per-worker unobserved completions (null = idle).
	Buffer   []evalSnap  `json:"buffer,omitempty"`
	Inflight []*evalSnap `json:"inflight,omitempty"`

	SearcherState  json.RawMessage `json:"searcher_state"`
	AdapterPending map[uint64]int  `json:"adapter_pending,omitempty"`
	MetricState    json.RawMessage `json:"metric_state,omitempty"`

	// CorpusSeedKVs are the resolved-but-unconsumed warm-start seed
	// configurations; WarmDTM the encoded corpus nn.Snapshot the live
	// session applied to its DeepTune searcher. A restored session
	// replays the original query answer from these instead of re-asking
	// a corpus that may have grown since (Options.Corpus is json:"-").
	CorpusSeedKVs []map[string]string `json:"corpus_seed_kvs,omitempty"`
	WarmDTM       json.RawMessage     `json:"warm_dtm,omitempty"`
}

// pendingCheckpointer is the batch-adapter state interface (implemented by
// search's unexported adapter; native batchers carry pending state inside
// their own checkpoints).
type pendingCheckpointer interface {
	PendingSnapshot() map[uint64]int
	RestorePending(map[uint64]int)
}

// CheckpointableMetric is the optional Metric extension stateful metrics
// implement so sessions using them can snapshot (ScoreMetric's running
// normalization is session state like any other). Stateless metrics need
// not implement it.
type CheckpointableMetric interface {
	Metric
	// CheckpointMetric serializes the metric's accumulated state.
	CheckpointMetric() ([]byte, error)
	// RestoreMetric rebuilds state captured by CheckpointMetric.
	RestoreMetric(data []byte) error
}

// Snapshot serializes the session's complete state. It requires the
// searcher to implement search.Checkpointable (Random, RandomMutate, Grid,
// Bayesian, and DeepTune do) and must be called between steps — never
// concurrently with Run. The session remains usable afterwards.
func (s *Session) Snapshot() ([]byte, error) {
	ck, err := s.checkpointable()
	if err != nil {
		return nil, err
	}
	s.finalize()
	searcherState, err := ck.Checkpoint()
	if err != nil {
		return nil, err
	}
	snap := sessionSnapshot{
		Version:       snapshotVersion,
		Mode:          int(s.mode),
		Options:       s.opts,
		SearcherName:  s.eng.Searcher.Name(),
		MetricName:    s.eng.Metric.Name(),
		BaseSec:       s.base,
		FoldedSec:     s.folded,
		Next:          s.next,
		Observed:      s.observed,
		Done:          s.done.Load(),
		Round:         s.round,
		Exhausted:     s.exhausted,
		Frontier:      s.frontier,
		Report:        s.report,
		SearcherState: searcherState,
		FaultCursor:   s.faultCur,
	}
	for _, r := range s.retries {
		snap.Retries = append(snap.Retries, retrySnap{
			Iter: r.iter, ConfigKV: r.cfg.KV(), Attempt: r.attempt, NotBeforeSec: r.notBefore,
		})
	}
	for _, cfg := range s.seeds {
		snap.CorpusSeedKVs = append(snap.CorpusSeedKVs, cfg.KV())
	}
	snap.WarmDTM = json.RawMessage(s.warmDTM)
	snap.Workers = make([]workerSnap, len(s.workers))
	for i, st := range s.workers {
		ws := workerSnap{
			ClockSec:  st.clock.Now(),
			RNG:       st.noise.State(),
			ImageKey:  st.imageKey,
			HaveImage: st.haveImage,
			BootKey:   st.bootKey,
			HaveBoot:  st.haveBoot,
			Builds:    st.builds,
		}
		if s.wall != nil {
			ws.StallSec = s.wall.WorkerStallSec(i)
		}
		snap.Workers[i] = ws
	}
	if c := s.cache; c != nil && c.store != nil {
		cs := &cacheSnap{Store: c.store.Snapshot()}
		keys := make([]uint64, 0, len(c.building))
		for k := range c.building {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			t := c.building[k]
			cs.Building = append(cs.Building, ticketSnap{Key: k, Host: t.host, EndSec: t.endSec, OK: t.ok, Resolved: t.resolved})
		}
		snap.Cache = cs
	}
	for _, ev := range s.buf {
		snap.Buffer = append(snap.Buffer, s.snapEval(ev))
	}
	if s.mode == modeAsync {
		snap.Inflight = make([]*evalSnap, len(s.inflight))
		for i, ev := range s.inflight {
			if ev != nil {
				es := s.snapEval(ev)
				snap.Inflight[i] = &es
			}
		}
	}
	if pc, ok := s.recorder.(pendingCheckpointer); ok {
		if pending := pc.PendingSnapshot(); len(pending) > 0 {
			snap.AdapterPending = pending
		}
	}
	if cm, ok := s.eng.Metric.(CheckpointableMetric); ok {
		ms, err := cm.CheckpointMetric()
		if err != nil {
			return nil, fmt.Errorf("core: checkpointing metric %q: %w", cm.Name(), err)
		}
		snap.MetricState = ms
	}
	return json.Marshal(&snap)
}

// snapEval serializes one pending evaluation.
func (s *Session) snapEval(ev *batchEval) evalSnap {
	res := ev.res
	res.fillConfigKV()
	es := evalSnap{
		Iter:        ev.iter,
		Worker:      ev.st.worker,
		Result:      res,
		ArtifactKey: res.artifactKey,
		BuildEndSec: res.buildEndSec,
	}
	if t := res.ticket; t != nil {
		if s.cache != nil && s.cache.building[res.artifactKey] == t {
			es.TicketRegistered = true
		} else {
			es.Ticket = &ticketSnap{Key: res.artifactKey, Host: t.host, EndSec: t.endSec, OK: t.ok, Resolved: t.resolved}
		}
	}
	return es
}

// PeekSnapshot returns the options a session snapshot was taken with,
// without restoring it — callers use it to reconstruct the searcher and
// engine with matching construction parameters (notably the seed) before
// RestoreSession.
func PeekSnapshot(data []byte) (Options, error) {
	var snap struct {
		Version int     `json:"version"`
		Options Options `json:"options"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return Options{}, fmt.Errorf("core: decoding session snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return Options{}, fmt.Errorf("core: session snapshot version %d (want %d)", snap.Version, snapshotVersion)
	}
	return snap.Options, nil
}

// RestoreSession rebuilds a session from a Snapshot against an engine
// whose model, app, metric, and searcher were constructed exactly as the
// snapshotted session's were (same spaces, same constructor arguments —
// the searcher's accumulated state is restored from the snapshot). The
// engine's clock is advanced to the snapshot's virtual position; it must
// not already be past it.
func (e *Engine) RestoreSession(data []byte) (*Session, error) {
	var snap sessionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("core: decoding session snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: session snapshot version %d (want %d)", snap.Version, snapshotVersion)
	}
	if got := e.Searcher.Name(); got != snap.SearcherName {
		return nil, fmt.Errorf("core: snapshot was taken with searcher %q, engine has %q", snap.SearcherName, got)
	}
	if got := e.Metric.Name(); got != snap.MetricName {
		return nil, fmt.Errorf("core: snapshot was taken with metric %q, engine has %q", snap.MetricName, got)
	}
	if snap.Report == nil {
		return nil, fmt.Errorf("core: session snapshot has no report")
	}
	mode := schedMode(snap.Mode)
	if mode != modeSequential && mode != modeRound && mode != modeAsync {
		return nil, fmt.Errorf("core: session snapshot has unknown scheduler mode %d", snap.Mode)
	}
	if now := e.Clock.Now(); now > snap.BaseSec {
		return nil, fmt.Errorf("core: engine clock at %.3fs is past the snapshot baseline %.3fs", now, snap.BaseSec)
	}
	e.Clock.Advance(snap.BaseSec - e.Clock.Now())

	s := e.newSession(snap.Options, mode)
	// The surrogate window must be in place before the searcher checkpoint
	// is restored: a windowed GP restore keeps its packed factor windowed,
	// and a windowed DeepTune restore replays its history through the same
	// sliding-window trimming the live session applied.
	if err := e.applySurrogateWindow(snap.Options); err != nil {
		return nil, err
	}
	wantWorkers := len(s.workers)
	if len(snap.Workers) != wantWorkers {
		return nil, fmt.Errorf("core: snapshot has %d workers, options imply %d", len(snap.Workers), wantWorkers)
	}

	// Report: reattach the in-memory configurations from their canonical
	// KV assignments.
	s.report = snap.Report
	space := e.Model.Space
	for i := range s.report.History {
		if err := restoreResult(&s.report.History[i], space); err != nil {
			return nil, fmt.Errorf("core: history[%d]: %w", i, err)
		}
	}
	if s.report.Best != nil {
		if err := restoreResult(s.report.Best, space); err != nil {
			return nil, fmt.Errorf("core: best result: %w", err)
		}
	}
	// The cumulative decision-cost accounting is derivable from the
	// restored history, so it travels implicitly.
	for i := range s.report.History {
		s.decisionNS += s.report.History[i].DecisionCost
	}

	// Workers: clocks, stall accounting, noise streams, skip digests.
	for i, ws := range snap.Workers {
		st := s.workers[i]
		if s.wall != nil {
			s.wall.RestoreWorker(i, ws.ClockSec, ws.StallSec)
		} else if ws.ClockSec > e.Clock.Now() {
			e.Clock.Advance(ws.ClockSec - e.Clock.Now())
		}
		st.noise.SetState(ws.RNG)
		st.imageKey, st.haveImage = ws.ImageKey, ws.HaveImage
		st.bootKey, st.haveBoot = ws.BootKey, ws.HaveBoot
		st.builds = ws.Builds
	}
	// A parallel session's wall-clock advance up to the snapshot was
	// already folded onto the original engine's clock (finalize); bring
	// this engine's clock to the same virtual position, so chains sharing
	// the clock resume exactly where the uninterrupted run would be.
	if s.wall != nil {
		if target := snap.BaseSec + snap.FoldedSec; target > e.Clock.Now() {
			e.Clock.Advance(target - e.Clock.Now())
		}
	}

	// Cache: store contents and the in-flight registry.
	if snap.Cache != nil && s.cache != nil && s.cache.store != nil {
		if snap.Cache.Store != nil {
			s.cache.store = artifact.Restore(snap.Cache.Store)
		}
		for _, ts := range snap.Cache.Building {
			s.cache.building[ts.Key] = &buildTicket{host: ts.Host, endSec: ts.EndSec, ok: ts.OK, resolved: ts.Resolved}
		}
	}

	// Scheduler position and pending evaluations.
	s.next, s.observed = snap.Next, snap.Observed
	s.done.Store(snap.Done)
	s.folded = snap.FoldedSec
	s.round = snap.Round
	s.exhausted, s.frontier = snap.Exhausted, snap.Frontier
	s.faultCur = snap.FaultCursor
	for _, rs := range snap.Retries {
		cfg, err := space.FromKV(rs.ConfigKV)
		if err != nil {
			return nil, fmt.Errorf("core: queued retry of iteration %d: %w", rs.Iter, err)
		}
		s.retries = append(s.retries, &retryItem{
			iter: rs.Iter, cfg: cfg, attempt: rs.Attempt, notBefore: rs.NotBeforeSec,
		})
	}
	for i := range snap.Buffer {
		ev, err := s.restoreEval(&snap.Buffer[i])
		if err != nil {
			return nil, err
		}
		s.buf = append(s.buf, ev)
	}
	if mode == modeAsync {
		if len(snap.Inflight) != wantWorkers {
			return nil, fmt.Errorf("core: snapshot has %d inflight slots, options imply %d", len(snap.Inflight), wantWorkers)
		}
		for i, es := range snap.Inflight {
			if es == nil {
				continue
			}
			ev, err := s.restoreEval(es)
			if err != nil {
				return nil, err
			}
			s.inflight[i] = ev
			s.busy++
		}
	}

	// Corpus warm-start state: the remaining seed queue, and the warm
	// DeepTune weights re-applied to the fresh searcher BEFORE its
	// checkpoint replays — DeepTune restore replays the observation
	// history through a fresh selector, and that replay must evolve from
	// the same warm starting point the live session's training did.
	for _, kv := range snap.CorpusSeedKVs {
		cfg, err := space.FromKV(kv)
		if err != nil {
			return nil, fmt.Errorf("core: corpus seed config: %w", err)
		}
		s.seeds = append(s.seeds, cfg)
	}
	if len(snap.WarmDTM) > 0 {
		dt, ok := e.Searcher.(*search.DeepTune)
		if !ok {
			return nil, fmt.Errorf("core: snapshot carries corpus DTM weights but searcher %q is not deeptune", snap.SearcherName)
		}
		nnSnap, err := nn.DecodeSnapshot(snap.WarmDTM)
		if err != nil {
			return nil, fmt.Errorf("core: corpus DTM snapshot: %w", err)
		}
		if err := dt.Selector().Model().Restore(nnSnap); err != nil {
			return nil, fmt.Errorf("core: corpus DTM restore: %w", err)
		}
		s.warmDTM = append([]byte(nil), snap.WarmDTM...)
	}

	// Searcher, adapter, and metric state.
	ck, err := s.checkpointable()
	if err != nil {
		return nil, err
	}
	if err := ck.Restore(snap.SearcherState); err != nil {
		return nil, err
	}
	if len(snap.AdapterPending) > 0 {
		pc, ok := s.recorder.(pendingCheckpointer)
		if !ok {
			return nil, fmt.Errorf("core: snapshot carries batch-adapter state but the session has no adapter")
		}
		pc.RestorePending(snap.AdapterPending)
	}
	if len(snap.MetricState) > 0 {
		cm, ok := e.Metric.(CheckpointableMetric)
		if !ok {
			return nil, fmt.Errorf("core: snapshot carries state for metric %q but the engine's does not implement CheckpointableMetric", snap.MetricName)
		}
		if err := cm.RestoreMetric(snap.MetricState); err != nil {
			return nil, err
		}
	}
	s.finalize()
	return s, nil
}

// restoreResult reattaches a deserialized result's Config from its
// canonical KV assignment.
func restoreResult(res *Result, space *configspace.Space) error {
	if res.ConfigKV == nil {
		return nil
	}
	cfg, err := space.FromKV(res.ConfigKV)
	if err != nil {
		return err
	}
	res.Config = cfg
	return nil
}

// restoreEval rebuilds one pending evaluation, re-linking its build ticket
// to the cache's registered in-flight build when the identities matched at
// snapshot time.
func (s *Session) restoreEval(es *evalSnap) (*batchEval, error) {
	if es.Worker < 0 || es.Worker >= len(s.workers) {
		return nil, fmt.Errorf("core: pending evaluation on worker %d of %d", es.Worker, len(s.workers))
	}
	res := es.Result
	if err := restoreResult(&res, s.eng.Model.Space); err != nil {
		return nil, fmt.Errorf("core: pending evaluation %d: %w", es.Iter, err)
	}
	if res.Config == nil {
		return nil, fmt.Errorf("core: pending evaluation %d has no configuration", es.Iter)
	}
	res.artifactKey = es.ArtifactKey
	res.buildEndSec = es.BuildEndSec
	switch {
	case es.TicketRegistered:
		if s.cache == nil || s.cache.building[es.ArtifactKey] == nil {
			return nil, fmt.Errorf("core: pending evaluation %d references an unregistered in-flight build", es.Iter)
		}
		res.ticket = s.cache.building[es.ArtifactKey]
	case es.Ticket != nil:
		res.ticket = &buildTicket{host: es.Ticket.Host, endSec: es.Ticket.EndSec, ok: es.Ticket.OK, resolved: es.Ticket.Resolved}
	}
	return &batchEval{iter: es.Iter, cfg: res.Config, st: s.workers[es.Worker], res: res}, nil
}
