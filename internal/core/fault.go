// Session fault runtime: the machinery that turns a fault.Schedule into
// deterministic scheduler behavior. Three mechanisms, all coordinator-side
// and all pure functions of the session inputs:
//
//   - The fault cursor (advanceFaults) applies host up/down events as the
//     scheduler's decision time passes them: a host going down loses its
//     artifact-store partition, its in-flight build registrations, and its
//     workers' on-disk image/boot digests, and stops accepting dispatches
//     until the matching up event.
//   - Kill resolution (resolveFaults) settles a just-executed dispatch
//     batch against the schedule after the batch joins: an evaluation
//     overlapping a preemption of its worker or a down of its host is
//     killed at the fault instant — its virtual work past the kill point
//     is refunded (clock rollback), its side effects on the worker are
//     unwound, and its observation is lost-then-retried under the
//     schedule's RetryPolicy (with deterministic virtual-time backoff,
//     and on another host when the original is down, since placement only
//     considers live workers). Injected build/boot failures follow the
//     same retry path without a rollback — the failed attempt's time was
//     genuinely spent. An iteration that exhausts its attempt budget is
//     recorded as a crash at the synthetic "fault" stage.
//   - The retry queue holds lost iterations (ascending iteration order)
//     until their backoff deadline; the schedulers drain it ahead of
//     fresh proposals. Retries keep their iteration index, so the report
//     history still covers every proposed iteration exactly once unless
//     the budget ends first (Report.LostObservations counts that).
//
// Worker noise streams are deliberately NOT rewound on a kill: a retried
// attempt draws fresh jitter, exactly as a re-run build would, and the
// stream position stays a pure function of the dispatch sequence.
//
// Event ordering guarantee: HostStateChanged, FaultInjected, and
// RetryScheduled are emitted at dispatch/resolve boundaries — between
// per-observation event groups, never inside one — in schedule-cursor
// order (host events) and dispatch order (kills, injections, retries).
package core

import (
	"sort"

	"wayfinder/internal/artifact"
	"wayfinder/internal/configspace"
	"wayfinder/internal/fault"
	"wayfinder/internal/simos"
)

// faultStageName is the synthetic Result.Stage of an evaluation killed by
// the fault schedule after exhausting its retry budget.
const faultStageName = "fault"

// injectedReason marks a crash produced by a scheduled build/boot
// injection (vs the model's organic crash outcome).
const injectedReason = "injected fault"

// retryItem is one lost observation awaiting re-dispatch.
type retryItem struct {
	iter      int
	cfg       *configspace.Config
	attempt   int     // failed attempts so far (≥ 1)
	notBefore float64 // virtual backoff deadline
}

// faultsActive reports whether the session has a non-empty schedule.
func (s *Session) faultsActive() bool { return !s.opts.Faults.Empty() }

// advanceFaults applies every schedule event up to the scheduler's
// current decision time, in stable (AtSec, index) order. Host-down events
// take effect here — artifact loss, registration loss, digest loss — so
// their consequences are visible to the very next planning pass.
func (s *Session) advanceFaults(now float64) {
	if !s.faultsActive() {
		return
	}
	tl := s.opts.Faults.Timeline()
	for s.faultCur < len(tl) {
		ev := tl[s.faultCur]
		if ev.AtSec > now {
			break
		}
		switch ev.Kind {
		case fault.HostDown:
			s.applyHostDown(ev.Host)
			s.emit(HostStateChanged{Host: ev.Host, Up: false, AtSec: ev.AtSec})
		case fault.HostUp:
			s.emit(HostStateChanged{Host: ev.Host, Up: true, AtSec: ev.AtSec})
		}
		s.faultCur++
	}
}

// applyHostDown is the state loss of one host-down event: the host's
// store partition empties, its in-flight build registrations vanish (a
// future planner must rebuild, not await a dead build), and its workers
// lose their on-disk image and running instance.
func (s *Session) applyHostDown(host int) {
	if c := s.cache; c != nil && c.store != nil {
		c.store.ClearHost(host)
		keys := make([]uint64, 0, len(c.building))
		for k, t := range c.building {
			if t.host == host {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			delete(c.building, k)
		}
	}
	for _, st := range s.workers {
		if st.host == host {
			st.imageKey, st.haveImage = 0, false
			st.bootKey, st.haveBoot = 0, false
		}
	}
}

// workerLive reports whether worker i's host is up at virtual time t.
func (s *Session) workerLive(i int, t float64) bool {
	if !s.faultsActive() {
		return true
	}
	return s.opts.Faults.HostUpAt(s.workers[i].host, t)
}

// liveWorkers returns the indices of workers whose host is up at t,
// ascending.
func (s *Session) liveWorkers(t float64) []int {
	live := make([]int, 0, len(s.workers))
	for i := range s.workers {
		if s.workerLive(i, t) {
			live = append(live, i)
		}
	}
	return live
}

// nextRevival returns the earliest time after t at which any host that is
// down at t comes back up, and false when every downed host stays down
// for good.
func (s *Session) nextRevival(t float64) (float64, bool) {
	sched := s.opts.Faults
	best, ok := 0.0, false
	for h := 0; h < s.opts.effHosts(); h++ {
		if sched.HostUpAt(h, t) {
			continue
		}
		if at, up := sched.NextUpAt(h, t); up && (!ok || at < best) {
			best, ok = at, true
		}
	}
	return best, ok
}

// queueRetry enqueues a lost iteration for re-dispatch after its backoff
// deadline, keeping the queue in ascending iteration order.
func (s *Session) queueRetry(iter int, cfg *configspace.Config, failures int, notBefore float64) {
	it := &retryItem{iter: iter, cfg: cfg, attempt: failures, notBefore: notBefore}
	pos := len(s.retries)
	for i, r := range s.retries {
		if r.iter > iter {
			pos = i
			break
		}
	}
	s.retries = append(s.retries, nil)
	copy(s.retries[pos+1:], s.retries[pos:])
	s.retries[pos] = it
	s.emit(RetryScheduled{Iter: iter, Attempt: failures + 1, NotBeforeSec: notBefore})
}

// takeReadyRetries removes and returns up to max retries whose backoff
// deadline has passed, in ascending iteration order.
func (s *Session) takeReadyRetries(now float64, max int) []*retryItem {
	if len(s.retries) == 0 || max <= 0 {
		return nil
	}
	var ready []*retryItem
	rest := s.retries[:0]
	for _, r := range s.retries {
		if len(ready) < max && r.notBefore <= now {
			ready = append(ready, r)
		} else {
			rest = append(rest, r)
		}
	}
	for i := len(rest); i < len(s.retries); i++ {
		s.retries[i] = nil
	}
	s.retries = rest
	return ready
}

// earliestRetry returns the soonest backoff deadline in the retry queue.
func (s *Session) earliestRetry() (float64, bool) {
	ok := false
	best := 0.0
	for _, r := range s.retries {
		if !ok || r.notBefore < best {
			best, ok = r.notBefore, true
		}
	}
	return best, ok
}

// injectFor maps the schedule's injection for (iter, attempt) — attempt is
// 1-based — onto the pipeline's stage enum (StageOK = no injection).
func (s *Session) injectFor(iter, attempt int) simos.Stage {
	if !s.faultsActive() {
		return simos.StageOK
	}
	kind, ok := s.opts.Faults.Inject(iter, attempt)
	if !ok {
		return simos.StageOK
	}
	if kind == fault.BootFail {
		return simos.StageBoot
	}
	return simos.StageBuild
}

// placeSlot picks the worker for one dispatch slot. avail is the
// availability mask (live/idle and not yet taken this dispatch); the
// static preference is the cyclic scan from iter mod W when preferMod is
// set (round scheduler) or the lowest available index otherwise (async).
// Under locality dispatch the slot instead prefers an available worker
// already holding the image — its own disk first, then a worker whose
// host store has the digest — falling back to the static choice, and
// accounts the transfer cost the move avoided. Returns -1 when no worker
// is available.
func (s *Session) placeSlot(avail []bool, iter int, cfg *configspace.Config, preferMod bool) int {
	w := len(s.workers)
	start := 0
	if preferMod {
		start = iter % w
	}
	static := -1
	for j := 0; j < w; j++ {
		c := (start + j) % w
		if avail[c] {
			static = c
			break
		}
	}
	if s.opts.Dispatch != DispatchLocality || static < 0 {
		return static
	}
	var store = s.cacheStore()
	key := cfg.CompileKey()
	chosen := -1
	for j := 0; j < w && chosen < 0; j++ {
		c := (start + j) % w
		if avail[c] && s.workers[c].haveImage && s.workers[c].imageKey == key {
			chosen = c
		}
	}
	if chosen < 0 && store != nil {
		for j := 0; j < w && chosen < 0; j++ {
			c := (start + j) % w
			if avail[c] && store.Contains(s.workers[c].host, key) {
				chosen = c
			}
		}
	}
	if chosen < 0 {
		return static
	}
	if chosen != static && store != nil {
		// The static choice would have paid a cross-host transfer exactly
		// when it could not satisfy the digest locally (no disk reuse, no
		// host-store copy) while some other host's store held it.
		ss := s.workers[static]
		staticRemote := !(ss.haveImage && ss.imageKey == key) &&
			!store.Contains(ss.host, key) && s.storeHasAnywhere(key)
		cs := s.workers[chosen]
		chosenLocal := (cs.haveImage && cs.imageKey == key) || store.Contains(cs.host, key)
		if staticRemote && chosenLocal {
			s.report.TransferSavedSec += s.eng.Model.TransferSeconds
		}
	}
	return chosen
}

// cacheStore returns the session's artifact store (nil when disabled).
func (s *Session) cacheStore() *artifact.Store {
	if s.cache == nil {
		return nil
	}
	return s.cache.store
}

// storeHasAnywhere reports whether any host partition holds the digest.
func (s *Session) storeHasAnywhere(key uint64) bool {
	store := s.cacheStore()
	if store == nil {
		return false
	}
	for h := 0; h < store.Hosts(); h++ {
		if store.Contains(h, key) {
			return true
		}
	}
	return false
}

// killInfo records a builder killed before its build completed, so
// same-batch awaiters of its ticket cascade.
type killInfo struct {
	at   float64
	kind fault.Kind
}

// resolveFaults settles a just-executed dispatch batch against the
// schedule: evaluations overlapping a kill are unwound and
// lost-then-retried (or recorded as fault crashes once their attempt
// budget is gone), injected stage failures are retried the same way, and
// everything else survives to observation. Called by every scheduler
// immediately after runBatch joins, in dispatch order — builders precede
// their same-batch awaiters by planBuild construction, so a single pass
// cascades correctly. Returns the surviving evaluations in dispatch
// order. With an empty schedule this is the identity.
func (s *Session) resolveFaults(evals []*batchEval) []*batchEval {
	if !s.faultsActive() {
		return evals
	}
	sched := s.opts.Faults
	var killedTickets map[*buildTicket]killInfo
	kept := make([]*batchEval, 0, len(evals))
	for _, ev := range evals {
		res := &ev.res
		kind, killAt, killed := sched.KillBetween(ev.st.worker, ev.st.host, res.StartSec, res.EndSec)
		// Cascade: an awaiter that fetched from a builder killed before
		// the build completed lost its artifact retroactively.
		if t := ev.plan.ticket; t != nil && res.CacheHit &&
			(ev.plan.action == buildAwait || ev.plan.action == buildAwaitRemote) {
			if info, ok := killedTickets[t]; ok {
				at := info.at
				if res.StartSec > at {
					at = res.StartSec
				}
				if !killed || at < killAt {
					kind, killAt, killed = info.kind, at, true
				}
			}
		}
		if killed {
			if t := ev.plan.ticket; t != nil && ev.plan.action == buildFull &&
				!(res.buildEndSec > 0 && killAt >= res.buildEndSec) {
				if killedTickets == nil {
					killedTickets = map[*buildTicket]killInfo{}
				}
				killedTickets[t] = killInfo{at: killAt, kind: kind}
			}
			if s.killEval(ev, kind, killAt) {
				kept = append(kept, ev)
			}
			continue
		}
		if res.Crashed && res.Reason == injectedReason {
			failures := ev.attempt + 1
			s.emit(FaultInjected{Kind: injectKind(res.Stage), Iter: ev.iter, Attempt: failures,
				Worker: ev.st.worker, Host: ev.st.host, AtSec: res.EndSec})
			if failures < sched.Retry.Max() {
				s.queueRetry(ev.iter, ev.cfg, failures, res.EndSec+sched.Retry.Backoff(failures))
				continue
			}
		}
		res.Retries = ev.attempt
		kept = append(kept, ev)
	}
	return kept
}

// injectKind maps a crash stage name back to the schedule kind that
// injected it (for the FaultInjected event).
func injectKind(stage string) fault.Kind {
	if stage == simos.StageBoot.String() {
		return fault.BootFail
	}
	return fault.BuildFail
}

// killEval unwinds one killed evaluation: the worker's clock (and stall
// accounting) rolls back to the kill instant, refunding the virtual work
// past it; an interrupted build's side effects — the worker's new image
// digest, its build counter, the in-flight registration — are undone; the
// running instance is always lost. A build the kill arrived after keeps
// its image (the artifact was genuinely produced; only the evaluation's
// observation is lost). Reports true when the iteration's attempt budget
// is exhausted and the evaluation must be recorded as a fault crash.
func (s *Session) killEval(ev *batchEval, kind fault.Kind, killAt float64) bool {
	res, st := &ev.res, ev.st
	buildDone := res.buildEndSec > 0 && killAt >= res.buildEndSec
	if !buildDone {
		if t := ev.plan.ticket; t != nil && ev.plan.action == buildFull {
			t.ok, t.resolved = false, true
			if c := s.cache; c != nil && c.building[res.artifactKey] == t {
				delete(c.building, res.artifactKey)
			}
		}
		st.imageKey, st.haveImage = ev.preImageKey, ev.preHaveImage
		st.builds = ev.preBuilds
		res.buildEndSec = 0
		res.CacheHit, res.CacheRemote, res.BuildSkipped = false, false, false
	}
	st.bootKey, st.haveBoot = 0, false
	if st.wall != nil {
		// The only in-evaluation stall is the await at build-stage start;
		// roll the stall accounting back to the portion that elapsed
		// before the kill, then pin the clock to the kill instant.
		evStall := st.wall.WorkerStallSec(st.worker) - ev.preStall
		inEval := killAt - res.StartSec
		if evStall > inEval {
			evStall = inEval
		}
		st.wall.RestoreWorker(st.worker, killAt, ev.preStall+evStall)
	} else {
		st.clock.Rewind(killAt)
	}
	failures := ev.attempt + 1
	s.emit(FaultInjected{Kind: kind, Iter: ev.iter, Attempt: failures,
		Worker: st.worker, Host: st.host, AtSec: killAt})
	pol := s.opts.Faults.Retry
	if failures < pol.Max() {
		s.queueRetry(ev.iter, ev.cfg, failures, killAt+pol.Backoff(failures))
		return false
	}
	res.Crashed = true
	res.Stage = faultStageName
	res.Reason = string(kind)
	res.Metric = 0
	res.EndSec = killAt
	res.Retries = ev.attempt
	return true
}
