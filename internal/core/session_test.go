package core

import (
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"

	"wayfinder/internal/apps"
	"wayfinder/internal/vm"
)

// sessionOptsMatrix is the scheduler × topology grid the Session
// equivalence suite pins: sequential, round-barrier, async (bounded and
// unbounded), each with and without the multi-host fleet.
var sessionOptsMatrix = []struct {
	name string
	opts Options
}{
	{"sequential", Options{Iterations: 30, Seed: 11}},
	{"round-w8", Options{Iterations: 30, Seed: 11, Workers: 8}},
	{"round-w8-hosts4", Options{Iterations: 30, Seed: 11, Workers: 8, Hosts: 4}},
	{"async-w8", Options{Iterations: 30, Seed: 11, Workers: 8, Async: true, Staleness: -1}},
	{"async-w8-s2-hosts2", Options{Iterations: 30, Seed: 11, Workers: 8, Async: true, Staleness: 2, Hosts: 2}},
}

// newSessionEngine builds a fresh engine over the shared small model so
// every compared session starts from identical state.
func newSessionEngine(t testing.TB, kind string, seed uint64) *Engine {
	t.Helper()
	m := smallLinux(t)
	app := apps.Nginx()
	return NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, kind, seed), &vm.Clock{}, seed)
}

// TestSessionRunMatchesEngineRun pins the new lifecycle's blocking path to
// the compatibility entry point across every scheduler: one API, one
// behavior.
func TestSessionRunMatchesEngineRun(t *testing.T) {
	for _, tc := range sessionOptsMatrix {
		run, err := newSessionEngine(t, "random", 11).Run(tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sess, err := newSessionEngine(t, "random", 11).NewSession(tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rep, err := sess.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if canonicalJSON(t, run) != canonicalJSON(t, rep) {
			t.Fatalf("%s: Session.Run diverged from Engine.Run", tc.name)
		}
	}
}

// TestSessionStepEquivalentToRun: driving a session one observation at a
// time — the daemon primitive — must reproduce the uninterrupted run
// byte-for-byte on every scheduler.
func TestSessionStepEquivalentToRun(t *testing.T) {
	for _, tc := range sessionOptsMatrix {
		for _, kind := range []string{"random", "bayesian"} {
			full, err := newSessionEngine(t, kind, 11).Run(tc.opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, kind, err)
			}
			sess, err := newSessionEngine(t, kind, 11).NewSession(tc.opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, kind, err)
			}
			steps := 0
			for !sess.Done() {
				if n := sess.Step(1); n > 1 {
					t.Fatalf("%s/%s: Step(1) advanced %d observations", tc.name, kind, n)
				}
				steps++
				if steps > tc.opts.Iterations+1 {
					t.Fatalf("%s/%s: session did not terminate", tc.name, kind)
				}
			}
			if sess.Observed() != len(full.History) {
				t.Fatalf("%s/%s: stepped session observed %d, run observed %d",
					tc.name, kind, sess.Observed(), len(full.History))
			}
			if canonicalJSON(t, full) != canonicalJSON(t, sess.Report()) {
				t.Fatalf("%s/%s: Step(1)×N diverged from Run", tc.name, kind)
			}
		}
	}
}

// TestSessionPartialReportValid: a session interrupted mid-run (including
// mid-round) must present a consistent prefix report.
func TestSessionPartialReportValid(t *testing.T) {
	opts := Options{Iterations: 30, Seed: 11, Workers: 8}
	full, err := newSessionEngine(t, "random", 11).Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := newSessionEngine(t, "random", 11).NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := sess.Step(13); n != 13 { // mid-round: 13 is not a multiple of 8
		t.Fatalf("Step(13) advanced %d", n)
	}
	rep := sess.Report()
	if len(rep.History) != 13 {
		t.Fatalf("partial history has %d entries", len(rep.History))
	}
	for i := range rep.History {
		if canonicalResultJSON(t, rep.History[i]) != canonicalResultJSON(t, full.History[i]) {
			t.Fatalf("partial history[%d] diverged from the uninterrupted run", i)
		}
	}
	if rep.Utilization <= 0 || rep.ComputeSec <= 0 || rep.ElapsedSec <= 0 {
		t.Fatalf("partial report aggregates not finalized: %+v", rep)
	}
}

// canonicalResultJSON renders one result with the wall-time decision cost
// zeroed.
func canonicalResultJSON(t *testing.T, res Result) string {
	t.Helper()
	res.DecisionCost = 0
	res.fillConfigKV()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSessionSnapshotResume: snapshot at an awkward observation count,
// restore into a fresh engine, and finish — the stitched report must be
// byte-identical to an uninterrupted run for every Checkpointable searcher
// and every scheduler.
func TestSessionSnapshotResume(t *testing.T) {
	kinds := []string{"random", "grid", "bayesian", "deeptune"}
	for _, tc := range sessionOptsMatrix {
		for _, kind := range kinds {
			if kind == "deeptune" && testing.Short() {
				continue
			}
			full, err := newSessionEngine(t, kind, 11).Run(tc.opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, kind, err)
			}
			sess, err := newSessionEngine(t, kind, 11).NewSession(tc.opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, kind, err)
			}
			sess.Step(13) // mid-round, mid-flight
			snap, err := sess.Snapshot()
			if err != nil {
				t.Fatalf("%s/%s: snapshot: %v", tc.name, kind, err)
			}
			resumedEng := newSessionEngine(t, kind, 11)
			resumed, err := resumedEng.RestoreSession(snap)
			if err != nil {
				t.Fatalf("%s/%s: restore: %v", tc.name, kind, err)
			}
			if resumed.Observed() != 13 {
				t.Fatalf("%s/%s: resumed at observation %d, want 13", tc.name, kind, resumed.Observed())
			}
			rep, err := resumed.Run(context.Background())
			if err != nil {
				t.Fatalf("%s/%s: resumed run: %v", tc.name, kind, err)
			}
			if canonicalJSON(t, full) != canonicalJSON(t, rep) {
				t.Fatalf("%s/%s: snapshot-at-13 + resume diverged from the uninterrupted run", tc.name, kind)
			}
		}
	}
}

// TestSessionResumeEngineClock: a resumed parallel session's engine clock
// must land where the uninterrupted run's did — the fold-back that keeps
// engines sharing a clock (experiment chains) on one consistent timeline.
func TestSessionResumeEngineClock(t *testing.T) {
	opts := Options{Iterations: 24, Seed: 5, Workers: 4}
	ref := newSessionEngine(t, "random", 5)
	if _, err := ref.Run(opts); err != nil {
		t.Fatal(err)
	}
	sess, err := newSessionEngine(t, "random", 5).NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	sess.Step(10)
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumedEng := newSessionEngine(t, "random", 5)
	resumed, err := resumedEng.RestoreSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := resumedEng.Clock.Now(), ref.Clock.Now(); got != want {
		t.Fatalf("resumed engine clock at %.6f, uninterrupted at %.6f", got, want)
	}
}

// TestSessionSnapshotResumeScoreMetric covers the stateful-metric path:
// the running normalization must travel with the snapshot.
func TestSessionSnapshotResumeScoreMetric(t *testing.T) {
	opts := Options{Iterations: 24, Seed: 5, Workers: 4}
	build := func() *Engine {
		m := smallLinux(t)
		app := apps.Nginx()
		return NewEngine(m, app, &ScoreMetric{}, newSearcher(m, "random", 5), &vm.Clock{}, 5)
	}
	full, err := build().Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := build().NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	sess.Step(9)
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := build().RestoreSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if canonicalJSON(t, full) != canonicalJSON(t, rep) {
		t.Fatal("score-metric snapshot/resume diverged from the uninterrupted run")
	}
}

// TestSessionSnapshotRequiresCheckpointable: strategies without checkpoint
// support fail loudly, naming themselves.
func TestSessionSnapshotRequiresCheckpointable(t *testing.T) {
	sess, err := newSessionEngine(t, "unicorn", 3).NewSession(Options{Iterations: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess.Step(2)
	if _, err := sess.Snapshot(); err == nil {
		t.Fatal("expected snapshot of a non-checkpointable searcher to fail")
	}
}

// TestSessionCancellation: a canceled Run returns the context error with a
// consistent partial report (an observation-prefix of the uninterrupted
// run), leaks no goroutines, and the session stays resumable to the exact
// uninterrupted result.
func TestSessionCancellation(t *testing.T) {
	for _, tc := range sessionOptsMatrix {
		full, err := newSessionEngine(t, "random", 11).Run(tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sess, err := newSessionEngine(t, "random", 11).NewSession(tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		sess.AddObserver(func(ev Event) {
			if _, ok := ev.(EvalDone); ok {
				if seen++; seen == 9 {
					cancel()
				}
			}
		})
		before := runtime.NumGoroutine()
		rep, err := sess.Run(ctx)
		if err != context.Canceled {
			t.Fatalf("%s: canceled run returned %v", tc.name, err)
		}
		if len(rep.History) != 9 {
			t.Fatalf("%s: canceled run recorded %d observations, want 9", tc.name, len(rep.History))
		}
		for i := range rep.History {
			if canonicalResultJSON(t, rep.History[i]) != canonicalResultJSON(t, full.History[i]) {
				t.Fatalf("%s: canceled history[%d] diverged", tc.name, i)
			}
		}
		// The scheduler joins its evaluation goroutines inside every step,
		// so cancellation must leave none behind.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if after := runtime.NumGoroutine(); after > before {
			t.Fatalf("%s: %d goroutines leaked by cancellation", tc.name, after-before)
		}
		// Resumability: finishing the canceled session reproduces the
		// uninterrupted report exactly.
		rep2, err := sess.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if canonicalJSON(t, full) != canonicalJSON(t, rep2) {
			t.Fatalf("%s: canceled-then-resumed session diverged", tc.name)
		}
	}
}

// TestSessionEventsDeterministic: the event stream is a pure function of
// (seed, workers, staleness, hosts) — two identical sessions emit the
// identical sequence, aligned with the observation order.
func TestSessionEventsDeterministic(t *testing.T) {
	collect := func() []string {
		sess, err := newSessionEngine(t, "random", 7).NewSession(Options{Iterations: 24, Seed: 7, Workers: 8, Hosts: 2})
		if err != nil {
			t.Fatal(err)
		}
		var log []string
		sess.AddObserver(func(ev Event) { log = append(log, eventString(t, ev)) })
		if _, err := sess.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("no events emitted")
	}
	if len(a) != len(b) {
		t.Fatalf("event streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
	// Every observation contributes an EvalDone followed by a Progress,
	// and the stream ends with SessionDone.
	evalDone, progress, done := 0, 0, 0
	for _, s := range a {
		switch {
		case s[:4] == "eval":
			evalDone++
		case s[:4] == "prog":
			progress++
		case s[:4] == "done":
			done++
		}
	}
	if evalDone != 24 || progress != 24 || done != 1 {
		t.Fatalf("event census: %d EvalDone, %d Progress, %d SessionDone", evalDone, progress, done)
	}
}

// eventString renders an event canonically (decision costs zeroed).
func eventString(t *testing.T, ev Event) string {
	t.Helper()
	switch e := ev.(type) {
	case EvalDone:
		return "eval:" + canonicalResultJSON(t, e.Result)
	case NewBest:
		return "best:" + canonicalResultJSON(t, e.Result)
	case CacheEvent:
		return "cache:" + e.Source + ":" + canonicalResultJSON(t, e.Result)
	case RoundBarrier:
		return "barrier:" + jsonString(t, e)
	case Progress:
		e.Best = nil // carries a Result with a wall-time DecisionCost
		return "prog:" + jsonString(t, e)
	case SessionDone:
		return "done:" + canonicalJSON(t, e.Report)
	}
	t.Fatalf("unknown event %T", ev)
	return ""
}

func jsonString(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestOptionsValidate pins the centralized validation the CLIs, the
// daemon's spec admission, and the Session constructor share — including
// the exact failure messages, which surface verbatim to users.
func TestOptionsValidate(t *testing.T) {
	bad := []struct {
		name    string
		opts    Options
		wantErr string
	}{
		{"no budget", Options{}, "no budget"},
		{"negative iterations", Options{Iterations: -1, TimeBudgetSec: 100}, "negative iteration budget"},
		{"negative time budget", Options{Iterations: 10, TimeBudgetSec: -3}, "negative time budget"},
		{"negative workers", Options{Iterations: 10, Workers: -1}, "negative worker count"},
		{"staleness without async", Options{Iterations: 10, Staleness: 2}, "Staleness only applies to the async scheduler"},
		{"negative staleness without async", Options{Iterations: 10, Staleness: -1}, "Staleness only applies to the async scheduler"},
		{"negative hosts", Options{Iterations: 10, Hosts: -2, Workers: 2}, "negative host count"},
		{"hosts exceed workers", Options{Iterations: 10, Workers: 4, Hosts: 8}, "8 hosts exceed 4 workers"},
		{"hosts exceed effective workers", Options{Iterations: 10, Hosts: 2}, "2 hosts exceed 1 workers"},
		{"hosts without the store", Options{Iterations: 10, Workers: 4, Hosts: 2, DisableCache: true}, "artifact-cache locality"},
		{"negative speed factor", Options{Iterations: 10, Workers: 2, WorkerSpeedFactors: []float64{1, -4}}, "negative speed factor -4 for worker 1"},
		{"small surrogate window", Options{Iterations: 10, SurrogateWindow: 4}, "surrogate window 4 is too small"},
		{"negative surrogate window", Options{Iterations: 10, SurrogateWindow: -8}, "surrogate window -8 is too small"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if err == nil {
				t.Fatalf("bad options %+v validated", tc.opts)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	good := []struct {
		name string
		opts Options
	}{
		{"iteration budget", Options{Iterations: 10}},
		{"time budget only", Options{TimeBudgetSec: 100}},
		{"unbounded async staleness", Options{Iterations: 10, Workers: 8, Async: true, Staleness: -1}},
		{"async with sync rounds", Options{Iterations: 10, Workers: 8, Async: true}},
		{"one host per worker", Options{Iterations: 10, Workers: 8, Hosts: 8}},
		{"cache disabled single host", Options{Iterations: 10, Workers: 2, DisableCache: true}},
		{"speed factors", Options{Iterations: 10, Workers: 2, WorkerSpeedFactors: []float64{1, 4}}},
		{"surrogate window at the floor", Options{Iterations: 10, SurrogateWindow: 8}},
	}
	for _, tc := range good {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.opts.Validate(); err != nil {
				t.Fatalf("good options %+v rejected: %v", tc.opts, err)
			}
		})
	}

	// Engine.Run routes through the same validation.
	eng := newSessionEngine(t, "random", 1)
	if _, err := eng.Run(Options{Iterations: 10, Staleness: 3}); err == nil {
		t.Fatal("Engine.Run accepted staleness without async")
	}
}

// TestResultConfigRoundTrip is the Result.Config serialization bugfix: a
// report's JSON must carry enough to reconstruct each exact configuration,
// not just the display string.
func TestResultConfigRoundTrip(t *testing.T) {
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, "random", 9), &vm.Clock{}, 9)
	rep, err := eng.Run(Options{Iterations: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed Report
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.History) != len(rep.History) {
		t.Fatalf("parsed %d history entries, want %d", len(parsed.History), len(rep.History))
	}
	for i, h := range parsed.History {
		if h.ConfigKV == nil {
			t.Fatalf("history[%d] lost its config_kv map", i)
		}
		cfg, err := m.Space.FromKV(h.ConfigKV)
		if err != nil {
			t.Fatalf("history[%d]: %v", i, err)
		}
		orig := rep.History[i].Config
		if !cfg.Equal(orig) {
			t.Fatalf("history[%d]: config did not survive serialize→parse:\n got %s\nwant %s", i, cfg, orig)
		}
		if cfg.CompileKey() != orig.CompileKey() || cfg.BootKey() != orig.BootKey() || cfg.Hash() != orig.Hash() {
			t.Fatalf("history[%d]: digests diverged after round trip", i)
		}
	}
}
