package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestWindowedSessionSnapshotResume: a sliding-window surrogate session
// snapshotted mid-flight and restored into a fresh engine must finish
// byte-identically to an uninterrupted windowed run — for both learned
// searchers, on every scheduler. The window (10) is well below the
// snapshot point (13), so the surrogate is already sliding when the
// checkpoint is cut: the GP must carry its downdated factor across the
// snapshot (the replay recipe is gone), and DeepTune must re-trim its
// replayed history exactly as the live session did.
func TestWindowedSessionSnapshotResume(t *testing.T) {
	for _, tc := range sessionOptsMatrix {
		for _, kind := range []string{"bayesian", "deeptune"} {
			if kind == "deeptune" && testing.Short() {
				continue
			}
			opts := tc.opts
			opts.SurrogateWindow = 10
			full, err := newSessionEngine(t, kind, 11).Run(opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, kind, err)
			}
			sess, err := newSessionEngine(t, kind, 11).NewSession(opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, kind, err)
			}
			sess.Step(13) // mid-round, mid-flight, past the window
			snap, err := sess.Snapshot()
			if err != nil {
				t.Fatalf("%s/%s: snapshot: %v", tc.name, kind, err)
			}
			resumed, err := newSessionEngine(t, kind, 11).RestoreSession(snap)
			if err != nil {
				t.Fatalf("%s/%s: restore: %v", tc.name, kind, err)
			}
			rep, err := resumed.Run(context.Background())
			if err != nil {
				t.Fatalf("%s/%s: resumed run: %v", tc.name, kind, err)
			}
			if canonicalJSON(t, full) != canonicalJSON(t, rep) {
				t.Fatalf("%s/%s: windowed snapshot-at-13 + resume diverged from the uninterrupted windowed run",
					tc.name, kind)
			}
		}
	}
}

// TestWindowedSessionReachesSurrogate: the option must actually bite —
// after a windowed Bayesian session runs past its window, the snapshot's
// surrogate state must show the bound applied, the history trimmed to it,
// and the packed factor serialized (the downdate destroys the replay
// recipe, so a windowed checkpoint carries the factor directly). Guards
// against the knob silently never reaching the surrogate.
func TestWindowedSessionReachesSurrogate(t *testing.T) {
	sess, err := newSessionEngine(t, "bayesian", 11).NewSession(
		Options{Iterations: 40, Seed: 11, SurrogateWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	sess.Step(25) // well past the 3-observation cold start + 8-window
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var state struct {
		SearcherState struct {
			GP struct {
				Xs     [][]float64 `json:"xs"`
				Fitted int         `json:"fitted"`
				Window int         `json:"window"`
				Chol   []float64   `json:"chol"`
			} `json:"gp"`
		} `json:"searcher_state"`
	}
	if err := json.Unmarshal(snap, &state); err != nil {
		t.Fatal(err)
	}
	gp := state.SearcherState.GP
	if gp.Window != 8 {
		t.Fatalf("snapshot carries window %d, want 8: the option never reached the surrogate", gp.Window)
	}
	// The factor syncs lazily, so up to one trailing observation may sit
	// unfitted past the window until the next prediction drains it.
	if gp.Fitted > 8 || len(gp.Xs) > 9 {
		t.Fatalf("surrogate history %d/%d observations exceeds the 8-window", len(gp.Xs), gp.Fitted)
	}
	if len(gp.Chol) == 0 {
		t.Fatal("windowed snapshot did not serialize the packed factor")
	}
}

// TestSurrogateWindowRequiresLearnedSearcher: the option names a surrogate
// bound, so strategies without one are rejected at construction — loudly,
// naming the searcher — rather than silently ignoring the knob.
func TestSurrogateWindowRequiresLearnedSearcher(t *testing.T) {
	for _, kind := range []string{"random", "grid", "unicorn"} {
		_, err := newSessionEngine(t, kind, 3).NewSession(
			Options{Iterations: 4, Seed: 3, SurrogateWindow: 16})
		if err == nil {
			t.Fatalf("%s: expected SurrogateWindow on a surrogate-free searcher to fail", kind)
		}
		if !strings.Contains(err.Error(), "no learned surrogate") {
			t.Fatalf("%s: error %q does not name the missing surrogate", kind, err)
		}
	}
}
