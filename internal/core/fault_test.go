package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"wayfinder/internal/apps"
	"wayfinder/internal/fault"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
	"wayfinder/internal/vm"
)

// mustSchedule parses a fault-schedule DSL string or fails the test.
func mustSchedule(t testing.TB, src string) *fault.Schedule {
	t.Helper()
	s, err := fault.Parse(src)
	if err != nil {
		t.Fatalf("parsing schedule %q: %v", src, err)
	}
	return s
}

// reportHash is the canonical report digest the golden pins compare:
// SHA-256 over the DecisionCost-zeroed canonical JSON.
func reportHash(t *testing.T, rep *Report) string {
	t.Helper()
	sum := sha256.Sum256([]byte(canonicalJSON(t, rep)))
	return hex.EncodeToString(sum[:])
}

// TestEmptyScheduleGolden pins the fault-free output of all three
// schedulers to digests captured before the fault runtime existed: the
// empty schedule (and the nil Faults default) must reproduce the
// pre-fault engine byte-for-byte, scheduler loops included.
func TestEmptyScheduleGolden(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"sequential", Options{Iterations: 40, Seed: 7},
			"15d65fc3a4b2a34440f1b1e4007dbe30f630199a499938420fc04a20d9c7f842"},
		{"round-w8-h4", Options{Iterations: 40, Seed: 7, Workers: 8, Hosts: 4},
			"8b76064dbf82d0d0b411c7c57176f86b962205aa3df27ef41a86077dd0e7a8bb"},
		{"async-w8-h2-s2", Options{Iterations: 40, Seed: 7, Workers: 8, Hosts: 2, Async: true, Staleness: 2},
			"252eec90b306a8f0981f3e0729d589655aae3577908511a60e96af6c6bbdd5a8"},
	}
	for _, tc := range cases {
		for _, withEmpty := range []bool{false, true} {
			opts := tc.opts
			if withEmpty {
				opts.Faults = &fault.Schedule{}
			}
			m := smallLinux(t)
			app := apps.Nginx()
			eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 7), &vm.Clock{}, 7)
			rep, err := eng.Run(opts)
			if err != nil {
				t.Fatalf("%s (empty=%v): %v", tc.name, withEmpty, err)
			}
			if got := reportHash(t, rep); got != tc.want {
				t.Errorf("%s (empty=%v): report hash %s, want %s — the fault-free path drifted",
					tc.name, withEmpty, got, tc.want)
			}
		}
	}
}

// faultOptsMatrix pairs each scheduler with a fault schedule exercising
// its full fault surface (host churn only where hosts permit it).
var faultOptsMatrix = []struct {
	name  string
	opts  Options
	sched string
}{
	{"sequential", Options{Iterations: 24, Seed: 11},
		"preempt:0@100,preempt:0@420,buildfail:3#1,bootfail:6#1,retry:3/15/2"},
	{"round-w8-h4", Options{Iterations: 48, Seed: 11, Workers: 8, Hosts: 4},
		"down:1@150,up:1@500,down:2@600,up:2@900,preempt:3@200,preempt:5@700,buildfail:7#1,bootfail:11#1,retry:3/20/2"},
	{"async-w8-h4-s3", Options{Iterations: 48, Seed: 11, Workers: 8, Hosts: 4, Async: true, Staleness: 3},
		"down:1@150,up:1@500,down:3@400,up:3@800,preempt:2@250,buildfail:5#1,retry:3/20/2"},
}

// TestFaultDeterminism: with a fixed schedule, every scheduler's report is
// byte-identical across runs — faults are part of the pure function, not
// noise.
func TestFaultDeterminism(t *testing.T) {
	for _, tc := range faultOptsMatrix {
		opts := tc.opts
		opts.Faults = mustSchedule(t, tc.sched)
		var hashes [2]string
		var reps [2]*Report
		for i := range hashes {
			m := smallLinux(t)
			app := apps.Nginx()
			eng := NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, "random", 11), &vm.Clock{}, 11)
			rep, err := eng.Run(opts)
			if err != nil {
				t.Fatalf("%s run %d: %v", tc.name, i, err)
			}
			hashes[i] = reportHash(t, rep)
			reps[i] = rep
		}
		if hashes[0] != hashes[1] {
			t.Errorf("%s: same schedule produced diverging reports", tc.name)
		}
		if reps[0].Retries == 0 {
			t.Errorf("%s: schedule injected faults but the report records no retries", tc.name)
		}
		if reps[0].LostObservations != 0 {
			t.Errorf("%s: %d observations lost despite every host reviving", tc.name, reps[0].LostObservations)
		}
	}
}

// TestFaultSnapshotResume: snapshotting mid-fault — retries queued, hosts
// down, the schedule cursor mid-timeline — and resuming must finish
// byte-identically to the uninterrupted faulted run, on every scheduler.
func TestFaultSnapshotResume(t *testing.T) {
	for _, tc := range faultOptsMatrix {
		opts := tc.opts
		opts.Faults = mustSchedule(t, tc.sched)
		newEng := func() *Engine {
			m := smallLinux(t)
			app := apps.Nginx()
			return NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, "random", 11), &vm.Clock{}, 11)
		}
		full, err := newEng().Run(opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, at := range []int{5, 13} {
			sess, err := newEng().NewSession(opts)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			sess.Step(at)
			snap, err := sess.Snapshot()
			if err != nil {
				t.Fatalf("%s@%d: snapshot: %v", tc.name, at, err)
			}
			resumed, err := newEng().RestoreSession(snap)
			if err != nil {
				t.Fatalf("%s@%d: restore: %v", tc.name, at, err)
			}
			rep, err := resumed.Run(context.Background())
			if err != nil {
				t.Fatalf("%s@%d: resumed run: %v", tc.name, at, err)
			}
			if canonicalJSON(t, full) != canonicalJSON(t, rep) {
				t.Errorf("%s: snapshot-at-%d + resume diverged from the uninterrupted faulted run", tc.name, at)
			}
		}
	}
}

// TestRetryElsewhere: a permanent host outage relocates the killed
// evaluations to the surviving host and the session still completes every
// iteration.
func TestRetryElsewhere(t *testing.T) {
	opts := Options{Iterations: 24, Seed: 9, Workers: 4, Hosts: 2,
		Faults: mustSchedule(t, "down:1@100,up:1@100000")}
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, "random", 9), &vm.Clock{}, 9)
	rep, err := eng.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.History) != 24 {
		t.Fatalf("history has %d of 24 iterations", len(rep.History))
	}
	if rep.Retries == 0 {
		t.Fatal("outage killed no evaluations — schedule did not land")
	}
	if rep.LostObservations != 0 {
		t.Fatalf("%d observations lost; retry-elsewhere should have recovered all", rep.LostObservations)
	}
	for _, h := range rep.History {
		if h.StartSec > 100 && h.Host == 1 {
			t.Fatalf("iteration %d dispatched to host 1 at %.1fs, during its outage", h.Iteration, h.StartSec)
		}
	}
	if rep.HostDowntimeSec <= 0 {
		t.Fatal("report records no host downtime")
	}
}

// TestInjectedFailureRetried: a scheduled transient build failure costs
// one retry and the iteration's kept observation records the attempt.
func TestInjectedFailureRetried(t *testing.T) {
	opts := Options{Iterations: 10, Seed: 1,
		Faults: mustSchedule(t, "buildfail:3#1,retry:3/10/2")}
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 1), &vm.Clock{}, 1)
	rep, err := eng.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 1 {
		t.Fatalf("report.Retries = %d, want 1", rep.Retries)
	}
	seen := 0
	for _, h := range rep.History {
		if h.Iteration == 3 {
			seen++
			if h.Retries != 1 {
				t.Fatalf("iteration 3 kept with Retries = %d, want 1", h.Retries)
			}
			if h.Reason == "injected fault" {
				t.Fatal("iteration 3's kept observation is the injected failure, not the retry")
			}
		}
	}
	if seen != 1 {
		t.Fatalf("iteration 3 observed %d times", seen)
	}
}

// TestInjectionExhaustsAttempts: injections on every allowed attempt turn
// the iteration into a recorded crash at the injected stage.
func TestInjectionExhaustsAttempts(t *testing.T) {
	opts := Options{Iterations: 10, Seed: 1,
		Faults: mustSchedule(t, "buildfail:4#1,buildfail:4#2,retry:2/10/2")}
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 1), &vm.Clock{}, 1)
	rep, err := eng.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range rep.History {
		if h.Iteration == 4 {
			found = true
			if !h.Crashed || h.Stage != simos.StageBuild.String() || h.Reason != "injected fault" {
				t.Fatalf("iteration 4 = %+v, want an injected build-stage crash", h)
			}
			if h.Retries != 1 {
				t.Fatalf("iteration 4 crash carries Retries = %d, want 1", h.Retries)
			}
		}
	}
	if !found {
		t.Fatal("iteration 4 missing from history")
	}
}

// TestKillExhaustsAttempts: with a single-attempt policy, a host-down
// kill is recorded as a crash at the synthetic "fault" stage.
func TestKillExhaustsAttempts(t *testing.T) {
	opts := Options{Iterations: 16, Seed: 9, Workers: 4, Hosts: 2,
		Faults: mustSchedule(t, "down:1@100,up:1@100000,retry:1")}
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, "random", 9), &vm.Clock{}, 9)
	rep, err := eng.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	faultCrashes := 0
	for _, h := range rep.History {
		if h.Crashed && h.Stage == "fault" {
			faultCrashes++
			if h.Reason != string(fault.HostDown) {
				t.Fatalf("fault crash reason %q, want %q", h.Reason, fault.HostDown)
			}
			if h.Retries != 0 {
				t.Fatalf("single-attempt fault crash carries Retries = %d", h.Retries)
			}
		}
	}
	if faultCrashes == 0 {
		t.Fatal("no fault-stage crashes recorded under retry:1 and a permanent outage")
	}
	if rep.Retries != 0 {
		t.Fatalf("report.Retries = %d under a single-attempt policy", rep.Retries)
	}
}

// TestFaultEventStream: the fault events are themselves deterministic and
// complete — host transitions, injections, and retry scheduling all
// surface on the stream, identically across runs.
func TestFaultEventStream(t *testing.T) {
	opts := Options{Iterations: 48, Seed: 11, Workers: 8, Hosts: 4,
		Faults: mustSchedule(t, "down:1@150,up:1@500,preempt:3@200,buildfail:7#1,retry:3/20/2")}
	collect := func() []string {
		m := smallLinux(t)
		app := apps.Nginx()
		eng := NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, "random", 11), &vm.Clock{}, 11)
		sess, err := eng.NewSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		var log []string
		sess.AddObserver(func(ev Event) {
			switch e := ev.(type) {
			case HostStateChanged:
				log = append(log, fmt.Sprintf("host %d up=%v at %.1f", e.Host, e.Up, e.AtSec))
			case FaultInjected:
				log = append(log, fmt.Sprintf("fault %s iter=%d attempt=%d worker=%d at %.1f",
					e.Kind, e.Iter, e.Attempt, e.Worker, e.AtSec))
			case RetryScheduled:
				log = append(log, fmt.Sprintf("retry iter=%d attempt=%d at %.1f", e.Iter, e.Attempt, e.NotBeforeSec))
			}
		})
		if _, err := sess.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("no fault events emitted")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("fault event stream diverged between identical runs")
	}
	var sawDown, sawUp, sawFault, sawRetry bool
	for _, line := range a {
		switch {
		case line == "host 1 up=false at 150.0":
			sawDown = true
		case line == "host 1 up=true at 500.0":
			sawUp = true
		}
		if len(line) >= 5 && line[:5] == "fault" {
			sawFault = true
		}
		if len(line) >= 5 && line[:5] == "retry" {
			sawRetry = true
		}
	}
	if !sawDown || !sawUp || !sawFault || !sawRetry {
		t.Fatalf("event stream incomplete: down=%v up=%v fault=%v retry=%v\n%v",
			sawDown, sawUp, sawFault, sawRetry, a)
	}
}

// TestLocalityDispatchDeterministic: the locality policy is as
// reproducible as static placement and never loses observations.
func TestLocalityDispatchDeterministic(t *testing.T) {
	opts := Options{Iterations: 48, Seed: 3, Workers: 8, Hosts: 4, CacheCapacity: 2,
		Dispatch: DispatchLocality}
	run := func() *Report {
		m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 10, FillerCompile: 20, Seed: 1})
		app := apps.Nginx()
		eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandomMutate(m.Space, 2, 3), &vm.Clock{}, 3)
		rep, err := eng.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if reportHash(t, a) != reportHash(t, b) {
		t.Fatal("locality dispatch diverged between identical runs")
	}
	if len(a.History) != 48 {
		t.Fatalf("history has %d of 48 iterations", len(a.History))
	}
	if a.TransferSavedSec < 0 {
		t.Fatalf("negative TransferSavedSec %g", a.TransferSavedSec)
	}
}

// TestOptionsValidateFaults: dispatch and schedule validation surfaces at
// session construction, not at run time.
func TestOptionsValidateFaults(t *testing.T) {
	base := Options{Iterations: 10, Seed: 1, Workers: 4, Hosts: 2}
	cases := []struct {
		name    string
		mutate  func(*Options)
		wantErr bool
	}{
		{"static ok", func(o *Options) { o.Dispatch = DispatchStatic }, false},
		{"locality ok", func(o *Options) { o.Dispatch = DispatchLocality }, false},
		{"unknown dispatch", func(o *Options) { o.Dispatch = "gravity" }, true},
		{"locality without cache", func(o *Options) { o.Dispatch = DispatchLocality; o.DisableCache = true }, true},
		{"host out of fleet", func(o *Options) {
			o.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.HostDown, Host: 5, AtSec: 1}}}
		}, true},
		{"worker out of fleet", func(o *Options) {
			o.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.WorkerPreempt, Worker: 9, AtSec: 1}}}
		}, true},
		{"churn on one host", func(o *Options) {
			o.Workers, o.Hosts = 1, 0
			o.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.HostDown, Host: 0, AtSec: 1}}}
		}, true},
		{"valid schedule", func(o *Options) {
			o.Faults = &fault.Schedule{Events: []fault.Event{
				{Kind: fault.HostDown, Host: 1, AtSec: 100}, {Kind: fault.HostUp, Host: 1, AtSec: 200}}}
		}, false},
	}
	for _, tc := range cases {
		o := base
		tc.mutate(&o)
		err := o.Validate()
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
}
