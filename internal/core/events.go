// Typed session events: one shared sink fed from the Session's record
// path, so every scheduler emits the identical event sequence for the
// identical observation sequence — events are as deterministic as the
// report itself (only the wall-time DecisionCost fields inside carried
// Results vary between runs). Observers run synchronously on the session
// goroutine in registration order; the public API layers a channel on top
// for consumers that want to range over a stream instead.
package core

import "wayfinder/internal/fault"

// Event is one typed session notification. The concrete types are
// EvalDone, NewBest, CacheEvent, RoundBarrier, Progress, SessionDone,
// HostStateChanged, FaultInjected, and RetryScheduled. Events carry
// Result copies; observers must not retain pointers into them across
// calls if they mutate.
type Event interface{ isEvent() }

// EvalDone is emitted for every recorded observation, in deterministic
// observation order (the order the report history grows and the searcher
// observes).
type EvalDone struct {
	// Result is the observation exactly as appended to the report history.
	Result Result
}

// NewBest is emitted immediately after an EvalDone whose observation
// improved the session best.
type NewBest struct {
	// Result is the new best observation.
	Result Result
	// PrevBest is the superseded best, nil for the first viable result.
	PrevBest *Result
}

// CacheEvent is emitted immediately before an EvalDone whose build stage
// was satisfied without compiling.
type CacheEvent struct {
	// Result is the observation whose build was avoided.
	Result Result
	// Source names how: "reuse" for the §3.1 same-worker image skip,
	// "local" for a host-store fetch, "remote" for a cross-host fetch.
	Source string
}

// RoundBarrier is emitted by the round-barrier scheduler when a dispatch
// round's evaluations complete and every worker stalls to the round
// maximum — before the round's observations are recorded.
type RoundBarrier struct {
	// Round is the 1-based completed-round count.
	Round int
	// Size is the number of evaluations the round dispatched.
	Size int
	// WallSec is the virtual wall-clock time of the barrier.
	WallSec float64
}

// Progress is emitted after every observation's other events: a one-line
// summary of the session position, sized for live status rendering.
type Progress struct {
	// Observed is the number of recorded observations.
	Observed int
	// Iterations is the iteration budget (0 = unbounded / time-budgeted).
	Iterations int
	// Crashes is the crash count so far.
	Crashes int
	// Best is the best result so far (nil while everything crashed).
	Best *Result
	// ElapsedSec is the session's virtual wall-clock position.
	ElapsedSec float64
	// Utilization is the workers' compute fraction so far (1 sequentially).
	Utilization float64
	// CacheHits and BuildsSaved mirror the report counters.
	CacheHits   int
	BuildsSaved int
}

// SessionDone is emitted exactly once, when the session's budget or
// strategy is exhausted (a canceled Run does not emit it — the session is
// still resumable). The report is final at that point.
type SessionDone struct {
	Report *Report
}

// CorpusEvent is emitted when a session touches its transfer corpus:
// Kind "warmstart" on the first step of a session that resolved seeds or
// weights from the corpus (emitted lazily so observers attached after
// construction still see it), Kind "deposit" when a completed session
// stores its outcome (immediately before SessionDone).
type CorpusEvent struct {
	// Kind is "warmstart" or "deposit".
	Kind string
	// Hash is the corpus content hash: at query time for a warm start,
	// after the deposit for a deposit.
	Hash string
	// Seeds is the number of seed configurations injected (warm start).
	Seeds int
	// DTM reports whether DeepTune weights transferred (warm start).
	DTM bool
	// Digest is the deposited entry's content digest (deposit).
	Digest string
}

// HostStateChanged is emitted when the fault schedule takes a host down
// or brings it back up, at the moment the scheduler's decision time
// passes the event (schedule-timeline order).
type HostStateChanged struct {
	// Host is the host index.
	Host int
	// Up is the host's new state.
	Up bool
	// AtSec is the schedule's virtual time for the transition.
	AtSec float64
}

// FaultInjected is emitted when a scheduled fault lands on a dispatched
// evaluation: a kill (host-down or preemption, at the kill instant) or an
// injected build/boot failure (at the evaluation's end).
//
// Ordering guarantee: HostStateChanged, FaultInjected, and RetryScheduled
// are emitted at dispatch/resolve boundaries — between per-observation
// event groups (CacheEvent/EvalDone/NewBest/Progress), never inside one —
// in schedule order for host events and dispatch order for the rest. The
// sequence is as deterministic as the observation stream itself.
type FaultInjected struct {
	// Kind is the schedule event kind that landed.
	Kind fault.Kind
	// Iter is the iteration the evaluation carried.
	Iter int
	// Attempt is the attempt that failed, 1-based.
	Attempt int
	// Worker and Host locate the evaluation.
	Worker int
	Host   int
	// AtSec is the virtual time the fault took effect.
	AtSec float64
}

// RetryScheduled is emitted immediately after a FaultInjected whose
// iteration still has attempt budget: the observation is lost for now and
// queued for re-dispatch.
type RetryScheduled struct {
	// Iter is the iteration to be re-dispatched.
	Iter int
	// Attempt is the upcoming attempt number, 1-based.
	Attempt int
	// NotBeforeSec is the backoff deadline the re-dispatch waits for.
	NotBeforeSec float64
}

func (EvalDone) isEvent()         {}
func (NewBest) isEvent()          {}
func (CacheEvent) isEvent()       {}
func (RoundBarrier) isEvent()     {}
func (Progress) isEvent()         {}
func (SessionDone) isEvent()      {}
func (CorpusEvent) isEvent()      {}
func (HostStateChanged) isEvent() {}
func (FaultInjected) isEvent()    {}
func (RetryScheduled) isEvent()   {}

// AddObserver registers a synchronous event observer. Observers are
// invoked on the session's stepping goroutine in registration order;
// register before the first step so the stream starts at observation 0.
// AddObserver is the one Session method safe to call while another
// goroutine drives Run — a late registration just misses the events
// already emitted.
func (s *Session) AddObserver(fn func(Event)) {
	if fn == nil {
		return
	}
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	// Copy-on-write: emit iterates a snapshot of the slice header, so an
	// append must never extend the backing array a concurrent emit reads.
	observers := make([]func(Event), len(s.observers), len(s.observers)+1)
	copy(observers, s.observers)
	s.observers = append(observers, fn)
}

// observerList snapshots the observer slice for one emission group.
func (s *Session) observerList() []func(Event) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	return s.observers
}

// emit delivers an event to every observer (a no-op without observers —
// sessions without listeners pay nothing for the stream).
func (s *Session) emit(ev Event) {
	for _, fn := range s.observerList() {
		fn(ev)
	}
}

// emitObservation emits the per-observation event group in canonical
// order: CacheEvent (when the build was avoided), EvalDone, NewBest (when
// the best improved), Progress.
func (s *Session) emitObservation(res Result, improved bool, prevBest *Result) {
	if len(s.observerList()) == 0 {
		return
	}
	switch {
	case res.CacheHit && res.CacheRemote:
		s.emit(CacheEvent{Result: res, Source: "remote"})
	case res.CacheHit:
		s.emit(CacheEvent{Result: res, Source: "local"})
	case res.BuildSkipped:
		s.emit(CacheEvent{Result: res, Source: "reuse"})
	}
	s.emit(EvalDone{Result: res})
	if improved {
		s.emit(NewBest{Result: res, PrevBest: prevBest})
	}
	rep := s.report
	p := Progress{
		Observed:    s.observed,
		Iterations:  s.opts.Iterations,
		Crashes:     rep.Crashes,
		Best:        rep.Best,
		Utilization: 1,
		CacheHits:   rep.CacheHits,
		BuildsSaved: rep.BuildsSaved,
	}
	if s.wall != nil {
		p.ElapsedSec = s.wall.Now()
		p.Utilization = utilization(s.wall.ComputeSec(), s.wall.IdleSec())
	} else {
		p.ElapsedSec = s.eng.Clock.Now()
	}
	s.emit(p)
}
