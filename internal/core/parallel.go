// Round-barrier parallel scheduler: the §3.1 platform evaluates
// configurations on many worker VMs concurrently, scaling near-linearly
// with the worker count (the paper's Fig 7-style study). This file
// implements that as the Session state machine's round-based scheduler
// over the simulated substrate.
//
// Determinism is the design constraint: a session must be reproducible
// for a fixed (Seed, Workers) pair regardless of goroutine scheduling.
// Three rules make that hold:
//
//  1. Static placement — iteration i always runs on worker i mod W, so
//     which configurations share a worker's noise stream, virtual clock,
//     and build/boot caches is a pure function of the iteration index.
//  2. Private worker state — each worker owns its clock (merged by
//     vm.WallClock), its rng stream (rng.WorkerSeed derivation; worker 0
//     reproduces the sequential stream), and its §3.1 skip digests. The
//     shared artifact store is consulted by the coordinator only, at
//     planning time (pipeline.go); worker goroutines touch nothing
//     shared.
//  3. Canonical merge — the searcher and the metric live on the
//     coordinator. Proposals are drawn for a whole round up front
//     (search.AsBatch pending-set protocol; Grid, Bayesian, and DeepTune
//     batch natively — Bayesian via constant-liar fantasized
//     observations, DeepTune via diversity-penalized pool ranking — so
//     later slots condition on earlier picks), and after the round's
//     barrier, measurement and Observe happen in iteration order. The
//     searcher therefore sees the exact same observation sequence on
//     every run, and stateful metrics (ScoreMetric's running
//     normalization) stay deterministic too.
//
// The stepwise restructuring changes only who drives the loop: a round is
// evaluated when the session's buffer runs dry, buffered, and then drained
// one recorded observation per step — the identical proposals, barrier
// stalls, and canonical-order measurements the old run-to-completion loop
// performed, now interruptible and serializable between observations.
package core

import (
	"wayfinder/internal/configspace"
)

// stepRound records the next observation of the round-barrier scheduler,
// evaluating a fresh round (up to one configuration per worker) when the
// previous round is fully drained.
func (s *Session) stepRound() bool {
	if len(s.buf) == 0 && !s.fillRound() {
		return false
	}
	ev := s.buf[0]
	s.buf = s.buf[1:]
	res := ev.res
	// Canonical merge in iteration order: measure on the evaluating
	// worker's noise stream (the barrier guarantees the stream is exactly
	// past that worker's stage jitters), then record/observe.
	if !res.Crashed {
		res.Metric = s.eng.Metric.Measure(s.eng.Model, s.eng.App, ev.cfg, ev.st.noise)
	}
	s.record(res)
	return true
}

// roundSlot is one dispatch slot of a round: a fresh proposal or the
// re-dispatch of a fault-lost iteration.
type roundSlot struct {
	iter    int
	attempt int
	cfg     *configspace.Config
}

// fillRound proposes, plans, and evaluates one dispatch round, leaving
// the results buffered for stepRound to drain. It reports false when the
// budget is exhausted or the strategy produced nothing. Under a fault
// schedule a round gracefully degrades with the live worker set — it
// dispatches at most one evaluation per live worker, re-dispatches lost
// iterations ahead of fresh proposals, and loops (stalling over dead air)
// when every dispatch of a round was lost or nothing is dispatchable yet.
func (s *Session) fillRound() bool {
	e, o := s.eng, &s.opts
	w := len(s.workers)
	for {
		now := s.wall.Now()
		s.advanceFaults(now)
		if o.TimeBudgetSec > 0 && now >= o.TimeBudgetSec {
			return false
		}
		live := s.liveWorkers(now)
		if len(live) == 0 {
			// The whole fleet is down: idle everyone forward to the next
			// host revival, or give up when nothing ever comes back.
			at, ok := s.nextRevival(now)
			if !ok {
				return false
			}
			for i := 0; i < w; i++ {
				s.wall.Stall(i, at)
			}
			continue
		}
		// One round: up to one evaluation per live worker, ready retries
		// (ascending iteration) ahead of fresh proposals. A fresh round's
		// iterations are consecutive, so with the full fleet live they map
		// to distinct workers mod W exactly as the static placement always
		// did.
		slots := make([]roundSlot, 0, len(live))
		for _, r := range s.takeReadyRetries(now, len(live)) {
			slots = append(slots, roundSlot{iter: r.iter, attempt: r.attempt, cfg: r.cfg})
			s.report.Retries++
		}
		if fresh := len(live) - len(slots); fresh > 0 && !s.exhausted {
			n := fresh
			if o.Iterations > 0 && o.Iterations-s.next < n {
				n = o.Iterations - s.next
			}
			if n > 0 {
				cfgs := make([]*configspace.Config, 0, n)
				if o.WarmStart && s.next == 0 {
					cfgs = append(cfgs, e.Model.Space.Default())
				}
				// Corpus warm-start seeds dispatch ahead of the searcher's
				// own proposals, exactly like the WarmStart default.
				for len(s.seeds) > 0 && len(cfgs) < n {
					cfgs, s.seeds = append(cfgs, s.seeds[0]), s.seeds[1:]
				}
				if want := n - len(cfgs); want > 0 {
					cfgs = append(cfgs, s.batcher.ProposeBatch(want)...)
				}
				if len(cfgs) == 0 {
					// The strategy produced nothing at all; never re-ask.
					s.exhausted = true
				}
				for _, cfg := range cfgs {
					slots = append(slots, roundSlot{iter: s.next, cfg: cfg})
					s.next++
				}
			}
		}
		if len(slots) == 0 {
			if at, ok := s.earliestRetry(); ok {
				// Only backoff deadlines remain: idle the live fleet
				// forward to the earliest one.
				for _, i := range live {
					s.wall.Stall(i, at)
				}
				continue
			}
			return false
		}

		// Plan the round's builds in dispatch order before dispatching:
		// shared-store lookups and in-flight registrations happen on the
		// coordinator only, so two workers needing the same image this
		// round dedupe onto one build deterministically. Placement draws
		// from the live workers only (retry-elsewhere when the original
		// host is down falls out of that for free).
		avail := make([]bool, w)
		for _, i := range live {
			avail[i] = true
		}
		evals := make([]*batchEval, 0, len(slots))
		for _, sl := range slots {
			wi := s.placeSlot(avail, sl.iter, sl.cfg, true)
			if wi < 0 {
				break
			}
			avail[wi] = false
			st := s.workers[wi]
			plan := s.planBuild(sl.cfg, st)
			plan.inject = s.injectFor(sl.iter, sl.attempt+1)
			evals = append(evals, &batchEval{iter: sl.iter, cfg: sl.cfg, st: st, plan: plan,
				attempt: sl.attempt, preImageKey: st.imageKey, preHaveImage: st.haveImage,
				preBuilds: st.builds, preStall: s.wall.WorkerStallSec(wi)})
		}
		e.runBatch(evals)
		kept := s.resolveFaults(evals)

		// The barrier: every worker waits for the round's slowest
		// evaluation before the next round starts (killed evaluations
		// were already rolled back to their kill instant, so they no
		// longer push the maximum). Stalling the clocks to the round
		// maximum charges that wait to the wall-clock as idle time, so
		// the next round's start times are causally consistent and the
		// barrier's cost shows up in ElapsedSec/IdleSec.
		roundMax := s.wall.Now()
		for i := 0; i < w; i++ {
			s.wall.Stall(i, roundMax)
		}
		s.round++
		s.buf = kept
		s.emit(RoundBarrier{Round: s.round, Size: len(evals), WallSec: roundMax})
		if len(kept) == 0 {
			continue // the whole round was lost to faults; go again
		}
		return true
	}
}
