// Round-barrier parallel scheduler: the §3.1 platform evaluates
// configurations on many worker VMs concurrently, scaling near-linearly
// with the worker count (the paper's Fig 7-style study). This file
// implements that as the Session state machine's round-based scheduler
// over the simulated substrate.
//
// Determinism is the design constraint: a session must be reproducible
// for a fixed (Seed, Workers) pair regardless of goroutine scheduling.
// Three rules make that hold:
//
//  1. Static placement — iteration i always runs on worker i mod W, so
//     which configurations share a worker's noise stream, virtual clock,
//     and build/boot caches is a pure function of the iteration index.
//  2. Private worker state — each worker owns its clock (merged by
//     vm.WallClock), its rng stream (rng.WorkerSeed derivation; worker 0
//     reproduces the sequential stream), and its §3.1 skip digests. The
//     shared artifact store is consulted by the coordinator only, at
//     planning time (pipeline.go); worker goroutines touch nothing
//     shared.
//  3. Canonical merge — the searcher and the metric live on the
//     coordinator. Proposals are drawn for a whole round up front
//     (search.AsBatch pending-set protocol; Grid, Bayesian, and DeepTune
//     batch natively — Bayesian via constant-liar fantasized
//     observations, DeepTune via diversity-penalized pool ranking — so
//     later slots condition on earlier picks), and after the round's
//     barrier, measurement and Observe happen in iteration order. The
//     searcher therefore sees the exact same observation sequence on
//     every run, and stateful metrics (ScoreMetric's running
//     normalization) stay deterministic too.
//
// The stepwise restructuring changes only who drives the loop: a round is
// evaluated when the session's buffer runs dry, buffered, and then drained
// one recorded observation per step — the identical proposals, barrier
// stalls, and canonical-order measurements the old run-to-completion loop
// performed, now interruptible and serializable between observations.
package core

import (
	"wayfinder/internal/configspace"
)

// stepRound records the next observation of the round-barrier scheduler,
// evaluating a fresh round (up to one configuration per worker) when the
// previous round is fully drained.
func (s *Session) stepRound() bool {
	if len(s.buf) == 0 && !s.fillRound() {
		return false
	}
	ev := s.buf[0]
	s.buf = s.buf[1:]
	res := ev.res
	// Canonical merge in iteration order: measure on the evaluating
	// worker's noise stream (the barrier guarantees the stream is exactly
	// past that worker's stage jitters), then record/observe.
	if !res.Crashed {
		res.Metric = s.eng.Metric.Measure(s.eng.Model, s.eng.App, ev.cfg, ev.st.noise)
	}
	s.record(res)
	return true
}

// fillRound proposes, plans, and evaluates one dispatch round, leaving the
// results buffered for stepRound to drain. It reports false when the
// budget is exhausted or the strategy produced nothing.
func (s *Session) fillRound() bool {
	e, o := s.eng, &s.opts
	w := len(s.workers)
	if o.Iterations > 0 && s.next >= o.Iterations {
		return false
	}
	if o.TimeBudgetSec > 0 && s.wall.Now() >= o.TimeBudgetSec {
		return false
	}
	// One round: up to W configurations, one per worker. A round's
	// iterations are consecutive, so they map to distinct workers mod W
	// even when the iteration budget — or a native BatchSearcher returning
	// fewer proposals than asked — shortens the round.
	n := w
	if o.Iterations > 0 && o.Iterations-s.next < n {
		n = o.Iterations - s.next
	}
	cfgs := make([]*configspace.Config, 0, n)
	if o.WarmStart && s.next == 0 {
		cfgs = append(cfgs, e.Model.Space.Default())
	}
	if want := n - len(cfgs); want > 0 {
		cfgs = append(cfgs, s.batcher.ProposeBatch(want)...)
	}
	n = len(cfgs)
	if n == 0 {
		// The strategy produced nothing at all; treat the session as
		// exhausted rather than spinning.
		return false
	}

	// Plan the round's builds in iteration order before dispatching:
	// shared-store lookups and in-flight registrations happen on the
	// coordinator only, so two workers needing the same image this round
	// dedupe onto one build deterministically.
	evals := make([]*batchEval, n)
	for k := 0; k < n; k++ {
		st := s.workers[(s.next+k)%w]
		evals[k] = &batchEval{iter: s.next + k, cfg: cfgs[k], st: st, plan: s.planBuild(cfgs[k], st)}
	}
	e.runBatch(evals)

	// The barrier: every worker waits for the round's slowest evaluation
	// before the next round starts. Stalling the clocks to the round
	// maximum charges that wait to the wall-clock as idle time, so the
	// next round's start times are causally consistent and the barrier's
	// cost shows up in ElapsedSec/IdleSec.
	roundMax := s.wall.Now()
	for i := 0; i < w; i++ {
		s.wall.Stall(i, roundMax)
	}
	s.round++
	s.buf = evals
	s.next += n
	s.emit(RoundBarrier{Round: s.round, Size: n, WallSec: roundMax})
	return true
}
