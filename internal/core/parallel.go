// Parallel evaluation engine: the §3.1 platform evaluates configurations
// on many worker VMs concurrently, scaling near-linearly with the worker
// count (the paper's Fig 7-style study). This file implements that as a
// round-based worker pool over the simulated substrate.
//
// Determinism is the design constraint: a session must be reproducible
// for a fixed (Seed, Workers) pair regardless of goroutine scheduling.
// Three rules make that hold:
//
//  1. Static placement — iteration i always runs on worker i mod W, so
//     which configurations share a worker's noise stream, virtual clock,
//     and build/boot caches is a pure function of the iteration index.
//  2. Private worker state — each worker owns its clock (merged by
//     vm.WallClock), its rng stream (rng.WorkerSeed derivation; worker 0
//     reproduces the sequential stream), and its §3.1 skip digests. The
//     shared artifact store is consulted by the coordinator only, at
//     planning time (pipeline.go); worker goroutines touch nothing
//     shared.
//  3. Canonical merge — the searcher and the metric live on the
//     coordinator. Proposals are drawn for a whole round up front
//     (search.AsBatch pending-set protocol; Grid, Bayesian, and DeepTune
//     batch natively — Bayesian via constant-liar fantasized
//     observations, DeepTune via diversity-penalized pool ranking — so
//     later slots condition on earlier picks), and after the round's
//     barrier, measurement and Observe happen in iteration order. The
//     searcher therefore sees the exact same observation sequence on
//     every run, and stateful metrics (ScoreMetric's running
//     normalization) stay deterministic too.
package core

import (
	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
	"wayfinder/internal/search"
	"wayfinder/internal/vm"
)

// runParallel executes the session on opts.Workers concurrent evaluators.
func (e *Engine) runParallel(opts Options) (*Report, error) {
	e.cache = newSessionCache(opts)
	w := opts.Workers
	report := e.newReport(opts, w)
	base := e.Clock.Now()
	wall := vm.NewWallClock(w, base)
	workers := make([]*evalState, w)
	for i := range workers {
		workers[i] = &evalState{
			worker: i,
			host:   opts.HostOf(i),
			clock:  wall.Worker(i),
			wall:   wall,
			noise:  rng.New(rng.WorkerSeed(e.seed, i) ^ noiseSalt),
			speed:  opts.workerSpeed(i),
		}
	}
	batcher := search.AsBatch(e.Searcher)

	for iter := 0; ; {
		if opts.Iterations > 0 && iter >= opts.Iterations {
			break
		}
		if opts.TimeBudgetSec > 0 && wall.Now() >= opts.TimeBudgetSec {
			break
		}
		// One round: up to W configurations, one per worker. A round's
		// iterations are consecutive, so they map to distinct workers mod
		// W even when the iteration budget — or a native BatchSearcher
		// returning fewer proposals than asked — shortens the round.
		n := w
		if opts.Iterations > 0 && opts.Iterations-iter < n {
			n = opts.Iterations - iter
		}
		cfgs := make([]*configspace.Config, 0, n)
		if opts.WarmStart && iter == 0 {
			cfgs = append(cfgs, e.Model.Space.Default())
		}
		if want := n - len(cfgs); want > 0 {
			cfgs = append(cfgs, batcher.ProposeBatch(want)...)
		}
		n = len(cfgs)
		if n == 0 {
			// The strategy produced nothing at all; treat the session as
			// exhausted rather than spinning.
			break
		}

		// Plan the round's builds in iteration order before dispatching:
		// shared-store lookups and in-flight registrations happen on the
		// coordinator only, so two workers needing the same image this
		// round dedupe onto one build deterministically.
		evals := make([]*batchEval, n)
		for k := 0; k < n; k++ {
			st := workers[(iter+k)%w]
			evals[k] = &batchEval{iter: iter + k, cfg: cfgs[k], st: st, plan: e.planBuild(cfgs[k], st)}
		}
		e.runBatch(evals)

		// The barrier: every worker waits for the round's slowest
		// evaluation before the next round starts. Stalling the clocks to
		// the round maximum charges that wait to the wall-clock as idle
		// time, so the next round's start times are causally consistent
		// and the barrier's cost shows up in ElapsedSec/IdleSec.
		roundMax := wall.Now()
		for i := 0; i < w; i++ {
			wall.Stall(i, roundMax)
		}

		// Canonical merge in iteration order: measure on the evaluating
		// worker's noise stream (the barrier guarantees the stream is
		// exactly past that worker's stage jitters), then record/observe.
		for k := 0; k < n; k++ {
			res := evals[k].res
			if !res.Crashed {
				res.Metric = e.Metric.Measure(e.Model, e.App, cfgs[k], evals[k].st.noise)
			}
			e.record(report, res, batcher)
		}
		iter += n
	}
	report.ElapsedSec = wall.Now()
	report.ComputeSec = wall.ComputeSec()
	report.IdleSec = wall.IdleSec()
	report.Utilization = utilization(report.ComputeSec, report.IdleSec)
	for _, st := range workers {
		report.Builds += st.builds
	}
	// Fold the session back onto the engine clock so engines sharing a
	// clock (sequential experiment chains) stay consistent.
	e.Clock.Advance(wall.Now() - base)
	return report, nil
}
