package core

import (
	"math"
	"testing"
	"time"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/search"
	"wayfinder/internal/vm"
)

// TestSharedStoreDedupesBuilds is the headline behavior of the artifact
// cache: with compile-time exploration pinned every configuration shares
// one image digest, so a W=8 session needs exactly the sequential build
// count (one) — one worker builds in round one, the other seven wait on
// the in-flight build and fetch, and every later iteration reuses
// locally. The old per-worker caches built the identical image eight
// times.
func TestSharedStoreDedupesBuilds(t *testing.T) {
	seq := parallelRun(t, "random", 3, Options{Iterations: 64, Seed: 3})
	disabled := parallelRun(t, "random", 3, Options{Iterations: 64, Seed: 3, Workers: 8, DisableCache: true})
	shared := parallelRun(t, "random", 3, Options{Iterations: 64, Seed: 3, Workers: 8})

	if seq.Builds != 1 {
		t.Fatalf("sequential builds = %d, want 1 (compile pinned)", seq.Builds)
	}
	if disabled.Builds != 8 {
		t.Fatalf("per-worker caches built %d images, want 8 (one per worker)", disabled.Builds)
	}
	if shared.Builds != seq.Builds {
		t.Fatalf("shared store built %d images, want the sequential count %d", shared.Builds, seq.Builds)
	}
	if shared.CacheHits != 7 {
		t.Fatalf("cache hits = %d, want 7 (every other worker's first build)", shared.CacheHits)
	}
	if shared.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1 (the one real build)", shared.CacheMisses)
	}
	if want := shared.CacheHits + 64 - 8; shared.BuildsSaved != want {
		t.Fatalf("builds saved = %d, want %d (cache hits + local skips)", shared.BuildsSaved, want)
	}
	if disabled.CacheHits != 0 || disabled.CacheMisses != 0 {
		t.Fatalf("disabled store counted cache traffic: %d hits / %d misses",
			disabled.CacheHits, disabled.CacheMisses)
	}
	// The avoided builds also show up as virtual compute.
	if shared.ComputeSec >= disabled.ComputeSec {
		t.Fatalf("shared-store compute %.0fs not below per-worker-cache compute %.0fs",
			shared.ComputeSec, disabled.ComputeSec)
	}
}

// TestCacheDisabledReproducesPerWorkerCaches pins the compatibility
// contract: DisableCache restores the historical behavior exactly —
// every worker builds its own first image and reuses it thereafter, and
// the report carries no cache accounting.
func TestCacheDisabledReproducesPerWorkerCaches(t *testing.T) {
	rep := parallelRun(t, "random", 9, Options{Iterations: 48, Seed: 9, Workers: 8, DisableCache: true})
	for i, h := range rep.History {
		if h.CacheHit || h.CacheRemote {
			t.Fatalf("iteration %d hit a cache that should be disabled", i)
		}
		if wantSkip := i >= 8; h.BuildSkipped != wantSkip {
			t.Fatalf("iteration %d BuildSkipped = %v, want %v (worker-local reuse only)", i, h.BuildSkipped, wantSkip)
		}
	}
}

// TestCacheDeterministicAcrossRuns extends the byte-reproducibility
// guarantee to the cache paths: same (seed, workers, staleness, hosts) ⇒
// identical reports, for both schedulers, with single- and multi-host
// stores.
func TestCacheDeterministicAcrossRuns(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"sync-1host", Options{Iterations: 64, Seed: 7, Workers: 8}},
		{"sync-4hosts", Options{Iterations: 64, Seed: 7, Workers: 8, Hosts: 4}},
		{"async-4hosts", Options{Iterations: 64, Seed: 7, Workers: 8, Hosts: 4, Async: true, Staleness: -1}},
		{"async-2hosts-staleness2", Options{Iterations: 64, Seed: 7, Workers: 8, Hosts: 2, Async: true, Staleness: 2}},
	}
	for _, c := range cases {
		a := canonicalJSON(t, parallelRun(t, "random", 7, c.opts))
		b := canonicalJSON(t, parallelRun(t, "random", 7, c.opts))
		if a != b {
			t.Fatalf("%s: two runs with identical options produced different reports", c.name)
		}
	}
}

// keyedSearcher proposes configurations cycling through a fixed list —
// a scripted workload for exercising store revisits deterministically.
type keyedSearcher struct {
	cfgs []*configspace.Config
	i    int
}

func (s *keyedSearcher) Name() string { return "keyed" }
func (s *keyedSearcher) Propose() *configspace.Config {
	c := s.cfgs[s.i%len(s.cfgs)]
	s.i++
	return c.Clone()
}
func (s *keyedSearcher) Observe(search.Observation)  {}
func (s *keyedSearcher) DecisionCost() time.Duration { return 0 }

// compilePair returns two configurations differing in a compile-time
// parameter, so their image digests differ.
func compilePair(t *testing.T) (*configspace.Config, *configspace.Config) {
	t.Helper()
	m := smallLinux(t)
	a := m.Space.Default()
	b := a.Clone()
	for i, p := range m.Space.Params() {
		if p.Class == configspace.CompileTime && p.Type == configspace.Bool {
			b.SetIndex(i, configspace.BoolValue(b.Value(i).I == 0))
			return a, b
		}
	}
	t.Fatal("no compile-time bool in the small Linux space")
	return nil, nil
}

// TestSequentialStoreServesRevisits: the per-worker skip only ever
// remembers the previous image, so alternating between two compile
// assignments used to rebuild every iteration. The content-addressed
// store remembers both: two builds total, every revisit a cache hit.
func TestSequentialStoreServesRevisits(t *testing.T) {
	a, b := compilePair(t)
	m := smallLinux(t)
	app := apps.Nginx()
	run := func(disable bool) *Report {
		s := &keyedSearcher{cfgs: []*configspace.Config{a, b}}
		eng := NewEngine(m, app, &PerfMetric{App: app}, s, &vm.Clock{}, 5)
		rep, err := eng.Run(Options{Iterations: 12, Seed: 5, DisableCache: disable})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cached := run(false)
	if cached.Builds != 2 {
		t.Fatalf("store-backed alternation built %d images, want 2", cached.Builds)
	}
	if cached.CacheHits != 10 {
		t.Fatalf("cache hits = %d, want 10 (every revisit)", cached.CacheHits)
	}
	old := run(true)
	if old.Builds != 12 {
		t.Fatalf("per-worker cache built %d images, want 12 (rebuild on every flip)", old.Builds)
	}
	if cached.ElapsedSec >= old.ElapsedSec {
		t.Fatalf("cached session (%.0fs) not faster than rebuild-every-flip (%.0fs)",
			cached.ElapsedSec, old.ElapsedSec)
	}
}

// TestCacheCapacityEvicts exercises the LRU bound through the engine:
// with room for one artifact per host, alternating two digests evicts on
// every insert, so every build misses.
func TestCacheCapacityEvicts(t *testing.T) {
	a, b := compilePair(t)
	m := smallLinux(t)
	app := apps.Nginx()
	s := &keyedSearcher{cfgs: []*configspace.Config{a, b}}
	eng := NewEngine(m, app, &PerfMetric{App: app}, s, &vm.Clock{}, 5)
	rep, err := eng.Run(Options{Iterations: 8, Seed: 5, CacheCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Builds != 8 || rep.CacheHits != 0 {
		t.Fatalf("capacity-1 alternation: %d builds / %d hits, want 8 / 0 (thrashing)",
			rep.Builds, rep.CacheHits)
	}
}

// TestCrossHostFetchCharged: with the fleet split into hosts, the first
// round's image lands on one host and the other hosts pay the transfer
// term — visible as remote cache hits and a longer wall-clock than the
// single-host topology.
func TestCrossHostFetchCharged(t *testing.T) {
	one := parallelRun(t, "random", 11, Options{Iterations: 32, Seed: 11, Workers: 8})
	fleet := parallelRun(t, "random", 11, Options{Iterations: 32, Seed: 11, Workers: 8, Hosts: 4})
	if fleet.Hosts != 4 || one.Hosts != 1 {
		t.Fatalf("host counts %d/%d, want 4/1", fleet.Hosts, one.Hosts)
	}
	remote := 0
	for _, h := range fleet.History {
		if h.CacheRemote {
			remote++
		}
		if h.Host != (&Options{Workers: 8, Hosts: 4}).HostOf(h.Worker) {
			t.Fatalf("iteration %d on worker %d reported host %d", h.Iteration, h.Worker, h.Host)
		}
	}
	if remote != 6 {
		t.Fatalf("remote fetches = %d, want 6 (round one: two workers per host, one host builds)", remote)
	}
	if fleet.CacheRemoteHits != remote {
		t.Fatalf("report counts %d remote hits, history shows %d", fleet.CacheRemoteHits, remote)
	}
	for _, h := range one.History {
		if h.CacheRemote {
			t.Fatal("single-host session paid a cross-host transfer")
		}
	}
	if fleet.ElapsedSec <= one.ElapsedSec {
		t.Fatalf("4-host wall %.1fs not above 1-host wall %.1fs: transfer term not charged",
			fleet.ElapsedSec, one.ElapsedSec)
	}
	if fleet.Builds != one.Builds {
		t.Fatalf("fleet built %d images vs %d single-host: dedup must stay fleet-wide", fleet.Builds, one.Builds)
	}
}

// TestHostOfPartition pins the worker→host map: contiguous balanced
// groups, pure in (worker, workers, hosts).
func TestHostOfPartition(t *testing.T) {
	o := &Options{Workers: 8, Hosts: 4}
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for w, h := range want {
		if got := o.HostOf(w); got != h {
			t.Fatalf("HostOf(%d) = %d, want %d", w, got, h)
		}
	}
	// Hosts clamps to the worker count, and ≥1.
	if (&Options{Workers: 2, Hosts: 8}).effHosts() != 2 {
		t.Fatal("hosts must clamp to workers")
	}
	if (&Options{}).effHosts() != 1 || (&Options{}).HostOf(0) != 0 {
		t.Fatal("sequential sessions are single-host")
	}
}

// TestAsyncSharedStoreDedupes runs the dedup scenario through the async
// scheduler: the initial fill dispatches all eight workers at once, so
// the in-flight dedup (not just the store) must carry the savings.
func TestAsyncSharedStoreDedupes(t *testing.T) {
	rep := asyncRun(t, "random", 3, Options{Iterations: 64, Seed: 3, Workers: 8, Async: true, Staleness: -1})
	if rep.Builds != 1 {
		t.Fatalf("async shared store built %d images, want 1", rep.Builds)
	}
	if rep.CacheHits != 7 {
		t.Fatalf("async cache hits = %d, want 7", rep.CacheHits)
	}
	disabled := asyncRun(t, "random", 3, Options{Iterations: 64, Seed: 3, Workers: 8, Async: true, Staleness: -1,
		DisableCache: true})
	if disabled.Builds != 8 {
		t.Fatalf("async per-worker caches built %d images, want 8", disabled.Builds)
	}
}

// TestBestSoFarSeriesNaNBeforeFirstObservation: leading crashes must
// chart as "no best yet" (NaN), not as a best of 0.0 — which would be
// flat wrong for maximize metrics and absurd for minimize ones.
func TestBestSoFarSeriesNaNBeforeFirstObservation(t *testing.T) {
	rep := &Report{
		Maximize: true,
		History: []Result{
			{Crashed: true},
			{Crashed: true},
			{Metric: 5},
			{Crashed: true},
			{Metric: 9},
		},
	}
	series := rep.BestSoFarSeries()
	for i := 0; i < 2; i++ {
		if !math.IsNaN(series[i]) {
			t.Fatalf("series[%d] = %v before any observation, want NaN", i, series[i])
		}
	}
	for _, w := range []struct {
		i    int
		want float64
	}{{2, 5}, {3, 5}, {4, 9}} {
		if series[w.i] != w.want {
			t.Fatalf("series[%d] = %v, want %v", w.i, series[w.i], w.want)
		}
	}
	// Same semantics on a minimize metric: the hold value appears only
	// once observed, never a fake 0 that no real latency could beat.
	rep.Maximize = false
	series = rep.BestSoFarSeries()
	if !math.IsNaN(series[0]) || series[2] != 5 || series[4] != 5 {
		t.Fatalf("minimize series wrong: %v", series)
	}
}
