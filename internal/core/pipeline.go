// Staged evaluation pipeline: every scheduler — sequential, round-barrier
// worker pool, async bounded-staleness — runs a configuration through the
// same three explicit stages (Build → Boot → Measure) instead of the old
// monolithic evaluate. The build stage is where the §3.1 image reuse
// generalizes from "my previous image" to a fleet-wide content-addressed
// cache:
//
//   - reuse:  the worker's own image already matches the configuration's
//     CompileKey — the historical skip, free.
//   - fetch:  the digest is in the worker's host store partition — pay
//     Model.CacheFetchSeconds instead of a build.
//   - fetch (remote): another host holds it — add Model.TransferSeconds.
//   - await:  another worker is building it right now — stall (idle time)
//     until that build's virtual completion, then fetch.
//   - build:  nobody has it — pay Model.BuildSeconds and publish it.
//
// Determinism discipline: the shared store and the in-flight registry are
// touched only by the coordinator — plans are made before dispatch (in
// dispatch order) and artifacts published at observation (in observation
// order) — so cache outcomes are a pure function of (Seed, Workers,
// Staleness, Hosts) and never of goroutine scheduling. Worker goroutines
// see only their private evalState plus an immutable plan; awaiters read
// their builder's ticket strictly after the scheduler joins the builder's
// wave (a WaitGroup happens-before edge).
package core

import (
	"sync"

	"wayfinder/internal/artifact"
	"wayfinder/internal/configspace"
	"wayfinder/internal/simos"
)

// buildAction is how an evaluation's build stage will be satisfied.
type buildAction int

const (
	// buildFull compiles the image from scratch.
	buildFull buildAction = iota
	// buildReuse uses the image already on the worker's disk (§3.1 skip).
	buildReuse
	// buildFetch copies the image out of the worker's host store.
	buildFetch
	// buildFetchRemote pulls it from another host's store (adds the
	// cross-host transfer term).
	buildFetchRemote
	// buildAwait waits for another worker's in-flight build of the same
	// digest on this host, then fetches it.
	buildAwait
	// buildAwaitRemote waits for an in-flight build on another host.
	buildAwaitRemote
)

// buildTicket tracks one in-flight build of an image digest so that
// concurrently-dispatched duplicates dedupe onto the builder instead of
// re-building. The builder's goroutine resolves it; every reader is
// ordered after that by a scheduler join.
type buildTicket struct {
	host     int
	endSec   float64 // virtual completion time of the build stage
	ok       bool    // the build produced an artifact (no build crash)
	resolved bool
}

// evalPlan is the coordinator's build decision for one evaluation.
type evalPlan struct {
	action buildAction
	key    uint64       // the configuration's CompileKey
	ticket *buildTicket // registration (buildFull) or await target
	// inject is a scheduled fault injection for this dispatch (StageOK =
	// none): the evaluation crashes at that stage with injectedReason,
	// unless the model's organic outcome fails at an earlier stage.
	inject simos.Stage
}

// sessionCache is the per-Run artifact-cache state: the content-addressed
// store shared by the session's hosts and the in-flight build registry.
// store is nil when Options.DisableCache restores the historical
// per-worker-only reuse.
type sessionCache struct {
	store    *artifact.Store
	building map[uint64]*buildTicket
}

// newSessionCache builds the session's cache state from the options.
func newSessionCache(opts Options) *sessionCache {
	if opts.DisableCache {
		return &sessionCache{}
	}
	return &sessionCache{
		store:    artifact.NewStore(opts.effHosts(), opts.CacheCapacity),
		building: map[uint64]*buildTicket{},
	}
}

// planBuild decides how the evaluation's build stage will be satisfied.
// Coordinator-only: it consults worker-private state between dispatches
// and mutates store recency and the in-flight registry in dispatch order.
func (s *Session) planBuild(cfg *configspace.Config, st *evalState) evalPlan {
	key := cfg.CompileKey()
	if st.haveImage && st.imageKey == key {
		return evalPlan{action: buildReuse, key: key}
	}
	c := s.cache
	if c == nil || c.store == nil {
		return evalPlan{action: buildFull, key: key}
	}
	if _, loc := c.store.Lookup(st.host, key); loc != artifact.Miss {
		if loc == artifact.LocalHit {
			return evalPlan{action: buildFetch, key: key}
		}
		return evalPlan{action: buildFetchRemote, key: key}
	}
	if t := c.building[key]; t != nil && (!t.resolved || t.ok) {
		if t.host == st.host {
			return evalPlan{action: buildAwait, key: key, ticket: t}
		}
		return evalPlan{action: buildAwaitRemote, key: key, ticket: t}
	}
	// Nobody has it and nobody is building it: this evaluation becomes the
	// digest's builder (replacing any registration whose build crashed).
	t := &buildTicket{host: st.host}
	c.building[key] = t
	return evalPlan{action: buildFull, key: key, ticket: t}
}

// evaluate runs one configuration through the staged pipeline against the
// worker state and returns the result. Measurement itself (Metric.Measure)
// is the caller's job: the engine defers it so parallel sessions can
// measure in canonical observation order, keeping stateful metrics
// deterministic.
func (e *Engine) evaluate(iter int, cfg *configspace.Config, st *evalState, plan evalPlan) Result {
	res := Result{
		Iteration:    iter,
		Config:       cfg,
		ConfigString: cfg.String(),
		Stage:        "ok",
		StartSec:     st.clock.Now(),
		Worker:       st.worker,
		Host:         st.host,
		artifactKey:  plan.key,
		ticket:       plan.ticket,
	}
	stage, reason := e.Model.CrashOutcome(cfg)
	if plan.inject != simos.StageOK && (stage == simos.StageOK || plan.inject < stage) {
		// A scheduled transient failure for this (iteration, attempt):
		// the earlier failing stage wins, so an organic build crash
		// preempts an injected boot failure, never the reverse.
		stage, reason = plan.inject, injectedReason
	}
	if !e.stageBuild(&res, st, plan, stage, reason) {
		return res
	}
	if !e.stageBoot(&res, cfg, st, stage, reason) {
		return res
	}
	e.stageMeasure(&res, st, stage, reason)
	return res
}

// crashOut finalizes a result at the failing stage.
func crashOut(res *Result, st *evalState, stage simos.Stage, reason string) bool {
	res.Crashed, res.Stage, res.Reason = true, stage.String(), reason
	res.EndSec = st.clock.Now()
	return false
}

// chargeFetch charges materializing a cached artifact onto the worker: a
// copy out of the host's store, plus the cross-host transfer when the
// artifact lives on another host.
func (e *Engine) chargeFetch(st *evalState, remote bool) {
	cost := e.Model.CacheFetchSeconds
	if remote {
		cost += e.Model.TransferSeconds
	}
	st.advance(st.jitter(cost, 0.3))
}

// stageBuild charges the build stage per the plan and reports whether the
// pipeline continues (false = build-stage crash). On success the worker
// holds a usable image for the configuration's CompileKey; on a crash the
// worker keeps whatever image and instance it had, exactly as before.
func (e *Engine) stageBuild(res *Result, st *evalState, plan evalPlan, stage simos.Stage, reason string) bool {
	switch plan.action {
	case buildReuse:
		res.BuildSkipped = true
		if stage == simos.StageBuild {
			// The image is reused, but the hidden build outcome is meant to
			// key off compile parameters only, so a skipped build cannot
			// fail. Guard anyway.
			return crashOut(res, st, stage, reason)
		}

	case buildFetch, buildFetchRemote:
		remote := plan.action == buildFetchRemote
		e.chargeFetch(st, remote)
		res.CacheHit, res.CacheRemote = true, remote
		if stage == simos.StageBuild {
			return crashOut(res, st, stage, reason) // same guard as reuse
		}

	case buildAwait, buildAwaitRemote:
		// Wait for the builder's virtual completion. The gap is
		// scheduler-imposed idle time, not compute; Stall touches only
		// this worker's wall-clock slice, so concurrent awaiters race on
		// nothing.
		t := plan.ticket
		if st.wall != nil {
			st.wall.Stall(st.worker, t.endSec)
		}
		if t.ok {
			remote := plan.action == buildAwaitRemote
			e.chargeFetch(st, remote)
			res.CacheHit, res.CacheRemote = true, remote
		} else {
			// The build this evaluation was deduped onto crashed: fall
			// back to building the image itself.
			st.advance(st.jitter(e.Model.BuildSeconds, 0.3))
			st.builds++
		}
		if stage == simos.StageBuild {
			return crashOut(res, st, stage, reason)
		}

	default: // buildFull
		st.advance(st.jitter(e.Model.BuildSeconds, 0.3))
		st.builds++
		if t := plan.ticket; t != nil {
			t.endSec = st.clock.Now()
			t.ok = stage != simos.StageBuild
			t.resolved = true
		}
		if stage == simos.StageBuild {
			return crashOut(res, st, stage, reason)
		}
	}
	res.buildEndSec = st.clock.Now()
	st.imageKey, st.haveImage = plan.key, true
	if plan.action != buildReuse {
		st.haveBoot = false // a new image must boot
	}
	return true
}

// stageBoot charges the boot stage: a reboot unless the running instance's
// BootKey already matches (then the runtime deltas are applied live — a
// few seconds of sysctl writes).
func (e *Engine) stageBoot(res *Result, cfg *configspace.Config, st *evalState, stage simos.Stage, reason string) bool {
	key := cfg.BootKey()
	if !st.haveBoot || st.bootKey != key {
		st.advance(st.jitter(e.Model.BootSeconds, 0.3))
	} else {
		st.advance(st.jitter(2, 0.5))
	}
	if stage == simos.StageBoot {
		st.haveBoot = false
		return crashOut(res, st, stage, reason)
	}
	st.bootKey, st.haveBoot = key, true
	return true
}

// stageMeasure charges the benchmark run (the §3.1 test task). The metric
// value itself is sampled by the scheduler afterwards, in canonical
// observation order.
func (e *Engine) stageMeasure(res *Result, st *evalState, stage simos.Stage, reason string) {
	benchTime := e.App.BenchSeconds
	if _, isMem := e.Metric.(MemoryMetric); isMem {
		benchTime = 6 // footprint measurement needs no load generation
	}
	if stage == simos.StageRun {
		// Crashes surface partway through the benchmark.
		st.advance(st.jitter(benchTime*0.4, 0.5))
		st.haveBoot = false // crashed instance must be replaced
		crashOut(res, st, stage, reason)
		return
	}
	st.advance(st.jitter(benchTime, 0.25))
	res.EndSec = st.clock.Now()
}

// commitArtifact settles an observed evaluation against the cache: it
// tallies the report's cache counters, clears the in-flight registration,
// and publishes the worker's image to the shared store. Coordinator-only,
// called from record in observation order.
func (s *Session) commitArtifact(report *Report, res *Result) {
	if res.BuildSkipped {
		report.BuildsSaved++
	}
	c := s.cache
	if c == nil || c.store == nil || res.Config == nil {
		return
	}
	if res.Crashed && res.Stage == faultStageName && res.buildEndSec == 0 { //wfvet:ignore floateq 0 is killEval's build-never-finished sentinel, never a computed time
		// A fault kill interrupted the build (or fetch) and exhausted the
		// iteration's retries: nothing was produced, and killEval already
		// unwound the worker digests and any in-flight registration.
		return
	}
	if res.CacheHit {
		report.CacheHits++
		report.BuildsSaved++
		if res.CacheRemote {
			report.CacheRemoteHits++
		}
	} else if !res.BuildSkipped {
		report.CacheMisses++
	}
	if res.ticket != nil && c.building[res.artifactKey] == res.ticket {
		delete(c.building, res.artifactKey)
	}
	if res.Crashed && res.Stage == simos.StageBuild.String() {
		return // no artifact came out of this evaluation
	}
	c.store.Put(artifact.Artifact{
		Key:      res.artifactKey,
		Host:     res.Host,
		Builder:  res.Worker,
		ReadySec: res.buildEndSec,
	})
}

// batchEval is one planned evaluation of a dispatch batch.
type batchEval struct {
	iter int
	cfg  *configspace.Config
	st   *evalState
	plan evalPlan
	res  Result

	// attempt is how many times this iteration already failed to a fault
	// (0 for a first dispatch); resolveFaults reads it to decide between
	// retry and giving up.
	attempt int
	// Pre-dispatch worker state, captured by the scheduler immediately
	// before runBatch so killEval can unwind an interrupted build. Only
	// meaningful until resolveFaults settles the batch — pending
	// (post-resolve) evaluations never need it, so none of this
	// serializes.
	preImageKey  uint64
	preHaveImage bool
	preBuilds    int
	preStall     float64
}

// runBatch executes a dispatch batch concurrently in two waves: first
// every evaluation that depends on nothing (builds, reuses, store
// fetches), then the awaiters, which read their builder's resolved ticket.
// The intermediate join is the happens-before edge that makes the ticket
// handoff race-free; virtual time needs no such care (tickets carry it).
// Await chains are depth one by construction — an awaiter never builds
// unless its builder crashed, and then only from its own resources — so
// two waves always suffice.
func (e *Engine) runBatch(evals []*batchEval) {
	var wg sync.WaitGroup
	run := func(ev *batchEval) {
		defer wg.Done()
		ev.res = e.evaluate(ev.iter, ev.cfg, ev.st, ev.plan)
	}
	var awaiters []*batchEval
	for _, ev := range evals {
		if ev.plan.action == buildAwait || ev.plan.action == buildAwaitRemote {
			awaiters = append(awaiters, ev)
			continue
		}
		wg.Add(1)
		go run(ev)
	}
	wg.Wait()
	for _, ev := range awaiters {
		wg.Add(1)
		go run(ev)
	}
	wg.Wait()
}
