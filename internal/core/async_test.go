package core

import (
	"testing"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/search"
	"wayfinder/internal/vm"
)

func asyncRun(t *testing.T, kind string, seed uint64, opts Options) *Report {
	t.Helper()
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, kind, seed), &vm.Clock{}, seed)
	rep, err := eng.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAsyncDeterministicAcrossRuns(t *testing.T) {
	// Same (seed, workers, staleness) ⇒ byte-identical report, regardless
	// of goroutine scheduling. Random exercises the event queue cheaply;
	// bayesian is the stateful-surrogate case where observation order
	// matters; the bounded-staleness and straggler variants exercise the
	// partial-barrier and heterogeneous-speed paths.
	cases := []struct {
		name string
		kind string
		opts Options
	}{
		{"random-unbounded", "random", Options{Iterations: 64, Seed: 7, Workers: 8, Async: true, Staleness: -1}},
		{"bayesian-unbounded", "bayesian", Options{Iterations: 24, Seed: 7, Workers: 8, Async: true, Staleness: -1}},
		{"random-staleness2", "random", Options{Iterations: 64, Seed: 7, Workers: 8, Async: true, Staleness: 2}},
		{"random-straggler", "random", Options{Iterations: 48, Seed: 7, Workers: 4, Async: true, Staleness: -1,
			WorkerSpeedFactors: StragglerFleet(4, 4)}},
	}
	for _, c := range cases {
		a := canonicalJSON(t, asyncRun(t, c.kind, c.opts.Seed, c.opts))
		b := canonicalJSON(t, asyncRun(t, c.kind, c.opts.Seed, c.opts))
		if a != b {
			t.Fatalf("%s: two async runs with the same (seed, workers, staleness) produced different reports", c.name)
		}
	}
}

func TestAsyncStalenessZeroMatchesSync(t *testing.T) {
	// Staleness 0 means every proposal batch must see a fully-observed
	// history — the synchronous round scheduler exactly, report included.
	for _, kind := range []string{"random", "bayesian"} {
		iters := 40
		if kind == "bayesian" {
			iters = 20
		}
		sync := parallelRun(t, kind, 42, Options{Iterations: iters, Seed: 42, Workers: 8})
		async := asyncRun(t, kind, 42, Options{Iterations: iters, Seed: 42, Workers: 8, Async: true, Staleness: 0})
		if canonicalJSON(t, sync) != canonicalJSON(t, async) {
			t.Fatalf("%s: Async with Staleness=0 diverged from the synchronous engine", kind)
		}
	}
}

func TestAsyncWorkerOneMatchesSequential(t *testing.T) {
	// One async worker degenerates to propose-evaluate-observe on worker
	// 0's stream — the sequential engine, up to the scheduler self-id
	// fields the report carries.
	for _, kind := range []string{"random", "grid", "bayesian"} {
		m := smallLinux(t)
		app := apps.Nginx()
		seqEng := NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, kind, 42), &vm.Clock{}, 42)
		seq, err := seqEng.Run(Options{Iterations: 40, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		m2 := smallLinux(t)
		asyncEng := NewEngine(m2, app, &PerfMetric{App: app}, newSearcher(m2, kind, 42), &vm.Clock{}, 42)
		async, err := asyncEng.runAsync(Options{Iterations: 40, Seed: 42, Workers: 1, Async: true, Staleness: -1})
		if err != nil {
			t.Fatal(err)
		}
		async.Async = false // the only legitimate difference
		if canonicalJSON(t, seq) != canonicalJSON(t, async) {
			t.Fatalf("%s: one-worker async session diverged from the sequential engine", kind)
		}
	}
}

func TestAsyncHistoryCompletionOrdered(t *testing.T) {
	const iters, w = 50, 8
	rep := asyncRun(t, "random", 3, Options{Iterations: iters, Seed: 3, Workers: w, Async: true, Staleness: -1})
	if len(rep.History) != iters {
		t.Fatalf("history length %d, want %d", len(rep.History), iters)
	}
	if !rep.Async {
		t.Fatal("report does not identify the async scheduler")
	}
	if rep.Staleness != w-1 {
		t.Fatalf("effective staleness %d, want %d (unbounded = one in-flight per other worker)", rep.Staleness, w-1)
	}
	// History is ordered by virtual completion time (the order the
	// searcher observed), and iteration indices are a permutation of the
	// dispatch sequence.
	seen := make([]bool, iters)
	for i, h := range rep.History {
		if h.Iteration < 0 || h.Iteration >= iters || seen[h.Iteration] {
			t.Fatalf("history[%d] has bad/duplicate iteration %d", i, h.Iteration)
		}
		seen[h.Iteration] = true
		if i > 0 && h.EndSec < rep.History[i-1].EndSec {
			t.Fatalf("history[%d] finished at %.2fs before its predecessor's %.2fs: not completion-ordered",
				i, h.EndSec, rep.History[i-1].EndSec)
		}
		if h.Worker < 0 || h.Worker >= w {
			t.Fatalf("history[%d] ran on worker %d", i, h.Worker)
		}
	}
}

// stalenessProbe is a native BatchSearcher that records how many
// proposed-but-unobserved evaluations existed each time a batch was drawn.
type stalenessProbe struct {
	search.Searcher
	outstanding    int
	maxOutstanding int
}

func (s *stalenessProbe) ProposeBatch(n int) []*configspace.Config {
	if s.outstanding > s.maxOutstanding {
		s.maxOutstanding = s.outstanding
	}
	out := make([]*configspace.Config, 0, n)
	for len(out) < n {
		out = append(out, s.Propose())
	}
	s.outstanding += n
	return out
}

func (s *stalenessProbe) Observe(o search.Observation) {
	s.outstanding--
	s.Searcher.Observe(o)
}

func TestAsyncBoundedStalenessRespected(t *testing.T) {
	for _, bound := range []int{1, 2, 4} {
		m := smallLinux(t)
		app := apps.Nginx()
		probe := &stalenessProbe{Searcher: search.NewRandom(m.Space, 11)}
		eng := NewEngine(m, app, &PerfMetric{App: app}, probe, &vm.Clock{}, 11)
		if _, err := eng.Run(Options{Iterations: 64, Seed: 11, Workers: 8, Async: true, Staleness: bound}); err != nil {
			t.Fatal(err)
		}
		if probe.maxOutstanding > bound {
			t.Fatalf("staleness %d: a proposal batch was drawn with %d unobserved evaluations in flight",
				bound, probe.maxOutstanding)
		}
		if probe.maxOutstanding != bound {
			t.Fatalf("staleness %d: bound never reached (max observed %d) — scheduler more synchronous than allowed",
				bound, probe.maxOutstanding)
		}
	}
}

// batchTrace is a native BatchSearcher that records, for every batch it
// draws, the dispatch index of the batch's first proposal and how many
// observations had landed by then.
type batchTrace struct {
	search.Searcher
	proposed int
	observed int
	draws    []struct{ start, n, obs int }
}

func (s *batchTrace) ProposeBatch(n int) []*configspace.Config {
	out := make([]*configspace.Config, 0, n)
	for len(out) < n {
		out = append(out, s.Propose())
	}
	s.draws = append(s.draws, struct{ start, n, obs int }{s.proposed, n, s.observed})
	s.proposed += n
	return out
}

func (s *batchTrace) Observe(o search.Observation) {
	s.observed++
	s.Searcher.Observe(o)
}

func TestAsyncStalenessCausallyConsistent(t *testing.T) {
	// Regression: a worker held back by the staleness bound used to
	// restart at its own stale clock, so its evaluation "started" before
	// the observation that admitted its dispatch — a physically
	// unrealizable schedule whose staleness cost never reached the
	// wall-clock. Realizability: every evaluation of a batch drawn after
	// k observations must start at or after the k-th observation's finish
	// time (history is observation-ordered).
	const iters, w, bound = 64, 8, 1
	m := smallLinux(t)
	app := apps.Nginx()
	trace := &batchTrace{Searcher: search.NewRandom(m.Space, 7)}
	eng := NewEngine(m, app, &PerfMetric{App: app}, trace, &vm.Clock{}, 7)
	rep, err := eng.Run(Options{Iterations: iters, Seed: 7, Workers: w, Async: true, Staleness: bound})
	if err != nil {
		t.Fatal(err)
	}
	byIter := make([]*Result, iters)
	for i := range rep.History {
		byIter[rep.History[i].Iteration] = &rep.History[i]
	}
	for _, draw := range trace.draws {
		if draw.obs == 0 {
			continue
		}
		unlock := rep.History[draw.obs-1].EndSec
		for d := draw.start; d < draw.start+draw.n && d < iters; d++ {
			if byIter[d].StartSec < unlock-1e-9 {
				t.Fatalf("iteration %d started at %.2fs, before the observation (%.2fs) that admitted its batch",
					d, byIter[d].StartSec, unlock)
			}
		}
	}
	// The bound's wall-clock price must be charged: a staleness-1 session
	// cannot finish faster than the unbounded one.
	unbounded := asyncRun(t, "random", 7, Options{Iterations: iters, Seed: 7, Workers: w, Async: true, Staleness: -1})
	if rep.ElapsedSec < unbounded.ElapsedSec {
		t.Fatalf("staleness-1 wall %.1fs below unbounded %.1fs: bound waits not charged", rep.ElapsedSec, unbounded.ElapsedSec)
	}
}

func TestParallelBarrierChargedToWallClock(t *testing.T) {
	// Regression: the round scheduler never advanced waiting workers to
	// the barrier, reporting a wall-clock shorter than the schedule it
	// actually ran. With the barrier charged, no round-r+1 evaluation
	// starts before round r's slowest finishes, and ElapsedSec is the sum
	// of per-round maxima.
	const iters, w = 96, 8
	rep := parallelRun(t, "random", 5, Options{Iterations: iters, Seed: 5, Workers: w})
	prevMax := 0.0
	for round := 0; round*w < iters; round++ {
		lo, hi := round*w, (round+1)*w
		if hi > iters {
			hi = iters
		}
		roundMax := 0.0
		for i := lo; i < hi; i++ {
			h := rep.History[i]
			if h.StartSec < prevMax-1e-9 {
				t.Fatalf("iteration %d started at %.2fs, before the previous round's barrier at %.2fs",
					i, h.StartSec, prevMax)
			}
			if h.EndSec > roundMax {
				roundMax = h.EndSec
			}
		}
		prevMax = roundMax
	}
	if diff := rep.ElapsedSec - prevMax; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ElapsedSec %.2f != last barrier %.2f", rep.ElapsedSec, prevMax)
	}
}

func TestAsyncRecoversStragglerWallClock(t *testing.T) {
	// The acceptance bar: with one 4x-slow worker, the async scheduler
	// recovers ≥80% of the wall-clock the round barrier loses, because
	// placement follows virtual availability instead of iteration mod W.
	const iters, w = 96, 8
	factors := StragglerFleet(w, 4)
	reference := parallelRun(t, "random", 5, Options{Iterations: iters, Seed: 5, Workers: w})
	syncStrag := parallelRun(t, "random", 5, Options{Iterations: iters, Seed: 5, Workers: w, WorkerSpeedFactors: factors})
	asyncStrag := asyncRun(t, "random", 5, Options{Iterations: iters, Seed: 5, Workers: w, Async: true, Staleness: -1,
		WorkerSpeedFactors: factors})
	lost := syncStrag.ElapsedSec - reference.ElapsedSec
	if lost <= 0 {
		t.Fatalf("straggler did not hurt the sync engine (wall %.0fs vs %.0fs)", syncStrag.ElapsedSec, reference.ElapsedSec)
	}
	recovery := (syncStrag.ElapsedSec - asyncStrag.ElapsedSec) / lost
	if recovery < 0.8 {
		t.Fatalf("async recovered %.0f%% of the straggler-lost wall-clock, want ≥80%% (ref %.0fs, sync %.0fs, async %.0fs)",
			100*recovery, reference.ElapsedSec, syncStrag.ElapsedSec, asyncStrag.ElapsedSec)
	}
	// The straggler should also have received measurably less work.
	counts := make([]int, w)
	for _, h := range asyncStrag.History {
		counts[h.Worker]++
	}
	if counts[w-1] >= counts[0] {
		t.Fatalf("async placement gave the 4x straggler %d evaluations vs worker 0's %d", counts[w-1], counts[0])
	}
}

func TestAsyncIdleAccounting(t *testing.T) {
	const iters, w = 96, 8
	factors := StragglerFleet(w, 4)
	syncStrag := parallelRun(t, "random", 9, Options{Iterations: iters, Seed: 9, Workers: w, WorkerSpeedFactors: factors})
	asyncStrag := asyncRun(t, "random", 9, Options{Iterations: iters, Seed: 9, Workers: w, Async: true, Staleness: -1,
		WorkerSpeedFactors: factors})
	for _, rep := range []*Report{syncStrag, asyncStrag} {
		if rep.IdleSec < 0 {
			t.Fatalf("negative idle time %.0fs", rep.IdleSec)
		}
		if rep.Utilization <= 0 || rep.Utilization > 1 {
			t.Fatalf("utilization %.3f out of (0, 1]", rep.Utilization)
		}
		want := rep.ComputeSec / (rep.ComputeSec + rep.IdleSec)
		if diff := rep.Utilization - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("utilization %.6f inconsistent with compute/idle %.6f", rep.Utilization, want)
		}
	}
	if asyncStrag.IdleSec >= syncStrag.IdleSec {
		t.Fatalf("async idle %.0fs not below sync idle %.0fs under a straggler", asyncStrag.IdleSec, syncStrag.IdleSec)
	}
	if asyncStrag.Utilization <= syncStrag.Utilization {
		t.Fatalf("async utilization %.2f not above sync %.2f under a straggler",
			asyncStrag.Utilization, syncStrag.Utilization)
	}
}

func TestAsyncTimeBudget(t *testing.T) {
	rep := asyncRun(t, "random", 6, Options{TimeBudgetSec: 600, Seed: 6, Workers: 4, Async: true, Staleness: -1})
	if rep.ElapsedSec < 600 {
		t.Fatalf("stopped at %.0fs, before exhausting the 600s wall-clock budget", rep.ElapsedSec)
	}
	// Every worker dispatches its last evaluation before its clock passes
	// the budget, so overshoot is bounded by one evaluation.
	if rep.ElapsedSec > 600+300 {
		t.Fatalf("overshot budget: %.0fs", rep.ElapsedSec)
	}
}

func TestAsyncWarmStart(t *testing.T) {
	rep := asyncRun(t, "random", 8, Options{Iterations: 12, Seed: 8, Workers: 4, Async: true, Staleness: -1, WarmStart: true})
	for _, h := range rep.History {
		if h.Iteration == 0 {
			if h.ConfigString != "<default>" {
				t.Fatalf("iteration 0 = %q, want default", h.ConfigString)
			}
			return
		}
	}
	t.Fatal("iteration 0 missing from history")
}

func TestAsyncSharedClockAdvances(t *testing.T) {
	m := smallLinux(t)
	app := apps.Nginx()
	var clock vm.Clock
	eng := NewEngine(m, app, &PerfMetric{App: app}, newSearcher(m, "random", 14), &clock, 14)
	rep, err := eng.Run(Options{Iterations: 16, Seed: 14, Workers: 4, Async: true, Staleness: -1})
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now() != rep.ElapsedSec {
		t.Fatalf("shared clock at %.2fs, want the session's wall time %.2fs", clock.Now(), rep.ElapsedSec)
	}
}

func TestAsyncNoDuplicateConfigsInFlight(t *testing.T) {
	// The pending-set protocol must keep concurrently-evaluating
	// configurations distinct in the async engine too: within any window
	// of W consecutive dispatches, no hash repeats.
	const w = 8
	rep := asyncRun(t, "random", 9, Options{Iterations: 64, Seed: 9, Workers: w, Async: true, Staleness: -1})
	byIter := make([]*Result, len(rep.History))
	for i := range rep.History {
		byIter[rep.History[i].Iteration] = &rep.History[i]
	}
	for start := 0; start+w <= len(byIter); start++ {
		seen := map[uint64]int{}
		for i := start; i < start+w; i++ {
			h := byIter[i].Config.Hash()
			if prev, dup := seen[h]; dup {
				t.Fatalf("iterations %d and %d evaluated the same configuration within one in-flight window", prev, i)
			}
			seen[h] = i
		}
	}
}
