package core

import (
	"sort"

	"wayfinder/internal/configspace"
	"wayfinder/internal/deeptune"
)

// ParamImpact is the model's estimate of how much one parameter moves the
// target metric — the data behind the paper's "High-Impact Configuration
// Parameters" analysis (§4.1), obtained by querying the learned DTM
// rather than the hidden simulator.
type ParamImpact struct {
	// Name is the parameter name.
	Name string
	// Impact is the predicted metric swing across the parameter's domain
	// (max predicted − min predicted), holding everything else at the
	// reference configuration.
	Impact float64
	// BestValue is the domain value with the highest predicted metric
	// (direction-corrected).
	BestValue string
	// Positive reports whether the parameter's best setting improves on
	// its reference value (vs. merely being the least bad).
	Positive bool
}

// probeValues returns representative domain values for impact probing.
func probeValues(p *configspace.Param) []configspace.Value {
	switch p.Type {
	case configspace.Bool:
		return []configspace.Value{configspace.BoolValue(false), configspace.BoolValue(true)}
	case configspace.Tristate:
		return []configspace.Value{
			configspace.TriValue(configspace.TriNo),
			configspace.TriValue(configspace.TriModule),
			configspace.TriValue(configspace.TriYes),
		}
	case configspace.Enum:
		out := make([]configspace.Value, len(p.Values))
		for i, v := range p.Values {
			out[i] = configspace.EnumValue(v)
		}
		return out
	default:
		var out []configspace.Value
		for v := p.Min; v < p.Max && len(out) < 12; v = v*8 + 1 {
			out = append(out, configspace.IntValue(v))
		}
		out = append(out, configspace.IntValue(p.Max))
		return out
	}
}

// HighImpactParams queries a trained DTM for the parameters with the
// largest predicted influence on the metric, evaluated around a reference
// configuration. Results are sorted by descending impact.
func HighImpactParams(model *deeptune.DTM, enc *configspace.Encoder,
	space *configspace.Space, ref *configspace.Config, maximize bool) []ParamImpact {
	var out []ParamImpact
	x := make([]float64, enc.Dim())
	for i := 0; i < space.Len(); i++ {
		p := space.Param(i)
		if p.Fixed {
			continue
		}
		values := probeValues(p)
		if len(values) < 2 {
			continue
		}
		lo, hi := 0.0, 0.0
		first := true
		var bestVal configspace.Value
		refPred := 0.0
		{
			enc.EncodeInto(ref, x)
			refPred = model.Predict(x).Perf
		}
		cand := ref.Clone()
		for _, v := range values {
			cand.SetIndex(i, v)
			enc.EncodeInto(cand, x)
			pred := model.Predict(x).Perf
			if first {
				lo, hi, bestVal = pred, pred, v
				first = false
				continue
			}
			if pred < lo {
				lo = pred
			}
			if pred > hi {
				hi = pred
				if maximize {
					bestVal = v
				}
			}
			if !maximize && pred <= lo {
				bestVal = v
			}
		}
		cand.SetIndex(i, ref.Value(i))
		impact := hi - lo
		positive := (maximize && hi > refPred) || (!maximize && lo < refPred)
		out = append(out, ParamImpact{
			Name:      p.Name,
			Impact:    impact,
			BestValue: p.FormatValue(bestVal),
			Positive:  positive,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Impact > out[b].Impact })
	return out
}
