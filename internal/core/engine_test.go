package core

import (
	"encoding/json"
	"testing"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
	"wayfinder/internal/vm"
)

// smallLinux builds a reduced Linux model for fast engine tests.
func smallLinux(t testing.TB) *simos.Model {
	t.Helper()
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 40, FillerBoot: 5, FillerCompile: 10, Seed: 1})
	m.Space.Favor(configspace.CompileTime, 0)
	return m
}

func TestRunRequiresBudget(t *testing.T) {
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 1), &vm.Clock{}, 1)
	if _, err := eng.Run(Options{}); err == nil {
		t.Fatal("expected error without budget")
	}
}

func TestRunIterationBudget(t *testing.T) {
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 1), &vm.Clock{}, 1)
	rep, err := eng.Run(Options{Iterations: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.History) != 25 {
		t.Fatalf("history length %d, want 25", len(rep.History))
	}
	if rep.ElapsedSec <= 0 {
		t.Fatal("virtual time did not advance")
	}
	if rep.Best == nil {
		t.Fatal("no best result over 25 iterations")
	}
	if rep.Best.Crashed {
		t.Fatal("best result must not be a crash")
	}
}

func TestRunTimeBudget(t *testing.T) {
	m := smallLinux(t)
	app := apps.Nginx()
	var clock vm.Clock
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 2), &clock, 2)
	rep, err := eng.Run(Options{TimeBudgetSec: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ElapsedSec < 600 {
		t.Fatalf("stopped at %v s, before exhausting the 600 s budget", rep.ElapsedSec)
	}
	// One evaluation runs ≈45-120 virtual seconds, so the overshoot past
	// the budget is at most one evaluation.
	if rep.ElapsedSec > 600+200 {
		t.Fatalf("overshot budget: %v s", rep.ElapsedSec)
	}
	if len(rep.History) < 4 {
		t.Fatalf("only %d iterations in 600 s", len(rep.History))
	}
}

func TestBuildSkipOptimization(t *testing.T) {
	// With compile-time pinned, every iteration after the first reuses the
	// image (§3.1): exactly one build.
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 3), &vm.Clock{}, 3)
	rep, err := eng.Run(Options{Iterations: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Builds != 1 {
		t.Fatalf("builds = %d, want 1 (build-skip optimization)", rep.Builds)
	}
	skipped := 0
	for _, h := range rep.History[1:] {
		if h.BuildSkipped {
			skipped++
		}
	}
	if skipped != len(rep.History)-1 {
		t.Fatalf("%d of %d iterations skipped the build", skipped, len(rep.History)-1)
	}
}

func TestBuildNotSkippedWhenCompileVaries(t *testing.T) {
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 10, FillerCompile: 20, Seed: 1})
	// Compile-time exploration allowed: most random configs change compile
	// options and trigger rebuilds.
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 4), &vm.Clock{}, 4)
	rep, err := eng.Run(Options{Iterations: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Builds < 10 {
		t.Fatalf("builds = %d, expected most iterations to rebuild", rep.Builds)
	}
}

func TestCrashAccounting(t *testing.T) {
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 5), &vm.Clock{}, 5)
	rep, err := eng.Run(Options{Iterations: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rate := rep.CrashRate()
	if rate < 0.15 || rate > 0.5 {
		t.Fatalf("random crash rate = %v, want ≈1/3", rate)
	}
	count := 0
	for _, h := range rep.History {
		if h.Crashed {
			count++
			if h.Stage == "ok" || h.Reason == "" {
				t.Fatal("crashed result missing stage/reason")
			}
			if h.Metric != 0 {
				t.Fatal("crashed result carries a metric")
			}
		}
	}
	if count != rep.Crashes {
		t.Fatalf("crash count mismatch: %d vs %d", count, rep.Crashes)
	}
}

func TestCrashedEvaluationsCostLess(t *testing.T) {
	// A run-stage crash aborts the benchmark partway: its virtual duration
	// must be below a completed evaluation's.
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 6), &vm.Clock{}, 6)
	rep, err := eng.Run(Options{Iterations: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var crashAvg, okAvg float64
	var nc, nok int
	for _, h := range rep.History[1:] { // skip the build iteration
		d := h.EndSec - h.StartSec
		if h.Crashed && h.Stage == "run" {
			crashAvg += d
			nc++
		} else if !h.Crashed {
			okAvg += d
			nok++
		}
	}
	if nc == 0 || nok == 0 {
		t.Skip("seed produced no run crashes")
	}
	crashAvg /= float64(nc)
	okAvg /= float64(nok)
	if crashAvg >= okAvg {
		t.Fatalf("crashed evaluations average %v s vs %v s for completed", crashAvg, okAvg)
	}
}

func TestWarmStartEvaluatesDefault(t *testing.T) {
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 7), &vm.Clock{}, 7)
	rep, err := eng.Run(Options{Iterations: 5, Seed: 7, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.History[0].ConfigString != "<default>" {
		t.Fatalf("first iteration = %q, want default", rep.History[0].ConfigString)
	}
}

func TestBestSoFarSeriesMonotone(t *testing.T) {
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 8), &vm.Clock{}, 8)
	rep, err := eng.Run(Options{Iterations: 60, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	series := rep.BestSoFarSeries()
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Fatal("best-so-far series must be monotone for a maximize metric")
		}
	}
	if series[len(series)-1] != rep.Best.Metric {
		t.Fatal("series end disagrees with Best")
	}
}

func TestSmoothedSeriesHoldsThroughCrashes(t *testing.T) {
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 9), &vm.Clock{}, 9)
	rep, err := eng.Run(Options{Iterations: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sm := rep.SmoothedMetricSeries(0.3)
	for i, h := range rep.History {
		if h.Crashed && i > 0 && sm[i] != sm[i-1] {
			t.Fatal("smoothed series should hold previous value on crashes")
		}
	}
}

func TestMemoryMetricEngine(t *testing.T) {
	m := simos.NewRiscv(simos.DefaultRiscvOptions())
	app := apps.Nginx()
	eng := NewEngine(m, app, MemoryMetric{}, search.NewRandom(m.Space, 10), &vm.Clock{}, 10)
	rep, err := eng.Run(Options{Iterations: 12, Seed: 10, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Maximize {
		t.Fatal("memory metric must minimize")
	}
	if rep.Best == nil {
		t.Fatal("no viable result")
	}
	if rep.Best.Metric < 150 || rep.Best.Metric > 220 {
		t.Fatalf("memory best = %v MB, out of plausible range", rep.Best.Metric)
	}
	// Every random config changes compile options → builds each iteration.
	if rep.Builds < 10 {
		t.Fatalf("memory experiment should rebuild: %d builds", rep.Builds)
	}
}

func TestScoreMetric(t *testing.T) {
	m := smallLinux(t)
	app := apps.Nginx()
	sm := &ScoreMetric{}
	eng := NewEngine(m, app, sm, search.NewRandom(m.Space, 11), &vm.Clock{}, 11)
	rep, err := eng.Run(Options{Iterations: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == nil {
		t.Fatal("no best")
	}
	finals := sm.FinalScores()
	nonCrashed := 0
	for _, h := range rep.History {
		if !h.Crashed {
			nonCrashed++
		}
	}
	if sm.Len() != nonCrashed {
		t.Fatalf("score metric measured %d pairs, want %d", sm.Len(), nonCrashed)
	}
	for _, s := range finals {
		if s < -1.0001 || s > 1.0001 {
			t.Fatalf("final score %v outside [-1, 1]", s)
		}
	}
	tp, mem := sm.Pair(0)
	if tp <= 0 || mem <= 0 {
		t.Fatal("raw pair not recorded")
	}
}

func TestDeepTuneEngineBeatsRandomOnAverage(t *testing.T) {
	// The paper's core claim (Fig 6a): over a session, DeepTune finds
	// better configurations and crashes less than random search. Averaged
	// over seeds to absorb run-to-run variance.
	if testing.Short() {
		t.Skip("multi-seed search comparison is slow")
	}
	seeds := []uint64{1, 2, 3}
	var dtBest, rndBest, dtCrash, rndCrash float64
	for _, seed := range seeds {
		app := apps.Nginx()
		{
			m := smallLinux(t)
			s := search.NewRandom(m.Space, seed)
			eng := NewEngine(m, app, &PerfMetric{App: app}, s, &vm.Clock{}, seed)
			rep, err := eng.Run(Options{Iterations: 150, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			rndBest += rep.Best.Metric
			late := rep.CrashRateSeries(40)
			rndCrash += late[len(late)-1]
		}
		{
			m := smallLinux(t)
			cfg := deeptune.DefaultConfig()
			cfg.Seed = seed
			s := search.NewDeepTune(m.Space, true, cfg)
			eng := NewEngine(m, app, &PerfMetric{App: app}, s, &vm.Clock{}, seed)
			rep, err := eng.Run(Options{Iterations: 150, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			dtBest += rep.Best.Metric
			late := rep.CrashRateSeries(40)
			dtCrash += late[len(late)-1]
		}
	}
	n := float64(len(seeds))
	if dtBest/n <= rndBest/n {
		t.Fatalf("deeptune avg best %v should beat random %v", dtBest/n, rndBest/n)
	}
	if dtCrash/n >= rndCrash/n {
		t.Fatalf("deeptune late crash rate %v should undercut random %v", dtCrash/n, rndCrash/n)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	m := smallLinux(t)
	app := apps.Nginx()
	eng := NewEngine(m, app, &PerfMetric{App: app}, search.NewRandom(m.Space, 12), &vm.Clock{}, 12)
	rep, err := eng.Run(Options{Iterations: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Searcher != "random" || len(back.History) != 10 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestHighImpactParams(t *testing.T) {
	// Train a DTM through a session, then audit which parameters it ranks
	// as impactful: the genuinely high-impact printk_delay should outrank
	// the median filler.
	m := smallLinux(t)
	app := apps.Nginx()
	cfg := deeptune.DefaultConfig()
	cfg.Seed = 13
	s := search.NewDeepTune(m.Space, true, cfg)
	eng := NewEngine(m, app, &PerfMetric{App: app}, s, &vm.Clock{}, 13)
	rep, err := eng.Run(Options{Iterations: 120, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	impacts := HighImpactParams(s.Selector().Model(), s.Selector().Encoder(), m.Space, rep.Best.Config, true)
	if len(impacts) == 0 {
		t.Fatal("no impact entries")
	}
	rank := map[string]int{}
	for i, pi := range impacts {
		rank[pi.Name] = i
	}
	delayRank := rank["kernel.printk_delay"]
	// Median filler rank:
	fillerRanks := 0
	fillerCount := 0
	for name, rk := range rank {
		if len(name) > 8 && name[len(name)-8:len(name)-4] == "ble_" {
			fillerRanks += rk
			fillerCount++
		}
	}
	if fillerCount == 0 {
		t.Skip("no fillers in space")
	}
	if delayRank >= fillerRanks/fillerCount {
		t.Fatalf("printk_delay ranked %d, median filler %d — model failed to surface a high-impact parameter",
			delayRank, fillerRanks/fillerCount)
	}
}
