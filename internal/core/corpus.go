// Corpus plumbing for the Session state machine: warm-start resolution at
// construction, seed injection bookkeeping (the schedulers consume
// s.seeds ahead of searcher proposals), and deposit-on-done. The corpus
// itself lives in internal/corpus; this file is the session-side contract:
//
//   - Resolution happens exactly once, in Engine.NewSession. A restored
//     session never re-queries the corpus — its snapshot carries the
//     resolved-but-unconsumed seeds and the applied DTM weights, so resume
//     replays the original query answer even if the corpus grew since.
//   - An empty corpus (or one with nothing for this space) resolves to
//     nothing and leaves the session byte-identical to a corpusless one.
//   - Deposit happens on session completion, before SessionDone, and is
//     idempotent: entries are content-addressed, so re-depositing the same
//     outcome is free.
package core

import (
	"fmt"
	"sort"

	"wayfinder/internal/configspace"
	"wayfinder/internal/corpus"
	"wayfinder/internal/forest"
	"wayfinder/internal/nn"
	"wayfinder/internal/search"
)

// Salts decorrelating the deposit-time forest fit from every other
// consumer of the session seed.
const (
	corpusFitSalt = 0xc09f17
	corpusImpSalt = 0xc09f5e
)

// corpusDepositK bounds how many best configurations a deposit carries.
const corpusDepositK = 8

// corpusMinObservations is the fewest non-crashed observations a session
// must have made for its importance profile to mean anything; below it
// the session completes without depositing.
const corpusMinObservations = 2

// resolveCorpus answers the session's warm-start query at construction
// time: seed configurations become the first proposals (all searchers),
// and a DeepTune searcher additionally has the nearest neighbor's model
// weights restored into it. Resolving nothing (no corpus, empty corpus,
// WarmStartK 0) is the cold-start path and changes no state at all.
func (s *Session) resolveCorpus() error {
	o := &s.opts
	if o.WarmStartK > 0 && o.Corpus == nil {
		return fmt.Errorf("core: WarmStartK set without a Corpus to draw from")
	}
	if o.Corpus == nil || o.WarmStartK <= 0 {
		return nil
	}
	e := s.eng
	ws := o.Corpus.WarmStart(e.App.Name, e.Model.Space.Fingerprint(), o.WarmStartK)
	if ws == nil {
		return nil
	}
	for _, kv := range ws.Seeds {
		cfg, err := e.Model.Space.FromKV(kv)
		if err != nil {
			return fmt.Errorf("core: corpus seed config: %w", err)
		}
		s.seeds = append(s.seeds, cfg)
	}
	resolved := len(s.seeds) > 0
	if len(ws.DTM) > 0 {
		if dt, ok := e.Searcher.(*search.DeepTune); ok {
			snap, err := nn.DecodeSnapshot(ws.DTM)
			if err != nil {
				return fmt.Errorf("core: corpus DTM snapshot: %w", err)
			}
			if err := dt.Selector().Model().Restore(snap); err != nil {
				return fmt.Errorf("core: corpus DTM restore: %w", err)
			}
			s.warmDTM = append([]byte(nil), ws.DTM...)
			resolved = true
		}
	}
	if !resolved {
		// Neighbors existed but contributed nothing usable (e.g. only a
		// DTM, under a non-DeepTune searcher): still a cold start.
		s.seeds = nil
		return nil
	}
	s.report.CorpusHash = ws.Hash
	s.report.CorpusSeeds = len(s.seeds)
	return nil
}

// announceCorpus emits the warm-start CorpusEvent lazily on the first
// step: root-layer observers attach only after session construction
// returns, so emitting during resolveCorpus would address an empty
// observer list.
func (s *Session) announceCorpus() {
	if s.corpusAnnounced {
		return
	}
	s.corpusAnnounced = true
	if s.report.CorpusHash == "" {
		return
	}
	s.emit(CorpusEvent{
		Kind:  "warmstart",
		Hash:  s.report.CorpusHash,
		Seeds: s.report.CorpusSeeds,
		DTM:   len(s.warmDTM) > 0,
	})
}

// AttachCorpus re-attaches a live corpus store to the session, so a
// session restored from a snapshot (whose serialized Options cannot carry
// the store pointer) deposits its outcome on completion. Warm-start
// resolution is never redone: the snapshot already carries the resolved
// seeds and weights.
func (s *Session) AttachCorpus(st *corpus.Store) {
	s.opts.Corpus = st
}

// depositCorpus stores the completed session's outcome: its importance
// profile fitted over the observation history (the Fig 5 recipe), its
// best configurations, and — for DeepTune — its model weights. Runs in
// markDone after the final finalize, immediately before SessionDone.
func (s *Session) depositCorpus() {
	st := s.opts.Corpus
	if st == nil {
		return
	}
	entry := s.buildCorpusEntry()
	if entry == nil {
		return
	}
	digest, err := st.Deposit(entry)
	if err != nil {
		// A deposit failure (disk full, permissions) must not fail the
		// session — the report is already complete; the corpus just
		// doesn't grow.
		return
	}
	s.emit(CorpusEvent{Kind: "deposit", Hash: st.Hash(), Digest: digest})
}

// buildCorpusEntry assembles the session's corpus entry, or nil when the
// history holds too little signal to transfer (no viable best, or fewer
// than corpusMinObservations non-crashed observations).
func (s *Session) buildCorpusEntry() *corpus.Entry {
	e, rep := s.eng, s.report
	if rep.Best == nil || rep.Best.Config == nil {
		return nil
	}
	type scored struct {
		cfg    *configspace.Config
		y      float64
		metric float64
	}
	var ok []scored
	for i := range rep.History {
		res := &rep.History[i]
		if res.Crashed || res.Config == nil {
			continue
		}
		y := res.Metric
		if !rep.Maximize {
			// Sign-flip latency-like metrics so "important" means the same
			// direction everywhere, exactly as the Fig 5 fit does.
			y = -y
		}
		ok = append(ok, scored{cfg: res.Config, y: y, metric: res.Metric})
	}
	if len(ok) < corpusMinObservations {
		return nil
	}
	xs := make([][]float64, len(ok))
	ys := make([]float64, len(ok))
	for i, sc := range ok {
		xs[i], ys[i] = e.enc.Encode(sc.cfg), sc.y
	}
	fc := forest.DefaultConfig()
	fc.Trees = 30
	fc.Seed = s.opts.Seed ^ corpusFitSalt
	f := forest.Fit(xs, ys, fc)
	imp := f.Importance(s.opts.Seed ^ corpusImpSalt)

	// Best-K seed configurations, best-first, deduplicated by config hash.
	sort.SliceStable(ok, func(i, j int) bool { return ok[i].y > ok[j].y })
	var seeds []corpus.SeedConfig
	seen := map[uint64]bool{}
	for _, sc := range ok {
		if len(seeds) >= corpusDepositK {
			break
		}
		if h := sc.cfg.Hash(); seen[h] {
			continue
		} else {
			seen[h] = true
		}
		seeds = append(seeds, corpus.SeedConfig{ConfigKV: sc.cfg.KV(), Metric: sc.metric})
	}

	entry := &corpus.Entry{
		App:          e.App.Name,
		Space:        e.Model.Space.Fingerprint(),
		Metric:       rep.Metric,
		Maximize:     rep.Maximize,
		Seed:         s.opts.Seed,
		Observations: s.observed,
		Importance:   imp,
		Seeds:        seeds,
	}
	if dt, isDT := e.Searcher.(*search.DeepTune); isDT {
		if snap, err := dt.Selector().Model().Snapshot(map[string]string{"app": e.App.Name}); err == nil {
			if raw, err := snap.Encode(); err == nil {
				entry.DTM = raw
			}
		}
	}
	return entry
}
