// Package corpus implements Wayfinder's tuning memory: a persistent,
// content-addressed store of completed session outcomes that later
// sessions query to warm-start their search (§4.2's cross-similarity
// insight made durable). Each entry records what a finished session
// learned — the application name, the configuration-space fingerprint,
// the permutation-importance profile of its observation history, its
// best-K configurations as canonical KV maps, and optionally the DeepTune
// model weights — keyed by the SHA-256 digest of its canonical JSON
// encoding, the same digest discipline internal/artifact applies to
// build products.
//
// Determinism is the design constraint, as everywhere in Wayfinder:
//
//   - Entries are canonical JSON (encoding/json sorts map keys; struct
//     fields serialize in declaration order), so the same outcome always
//     produces the same digest and deposits are idempotent.
//   - The similarity index is a pure function of (corpus contents, query
//     app/space, k): neighbors rank by forest.Similarity over importance
//     vectors with stable tie-breaking on (observations, digest), never
//     on insertion order or clock time.
//   - The store hash covers the sorted entry-digest set, so any two
//     corpora with the same contents hash identically regardless of
//     deposit order — which is what lets a warm-started session remain a
//     pure function of (seed, workers, staleness, hosts, schedule,
//     corpus hash).
//
// Unlike artifact.Store (lock-free, engine-serialized), a corpus.Store is
// safe for concurrent use: the wfd daemon shares one store across many
// concurrently-stepped sessions, and deposits are commutative set inserts
// so interleaving cannot perturb contents.
package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"wayfinder/internal/forest"
)

// SeedConfig is one transferable configuration: a canonical KV assignment
// (configspace.Config.KV encoding — only non-default parameters appear)
// plus the metric it achieved in the depositing session, kept for
// human inspection and ranking.
type SeedConfig struct {
	// ConfigKV is the canonical non-default KV rendering of the config.
	ConfigKV map[string]string `json:"config_kv"`
	// Metric is the raw metric the config scored at deposit time.
	Metric float64 `json:"metric"`
}

// Entry is one completed session's transferable outcome.
type Entry struct {
	// App names the tuned application (simos.App.Name).
	App string `json:"app"`
	// Space is the configspace.Space fingerprint the entry was tuned
	// over. Warm-start queries only ever match entries with the querying
	// session's exact space fingerprint.
	Space string `json:"space"`
	// Metric names the metric that produced the scores.
	Metric string `json:"metric,omitempty"`
	// Maximize records the metric direction.
	Maximize bool `json:"maximize"`
	// Seed is the depositing session's seed, for provenance.
	Seed uint64 `json:"seed"`
	// Observations is how many observations the depositing session made —
	// the "how much did this session learn" weight used by ranking and
	// eviction.
	Observations int `json:"observations"`
	// Importance is the unit-L2 permutation-importance vector fitted over
	// the session's observation history (forest.Importance): the entry's
	// coordinates in the cross-application similarity space of Fig 5.
	Importance []float64 `json:"importance"`
	// Seeds are the session's best configurations, best-first.
	Seeds []SeedConfig `json:"seeds"`
	// DTM is an optional encoded nn.Snapshot of the session's DeepTune
	// model, for weight-level transfer.
	DTM json.RawMessage `json:"dtm,omitempty"`
}

// digest returns the entry's content address: SHA-256 over its canonical
// JSON encoding.
func (e *Entry) digest() (string, []byte, error) {
	data, err := json.Marshal(e)
	if err != nil {
		return "", nil, fmt.Errorf("corpus: encode entry: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), data, nil
}

// WarmStart is the answer to a warm-start query: what a new session
// should try first.
type WarmStart struct {
	// Hash is the corpus hash at query time — the value sessions fold
	// into their reports so a warm-started report names the memory it
	// drew from.
	Hash string
	// Seeds are up to k seed configurations, best neighbor first,
	// deduplicated by canonical KV.
	Seeds []map[string]string
	// DTM is the encoded nn.Snapshot of the nearest neighbor that has
	// one (nil if none do).
	DTM json.RawMessage
	// From lists the digests of the entries that contributed, nearest
	// first.
	From []string
}

// Store is a corpus of entries, optionally backed by a directory of
// one-file-per-entry canonical JSON. A Store with no directory is
// memory-only (tests, single-process experiments).
type Store struct {
	mu      sync.Mutex
	dir     string
	entries map[string]*Entry // digest → entry
}

// Open loads a corpus from dir, creating it if needed. Every *.json file
// must be a valid entry whose digest matches its filename — a corrupt or
// tampered file is a loud error, not a silent skip. An empty dir opens a
// memory-only store.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, entries: map[string]*Entry{}}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", filepath.Base(name), err)
		}
		d, _, err := e.digest()
		if err != nil {
			return nil, err
		}
		want := strings.TrimSuffix(filepath.Base(name), ".json")
		if d != want {
			return nil, fmt.Errorf("corpus: %s: content digest %s does not match filename", filepath.Base(name), d)
		}
		s.entries[d] = &e
	}
	return s, nil
}

// Dir returns the backing directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// Deposit stores the entry, writing it to the backing directory when one
// is configured (atomically: temp file + rename). Depositing an entry the
// corpus already holds is an idempotent no-op — content addressing makes
// re-deposits free. Returns the entry's digest.
func (s *Store) Deposit(e *Entry) (string, error) {
	d, data, err := e.digest()
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[d]; dup {
		return d, nil
	}
	if s.dir != "" {
		if err := writeFileAtomic(filepath.Join(s.dir, d+".json"), data); err != nil {
			return "", fmt.Errorf("corpus: %w", err)
		}
	}
	cp := *e
	s.entries[d] = &cp
	return d, nil
}

// Len returns the number of entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Digests returns every entry digest in lexical order.
func (s *Store) Digests() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.digestsLocked()
}

func (s *Store) digestsLocked() []string {
	out := make([]string, 0, len(s.entries))
	for d := range s.entries { //wfvet:ignore maprange sorted immediately below
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Get returns the entry with the given digest.
func (s *Store) Get(digest string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	return e, ok
}

// Hash returns the corpus content hash: SHA-256 over the sorted entry
// digests. Deposit order never matters; an empty corpus hashes to "" so
// cold-start code paths can treat "no corpus" and "empty corpus"
// identically.
func (s *Store) Hash() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return ""
	}
	h := sha256.New()
	for _, d := range s.digestsLocked() {
		fmt.Fprintln(h, d)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// neighbor pairs an entry with its rank key during a query.
type neighbor struct {
	digest string
	entry  *Entry
	sim    float64
}

// rank returns the store's entries for the given space fingerprint in
// warm-start order. When the corpus already holds an entry for the same
// app, the highest-observation such entry (ties: lowest digest) anchors
// the query vector and candidates rank by descending forest.Similarity
// to it — the Fig 5 cross-similarity lookup. With no same-app anchor the
// ranking degrades to (observations desc, digest asc): the most
// experienced entries first, still fully deterministic, which is what
// lets a first-ever nginx session borrow from redis. Pure function of
// (corpus contents, app, space).
func (s *Store) rank(app, space string) []neighbor {
	var cands []neighbor
	for _, d := range s.digestsLocked() {
		e := s.entries[d]
		if e.Space != space {
			continue
		}
		cands = append(cands, neighbor{digest: d, entry: e})
	}
	var anchor *Entry
	for i := range cands {
		e := cands[i].entry
		if e.App != app {
			continue
		}
		if anchor == nil || e.Observations > anchor.Observations {
			anchor = e // digests are pre-sorted, so ties keep the lowest
		}
	}
	if anchor != nil {
		for i := range cands {
			cands[i].sim = forest.Similarity(anchor.Importance, cands[i].entry.Importance)
		}
		sort.SliceStable(cands, func(i, j int) bool {
			//wfvet:ignore floateq sort tie-break: both sims come from the same pure function over identical stored vectors, so exact equality is the determinism-correct discriminator
			if cands[i].sim != cands[j].sim {
				return cands[i].sim > cands[j].sim
			}
			if cands[i].entry.Observations != cands[j].entry.Observations {
				return cands[i].entry.Observations > cands[j].entry.Observations
			}
			return cands[i].digest < cands[j].digest
		})
	} else {
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].entry.Observations != cands[j].entry.Observations {
				return cands[i].entry.Observations > cands[j].entry.Observations
			}
			return cands[i].digest < cands[j].digest
		})
	}
	return cands
}

// Query returns the digests of the k nearest entries for (app, space),
// nearest first — the similarity index surfaced for inspection (wfctl
// corpus show) and tests. k <= 0 returns all matches.
func (s *Store) Query(app, space string, k int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ranked := s.rank(app, space)
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]string, len(ranked))
	for i, n := range ranked {
		out[i] = n.digest
	}
	return out
}

// WarmStart answers a warm-start query: up to k seed configurations
// drawn from the ranked neighbors (each neighbor's best configs first,
// deduplicated by canonical KV), the nearest available DTM snapshot, and
// the corpus hash the answer was computed against. Returns nil when the
// corpus holds nothing for the space — the caller's cold-start path.
func (s *Store) WarmStart(app, space string, k int) *WarmStart {
	s.mu.Lock()
	defer s.mu.Unlock()
	ranked := s.rank(app, space)
	if len(ranked) == 0 || k <= 0 {
		return nil
	}
	ws := &WarmStart{}
	seen := map[string]bool{}
	for _, n := range ranked {
		used := false
		for _, sc := range n.entry.Seeds {
			if len(ws.Seeds) >= k {
				break
			}
			key := kvKey(sc.ConfigKV)
			if seen[key] {
				continue
			}
			seen[key] = true
			kv := make(map[string]string, len(sc.ConfigKV))
			for name, v := range sc.ConfigKV { //wfvet:ignore maprange plain copy into a map
				kv[name] = v
			}
			ws.Seeds = append(ws.Seeds, kv)
			used = true
		}
		if ws.DTM == nil && len(n.entry.DTM) > 0 {
			ws.DTM = append(json.RawMessage(nil), n.entry.DTM...)
			used = true
		}
		if used {
			ws.From = append(ws.From, n.digest)
		}
		if len(ws.Seeds) >= k && ws.DTM != nil {
			break
		}
	}
	if len(ws.Seeds) == 0 && ws.DTM == nil {
		return nil
	}
	// Hash inline: mu is already held.
	h := sha256.New()
	for _, d := range s.digestsLocked() {
		fmt.Fprintln(h, d)
	}
	ws.Hash = hex.EncodeToString(h.Sum(nil))
	return ws
}

// kvKey renders a KV map canonically (sorted keys) for deduplication.
func kvKey(kv map[string]string) string {
	names := make([]string, 0, len(kv))
	for name := range kv { //wfvet:ignore maprange sorted immediately below
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(kv[name])
		b.WriteByte('\n')
	}
	return b.String()
}

// GC compacts the corpus down to at most max entries, keeping the most
// valuable ones by (observations desc, digest asc) — sessions that
// learned from more observations carry more transferable signal. Removed
// entries are deleted from the backing directory. Returns the digests
// removed, in lexical order. max <= 0 keeps everything.
func (s *Store) GC(max int) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if max <= 0 || len(s.entries) <= max {
		return nil, nil
	}
	type keyed struct {
		digest string
		obs    int
	}
	all := make([]keyed, 0, len(s.entries))
	for _, d := range s.digestsLocked() {
		all = append(all, keyed{digest: d, obs: s.entries[d].Observations})
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].obs != all[j].obs {
			return all[i].obs > all[j].obs
		}
		return all[i].digest < all[j].digest
	})
	var removed []string
	for _, kd := range all[max:] {
		if s.dir != "" {
			if err := os.Remove(filepath.Join(s.dir, kd.digest+".json")); err != nil && !os.IsNotExist(err) {
				return removed, fmt.Errorf("corpus: gc: %w", err)
			}
		}
		delete(s.entries, kd.digest)
		removed = append(removed, kd.digest)
	}
	sort.Strings(removed)
	return removed, nil
}

// writeFileAtomic writes data to path via a temp file + rename, so
// readers never observe a partial entry.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".corpus-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
