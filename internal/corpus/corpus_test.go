package corpus

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// entry builds a synthetic corpus entry; imp is the importance profile,
// obs the observation weight.
func entry(app string, imp []float64, obs int, seeds ...string) *Entry {
	e := &Entry{
		App:          app,
		Space:        "space-a",
		Metric:       "perf",
		Maximize:     true,
		Observations: obs,
		Importance:   imp,
	}
	for i, s := range seeds {
		e.Seeds = append(e.Seeds, SeedConfig{
			ConfigKV: map[string]string{"knob": s},
			Metric:   float64(100 - i),
		})
	}
	return e
}

// TestDepositRoundTrip: deposits persist as canonical JSON addressed by
// their content digest, re-deposits are idempotent, and Open reloads the
// exact same corpus (same hash, same entries).
func TestDepositRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := st.Deposit(entry("nginx", []float64{1, 0}, 40, "a"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := st.Deposit(entry("nginx", []float64{1, 0}, 40, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("identical entries got digests %s and %s", d1, d2)
	}
	if st.Len() != 1 {
		t.Fatalf("idempotent re-deposit grew the corpus to %d entries", st.Len())
	}
	if _, err := st.Deposit(entry("redis", []float64{0, 1}, 30, "b")); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.Hash() != st.Hash() || re.Len() != st.Len() {
		t.Fatalf("reloaded corpus differs: hash %s vs %s, len %d vs %d",
			re.Hash(), st.Hash(), re.Len(), st.Len())
	}
	got, ok := re.Get(d1)
	if !ok || got.App != "nginx" || got.Seeds[0].ConfigKV["knob"] != "a" {
		t.Fatalf("reloaded entry %s is wrong: %+v (ok=%v)", d1, got, ok)
	}
}

// TestOpenRejectsTamper: an entry file whose content no longer matches
// its digest filename is a loud error, not a silent skip.
func TestOpenRejectsTamper(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	d, err := st.Deposit(entry("nginx", []float64{1}, 10, "a"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, d+".json")
	if err := os.WriteFile(path, []byte(`{"app":"evil","space":"space-a","maximize":true,"seed":0,"observations":10,"importance":[1],"seeds":null}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a tampered entry file")
	}
}

// TestQueryDeterminism: the ranked answer is a pure function of corpus
// contents — identical across repeated queries and across stores built by
// depositing the same entries in different orders.
func TestQueryDeterminism(t *testing.T) {
	entries := []*Entry{
		entry("nginx", []float64{1, 0, 0}, 50, "n1", "n2"),
		entry("redis", []float64{0.9, 0.1, 0}, 40, "r1"),
		entry("sqlite", []float64{0, 0, 1}, 60, "s1"),
		entry("npb", []float64{0.7, 0.3, 0}, 40, "p1"),
	}
	a, _ := Open("")
	for _, e := range entries {
		if _, err := a.Deposit(e); err != nil {
			t.Fatal(err)
		}
	}
	b, _ := Open("")
	for i := len(entries) - 1; i >= 0; i-- {
		if _, err := b.Deposit(entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("deposit order changed the corpus hash: %s vs %s", a.Hash(), b.Hash())
	}
	qa := a.Query("nginx", "space-a", 0)
	qb := b.Query("nginx", "space-a", 0)
	if !reflect.DeepEqual(qa, qb) {
		t.Fatalf("deposit order changed the query answer:\n%v\n%v", qa, qb)
	}
	if !reflect.DeepEqual(qa, a.Query("nginx", "space-a", 0)) {
		t.Fatal("repeated query returned a different answer")
	}
	// With a same-app anchor, the nearest-by-importance neighbor (redis)
	// must outrank the farther ones; the anchor itself ranks first.
	if len(qa) != 4 {
		t.Fatalf("query returned %d entries, want 4", len(qa))
	}
	first, _ := a.Get(qa[0])
	second, _ := a.Get(qa[1])
	last, _ := a.Get(qa[3])
	if first.App != "nginx" || second.App != "redis" || last.App != "sqlite" {
		t.Fatalf("ranking wrong: got %s, %s, …, %s; want nginx, redis, …, sqlite",
			first.App, second.App, last.App)
	}
}

// TestQueryFiltersSpace: entries from a different space fingerprint never
// surface, whatever their app or similarity.
func TestQueryFiltersSpace(t *testing.T) {
	st, _ := Open("")
	e := entry("nginx", []float64{1, 0}, 50, "a")
	e.Space = "space-b"
	if _, err := st.Deposit(e); err != nil {
		t.Fatal(err)
	}
	if got := st.Query("nginx", "space-a", 0); len(got) != 0 {
		t.Fatalf("query crossed space fingerprints: %v", got)
	}
	if ws := st.WarmStart("nginx", "space-a", 4); ws != nil {
		t.Fatalf("warm start crossed space fingerprints: %+v", ws)
	}
}

// TestWarmStart: seeds arrive best-neighbor-first, deduplicated by
// canonical KV, truncated to k; the DTM comes from the nearest neighbor
// holding one; empty corpora and k=0 answer nil.
func TestWarmStart(t *testing.T) {
	st, _ := Open("")
	if ws := st.WarmStart("nginx", "space-a", 4); ws != nil {
		t.Fatalf("empty corpus answered a warm start: %+v", ws)
	}
	near := entry("nginx", []float64{1, 0, 0}, 50, "n1", "dup")
	mid := entry("redis", []float64{0.9, 0.1, 0}, 40, "dup", "r2")
	mid.DTM = []byte(`{"tensors":{"w":[1,2]}}`)
	far := entry("sqlite", []float64{0, 0, 1}, 60, "s1")
	far.DTM = []byte(`{"tensors":{"w":[9,9]}}`)
	for _, e := range []*Entry{near, mid, far} {
		if _, err := st.Deposit(e); err != nil {
			t.Fatal(err)
		}
	}
	if ws := st.WarmStart("nginx", "space-a", 0); ws != nil {
		t.Fatalf("k=0 answered a warm start: %+v", ws)
	}
	ws := st.WarmStart("nginx", "space-a", 3)
	if ws == nil {
		t.Fatal("warm start answered nil on a populated corpus")
	}
	if ws.Hash != st.Hash() {
		t.Fatalf("warm start hash %s, corpus hash %s", ws.Hash, st.Hash())
	}
	want := []string{"n1", "dup", "r2"}
	if len(ws.Seeds) != len(want) {
		t.Fatalf("got %d seeds, want %d: %v", len(ws.Seeds), len(want), ws.Seeds)
	}
	for i, w := range want {
		if ws.Seeds[i]["knob"] != w {
			t.Fatalf("seed %d = %v, want knob=%s", i, ws.Seeds[i], w)
		}
	}
	// The DTM must come from redis (nearest holder), not sqlite.
	if string(ws.DTM) != `{"tensors":{"w":[1,2]}}` {
		t.Fatalf("DTM came from the wrong neighbor: %s", ws.DTM)
	}
}

// TestGC: compaction keeps the most-observed entries with stable
// tie-breaking, removes the rest from disk, and survives a reload.
func TestGC(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	for i, e := range []*Entry{
		entry("a", []float64{1, 0}, 10, "x"),
		entry("b", []float64{0, 1}, 30, "y"),
		entry("c", []float64{1, 1}, 20, "z"),
	} {
		if _, err := st.Deposit(e); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
	}
	if removed, err := st.GC(5); err != nil || removed != nil {
		t.Fatalf("GC above len removed %v (err %v)", removed, err)
	}
	removed, err := st.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || st.Len() != 2 {
		t.Fatalf("GC(2) removed %v, left %d entries", removed, st.Len())
	}
	for _, d := range st.Digests() {
		e, _ := st.Get(d)
		if e.Observations == 10 {
			t.Fatal("GC kept the least-observed entry")
		}
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Hash() != st.Hash() {
		t.Fatalf("post-GC reload differs: %s vs %s", re.Hash(), st.Hash())
	}
}

// TestEmptyHash: an empty corpus hashes to "", so cold-start code can
// treat "no corpus" and "empty corpus" identically.
func TestEmptyHash(t *testing.T) {
	st, _ := Open("")
	if h := st.Hash(); h != "" {
		t.Fatalf("empty corpus hash %q, want \"\"", h)
	}
}
