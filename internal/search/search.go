// Package search defines Wayfinder's pluggable search-algorithm API
// (§3.1) and the four strategies the paper evaluates: random search, grid
// search, Bayesian optimization, and DeepTune — plus the Unicorn-style
// causal-inference comparator used in the Fig 7 scalability study.
//
// Searchers interact with the platform through Propose/Observe: the
// platform asks for the next configuration to evaluate and reports back
// the measured metric, whether the configuration crashed, and at which
// stage — exactly the information the paper's API exposes ("the history
// of configurations explored, the corresponding performance results,
// which configurations resulted in build failure or runtime crashes").
package search

import (
	"math"
	"time"

	"wayfinder/internal/causal"
	"wayfinder/internal/configspace"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/gp"
	"wayfinder/internal/rng"
)

// Observation is one evaluated configuration reported to a searcher.
type Observation struct {
	// Config is the evaluated configuration.
	Config *configspace.Config
	// X is its encoded feature vector.
	X []float64
	// Metric is the measured value (undefined when Crashed).
	Metric float64
	// Crashed reports any build/boot/run failure.
	Crashed bool
	// Stage names the failing stage ("build", "boot", "run", "ok").
	Stage string
}

// Decision-cost stopwatches. Searchers charge their own real compute
// time — the paper's Fig 8 "update time" axis — so these two helpers are
// deliberately wall-clock: they measure the strategy's actual CPU cost,
// never feed the virtual session clock, and never influence what a
// searcher proposes. Keeping the time.Now/time.Since pair here, behind
// two reviewed pragmas, is what lets the walltime analyzer ban the wall
// clock everywhere else in the package.

// accrue starts a stopwatch that adds its elapsed time to *cost when the
// returned func runs: `defer accrue(&s.cost)()`.
func accrue(cost *time.Duration) func() {
	start := time.Now() //wfvet:ignore walltime decision cost measures real compute time (Fig 8), never session-visible state
	return func() {
		*cost += time.Since(start) //wfvet:ignore walltime decision cost measures real compute time (Fig 8), never session-visible state
	}
}

// restart zeroes *cost and starts a fresh stopwatch — the convention of
// searchers whose DecisionCost reports the last call, not a running sum.
func restart(cost *time.Duration) func() {
	*cost = 0
	return accrue(cost)
}

// Searcher decides which configuration to evaluate next.
type Searcher interface {
	// Name identifies the strategy.
	Name() string
	// Propose returns the next configuration to evaluate.
	Propose() *configspace.Config
	// Observe reports an evaluation result.
	Observe(o Observation)
	// DecisionCost returns the wall-clock time spent inside the last
	// Propose+Observe pair (the paper's Fig 8 "update time").
	DecisionCost() time.Duration
}

// Windowed is the optional extension of searchers whose learned surrogate
// can run over a bounded sliding window of recent observations instead of
// the full history — the knob that turns an O(n²)-per-decision session
// into a constant-cost one on long runs. SetSurrogateWindow(0) restores
// unbounded history; implementations reject degenerate windows with an
// explicit error. Bayesian and DeepTune implement it; memoryless
// strategies (random, grid) have nothing to bound and do not.
type Windowed interface {
	Searcher
	// SetSurrogateWindow bounds the surrogate's training history to the
	// most recent n observations (0 = unbounded). It must be called before
	// or between decisions, never mid-batch.
	SetSurrogateWindow(n int) error
}

// Random is the random-search baseline: every proposal is drawn uniformly
// from the space, deduplicated against history ("continuously generating
// unique configurations with random values for each parameter").
type Random struct {
	space *configspace.Space
	rng   *rng.RNG
	seen  map[uint64]bool
	cost  time.Duration
}

// NewRandom returns a random searcher.
func NewRandom(space *configspace.Space, seed uint64) *Random {
	return &Random{space: space, rng: rng.New(seed), seen: map[uint64]bool{}}
}

// Name implements Searcher.
func (s *Random) Name() string { return "random" }

// Propose implements Searcher.
func (s *Random) Propose() *configspace.Config {
	defer restart(&s.cost)()
	for attempt := 0; attempt < 64; attempt++ {
		c := s.space.Random(s.rng)
		if !s.seen[c.Hash()] {
			s.seen[c.Hash()] = true
			return c
		}
	}
	// Space effectively exhausted near the sampler: accept a duplicate.
	return s.space.Random(s.rng)
}

// Observe implements Searcher.
func (s *Random) Observe(Observation) {}

// DecisionCost implements Searcher.
func (s *Random) DecisionCost() time.Duration { return s.cost }

// RandomMutate is the random baseline for compile-time exploration (§4.4):
// instead of resampling every parameter — which on a space with essential
// boot options produces almost no bootable kernels — each proposal
// re-draws K randomly-chosen parameters from the space's default (for
// Fig 10/11, the distro or Cozart baseline).
type RandomMutate struct {
	space *configspace.Space
	k     int
	rng   *rng.RNG
	seen  map[uint64]bool
	cost  time.Duration
}

// NewRandomMutate returns a mutation-based random searcher.
func NewRandomMutate(space *configspace.Space, k int, seed uint64) *RandomMutate {
	return &RandomMutate{space: space, k: k, rng: rng.New(seed), seen: map[uint64]bool{}}
}

// Name implements Searcher.
func (s *RandomMutate) Name() string { return "random" }

// Propose implements Searcher.
func (s *RandomMutate) Propose() *configspace.Config {
	defer restart(&s.cost)()
	base := s.space.Default()
	for attempt := 0; attempt < 64; attempt++ {
		c := s.space.Mutate(base, s.k, s.rng)
		if !s.seen[c.Hash()] {
			s.seen[c.Hash()] = true
			return c
		}
	}
	return s.space.Mutate(base, s.k, s.rng)
}

// Observe implements Searcher.
func (s *RandomMutate) Observe(Observation) {}

// DecisionCost implements Searcher.
func (s *RandomMutate) DecisionCost() time.Duration { return s.cost }

// Grid explores the space systematically, one parameter value after the
// other: for each parameter in turn it steps through a small value grid
// while holding everything else at the incumbent default. The paper omits
// grid search from the evaluation as "well-known to be inferior to random
// search on large configuration spaces" — it is provided for completeness
// and for small spaces.
//
// Grid implements BatchSearcher natively: ProposeBatch walks the ladder
// directly instead of funnelling every slot through the AsBatch
// pending-set adapter. The pending bookkeeping (skip candidates that
// collide with a dispatched-but-unobserved proposal, accept a duplicate
// after proposeAttempts tries) matches the adapter's policy exactly, so
// the native path proposes the same sequence the adapter would.
type Grid struct {
	space   *configspace.Space
	base    *configspace.Config
	pending map[uint64]int

	paramIdx int
	valueIdx int
	cost     time.Duration
}

// NewGrid returns a grid searcher starting from the space defaults.
func NewGrid(space *configspace.Space) *Grid {
	return &Grid{space: space, base: space.Default(), pending: map[uint64]int{}}
}

// Name implements Searcher.
func (s *Grid) Name() string { return "grid" }

// gridValues returns the value grid for a parameter: full domains for
// bool/tristate/enum, a geometric ladder for integers.
func gridValues(p *configspace.Param) []configspace.Value {
	switch p.Type {
	case configspace.Bool:
		return []configspace.Value{configspace.BoolValue(false), configspace.BoolValue(true)}
	case configspace.Tristate:
		return []configspace.Value{
			configspace.TriValue(configspace.TriNo),
			configspace.TriValue(configspace.TriModule),
			configspace.TriValue(configspace.TriYes),
		}
	case configspace.Enum:
		out := make([]configspace.Value, len(p.Values))
		for i, v := range p.Values {
			out[i] = configspace.EnumValue(v)
		}
		return out
	default:
		var out []configspace.Value
		span := p.Max - p.Min
		if span >= 0 && span <= 8 {
			for v := p.Min; v <= p.Max; v++ {
				out = append(out, configspace.IntValue(v))
			}
			return out
		}
		// Geometric ladder from Min toward Max. The step is sign-safe:
		// negative values shrink toward zero (v*4+1 would diverge to
		// -inf), and the multiply near MaxInt64 is overflow-guarded.
		for v := p.Min; v < p.Max; {
			out = append(out, configspace.IntValue(v))
			switch {
			case v < 0:
				v /= 4
			case v > (math.MaxInt64-1)/4:
				v = p.Max
			default:
				v = v*4 + 1
			}
		}
		out = append(out, configspace.IntValue(p.Max))
		return out
	}
}

// step advances the ladder by one proposal — the walk shared by Propose
// and ProposeBatch.
func (s *Grid) step() *configspace.Config {
	wraps := 0
	for {
		if s.paramIdx >= s.space.Len() {
			// Wrapped the whole space: restart. A second consecutive wrap
			// without yielding means nothing is sweepable (every parameter
			// Fixed or in a zero-weight class) — return the base rather
			// than spinning forever.
			wraps++
			if wraps > 1 || s.space.Len() == 0 {
				return s.base.Clone()
			}
			s.paramIdx, s.valueIdx = 0, 0
		}
		p := s.space.Param(s.paramIdx)
		if p.Fixed || s.space.ClassWeight(p.Class) <= 0 {
			s.paramIdx++
			s.valueIdx = 0
			continue
		}
		values := gridValues(p)
		if s.valueIdx >= len(values) {
			s.paramIdx++
			s.valueIdx = 0
			continue
		}
		c := s.base.Clone()
		c.SetIndex(s.paramIdx, values[s.valueIdx])
		s.valueIdx++
		return c
	}
}

// Propose implements Searcher.
func (s *Grid) Propose() *configspace.Config {
	defer accrue(&s.cost)()
	return s.step()
}

// ProposeBatch implements BatchSearcher natively: up to n consecutive
// ladder steps, skipping candidates that collide with a pending proposal
// (a ladder step equal to the sweep base — its parameter's grid includes
// the incumbent value — can repeat within a window) for at most
// proposeAttempts tries each, exactly the adapter's policy.
func (s *Grid) ProposeBatch(n int) []*configspace.Config {
	defer accrue(&s.cost)()
	out := make([]*configspace.Config, 0, n)
	for len(out) < n {
		c := s.step()
		for attempt := 1; attempt < proposeAttempts && s.pending[c.Hash()] > 0; attempt++ {
			c = s.step()
		}
		s.pending[c.Hash()]++
		out = append(out, c)
	}
	return out
}

// Observe implements Searcher, clearing the configuration from the
// pending set. Grid learns nothing from the measurement itself: without
// direction knowledge it cannot rank, so the engine feeds the best
// configuration back via AdoptBase.
func (s *Grid) Observe(o Observation) {
	if o.Config != nil {
		if h := o.Config.Hash(); s.pending[h] > 0 {
			s.pending[h]--
		}
	}
}

// AdoptBase re-centers the sweep on a new base configuration.
func (s *Grid) AdoptBase(c *configspace.Config) { s.base = c.Clone() }

// Pending returns the number of proposed-but-unobserved batch proposals
// (counting duplicates), mirroring the adapter's diagnostic.
func (s *Grid) Pending() int {
	total := 0
	for _, c := range s.pending {
		total += c
	}
	return total
}

// DecisionCost implements Searcher with batch semantics: the searcher
// time consumed since the previous call, drained on read — so a round's
// ProposeBatch cost is attributed once, to the round's first recorded
// iteration, exactly as the adapter attributes it for the other
// strategies.
func (s *Grid) DecisionCost() time.Duration {
	c := s.cost
	s.cost = 0
	return c
}

// Bayesian is the Bayesian-optimization baseline: a Gaussian-process
// surrogate updated on every observation (an O(n²) incremental Cholesky
// extension — see package gp), proposing the candidate with maximum
// Expected Improvement over a random pool. Crashed configurations are
// taught to the surrogate as worst-case outcomes (BO has no native crash
// model — the deficiency §2.3 calls out).
//
// Bayesian implements BatchSearcher natively: ProposeBatch scores one
// shared candidate pool and fills later slots via constant-liar
// fantasized observations (each pick is speculatively taught to the
// surrogate at the incumbent best value, pushed in O(n²) and popped for
// free), so within a round later slots condition on earlier picks instead
// of proposing near-duplicates. The pending bookkeeping matches the
// AsBatch adapter's policy, and ProposeBatch(1) on an empty pending set
// reproduces Propose byte-for-byte — what keeps one-worker parallel
// sessions identical to sequential ones.
type Bayesian struct {
	space    *configspace.Space
	enc      *configspace.Encoder
	model    *gp.GP
	rng      *rng.RNG
	maximize bool

	poolSize  int
	best      float64
	haveBest  bool
	worst     float64
	haveWorst bool
	cost      time.Duration
	fitErrors int
	pending   map[uint64]int

	// Reusable proposal scratch: the candidate pool, its encodings and
	// hashes, and the batched-EI output, regrown once and reused so a
	// steady-state proposal allocates only the candidates themselves.
	pool       []*configspace.Config
	poolXs     [][]float64
	poolHashes []uint64
	poolEIs    []float64
}

// NewBayesian returns a Bayesian-optimization searcher.
func NewBayesian(space *configspace.Space, maximize bool, seed uint64) *Bayesian {
	return &Bayesian{
		space:    space,
		enc:      configspace.NewEncoder(space),
		model:    gp.New(0.35, 1.0, 1e-3),
		rng:      rng.New(seed),
		maximize: maximize,
		poolSize: 96,
		pending:  map[uint64]int{},
	}
}

// Name implements Searcher.
func (s *Bayesian) Name() string { return "bayesian" }

// SetSurrogateRefit forces the surrogate back to from-scratch O(n³)
// refactorization on every observation — the pre-incremental baseline the
// searcherscale experiment charts decision cost against.
func (s *Bayesian) SetSurrogateRefit(on bool) { s.model.SetForceRefit(on) }

// hyperAdaptEvery is the online hyperparameter-adaptation cadence a
// windowed Bayesian searcher runs at: every this-many observations the
// surrogate grid-probes the (lengthScale, signalVar) neighborhood by log
// marginal likelihood and adopts an improvement. Windowed models need it —
// with only a recent slice of history in view, the construction-time
// hyperparameters can drift arbitrarily far from what the window supports.
const hyperAdaptEvery = 32

// SetSurrogateWindow implements Windowed: the GP trains on (and downdates
// out of) a sliding window of the most recent n observations, and online
// hyperparameter adaptation is switched on alongside (off again at n=0).
func (s *Bayesian) SetSurrogateWindow(n int) error {
	if err := s.model.SetWindow(n); err != nil {
		return err
	}
	if n > 0 {
		s.model.SetHyperAdapt(hyperAdaptEvery)
	} else {
		s.model.SetHyperAdapt(0)
	}
	return nil
}

// FitErrors returns how many surrogate fit failures proposals have
// absorbed (each one falls back to the best candidate scored so far, or a
// random draw when the failure hits before any candidate was scored).
func (s *Bayesian) FitErrors() int { return s.fitErrors }

// signed maps a metric into maximize direction.
func (s *Bayesian) signed(y float64) float64 {
	if s.maximize {
		return y
	}
	return -y
}

// Propose implements Searcher.
func (s *Bayesian) Propose() *configspace.Config {
	defer accrue(&s.cost)()
	return s.proposeOne()
}

// drawPool fills the reusable proposal scratch with poolSize fresh random
// candidates, their encodings, and their hashes — the same RNG draws and
// encode order the per-candidate loop consumed, just performed upfront so
// the pool can be scored with one kernel-matrix build and one triangular
// batch solve instead of poolSize scalar solves.
func (s *Bayesian) drawPool() {
	if s.pool == nil {
		s.pool = make([]*configspace.Config, s.poolSize)
		s.poolXs = make([][]float64, s.poolSize)
		s.poolHashes = make([]uint64, s.poolSize)
		s.poolEIs = make([]float64, s.poolSize)
	}
	for i := range s.pool {
		s.pool[i] = s.space.Random(s.rng)
		s.poolXs[i] = s.enc.Encode(s.pool[i])
		s.poolHashes[i] = s.pool[i].Hash()
	}
}

// proposeOne draws and scores one candidate pool — the single-proposal
// path Propose and the batch cold-start share. The whole pool is scored
// with one batched EI sweep (bit-identical to the scalar loop); on a
// surrogate fit failure the batch is all-or-nothing, so the fallback is
// the pool's first candidate — a random draw, exactly what the caller
// would get from an unscored pool — and the fit error is counted.
func (s *Bayesian) proposeOne() *configspace.Config {
	if s.model.Len() < 3 {
		return s.space.Random(s.rng)
	}
	s.drawPool()
	if err := s.model.ExpectedImprovementBatch(s.poolXs, s.best, 0.01, s.poolEIs); err != nil {
		s.fitErrors++
		return s.pool[0]
	}
	bestEI, bestIdx := -1.0, 0
	for i, ei := range s.poolEIs {
		if ei > bestEI {
			bestEI, bestIdx = ei, i
		}
	}
	return s.pool[bestIdx]
}

// ProposeBatch implements BatchSearcher natively. One shared pool of
// poolSize random candidates is drawn and encoded once; each slot scores
// the whole pool against the current surrogate — including the fantasized
// observations pushed for earlier slots (constant liar: each pick is
// speculatively taught at the incumbent best, so EI collapses around it
// and the next slot is steered elsewhere) — and picks the best-EI
// candidate not colliding with a pending proposal. All fantasy frames are
// popped before returning: the surrogate the next Observe updates is
// exactly the real-history one.
func (s *Bayesian) ProposeBatch(n int) []*configspace.Config {
	defer accrue(&s.cost)()
	out := make([]*configspace.Config, 0, n)
	if n == 1 {
		// A singleton batch is the adapter's propose-once path verbatim —
		// including the lazy pool draw, so even the fit-error early exit
		// consumes the RNG identically and the ProposeBatch(1) ≡ Propose
		// byte-equivalence holds on every code path.
		c := s.proposeOne()
		for attempt := 1; attempt < proposeAttempts && s.pending[c.Hash()] > 0; attempt++ {
			c = s.proposeOne()
		}
		s.pending[c.Hash()]++
		return append(out, c)
	}
	if s.model.Len() < 3 {
		// Cold start: each slot is a random draw, deduplicated against the
		// pending set for at most proposeAttempts tries — the adapter's
		// policy around the single-proposal cold path exactly.
		for len(out) < n {
			c := s.space.Random(s.rng)
			for attempt := 1; attempt < proposeAttempts && s.pending[c.Hash()] > 0; attempt++ {
				c = s.space.Random(s.rng)
			}
			s.pending[c.Hash()]++
			out = append(out, c)
		}
		return out
	}
	s.drawPool()
	defer s.model.PopAllFantasies()
	for slot := 0; slot < n; slot++ {
		// One batched EI sweep per slot: the fantasy pushed for the
		// previous pick changes the surrogate, so each slot re-scores the
		// shared pool — still one solve per slot instead of poolSize.
		bestEI, bestIdx := -1.0, -1
		if err := s.model.ExpectedImprovementBatch(s.poolXs, s.best, 0.01, s.poolEIs); err != nil {
			// All-or-nothing batch failure: fall back to the first
			// non-pending pool candidate (a random draw) and count it.
			s.fitErrors++
			for i := range s.pool {
				if s.pending[s.poolHashes[i]] == 0 {
					bestIdx = i
					break
				}
			}
		} else {
			for i := range s.pool {
				if s.pending[s.poolHashes[i]] > 0 {
					continue
				}
				if s.poolEIs[i] > bestEI {
					bestEI, bestIdx = s.poolEIs[i], i
				}
			}
		}
		var c *configspace.Config
		var h uint64
		if bestIdx >= 0 {
			c, h = s.pool[bestIdx], s.poolHashes[bestIdx]
			if slot < n-1 {
				// Constant liar: fantasize the pick at the incumbent best
				// (signed), so the next slot's EI avoids its neighborhood.
				// A push failure just skips the fantasy — the slot still
				// proposes, the pool is merely scored unconditioned.
				if err := s.model.PushFantasy(s.poolXs[bestIdx], s.best); err != nil {
					s.fitErrors++
				}
			}
		} else {
			// Every pool candidate is pending: fall back to fresh random
			// draws with the bounded dedup the adapter applies.
			c = s.space.Random(s.rng)
			for attempt := 1; attempt < proposeAttempts && s.pending[c.Hash()] > 0; attempt++ {
				c = s.space.Random(s.rng)
			}
			h = c.Hash()
		}
		s.pending[h]++
		out = append(out, c)
	}
	return out
}

// Pending returns the number of proposed-but-unobserved batch proposals
// (counting duplicates), mirroring the adapter's diagnostic.
func (s *Bayesian) Pending() int {
	total := 0
	for _, c := range s.pending {
		total += c
	}
	return total
}

// Observe implements Searcher, clearing the configuration from the
// pending set before teaching it to the surrogate.
func (s *Bayesian) Observe(o Observation) {
	defer accrue(&s.cost)()
	if o.Config != nil {
		if h := o.Config.Hash(); s.pending[h] > 0 {
			s.pending[h]--
		}
	}
	if o.Crashed {
		// Penalize with the worst observed value so far, in the signed
		// (maximize) direction — so on minimize objectives, where every
		// signed value is ≤ 0, a crash is never taught as an improvement.
		// Before the first successful observation there is no scale to
		// penalize against, so the crash is withheld from the surrogate
		// (Propose keeps sampling randomly until the model has points).
		if s.haveWorst {
			s.model.Add(o.X, s.worst)
		}
		return
	}
	y := s.signed(o.Metric)
	if !s.haveWorst || y < s.worst {
		s.worst, s.haveWorst = y, true
	}
	if !s.haveBest || y > s.best {
		s.best, s.haveBest = y, true
	}
	s.model.Add(o.X, y)
}

// DecisionCost implements Searcher with batch semantics: the searcher
// time consumed since the previous call, drained on read (Grid's
// convention) — sequentially the engine reads once per iteration, so the
// value is the iteration's Propose+Observe cost exactly as before; across
// a batch the round's proposal cost lands on the round's first recorded
// iteration, matching the adapter's attribution.
func (s *Bayesian) DecisionCost() time.Duration {
	c := s.cost
	s.cost = 0
	return c
}

// DeepTune adapts the deeptune.Selector to the Searcher interface,
// carrying the full history the DTM retrains on.
//
// DeepTune implements BatchSearcher natively: ProposeBatch ranks one
// shared candidate pool — one DTM forward pass per candidate, not per
// slot — and fills later slots under a diversity penalty (each pick joins
// the dissimilarity term's explored set), replacing the batchAdapter path
// for parallel/async sessions. ProposeBatch(1) on an empty pending set
// reproduces Propose byte-for-byte.
type DeepTune struct {
	sel *deeptune.Selector

	xs      [][]float64
	ys      []float64
	crashes []bool
	// obs is the replayable observation history (configs in canonical KV
	// form) the Checkpointable implementation serializes; the DTM's state
	// is a pure function of it, so a checkpoint need not version network
	// weights or optimizer buffers.
	obs          []deepTuneObs
	unreplayable bool // an observation carried no Config; checkpointing is off
	cost         time.Duration
	pending      map[uint64]int
	// window bounds the training history handed to the DTM (0 = full
	// history). The obs replay log stays complete regardless: a restore
	// replays every observation through the same trimming, reproducing the
	// windowed Update sequence exactly.
	window int
}

// NewDeepTune returns a DeepTune searcher.
func NewDeepTune(space *configspace.Space, maximize bool, cfg deeptune.Config) *DeepTune {
	return &DeepTune{sel: deeptune.NewSelector(space, maximize, cfg), pending: map[uint64]int{}}
}

// Name implements Searcher.
func (s *DeepTune) Name() string { return "deeptune" }

// Selector exposes the underlying selector (for transfer learning).
func (s *DeepTune) Selector() *deeptune.Selector { return s.sel }

// SetSurrogateWindow implements Windowed: the DTM retrains on (and the
// selector's dissimilarity term remembers) only the most recent n
// observations, bounding the per-iteration retrain cost that otherwise
// grows with the session.
func (s *DeepTune) SetSurrogateWindow(n int) error {
	if err := s.sel.SetWindow(n); err != nil {
		return err
	}
	s.window = n
	return nil
}

// Propose implements Searcher.
func (s *DeepTune) Propose() *configspace.Config {
	defer accrue(&s.cost)()
	return s.sel.Propose()
}

// ProposeBatch implements BatchSearcher natively (see the type comment),
// skipping candidates that collide with a pending proposal on a
// best-effort basis — the adapter's dedup policy.
func (s *DeepTune) ProposeBatch(n int) []*configspace.Config {
	defer accrue(&s.cost)()
	out := s.sel.ProposeBatch(n, func(c *configspace.Config) bool {
		return s.pending[c.Hash()] > 0
	})
	for _, c := range out {
		s.pending[c.Hash()]++
	}
	return out
}

// Pending returns the number of proposed-but-unobserved batch proposals
// (counting duplicates), mirroring the adapter's diagnostic.
func (s *DeepTune) Pending() int {
	total := 0
	for _, c := range s.pending {
		total += c
	}
	return total
}

// Observe implements Searcher, clearing the configuration from the
// pending set before retraining the DTM.
func (s *DeepTune) Observe(o Observation) {
	defer accrue(&s.cost)()
	if o.Config != nil {
		if h := o.Config.Hash(); s.pending[h] > 0 {
			s.pending[h]--
		}
	}
	s.xs = append(s.xs, o.X)
	s.ys = append(s.ys, o.Metric)
	s.crashes = append(s.crashes, o.Crashed)
	if s.window > 0 && len(s.xs) > s.window {
		// Slide the training window: copy-shift in place so the backing
		// arrays stop growing with the session. The obs replay log below
		// stays complete — it is the checkpoint recipe, not training state.
		drop := len(s.xs) - s.window
		s.xs = shiftTail(s.xs, drop)
		s.ys = shiftTail(s.ys, drop)
		s.crashes = shiftTail(s.crashes, drop)
	}
	if o.Config != nil {
		s.obs = append(s.obs, deepTuneObs{KV: o.Config.KV(), Metric: o.Metric, Crashed: o.Crashed, Stage: o.Stage})
	} else {
		s.unreplayable = true
	}
	// Selector.Observe never fails with aligned histories, which this
	// adapter maintains by construction.
	_ = s.sel.Observe(o.Config, o.X, o.Metric, o.Crashed, s.xs, s.ys, s.crashes)
}

// DecisionCost implements Searcher with batch semantics: the searcher
// time consumed since the previous call, drained on read (Grid's
// convention; see Bayesian.DecisionCost).
func (s *DeepTune) DecisionCost() time.Duration {
	c := s.cost
	s.cost = 0
	return c
}

// shiftTail drops the first drop elements of s in place — copy-shift, zero
// the vacated tail (releasing pointed-to memory), reslice — so a sliding
// window reuses its backing array instead of leaking it one append at a
// time.
func shiftTail[T any](s []T, drop int) []T {
	var zero T
	n := copy(s, s[drop:])
	for i := n; i < len(s); i++ {
		s[i] = zero
	}
	return s[:n]
}

// Unicorn adapts the causal-inference optimizer to the Searcher interface
// (Fig 7's comparator). Every Observe refits the causal graph from
// scratch — the scaling behaviour the figure measures.
type Unicorn struct {
	space    *configspace.Space
	enc      *configspace.Encoder
	opt      *causal.Optimizer
	rng      *rng.RNG
	maximize bool
	poolSize int
	cost     time.Duration
}

// NewUnicorn returns a causal-inference searcher.
func NewUnicorn(space *configspace.Space, maximize bool, seed uint64) *Unicorn {
	enc := configspace.NewEncoder(space)
	return &Unicorn{
		space:    space,
		enc:      enc,
		opt:      causal.New(enc.Dim(), maximize),
		rng:      rng.New(seed),
		maximize: maximize,
		poolSize: 64,
	}
}

// Name implements Searcher.
func (s *Unicorn) Name() string { return "unicorn" }

// Propose implements Searcher.
func (s *Unicorn) Propose() *configspace.Config {
	defer restart(&s.cost)()
	if s.opt.Len() < 5 {
		return s.space.Random(s.rng)
	}
	pool := make([]*configspace.Config, s.poolSize)
	feats := make([][]float64, s.poolSize)
	for i := range pool {
		pool[i] = s.space.Random(s.rng)
		feats[i] = s.enc.Encode(pool[i])
	}
	return pool[s.opt.SelectNext(feats)]
}

// Observe implements Searcher.
func (s *Unicorn) Observe(o Observation) {
	defer accrue(&s.cost)()
	y := o.Metric
	if o.Crashed {
		y = 0
		if !s.maximize {
			y = 1e12
		}
	}
	s.opt.Observe(o.X, y)
	s.opt.Fit()
}

// Optimizer exposes the causal optimizer (for Fig 7 cost accounting).
func (s *Unicorn) Optimizer() *causal.Optimizer { return s.opt }

// DecisionCost implements Searcher.
func (s *Unicorn) DecisionCost() time.Duration { return s.cost }
