package search

import (
	"maps"
	"math"
	"slices"
	"testing"
	"time"

	"wayfinder/internal/configspace"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/rng"
)

// toySpace returns a small space with one high-impact int and filler.
func toySpace() *configspace.Space {
	s := configspace.NewSpace("toy")
	s.MustAdd(&configspace.Param{Name: "knob", Type: configspace.Int, Class: configspace.Runtime,
		Min: 0, Max: 100, Default: configspace.IntValue(50)})
	s.MustAdd(&configspace.Param{Name: "flag", Type: configspace.Bool, Class: configspace.Runtime,
		Default: configspace.BoolValue(false)})
	s.MustAdd(&configspace.Param{Name: "mode", Type: configspace.Enum, Class: configspace.Runtime,
		Values: []string{"a", "b", "c"}, Default: configspace.EnumValue("a")})
	for i := 0; i < 4; i++ {
		s.MustAdd(&configspace.Param{Name: string(rune('w' + i)), Type: configspace.Int,
			Class: configspace.Runtime, Min: 0, Max: 10, Default: configspace.IntValue(5)})
	}
	return s
}

// toyObjective: y = knob, maximize. Crash when knob > 90.
func toyObjective(c *configspace.Config) (float64, bool) {
	k := float64(c.GetInt("knob", 0))
	return k, k > 90
}

// drive runs a searcher for n iterations against the toy objective and
// returns the best non-crashed metric.
func drive(t *testing.T, s Searcher, space *configspace.Space, n int) float64 {
	t.Helper()
	enc := configspace.NewEncoder(space)
	best := -1.0
	for i := 0; i < n; i++ {
		c := s.Propose()
		if c == nil {
			t.Fatal("nil proposal")
		}
		y, crashed := toyObjective(c)
		if !crashed && y > best {
			best = y
		}
		metric := y
		if crashed {
			metric = 0
		}
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: metric, Crashed: crashed, Stage: "run"})
	}
	return best
}

func TestRandomProposesUnique(t *testing.T) {
	space := toySpace()
	s := NewRandom(space, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		c := s.Propose()
		if seen[c.Hash()] {
			t.Fatal("random proposed a duplicate with plenty of space left")
		}
		seen[c.Hash()] = true
	}
}

func TestRandomRespectsFavor(t *testing.T) {
	space := toySpace()
	space.Favor(configspace.Runtime, 0) // pin everything
	s := NewRandom(space, 2)
	c := s.Propose()
	if len(c.Diff(space.Default())) != 0 {
		t.Fatal("zero-weight class was varied")
	}
}

func TestGridCoversDomains(t *testing.T) {
	space := toySpace()
	s := NewGrid(space)
	modes := map[string]bool{}
	flags := map[int64]bool{}
	for i := 0; i < 60; i++ {
		c := s.Propose()
		modes[c.GetString("mode", "")] = true
		flags[c.GetInt("flag", 0)] = true
	}
	if len(modes) != 3 {
		t.Fatalf("grid visited %d of 3 enum values", len(modes))
	}
	if len(flags) != 2 {
		t.Fatalf("grid visited %d of 2 bool values", len(flags))
	}
}

func TestGridChangesOneParamAtATime(t *testing.T) {
	space := toySpace()
	s := NewGrid(space)
	def := space.Default()
	for i := 0; i < 30; i++ {
		c := s.Propose()
		if len(def.Diff(c)) > 1 {
			t.Fatal("grid changed more than one parameter from base")
		}
	}
}

func TestGridSkipsFixed(t *testing.T) {
	space := toySpace()
	if err := space.Fix("knob", configspace.IntValue(42)); err != nil {
		t.Fatal(err)
	}
	s := NewGrid(space)
	for i := 0; i < 50; i++ {
		if c := s.Propose(); c.GetInt("knob", -1) != 42 {
			t.Fatal("grid varied a fixed parameter")
		}
	}
}

func TestBayesianFindsGoodRegion(t *testing.T) {
	space := toySpace()
	s := NewBayesian(space, true, 3)
	best := drive(t, s, space, 60)
	if best < 75 {
		t.Fatalf("bayesian best = %v, want ≥75", best)
	}
}

func TestBayesianMinimize(t *testing.T) {
	space := toySpace()
	s := NewBayesian(space, false, 4)
	enc := configspace.NewEncoder(space)
	bestLow := 1e9
	for i := 0; i < 50; i++ {
		c := s.Propose()
		y, crashed := toyObjective(c)
		if !crashed && y < bestLow {
			bestLow = y
		}
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: y, Crashed: crashed})
	}
	if bestLow > 20 {
		t.Fatalf("minimizing bayesian best = %v, want ≤20", bestLow)
	}
}

func TestDeepTuneFindsGoodRegionAndAvoidsCrashes(t *testing.T) {
	space := toySpace()
	cfg := deeptune.DefaultConfig()
	cfg.Epochs = 4
	cfg.Seed = 5
	s := NewDeepTune(space, true, cfg)
	best := drive(t, s, space, 80)
	if best < 75 {
		t.Fatalf("deeptune best = %v, want ≥75", best)
	}
	// After training, proposals should mostly avoid the crash zone.
	crashy := 0
	for i := 0; i < 30; i++ {
		if c := s.Propose(); c.GetInt("knob", 0) > 90 {
			crashy++
		}
	}
	if crashy > 10 {
		t.Fatalf("deeptune proposed %d/30 crash-zone configs after training", crashy)
	}
}

func TestUnicornImproves(t *testing.T) {
	space := toySpace()
	s := NewUnicorn(space, true, 6)
	best := drive(t, s, space, 40)
	if best < 70 {
		t.Fatalf("unicorn best = %v, want ≥70", best)
	}
	if s.Optimizer().Graphs() != 40 {
		t.Fatalf("unicorn refit %d times, want 40 (one per observation)", s.Optimizer().Graphs())
	}
}

func TestBayesianCrashPenaltyOnMinimize(t *testing.T) {
	// Regression: on minimize objectives every signed value is ≤ 0, so the
	// old zero-initialized `worst` taught crashes to the GP as the *best*
	// value seen, steering BO toward crashing regions. A crash must be
	// taught at the worst observed signed value instead.
	space := toySpace()
	s := NewBayesian(space, false, 1)
	enc := configspace.NewEncoder(space)
	r := rng.New(7)

	good := space.Random(r)
	bad := space.Random(r)
	crash := space.Random(r)
	s.Observe(Observation{Config: good, X: enc.Encode(good), Metric: 2})
	s.Observe(Observation{Config: bad, X: enc.Encode(bad), Metric: 5})
	if !s.haveWorst || s.worst != -5 {
		t.Fatalf("worst = %v (have %v), want -5 after observing metrics 2 and 5 on minimize", s.worst, s.haveWorst)
	}
	s.Observe(Observation{Config: crash, X: enc.Encode(crash), Crashed: true, Stage: "run"})
	if s.model.Len() != 3 {
		t.Fatalf("model has %d points, want 3 (crash taught as worst-case)", s.model.Len())
	}
	// The GP interpolates training points closely (tiny noise), so the
	// posterior mean at the crash point reveals the value it was taught:
	// the worst signed value (-5), not the old penalty of 0 — which on
	// minimize would have beaten every real observation.
	mean, _, err := s.model.Predict(enc.Encode(crash))
	if err != nil {
		t.Fatal(err)
	}
	if mean > -3 {
		t.Fatalf("crash taught near %v in signed space — an improvement over real observations; want ≈ -5", mean)
	}
}

func TestBayesianFirstObservationCrash(t *testing.T) {
	// Regression: the old worst-tracking guard (model.Len() == 0) broke
	// when the session opened with a crash — with no successful
	// observation there is no penalty scale, so the crash is withheld
	// from the surrogate instead of being taught as 0.
	space := toySpace()
	s := NewBayesian(space, false, 2)
	enc := configspace.NewEncoder(space)
	r := rng.New(8)
	crash := space.Random(r)
	s.Observe(Observation{Config: crash, X: enc.Encode(crash), Crashed: true, Stage: "build"})
	if s.model.Len() != 0 {
		t.Fatalf("model has %d points after an opening crash, want 0", s.model.Len())
	}
	if s.haveWorst {
		t.Fatal("a crash must not establish the worst-observed value")
	}
	ok := space.Random(r)
	s.Observe(Observation{Config: ok, X: enc.Encode(ok), Metric: 3})
	if !s.haveWorst || s.worst != -3 {
		t.Fatalf("worst = %v (have %v) after first success, want -3", s.worst, s.haveWorst)
	}
	// Crashes are penalizable again now that a scale exists.
	s.Observe(Observation{Config: crash, X: enc.Encode(crash), Crashed: true, Stage: "build"})
	if s.model.Len() != 2 {
		t.Fatalf("model has %d points, want 2", s.model.Len())
	}
}

func TestGridTerminatesOnUnsweepableSpace(t *testing.T) {
	// Regression: Propose spun forever when every parameter was Fixed or
	// in a zero-weight class — the wrap-around reset never yielded.
	space := toySpace()
	space.Favor(configspace.Runtime, 0) // every toy parameter is Runtime
	s := NewGrid(space)
	done := make(chan *configspace.Config, 1)
	go func() { done <- s.Propose() }()
	select {
	case c := <-done:
		if c == nil {
			t.Fatal("nil proposal")
		}
		if len(c.Diff(space.Default())) != 0 {
			t.Fatal("unsweepable space must fall back to the base configuration")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Grid.Propose hung on a space with no sweepable parameters")
	}
	// Same via Fix: pin every parameter individually.
	space2 := toySpace()
	for _, p := range space2.Params() {
		if err := space2.Fix(p.Name, p.Default); err != nil {
			t.Fatal(err)
		}
	}
	s2 := NewGrid(space2)
	go func() { done <- s2.Propose() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Grid.Propose hung on an all-Fixed space")
	}
}

func TestGridValuesNegativeMin(t *testing.T) {
	// Regression: the integer ladder v = v*4+1 diverged to -inf for
	// parameters with Min < 0 (unbounded allocation). The sign-safe
	// ladder shrinks negatives toward zero and still reaches Max.
	p := &configspace.Param{Name: "signed", Type: configspace.Int, Class: configspace.Runtime,
		Min: -100000, Max: 100000, Default: configspace.IntValue(0)}
	vals := gridValues(p)
	if len(vals) == 0 || len(vals) > 64 {
		t.Fatalf("ladder has %d values — diverged or empty", len(vals))
	}
	for i, v := range vals {
		if v.I < p.Min || v.I > p.Max {
			t.Fatalf("ladder value %d out of range [%d, %d]", v.I, p.Min, p.Max)
		}
		if i > 0 && v.I <= vals[i-1].I {
			t.Fatalf("ladder not strictly increasing: %d after %d", v.I, vals[i-1].I)
		}
	}
	if vals[0].I != p.Min || vals[len(vals)-1].I != p.Max {
		t.Fatalf("ladder endpoints [%d, %d], want [%d, %d]", vals[0].I, vals[len(vals)-1].I, p.Min, p.Max)
	}
}

func TestGridValuesHugeMax(t *testing.T) {
	// The ladder's multiply is overflow-guarded near MaxInt64.
	p := &configspace.Param{Name: "huge", Type: configspace.Int, Class: configspace.Runtime,
		Min: 1, Max: math.MaxInt64, Default: configspace.IntValue(1)}
	vals := gridValues(p)
	if len(vals) == 0 || len(vals) > 64 {
		t.Fatalf("ladder has %d values — overflow loop", len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i].I <= vals[i-1].I {
			t.Fatalf("ladder wrapped: %d after %d", vals[i].I, vals[i-1].I)
		}
	}
	if vals[len(vals)-1].I != math.MaxInt64 {
		t.Fatalf("ladder top %d, want MaxInt64", vals[len(vals)-1].I)
	}
}

func TestDecisionCostRecorded(t *testing.T) {
	space := toySpace()
	r := rng.New(1)
	_ = r
	for _, s := range []Searcher{
		NewRandom(space, 1),
		NewGrid(space),
		NewBayesian(space, true, 1),
		NewUnicorn(space, true, 1),
	} {
		enc := configspace.NewEncoder(space)
		c := s.Propose()
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: 1})
		if s.DecisionCost() < 0 {
			t.Fatalf("%s: negative decision cost", s.Name())
		}
	}
}

func TestSearcherNames(t *testing.T) {
	space := toySpace()
	names := map[string]Searcher{
		"random":   NewRandom(space, 1),
		"grid":     NewGrid(space),
		"bayesian": NewBayesian(space, true, 1),
		"deeptune": NewDeepTune(space, true, deeptune.DefaultConfig()),
		"unicorn":  NewUnicorn(space, true, 1),
	}
	for _, want := range slices.Sorted(maps.Keys(names)) {
		if s := names[want]; s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}
