package search

import (
	"testing"

	"wayfinder/internal/configspace"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/rng"
)

// toySpace returns a small space with one high-impact int and filler.
func toySpace() *configspace.Space {
	s := configspace.NewSpace("toy")
	s.MustAdd(&configspace.Param{Name: "knob", Type: configspace.Int, Class: configspace.Runtime,
		Min: 0, Max: 100, Default: configspace.IntValue(50)})
	s.MustAdd(&configspace.Param{Name: "flag", Type: configspace.Bool, Class: configspace.Runtime,
		Default: configspace.BoolValue(false)})
	s.MustAdd(&configspace.Param{Name: "mode", Type: configspace.Enum, Class: configspace.Runtime,
		Values: []string{"a", "b", "c"}, Default: configspace.EnumValue("a")})
	for i := 0; i < 4; i++ {
		s.MustAdd(&configspace.Param{Name: string(rune('w' + i)), Type: configspace.Int,
			Class: configspace.Runtime, Min: 0, Max: 10, Default: configspace.IntValue(5)})
	}
	return s
}

// toyObjective: y = knob, maximize. Crash when knob > 90.
func toyObjective(c *configspace.Config) (float64, bool) {
	k := float64(c.GetInt("knob", 0))
	return k, k > 90
}

// drive runs a searcher for n iterations against the toy objective and
// returns the best non-crashed metric.
func drive(t *testing.T, s Searcher, space *configspace.Space, n int) float64 {
	t.Helper()
	enc := configspace.NewEncoder(space)
	best := -1.0
	for i := 0; i < n; i++ {
		c := s.Propose()
		if c == nil {
			t.Fatal("nil proposal")
		}
		y, crashed := toyObjective(c)
		if !crashed && y > best {
			best = y
		}
		metric := y
		if crashed {
			metric = 0
		}
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: metric, Crashed: crashed, Stage: "run"})
	}
	return best
}

func TestRandomProposesUnique(t *testing.T) {
	space := toySpace()
	s := NewRandom(space, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		c := s.Propose()
		if seen[c.Hash()] {
			t.Fatal("random proposed a duplicate with plenty of space left")
		}
		seen[c.Hash()] = true
	}
}

func TestRandomRespectsFavor(t *testing.T) {
	space := toySpace()
	space.Favor(configspace.Runtime, 0) // pin everything
	s := NewRandom(space, 2)
	c := s.Propose()
	if len(c.Diff(space.Default())) != 0 {
		t.Fatal("zero-weight class was varied")
	}
}

func TestGridCoversDomains(t *testing.T) {
	space := toySpace()
	s := NewGrid(space)
	modes := map[string]bool{}
	flags := map[int64]bool{}
	for i := 0; i < 60; i++ {
		c := s.Propose()
		modes[c.GetString("mode", "")] = true
		flags[c.GetInt("flag", 0)] = true
	}
	if len(modes) != 3 {
		t.Fatalf("grid visited %d of 3 enum values", len(modes))
	}
	if len(flags) != 2 {
		t.Fatalf("grid visited %d of 2 bool values", len(flags))
	}
}

func TestGridChangesOneParamAtATime(t *testing.T) {
	space := toySpace()
	s := NewGrid(space)
	def := space.Default()
	for i := 0; i < 30; i++ {
		c := s.Propose()
		if len(def.Diff(c)) > 1 {
			t.Fatal("grid changed more than one parameter from base")
		}
	}
}

func TestGridSkipsFixed(t *testing.T) {
	space := toySpace()
	if err := space.Fix("knob", configspace.IntValue(42)); err != nil {
		t.Fatal(err)
	}
	s := NewGrid(space)
	for i := 0; i < 50; i++ {
		if c := s.Propose(); c.GetInt("knob", -1) != 42 {
			t.Fatal("grid varied a fixed parameter")
		}
	}
}

func TestBayesianFindsGoodRegion(t *testing.T) {
	space := toySpace()
	s := NewBayesian(space, true, 3)
	best := drive(t, s, space, 60)
	if best < 75 {
		t.Fatalf("bayesian best = %v, want ≥75", best)
	}
}

func TestBayesianMinimize(t *testing.T) {
	space := toySpace()
	s := NewBayesian(space, false, 4)
	enc := configspace.NewEncoder(space)
	bestLow := 1e9
	for i := 0; i < 50; i++ {
		c := s.Propose()
		y, crashed := toyObjective(c)
		if !crashed && y < bestLow {
			bestLow = y
		}
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: y, Crashed: crashed})
	}
	if bestLow > 20 {
		t.Fatalf("minimizing bayesian best = %v, want ≤20", bestLow)
	}
}

func TestDeepTuneFindsGoodRegionAndAvoidsCrashes(t *testing.T) {
	space := toySpace()
	cfg := deeptune.DefaultConfig()
	cfg.Epochs = 4
	cfg.Seed = 5
	s := NewDeepTune(space, true, cfg)
	best := drive(t, s, space, 80)
	if best < 75 {
		t.Fatalf("deeptune best = %v, want ≥75", best)
	}
	// After training, proposals should mostly avoid the crash zone.
	crashy := 0
	for i := 0; i < 30; i++ {
		if c := s.Propose(); c.GetInt("knob", 0) > 90 {
			crashy++
		}
	}
	if crashy > 10 {
		t.Fatalf("deeptune proposed %d/30 crash-zone configs after training", crashy)
	}
}

func TestUnicornImproves(t *testing.T) {
	space := toySpace()
	s := NewUnicorn(space, true, 6)
	best := drive(t, s, space, 40)
	if best < 70 {
		t.Fatalf("unicorn best = %v, want ≥70", best)
	}
	if s.Optimizer().Graphs() != 40 {
		t.Fatalf("unicorn refit %d times, want 40 (one per observation)", s.Optimizer().Graphs())
	}
}

func TestDecisionCostRecorded(t *testing.T) {
	space := toySpace()
	r := rng.New(1)
	_ = r
	for _, s := range []Searcher{
		NewRandom(space, 1),
		NewGrid(space),
		NewBayesian(space, true, 1),
		NewUnicorn(space, true, 1),
	} {
		enc := configspace.NewEncoder(space)
		c := s.Propose()
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: 1})
		if s.DecisionCost() < 0 {
			t.Fatalf("%s: negative decision cost", s.Name())
		}
	}
}

func TestSearcherNames(t *testing.T) {
	space := toySpace()
	names := map[string]Searcher{
		"random":   NewRandom(space, 1),
		"grid":     NewGrid(space),
		"bayesian": NewBayesian(space, true, 1),
		"deeptune": NewDeepTune(space, true, deeptune.DefaultConfig()),
		"unicorn":  NewUnicorn(space, true, 1),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}
