package search

import (
	"time"

	"wayfinder/internal/configspace"
)

// BatchSearcher extends Searcher with the batch protocol the parallel
// evaluation engine speaks: the platform asks for up to n configurations
// at once, hands them to concurrent workers, and reports results back
// through Observe as evaluations finish. A configuration that has been
// proposed but not yet observed is "pending"; ProposeBatch avoids pending
// configurations so two workers don't evaluate the same candidate —
// falling back to a duplicate only when the strategy cannot produce
// enough distinct proposals (a duplicate evaluation beats a deadlock).
type BatchSearcher interface {
	Searcher
	// ProposeBatch returns up to n configurations to evaluate, avoiding
	// pending ones on a best-effort basis. Implementations may return
	// fewer than n (but at least one for n >= 1) when the strategy
	// cannot produce n distinct candidates.
	ProposeBatch(n int) []*configspace.Config
}

// AsBatch adapts a Searcher to the batch protocol. Searchers that already
// implement BatchSearcher are returned unchanged — Grid walks its ladder
// natively, Bayesian fills batches via constant-liar fantasized
// observations on its incremental surrogate, and DeepTune ranks one
// shared pool under a diversity penalty. Everything else — the
// single-proposal Random, RandomMutate, and Unicorn strategies — is
// wrapped in a pending-set adapter, so they keep working with the
// parallel engine without modification.
func AsBatch(s Searcher) BatchSearcher {
	if b, ok := s.(BatchSearcher); ok {
		return b
	}
	return &batchAdapter{Searcher: s, pending: map[uint64]int{}}
}

// batchAdapter lifts a single-proposal Searcher to BatchSearcher. It
// tracks pending configurations by hash and re-asks the underlying
// strategy when a proposal collides with the pending set; after
// proposeAttempts tries it accepts the duplicate rather than spinning on
// a strategy that keeps proposing the same candidate (the same
// accept-after-bounded-attempts policy the searchers apply to their own
// history dedup).
//
// The adapter is not itself goroutine-safe: the engine calls ProposeBatch
// and Observe from its coordinator only, and workers never touch the
// searcher — that is what makes parallel sessions deterministic.
//
// Cost accounting reuses the wrapped searcher's own measurements instead
// of re-timing calls with a second stopwatch: every strategy resets its
// accumulator in Propose and accrues into it in Observe, so the adapter
// pulls the full value after each Propose and only the delta after each
// Observe. Each self-reported interval is therefore counted exactly once
// — re-measuring Observe externally while later also pulling the wrapped
// accumulator would double-count the model-update time that dominates
// the Fig 8 numbers for Bayesian/DeepTune/Unicorn.
type batchAdapter struct {
	Searcher
	pending map[uint64]int
	cost    time.Duration
	// lastWrapped is the wrapped searcher's DecisionCost at the last pull,
	// used to extract Observe deltas from its monotone accumulator.
	lastWrapped time.Duration
}

// proposeAttempts bounds how often the adapter re-asks the wrapped
// strategy for a candidate that collides with the pending set.
const proposeAttempts = 16

// propose asks the wrapped strategy for one candidate and accrues its
// self-reported proposal cost (Propose resets the wrapped accumulator, so
// the post-call value is exactly this call's cost).
func (b *batchAdapter) propose() *configspace.Config {
	c := b.Searcher.Propose()
	d := b.Searcher.DecisionCost()
	b.cost += d
	b.lastWrapped = d
	return c
}

// ProposeBatch implements BatchSearcher.
func (b *batchAdapter) ProposeBatch(n int) []*configspace.Config {
	out := make([]*configspace.Config, 0, n)
	for len(out) < n {
		c := b.propose()
		for attempt := 1; attempt < proposeAttempts && b.pending[c.Hash()] > 0; attempt++ {
			c = b.propose()
		}
		b.pending[c.Hash()]++
		out = append(out, c)
	}
	return out
}

// Observe implements Searcher, clearing the configuration from the
// pending set before forwarding to the wrapped strategy. The observation
// cost is the delta the wrapped searcher accrued into its own accumulator
// — never an external re-measurement, which would count the same
// model-update time twice.
func (b *batchAdapter) Observe(o Observation) {
	if o.Config != nil {
		if h := o.Config.Hash(); b.pending[h] > 0 {
			b.pending[h]--
		}
	}
	b.Searcher.Observe(o)
	d := b.Searcher.DecisionCost()
	if d >= b.lastWrapped {
		b.cost += d - b.lastWrapped
	} else {
		// The wrapped accumulator moved backwards (a strategy that resets
		// outside Propose): treat the new value as freshly accrued.
		b.cost += d
	}
	b.lastWrapped = d
}

// DecisionCost implements Searcher with batch semantics: it returns the
// searcher time consumed since the previous DecisionCost call and resets
// the accumulator. Proposals are drawn for a whole round up front, so the
// engine's per-iteration stamps attribute the round's proposal cost to
// the round's first iteration and each observation's cost to its own —
// summing to the round's true total.
func (b *batchAdapter) DecisionCost() time.Duration {
	c := b.cost
	b.cost = 0
	return c
}

// Pending returns the number of proposed-but-unobserved configurations
// (counting duplicates), exposed for tests and diagnostics.
func (b *batchAdapter) Pending() int {
	total := 0
	for _, c := range b.pending {
		total += c
	}
	return total
}
