package search

import (
	"maps"
	"slices"
	"testing"
	"time"

	"wayfinder/internal/configspace"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/rng"
	"wayfinder/internal/simos"
)

func batchSpace(t *testing.T) *configspace.Space {
	t.Helper()
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 30, FillerBoot: 5, FillerCompile: 5, Seed: 1})
	m.Space.Favor(configspace.CompileTime, 0)
	return m.Space
}

func observeAll(b BatchSearcher, cfgs []*configspace.Config) {
	if len(cfgs) == 0 {
		return
	}
	enc := configspace.NewEncoder(cfgs[0].Space())
	for _, c := range cfgs {
		b.Observe(Observation{Config: c, X: enc.Encode(c), Metric: 1, Stage: "ok"})
	}
}

func TestAsBatchWrapsEveryStrategy(t *testing.T) {
	space := batchSpace(t)
	dt := deeptune.DefaultConfig()
	dt.Seed = 1
	searchers := map[string]Searcher{
		"random":   NewRandom(space, 1),
		"mutate":   NewRandomMutate(space, 3, 1),
		"grid":     NewGrid(space),
		"bayesian": NewBayesian(space, true, 1),
		"unicorn":  NewUnicorn(space, true, 1),
		"deeptune": NewDeepTune(space, true, dt),
	}
	for _, name := range slices.Sorted(maps.Keys(searchers)) {
		s := searchers[name]
		b := AsBatch(s)
		cfgs := b.ProposeBatch(4)
		if len(cfgs) != 4 {
			t.Fatalf("%s: batch of %d, want 4", name, len(cfgs))
		}
		seen := map[uint64]bool{}
		for _, c := range cfgs {
			if c == nil {
				t.Fatalf("%s: nil config in batch", name)
			}
			if seen[c.Hash()] {
				t.Fatalf("%s: duplicate configuration within one batch", name)
			}
			seen[c.Hash()] = true
		}
		observeAll(b, cfgs)
	}
}

func TestBatchPendingBlocksDuplicates(t *testing.T) {
	space := batchSpace(t)
	b := AsBatch(NewRandom(space, 2)).(*batchAdapter)
	first := b.ProposeBatch(6)
	if b.Pending() != 6 {
		t.Fatalf("pending = %d after proposing 6, want 6", b.Pending())
	}
	// A second batch while the first is in flight must avoid the pending set.
	second := b.ProposeBatch(6)
	inFlight := map[uint64]bool{}
	for _, c := range first {
		inFlight[c.Hash()] = true
	}
	for _, c := range second {
		if inFlight[c.Hash()] {
			t.Fatal("second batch repeated a pending configuration")
		}
	}
	observeAll(b, first)
	observeAll(b, second)
	if b.Pending() != 0 {
		t.Fatalf("pending = %d after observing everything, want 0", b.Pending())
	}
}

func TestBatchObserveForwards(t *testing.T) {
	space := batchSpace(t)
	underlying := NewBayesian(space, true, 3)
	b := AsBatch(underlying)
	cfgs := b.ProposeBatch(5)
	enc := configspace.NewEncoder(space)
	for i, c := range cfgs {
		b.Observe(Observation{Config: c, X: enc.Encode(c), Metric: float64(i), Stage: "ok"})
	}
	if underlying.model.Len() != 5 {
		t.Fatalf("surrogate saw %d observations, want 5", underlying.model.Len())
	}
}

func TestBatchAcceptsDuplicateWhenStrategyExhausted(t *testing.T) {
	// A degenerate strategy that always proposes the same configuration
	// must not hang ProposeBatch: after bounded attempts the adapter
	// accepts the duplicate.
	space := batchSpace(t)
	s := &constantSearcher{cfg: space.Default()}
	b := AsBatch(s)
	done := make(chan []*configspace.Config, 1)
	go func() { done <- b.ProposeBatch(3) }()
	select {
	case cfgs := <-done:
		if len(cfgs) != 3 {
			t.Fatalf("batch of %d, want 3", len(cfgs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ProposeBatch hung on a constant strategy")
	}
}

func TestAsBatchPassthrough(t *testing.T) {
	// A searcher with a native batch implementation is used as-is.
	native := &nativeBatcher{space: batchSpace(t)}
	if AsBatch(native) != BatchSearcher(native) {
		t.Fatal("AsBatch re-wrapped a native BatchSearcher")
	}
	// Wrapping an adapter again must not stack adapters.
	wrapped := AsBatch(NewRandom(batchSpace(t), 4))
	if AsBatch(wrapped) != wrapped {
		t.Fatal("AsBatch re-wrapped an existing adapter")
	}
}

func TestBatchProposeSingleIsPlainPropose(t *testing.T) {
	// With batch size 1 and an empty pending set, the adapter consults the
	// strategy exactly once per round — the property that makes a
	// one-worker parallel session identical to the sequential engine.
	space := batchSpace(t)
	s := &countingSearcher{Searcher: NewRandom(space, 5)}
	b := AsBatch(s)
	for i := 0; i < 10; i++ {
		cfgs := b.ProposeBatch(1)
		if len(cfgs) != 1 {
			t.Fatalf("batch of %d, want 1", len(cfgs))
		}
		observeAll(b, cfgs)
	}
	if s.calls != 10 {
		t.Fatalf("underlying Propose called %d times for 10 singleton batches", s.calls)
	}
}

type constantSearcher struct {
	cfg  *configspace.Config
	cost time.Duration
}

func (s *constantSearcher) Name() string                 { return "constant" }
func (s *constantSearcher) Propose() *configspace.Config { return s.cfg }
func (s *constantSearcher) Observe(Observation)          {}
func (s *constantSearcher) DecisionCost() time.Duration  { return s.cost }

type countingSearcher struct {
	Searcher
	calls int
}

func (s *countingSearcher) Propose() *configspace.Config {
	s.calls++
	return s.Searcher.Propose()
}

type nativeBatcher struct {
	space *configspace.Space
}

func (s *nativeBatcher) Name() string                 { return "native" }
func (s *nativeBatcher) Propose() *configspace.Config { return s.space.Default() }
func (s *nativeBatcher) Observe(Observation)          {}
func (s *nativeBatcher) DecisionCost() time.Duration  { return 0 }
func (s *nativeBatcher) ProposeBatch(n int) []*configspace.Config {
	out := make([]*configspace.Config, n)
	r := rng.New(1)
	for i := range out {
		out[i] = s.space.Random(r)
	}
	return out
}

// costStub mimics the cost convention every real strategy follows —
// Propose resets the accumulator, Observe accrues into it — but with
// synthetic durations, so accounting can be cross-checked exactly.
type costStub struct {
	space              *configspace.Space
	rng                *rng.RNG
	proposeD, observeD time.Duration
	cost               time.Duration
}

func (s *costStub) Name() string { return "cost-stub" }
func (s *costStub) Propose() *configspace.Config {
	s.cost = s.proposeD
	return s.space.Random(s.rng)
}
func (s *costStub) Observe(Observation)         { s.cost += s.observeD }
func (s *costStub) DecisionCost() time.Duration { return s.cost }

func TestBatchCostMatchesSequentialAccounting(t *testing.T) {
	// Regression: the adapter used to re-time Observe with its own
	// stopwatch instead of pulling the wrapped searcher's self-reported
	// delta — so the model-update time the strategies measure themselves
	// (the Fig 8 "update time") was replaced by an unrelated wall-clock
	// sample, and any pull of the wrapped accumulator counted it twice.
	// With synthetic costs the books must balance exactly: n iterations
	// driven sequentially and in batches account the same total.
	space := batchSpace(t)
	const n = 12
	const proposeD, observeD = 3 * time.Millisecond, 7 * time.Millisecond

	// Sequential protocol: Propose, Observe, read DecisionCost per
	// iteration (what the sequential engine records).
	seq := &costStub{space: space, rng: rng.New(1), proposeD: proposeD, observeD: observeD}
	seqTotal := time.Duration(0)
	enc := configspace.NewEncoder(space)
	for i := 0; i < n; i++ {
		c := seq.Propose()
		seq.Observe(Observation{Config: c, X: enc.Encode(c), Metric: 1})
		seqTotal += seq.DecisionCost()
	}

	// Batch protocol: rounds of 4 through the adapter, draining the
	// adapter's accumulator after each round (what the parallel engines
	// record across a round's iterations).
	stub := &costStub{space: space, rng: rng.New(1), proposeD: proposeD, observeD: observeD}
	b := AsBatch(stub)
	batchTotal := time.Duration(0)
	for round := 0; round < n/4; round++ {
		cfgs := b.ProposeBatch(4)
		for _, c := range cfgs {
			b.Observe(Observation{Config: c, X: enc.Encode(c), Metric: 1})
			batchTotal += b.DecisionCost()
		}
	}

	if want := n * (proposeD + observeD); seqTotal != want {
		t.Fatalf("sequential accounting %v, want %v", seqTotal, want)
	}
	if batchTotal != seqTotal {
		t.Fatalf("batch accounting %v diverged from sequential %v: decision cost dropped or double-counted",
			batchTotal, seqTotal)
	}
}

func TestBatchDecisionCostDrains(t *testing.T) {
	// The adapter reports the searcher time consumed since the previous
	// DecisionCost call, so the engine's per-iteration stamps sum to the
	// round's true total instead of repeating the last proposal's cost.
	space := batchSpace(t)
	b := AsBatch(NewBayesian(space, true, 6))
	cfgs := b.ProposeBatch(4)
	if b.DecisionCost() <= 0 {
		t.Fatal("batch proposal cost not accumulated")
	}
	if b.DecisionCost() != 0 {
		t.Fatal("DecisionCost did not drain the accumulator")
	}
	observeAll(b, cfgs)
	if b.DecisionCost() <= 0 {
		t.Fatal("observation cost not accumulated")
	}
}
