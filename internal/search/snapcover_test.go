package search

import (
	"reflect"
	"testing"

	"wayfinder/internal/snapcover"
)

// The searcher ↔ checkpoint-state pairs, pinned so a new piece of
// dynamic searcher state cannot silently stay out of its checkpoint.
// Constructor arguments (the space, direction, hyperparameters, seeds)
// are deliberately not checkpointed: a restore target is built fresh
// with the same arguments and Restore overlays the accumulated state.

func TestRandomStateCoverage(t *testing.T) {
	snapcover.Pair(t, reflect.TypeFor[Random](), reflect.TypeFor[randomState](), snapcover.Spec{
		Covered: map[string]string{
			"rng":  "RNG",
			"seen": "Seen",
		},
		Excluded: map[string]string{
			"space": "construction-time: the restore target is built over the same space",
			"cost":  "per-call decision stopwatch, reported not replayed; the next Propose rewrites it",
		},
	})
}

func TestRandomMutateStateCoverage(t *testing.T) {
	snapcover.Pair(t, reflect.TypeFor[RandomMutate](), reflect.TypeFor[randomState](), snapcover.Spec{
		Covered: map[string]string{
			"rng":  "RNG",
			"seen": "Seen",
		},
		Excluded: map[string]string{
			"space": "construction-time: the restore target is built over the same space",
			"k":     "construction-time mutation width",
			"cost":  "per-call decision stopwatch, reported not replayed; the next Propose rewrites it",
		},
	})
}

func TestGridStateCoverage(t *testing.T) {
	snapcover.Pair(t, reflect.TypeFor[Grid](), reflect.TypeFor[gridState](), snapcover.Spec{
		Covered: map[string]string{
			"base":     "BaseKV",
			"paramIdx": "ParamIdx",
			"valueIdx": "ValueIdx",
			"pending":  "Pending",
		},
		Excluded: map[string]string{
			"space": "construction-time: the restore target is built over the same space",
			"cost":  "accumulating decision stopwatch, reported not replayed",
		},
	})
}

func TestBayesianStateCoverage(t *testing.T) {
	snapcover.Pair(t, reflect.TypeFor[Bayesian](), reflect.TypeFor[bayesianState](), snapcover.Spec{
		Covered: map[string]string{
			"rng":       "RNG",
			"best":      "Best",
			"haveBest":  "HaveBest",
			"worst":     "Worst",
			"haveWorst": "HaveWorst",
			"fitErrors": "FitErrors",
			"pending":   "Pending",
			"model":     "GP",
		},
		Excluded: map[string]string{
			"space":    "construction-time: the restore target is built over the same space",
			"enc":      "derived from the space at construction",
			"maximize": "construction-time optimization direction",
			"poolSize": "construction-time candidate-pool size",
			"cost":     "accumulating decision stopwatch, reported not replayed",
			// The surrogate's window/adaptation knobs live inside gp.State;
			// the proposal scratch is redrawn from the RNG every proposal.
			"pool":       "reusable proposal scratch, redrawn every proposal",
			"poolXs":     "reusable proposal scratch, redrawn every proposal",
			"poolHashes": "reusable proposal scratch, redrawn every proposal",
			"poolEIs":    "reusable proposal scratch, redrawn every proposal",
		},
	})
}

func TestDeepTuneStateCoverage(t *testing.T) {
	snapcover.Pair(t, reflect.TypeFor[DeepTune](), reflect.TypeFor[deepTuneState](), snapcover.Spec{
		Covered: map[string]string{
			"obs":     "Obs",
			"pending": "Pending",
			// The selector's proposal-stream RNG position serializes; its
			// DTM weights, optimizer moments, and training RNGs are a pure
			// function of the replayed Obs sequence.
			"sel": "RNG",
			// Rebuilt by the Observe replay during Restore, alongside the
			// selector's training state.
			"xs":      "Obs",
			"ys":      "Obs",
			"crashes": "Obs",
		},
		Excluded: map[string]string{
			"unreplayable": "checkpoint-eligibility flag: true makes Checkpoint fail, so a written checkpoint implies false",
			"cost":         "accumulating decision stopwatch, reported not replayed; Restore resets it",
			"window":       "session-level knob: reapplied by the session (SetSurrogateWindow from Options) before Restore replays the history",
		},
	})
}

// TestDeepTuneObsCoverage pins the per-observation replay record against
// the live Observation it is derived from.
func TestDeepTuneObsCoverage(t *testing.T) {
	snapcover.Pair(t, reflect.TypeFor[Observation](), reflect.TypeFor[deepTuneObs](), snapcover.Spec{
		Covered: map[string]string{
			"Config":  "KV",
			"Metric":  "Metric",
			"Crashed": "Crashed",
			"Stage":   "Stage",
		},
		Excluded: map[string]string{
			"X": "re-encoded from the Config by the restore replay",
		},
	})
}
