package search

import (
	"math"
	"testing"

	"wayfinder/internal/configspace"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/gp"
	"wayfinder/internal/rng"
)

// syntheticMetric derives a deterministic metric from a configuration, so
// two searchers driven through identical schedules observe identical
// values without a simulator in the loop.
func syntheticMetric(c *configspace.Config) (float64, bool) {
	h := c.Hash()
	return float64(h%1000) / 10, h%13 == 0
}

// driveSingletonRounds runs native and adapter paths through an identical
// propose(1)/observe schedule and asserts byte-identical proposals — the
// batch=1 determinism contract for the learned searchers.
func driveSingletonRounds(t *testing.T, native, adapter BatchSearcher, space *configspace.Space, rounds int) {
	t.Helper()
	enc := configspace.NewEncoder(space)
	for round := 0; round < rounds; round++ {
		a := native.ProposeBatch(1)
		b := adapter.ProposeBatch(1)
		if len(a) != 1 || len(b) != 1 {
			t.Fatalf("round %d: batch sizes %d/%d, want 1", round, len(a), len(b))
		}
		if !a[0].Equal(b[0]) {
			t.Fatalf("round %d: native proposed %q, adapter %q", round, a[0].String(), b[0].String())
		}
		metric, crashed := syntheticMetric(a[0])
		for _, s := range []BatchSearcher{native, adapter} {
			c := a[0]
			if s == adapter {
				c = b[0]
			}
			s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: metric, Crashed: crashed, Stage: "ok"})
		}
	}
}

// TestBayesianNativeBatchSingleMatchesAdapter pins the contract that made
// the native path safe to enable: ProposeBatch(1) through the native
// constant-liar implementation proposes exactly what the single-proposal
// path wrapped in the AsBatch adapter would, on a fixed seed, across the
// cold-start and surrogate-driven phases.
func TestBayesianNativeBatchSingleMatchesAdapter(t *testing.T) {
	space := batchSpace(t)
	native := NewBayesian(space, true, 77)
	wrapped := NewBayesian(space, true, 77)
	adapter := AsBatch(&plainSearcher{Searcher: wrapped})
	if _, isAdapter := adapter.(*batchAdapter); !isAdapter {
		t.Fatal("shim failed to force the adapter path")
	}
	if AsBatch(native) != BatchSearcher(native) {
		t.Fatal("Bayesian should be used natively by AsBatch")
	}
	driveSingletonRounds(t, native, adapter, space, 24)
	if native.model.Len() < 3 {
		t.Fatalf("surrogate saw only %d observations — the warm phase was never exercised", native.model.Len())
	}
}

// TestDeepTuneNativeBatchSingleMatchesAdapter is the same contract for the
// diversity-penalized DeepTune path.
func TestDeepTuneNativeBatchSingleMatchesAdapter(t *testing.T) {
	space := toySpace()
	cfg := deeptune.DefaultConfig()
	cfg.Hidden1, cfg.Hidden2, cfg.Centroids = 12, 8, 6
	cfg.Epochs, cfg.PoolSize, cfg.BatchSize = 1, 16, 8
	cfg.Seed = 9
	native := NewDeepTune(space, true, cfg)
	wrapped := NewDeepTune(space, true, cfg)
	adapter := AsBatch(&plainSearcher{Searcher: wrapped})
	if AsBatch(native) != BatchSearcher(native) {
		t.Fatal("DeepTune should be used natively by AsBatch")
	}
	driveSingletonRounds(t, native, adapter, space, 12)
	if native.sel.Model().Trained() == 0 {
		t.Fatal("the DTM never trained — the ranked phase was never exercised")
	}
}

// TestBayesianBatchFantasiesArePopped pins the fantasy-frame hygiene: a
// multi-slot batch conditions later slots on constant-liar fantasies, but
// the surrogate the next Observe trains is exactly the real-history one.
func TestBayesianBatchFantasiesArePopped(t *testing.T) {
	space := batchSpace(t)
	s := NewBayesian(space, true, 5)
	enc := configspace.NewEncoder(space)
	r := 0
	for s.model.Len() < 8 {
		c := s.space.Random(s.rng)
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: float64(10 + r)})
		r++
	}
	before := s.model.Len()
	batch := s.ProposeBatch(6)
	if len(batch) != 6 {
		t.Fatalf("batch of %d, want 6", len(batch))
	}
	if s.model.Len() != before || s.model.Fantasies() != 0 {
		t.Fatalf("fantasies leaked: Len %d->%d, active %d", before, s.model.Len(), s.model.Fantasies())
	}
	if s.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", s.Pending())
	}
	seen := map[uint64]int{}
	for i, c := range batch {
		if prev, dup := seen[c.Hash()]; dup {
			t.Fatalf("slots %d and %d propose the same configuration", prev, i)
		}
		seen[c.Hash()] = i
	}
	for _, c := range batch {
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: 1, Stage: "ok"})
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after observing everything, want 0", s.Pending())
	}
}

// TestBayesianBatchDiversifiesSlots verifies the constant liar does its
// job: with a warm surrogate, a batch's slots must not all collapse onto
// near-identical feature vectors. We compare the batch's minimum pairwise
// feature distance against zero — fantasization must separate the picks.
func TestBayesianBatchDiversifiesSlots(t *testing.T) {
	space := batchSpace(t)
	s := NewBayesian(space, true, 6)
	enc := configspace.NewEncoder(space)
	for i := 0; i < 12; i++ {
		c := s.space.Random(s.rng)
		m, crashed := syntheticMetric(c)
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: m, Crashed: crashed})
	}
	batch := s.ProposeBatch(4)
	for i := 0; i < len(batch); i++ {
		for j := i + 1; j < len(batch); j++ {
			if batch[i].Equal(batch[j]) {
				t.Fatalf("slots %d and %d are identical configurations", i, j)
			}
		}
	}
}

// TestBayesianProposeSurvivesFitError pins the satellite fix: when the
// surrogate cannot factorize, Propose must still return a configuration
// and the failure must be countable, not silent.
func TestBayesianProposeSurvivesFitError(t *testing.T) {
	space := toySpace()
	s := NewBayesian(space, true, 8)
	// A negative signal variance makes the kernel matrix indefinite, so
	// every factorization — jitter included — fails.
	s.model = gp.New(0.35, -1, -1)
	enc := configspace.NewEncoder(space)
	for i := 0; i < 4; i++ {
		c := space.Random(s.rng)
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: float64(i + 1)})
	}
	if s.FitErrors() != 0 {
		t.Fatalf("fit errors before proposing: %d", s.FitErrors())
	}
	c := s.Propose()
	if c == nil {
		t.Fatal("Propose returned nil under a broken surrogate")
	}
	if s.FitErrors() == 0 {
		t.Fatal("surrogate fit failure was not surfaced on the counter")
	}
	// The batch path counts too, and still fills every slot.
	batch := s.ProposeBatch(3)
	if len(batch) != 3 {
		t.Fatalf("batch of %d under a broken surrogate, want 3", len(batch))
	}
	for _, bc := range batch {
		if bc == nil {
			t.Fatal("nil config in batch under a broken surrogate")
		}
	}
}

// TestDeepTuneBatchDiversityPenalty checks the shared-pool ranking: a
// trained DeepTune batch must fill slots with distinct configurations
// (the diversity penalty pushes later slots off the winner), and the
// pending set must block cross-batch repeats on a best-effort basis.
func TestDeepTuneBatchDiversityPenalty(t *testing.T) {
	space := toySpace()
	cfg := deeptune.DefaultConfig()
	cfg.Hidden1, cfg.Hidden2, cfg.Centroids = 12, 8, 6
	cfg.Epochs, cfg.PoolSize, cfg.BatchSize = 1, 24, 8
	cfg.Seed = 3
	s := NewDeepTune(space, true, cfg)
	enc := configspace.NewEncoder(space)
	r := rng.New(17)
	for i := 0; i < 6; i++ {
		c := space.Random(r)
		m, crashed := syntheticMetric(c)
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: m, Crashed: crashed, Stage: "ok"})
	}
	batch := s.ProposeBatch(5)
	if len(batch) != 5 {
		t.Fatalf("batch of %d, want 5", len(batch))
	}
	seen := map[uint64]int{}
	for i, c := range batch {
		if prev, dup := seen[c.Hash()]; dup {
			t.Fatalf("slots %d and %d propose the same configuration", prev, i)
		}
		seen[c.Hash()] = i
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	for _, c := range batch {
		s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: 1, Stage: "ok"})
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after observing everything, want 0", s.Pending())
	}
}

// TestSelectorPoolDiversityFold cross-checks the incremental diversity
// fold against the definition: folding a pick into the dissimilarity term
// must equal recomputing Dissimilarity against explored ∪ picks.
func TestSelectorPoolDiversityFold(t *testing.T) {
	explored := [][]float64{{0, 0, 0}, {1, 1, 1}}
	picks := [][]float64{{0.5, 0.5, 0.5}, {0.2, 0.9, 0.1}}
	cands := [][]float64{{0.4, 0.5, 0.6}, {2, 2, 2}, {0.2, 0.9, 0.1}}
	for _, x := range cands {
		folded := deeptune.Dissimilarity(x, explored)
		for _, p := range picks {
			if d := deeptune.Dissimilarity(x, [][]float64{p}); d < folded {
				folded = d
			}
		}
		want := deeptune.Dissimilarity(x, append(append([][]float64{}, explored...), picks...))
		if math.Abs(folded-want) > 1e-15 {
			t.Fatalf("folded ds %v != union ds %v for %v", folded, want, x)
		}
	}
}
