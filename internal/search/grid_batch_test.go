package search

import (
	"testing"

	"wayfinder/internal/configspace"
)

// plainSearcher hides a BatchSearcher's native batch implementation, so
// AsBatch has to wrap it in the pending-set adapter — the reference
// implementation the native path is tested against.
type plainSearcher struct {
	Searcher
}

// TestGridNativeBatchMatchesAdapter is the determinism contract of the
// native ProposeBatch: driven through an identical schedule of batches,
// observations, and base adoptions, the ladder walked natively and the
// ladder walked through the AsBatch adapter must propose byte-identical
// sequences. The schedule observes batches out of order and adopts a new
// base mid-sweep, so the pending-set bookkeeping and the re-centering
// both get exercised.
func TestGridNativeBatchMatchesAdapter(t *testing.T) {
	space := batchSpace(t)
	native := NewGrid(space)
	wrapped := NewGrid(space)
	adapter := AsBatch(&plainSearcher{Searcher: wrapped})
	if _, isAdapter := adapter.(*batchAdapter); !isAdapter {
		t.Fatal("shim failed to force the adapter path")
	}
	if AsBatch(native) != BatchSearcher(native) {
		t.Fatal("Grid should be used natively by AsBatch")
	}
	enc := configspace.NewEncoder(space)

	observe := func(b BatchSearcher, c *configspace.Config, metric float64) {
		b.Observe(Observation{Config: c, X: enc.Encode(c), Metric: metric, Stage: "ok"})
	}
	var best *configspace.Config
	for round := 0; round < 24; round++ {
		n := 1 + round%7
		a := native.ProposeBatch(n)
		b := adapter.ProposeBatch(n)
		if len(a) != n || len(b) != n {
			t.Fatalf("round %d: batch sizes %d/%d, want %d", round, len(a), len(b), n)
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("round %d slot %d: native proposed %q, adapter %q",
					round, i, a[i].String(), b[i].String())
			}
		}
		// Observe in reverse slot order (completion order rarely matches
		// dispatch order in the async scheduler), leaving the last slot of
		// every third round pending across rounds.
		hold := round%3 == 0 && n > 1
		for i := n - 1; i >= 0; i-- {
			if hold && i == n-1 {
				continue
			}
			metric := float64(round*10 + i)
			observe(native, a[i], metric)
			observe(adapter, b[i], metric)
			if metric > 50 && (best == nil || round%5 == 0) {
				best = a[i].Clone()
				native.AdoptBase(best)
				wrapped.AdoptBase(best)
			}
		}
	}
}

// TestGridNativeBatchAvoidsPendingDuplicates pins the dedup behavior the
// adapter provided: a batch must not contain the same configuration twice
// while an identical proposal is pending — the base-valued ladder step is
// the candidate that would otherwise repeat.
func TestGridNativeBatchAvoidsPendingDuplicates(t *testing.T) {
	space := configspace.NewSpace("dup")
	// Three bools defaulting to false: each parameter's ladder proposes
	// the base itself once (value false), so a 4-slot batch would contain
	// the default config three times without pending dedup.
	for _, name := range []string{"a", "b", "c"} {
		space.MustAdd(&configspace.Param{Name: name, Type: configspace.Bool, Class: configspace.Runtime,
			Default: configspace.BoolValue(false)})
	}
	g := NewGrid(space)
	batch := g.ProposeBatch(4)
	seen := map[uint64]int{}
	for i, c := range batch {
		h := c.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("slots %d and %d propose the same configuration %q", prev, i, c.String())
		}
		seen[h] = i
	}
	if g.Pending() != 4 {
		t.Fatalf("pending = %d, want 4", g.Pending())
	}
	enc := configspace.NewEncoder(space)
	for _, c := range batch {
		g.Observe(Observation{Config: c, X: enc.Encode(c), Metric: 1, Stage: "ok"})
	}
	if g.Pending() != 0 {
		t.Fatalf("pending = %d after observing everything, want 0", g.Pending())
	}
}
