// Searcher checkpointing: the optional protocol that lets a session
// serialize a strategy's full dynamic state and resume it byte-identically
// — histories, dedup sets, pending proposals, and RNG stream positions
// included. Construction-time parameters (the space, the optimization
// direction, hyperparameters, the seed) are NOT part of a checkpoint: a
// restore target is built fresh with the same constructor arguments and
// Restore overlays the accumulated state, which keeps checkpoints small
// and spaces shareable.
//
// Two serialization strategies are used, matching how each searcher's
// state is produced:
//
//   - Direct state (Random, RandomMutate, Grid, Bayesian): the dynamic
//     state is small and explicit — RNG words, seen/pending hashes, ladder
//     position, the GP's observation list plus its incremental-factor
//     bookkeeping (gp.State) — so it is serialized verbatim.
//   - Deterministic replay (DeepTune): the DTM's weights, Adam moments,
//     and training RNG positions are a pure function of the Observe
//     sequence (proposal-side randomness lives in a separate stream that
//     IS serialized), so the checkpoint records the observation history
//     and Restore replays it through a fresh selector. This trades restore
//     time — one incremental retrain per historical observation — for not
//     having to version every optimizer buffer in the network.
package search

import (
	"encoding/json"
	"fmt"
	"maps"
	"slices"
	"sort"
	"strconv"

	"wayfinder/internal/gp"
)

// Checkpointable is the optional searcher extension session snapshots use:
// Checkpoint serializes the strategy's full dynamic state, and Restore —
// called on a freshly-constructed searcher with identical constructor
// arguments — rebuilds it so the resumed session proposes byte-identically
// to an uninterrupted one. Random, RandomMutate, Grid, Bayesian, and
// DeepTune implement it; strategies that do not (Unicorn, custom ones)
// make their sessions snapshot with an explanatory error.
type Checkpointable interface {
	Searcher
	// Checkpoint returns an opaque serialization of the searcher's dynamic
	// state. The searcher remains usable afterwards.
	Checkpoint() ([]byte, error)
	// Restore rebuilds the state captured by Checkpoint. It must be called
	// on an unused searcher constructed with the same arguments as the
	// checkpointed one.
	Restore(data []byte) error
}

// hashKey renders a 64-bit config hash as a JSON-safe map key.
func hashKey(h uint64) string { return strconv.FormatUint(h, 16) }

// parseHashKey inverts hashKey.
func parseHashKey(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }

// encodePending renders a pending multiset for serialization.
func encodePending(pending map[uint64]int) map[string]int {
	out := make(map[string]int, len(pending))
	for h, c := range pending {
		if c > 0 {
			out[hashKey(h)] = c
		}
	}
	return out
}

// decodePending inverts encodePending.
func decodePending(enc map[string]int) (map[uint64]int, error) {
	out := make(map[uint64]int, len(enc))
	for _, s := range slices.Sorted(maps.Keys(enc)) {
		h, err := parseHashKey(s)
		if err != nil {
			return nil, fmt.Errorf("search: bad pending hash %q: %w", s, err)
		}
		out[h] = enc[s]
	}
	return out, nil
}

// encodeSeen renders a seen-set deterministically (sorted).
func encodeSeen(seen map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// decodeSeen inverts encodeSeen.
func decodeSeen(hashes []uint64) map[uint64]bool {
	out := make(map[uint64]bool, len(hashes))
	for _, h := range hashes {
		out[h] = true
	}
	return out
}

// randomState is the serialized form of Random and RandomMutate: the
// proposal RNG position and the history dedup set.
type randomState struct {
	RNG  [4]uint64 `json:"rng"`
	Seen []uint64  `json:"seen,omitempty"`
}

// Checkpoint implements Checkpointable.
func (s *Random) Checkpoint() ([]byte, error) {
	return json.Marshal(randomState{RNG: s.rng.State(), Seen: encodeSeen(s.seen)})
}

// Restore implements Checkpointable.
func (s *Random) Restore(data []byte) error {
	var st randomState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("search: random checkpoint: %w", err)
	}
	s.rng.SetState(st.RNG)
	s.seen = decodeSeen(st.Seen)
	return nil
}

// Checkpoint implements Checkpointable.
func (s *RandomMutate) Checkpoint() ([]byte, error) {
	return json.Marshal(randomState{RNG: s.rng.State(), Seen: encodeSeen(s.seen)})
}

// Restore implements Checkpointable.
func (s *RandomMutate) Restore(data []byte) error {
	var st randomState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("search: random-mutate checkpoint: %w", err)
	}
	s.rng.SetState(st.RNG)
	s.seen = decodeSeen(st.Seen)
	return nil
}

// gridState is the serialized form of Grid: the sweep base (as the
// canonical non-default KV assignment), the ladder position, and the
// pending multiset.
type gridState struct {
	BaseKV   map[string]string `json:"base_kv"`
	ParamIdx int               `json:"param_idx"`
	ValueIdx int               `json:"value_idx"`
	Pending  map[string]int    `json:"pending,omitempty"`
}

// Checkpoint implements Checkpointable.
func (s *Grid) Checkpoint() ([]byte, error) {
	return json.Marshal(gridState{
		BaseKV:   s.base.KV(),
		ParamIdx: s.paramIdx,
		ValueIdx: s.valueIdx,
		Pending:  encodePending(s.pending),
	})
}

// Restore implements Checkpointable.
func (s *Grid) Restore(data []byte) error {
	var st gridState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("search: grid checkpoint: %w", err)
	}
	base, err := s.space.FromKV(st.BaseKV)
	if err != nil {
		return fmt.Errorf("search: grid checkpoint base: %w", err)
	}
	pending, err := decodePending(st.Pending)
	if err != nil {
		return err
	}
	s.base = base
	s.paramIdx, s.valueIdx = st.ParamIdx, st.ValueIdx
	s.pending = pending
	return nil
}

// bayesianState is the serialized form of Bayesian: the candidate-pool RNG
// position, the incumbent/worst trackers, the pending multiset, and the GP
// surrogate's exact numerical state.
type bayesianState struct {
	RNG       [4]uint64      `json:"rng"`
	Best      float64        `json:"best"`
	HaveBest  bool           `json:"have_best"`
	Worst     float64        `json:"worst"`
	HaveWorst bool           `json:"have_worst"`
	FitErrors int            `json:"fit_errors,omitempty"`
	Pending   map[string]int `json:"pending,omitempty"`
	GP        *gp.State      `json:"gp"`
}

// Checkpoint implements Checkpointable.
func (s *Bayesian) Checkpoint() ([]byte, error) {
	return json.Marshal(bayesianState{
		RNG:       s.rng.State(),
		Best:      s.best,
		HaveBest:  s.haveBest,
		Worst:     s.worst,
		HaveWorst: s.haveWorst,
		FitErrors: s.fitErrors,
		Pending:   encodePending(s.pending),
		GP:        s.model.State(),
	})
}

// Restore implements Checkpointable.
func (s *Bayesian) Restore(data []byte) error {
	var st bayesianState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("search: bayesian checkpoint: %w", err)
	}
	if st.GP == nil {
		return fmt.Errorf("search: bayesian checkpoint has no surrogate state")
	}
	pending, err := decodePending(st.Pending)
	if err != nil {
		return err
	}
	if err := s.model.RestoreState(st.GP); err != nil {
		return err
	}
	s.rng.SetState(st.RNG)
	s.best, s.haveBest = st.Best, st.HaveBest
	s.worst, s.haveWorst = st.Worst, st.HaveWorst
	s.fitErrors = st.FitErrors
	s.pending = pending
	return nil
}

// deepTuneObs is one replayable observation of a DeepTune checkpoint.
type deepTuneObs struct {
	KV      map[string]string `json:"kv"`
	Metric  float64           `json:"metric"`
	Crashed bool              `json:"crashed,omitempty"`
	Stage   string            `json:"stage,omitempty"`
}

// deepTuneState is the serialized form of DeepTune: the observation
// history (replayed through a fresh selector to rebuild the DTM's weights,
// optimizer moments, and training-RNG positions, all pure functions of the
// Observe sequence) plus the proposal-stream RNG position and the pending
// multiset, which interleaved Propose calls own.
type deepTuneState struct {
	RNG     [4]uint64      `json:"rng"`
	Pending map[string]int `json:"pending,omitempty"`
	Obs     []deepTuneObs  `json:"obs"`
}

// Checkpoint implements Checkpointable.
func (s *DeepTune) Checkpoint() ([]byte, error) {
	if s.unreplayable {
		return nil, fmt.Errorf("search: deeptune history contains an observation without a Config; cannot checkpoint")
	}
	st := deepTuneState{
		RNG:     s.sel.RNGState(),
		Pending: encodePending(s.pending),
		Obs:     make([]deepTuneObs, 0, len(s.obs)),
	}
	st.Obs = append(st.Obs, s.obs...)
	return json.Marshal(st)
}

// Restore implements Checkpointable. Restoring replays the checkpointed
// observation sequence through the fresh selector — one incremental DTM
// retrain per observation, the same Updates the live session ran — then
// overlays the proposal-stream RNG and pending state.
func (s *DeepTune) Restore(data []byte) error {
	if len(s.obs) != 0 {
		return fmt.Errorf("search: deeptune restore onto a used searcher (%d observations)", len(s.obs))
	}
	var st deepTuneState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("search: deeptune checkpoint: %w", err)
	}
	pending, err := decodePending(st.Pending)
	if err != nil {
		return err
	}
	space := s.sel.Space()
	enc := s.sel.Encoder()
	for i, o := range st.Obs {
		cfg, err := space.FromKV(o.KV)
		if err != nil {
			return fmt.Errorf("search: deeptune checkpoint observation %d: %w", i, err)
		}
		s.Observe(Observation{
			Config:  cfg,
			X:       enc.Encode(cfg),
			Metric:  o.Metric,
			Crashed: o.Crashed,
			Stage:   o.Stage,
		})
	}
	s.sel.SetRNGState(st.RNG)
	s.pending = pending
	s.cost = 0
	return nil
}

// PendingSnapshot exports the adapter's pending multiset for session
// checkpointing — the one piece of batch-protocol state that lives outside
// a wrapped single-proposal searcher.
func (b *batchAdapter) PendingSnapshot() map[uint64]int {
	out := make(map[uint64]int, len(b.pending))
	for h, c := range b.pending {
		if c > 0 {
			out[h] = c
		}
	}
	return out
}

// RestorePending overwrites the adapter's pending multiset with a snapshot
// taken by PendingSnapshot.
func (b *batchAdapter) RestorePending(pending map[uint64]int) {
	b.pending = make(map[uint64]int, len(pending))
	for h, c := range pending {
		if c > 0 {
			b.pending[h] = c
		}
	}
}
