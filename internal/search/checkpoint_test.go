package search

import (
	"testing"

	"wayfinder/internal/configspace"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/rng"
	"wayfinder/internal/simos"
)

// checkpointSpace builds a small space shared by original and restored
// searchers.
func checkpointSpace(t testing.TB) *configspace.Space {
	t.Helper()
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 20, FillerBoot: 4, FillerCompile: 6, Seed: 1})
	return m.Space
}

// observe feeds a synthetic observation for config c.
func observe(s Searcher, enc *configspace.Encoder, c *configspace.Config, y float64, crashed bool) {
	s.Observe(Observation{Config: c, X: enc.Encode(c), Metric: y, Crashed: crashed, Stage: "ok"})
}

// driveAndCheckpoint runs a propose/observe prefix, checkpoints, restores
// into fresh, and asserts both searchers propose identically afterwards.
func assertCheckpointContinuity(t *testing.T, name string, space *configspace.Space,
	orig Checkpointable, fresh Checkpointable, prefix, tail int) {
	t.Helper()
	enc := configspace.NewEncoder(space)
	noise := rng.New(99)
	for i := 0; i < prefix; i++ {
		c := orig.Propose()
		observe(orig, enc, c, 100+10*noise.Float64(), i%5 == 4)
	}
	data, err := orig.Checkpoint()
	if err != nil {
		t.Fatalf("%s: checkpoint: %v", name, err)
	}
	if err := fresh.Restore(data); err != nil {
		t.Fatalf("%s: restore: %v", name, err)
	}
	// Both must now walk identical propose/observe trajectories.
	for i := 0; i < tail; i++ {
		a, b := orig.Propose(), fresh.Propose()
		if !a.Equal(b) {
			t.Fatalf("%s: proposal %d diverged after restore:\n got %s\nwant %s", name, i, b, a)
		}
		y := 100 + 10*noise.Float64()
		observe(orig, enc, a, y, false)
		observe(fresh, enc, b, y, false)
	}
}

func TestRandomCheckpoint(t *testing.T) {
	space := checkpointSpace(t)
	assertCheckpointContinuity(t, "random", space,
		NewRandom(space, 7), NewRandom(space, 7), 12, 8)
	// The restored dedup set must block revisits exactly like the original:
	// a fresh searcher without Restore would re-propose the same sequence.
	orig := NewRandom(space, 3)
	c := orig.Propose()
	data, _ := orig.Checkpoint()
	restored := NewRandom(space, 3)
	if err := restored.Restore(data); err != nil {
		t.Fatal(err)
	}
	if restored.Propose().Equal(c) {
		t.Fatal("restored random searcher lost its seen set")
	}
}

func TestRandomMutateCheckpoint(t *testing.T) {
	space := checkpointSpace(t)
	assertCheckpointContinuity(t, "random-mutate", space,
		NewRandomMutate(space, 3, 7), NewRandomMutate(space, 3, 7), 12, 8)
}

func TestGridCheckpoint(t *testing.T) {
	space := checkpointSpace(t)
	// The observation prefix adopts improvements as the sweep base (via
	// the engine normally; here the ladder position alone is the state).
	assertCheckpointContinuity(t, "grid", space, NewGrid(space), NewGrid(space), 10, 10)
}

func TestBayesianCheckpoint(t *testing.T) {
	space := checkpointSpace(t)
	assertCheckpointContinuity(t, "bayesian", space,
		NewBayesian(space, true, 7), NewBayesian(space, true, 7), 16, 8)
}

func TestBayesianCheckpointBatchPending(t *testing.T) {
	// Checkpoint with a non-empty pending set (mid-batch, as an async
	// session would): the restored searcher must dedup against it.
	space := checkpointSpace(t)
	enc := configspace.NewEncoder(space)
	orig := NewBayesian(space, true, 7)
	noise := rng.New(5)
	for i := 0; i < 8; i++ {
		c := orig.Propose()
		observe(orig, enc, c, 50+noise.Float64(), false)
	}
	batch := orig.ProposeBatch(4) // leaves 4 pending
	if orig.Pending() != 4 {
		t.Fatalf("pending %d after batch", orig.Pending())
	}
	data, err := orig.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewBayesian(space, true, 7)
	if err := fresh.Restore(data); err != nil {
		t.Fatal(err)
	}
	if fresh.Pending() != 4 {
		t.Fatalf("restored pending %d, want 4", fresh.Pending())
	}
	// Observe the batch on both; trajectories stay aligned.
	for _, c := range batch {
		y := 60 + noise.Float64()
		observe(orig, enc, c, y, false)
		observe(fresh, enc, c, y, false)
	}
	for i := 0; i < 4; i++ {
		a, b := orig.Propose(), fresh.Propose()
		if !a.Equal(b) {
			t.Fatalf("proposal %d diverged after mid-batch restore", i)
		}
		y := 70 + noise.Float64()
		observe(orig, enc, a, y, false)
		observe(fresh, enc, b, y, false)
	}
}

func TestDeepTuneCheckpoint(t *testing.T) {
	space := checkpointSpace(t)
	cfg := deeptune.DefaultConfig()
	cfg.Seed = 7
	cfg.Epochs = 2 // keep the replay cheap
	mk := func() *DeepTune { return NewDeepTune(space, true, cfg) }
	assertCheckpointContinuity(t, "deeptune", space, mk(), mk(), 8, 4)
}

func TestDeepTuneRestoreRejectsUsedSearcher(t *testing.T) {
	space := checkpointSpace(t)
	cfg := deeptune.DefaultConfig()
	cfg.Seed = 7
	enc := configspace.NewEncoder(space)
	orig := NewDeepTune(space, true, cfg)
	observe(orig, enc, orig.Propose(), 1, false)
	data, err := orig.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	used := NewDeepTune(space, true, cfg)
	observe(used, enc, used.Propose(), 2, false)
	if err := used.Restore(data); err == nil {
		t.Fatal("Restore accepted a searcher with prior observations")
	}
}

func TestAdapterPendingSnapshot(t *testing.T) {
	space := checkpointSpace(t)
	b := AsBatch(NewRandom(space, 4)).(*batchAdapter)
	batch := b.ProposeBatch(3)
	if len(batch) != 3 || b.Pending() != 3 {
		t.Fatalf("batch %d, pending %d", len(batch), b.Pending())
	}
	snap := b.PendingSnapshot()
	b2 := AsBatch(NewRandom(space, 4)).(*batchAdapter)
	b2.RestorePending(snap)
	if b2.Pending() != 3 {
		t.Fatalf("restored pending %d, want 3", b2.Pending())
	}
	for _, c := range batch {
		b2.Observe(Observation{Config: c})
	}
	if b2.Pending() != 0 {
		t.Fatalf("pending %d after observing the batch", b2.Pending())
	}
}
