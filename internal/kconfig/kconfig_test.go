package kconfig

import (
	"maps"
	"slices"
	"strings"
	"testing"
	"testing/quick"

	"wayfinder/internal/rng"
)

const sampleKconfig = `
mainmenu "Test Kernel Configuration"

config NET
	bool "Networking support"
	default y
	help
	  Enable the network stack.
	  Multi-line help text.

menu "Network options"
depends on NET

config INET
	bool "TCP/IP networking"
	default y

config TCP_CONG_ADVANCED
	bool "Advanced congestion control"
	depends on INET

choice
	prompt "Default TCP congestion control"
	default TCP_CONG_CUBIC

config TCP_CONG_CUBIC
	bool "CUBIC"

config TCP_CONG_RENO
	bool "Reno"

endchoice

config E1000
	tristate "Intel E1000 driver"
	depends on INET
	default m

endmenu

config LOG_BUF_SHIFT
	int "Kernel log buffer size (powers of 2)"
	range 12 25
	default 17

config PHYSICAL_START
	hex "Physical address where the kernel starts"
	default 0x1000000
	range 0x100000 0x10000000

config DEFAULT_HOSTNAME
	string "Default hostname"
	default "(none)"

config CRYPTO_SHA256
	tristate "SHA-256 digest"

config IPSEC
	bool "IPsec support"
	depends on INET
	select CRYPTO_SHA256

if NET
config NETFILTER
	bool "Network packet filtering"
endif

comment "End of test configuration"
`

func parseSample(t testing.TB) *Tree {
	t.Helper()
	tree, err := Parse(sampleKconfig)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestParseSymbols(t *testing.T) {
	tree := parseSample(t)
	wantSyms := []string{"NET", "INET", "TCP_CONG_ADVANCED", "TCP_CONG_CUBIC",
		"TCP_CONG_RENO", "E1000", "LOG_BUF_SHIFT", "PHYSICAL_START",
		"DEFAULT_HOSTNAME", "CRYPTO_SHA256", "IPSEC", "NETFILTER"}
	if tree.Len() != len(wantSyms) {
		t.Fatalf("parsed %d symbols, want %d", tree.Len(), len(wantSyms))
	}
	for _, name := range wantSyms {
		if tree.Lookup(name) == nil {
			t.Fatalf("symbol %s missing", name)
		}
	}
}

func TestParseTypes(t *testing.T) {
	tree := parseSample(t)
	cases := map[string]SymbolType{
		"NET":              TypeBool,
		"E1000":            TypeTristate,
		"LOG_BUF_SHIFT":    TypeInt,
		"PHYSICAL_START":   TypeHex,
		"DEFAULT_HOSTNAME": TypeString,
	}
	for _, name := range slices.Sorted(maps.Keys(cases)) {
		if got, want := tree.Lookup(name).Type, cases[name]; got != want {
			t.Errorf("%s type = %v, want %v", name, got, want)
		}
	}
}

func TestParseHelp(t *testing.T) {
	tree := parseSample(t)
	help := tree.Lookup("NET").Help
	if !strings.Contains(help, "Enable the network stack.") ||
		!strings.Contains(help, "Multi-line help text.") {
		t.Fatalf("help = %q", help)
	}
}

func TestMenuDependsPropagates(t *testing.T) {
	tree := parseSample(t)
	inet := tree.Lookup("INET")
	if inet.DependsOn == nil {
		t.Fatal("INET should inherit menu dependency on NET")
	}
	syms := inet.DependsOn.Symbols(nil)
	if len(syms) != 1 || syms[0] != "NET" {
		t.Fatalf("INET deps = %v", syms)
	}
	// Nested: TCP_CONG_ADVANCED depends on NET (menu) && INET (own).
	adv := tree.Lookup("TCP_CONG_ADVANCED")
	symSet := map[string]bool{}
	for _, s := range adv.DependsOn.Symbols(nil) {
		symSet[s] = true
	}
	if !symSet["NET"] || !symSet["INET"] {
		t.Fatalf("TCP_CONG_ADVANCED deps = %v", symSet)
	}
}

func TestIfBlockPropagates(t *testing.T) {
	tree := parseSample(t)
	nf := tree.Lookup("NETFILTER")
	syms := nf.DependsOn.Symbols(nil)
	if len(syms) != 1 || syms[0] != "NET" {
		t.Fatalf("NETFILTER deps = %v", syms)
	}
}

func TestChoiceParsed(t *testing.T) {
	tree := parseSample(t)
	if len(tree.Choices) != 1 {
		t.Fatalf("%d choices parsed", len(tree.Choices))
	}
	ch := tree.Choices[0]
	if len(ch.Members) != 2 || ch.Default != "TCP_CONG_CUBIC" {
		t.Fatalf("choice = %+v", ch)
	}
	if tree.Lookup("TCP_CONG_CUBIC").Choice != ch {
		t.Fatal("member not linked to its choice")
	}
}

func TestRangesParsed(t *testing.T) {
	tree := parseSample(t)
	s := tree.Lookup("LOG_BUF_SHIFT")
	if len(s.Ranges) != 1 || s.Ranges[0].Min != "12" || s.Ranges[0].Max != "25" {
		t.Fatalf("ranges = %+v", s.Ranges)
	}
}

func TestExprEval(t *testing.T) {
	cases := []struct {
		src  string
		env  map[string]Tristate
		want Tristate
	}{
		{"A && B", map[string]Tristate{"A": Yes, "B": Module}, Module},
		{"A || B", map[string]Tristate{"A": No, "B": Module}, Module},
		{"!A", map[string]Tristate{"A": Module}, Module},
		{"!A", map[string]Tristate{"A": Yes}, No},
		{"A = B", map[string]Tristate{"A": Yes, "B": Yes}, Yes},
		{"A != B", map[string]Tristate{"A": Yes, "B": Yes}, No},
		{"(A || B) && !C", map[string]Tristate{"A": No, "B": Yes, "C": No}, Yes},
		{"y && m", nil, Module},
	}
	for _, tc := range cases {
		src := "config X\n\tbool\n\tdepends on " + tc.src + "\n"
		tree, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		got := tree.Lookup("X").DependsOn.Eval(func(n string) Tristate {
			return tc.env[n]
		})
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unterminated string", "config X\n\tbool \"oops\n"},
		{"stray amp", "config X\n\tbool\n\tdepends on A & B\n"},
		{"missing paren", "config X\n\tbool\n\tdepends on (A && B\n"},
		{"unknown keyword", "flurble X\n"},
		{"config without name", "config\n\tbool\n"},
		{"unclosed menu", "menu \"m\"\nconfig X\n\tbool\n"},
		{"source without resolver", "source \"net/Kconfig\"\n"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.src); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

func TestSourceResolution(t *testing.T) {
	files := map[string]string{
		"net/Kconfig": "config SUB\n\tbool \"sub option\"\n\tdefault y\n",
	}
	tree, err := ParseWithSources("config TOP\n\tbool\nif TOP\nsource \"net/Kconfig\"\nendif\n",
		func(path string) (string, error) { return files[path], nil })
	if err != nil {
		t.Fatal(err)
	}
	sub := tree.Lookup("SUB")
	if sub == nil {
		t.Fatal("sourced symbol missing")
	}
	syms := sub.DependsOn.Symbols(nil)
	if len(syms) != 1 || syms[0] != "TOP" {
		t.Fatalf("sourced symbol deps = %v (if condition should propagate)", syms)
	}
}

func TestDefaultConfig(t *testing.T) {
	tree := parseSample(t)
	a := tree.DefaultConfig()
	if a["NET"] != "y" || a["INET"] != "y" {
		t.Fatalf("defaults: NET=%s INET=%s", a["NET"], a["INET"])
	}
	if a["E1000"] != "m" {
		t.Fatalf("E1000 default = %s, want m", a["E1000"])
	}
	if a["TCP_CONG_ADVANCED"] != "n" {
		t.Fatalf("unset bool default = %s, want n", a["TCP_CONG_ADVANCED"])
	}
	if a["LOG_BUF_SHIFT"] != "17" {
		t.Fatalf("LOG_BUF_SHIFT = %s", a["LOG_BUF_SHIFT"])
	}
	if a["DEFAULT_HOSTNAME"] != "(none)" {
		t.Fatalf("string default = %q", a["DEFAULT_HOSTNAME"])
	}
}

func TestDefaultConfigValid(t *testing.T) {
	tree := parseSample(t)
	a := tree.DefaultConfig()
	// The default config enables IPSEC=n so CRYPTO_SHA256 stays n; the
	// default assignment should carry no violations except the inactive
	// choice (whose default member is not forced by our defconfig).
	viols := tree.Validate(a)
	for _, v := range viols {
		if !strings.HasPrefix(v.Symbol, "choice") {
			t.Fatalf("default config violation: %v", v)
		}
	}
}

func TestSelectForcesTarget(t *testing.T) {
	tree := parseSample(t)
	a := tree.DefaultConfig()
	a["IPSEC"] = "y"
	tree.applySelects(a)
	if a["CRYPTO_SHA256"] != "y" {
		t.Fatalf("select did not fire: CRYPTO_SHA256=%s", a["CRYPTO_SHA256"])
	}
}

func TestRandomConfigRespectsDependencies(t *testing.T) {
	tree := parseSample(t)
	if err := quick.Check(func(seed uint64) bool {
		a := tree.RandomConfig(rng.New(seed))
		// Direct depends-on must hold unless forced by select.
		for _, v := range tree.Validate(a) {
			if strings.Contains(v.Reason, "dependencies unmet") {
				return false
			}
			if strings.Contains(v.Reason, "outside range") {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRandomConfigChoiceInvariant(t *testing.T) {
	tree := parseSample(t)
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		a := tree.RandomConfig(r)
		if a["NET"] == "y" && a["INET"] == "y" {
			active := 0
			for _, m := range tree.Choices[0].Members {
				if a[m.Name] == "y" {
					active++
				}
			}
			if active != 1 {
				t.Fatalf("choice invariant broken: %d active", active)
			}
		}
	}
}

func TestDependencyOrder(t *testing.T) {
	tree := parseSample(t)
	order, cyclic := tree.DependencyOrder()
	if len(cyclic) != 0 {
		t.Fatalf("unexpected cycles: %v", cyclic)
	}
	pos := map[string]int{}
	for i, s := range order {
		pos[s.Name] = i
	}
	if pos["NET"] > pos["INET"] {
		t.Fatal("NET should come before INET")
	}
	if pos["INET"] > pos["E1000"] {
		t.Fatal("INET should come before E1000")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	tree := parseSample(t)
	a := tree.DefaultConfig()
	a["NET"] = "n"
	a["INET"] = "y" // depends on NET
	viols := tree.Validate(a)
	found := false
	for _, v := range viols {
		if v.Symbol == "INET" {
			found = true
		}
	}
	if !found {
		t.Fatalf("INET violation not reported: %v", viols)
	}
	a = tree.DefaultConfig()
	a["LOG_BUF_SHIFT"] = "99"
	viols = tree.Validate(a)
	found = false
	for _, v := range viols {
		if v.Symbol == "LOG_BUF_SHIFT" && strings.Contains(v.Reason, "outside range") {
			found = true
		}
	}
	if !found {
		t.Fatalf("range violation not reported: %v", viols)
	}
}

func TestCensus(t *testing.T) {
	tree := parseSample(t)
	c := tree.Census()
	want := Census{Bool: 7, Tristate: 2, String: 1, Hex: 1, Int: 1}
	if c != want {
		t.Fatalf("census = %+v, want %+v", c, want)
	}
	if c.Total() != tree.Len() {
		t.Fatal("census total mismatch")
	}
}

func TestRoundTrip(t *testing.T) {
	tree := parseSample(t)
	tree2, err := Parse(tree.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, tree.String())
	}
	if tree2.Len() != tree.Len() {
		t.Fatalf("round trip lost symbols: %d vs %d", tree2.Len(), tree.Len())
	}
	if tree2.Census() != tree.Census() {
		t.Fatal("round trip changed census")
	}
}

func TestToSpace(t *testing.T) {
	tree := parseSample(t)
	space, err := tree.ToSpace("test")
	if err != nil {
		t.Fatal(err)
	}
	if space.Len() != tree.Len() {
		t.Fatalf("space has %d params, tree %d symbols", space.Len(), tree.Len())
	}
	p, _ := space.Lookup("LOG_BUF_SHIFT")
	if p == nil || p.Min != 12 || p.Max != 25 || p.Default.I != 17 {
		t.Fatalf("LOG_BUF_SHIFT param = %+v", p)
	}
	e, _ := space.Lookup("E1000")
	if e == nil || e.Default.I != int64(Module) {
		t.Fatalf("E1000 param = %+v", e)
	}
}

func TestGenerateMatchesCensus(t *testing.T) {
	want := Census{Bool: 120, Tristate: 80, String: 10, Hex: 5, Int: 30}
	src := Generate(want, 42)
	tree, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Census(); got != want {
		t.Fatalf("generated census = %+v, want %+v", got, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := Census{Bool: 50, Tristate: 30, Int: 10}
	if Generate(c, 7) != Generate(c, 7) {
		t.Fatal("generator not deterministic")
	}
	if Generate(c, 7) == Generate(c, 8) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateHasDependencies(t *testing.T) {
	src := Generate(Census{Bool: 300, Tristate: 200, Int: 50}, 11)
	tree, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	withDeps := 0
	for _, s := range tree.Symbols {
		if s.DependsOn != nil {
			withDeps++
		}
	}
	if frac := float64(withDeps) / float64(tree.Len()); frac < 0.3 {
		t.Fatalf("only %.0f%% of generated symbols have dependencies", frac*100)
	}
}

func TestGenerateVersionTable1(t *testing.T) {
	src, err := GenerateVersion("v6.0", 1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := tree.Census()
	want := Census{Bool: 7585, Tristate: 10034, String: 154, Hex: 94, Int: 3405}
	if c != want {
		t.Fatalf("v6.0 census = %+v, want Table 1's %+v", c, want)
	}
}

func TestGenerateVersionUnknown(t *testing.T) {
	if _, err := GenerateVersion("v99.9", 1); err == nil {
		t.Fatal("expected error for unknown version")
	}
}

func TestFigure1Monotone(t *testing.T) {
	prev := 0
	for _, vc := range LinuxVersions {
		total := vc.Census.Total()
		if total <= prev {
			t.Fatalf("option counts must grow: %s has %d after %d", vc.Version, total, prev)
		}
		prev = total
	}
	first := LinuxVersions[0].Census.Total()
	last := LinuxVersions[len(LinuxVersions)-1].Census.Total()
	if first > 7000 || last < 20000 {
		t.Fatalf("Figure 1 trajectory wrong: %d -> %d", first, last)
	}
}

func TestGeneratedRandomConfigs(t *testing.T) {
	src := Generate(Census{Bool: 200, Tristate: 100, Int: 30, Hex: 10}, 3)
	tree, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for i := 0; i < 20; i++ {
		a := tree.RandomConfig(r)
		for _, v := range tree.Validate(a) {
			if strings.Contains(v.Reason, "dependencies unmet") {
				t.Fatalf("random config broke dependency: %v", v)
			}
		}
	}
}

func BenchmarkParseGenerated(b *testing.B) {
	src := Generate(Census{Bool: 1000, Tristate: 600, String: 20, Hex: 10, Int: 200}, 1)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomConfig(b *testing.B) {
	src := Generate(Census{Bool: 1000, Tristate: 600, Int: 200}, 1)
	tree, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.RandomConfig(r)
	}
}
