package kconfig

import (
	"fmt"
	"strconv"

	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
)

// Assignment maps symbol names to values. Bool/tristate symbols store
// "n"/"m"/"y"; int/hex/string symbols store their literal value.
type Assignment map[string]string

// tri returns the tristate value of a symbol under the assignment;
// undefined or non-boolean symbols read as n.
func (a Assignment) tri(name string) Tristate {
	switch a[name] {
	case "y":
		return Yes
	case "m":
		return Module
	default:
		return No
	}
}

// DefaultConfig computes the assignment Kconfig's defconfig machinery
// would produce: symbols get their first default whose condition holds
// (in dependency order), clamped by depends-on; select clauses then force
// their targets on.
func (t *Tree) DefaultConfig() Assignment {
	a := Assignment{}
	order, _ := t.DependencyOrder()
	for _, s := range order {
		a[s.Name] = t.defaultValue(s, a)
	}
	t.applySelects(a)
	return a
}

func (t *Tree) defaultValue(s *Symbol, a Assignment) string {
	dep := Yes
	if s.DependsOn != nil {
		dep = s.DependsOn.Eval(a.tri)
	}
	switch s.Type {
	case TypeBool, TypeTristate:
		if dep == No {
			return "n"
		}
		for _, d := range s.Defaults {
			if d.Cond != nil && d.Cond.Eval(a.tri) == No {
				continue
			}
			v := d.Value
			// A default may reference another symbol.
			if v != "y" && v != "m" && v != "n" {
				v = a.tri(v).String()
			}
			if s.Type == TypeBool && v == "m" {
				v = "y"
			}
			// Clamp tristate default by the dependency value.
			if s.Type == TypeTristate && v == "y" && dep == Module {
				v = "m"
			}
			return v
		}
		return "n"
	case TypeInt, TypeHex:
		for _, d := range s.Defaults {
			if d.Cond != nil && d.Cond.Eval(a.tri) == No {
				continue
			}
			return d.Value
		}
		return "0"
	default: // TypeString
		for _, d := range s.Defaults {
			if d.Cond != nil && d.Cond.Eval(a.tri) == No {
				continue
			}
			return d.Value
		}
		return ""
	}
}

// applySelects forces select targets on. Kconfig select ignores the
// target's dependencies — the documented source of invalid configurations,
// one reason a third of random configs fail (§2.2).
func (t *Tree) applySelects(a Assignment) {
	changed := true
	for iter := 0; changed && iter < len(t.Symbols)+1; iter++ {
		changed = false
		for _, s := range t.Symbols {
			v := a.tri(s.Name)
			if v == No {
				continue
			}
			for _, sel := range s.Selects {
				if sel.Cond != nil && sel.Cond.Eval(a.tri) == No {
					continue
				}
				target := t.byName[sel.Target]
				if target == nil {
					continue
				}
				cur := a.tri(sel.Target)
				want := v
				if target.Type == TypeBool && want == Module {
					want = Yes
				}
				if want > cur {
					a[sel.Target] = want.String()
					changed = true
				}
			}
		}
	}
}

// RandomConfig draws a random assignment that satisfies every depends-on
// constraint (in KConfig's sense): symbols whose dependencies evaluate to n
// are forced off, tristate values are clamped by their dependency value,
// int/hex values are drawn from their range, and selects are applied last.
// As in real Kconfig, select can still produce configurations that violate
// the *target's* dependencies — valid on paper, possibly broken in practice
// (§1) — which is exactly the behaviour Wayfinder has to cope with.
func (t *Tree) RandomConfig(r *rng.RNG) Assignment {
	a := Assignment{}
	order, _ := t.DependencyOrder()
	chosen := map[*Choice]string{}
	for _, s := range order {
		dep := Yes
		if s.DependsOn != nil {
			dep = s.DependsOn.Eval(a.tri)
		}
		if s.Choice != nil {
			// Defer: one member per choice group is picked below.
			a[s.Name] = "n"
			if _, done := chosen[s.Choice]; !done && dep != No {
				pick := s.Choice.Members[r.Intn(len(s.Choice.Members))]
				chosen[s.Choice] = pick.Name
			}
			continue
		}
		switch s.Type {
		case TypeBool:
			if dep == No {
				a[s.Name] = "n"
			} else if r.Bool() {
				a[s.Name] = "y"
			} else {
				a[s.Name] = "n"
			}
		case TypeTristate:
			if dep == No {
				a[s.Name] = "n"
			} else {
				v := Tristate(r.Intn(3))
				if v > dep {
					v = dep
				}
				a[s.Name] = v.String()
			}
		case TypeInt:
			min, max := t.intRange(s, a, 0, 1<<31-1)
			if max > min {
				a[s.Name] = strconv.FormatInt(min+r.Int63n(max-min+1), 10)
			} else {
				a[s.Name] = strconv.FormatInt(min, 10)
			}
		case TypeHex:
			min, max := t.intRange(s, a, 0, 1<<31-1)
			v := min
			if max > min {
				v = min + r.Int63n(max-min+1)
			}
			a[s.Name] = "0x" + strconv.FormatInt(v, 16)
		default:
			a[s.Name] = t.defaultValue(s, a)
		}
	}
	for ch, name := range chosen {
		_ = ch
		a[name] = "y"
	}
	t.applySelects(a)
	return a
}

// intRange returns the active range of an int/hex symbol, defaulting to
// [defMin, defMax].
func (t *Tree) intRange(s *Symbol, a Assignment, defMin, defMax int64) (int64, int64) {
	for _, r := range s.Ranges {
		if r.Cond != nil && r.Cond.Eval(a.tri) == No {
			continue
		}
		min, err1 := parseKNum(r.Min)
		max, err2 := parseKNum(r.Max)
		if err1 == nil && err2 == nil && min <= max {
			return min, max
		}
	}
	return defMin, defMax
}

func parseKNum(s string) (int64, error) {
	if len(s) > 2 && (s[:2] == "0x" || s[:2] == "0X") {
		return strconv.ParseInt(s[2:], 16, 64)
	}
	return strconv.ParseInt(s, 10, 64)
}

// Violation describes one constraint broken by an assignment.
type Violation struct {
	Symbol string
	Reason string
}

func (v Violation) String() string { return v.Symbol + ": " + v.Reason }

// Validate checks an assignment against the tree's constraints and returns
// all violations: enabled symbols whose dependencies are unmet, select
// targets that are off, out-of-range int/hex values, and broken choice
// invariants.
func (t *Tree) Validate(a Assignment) []Violation {
	var out []Violation
	for _, s := range t.Symbols {
		v := a.tri(s.Name)
		switch s.Type {
		case TypeBool, TypeTristate:
			if v == No {
				continue
			}
			if s.DependsOn != nil {
				dep := s.DependsOn.Eval(a.tri)
				if dep == No {
					// A select may legitimately force the symbol on; then
					// the config is "valid on paper" per Kconfig semantics.
					if !t.selectedBy(s.Name, a) {
						out = append(out, Violation{s.Name, "enabled but dependencies unmet"})
					}
				} else if v > dep && !t.selectedBy(s.Name, a) {
					out = append(out, Violation{s.Name, "built-in but dependency allows only module"})
				}
			}
			for _, sel := range s.Selects {
				if sel.Cond != nil && sel.Cond.Eval(a.tri) == No {
					continue
				}
				if t.byName[sel.Target] != nil && a.tri(sel.Target) < v {
					out = append(out, Violation{s.Name, "selects " + sel.Target + " which is weaker"})
				}
			}
		case TypeInt, TypeHex:
			val, err := parseKNum(a[s.Name])
			if err != nil {
				out = append(out, Violation{s.Name, "non-numeric value " + a[s.Name]})
				continue
			}
			min, max := t.intRange(s, a, val, val)
			if val < min || val > max {
				out = append(out, Violation{s.Name, fmt.Sprintf("value %d outside range [%d,%d]", val, min, max)})
			}
		}
	}
	for _, ch := range t.Choices {
		active := 0
		groupLive := false
		for _, m := range ch.Members {
			dep := Yes
			if m.DependsOn != nil {
				dep = m.DependsOn.Eval(a.tri)
			}
			if dep != No {
				groupLive = true
			}
			if a.tri(m.Name) == Yes {
				active++
			}
		}
		if groupLive && active != 1 {
			out = append(out, Violation{choiceName(ch), fmt.Sprintf("choice has %d active members, want 1", active)})
		}
	}
	return out
}

func (t *Tree) selectedBy(name string, a Assignment) bool {
	for _, s := range t.Symbols {
		if a.tri(s.Name) == No {
			continue
		}
		for _, sel := range s.Selects {
			if sel.Target != name {
				continue
			}
			if sel.Cond != nil && sel.Cond.Eval(a.tri) == No {
				continue
			}
			return true
		}
	}
	return false
}

func choiceName(ch *Choice) string {
	if ch.Prompt != "" {
		return "choice " + ch.Prompt
	}
	if len(ch.Members) > 0 {
		return "choice(" + ch.Members[0].Name + "...)"
	}
	return "choice"
}

// ToSpace converts the tree's symbols into a configspace.Space of
// compile-time parameters, using the default configuration for defaults.
// String symbols become single-value enums (they are not explored — §3.4).
func (t *Tree) ToSpace(name string) (*configspace.Space, error) {
	defaults := t.DefaultConfig()
	space := configspace.NewSpace(name)
	for _, s := range t.Symbols {
		p := &configspace.Param{Name: s.Name, Class: configspace.CompileTime, Help: s.Help}
		switch s.Type {
		case TypeBool:
			p.Type = configspace.Bool
			p.Default = configspace.BoolValue(defaults[s.Name] == "y")
		case TypeTristate:
			p.Type = configspace.Tristate
			switch defaults[s.Name] {
			case "y":
				p.Default = configspace.TriValue(configspace.TriYes)
			case "m":
				p.Default = configspace.TriValue(configspace.TriModule)
			default:
				p.Default = configspace.TriValue(configspace.TriNo)
			}
		case TypeInt, TypeHex:
			if s.Type == TypeHex {
				p.Type = configspace.Hex
			} else {
				p.Type = configspace.Int
			}
			def, err := parseKNum(defaults[s.Name])
			if err != nil {
				def = 0
			}
			min, max := t.intRange(s, defaults, def, def)
			if def < min {
				def = min
			}
			if def > max {
				def = max
			}
			p.Min, p.Max = min, max
			p.Default = configspace.IntValue(def)
		default: // string
			p.Type = configspace.Enum
			v := defaults[s.Name]
			if v == "" {
				v = "(empty)"
			}
			p.Values = []string{v}
			p.Default = configspace.EnumValue(v)
		}
		if err := space.Add(p); err != nil {
			return nil, err
		}
	}
	return space, nil
}
