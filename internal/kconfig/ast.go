package kconfig

import (
	"fmt"
	"strings"
)

// SymbolType enumerates the Kconfig option kinds (Table 1's columns).
type SymbolType int

const (
	// TypeUnknown marks symbols referenced before definition.
	TypeUnknown SymbolType = iota
	// TypeBool is an on/off option.
	TypeBool
	// TypeTristate is an n/m/y option.
	TypeTristate
	// TypeString is a free-form string option.
	TypeString
	// TypeHex is a hexadecimal integer option.
	TypeHex
	// TypeInt is a decimal integer option.
	TypeInt
)

// String returns the Kconfig keyword for the type.
func (t SymbolType) String() string {
	switch t {
	case TypeBool:
		return "bool"
	case TypeTristate:
		return "tristate"
	case TypeString:
		return "string"
	case TypeHex:
		return "hex"
	case TypeInt:
		return "int"
	default:
		return "unknown"
	}
}

// Tristate is a Kconfig tristate value; bools use No and Yes only.
type Tristate int

// Tristate values, ordered so that && is min and || is max.
const (
	No     Tristate = 0
	Module Tristate = 1
	Yes    Tristate = 2
)

// String returns the n/m/y spelling.
func (t Tristate) String() string {
	switch t {
	case Yes:
		return "y"
	case Module:
		return "m"
	default:
		return "n"
	}
}

// Expr is a Kconfig dependency expression.
type Expr interface {
	// Eval computes the tristate value of the expression under an
	// assignment of symbol values.
	Eval(get func(name string) Tristate) Tristate
	// Symbols appends the names referenced by the expression.
	Symbols(into []string) []string
	String() string
}

// SymbolRef references a config symbol (or the constants y/m/n).
type SymbolRef struct{ Name string }

// Eval implements Expr.
func (e *SymbolRef) Eval(get func(string) Tristate) Tristate {
	switch e.Name {
	case "y":
		return Yes
	case "m":
		return Module
	case "n":
		return No
	}
	return get(e.Name)
}

// Symbols implements Expr.
func (e *SymbolRef) Symbols(into []string) []string {
	switch e.Name {
	case "y", "m", "n":
		return into
	}
	return append(into, e.Name)
}

func (e *SymbolRef) String() string { return e.Name }

// NotExpr is !x (tristate negation: 2 - x).
type NotExpr struct{ X Expr }

// Eval implements Expr.
func (e *NotExpr) Eval(get func(string) Tristate) Tristate { return Yes - e.X.Eval(get) }

// Symbols implements Expr.
func (e *NotExpr) Symbols(into []string) []string { return e.X.Symbols(into) }

func (e *NotExpr) String() string { return "!" + e.X.String() }

// AndExpr is x && y (tristate min).
type AndExpr struct{ X, Y Expr }

// Eval implements Expr.
func (e *AndExpr) Eval(get func(string) Tristate) Tristate {
	a, b := e.X.Eval(get), e.Y.Eval(get)
	if a < b {
		return a
	}
	return b
}

// Symbols implements Expr.
func (e *AndExpr) Symbols(into []string) []string { return e.Y.Symbols(e.X.Symbols(into)) }

func (e *AndExpr) String() string { return "(" + e.X.String() + " && " + e.Y.String() + ")" }

// OrExpr is x || y (tristate max).
type OrExpr struct{ X, Y Expr }

// Eval implements Expr.
func (e *OrExpr) Eval(get func(string) Tristate) Tristate {
	a, b := e.X.Eval(get), e.Y.Eval(get)
	if a > b {
		return a
	}
	return b
}

// Symbols implements Expr.
func (e *OrExpr) Symbols(into []string) []string { return e.Y.Symbols(e.X.Symbols(into)) }

func (e *OrExpr) String() string { return "(" + e.X.String() + " || " + e.Y.String() + ")" }

// CmpExpr is x = y or x != y over symbol values; it evaluates to y or n.
type CmpExpr struct {
	X, Y Expr
	Neq  bool
}

// Eval implements Expr.
func (e *CmpExpr) Eval(get func(string) Tristate) Tristate {
	eq := e.X.Eval(get) == e.Y.Eval(get)
	if eq != e.Neq {
		return Yes
	}
	return No
}

// Symbols implements Expr.
func (e *CmpExpr) Symbols(into []string) []string { return e.Y.Symbols(e.X.Symbols(into)) }

func (e *CmpExpr) String() string {
	op := "="
	if e.Neq {
		op = "!="
	}
	return "(" + e.X.String() + " " + op + " " + e.Y.String() + ")"
}

// Default is one "default VALUE [if COND]" clause.
type Default struct {
	Value string // literal value or symbol name
	Cond  Expr   // nil = unconditional
}

// Select is one "select SYMBOL [if COND]" clause.
type Select struct {
	Target string
	Cond   Expr
}

// Range is an "int"/"hex" "range MIN MAX [if COND]" clause.
type Range struct {
	Min, Max string
	Cond     Expr
}

// Symbol is one config/menuconfig entry.
type Symbol struct {
	Name      string
	Type      SymbolType
	Prompt    string
	Help      string
	DependsOn Expr // conjunction of all depends-on lines and enclosing if/menu conditions
	Defaults  []Default
	Selects   []Select
	Ranges    []Range
	// Choice is non-nil when the symbol is a member of a choice group.
	Choice *Choice
}

// Choice is a Kconfig choice block: a group of bool symbols of which
// exactly one is y (when the choice is active).
type Choice struct {
	Prompt  string
	Members []*Symbol
	Default string // symbol name
}

// Tree is a parsed Kconfig hierarchy.
type Tree struct {
	Symbols []*Symbol
	Choices []*Choice
	byName  map[string]*Symbol
}

// Lookup returns the named symbol, or nil.
func (t *Tree) Lookup(name string) *Symbol {
	return t.byName[name]
}

// Len returns the number of config symbols.
func (t *Tree) Len() int { return len(t.Symbols) }

// Census counts symbols per type — one Linux version's column set in the
// paper's Table 1 / Figure 1.
type Census struct {
	Bool, Tristate, String, Hex, Int int
}

// Total returns the total option count.
func (c Census) Total() int { return c.Bool + c.Tristate + c.String + c.Hex + c.Int }

// Census counts the tree's symbols by type.
func (t *Tree) Census() Census {
	var c Census
	for _, s := range t.Symbols {
		switch s.Type {
		case TypeBool:
			c.Bool++
		case TypeTristate:
			c.Tristate++
		case TypeString:
			c.String++
		case TypeHex:
			c.Hex++
		case TypeInt:
			c.Int++
		}
	}
	return c
}

// conj returns a && b, eliding nils.
func conj(a, b Expr) Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &AndExpr{X: a, Y: b}
}

// DependencyOrder returns the symbols topologically sorted so that every
// symbol appears after the symbols its depends-on expression references.
// Cycles (legal in real Kconfig via select, but pathological) are broken
// arbitrarily and reported.
func (t *Tree) DependencyOrder() (order []*Symbol, cyclic []string) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(t.Symbols))
	var visit func(s *Symbol)
	visit = func(s *Symbol) {
		switch state[s.Name] {
		case gray:
			cyclic = append(cyclic, s.Name)
			return
		case black:
			return
		}
		state[s.Name] = gray
		if s.DependsOn != nil {
			for _, dep := range s.DependsOn.Symbols(nil) {
				if d := t.byName[dep]; d != nil {
					visit(d)
				}
			}
		}
		state[s.Name] = black
		order = append(order, s)
	}
	for _, s := range t.Symbols {
		visit(s)
	}
	return order, cyclic
}

// String renders the tree back to Kconfig syntax (round-trip support).
func (t *Tree) String() string {
	var b strings.Builder
	seenChoice := map[*Choice]bool{}
	for _, s := range t.Symbols {
		if s.Choice != nil {
			if seenChoice[s.Choice] {
				continue
			}
			seenChoice[s.Choice] = true
			b.WriteString("choice\n")
			if s.Choice.Prompt != "" {
				fmt.Fprintf(&b, "\tprompt \"%s\"\n", s.Choice.Prompt)
			}
			if s.Choice.Default != "" {
				fmt.Fprintf(&b, "\tdefault %s\n", s.Choice.Default)
			}
			b.WriteString("\n")
			for _, m := range s.Choice.Members {
				writeSymbol(&b, m)
			}
			b.WriteString("endchoice\n\n")
			continue
		}
		writeSymbol(&b, s)
	}
	return b.String()
}

func writeSymbol(b *strings.Builder, s *Symbol) {
	fmt.Fprintf(b, "config %s\n", s.Name)
	if s.Prompt != "" {
		fmt.Fprintf(b, "\t%s \"%s\"\n", s.Type, s.Prompt)
	} else {
		fmt.Fprintf(b, "\t%s\n", s.Type)
	}
	if s.DependsOn != nil {
		fmt.Fprintf(b, "\tdepends on %s\n", s.DependsOn)
	}
	for _, d := range s.Defaults {
		v := d.Value
		if s.Type == TypeString {
			v = "\"" + v + "\""
		}
		if d.Cond != nil {
			fmt.Fprintf(b, "\tdefault %s if %s\n", v, d.Cond)
		} else {
			fmt.Fprintf(b, "\tdefault %s\n", v)
		}
	}
	for _, sel := range s.Selects {
		if sel.Cond != nil {
			fmt.Fprintf(b, "\tselect %s if %s\n", sel.Target, sel.Cond)
		} else {
			fmt.Fprintf(b, "\tselect %s\n", sel.Target)
		}
	}
	for _, r := range s.Ranges {
		fmt.Fprintf(b, "\trange %s %s\n", r.Min, r.Max)
	}
	if s.Help != "" {
		b.WriteString("\thelp\n")
		for _, line := range strings.Split(s.Help, "\n") {
			fmt.Fprintf(b, "\t  %s\n", line)
		}
	}
	b.WriteString("\n")
}
