// Package kconfig implements the subset of the Linux Kconfig configuration
// language that Wayfinder needs to define compile-time search spaces: the
// lexer and parser for config/menuconfig/choice/menu/if blocks, tristate
// expression evaluation, dependency-respecting configuration generation,
// and an option census (the data behind the paper's Table 1 and Figure 1).
//
// The real Linux tree is not available offline, so the package also ships a
// deterministic generator that synthesizes Kconfig trees with the option
// counts and dependency structure of given kernel versions (see DESIGN.md,
// Substitutions).
package kconfig

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNewline
	tokIdent  // CONFIG symbol or keyword
	tokString // "quoted"
	tokNumber // 123 or 0xabc
	tokAndAnd // &&
	tokOrOr   // ||
	tokNot    // !
	tokEq     // =
	tokNeq    // !=
	tokLParen // (
	tokRParen // )
	tokHelp   // a whole help block, pre-collected
)

type token struct {
	kind tokenKind
	text string
	line int
}

// lexer tokenizes Kconfig source. Kconfig is line-oriented: keywords start
// entries, attributes are indented lines, and "help" swallows the following
// more-indented block verbatim.
type lexer struct {
	lines []string
	// queue of tokens for the current line
	queue []token
	line  int // 1-based index of the next line to lex
}

func newLexer(src string) *lexer {
	return &lexer{lines: strings.Split(src, "\n")}
}

// next returns the next token, lexing line by line. Every source line
// yields its tokens followed by one tokNewline.
func (lx *lexer) next() (token, error) {
	for len(lx.queue) == 0 {
		if lx.line >= len(lx.lines) {
			return token{kind: tokEOF, line: lx.line}, nil
		}
		raw := lx.lines[lx.line]
		lx.line++
		if err := lx.lexLine(raw, lx.line); err != nil {
			return token{}, err
		}
	}
	t := lx.queue[0]
	lx.queue = lx.queue[1:]
	return t, nil
}

func (lx *lexer) lexLine(raw string, lineNo int) error {
	s := raw
	// Strip comments: '#' outside quotes.
	inQ := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQ != 0 {
			if c == inQ {
				inQ = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inQ = c
		case '#':
			s = s[:i]
		}
		if len(s) <= i {
			break
		}
	}
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return nil // skip blank lines entirely; entries are keyword-delimited
	}
	if trimmed == "help" || trimmed == "---help---" {
		// Collect the indented help body.
		var body []string
		for lx.line < len(lx.lines) {
			l := lx.lines[lx.line]
			t := strings.TrimSpace(l)
			if t == "" {
				lx.line++
				body = append(body, "")
				continue
			}
			if !strings.HasPrefix(l, "\t") && !strings.HasPrefix(l, "  ") {
				break
			}
			body = append(body, t)
			lx.line++
		}
		lx.queue = append(lx.queue,
			token{kind: tokHelp, text: strings.TrimSpace(strings.Join(body, "\n")), line: lineNo},
			token{kind: tokNewline, line: lineNo})
		return nil
	}
	i := 0
	for i < len(trimmed) {
		c := trimmed[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '"' || c == '\'':
			j := i + 1
			for j < len(trimmed) && trimmed[j] != c {
				j++
			}
			if j >= len(trimmed) {
				return fmt.Errorf("kconfig: line %d: unterminated string", lineNo)
			}
			lx.queue = append(lx.queue, token{kind: tokString, text: trimmed[i+1 : j], line: lineNo})
			i = j + 1
		case c == '&':
			if i+1 < len(trimmed) && trimmed[i+1] == '&' {
				lx.queue = append(lx.queue, token{kind: tokAndAnd, line: lineNo})
				i += 2
			} else {
				return fmt.Errorf("kconfig: line %d: stray '&'", lineNo)
			}
		case c == '|':
			if i+1 < len(trimmed) && trimmed[i+1] == '|' {
				lx.queue = append(lx.queue, token{kind: tokOrOr, line: lineNo})
				i += 2
			} else {
				return fmt.Errorf("kconfig: line %d: stray '|'", lineNo)
			}
		case c == '!':
			if i+1 < len(trimmed) && trimmed[i+1] == '=' {
				lx.queue = append(lx.queue, token{kind: tokNeq, line: lineNo})
				i += 2
			} else {
				lx.queue = append(lx.queue, token{kind: tokNot, line: lineNo})
				i++
			}
		case c == '=':
			lx.queue = append(lx.queue, token{kind: tokEq, line: lineNo})
			i++
		case c == '(':
			lx.queue = append(lx.queue, token{kind: tokLParen, line: lineNo})
			i++
		case c == ')':
			lx.queue = append(lx.queue, token{kind: tokRParen, line: lineNo})
			i++
		case isNumStart(c):
			j := i + 1
			for j < len(trimmed) && isWordChar(trimmed[j]) {
				j++
			}
			lx.queue = append(lx.queue, token{kind: tokNumber, text: trimmed[i:j], line: lineNo})
			i = j
		case isWordChar(c):
			j := i + 1
			for j < len(trimmed) && isWordChar(trimmed[j]) {
				j++
			}
			lx.queue = append(lx.queue, token{kind: tokIdent, text: trimmed[i:j], line: lineNo})
			i = j
		default:
			return fmt.Errorf("kconfig: line %d: unexpected character %q", lineNo, string(c))
		}
	}
	lx.queue = append(lx.queue, token{kind: tokNewline, line: lineNo})
	return nil
}

func isNumStart(c byte) bool { return c >= '0' && c <= '9' }

func isWordChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
