package kconfig

import (
	"fmt"
	"strings"

	"wayfinder/internal/rng"
)

// VersionCensus records the compile-time option counts of one Linux
// release. The counts behind Figure 1 (total options per version) and
// Table 1 (the per-type breakdown for 6.0) are reproduced here; older
// versions use the paper's Figure 1 trajectory with per-type splits
// matching the historical bool/tristate balance.
type VersionCensus struct {
	Version string
	Census  Census
}

// LinuxVersions lists the releases on the paper's Figure 1 x-axis with
// their approximate compile-time option counts. The v6.0 entry matches
// Table 1 exactly (7585 bool, 10034 tristate, 154 string, 94 hex, 3405 int,
// 21272 total).
var LinuxVersions = []VersionCensus{
	{"v2.6.13", Census{Bool: 2144, Tristate: 3239, String: 38, Hex: 62, Int: 414}},
	{"v2.6.20", Census{Bool: 2703, Tristate: 3816, String: 44, Hex: 68, Int: 537}},
	{"v2.6.27", Census{Bool: 3342, Tristate: 4598, String: 54, Hex: 72, Int: 702}},
	{"v2.6.35", Census{Bool: 4078, Tristate: 5471, String: 64, Hex: 76, Int: 905}},
	{"v3.2", Census{Bool: 4710, Tristate: 6227, String: 74, Hex: 80, Int: 1126}},
	{"v3.10", Census{Bool: 5368, Tristate: 7017, String: 86, Hex: 84, Int: 1401}},
	{"v3.17", Census{Bool: 5859, Tristate: 7602, String: 96, Hex: 86, Int: 1648}},
	{"v4.4", Census{Bool: 6272, Tristate: 8103, String: 108, Hex: 88, Int: 1961}},
	{"v4.12", Census{Bool: 6634, Tristate: 8541, String: 118, Hex: 90, Int: 2309}},
	{"v4.19", Census{Bool: 6925, Tristate: 8902, String: 128, Hex: 91, Int: 2632}},
	{"v5.6", Census{Bool: 7189, Tristate: 9335, String: 138, Hex: 92, Int: 2960}},
	{"v5.13", Census{Bool: 7399, Tristate: 9689, String: 146, Hex: 93, Int: 3194}},
	{"v6.0", Census{Bool: 7585, Tristate: 10034, String: 154, Hex: 94, Int: 3405}},
}

// LookupVersion returns the census entry for a version string.
func LookupVersion(version string) (VersionCensus, bool) {
	for _, v := range LinuxVersions {
		if v.Version == version {
			return v, true
		}
	}
	return VersionCensus{}, false
}

// subsystems gives the generator a realistic menu structure: every
// generated symbol belongs to one subsystem menu, and dependencies stay
// mostly within a subsystem with occasional cross-subsystem "select"s,
// like the real tree.
var subsystems = []string{
	"GENERAL", "NET", "BLOCK", "FS", "MM", "SCHED", "DRIVERS", "SOUND",
	"CRYPTO", "SECURITY", "DEBUG", "ARCH", "POWER", "VIRT",
}

// Generate synthesizes a Kconfig source tree with exactly the requested
// per-type option counts, deterministic in seed. The structure mimics the
// real tree: subsystem menus, 2–4 level dependency chains, select edges,
// choices, defaults, and ranges on numeric options.
func Generate(census Census, seed uint64) string {
	r := rng.New(seed)
	var b strings.Builder
	b.WriteString("mainmenu \"Synthetic Linux Kernel Configuration\"\n\n")

	// Work out per-subsystem shares.
	total := census.Total()
	type slot struct {
		typ SymbolType
		n   int
	}
	slots := []slot{
		{TypeBool, census.Bool},
		{TypeTristate, census.Tristate},
		{TypeString, census.String},
		{TypeHex, census.Hex},
		{TypeInt, census.Int},
	}
	// Distribute symbols round-robin weighted by remaining counts, keeping
	// a per-subsystem recent-symbol pool for dependency edges.
	perSub := total / len(subsystems)
	_ = perSub
	counters := map[string]int{}
	recent := map[string][]string{}
	subIdx := 0
	emitted := 0

	emit := func(typ SymbolType) {
		sub := subsystems[subIdx%len(subsystems)]
		subIdx++
		counters[sub]++
		name := fmt.Sprintf("%s_OPT_%04d", sub, counters[sub])
		fmt.Fprintf(&b, "config %s\n", name)
		switch typ {
		case TypeBool:
			fmt.Fprintf(&b, "\tbool \"%s option %d\"\n", strings.ToLower(sub), counters[sub])
		case TypeTristate:
			fmt.Fprintf(&b, "\ttristate \"%s driver %d\"\n", strings.ToLower(sub), counters[sub])
		case TypeString:
			fmt.Fprintf(&b, "\tstring \"%s name %d\"\n", strings.ToLower(sub), counters[sub])
			fmt.Fprintf(&b, "\tdefault \"%s-default\"\n", strings.ToLower(sub))
		case TypeHex:
			fmt.Fprintf(&b, "\thex \"%s base %d\"\n", strings.ToLower(sub), counters[sub])
			fmt.Fprintf(&b, "\tdefault 0x%x\n", 0x1000*(1+r.Intn(256)))
			b.WriteString("\trange 0x1000 0x1000000\n")
		case TypeInt:
			fmt.Fprintf(&b, "\tint \"%s count %d\"\n", strings.ToLower(sub), counters[sub])
			def := 1 << uint(2+r.Intn(12))
			fmt.Fprintf(&b, "\tdefault %d\n", def)
			fmt.Fprintf(&b, "\trange 1 %d\n", def*64)
		}
		pool := recent[sub]
		// ~55% of symbols depend on an earlier symbol in their subsystem,
		// giving the multi-level dependency chains that make a third of
		// naively-random configurations invalid.
		if len(pool) > 0 && r.Chance(0.55) {
			dep := pool[r.Intn(len(pool))]
			if r.Chance(0.15) && len(pool) > 1 {
				dep2 := pool[r.Intn(len(pool))]
				if dep2 != dep {
					fmt.Fprintf(&b, "\tdepends on %s && %s\n", dep, dep2)
				} else {
					fmt.Fprintf(&b, "\tdepends on %s\n", dep)
				}
			} else if r.Chance(0.1) && len(pool) > 1 {
				dep2 := pool[r.Intn(len(pool))]
				fmt.Fprintf(&b, "\tdepends on %s || %s\n", dep, dep2)
			} else {
				fmt.Fprintf(&b, "\tdepends on %s\n", dep)
			}
		}
		// ~6% select an earlier symbol, possibly cross-subsystem — the
		// mechanism that produces valid-on-paper-but-broken configs.
		if (typ == TypeBool || typ == TypeTristate) && r.Chance(0.06) {
			other := subsystems[r.Intn(len(subsystems))]
			if opool := recent[other]; len(opool) > 0 {
				fmt.Fprintf(&b, "\tselect %s\n", opool[r.Intn(len(opool))])
			}
		}
		if typ == TypeBool || typ == TypeTristate {
			// Default distribution approximating a defconfig: most options
			// off, a core set on.
			switch {
			case r.Chance(0.25):
				b.WriteString("\tdefault y\n")
			case typ == TypeTristate && r.Chance(0.15):
				b.WriteString("\tdefault m\n")
			}
			pool = append(pool, name)
			if len(pool) > 40 {
				pool = pool[1:]
			}
			recent[sub] = pool
		}
		b.WriteString("\n")
		emitted++
	}

	// Interleave types proportionally so subsystems get a realistic mix.
	remaining := 0
	for _, s := range slots {
		remaining += s.n
	}
	for remaining > 0 {
		weights := make([]float64, len(slots))
		for i, s := range slots {
			weights[i] = float64(s.n)
		}
		i := r.Choice(weights)
		if slots[i].n == 0 {
			continue
		}
		emit(slots[i].typ)
		slots[i].n--
		remaining--
	}
	return b.String()
}

// GenerateVersion synthesizes the Kconfig tree for a named Linux version.
func GenerateVersion(version string, seed uint64) (string, error) {
	vc, ok := LookupVersion(version)
	if !ok {
		return "", fmt.Errorf("kconfig: unknown version %q", version)
	}
	return Generate(vc.Census, seed), nil
}
