package kconfig

import (
	"fmt"
)

// Parse parses Kconfig source into a Tree.
//
// Supported constructs: config, menuconfig, choice/endchoice,
// menu/endmenu (with menu-level "depends on"), if/endif, comment lines,
// "source" (resolved via ParseWithSources), mainmenu, and per-entry
// attributes bool/tristate/string/hex/int (with prompt), prompt, default,
// depends on, select, range, and help.
func Parse(src string) (*Tree, error) {
	return ParseWithSources(src, nil)
}

// ParseWithSources parses Kconfig source, resolving `source "path"`
// statements through resolve. A nil resolve makes source statements an
// error.
func ParseWithSources(src string, resolve func(path string) (string, error)) (*Tree, error) {
	p := &parser{lx: newLexer(src), resolve: resolve}
	if err := p.advance(); err != nil {
		return nil, err
	}
	tree := &Tree{byName: map[string]*Symbol{}}
	if err := p.parseBlock(tree, nil, ""); err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("kconfig: line %d: unexpected %q", p.tok.line, p.tok.text)
	}
	return tree, nil
}

type parser struct {
	lx      *lexer
	tok     token
	resolve func(string) (string, error)
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// skipNewlines consumes newline tokens.
func (p *parser) skipNewlines() error {
	for p.tok.kind == tokNewline {
		if err := p.advance(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) expectNewline() error {
	if p.tok.kind != tokNewline && p.tok.kind != tokEOF {
		return fmt.Errorf("kconfig: line %d: trailing %q", p.tok.line, p.tok.text)
	}
	return p.skipNewlines()
}

// parseBlock parses entries until one of the given terminators (or EOF for
// the top level). cond is the conjunction of enclosing if/menu conditions.
func (p *parser) parseBlock(tree *Tree, cond Expr, terminator string) error {
	for {
		if err := p.skipNewlines(); err != nil {
			return err
		}
		if p.tok.kind == tokEOF {
			if terminator != "" {
				return fmt.Errorf("kconfig: unexpected EOF, expected %q", terminator)
			}
			return nil
		}
		if p.tok.kind != tokIdent {
			return fmt.Errorf("kconfig: line %d: expected keyword, got %q", p.tok.line, p.tok.text)
		}
		kw := p.tok.text
		if kw == terminator {
			if err := p.advance(); err != nil {
				return err
			}
			return p.expectNewline()
		}
		switch kw {
		case "config", "menuconfig":
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.parseConfig(tree, cond, nil); err != nil {
				return err
			}
		case "choice":
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.parseChoice(tree, cond); err != nil {
				return err
			}
		case "menu":
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokString {
				return fmt.Errorf("kconfig: line %d: menu requires a title", p.tok.line)
			}
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expectNewline(); err != nil {
				return err
			}
			menuCond := cond
			// A menu may begin with its own depends-on lines.
			for p.tok.kind == tokIdent && p.tok.text == "depends" {
				e, err := p.parseDependsOn()
				if err != nil {
					return err
				}
				menuCond = conj(menuCond, e)
			}
			if err := p.parseBlock(tree, menuCond, "endmenu"); err != nil {
				return err
			}
		case "if":
			if err := p.advance(); err != nil {
				return err
			}
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			if err := p.expectNewline(); err != nil {
				return err
			}
			if err := p.parseBlock(tree, conj(cond, e), "endif"); err != nil {
				return err
			}
		case "comment":
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind == tokString {
				if err := p.advance(); err != nil {
					return err
				}
			}
			if err := p.expectNewline(); err != nil {
				return err
			}
		case "mainmenu":
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind == tokString {
				if err := p.advance(); err != nil {
					return err
				}
			}
			if err := p.expectNewline(); err != nil {
				return err
			}
		case "source":
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokString {
				return fmt.Errorf("kconfig: line %d: source requires a path", p.tok.line)
			}
			path := p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expectNewline(); err != nil {
				return err
			}
			if p.resolve == nil {
				return fmt.Errorf("kconfig: source %q: no resolver provided", path)
			}
			sub, err := p.resolve(path)
			if err != nil {
				return fmt.Errorf("kconfig: source %q: %w", path, err)
			}
			subtree, err := ParseWithSources(sub, p.resolve)
			if err != nil {
				return fmt.Errorf("kconfig: source %q: %w", path, err)
			}
			for _, s := range subtree.Symbols {
				s.DependsOn = conj(cond, s.DependsOn)
				if err := addSymbol(tree, s); err != nil {
					return err
				}
			}
			tree.Choices = append(tree.Choices, subtree.Choices...)
		default:
			return fmt.Errorf("kconfig: line %d: unknown keyword %q", p.tok.line, kw)
		}
	}
}

func addSymbol(tree *Tree, s *Symbol) error {
	if prev, ok := tree.byName[s.Name]; ok {
		// Real Kconfig merges redefinitions; we merge attributes into the
		// first definition, matching that behaviour closely enough for a
		// search space definition.
		if prev.Type == TypeUnknown {
			prev.Type = s.Type
		}
		prev.Defaults = append(prev.Defaults, s.Defaults...)
		prev.Selects = append(prev.Selects, s.Selects...)
		prev.Ranges = append(prev.Ranges, s.Ranges...)
		prev.DependsOn = conj(prev.DependsOn, s.DependsOn)
		return nil
	}
	tree.byName[s.Name] = s
	tree.Symbols = append(tree.Symbols, s)
	return nil
}

// parseConfig parses the body of a config entry, the `config NAME` keyword
// and name already consumed up to the name token.
func (p *parser) parseConfig(tree *Tree, cond Expr, choice *Choice) error {
	if p.tok.kind != tokIdent {
		return fmt.Errorf("kconfig: line %d: config requires a symbol name", p.tok.line)
	}
	sym := &Symbol{Name: p.tok.text, DependsOn: cond, Choice: choice}
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expectNewline(); err != nil {
		return err
	}
	for {
		if p.tok.kind == tokHelp {
			sym.Help = p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expectNewline(); err != nil {
				return err
			}
			continue
		}
		if p.tok.kind != tokIdent {
			break
		}
		switch p.tok.text {
		case "bool", "tristate", "string", "hex", "int":
			sym.Type = map[string]SymbolType{
				"bool": TypeBool, "tristate": TypeTristate,
				"string": TypeString, "hex": TypeHex, "int": TypeInt,
			}[p.tok.text]
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind == tokString {
				sym.Prompt = p.tok.text
				if err := p.advance(); err != nil {
					return err
				}
				// optional "if EXPR" after prompt
				if p.tok.kind == tokIdent && p.tok.text == "if" {
					if err := p.advance(); err != nil {
						return err
					}
					if _, err := p.parseExpr(); err != nil {
						return err
					}
				}
			}
			if err := p.expectNewline(); err != nil {
				return err
			}
		case "prompt":
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind == tokString {
				sym.Prompt = p.tok.text
				if err := p.advance(); err != nil {
					return err
				}
			}
			if err := p.expectNewline(); err != nil {
				return err
			}
		case "default", "def_bool", "def_tristate":
			kind := p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
			if kind == "def_bool" && sym.Type == TypeUnknown {
				sym.Type = TypeBool
			}
			if kind == "def_tristate" && sym.Type == TypeUnknown {
				sym.Type = TypeTristate
			}
			var value string
			switch p.tok.kind {
			case tokIdent, tokNumber:
				value = p.tok.text
			case tokString:
				value = p.tok.text
			default:
				return fmt.Errorf("kconfig: line %d: bad default", p.tok.line)
			}
			if err := p.advance(); err != nil {
				return err
			}
			var dcond Expr
			if p.tok.kind == tokIdent && p.tok.text == "if" {
				if err := p.advance(); err != nil {
					return err
				}
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				dcond = e
			}
			sym.Defaults = append(sym.Defaults, Default{Value: value, Cond: dcond})
			if err := p.expectNewline(); err != nil {
				return err
			}
		case "depends":
			e, err := p.parseDependsOn()
			if err != nil {
				return err
			}
			sym.DependsOn = conj(sym.DependsOn, e)
		case "select", "imply":
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokIdent {
				return fmt.Errorf("kconfig: line %d: select requires a symbol", p.tok.line)
			}
			target := p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
			var scond Expr
			if p.tok.kind == tokIdent && p.tok.text == "if" {
				if err := p.advance(); err != nil {
					return err
				}
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				scond = e
			}
			sym.Selects = append(sym.Selects, Select{Target: target, Cond: scond})
			if err := p.expectNewline(); err != nil {
				return err
			}
		case "range":
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokNumber && p.tok.kind != tokIdent {
				return fmt.Errorf("kconfig: line %d: range requires bounds", p.tok.line)
			}
			min := p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokNumber && p.tok.kind != tokIdent {
				return fmt.Errorf("kconfig: line %d: range requires two bounds", p.tok.line)
			}
			max := p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
			var rcond Expr
			if p.tok.kind == tokIdent && p.tok.text == "if" {
				if err := p.advance(); err != nil {
					return err
				}
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				rcond = e
			}
			sym.Ranges = append(sym.Ranges, Range{Min: min, Max: max, Cond: rcond})
			if err := p.expectNewline(); err != nil {
				return err
			}
		default:
			// Next entry begins.
			goto done
		}
	}
done:
	if sym.Type == TypeUnknown {
		sym.Type = TypeBool
	}
	if choice != nil {
		choice.Members = append(choice.Members, sym)
	}
	return addSymbol(tree, sym)
}

func (p *parser) parseDependsOn() (Expr, error) {
	// current token is "depends"
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent || p.tok.text != "on" {
		return nil, fmt.Errorf("kconfig: line %d: expected 'on' after 'depends'", p.tok.line)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return e, p.expectNewline()
}

func (p *parser) parseChoice(tree *Tree, cond Expr) error {
	ch := &Choice{}
	if err := p.expectNewline(); err != nil {
		return err
	}
	for {
		if err := p.skipNewlines(); err != nil {
			return err
		}
		if p.tok.kind == tokHelp {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		if p.tok.kind != tokIdent {
			return fmt.Errorf("kconfig: line %d: unexpected token in choice", p.tok.line)
		}
		switch p.tok.text {
		case "endchoice":
			if err := p.advance(); err != nil {
				return err
			}
			tree.Choices = append(tree.Choices, ch)
			return p.expectNewline()
		case "config":
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.parseConfig(tree, cond, ch); err != nil {
				return err
			}
		case "prompt":
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind == tokString {
				ch.Prompt = p.tok.text
				if err := p.advance(); err != nil {
					return err
				}
			}
			if err := p.expectNewline(); err != nil {
				return err
			}
		case "default":
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokIdent {
				return fmt.Errorf("kconfig: line %d: choice default requires a symbol", p.tok.line)
			}
			ch.Default = p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.expectNewline(); err != nil {
				return err
			}
		case "bool", "tristate":
			// choice type line, optionally with prompt
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind == tokString {
				ch.Prompt = p.tok.text
				if err := p.advance(); err != nil {
					return err
				}
			}
			if err := p.expectNewline(); err != nil {
				return err
			}
		case "depends":
			if _, err := p.parseDependsOn(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("kconfig: line %d: unknown keyword %q in choice", p.tok.line, p.tok.text)
		}
	}
}

// parseExpr parses a dependency expression with precedence
// (!) > (=, !=) > (&&) > (||).
func (p *parser) parseExpr() (Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOrOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &OrExpr{X: left, Y: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAndAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = &AndExpr{X: left, Y: right}
	}
	return left, nil
}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokEq || p.tok.kind == tokNeq {
		neq := p.tok.kind == tokNeq
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &CmpExpr{X: left, Y: right, Neq: neq}, nil
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.tok.kind {
	case tokNot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("kconfig: line %d: missing ')'", p.tok.line)
		}
		return e, p.advance()
	case tokIdent, tokNumber:
		e := &SymbolRef{Name: p.tok.text}
		return e, p.advance()
	default:
		return nil, fmt.Errorf("kconfig: line %d: unexpected token in expression", p.tok.line)
	}
}
