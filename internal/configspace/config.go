package configspace

import (
	"fmt"
	"hash/fnv"
	"maps"
	"math"
	"slices"
	"sort"
	"strings"
)

// Config is a concrete assignment of a value to every parameter in a Space.
// The paper calls these "permutations".
type Config struct {
	space  *Space
	values []Value
}

func newConfig(s *Space) *Config {
	return &Config{space: s, values: make([]Value, s.Len())}
}

// Space returns the space the configuration belongs to.
func (c *Config) Space() *Space { return c.space }

// Clone returns a deep copy.
func (c *Config) Clone() *Config {
	out := newConfig(c.space)
	copy(out.values, c.values)
	return out
}

// Value returns the value of the i-th parameter.
func (c *Config) Value(i int) Value { return c.values[i] }

// Get returns the value of the named parameter. The boolean reports whether
// the parameter exists.
func (c *Config) Get(name string) (Value, bool) {
	i := c.space.Index(name)
	if i < 0 {
		return Value{}, false
	}
	return c.values[i], true
}

// GetInt returns the integer value of a named Bool/Tristate/Int/Hex
// parameter, or def when the parameter does not exist.
func (c *Config) GetInt(name string, def int64) int64 {
	if v, ok := c.Get(name); ok {
		return v.I
	}
	return def
}

// GetString returns the string value of a named Enum parameter, or def.
func (c *Config) GetString(name, def string) string {
	if v, ok := c.Get(name); ok {
		return v.S
	}
	return def
}

// Set assigns the named parameter. Out-of-domain values and unknown names
// are errors.
func (c *Config) Set(name string, v Value) error {
	p, i := c.space.Lookup(name)
	if p == nil {
		return fmt.Errorf("configspace: set of unknown parameter %q", name)
	}
	if !p.InDomain(v) {
		return fmt.Errorf("configspace: %s: value %s out of domain", name, p.FormatValue(v))
	}
	c.values[i] = v
	return nil
}

// MustSet is Set that panics on error.
func (c *Config) MustSet(name string, v Value) {
	if err := c.Set(name, v); err != nil {
		panic(err)
	}
}

// SetIndex assigns the i-th parameter without domain checking; the caller
// must guarantee validity. Used on hot paths by the samplers.
func (c *Config) SetIndex(i int, v Value) { c.values[i] = v }

// Equal reports whether two configurations over the same space assign
// identical values.
func (c *Config) Equal(o *Config) bool {
	if c.space != o.space || len(c.values) != len(o.values) {
		return false
	}
	for i := range c.values {
		if c.values[i] != o.values[i] {
			return false
		}
	}
	return true
}

// Diff returns the indices of parameters whose values differ between c and
// o. Both configurations must belong to the same space.
func (c *Config) Diff(o *Config) []int {
	var out []int
	for i := range c.values {
		if c.values[i] != o.values[i] {
			out = append(out, i)
		}
	}
	return out
}

// OnlyRuntimeDiff reports whether every parameter that differs between c
// and o is a Runtime parameter — the predicate behind the §3.1 build-skip
// optimization (and, when boot-time params also match, the reboot skip).
func (c *Config) OnlyRuntimeDiff(o *Config) bool {
	for _, i := range c.Diff(o) {
		if c.space.Param(i).Class != Runtime {
			return false
		}
	}
	return true
}

// OnlyBootOrRuntimeDiff reports whether every differing parameter is
// boot-time or runtime, i.e. the previous build artifact can be reused.
func (c *Config) OnlyBootOrRuntimeDiff(o *Config) bool {
	for _, i := range c.Diff(o) {
		if c.space.Param(i).Class == CompileTime {
			return false
		}
	}
	return true
}

// Hash returns a stable 64-bit fingerprint of the assignment, used for
// deduplicating explored configurations.
func (c *Config) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range c.values {
		u := uint64(v.I)
		for b := 0; b < 8; b++ {
			buf[b] = byte(u >> (8 * b))
		}
		h.Write(buf[:])
		h.Write([]byte(v.S))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Stage-digest salts keep CompileKey, BootKey, and Hash trivially distinct
// even for configurations whose included values coincide.
const (
	compileKeySalt = "wayfinder/compile\x00"
	bootKeySalt    = "wayfinder/boot\x00"
)

// CompileKey returns the canonical digest of the build-stage assignment:
// every compile-time parameter's value, hashed in space order. Two
// configurations share a CompileKey exactly when they can share a built
// image — the content address of the §3.1 build artifact, replacing the
// pairwise OnlyBootOrRuntimeDiff comparison with a digest any cache can
// index on.
func (c *Config) CompileKey() uint64 {
	return c.stageKey(compileKeySalt, false)
}

// BootKey returns the canonical digest of the build+boot-stage assignment:
// compile-time and boot-time parameter values, hashed in space order. Two
// configurations share a BootKey exactly when a running instance of one
// can serve the other by applying runtime deltas live (the reboot-skip
// predicate, previously the pairwise OnlyRuntimeDiff comparison).
func (c *Config) BootKey() uint64 {
	return c.stageKey(bootKeySalt, true)
}

// stageKey hashes the values of the compile-time (and, when includeBoot is
// set, boot-time) parameters in space order. The included subset is fixed
// per space, so sequence positions line up across configurations and
// digest equality is exactly value equality over the subset.
func (c *Config) stageKey(salt string, includeBoot bool) uint64 {
	h := fnv.New64a()
	h.Write([]byte(salt))
	var buf [8]byte
	for i, p := range c.space.Params() {
		if p.Class == Runtime || (p.Class == BootTime && !includeBoot) {
			continue
		}
		v := c.values[i]
		u := uint64(v.I)
		for b := 0; b < 8; b++ {
			buf[b] = byte(u >> (8 * b))
		}
		h.Write(buf[:])
		h.Write([]byte(v.S))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// String renders the non-default assignments compactly, sorted by name.
func (c *Config) String() string {
	var parts []string
	for i, p := range c.space.Params() {
		if c.values[i] == p.Default {
			continue
		}
		parts = append(parts, p.Name+"="+p.FormatValue(c.values[i]))
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "<default>"
	}
	return strings.Join(parts, " ")
}

// KV returns the canonical non-default assignment as a name → formatted
// value map — the round-trippable form of String(). The map is empty for
// the all-default configuration. Space.FromKV inverts it.
func (c *Config) KV() map[string]string {
	out := map[string]string{}
	for i, p := range c.space.Params() {
		if c.values[i] == p.Default {
			continue
		}
		out[p.Name] = p.FormatValue(c.values[i])
	}
	return out
}

// FromKV reconstructs a configuration from a KV assignment over this
// space: the space defaults overlaid with each named value, parsed and
// domain-checked. Unknown names and out-of-domain values are errors, so a
// snapshot taken against a different space version fails loudly instead of
// silently searching the wrong point.
func (s *Space) FromKV(kv map[string]string) (*Config, error) {
	c := s.Default()
	for _, name := range slices.Sorted(maps.Keys(kv)) {
		raw := kv[name]
		p, _ := s.Lookup(name)
		if p == nil {
			return nil, fmt.Errorf("configspace: assignment for unknown parameter %q", name)
		}
		v, err := p.ParseValue(raw)
		if err != nil {
			return nil, fmt.Errorf("configspace: %s: %w", name, err)
		}
		if err := c.Set(name, v); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Encoder maps configurations to fixed-length feature vectors for the
// learning algorithms: booleans to {0,1}, tristates to {0,½,1}, integers to
// a log-scaled position within their range, and enums to one-hot blocks.
// The paper splits a permutation x into categorical x_k and numerical x_n
// (§3.2); the encoder realizes that split while keeping a single flat
// vector, exposing which dimensions are categorical via CategoricalMask.
type Encoder struct {
	space   *Space
	offsets []int // starting feature index per parameter
	dim     int
	catMask []bool
}

// NewEncoder builds an encoder for the given space.
func NewEncoder(s *Space) *Encoder {
	e := &Encoder{space: s, offsets: make([]int, s.Len())}
	dim := 0
	for i, p := range s.Params() {
		e.offsets[i] = dim
		dim += e.width(p)
	}
	e.dim = dim
	e.catMask = make([]bool, dim)
	for i, p := range s.Params() {
		switch p.Type {
		case Bool, Tristate, Enum:
			for j := 0; j < e.width(p); j++ {
				e.catMask[e.offsets[i]+j] = true
			}
		}
	}
	return e
}

func (e *Encoder) width(p *Param) int {
	if p.Type == Enum {
		return len(p.Values)
	}
	return 1
}

// Dim returns the feature-vector length.
func (e *Encoder) Dim() int { return e.dim }

// CategoricalMask reports, per feature dimension, whether it encodes a
// categorical parameter (x_k in the paper's notation) as opposed to a
// numerical one (x_n).
func (e *Encoder) CategoricalMask() []bool { return e.catMask }

// Encode maps a configuration to its feature vector.
func (e *Encoder) Encode(c *Config) []float64 {
	out := make([]float64, e.dim)
	e.EncodeInto(c, out)
	return out
}

// EncodeInto writes the feature vector of c into dst, which must have
// length Dim().
func (e *Encoder) EncodeInto(c *Config, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for i, p := range e.space.Params() {
		off := e.offsets[i]
		v := c.Value(i)
		switch p.Type {
		case Bool:
			dst[off] = float64(v.I)
		case Tristate:
			dst[off] = float64(v.I) / 2
		case Int, Hex:
			dst[off] = normalizeInt(v.I, p.Min, p.Max)
		case Enum:
			if idx := p.enumIndex(v.S); idx >= 0 {
				dst[off+idx] = 1
			}
		}
	}
}

// normalizeInt maps v in [min,max] to [0,1], log-scaled when the range
// spans ≥2 orders of magnitude so that the encoding resolution matches the
// log-uniform sampler.
func normalizeInt(v, min, max int64) float64 {
	if max == min {
		return 0
	}
	if min > 0 && float64(max)/float64(min) >= 100 {
		return (math.Log(float64(v)) - math.Log(float64(min))) /
			(math.Log(float64(max)) - math.Log(float64(min)))
	}
	return float64(v-min) / float64(max-min)
}

// FeatureNames returns a human-readable name per feature dimension
// (parameter name, with "=value" suffixes for one-hot enum slots).
func (e *Encoder) FeatureNames() []string {
	names := make([]string, e.dim)
	for i, p := range e.space.Params() {
		off := e.offsets[i]
		if p.Type == Enum {
			for j, v := range p.Values {
				names[off+j] = p.Name + "=" + v
			}
			continue
		}
		names[off] = p.Name
	}
	return names
}

// ParamOffset returns the first feature index of the i-th parameter.
func (e *Encoder) ParamOffset(i int) int { return e.offsets[i] }

// ParamOfFeature returns the index of the parameter that feature dimension
// d belongs to.
func (e *Encoder) ParamOfFeature(d int) int {
	// offsets are sorted; binary search for the containing parameter.
	lo, hi := 0, len(e.offsets)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if e.offsets[mid] <= d {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
