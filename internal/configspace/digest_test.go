package configspace

import (
	"testing"

	"wayfinder/internal/rng"
)

// mutateClass returns a copy of base with up to k randomly-chosen
// parameters of the given class resampled — a targeted mutation that keeps
// every other class's assignment intact.
func mutateClass(base *Config, class Class, k int, r *rng.RNG) *Config {
	out := base.Clone()
	s := base.Space()
	var idx []int
	for i, p := range s.Params() {
		if p.Class == class {
			idx = append(idx, i)
		}
	}
	for j := 0; j < k && len(idx) > 0; j++ {
		i := idx[r.Intn(len(idx))]
		out.SetIndex(i, sampleValue(s.Param(i), r))
	}
	return out
}

// TestStageDigestsReproducePairwiseSkipDecisions is the property the
// content-addressed cache rests on: for any pair of configurations,
// CompileKey equality must decide the build skip exactly as the pairwise
// OnlyBootOrRuntimeDiff predicate did, and BootKey equality the reboot
// skip exactly as OnlyRuntimeDiff did. The pair pool mixes unrelated
// random configurations (almost surely compile-differing) with targeted
// single-class mutations and exact clones, so both sides of each
// equivalence are exercised many times.
func TestStageDigestsReproducePairwiseSkipDecisions(t *testing.T) {
	s := testSpace(t)
	r := rng.New(42)
	pairs := 0
	check := func(a, b *Config) {
		t.Helper()
		pairs++
		if got, want := a.CompileKey() == b.CompileKey(), a.OnlyBootOrRuntimeDiff(b); got != want {
			t.Fatalf("CompileKey equality %v but OnlyBootOrRuntimeDiff %v for\n  a=%s\n  b=%s",
				got, want, a.String(), b.String())
		}
		if got, want := a.BootKey() == b.BootKey(), a.OnlyRuntimeDiff(b); got != want {
			t.Fatalf("BootKey equality %v but OnlyRuntimeDiff %v for\n  a=%s\n  b=%s",
				got, want, a.String(), b.String())
		}
	}
	for i := 0; i < 400; i++ {
		a := s.Random(r)
		check(a, a.Clone())
		check(a, s.Random(r))
		check(a, mutateClass(a, Runtime, 1+r.Intn(3), r))
		check(a, mutateClass(a, BootTime, 1, r))
		check(a, mutateClass(a, CompileTime, 1+r.Intn(2), r))
		// Mixed boot+runtime mutation: reuses the image, not the instance.
		check(a, mutateClass(mutateClass(a, Runtime, 2, r), BootTime, 1, r))
	}
	if pairs != 400*6 {
		t.Fatalf("exercised %d pairs", pairs)
	}
}

// TestStageDigestsStable pins the digests' invariants: clones agree,
// runtime-only changes leave both digests alone, boot changes move BootKey
// but not CompileKey, and compile changes move both.
func TestStageDigestsStable(t *testing.T) {
	s := testSpace(t)
	a := s.Default()
	if a.CompileKey() != a.Clone().CompileKey() || a.BootKey() != a.Clone().BootKey() {
		t.Fatal("equal configs must digest equal")
	}
	if a.CompileKey() == a.BootKey() {
		t.Fatal("stage digests of the same config should be decorrelated by their salts")
	}
	b := a.Clone()
	b.MustSet("vm.swappiness", IntValue(0))
	if a.CompileKey() != b.CompileKey() || a.BootKey() != b.BootKey() {
		t.Fatal("runtime change must not move stage digests")
	}
	b.MustSet("mitigations", EnumValue("off"))
	if a.CompileKey() != b.CompileKey() {
		t.Fatal("boot change must not move CompileKey")
	}
	if a.BootKey() == b.BootKey() {
		t.Fatal("boot change must move BootKey")
	}
	b.MustSet("CONFIG_PREEMPT", BoolValue(true))
	if a.CompileKey() == b.CompileKey() || a.BootKey() == b.BootKey() {
		t.Fatal("compile change must move both digests")
	}
}
