package configspace

import (
	"fmt"
	"maps"
	"slices"
	"strings"
)

// Job is a parsed Wayfinder job file (§3.1, §3.4): the target OS and
// application under test, the metric to optimize, the exploration budget,
// and the configuration space to explore.
type Job struct {
	// Name identifies the job.
	Name string
	// OS names the target operating system profile ("linux", "unikraft",
	// "linux-riscv").
	OS string
	// App names the application under test ("nginx", "redis", "sqlite",
	// "npb").
	App string
	// Metric is the optimization target ("throughput", "latency",
	// "memory", "score").
	Metric string
	// Maximize reports whether higher metric values are better.
	Maximize bool
	// Iterations is the iteration budget (0 = unlimited, use TimeBudget).
	Iterations int
	// TimeBudgetSec is the virtual-time budget in seconds (0 = unlimited).
	TimeBudgetSec float64
	// Favor maps a parameter class name to a sampling weight.
	Favor map[string]float64
	// Fixed pins parameters to constant values (security-aware mode, §3.5).
	Fixed map[string]string
	// Space is the configuration space to explore.
	Space *Space
}

// ParseJobYAML parses a job file in the YAML subset described in yaml.go.
//
// Example:
//
//	name: nginx-linux
//	os: linux
//	app: nginx
//	metric: throughput
//	maximize: true
//	iterations: 250
//	favor:
//	  runtime: 4
//	  compile: 1
//	fixed:
//	  kernel.randomize_va_space: "2"
//	params:
//	  - name: net.core.somaxconn
//	    type: int
//	    class: runtime
//	    default: 128
//	    min: 16
//	    max: 65536
func ParseJobYAML(src string) (*Job, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	if !root.isMap() {
		return nil, fmt.Errorf("configspace: job file root must be a mapping")
	}
	job := &Job{
		Name:   root.str("name", "unnamed"),
		OS:     root.str("os", "linux"),
		App:    root.str("app", ""),
		Metric: root.str("metric", "throughput"),
		Favor:  map[string]float64{},
		Fixed:  map[string]string{},
	}
	switch strings.ToLower(root.str("maximize", "true")) {
	case "true", "yes", "y", "1":
		job.Maximize = true
	case "false", "no", "n", "0":
		job.Maximize = false
	default:
		return nil, fmt.Errorf("configspace: bad maximize value %q", root.str("maximize", ""))
	}
	iters, err := root.intval("iterations", 0)
	if err != nil {
		return nil, err
	}
	job.Iterations = int(iters)
	budget, err := root.intval("time_budget_sec", 0)
	if err != nil {
		return nil, err
	}
	job.TimeBudgetSec = float64(budget)

	if favor := root.get("favor"); favor != nil && favor.isMap() {
		for _, k := range favor.keys {
			w, err := favor.intval(k, 1)
			if err != nil {
				return nil, err
			}
			if _, err := ParseClass(k); err != nil {
				return nil, err
			}
			job.Favor[k] = float64(w)
		}
	}
	if fixed := root.get("fixed"); fixed != nil && fixed.isMap() {
		for _, k := range fixed.keys {
			job.Fixed[k] = fixed.str(k, "")
		}
	}

	space := NewSpace(job.Name)
	params := root.get("params")
	if params != nil {
		if !params.isSeq() {
			return nil, fmt.Errorf("configspace: params must be a sequence")
		}
		for idx, item := range params.seq {
			p, err := parseParamNode(item)
			if err != nil {
				return nil, fmt.Errorf("configspace: params[%d]: %w", idx, err)
			}
			if err := space.Add(p); err != nil {
				return nil, err
			}
		}
	}
	for class, w := range job.Favor {
		cl, _ := ParseClass(class)
		space.Favor(cl, w)
	}
	// Fixed parameters bind to the job's own space when one is defined;
	// profile-based jobs (no params section) defer resolution to the
	// runner, which knows the target OS profile's space.
	if space.Len() > 0 {
		for _, name := range slices.Sorted(maps.Keys(job.Fixed)) {
			raw := job.Fixed[name]
			p, _ := space.Lookup(name)
			if p == nil {
				return nil, fmt.Errorf("configspace: fixed: unknown parameter %q", name)
			}
			v, err := p.ParseValue(raw)
			if err != nil {
				return nil, err
			}
			if err := space.Fix(name, v); err != nil {
				return nil, err
			}
		}
	}
	job.Space = space
	return job, nil
}

func parseParamNode(n *yamlNode) (*Param, error) {
	if !n.isMap() {
		return nil, fmt.Errorf("parameter entry must be a mapping")
	}
	name := n.str("name", "")
	if name == "" {
		return nil, fmt.Errorf("parameter missing name")
	}
	typ, err := ParseType(n.str("type", "bool"))
	if err != nil {
		return nil, err
	}
	class, err := ParseClass(n.str("class", "runtime"))
	if err != nil {
		return nil, err
	}
	p := &Param{Name: name, Type: typ, Class: class, Help: n.str("help", "")}
	switch typ {
	case Int, Hex:
		p.Min, err = n.intval("min", 0)
		if err != nil {
			return nil, err
		}
		p.Max, err = n.intval("max", p.Min)
		if err != nil {
			return nil, err
		}
		def, err := n.intval("default", p.Min)
		if err != nil {
			return nil, err
		}
		p.Default = IntValue(def)
	case Enum:
		values := n.get("values")
		if values == nil || !values.isSeq() {
			return nil, fmt.Errorf("%s: enum parameter requires a values sequence", name)
		}
		for _, v := range values.seq {
			if !v.isScalar() {
				return nil, fmt.Errorf("%s: enum values must be scalars", name)
			}
			p.Values = append(p.Values, v.scalar)
		}
		def := n.str("default", p.Values[0])
		p.Default = EnumValue(def)
	default: // Bool, Tristate
		raw := n.str("default", "n")
		v, err := p.ParseValue(raw)
		if err != nil {
			return nil, err
		}
		p.Default = v
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteJobYAML renders a job back to the YAML subset, providing round-trip
// persistence for generated spaces (e.g. the output of the §3.4 probing
// heuristic).
func WriteJobYAML(job *Job) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name: %s\n", job.Name)
	fmt.Fprintf(&b, "os: %s\n", job.OS)
	if job.App != "" {
		fmt.Fprintf(&b, "app: %s\n", job.App)
	}
	fmt.Fprintf(&b, "metric: %s\n", job.Metric)
	fmt.Fprintf(&b, "maximize: %v\n", job.Maximize)
	if job.Iterations > 0 {
		fmt.Fprintf(&b, "iterations: %d\n", job.Iterations)
	}
	if job.TimeBudgetSec > 0 {
		fmt.Fprintf(&b, "time_budget_sec: %d\n", int64(job.TimeBudgetSec))
	}
	if len(job.Favor) > 0 {
		b.WriteString("favor:\n")
		for _, class := range []string{"compile", "boot", "runtime"} {
			if w, ok := job.Favor[class]; ok {
				fmt.Fprintf(&b, "  %s: %d\n", class, int64(w))
			}
		}
	}
	if job.Space != nil && job.Space.Len() > 0 {
		b.WriteString("params:\n")
		for _, p := range job.Space.Params() {
			fmt.Fprintf(&b, "  - name: %s\n", p.Name)
			fmt.Fprintf(&b, "    type: %s\n", p.Type)
			fmt.Fprintf(&b, "    class: %s\n", p.Class)
			switch p.Type {
			case Int, Hex:
				fmt.Fprintf(&b, "    default: %d\n", p.Default.I)
				fmt.Fprintf(&b, "    min: %d\n", p.Min)
				fmt.Fprintf(&b, "    max: %d\n", p.Max)
			case Enum:
				fmt.Fprintf(&b, "    default: %s\n", p.Default.S)
				b.WriteString("    values:\n")
				for _, v := range p.Values {
					fmt.Fprintf(&b, "      - %s\n", v)
				}
			default:
				fmt.Fprintf(&b, "    default: %s\n", p.FormatValue(p.Default))
			}
		}
	}
	return b.String()
}
