package configspace

import (
	"fmt"
	"strconv"
	"strings"
)

// The paper's Wayfinder takes "YAML files representing the configuration
// space of the target OS (job files)" as input (§3.1). Since this module is
// stdlib-only, we implement the small YAML subset those job files need:
// block mappings, block sequences, nested indentation, scalars (strings,
// integers, booleans), inline comments, and quoted strings. Anchors, flow
// collections, multi-line scalars, and tags are intentionally unsupported.

// yamlNode is the parse result: one of Scalar (string), Map, or Seq.
type yamlNode struct {
	scalar string
	isNull bool
	m      map[string]*yamlNode
	keys   []string // preserves mapping order
	seq    []*yamlNode
}

func (n *yamlNode) isScalar() bool { return n.m == nil && n.seq == nil }
func (n *yamlNode) isMap() bool    { return n.m != nil }
func (n *yamlNode) isSeq() bool    { return n.seq != nil }

// get returns the child node for key in a mapping, or nil.
func (n *yamlNode) get(key string) *yamlNode {
	if n == nil || n.m == nil {
		return nil
	}
	return n.m[key]
}

// str returns the scalar value for key, or def.
func (n *yamlNode) str(key, def string) string {
	c := n.get(key)
	if c == nil || !c.isScalar() || c.isNull {
		return def
	}
	return c.scalar
}

// intval returns the integer value for key, or def.
func (n *yamlNode) intval(key string, def int64) (int64, error) {
	c := n.get(key)
	if c == nil || !c.isScalar() || c.isNull {
		return def, nil
	}
	s := strings.TrimSpace(c.scalar)
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v, nil
	}
	if t := strings.TrimPrefix(strings.ToLower(s), "0x"); t != s {
		if v, err := strconv.ParseInt(t, 16, 64); err == nil {
			return v, nil
		}
	}
	return 0, fmt.Errorf("configspace: field %q: not an integer: %q", key, c.scalar)
}

type yamlLine struct {
	indent int
	text   string // content with indentation stripped
	lineNo int
}

// parseYAML parses a document into a node tree.
func parseYAML(src string) (*yamlNode, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		text := stripComment(raw)
		trimmed := strings.TrimRight(text, " \t")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		if strings.TrimSpace(trimmed) == "---" {
			continue
		}
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		if strings.ContainsRune(trimmed[:indent], '\t') || (indent < len(trimmed) && trimmed[indent] == '\t') {
			return nil, fmt.Errorf("yaml: line %d: tabs are not allowed for indentation", i+1)
		}
		lines = append(lines, yamlLine{indent: indent, text: trimmed[indent:], lineNo: i + 1})
	}
	if len(lines) == 0 {
		return &yamlNode{m: map[string]*yamlNode{}}, nil
	}
	node, rest, err := parseBlock(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("yaml: line %d: unexpected dedent", rest[0].lineNo)
	}
	return node, nil
}

// stripComment removes a trailing "#..." comment that is not inside quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses lines at exactly the given indent into one node.
func parseBlock(lines []yamlLine, indent int) (*yamlNode, []yamlLine, error) {
	if len(lines) == 0 {
		return &yamlNode{isNull: true}, lines, nil
	}
	if strings.HasPrefix(lines[0].text, "- ") || lines[0].text == "-" {
		return parseSeq(lines, indent)
	}
	return parseMap(lines, indent)
}

func parseSeq(lines []yamlLine, indent int) (*yamlNode, []yamlLine, error) {
	node := &yamlNode{seq: []*yamlNode{}}
	for len(lines) > 0 {
		l := lines[0]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, nil, fmt.Errorf("yaml: line %d: unexpected indent in sequence", l.lineNo)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		lines = lines[1:]
		if rest == "" {
			// Item body is the following more-indented block.
			if len(lines) > 0 && lines[0].indent > indent {
				child, remaining, err := parseBlock(lines, lines[0].indent)
				if err != nil {
					return nil, nil, err
				}
				node.seq = append(node.seq, child)
				lines = remaining
			} else {
				node.seq = append(node.seq, &yamlNode{isNull: true})
			}
			continue
		}
		if key, val, ok := splitKV(rest); ok {
			// "- key: value" starts an inline mapping; its continuation
			// lines are indented past the dash.
			itemIndent := indent + 2
			item := &yamlNode{m: map[string]*yamlNode{}}
			if err := addMapEntry(item, key, val, &lines, itemIndent, l.lineNo); err != nil {
				return nil, nil, err
			}
			for len(lines) > 0 && lines[0].indent == itemIndent &&
				!strings.HasPrefix(lines[0].text, "- ") && lines[0].text != "-" {
				nl := lines[0]
				k2, v2, ok2 := splitKV(nl.text)
				if !ok2 {
					return nil, nil, fmt.Errorf("yaml: line %d: expected key: value", nl.lineNo)
				}
				lines = lines[1:]
				if err := addMapEntry(item, k2, v2, &lines, itemIndent, nl.lineNo); err != nil {
					return nil, nil, err
				}
			}
			node.seq = append(node.seq, item)
			continue
		}
		node.seq = append(node.seq, scalarNode(rest))
	}
	return node, lines, nil
}

func parseMap(lines []yamlLine, indent int) (*yamlNode, []yamlLine, error) {
	node := &yamlNode{m: map[string]*yamlNode{}}
	for len(lines) > 0 {
		l := lines[0]
		if l.indent != indent {
			if l.indent > indent {
				return nil, nil, fmt.Errorf("yaml: line %d: unexpected indent", l.lineNo)
			}
			break
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			break
		}
		key, val, ok := splitKV(l.text)
		if !ok {
			return nil, nil, fmt.Errorf("yaml: line %d: expected key: value", l.lineNo)
		}
		lines = lines[1:]
		if err := addMapEntry(node, key, val, &lines, indent, l.lineNo); err != nil {
			return nil, nil, err
		}
	}
	return node, lines, nil
}

// addMapEntry stores key→value in node; when value is empty the child is
// the following more-indented block (or null).
func addMapEntry(node *yamlNode, key, val string, lines *[]yamlLine, indent, lineNo int) error {
	if _, dup := node.m[key]; dup {
		return fmt.Errorf("yaml: line %d: duplicate key %q", lineNo, key)
	}
	var child *yamlNode
	if val == "" {
		if len(*lines) > 0 && (*lines)[0].indent > indent {
			c, remaining, err := parseBlock(*lines, (*lines)[0].indent)
			if err != nil {
				return err
			}
			child = c
			*lines = remaining
		} else {
			child = &yamlNode{isNull: true}
		}
	} else {
		child = scalarNode(val)
	}
	node.m[key] = child
	node.keys = append(node.keys, key)
	return nil
}

// splitKV splits "key: value" at the first colon that is followed by a
// space or end-of-line and not inside quotes.
func splitKV(s string) (key, val string, ok bool) {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case ':':
			if inSingle || inDouble {
				continue
			}
			if i+1 == len(s) {
				return strings.TrimSpace(unquote(s[:i])), "", true
			}
			if s[i+1] == ' ' {
				return strings.TrimSpace(unquote(s[:i])), strings.TrimSpace(s[i+2:]), true
			}
		}
	}
	return "", "", false
}

func scalarNode(s string) *yamlNode {
	s = strings.TrimSpace(s)
	if s == "~" || s == "null" {
		return &yamlNode{isNull: true}
	}
	return &yamlNode{scalar: unquote(s)}
}

func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
