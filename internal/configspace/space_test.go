package configspace

import (
	"math"
	"testing"
	"testing/quick"

	"wayfinder/internal/rng"
)

// testSpace builds a small mixed-type space used across the tests.
func testSpace(t testing.TB) *Space {
	t.Helper()
	s := NewSpace("test")
	s.MustAdd(&Param{Name: "CONFIG_PREEMPT", Type: Bool, Class: CompileTime, Default: BoolValue(false)})
	s.MustAdd(&Param{Name: "CONFIG_E1000", Type: Tristate, Class: CompileTime, Default: TriValue(TriModule)})
	s.MustAdd(&Param{Name: "CONFIG_LOG_BUF_SHIFT", Type: Int, Class: CompileTime, Min: 12, Max: 25, Default: IntValue(17)})
	s.MustAdd(&Param{Name: "mitigations", Type: Enum, Class: BootTime, Values: []string{"auto", "off", "auto,nosmt"}, Default: EnumValue("auto")})
	s.MustAdd(&Param{Name: "net.core.somaxconn", Type: Int, Class: Runtime, Min: 16, Max: 1 << 16, Default: IntValue(128)})
	s.MustAdd(&Param{Name: "vm.swappiness", Type: Int, Class: Runtime, Min: 0, Max: 100, Default: IntValue(60)})
	s.MustAdd(&Param{Name: "net.core.default_qdisc", Type: Enum, Class: Runtime, Values: []string{"pfifo_fast", "fq", "fq_codel"}, Default: EnumValue("pfifo_fast")})
	return s
}

func TestAddDuplicate(t *testing.T) {
	s := NewSpace("dup")
	p := &Param{Name: "x", Type: Bool, Default: BoolValue(false)}
	if err := s.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Param{Name: "x", Type: Bool, Default: BoolValue(true)}); err == nil {
		t.Fatal("duplicate add should fail")
	}
}

func TestLookup(t *testing.T) {
	s := testSpace(t)
	p, i := s.Lookup("vm.swappiness")
	if p == nil || p.Name != "vm.swappiness" || s.Param(i) != p {
		t.Fatal("lookup broken")
	}
	if p, i := s.Lookup("nope"); p != nil || i != -1 {
		t.Fatal("missing lookup should return nil, -1")
	}
	if s.Index("CONFIG_PREEMPT") != 0 {
		t.Fatal("index order wrong")
	}
}

func TestCensus(t *testing.T) {
	s := testSpace(t)
	c := s.Census()
	if c.CompileBool != 1 || c.CompileTristate != 1 || c.CompileInt != 1 {
		t.Fatalf("compile census wrong: %+v", c)
	}
	if c.Boot != 1 || c.Runtime != 3 {
		t.Fatalf("boot/runtime census wrong: %+v", c)
	}
	if c.Total() != s.Len() {
		t.Fatalf("total %d != len %d", c.Total(), s.Len())
	}
}

func TestLogCardinality(t *testing.T) {
	s := NewSpace("card")
	s.MustAdd(&Param{Name: "a", Type: Bool, Default: BoolValue(false)})
	s.MustAdd(&Param{Name: "b", Type: Int, Min: 0, Max: 9, Default: IntValue(0)})
	// 2 * 10 = 20 configs -> log10 = 1.301...
	if got := s.LogCardinality(); math.Abs(got-math.Log10(20)) > 1e-9 {
		t.Fatalf("LogCardinality = %v", got)
	}
	if err := s.Fix("b", IntValue(3)); err != nil {
		t.Fatal(err)
	}
	if got := s.LogCardinality(); math.Abs(got-math.Log10(2)) > 1e-9 {
		t.Fatalf("LogCardinality after fix = %v", got)
	}
}

func TestDefaultConfig(t *testing.T) {
	s := testSpace(t)
	d := s.Default()
	for i, p := range s.Params() {
		if d.Value(i) != p.Default {
			t.Fatalf("%s default mismatch", p.Name)
		}
	}
	if d.String() != "<default>" {
		t.Fatalf("default config String = %q", d.String())
	}
}

func TestRandomInDomain(t *testing.T) {
	s := testSpace(t)
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		c := s.Random(r)
		for i, p := range s.Params() {
			if !p.InDomain(c.Value(i)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomRespectsFixed(t *testing.T) {
	s := testSpace(t)
	if err := s.Fix("vm.swappiness", IntValue(10)); err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for i := 0; i < 50; i++ {
		c := s.Random(r)
		if got := c.GetInt("vm.swappiness", -1); got != 10 {
			t.Fatalf("fixed parameter varied: %d", got)
		}
	}
}

func TestFixErrors(t *testing.T) {
	s := testSpace(t)
	if err := s.Fix("nope", IntValue(1)); err == nil {
		t.Fatal("fixing unknown parameter should fail")
	}
	if err := s.Fix("vm.swappiness", IntValue(1000)); err == nil {
		t.Fatal("fixing out-of-domain value should fail")
	}
}

func TestLogUniformSamplingHitsSmallEnd(t *testing.T) {
	// A [16, 65536] range sampled log-uniformly should produce values below
	// 256 reasonably often (~40% of draws); plain uniform would give ~0.4%.
	s := NewSpace("log")
	s.MustAdd(&Param{Name: "n", Type: Int, Class: Runtime, Min: 16, Max: 1 << 16, Default: IntValue(128)})
	r := rng.New(77)
	small := 0
	const n = 2000
	for i := 0; i < n; i++ {
		c := s.Random(r)
		if c.GetInt("n", 0) < 256 {
			small++
		}
	}
	if frac := float64(small) / n; frac < 0.2 {
		t.Fatalf("small-end fraction = %v, expected log-uniform behaviour", frac)
	}
}

func TestMutateChangesExactlyK(t *testing.T) {
	s := testSpace(t)
	r := rng.New(9)
	base := s.Default()
	for k := 1; k <= 3; k++ {
		// Mutation may re-draw the same value; diff count is <= k, and the
		// mutated indices are within the space.
		c := s.Mutate(base, k, r)
		if d := len(base.Diff(c)); d > k {
			t.Fatalf("Mutate(k=%d) changed %d parameters", k, d)
		}
	}
}

func TestMutateRespectsFavor(t *testing.T) {
	s := testSpace(t)
	s.Favor(CompileTime, 0)
	s.Favor(BootTime, 0)
	r := rng.New(13)
	base := s.Default()
	for i := 0; i < 100; i++ {
		c := s.Mutate(base, 2, r)
		for _, idx := range base.Diff(c) {
			if s.Param(idx).Class != Runtime {
				t.Fatalf("mutation touched %s despite zero weight", s.Param(idx).Name)
			}
		}
	}
}

func TestMutateRespectsFixed(t *testing.T) {
	s := testSpace(t)
	if err := s.Fix("net.core.somaxconn", IntValue(1024)); err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	base := s.Default()
	for i := 0; i < 200; i++ {
		c := s.Mutate(base, s.Len(), r)
		if got := c.GetInt("net.core.somaxconn", -1); got != 1024 {
			t.Fatalf("fixed param mutated to %d", got)
		}
	}
}

func TestNeighborStaysInDomain(t *testing.T) {
	s := testSpace(t)
	r := rng.New(21)
	c := s.Default()
	for i := 0; i < 500; i++ {
		c = s.Neighbor(c, r)
		for j, p := range s.Params() {
			if !p.InDomain(c.Value(j)) {
				t.Fatalf("neighbor left domain for %s: %v", p.Name, c.Value(j))
			}
		}
	}
}

func TestNeighborChangesAtMostOne(t *testing.T) {
	s := testSpace(t)
	r := rng.New(23)
	base := s.Default()
	for i := 0; i < 100; i++ {
		c := s.Neighbor(base, r)
		if d := len(base.Diff(c)); d > 1 {
			t.Fatalf("neighbor changed %d parameters", d)
		}
	}
}

func TestSortedNames(t *testing.T) {
	s := testSpace(t)
	names := s.SortedNames()
	if len(names) != s.Len() {
		t.Fatal("wrong count")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
