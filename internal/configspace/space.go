package configspace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"wayfinder/internal/rng"
)

// Space is an ordered collection of parameters defining an OS configuration
// space. Order is significant: it fixes the layout of feature vectors fed
// to the learning algorithms.
type Space struct {
	// Name identifies the space (e.g. "linux-6.0", "unikraft-nginx").
	Name string

	params  []*Param
	byName  map[string]int
	favored map[Class]float64 // sampling weight per class (§3.5)
}

// NewSpace returns an empty space with the given name.
func NewSpace(name string) *Space {
	return &Space{
		Name:   name,
		byName: make(map[string]int),
		favored: map[Class]float64{
			CompileTime: 1,
			BootTime:    1,
			Runtime:     1,
		},
	}
}

// Add appends a parameter to the space. Adding a duplicate or invalid
// parameter is an error.
func (s *Space) Add(p *Param) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, dup := s.byName[p.Name]; dup {
		return fmt.Errorf("configspace: duplicate parameter %q", p.Name)
	}
	s.byName[p.Name] = len(s.params)
	s.params = append(s.params, p)
	return nil
}

// MustAdd is Add that panics on error, for statically-known spaces.
func (s *Space) MustAdd(p *Param) {
	if err := s.Add(p); err != nil {
		panic(err)
	}
}

// Len returns the number of parameters.
func (s *Space) Len() int { return len(s.params) }

// Param returns the i-th parameter.
func (s *Space) Param(i int) *Param { return s.params[i] }

// Params returns the parameters in order. The returned slice must not be
// modified.
func (s *Space) Params() []*Param { return s.params }

// Lookup returns the parameter with the given name and its index, or nil
// and -1.
func (s *Space) Lookup(name string) (*Param, int) {
	if i, ok := s.byName[name]; ok {
		return s.params[i], i
	}
	return nil, -1
}

// Index returns the index of the named parameter, or -1.
func (s *Space) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Favor biases the class-level sampling weights used when generating random
// configurations or mutations. The paper configures Wayfinder to "favor
// exploration of runtime parameters" for the performance experiments (§4.1)
// and compile-time options for the memory-footprint experiment (§4.4).
func (s *Space) Favor(class Class, weight float64) {
	if weight < 0 {
		weight = 0
	}
	s.favored[class] = weight
}

// ClassWeight returns the sampling weight of a class.
func (s *Space) ClassWeight(class Class) float64 { return s.favored[class] }

// Fix pins the named parameter to a fixed value: the search will not vary
// it (§3.5, security-aware mode). Returns an error for unknown names or
// out-of-domain values.
func (s *Space) Fix(name string, v Value) error {
	p, _ := s.Lookup(name)
	if p == nil {
		return fmt.Errorf("configspace: fix of unknown parameter %q", name)
	}
	if !p.InDomain(v) {
		return fmt.Errorf("configspace: fix of %q to out-of-domain value", name)
	}
	p.Fixed = true
	p.Default = v
	return nil
}

// Census summarizes a space the way the paper's Table 1 does: option counts
// by class, and compile-time counts broken down by type.
type Census struct {
	CompileBool     int
	CompileTristate int
	CompileString   int
	CompileHex      int
	CompileInt      int
	Boot            int
	Runtime         int
}

// Total returns the total number of parameters counted.
func (c Census) Total() int {
	return c.CompileBool + c.CompileTristate + c.CompileString +
		c.CompileHex + c.CompileInt + c.Boot + c.Runtime
}

// Census counts the space's parameters by class and (for compile-time) type.
func (s *Space) Census() Census {
	var c Census
	for _, p := range s.params {
		switch p.Class {
		case BootTime:
			c.Boot++
		case Runtime:
			c.Runtime++
		default:
			switch p.Type {
			case Bool:
				c.CompileBool++
			case Tristate:
				c.CompileTristate++
			case Enum:
				c.CompileString++
			case Hex:
				c.CompileHex++
			case Int:
				c.CompileInt++
			}
		}
	}
	return c
}

// LogCardinality returns log10 of the number of distinct configurations,
// i.e. the size of the search space (Fig 9 quotes 3.7×10¹³ permutations for
// the Unikraft space).
func (s *Space) LogCardinality() float64 {
	sum := 0.0
	for _, p := range s.params {
		if p.Fixed {
			continue
		}
		sum += math.Log10(p.Cardinality())
	}
	return sum
}

// Default returns the OS's default configuration.
func (s *Space) Default() *Config {
	c := newConfig(s)
	for i, p := range s.params {
		c.values[i] = p.Default
	}
	return c
}

// sampleValue draws a uniform value from p's domain. Integer parameters are
// sampled log-uniformly when their range spans multiple orders of magnitude,
// matching how the probing heuristic of §3.4 builds ranges (default scaled
// by powers of ten): a plain uniform draw would almost never visit the
// small end of a [16, 1e7] range.
func sampleValue(p *Param, r *rng.RNG) Value {
	switch p.Type {
	case Bool:
		return BoolValue(r.Bool())
	case Tristate:
		return TriValue(TristateValue(r.Intn(3)))
	case Int, Hex:
		lo, hi := p.Min, p.Max
		if lo == hi {
			return IntValue(lo)
		}
		if lo > 0 && float64(hi)/float64(lo) >= 100 {
			lg := math.Log(float64(lo)) + r.Float64()*(math.Log(float64(hi))-math.Log(float64(lo)))
			v := int64(math.Round(math.Exp(lg)))
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			return IntValue(v)
		}
		return IntValue(lo + r.Int63n(hi-lo+1))
	case Enum:
		return EnumValue(p.Values[r.Intn(len(p.Values))])
	}
	return Value{}
}

// Random returns a configuration with every non-fixed parameter drawn
// uniformly from its domain — the generator behind the random-search
// baseline and Fig 2's 800 random configurations. Parameters whose class
// weight has been set to 0 via Favor stay at their defaults: this is how
// the paper's "favor runtime parameters" / "favor compile-time options"
// search modes (§3.5, §4.1, §4.4) constrain generation.
func (s *Space) Random(r *rng.RNG) *Config {
	c := newConfig(s)
	for i, p := range s.params {
		if p.Fixed || s.favored[p.Class] <= 0 {
			c.values[i] = p.Default
			continue
		}
		c.values[i] = sampleValue(p, r)
	}
	return c
}

// Mutate returns a copy of base with k randomly-chosen non-fixed parameters
// resampled. Parameter choice respects the class weights set via Favor.
// k is clamped to [1, number of mutable parameters].
func (s *Space) Mutate(base *Config, k int, r *rng.RNG) *Config {
	c := base.Clone()
	mutable := make([]int, 0, len(s.params))
	weights := make([]float64, 0, len(s.params))
	for i, p := range s.params {
		if p.Fixed {
			continue
		}
		w := s.favored[p.Class]
		if w <= 0 {
			continue
		}
		mutable = append(mutable, i)
		weights = append(weights, w)
	}
	if len(mutable) == 0 {
		return c
	}
	if k < 1 {
		k = 1
	}
	if k > len(mutable) {
		k = len(mutable)
	}
	seen := make(map[int]bool, k)
	for len(seen) < k {
		pick := mutable[r.Choice(weights)]
		if seen[pick] {
			continue
		}
		seen[pick] = true
		c.values[pick] = sampleValue(s.params[pick], r)
	}
	return c
}

// Neighbor returns a copy of base with one numeric parameter nudged to an
// adjacent magnitude (×/÷ step) or one categorical parameter re-drawn —
// the local move used by exploitation-heavy candidate pools.
func (s *Space) Neighbor(base *Config, r *rng.RNG) *Config {
	c := base.Clone()
	mutable := make([]int, 0, len(s.params))
	weights := make([]float64, 0, len(s.params))
	for i, p := range s.params {
		if p.Fixed {
			continue
		}
		w := s.favored[p.Class]
		if w <= 0 {
			continue
		}
		mutable = append(mutable, i)
		weights = append(weights, w)
	}
	if len(mutable) == 0 {
		return c
	}
	pick := mutable[r.Choice(weights)]
	p := s.params[pick]
	switch p.Type {
	case Int, Hex:
		cur := c.values[pick].I
		factor := 1.0 + r.Float64() // step in [1,2)
		var next int64
		if r.Bool() {
			next = int64(math.Round(float64(cur) * factor))
		} else {
			next = int64(math.Round(float64(cur) / factor))
		}
		if next == cur {
			next = cur + 1
		}
		if next < p.Min {
			next = p.Min
		}
		if next > p.Max {
			next = p.Max
		}
		c.values[pick] = IntValue(next)
	default:
		c.values[pick] = sampleValue(p, r)
	}
	return c
}

// SetDefaultsFrom rebases every parameter's default onto the values of
// the given configuration. Searches that pin a class (weight 0) or mutate
// from the default will then operate around this baseline — how Wayfinder
// layers its runtime search on top of a Cozart-debloated compile-time
// configuration (§4.4, Fig 11).
func (s *Space) SetDefaultsFrom(c *Config) error {
	if c.space != s {
		return fmt.Errorf("configspace: SetDefaultsFrom with config from a different space")
	}
	for i, p := range s.params {
		if !p.InDomain(c.values[i]) {
			return fmt.Errorf("configspace: %s: baseline value out of domain", p.Name)
		}
		p.Default = c.values[i]
	}
	return nil
}

// Fingerprint returns a stable content digest of the space's structure:
// its name plus every parameter's name, type, class, domain, default and
// fixedness, in definition order. Two Space values with the same
// fingerprint define the same configuration space, so cross-session
// consumers (the transfer corpus) can match entries to a space without
// holding a pointer to it. Sampling weights set via Favor are deliberately
// excluded: they steer generation, not the space itself.
func (s *Space) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "space %s\n", s.Name)
	for _, p := range s.params {
		fmt.Fprintf(h, "param %s %s %s min=%d max=%d fixed=%v default=%s values=%q\n",
			p.Name, p.Type, p.Class, p.Min, p.Max, p.Fixed,
			p.FormatValue(p.Default), p.Values)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SortedNames returns the parameter names in lexical order, for stable
// reporting.
func (s *Space) SortedNames() []string {
	names := make([]string, len(s.params))
	for i, p := range s.params {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
