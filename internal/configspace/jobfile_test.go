package configspace

import (
	"strings"
	"testing"
)

const sampleJob = `
# Wayfinder job file
name: nginx-linux
os: linux
app: nginx
metric: throughput   # requests per second
maximize: true
iterations: 250
favor:
  runtime: 4
  compile: 1
fixed:
  kernel.randomize_va_space: "2"
params:
  - name: net.core.somaxconn
    type: int
    class: runtime
    default: 128
    min: 16
    max: 65536
  - name: kernel.randomize_va_space
    type: int
    class: runtime
    default: 2
    min: 0
    max: 2
  - name: net.core.default_qdisc
    type: string
    class: runtime
    default: pfifo_fast
    values:
      - pfifo_fast
      - fq
      - fq_codel
  - name: CONFIG_PREEMPT
    type: bool
    class: compile
    default: n
  - name: CONFIG_E1000
    type: tristate
    class: compile
    default: m
  - name: CONFIG_PHYSICAL_START
    type: hex
    class: compile
    default: 0x1000000
    min: 0x100000
    max: 0x10000000
`

func TestParseJobYAML(t *testing.T) {
	job, err := ParseJobYAML(sampleJob)
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "nginx-linux" || job.OS != "linux" || job.App != "nginx" {
		t.Fatalf("header wrong: %+v", job)
	}
	if !job.Maximize || job.Iterations != 250 {
		t.Fatalf("budget wrong: %+v", job)
	}
	if job.Favor["runtime"] != 4 || job.Favor["compile"] != 1 {
		t.Fatalf("favor wrong: %v", job.Favor)
	}
	if job.Space.Len() != 6 {
		t.Fatalf("space has %d params", job.Space.Len())
	}
	p, _ := job.Space.Lookup("net.core.somaxconn")
	if p == nil || p.Type != Int || p.Min != 16 || p.Max != 65536 || p.Default.I != 128 {
		t.Fatalf("somaxconn parsed wrong: %+v", p)
	}
	q, _ := job.Space.Lookup("net.core.default_qdisc")
	if q == nil || q.Type != Enum || len(q.Values) != 3 || q.Default.S != "pfifo_fast" {
		t.Fatalf("qdisc parsed wrong: %+v", q)
	}
	h, _ := job.Space.Lookup("CONFIG_PHYSICAL_START")
	if h == nil || h.Type != Hex || h.Default.I != 0x1000000 {
		t.Fatalf("hex parsed wrong: %+v", h)
	}
	fixed, _ := job.Space.Lookup("kernel.randomize_va_space")
	if fixed == nil || !fixed.Fixed || fixed.Default.I != 2 {
		t.Fatalf("fixed param not pinned: %+v", fixed)
	}
	if job.Space.ClassWeight(Runtime) != 4 {
		t.Fatal("favor not applied to space")
	}
}

func TestParseJobErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"bad type", "name: x\nparams:\n  - name: p\n    type: quantum\n"},
		{"bad class", "name: x\nparams:\n  - name: p\n    type: bool\n    class: never\n"},
		{"enum without values", "name: x\nparams:\n  - name: p\n    type: string\n"},
		{"fixed unknown", "name: x\nfixed:\n  nope: \"1\"\nparams:\n  - name: p\n    type: bool\n"},
		{"default out of range", "name: x\nparams:\n  - name: p\n    type: int\n    min: 0\n    max: 5\n    default: 9\n"},
		{"bad maximize", "name: x\nmaximize: perhaps\n"},
		{"duplicate param", "name: x\nparams:\n  - name: p\n    type: bool\n  - name: p\n    type: bool\n"},
		{"tab indent", "name: x\nparams:\n\t- name: p\n"},
		{"bad favor class", "name: x\nfavor:\n  whenever: 2\n"},
	}
	for _, tc := range cases {
		if _, err := ParseJobYAML(tc.src); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestJobYAMLRoundTrip(t *testing.T) {
	job, err := ParseJobYAML(sampleJob)
	if err != nil {
		t.Fatal(err)
	}
	out := WriteJobYAML(job)
	job2, err := ParseJobYAML(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if job2.Space.Len() != job.Space.Len() {
		t.Fatalf("round trip lost params: %d vs %d", job2.Space.Len(), job.Space.Len())
	}
	for _, p := range job.Space.Params() {
		p2, _ := job2.Space.Lookup(p.Name)
		if p2 == nil {
			t.Fatalf("round trip lost %s", p.Name)
		}
		if p2.Type != p.Type || p2.Class != p.Class || p2.Default != p.Default {
			t.Fatalf("round trip changed %s: %+v vs %+v", p.Name, p, p2)
		}
	}
}

func TestYAMLQuotedStrings(t *testing.T) {
	src := "name: \"hello: world\"\nos: 'linux # not a comment'\n"
	job, err := ParseJobYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "hello: world" {
		t.Fatalf("quoted colon mishandled: %q", job.Name)
	}
	if job.OS != "linux # not a comment" {
		t.Fatalf("quoted hash mishandled: %q", job.OS)
	}
}

func TestYAMLEmptyDocument(t *testing.T) {
	job, err := ParseJobYAML("")
	if err != nil {
		t.Fatal(err)
	}
	if job.Space.Len() != 0 {
		t.Fatal("empty document should yield empty space")
	}
}

func TestYAMLSequenceOfScalars(t *testing.T) {
	src := `
name: x
params:
  - name: e
    type: string
    class: boot
    default: b
    values:
      - a
      - b
      - "c d"
`
	job, err := ParseJobYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := job.Space.Lookup("e")
	if p == nil || len(p.Values) != 3 || p.Values[2] != "c d" {
		t.Fatalf("scalar sequence parsed wrong: %+v", p)
	}
}

func TestYAMLCommentOnlyAndSeparator(t *testing.T) {
	src := "---\n# just comments\nname: y\n"
	job, err := ParseJobYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "y" {
		t.Fatalf("name = %q", job.Name)
	}
}

func TestWriteJobYAMLContainsSections(t *testing.T) {
	job, err := ParseJobYAML(sampleJob)
	if err != nil {
		t.Fatal(err)
	}
	out := WriteJobYAML(job)
	for _, want := range []string{"name: nginx-linux", "params:", "favor:", "type: tristate", "type: hex"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
