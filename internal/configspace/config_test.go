package configspace

import (
	"strings"
	"testing"
	"testing/quick"

	"wayfinder/internal/rng"
)

func TestConfigSetGet(t *testing.T) {
	s := testSpace(t)
	c := s.Default()
	if err := c.Set("vm.swappiness", IntValue(10)); err != nil {
		t.Fatal(err)
	}
	if got := c.GetInt("vm.swappiness", -1); got != 10 {
		t.Fatalf("GetInt = %d", got)
	}
	if got := c.GetString("net.core.default_qdisc", ""); got != "pfifo_fast" {
		t.Fatalf("GetString = %q", got)
	}
	if got := c.GetInt("missing", -7); got != -7 {
		t.Fatal("missing int should return default")
	}
	if got := c.GetString("missing", "d"); got != "d" {
		t.Fatal("missing string should return default")
	}
}

func TestConfigSetErrors(t *testing.T) {
	s := testSpace(t)
	c := s.Default()
	if err := c.Set("missing", IntValue(1)); err == nil {
		t.Fatal("set of unknown param should fail")
	}
	if err := c.Set("vm.swappiness", IntValue(101)); err == nil {
		t.Fatal("out-of-domain set should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := testSpace(t)
	a := s.Default()
	b := a.Clone()
	b.MustSet("vm.swappiness", IntValue(0))
	if a.GetInt("vm.swappiness", -1) != 60 {
		t.Fatal("clone aliases original")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone should be equal")
	}
	if a.Equal(b) {
		t.Fatal("diverged clone should not be equal")
	}
}

func TestDiff(t *testing.T) {
	s := testSpace(t)
	a := s.Default()
	b := a.Clone()
	if len(a.Diff(b)) != 0 {
		t.Fatal("identical configs should have empty diff")
	}
	b.MustSet("CONFIG_PREEMPT", BoolValue(true))
	b.MustSet("vm.swappiness", IntValue(0))
	d := a.Diff(b)
	if len(d) != 2 {
		t.Fatalf("diff = %v", d)
	}
}

func TestOnlyRuntimeDiff(t *testing.T) {
	s := testSpace(t)
	a := s.Default()
	b := a.Clone()
	b.MustSet("vm.swappiness", IntValue(0))
	if !a.OnlyRuntimeDiff(b) {
		t.Fatal("runtime-only diff not detected")
	}
	b.MustSet("mitigations", EnumValue("off"))
	if a.OnlyRuntimeDiff(b) {
		t.Fatal("boot param change should not be runtime-only")
	}
	if !a.OnlyBootOrRuntimeDiff(b) {
		t.Fatal("boot+runtime diff should allow build reuse")
	}
	b.MustSet("CONFIG_PREEMPT", BoolValue(true))
	if a.OnlyBootOrRuntimeDiff(b) {
		t.Fatal("compile change should force rebuild")
	}
}

func TestHashStability(t *testing.T) {
	s := testSpace(t)
	a := s.Default()
	if a.Hash() != a.Clone().Hash() {
		t.Fatal("equal configs must hash equal")
	}
	b := a.Clone()
	b.MustSet("vm.swappiness", IntValue(61))
	if a.Hash() == b.Hash() {
		t.Fatal("different configs should (almost surely) hash differently")
	}
}

func TestHashDistinguishesRandoms(t *testing.T) {
	s := testSpace(t)
	r := rng.New(3)
	seen := map[uint64]*Config{}
	for i := 0; i < 500; i++ {
		c := s.Random(r)
		if prev, ok := seen[c.Hash()]; ok && !prev.Equal(c) {
			t.Fatal("hash collision between distinct configs")
		}
		seen[c.Hash()] = c
	}
}

func TestStringListsNonDefaults(t *testing.T) {
	s := testSpace(t)
	c := s.Default()
	c.MustSet("vm.swappiness", IntValue(1))
	c.MustSet("CONFIG_PREEMPT", BoolValue(true))
	str := c.String()
	if !strings.Contains(str, "vm.swappiness=1") || !strings.Contains(str, "CONFIG_PREEMPT=y") {
		t.Fatalf("String() = %q", str)
	}
	if strings.Contains(str, "mitigations") {
		t.Fatalf("String() should omit defaults: %q", str)
	}
}

func TestEncoderDim(t *testing.T) {
	s := testSpace(t)
	e := NewEncoder(s)
	// 3 scalar compile + 3-wide boot enum + 2 scalar runtime + 3-wide enum.
	want := 1 + 1 + 1 + 3 + 1 + 1 + 3
	if e.Dim() != want {
		t.Fatalf("Dim = %d, want %d", e.Dim(), want)
	}
	if len(e.FeatureNames()) != want {
		t.Fatal("FeatureNames length mismatch")
	}
}

func TestEncoderRanges(t *testing.T) {
	s := testSpace(t)
	e := NewEncoder(s)
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		v := e.Encode(s.Random(r))
		for _, x := range v {
			if x < 0 || x > 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEncoderOneHot(t *testing.T) {
	s := testSpace(t)
	e := NewEncoder(s)
	c := s.Default()
	c.MustSet("net.core.default_qdisc", EnumValue("fq"))
	v := e.Encode(c)
	names := e.FeatureNames()
	ones := 0
	for i, name := range names {
		if strings.HasPrefix(name, "net.core.default_qdisc=") {
			if v[i] == 1 {
				ones++
				if name != "net.core.default_qdisc=fq" {
					t.Fatalf("wrong hot slot %s", name)
				}
			} else if v[i] != 0 {
				t.Fatalf("one-hot slot %s = %v", name, v[i])
			}
		}
	}
	if ones != 1 {
		t.Fatalf("one-hot block had %d ones", ones)
	}
}

func TestEncoderDeterministic(t *testing.T) {
	s := testSpace(t)
	e := NewEncoder(s)
	c := s.Random(rng.New(8))
	a, b := e.Encode(c), e.Encode(c)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoding not deterministic")
		}
	}
}

func TestEncoderMonotoneInt(t *testing.T) {
	s := testSpace(t)
	e := NewEncoder(s)
	lo, hi := s.Default(), s.Default()
	lo.MustSet("net.core.somaxconn", IntValue(16))
	hi.MustSet("net.core.somaxconn", IntValue(1<<16))
	_, idx := s.Lookup("net.core.somaxconn")
	off := e.ParamOffset(idx)
	vl, vh := e.Encode(lo)[off], e.Encode(hi)[off]
	if vl != 0 || vh != 1 {
		t.Fatalf("range endpoints encode to %v, %v", vl, vh)
	}
	mid := s.Default()
	mid.MustSet("net.core.somaxconn", IntValue(1024))
	vm := e.Encode(mid)[off]
	if !(vl < vm && vm < vh) {
		t.Fatalf("encoding not monotone: %v %v %v", vl, vm, vh)
	}
}

func TestCategoricalMask(t *testing.T) {
	s := testSpace(t)
	e := NewEncoder(s)
	mask := e.CategoricalMask()
	names := e.FeatureNames()
	for i, name := range names {
		isCat := strings.Contains(name, "=") || name == "CONFIG_PREEMPT" || name == "CONFIG_E1000"
		if mask[i] != isCat {
			t.Fatalf("mask[%s] = %v, want %v", name, mask[i], isCat)
		}
	}
}

func TestParamOfFeature(t *testing.T) {
	s := testSpace(t)
	e := NewEncoder(s)
	for i := 0; i < s.Len(); i++ {
		off := e.ParamOffset(i)
		if e.ParamOfFeature(off) != i {
			t.Fatalf("ParamOfFeature(%d) != %d", off, i)
		}
	}
	// Last feature of an enum still maps back to the enum parameter.
	_, qi := s.Lookup("net.core.default_qdisc")
	off := e.ParamOffset(qi)
	if e.ParamOfFeature(off+2) != qi {
		t.Fatal("enum tail feature maps to wrong parameter")
	}
}

// TestKVRoundTrip: KV/FromKV invert each other for every random
// configuration — the property report serialization and session snapshots
// depend on.
func TestKVRoundTrip(t *testing.T) {
	s := testSpace(t)
	r := rng.New(11)
	check := func(c *Config) {
		kv := c.KV()
		back, err := s.FromKV(kv)
		if err != nil {
			t.Fatalf("FromKV(%v): %v", kv, err)
		}
		if !back.Equal(c) {
			t.Fatalf("round trip lost values:\n got %s\nwant %s", back, c)
		}
		if back.Hash() != c.Hash() || back.CompileKey() != c.CompileKey() || back.BootKey() != c.BootKey() {
			t.Fatal("round trip changed digests")
		}
	}
	check(s.Default()) // empty map
	if len(s.Default().KV()) != 0 {
		t.Fatal("default config should serialize to an empty KV map")
	}
	for i := 0; i < 200; i++ {
		check(s.Random(r))
	}
}

// TestFromKVErrors: unknown names and bad values fail loudly.
func TestFromKVErrors(t *testing.T) {
	s := testSpace(t)
	if _, err := s.FromKV(map[string]string{"nope": "1"}); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := s.FromKV(map[string]string{"vm.swappiness": "banana"}); err == nil {
		t.Fatal("unparseable value accepted")
	}
	if _, err := s.FromKV(map[string]string{"vm.swappiness": "9999"}); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
}
