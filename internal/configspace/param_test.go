package configspace

import (
	"testing"
)

func TestTypeRoundTrip(t *testing.T) {
	for _, typ := range []Type{Bool, Tristate, Int, Hex, Enum} {
		parsed, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", typ.String(), err)
		}
		if parsed != typ {
			t.Fatalf("round trip %v -> %v", typ, parsed)
		}
	}
	if _, err := ParseType("banana"); err == nil {
		t.Fatal("expected error for unknown type")
	}
}

func TestClassRoundTrip(t *testing.T) {
	for _, c := range []Class{CompileTime, BootTime, Runtime} {
		parsed, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if parsed != c {
			t.Fatalf("round trip %v -> %v", c, parsed)
		}
	}
	if _, err := ParseClass("sometime"); err == nil {
		t.Fatal("expected error for unknown class")
	}
}

func TestParamValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Param
		ok   bool
	}{
		{"good bool", Param{Name: "a", Type: Bool, Default: BoolValue(true)}, true},
		{"bad bool default", Param{Name: "a", Type: Bool, Default: IntValue(7)}, false},
		{"good tristate", Param{Name: "a", Type: Tristate, Default: TriValue(TriModule)}, true},
		{"bad tristate", Param{Name: "a", Type: Tristate, Default: IntValue(3)}, false},
		{"good int", Param{Name: "a", Type: Int, Min: 1, Max: 10, Default: IntValue(5)}, true},
		{"int default out of range", Param{Name: "a", Type: Int, Min: 1, Max: 10, Default: IntValue(50)}, false},
		{"int min>max", Param{Name: "a", Type: Int, Min: 10, Max: 1, Default: IntValue(5)}, false},
		{"good enum", Param{Name: "a", Type: Enum, Values: []string{"x", "y"}, Default: EnumValue("x")}, true},
		{"enum empty domain", Param{Name: "a", Type: Enum, Default: EnumValue("x")}, false},
		{"enum default not in domain", Param{Name: "a", Type: Enum, Values: []string{"x"}, Default: EnumValue("z")}, false},
		{"empty name", Param{Type: Bool}, false},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestInDomain(t *testing.T) {
	intP := &Param{Name: "n", Type: Int, Min: 10, Max: 20, Default: IntValue(15)}
	if !intP.InDomain(IntValue(10)) || !intP.InDomain(IntValue(20)) {
		t.Fatal("bounds should be in domain")
	}
	if intP.InDomain(IntValue(9)) || intP.InDomain(IntValue(21)) {
		t.Fatal("out-of-range ints accepted")
	}
	enumP := &Param{Name: "e", Type: Enum, Values: []string{"pfifo", "bfifo"}, Default: EnumValue("pfifo")}
	if !enumP.InDomain(EnumValue("bfifo")) || enumP.InDomain(EnumValue("red")) {
		t.Fatal("enum domain check broken")
	}
}

func TestCardinality(t *testing.T) {
	cases := []struct {
		p    Param
		want float64
	}{
		{Param{Type: Bool}, 2},
		{Param{Type: Tristate}, 3},
		{Param{Type: Int, Min: 0, Max: 9}, 10},
		{Param{Type: Enum, Values: []string{"a", "b", "c"}}, 3},
	}
	for _, tc := range cases {
		if got := tc.p.Cardinality(); got != tc.want {
			t.Errorf("Cardinality(%v) = %v, want %v", tc.p.Type, got, tc.want)
		}
	}
}

func TestFormatParseValueRoundTrip(t *testing.T) {
	ps := []*Param{
		{Name: "b", Type: Bool, Default: BoolValue(true)},
		{Name: "t", Type: Tristate, Default: TriValue(TriModule)},
		{Name: "i", Type: Int, Min: -5, Max: 100, Default: IntValue(42)},
		{Name: "h", Type: Hex, Min: 0, Max: 0xffff, Default: IntValue(0xabc)},
		{Name: "e", Type: Enum, Values: []string{"pfifo", "bfifo"}, Default: EnumValue("bfifo")},
	}
	for _, p := range ps {
		s := p.FormatValue(p.Default)
		v, err := p.ParseValue(s)
		if err != nil {
			t.Fatalf("%s: ParseValue(%q): %v", p.Name, s, err)
		}
		if v != p.Default {
			t.Fatalf("%s: round trip %v -> %q -> %v", p.Name, p.Default, s, v)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	p := &Param{Name: "i", Type: Int, Min: 0, Max: 10, Default: IntValue(1)}
	if _, err := p.ParseValue("seven"); err == nil {
		t.Fatal("expected error for non-numeric int")
	}
	bp := &Param{Name: "b", Type: Bool, Default: BoolValue(false)}
	if _, err := bp.ParseValue("maybe"); err == nil {
		t.Fatal("expected error for bad bool")
	}
	ep := &Param{Name: "e", Type: Enum, Values: []string{"a"}, Default: EnumValue("a")}
	if _, err := ep.ParseValue("z"); err == nil {
		t.Fatal("expected error for out-of-domain enum")
	}
}

func TestHexFormatting(t *testing.T) {
	p := &Param{Name: "h", Type: Hex, Min: 0, Max: 1 << 20, Default: IntValue(0x100)}
	if got := p.FormatValue(IntValue(255)); got != "0xff" {
		t.Fatalf("hex format = %q", got)
	}
	v, err := p.ParseValue("0xFF")
	if err != nil || v.I != 255 {
		t.Fatalf("hex parse = %v, %v", v, err)
	}
}
