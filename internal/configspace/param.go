// Package configspace models the configuration space of an operating
// system: typed parameters (bool, tristate, int, hex, string/enum) across
// the three classes the paper optimizes (compile-time, boot-time, runtime),
// concrete configurations over those parameters, feature-vector encodings
// for the learning algorithms, and job files describing a space (§3.4).
package configspace

import (
	"fmt"
	"strconv"
	"strings"
)

// Type is the value type of a configuration parameter, mirroring Kconfig's
// option kinds (Table 1 of the paper).
type Type int

const (
	// Bool parameters are on/off switches.
	Bool Type = iota
	// Tristate parameters are off/module/built-in, Kconfig's n/m/y.
	Tristate
	// Int parameters take arbitrary integers within a (possibly inferred)
	// range.
	Int
	// Hex parameters are integers conventionally rendered in hexadecimal.
	Hex
	// Enum parameters take one of a fixed set of strings (Kconfig "string"
	// options restricted to automatically extractable values — §3.4).
	Enum
)

// String returns the Kconfig-style name of the type.
func (t Type) String() string {
	switch t {
	case Bool:
		return "bool"
	case Tristate:
		return "tristate"
	case Int:
		return "int"
	case Hex:
		return "hex"
	case Enum:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType parses a type name as written in job files.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "bool", "boolean":
		return Bool, nil
	case "tristate":
		return Tristate, nil
	case "int", "integer":
		return Int, nil
	case "hex":
		return Hex, nil
	case "string", "enum":
		return Enum, nil
	default:
		return 0, fmt.Errorf("configspace: unknown parameter type %q", s)
	}
}

// Class is when in an OS's lifecycle a parameter is applied. The build-skip
// optimization (§3.1) and the paper's "favor runtime/compile-time options"
// modes both key off the class.
type Class int

const (
	// CompileTime parameters require rebuilding the OS image.
	CompileTime Class = iota
	// BootTime parameters are kernel command-line arguments; changing them
	// requires a reboot but not a rebuild.
	BootTime
	// Runtime parameters are writable at run time (e.g. /proc/sys, /sys).
	Runtime
)

// String returns the job-file name of the class.
func (c Class) String() string {
	switch c {
	case CompileTime:
		return "compile"
	case BootTime:
		return "boot"
	case Runtime:
		return "runtime"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass parses a class name as written in job files.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "compile", "compile-time", "compiletime", "build":
		return CompileTime, nil
	case "boot", "boot-time", "boottime", "cmdline":
		return BootTime, nil
	case "runtime", "run-time", "run":
		return Runtime, nil
	default:
		return 0, fmt.Errorf("configspace: unknown parameter class %q", s)
	}
}

// TristateValue enumerates the three Kconfig states of a tristate option.
type TristateValue int

const (
	// TriNo disables the feature ("n").
	TriNo TristateValue = iota
	// TriModule builds the feature as a module ("m").
	TriModule
	// TriYes builds the feature in ("y").
	TriYes
)

// Value is a concrete value of some parameter. Exactly one representation
// is meaningful for a given parameter type: I for Bool (0/1), Tristate
// (0/1/2), Int and Hex; S for Enum.
type Value struct {
	I int64
	S string
}

// BoolValue returns the Value encoding of a boolean.
func BoolValue(on bool) Value {
	if on {
		return Value{I: 1}
	}
	return Value{I: 0}
}

// IntValue returns the Value encoding of an integer (Int or Hex).
func IntValue(v int64) Value { return Value{I: v} }

// TriValue returns the Value encoding of a tristate state.
func TriValue(v TristateValue) Value { return Value{I: int64(v)} }

// EnumValue returns the Value encoding of an enum string.
func EnumValue(s string) Value { return Value{S: s} }

// Param describes one configuration parameter: its identity, type, class,
// default value, and domain.
type Param struct {
	// Name is the canonical parameter name, e.g. "net.core.somaxconn" for a
	// runtime sysctl or "CONFIG_PREEMPT" for a compile-time option.
	Name string
	// Type is the value type.
	Type Type
	// Class is the lifecycle stage at which the parameter applies.
	Class Class
	// Default is the value the OS ships with.
	Default Value
	// Min and Max bound Int/Hex parameters (inclusive). For parameters
	// whose range was inferred by the probing heuristic of §3.4, these are
	// the default scaled down/up by powers of ten that survived probing.
	Min, Max int64
	// Values enumerates the domain of Enum parameters.
	Values []string
	// Fixed marks parameters pinned by the user (e.g. security options the
	// search must not vary — §3.5).
	Fixed bool
	// Help is optional human-readable documentation.
	Help string
}

// Validate reports whether the parameter definition is internally
// consistent.
func (p *Param) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("configspace: parameter with empty name")
	}
	switch p.Type {
	case Bool:
		if p.Default.I != 0 && p.Default.I != 1 {
			return fmt.Errorf("configspace: %s: bool default %d out of range", p.Name, p.Default.I)
		}
	case Tristate:
		if p.Default.I < 0 || p.Default.I > 2 {
			return fmt.Errorf("configspace: %s: tristate default %d out of range", p.Name, p.Default.I)
		}
	case Int, Hex:
		if p.Min > p.Max {
			return fmt.Errorf("configspace: %s: min %d > max %d", p.Name, p.Min, p.Max)
		}
		if p.Default.I < p.Min || p.Default.I > p.Max {
			return fmt.Errorf("configspace: %s: default %d outside [%d,%d]", p.Name, p.Default.I, p.Min, p.Max)
		}
	case Enum:
		if len(p.Values) == 0 {
			return fmt.Errorf("configspace: %s: enum with no values", p.Name)
		}
		if p.enumIndex(p.Default.S) < 0 {
			return fmt.Errorf("configspace: %s: default %q not in enum domain", p.Name, p.Default.S)
		}
	default:
		return fmt.Errorf("configspace: %s: unknown type %d", p.Name, int(p.Type))
	}
	return nil
}

// InDomain reports whether v is a legal value for the parameter.
func (p *Param) InDomain(v Value) bool {
	switch p.Type {
	case Bool:
		return v.I == 0 || v.I == 1
	case Tristate:
		return v.I >= 0 && v.I <= 2
	case Int, Hex:
		return v.I >= p.Min && v.I <= p.Max
	case Enum:
		return p.enumIndex(v.S) >= 0
	}
	return false
}

func (p *Param) enumIndex(s string) int {
	for i, v := range p.Values {
		if v == s {
			return i
		}
	}
	return -1
}

// Cardinality returns the number of distinct values the parameter can take,
// saturating at maxCard for very large integer ranges. It is used to report
// the size of the search space (e.g. Fig 9's 3.7×10¹³ permutations).
func (p *Param) Cardinality() float64 {
	switch p.Type {
	case Bool:
		return 2
	case Tristate:
		return 3
	case Int, Hex:
		return float64(p.Max-p.Min) + 1
	case Enum:
		return float64(len(p.Values))
	}
	return 1
}

// FormatValue renders v in the parameter's natural syntax: y/n for bool,
// y/m/n for tristate, decimal for int, 0x-prefixed for hex, the literal
// string for enums.
func (p *Param) FormatValue(v Value) string {
	switch p.Type {
	case Bool:
		if v.I != 0 {
			return "y"
		}
		return "n"
	case Tristate:
		switch TristateValue(v.I) {
		case TriYes:
			return "y"
		case TriModule:
			return "m"
		default:
			return "n"
		}
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Hex:
		return "0x" + strconv.FormatInt(v.I, 16)
	case Enum:
		return v.S
	}
	return ""
}

// ParseValue parses a value in the parameter's natural syntax (the inverse
// of FormatValue). It accepts the common Kconfig spellings.
func (p *Param) ParseValue(s string) (Value, error) {
	s = strings.TrimSpace(s)
	switch p.Type {
	case Bool:
		switch strings.ToLower(s) {
		case "y", "yes", "1", "true", "on":
			return BoolValue(true), nil
		case "n", "no", "0", "false", "off":
			return BoolValue(false), nil
		}
		return Value{}, fmt.Errorf("configspace: %s: bad bool %q", p.Name, s)
	case Tristate:
		switch strings.ToLower(s) {
		case "y", "2":
			return TriValue(TriYes), nil
		case "m", "1":
			return TriValue(TriModule), nil
		case "n", "0":
			return TriValue(TriNo), nil
		}
		return Value{}, fmt.Errorf("configspace: %s: bad tristate %q", p.Name, s)
	case Int:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("configspace: %s: bad int %q", p.Name, s)
		}
		return IntValue(i), nil
	case Hex:
		t := strings.TrimPrefix(strings.ToLower(s), "0x")
		i, err := strconv.ParseInt(t, 16, 64)
		if err != nil {
			return Value{}, fmt.Errorf("configspace: %s: bad hex %q", p.Name, s)
		}
		return IntValue(i), nil
	case Enum:
		if p.enumIndex(s) < 0 {
			return Value{}, fmt.Errorf("configspace: %s: %q not in enum domain", p.Name, s)
		}
		return EnumValue(s), nil
	}
	return Value{}, fmt.Errorf("configspace: %s: unknown type", p.Name)
}
