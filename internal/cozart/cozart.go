// Package cozart implements a Cozart-style compile-time debloater (Kuo et
// al., SIGMETRICS'20 — the paper's §4.4 synergy study). Cozart uses
// dynamic analysis to trace which kernel components a workload actually
// exercises and derives a reduced compile-time configuration: unused
// options are switched off, shrinking the image and its footprint, with a
// performance side benefit from removing default-on debug machinery.
//
// The dynamic-analysis step is simulated: tracing a workload in the
// simulator observes (a) the essential boot set, (b) every compile option
// whose effect class the application is sensitive to, and (c) the inert
// driver options whose (deterministic) trace coin-flip says the workload's
// environment loads them. The derived baseline then becomes the starting
// point Wayfinder optimizes runtime parameters on top of (Fig 11).
package cozart

import (
	"sort"

	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
	"wayfinder/internal/simos"
)

// Trace is the simulated dynamic-analysis result for one workload.
type Trace struct {
	// Used lists compile-time options the workload exercised.
	Used map[string]bool
	// Total is the number of compile-time options considered.
	Total int
}

// UsedCount returns the number of options observed in use.
func (t *Trace) UsedCount() int { return len(t.Used) }

// TraceWorkload simulates running the application under Cozart's tracers:
// essentials are always observed; options with a hidden effect on a class
// the app is sensitive to are observed in proportion to that sensitivity;
// inert options are observed with a fixed environment-dependent
// probability (deterministic per option name).
func TraceWorkload(m *simos.Model, app *simos.App, seed uint64) *Trace {
	tr := &Trace{Used: map[string]bool{}}
	effectOf := map[string]simos.EffectClass{}
	hasEffect := map[string]bool{}
	for _, e := range m.Effects {
		effectOf[e.Param] = e.Class
		hasEffect[e.Param] = true
	}
	crashGuarded := map[string]bool{}
	for _, r := range m.CrashRules {
		if r.Stage == simos.StageBoot || r.Stage == simos.StageBuild {
			crashGuarded[r.Param] = true
		}
	}
	for _, p := range m.Space.Params() {
		if p.Class != configspace.CompileTime {
			continue
		}
		tr.Total++
		switch {
		case crashGuarded[p.Name]:
			// Boot-essential: always traced.
			tr.Used[p.Name] = true
		case hasEffect[p.Name]:
			// The workload touches this subsystem iff it is sensitive to
			// the option's class.
			if app.Sens(effectOf[p.Name]) > 0.1 {
				tr.Used[p.Name] = true
			}
		default:
			// Inert option: loaded by ~30% of environments, deterministic
			// per option so repeated traces agree.
			r := rng.New(seed).SplitLabeled(p.Name)
			if r.Chance(0.3) {
				tr.Used[p.Name] = true
			}
		}
	}
	return tr
}

// Debloat derives the reduced compile-time baseline from a trace: every
// unused compile option is switched off (bool n, tristate n, ints at
// their minimum footprint); used options and non-compile parameters keep
// their defaults.
func Debloat(m *simos.Model, tr *Trace) *configspace.Config {
	c := m.Space.Default()
	for i, p := range m.Space.Params() {
		if p.Class != configspace.CompileTime || tr.Used[p.Name] {
			continue
		}
		switch p.Type {
		case configspace.Bool:
			c.SetIndex(i, configspace.BoolValue(false))
		case configspace.Tristate:
			c.SetIndex(i, configspace.TriValue(configspace.TriNo))
		case configspace.Int, configspace.Hex:
			c.SetIndex(i, configspace.IntValue(p.Min))
		}
	}
	return c
}

// Apply traces the workload, derives the debloated baseline, verifies it
// still boots and runs (Cozart validates its output configurations), and
// rebases the space defaults onto it so subsequent searches start from
// the reduced kernel. It returns the baseline.
func Apply(m *simos.Model, app *simos.App, seed uint64) (*configspace.Config, error) {
	tr := TraceWorkload(m, app, seed)
	base := Debloat(m, tr)
	if st, _ := m.CrashOutcome(base); st != simos.StageOK {
		// Back off: re-enable unused options in deterministic order until
		// the image is healthy (Cozart's iterative re-addition step).
		var names []string
		for i, p := range m.Space.Params() {
			if p.Class == configspace.CompileTime && !tr.Used[p.Name] {
				_ = i
				names = append(names, p.Name)
			}
		}
		sort.Strings(names)
		healthy := false
		for _, name := range names {
			p, i := m.Space.Lookup(name)
			base.SetIndex(i, p.Default)
			if st, _ := m.CrashOutcome(base); st == simos.StageOK {
				healthy = true
				break
			}
		}
		if !healthy {
			// Give up debloating: fall back to the stock default.
			base = m.Space.Default()
		}
	}
	if err := m.Space.SetDefaultsFrom(base); err != nil {
		return nil, err
	}
	return base, nil
}
