package cozart

import (
	"maps"
	"slices"
	"testing"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
	"wayfinder/internal/simos"
)

func TestTraceObservesEssentials(t *testing.T) {
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 10, FillerCompile: 40, Seed: 1})
	tr := TraceWorkload(m, apps.Nginx(), 1)
	for _, name := range []string{"CONFIG_VIRTIO", "CONFIG_VIRTIO_NET", "CONFIG_EXT4_FS"} {
		if !tr.Used[name] {
			t.Fatalf("essential %s not traced", name)
		}
	}
	if tr.UsedCount() >= tr.Total {
		t.Fatal("trace marked everything used — nothing to debloat")
	}
	if tr.UsedCount() == 0 {
		t.Fatal("trace observed nothing")
	}
}

func TestTraceDeterministic(t *testing.T) {
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 10, FillerCompile: 40, Seed: 1})
	a := TraceWorkload(m, apps.Nginx(), 7)
	b := TraceWorkload(m, apps.Nginx(), 7)
	if a.UsedCount() != b.UsedCount() {
		t.Fatal("repeated traces disagree")
	}
	for _, name := range slices.Sorted(maps.Keys(a.Used)) {
		if !b.Used[name] {
			t.Fatalf("trace disagreement on %s", name)
		}
	}
}

func TestTraceAppSensitivity(t *testing.T) {
	// NPB is insensitive to debug-class options; its trace should exclude
	// some options nginx's trace includes (e.g. FTRACE, debug machinery).
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 10, FillerCompile: 40, Seed: 1})
	nginxTrace := TraceWorkload(m, apps.Nginx(), 1)
	npbTrace := TraceWorkload(m, apps.NPB(), 1)
	if !nginxTrace.Used["CONFIG_FTRACE"] {
		t.Fatal("nginx (debug-sensitive) should trace FTRACE")
	}
	if npbTrace.UsedCount() >= nginxTrace.UsedCount() {
		t.Fatalf("npb trace (%d) should be smaller than nginx's (%d)",
			npbTrace.UsedCount(), nginxTrace.UsedCount())
	}
}

func TestDebloatTurnsOffUnused(t *testing.T) {
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 10, FillerCompile: 40, Seed: 1})
	tr := TraceWorkload(m, apps.Nginx(), 1)
	base := Debloat(m, tr)
	for i, p := range m.Space.Params() {
		if p.Class != configspace.CompileTime {
			if base.Value(i) != p.Default {
				t.Fatalf("non-compile param %s changed", p.Name)
			}
			continue
		}
		if tr.Used[p.Name] {
			if base.Value(i) != p.Default {
				t.Fatalf("used option %s changed", p.Name)
			}
		} else if p.Type == configspace.Bool && base.Value(i).I != 0 {
			t.Fatalf("unused option %s still enabled", p.Name)
		}
	}
}

func TestApplyProducesHealthySmallerBaseline(t *testing.T) {
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 10, FillerCompile: 60, Seed: 1})
	r := rng.New(1)
	defMem := m.MemoryMB(m.Space.Default(), r)
	base, err := Apply(m, apps.Nginx(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if st, reason := m.CrashOutcome(base); st != simos.StageOK {
		t.Fatalf("cozart baseline crashes: %s (%s)", st, reason)
	}
	baseMem := m.MemoryMB(base, rng.New(1))
	if baseMem >= defMem {
		t.Fatalf("debloated footprint %v MB not below default %v MB", baseMem, defMem)
	}
	// Space defaults now point at the baseline.
	if !m.Space.Default().Equal(base) {
		t.Fatal("space defaults not rebased onto the cozart baseline")
	}
}

func TestApplyImprovesPerformance(t *testing.T) {
	// Cozart's debloating removes default-on debug machinery (FTRACE,
	// SLUB_DEBUG, PROFILING for NPB-insensitive traces), which the paper
	// reports as a throughput side benefit.
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 10, FillerCompile: 60, Seed: 1})
	app := apps.NPB() // insensitive to debug: its trace drops those options
	defMult := m.PerfMultiplier(m.Space.Default(), app)
	base, err := Apply(m, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	nginx := apps.Nginx()
	baseMult := m.PerfMultiplier(base, nginx)
	_ = defMult
	if baseMult < 1.0 {
		t.Fatalf("cozart baseline multiplier %v < 1 for nginx", baseMult)
	}
}
