package forest

import (
	"math"
	"testing"

	"wayfinder/internal/rng"
	"wayfinder/internal/stats"
)

// makeDataset builds n samples of dim features where only the listed
// features influence y (linearly), plus noise.
func makeDataset(n, dim int, active map[int]float64, noise float64, seed uint64) ([][]float64, []float64) {
	r := rng.New(seed)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for d := range x {
			x[d] = r.Float64()
		}
		y := 0.0
		for d, w := range active {
			y += w * x[d]
		}
		xs[i] = x
		ys[i] = y + r.Normal(0, noise)
	}
	return xs, ys
}

func TestPredictLearnsLinearSignal(t *testing.T) {
	xs, ys := makeDataset(400, 5, map[int]float64{0: 10}, 0.1, 1)
	f := Fit(xs, ys, DefaultConfig())
	// Predictions should track the signal: low x0 vs high x0.
	lo := f.Predict([]float64{0.1, 0.5, 0.5, 0.5, 0.5})
	hi := f.Predict([]float64{0.9, 0.5, 0.5, 0.5, 0.5})
	if hi-lo < 5 {
		t.Fatalf("forest failed to learn signal: lo=%v hi=%v", lo, hi)
	}
}

func TestPredictConstantTarget(t *testing.T) {
	xs, ys := makeDataset(100, 3, nil, 0, 2)
	for i := range ys {
		ys[i] = 7
	}
	f := Fit(xs, ys, DefaultConfig())
	if p := f.Predict(xs[0]); math.Abs(p-7) > 1e-9 {
		t.Fatalf("constant prediction = %v", p)
	}
}

func TestImportanceIdentifiesActiveFeatures(t *testing.T) {
	active := map[int]float64{2: 8, 7: 4}
	xs, ys := makeDataset(500, 10, active, 0.1, 3)
	f := Fit(xs, ys, DefaultConfig())
	imp := f.Importance(1)
	if len(imp) != 10 {
		t.Fatalf("importance dim = %d", len(imp))
	}
	// Feature 2 should dominate, feature 7 second; all inactive features
	// should be well below.
	if stats.ArgMax(imp) != 2 {
		t.Fatalf("top feature = %d, want 2 (imp=%v)", stats.ArgMax(imp), imp)
	}
	for d := 0; d < 10; d++ {
		if d == 2 || d == 7 {
			continue
		}
		if imp[d] > imp[7] {
			t.Fatalf("inactive feature %d (%v) outranks active 7 (%v)", d, imp[d], imp[7])
		}
	}
}

func TestImportanceNormalized(t *testing.T) {
	xs, ys := makeDataset(300, 6, map[int]float64{0: 5, 1: 5}, 0.1, 4)
	f := Fit(xs, ys, DefaultConfig())
	imp := f.Importance(2)
	norm := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatal("importance must be non-negative")
		}
		norm += v * v
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
		t.Fatalf("importance norm = %v, want 1", math.Sqrt(norm))
	}
}

func TestSimilarityMatrixStructure(t *testing.T) {
	// Two "applications" sharing active features should be similar; a third
	// with disjoint features should not — the Figure 5 premise.
	xsA, ysA := makeDataset(400, 12, map[int]float64{1: 9, 3: 5}, 0.1, 5)
	xsB, ysB := makeDataset(400, 12, map[int]float64{1: 7, 3: 6}, 0.1, 6)
	xsC, ysC := makeDataset(400, 12, map[int]float64{9: 9, 11: 5}, 0.1, 7)
	impA := Fit(xsA, ysA, DefaultConfig()).Importance(1)
	impB := Fit(xsB, ysB, DefaultConfig()).Importance(1)
	impC := Fit(xsC, ysC, DefaultConfig()).Importance(1)
	simAB := Similarity(impA, impB)
	simAC := Similarity(impA, impC)
	if simAB <= simAC {
		t.Fatalf("similar apps score %v, dissimilar %v — ordering wrong", simAB, simAC)
	}
	if Similarity(impA, impA) != 1 {
		t.Fatal("self-similarity must be 1")
	}
	if simAB < 0.7 {
		t.Fatalf("shared-feature similarity = %v, expected high", simAB)
	}
	if simAC > 0.6 {
		t.Fatalf("disjoint-feature similarity = %v, expected low", simAC)
	}
}

func TestOOBErrorReasonable(t *testing.T) {
	xs, ys := makeDataset(400, 5, map[int]float64{0: 10}, 0.2, 8)
	f := Fit(xs, ys, DefaultConfig())
	oob := f.OOBError()
	// Target variance is ~100/12 ≈ 8.3; a fitted forest should do much
	// better than predicting the mean.
	if oob > 3 {
		t.Fatalf("OOB error = %v, too high", oob)
	}
	if oob <= 0 {
		t.Fatalf("OOB error = %v, want positive (noise floor)", oob)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	xs, ys := makeDataset(200, 5, map[int]float64{0: 5}, 0.1, 9)
	cfg := DefaultConfig()
	a := Fit(xs, ys, cfg).Predict(xs[0])
	b := Fit(xs, ys, cfg).Predict(xs[0])
	if a != b {
		t.Fatal("same seed should give identical forests")
	}
	cfg2 := cfg
	cfg2.Seed = 999
	c := Fit(xs, ys, cfg2).Predict(xs[0])
	if a == c {
		t.Log("different seeds gave same prediction (possible but unlikely)")
	}
}

func TestMinLeafRespected(t *testing.T) {
	xs, ys := makeDataset(100, 3, map[int]float64{0: 10}, 0, 10)
	cfg := DefaultConfig()
	cfg.MinLeaf = 30
	f := Fit(xs, ys, cfg)
	// With MinLeaf 30 on 100 samples, trees are very shallow; verify no
	// leaf-node crash and sane predictions.
	p := f.Predict(xs[0])
	if math.IsNaN(p) {
		t.Fatal("NaN prediction")
	}
}

func TestSmallDataset(t *testing.T) {
	xs := [][]float64{{0}, {1}}
	ys := []float64{0, 1}
	f := Fit(xs, ys, Config{Trees: 5, Seed: 1, MinLeaf: 1})
	p := f.Predict([]float64{0.5})
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("tiny-dataset prediction = %v", p)
	}
}

func BenchmarkFit(b *testing.B) {
	xs, ys := makeDataset(500, 20, map[int]float64{0: 5, 3: 3}, 0.1, 1)
	cfg := DefaultConfig()
	cfg.Trees = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fit(xs, ys, cfg)
	}
}

func BenchmarkImportance(b *testing.B) {
	xs, ys := makeDataset(300, 20, map[int]float64{0: 5}, 0.1, 1)
	cfg := DefaultConfig()
	cfg.Trees = 10
	f := Fit(xs, ys, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Importance(uint64(i))
	}
}
