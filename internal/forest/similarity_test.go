package forest

import (
	"testing"

	"wayfinder/internal/rng"
)

// TestSimilarityProperties: across random vector pairs, Similarity is
// symmetric, lands in (0,1], and scores 1 exactly for self-similarity —
// the contract the corpus similarity index leans on.
func TestSimilarityProperties(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 200; trial++ {
		dim := 1 + r.Intn(16)
		a := make([]float64, dim)
		b := make([]float64, dim)
		for i := range a {
			a[i] = r.Normal(0, 2)
			b[i] = r.Normal(0, 2)
		}
		ab, ba := Similarity(a, b), Similarity(b, a)
		if ab != ba {
			t.Fatalf("trial %d: asymmetric: Similarity(a,b)=%v Similarity(b,a)=%v", trial, ab, ba)
		}
		if !(ab > 0 && ab <= 1) {
			t.Fatalf("trial %d: Similarity(a,b)=%v outside (0,1]", trial, ab)
		}
		if self := Similarity(a, a); self != 1 {
			t.Fatalf("trial %d: self-similarity %v, want exactly 1", trial, self)
		}
	}
}

// TestSimilarityMismatchedLengths: vectors from different spaces are
// incomparable and score 0 — in either argument order — rather than
// silently truncating through stats.Euclidean.
func TestSimilarityMismatchedLengths(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{1, 0}
	if got := Similarity(a, b); got != 0 {
		t.Fatalf("Similarity(len 3, len 2) = %v, want 0", got)
	}
	if got := Similarity(b, a); got != 0 {
		t.Fatalf("Similarity(len 2, len 3) = %v, want 0", got)
	}
	if got := Similarity(nil, nil); got != 1 {
		t.Fatalf("Similarity(nil, nil) = %v, want 1 (equal empty vectors)", got)
	}
}
