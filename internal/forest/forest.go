// Package forest implements a random-forest regressor with permutation
// feature importance. The paper uses a feature-importance algorithm
// (Breiman's random forests, their ref. [17]) to build the cross-similarity
// matrix of Figure 5: the importance vector of each application's
// performance model is compared across applications to predict whether
// transfer learning will help.
package forest

import (
	"math"
	"sort"

	"wayfinder/internal/rng"
	"wayfinder/internal/stats"
)

// Config controls forest construction.
type Config struct {
	// Trees is the ensemble size.
	Trees int
	// MaxDepth bounds tree depth (0 = unbounded).
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf.
	MinLeaf int
	// FeatureFraction is the fraction of features considered per split
	// (0 = use sqrt(d), the regression-forest convention is d/3 but sqrt
	// decorrelates better on the wide one-hot spaces we feed it).
	FeatureFraction float64
	// Seed seeds bootstrap sampling and feature subsampling.
	Seed uint64
}

// DefaultConfig returns sensible defaults for the Fig 5 workload.
func DefaultConfig() Config {
	return Config{Trees: 50, MaxDepth: 12, MinLeaf: 3, Seed: 1}
}

// Forest is a trained random-forest regressor.
type Forest struct {
	cfg   Config
	trees []*tree
	dim   int
	oob   [][]int // per-tree out-of-bag sample indices
	xs    [][]float64
	ys    []float64
}

type tree struct {
	// Flat node arrays; children index into the same slices. leaf nodes
	// have feature = -1.
	feature   []int
	threshold []float64
	left      []int
	right     []int
	value     []float64
}

func (t *tree) predict(x []float64) float64 {
	n := 0
	for t.feature[n] >= 0 {
		if x[t.feature[n]] <= t.threshold[n] {
			n = t.left[n]
		} else {
			n = t.right[n]
		}
	}
	return t.value[n]
}

// Fit trains a forest on the dataset.
func Fit(xs [][]float64, ys []float64, cfg Config) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 50
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	f := &Forest{cfg: cfg, dim: 0, xs: xs, ys: ys}
	if len(xs) > 0 {
		f.dim = len(xs[0])
	}
	r := rng.New(cfg.Seed)
	n := len(xs)
	for ti := 0; ti < cfg.Trees; ti++ {
		tr := r.Split()
		// Bootstrap sample.
		idx := make([]int, n)
		inBag := make([]bool, n)
		for i := range idx {
			j := tr.Intn(n)
			idx[i] = j
			inBag[j] = true
		}
		var oob []int
		for i := 0; i < n; i++ {
			if !inBag[i] {
				oob = append(oob, i)
			}
		}
		t := &tree{}
		b := &builder{f: f, t: t, r: tr, xs: xs, ys: ys}
		b.grow(idx, 0)
		f.trees = append(f.trees, t)
		f.oob = append(f.oob, oob)
	}
	return f
}

type builder struct {
	f  *Forest
	t  *tree
	r  *rng.RNG
	xs [][]float64
	ys []float64
}

// grow builds a subtree over the given sample indices and returns its node
// index.
func (b *builder) grow(idx []int, depth int) int {
	node := len(b.t.feature)
	b.t.feature = append(b.t.feature, -1)
	b.t.threshold = append(b.t.threshold, 0)
	b.t.left = append(b.t.left, -1)
	b.t.right = append(b.t.right, -1)
	mean := 0.0
	for _, i := range idx {
		mean += b.ys[i]
	}
	if len(idx) > 0 {
		mean /= float64(len(idx))
	}
	b.t.value = append(b.t.value, mean)

	cfg := b.f.cfg
	if len(idx) < 2*cfg.MinLeaf || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) || pure(b.ys, idx) {
		return node
	}
	feat, thr, ok := b.bestSplit(idx)
	if !ok {
		return node
	}
	var li, ri []int
	for _, i := range idx {
		if b.xs[i][feat] <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < cfg.MinLeaf || len(ri) < cfg.MinLeaf {
		return node
	}
	b.t.feature[node] = feat
	b.t.threshold[node] = thr
	b.t.left[node] = b.grow(li, depth+1)
	b.t.right[node] = b.grow(ri, depth+1)
	return node
}

func pure(ys []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if ys[i] != ys[idx[0]] { //wfvet:ignore floateq purity test over stored targets; equal values are bit-identical copies
			return false
		}
	}
	return true
}

// bestSplit searches a random feature subset for the variance-minimizing
// threshold.
func (b *builder) bestSplit(idx []int) (feature int, threshold float64, ok bool) {
	dim := b.f.dim
	k := int(b.f.cfg.FeatureFraction * float64(dim))
	if b.f.cfg.FeatureFraction == 0 { //wfvet:ignore floateq 0 is the config's unset sentinel, never a computed value
		k = int(math.Sqrt(float64(dim))) + 1
	}
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	bestScore := math.Inf(1)
	vals := make([]float64, 0, len(idx))
	perm := b.r.Perm(dim)[:k]
	for _, feat := range perm {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, b.xs[i][feat])
		}
		sort.Float64s(vals)
		// Candidate thresholds: midpoints between distinct sorted values,
		// subsampled for speed.
		for vi := 0; vi < len(vals)-1; vi++ {
			if vals[vi] == vals[vi+1] { //wfvet:ignore floateq skips duplicate sorted feature values, which are bit-identical stored copies
				continue
			}
			thr := (vals[vi] + vals[vi+1]) / 2
			var ln, rn int
			var lsum, rsum, lsq, rsq float64
			for _, i := range idx {
				y := b.ys[i]
				if b.xs[i][feat] <= thr {
					ln++
					lsum += y
					lsq += y * y
				} else {
					rn++
					rsum += y
					rsq += y * y
				}
			}
			if ln == 0 || rn == 0 {
				continue
			}
			// Weighted child SSE.
			score := (lsq - lsum*lsum/float64(ln)) + (rsq - rsum*rsum/float64(rn))
			if score < bestScore {
				bestScore = score
				feature, threshold, ok = feat, thr, true
			}
		}
	}
	return feature, threshold, ok
}

// Predict returns the ensemble-average prediction.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.predict(x)
	}
	return sum / float64(len(f.trees))
}

// Importance computes permutation feature importance on out-of-bag
// samples: for each feature, the mean increase in squared error when the
// feature's values are shuffled. Larger = more important. The returned
// vector is non-negative and normalized to unit L2 norm when non-zero,
// ready for Fig 5's similarity computation.
func (f *Forest) Importance(seed uint64) []float64 {
	imp := make([]float64, f.dim)
	r := rng.New(seed)
	for ti, t := range f.trees {
		oob := f.oob[ti]
		if len(oob) < 2 {
			continue
		}
		baseErr := 0.0
		for _, i := range oob {
			d := t.predict(f.xs[i]) - f.ys[i]
			baseErr += d * d
		}
		baseErr /= float64(len(oob))
		// Shuffle one feature at a time among OOB rows.
		perm := make([]int, len(oob))
		x := make([]float64, f.dim)
		for feat := 0; feat < f.dim; feat++ {
			copy(perm, r.Perm(len(oob)))
			permErr := 0.0
			for pi, i := range oob {
				copy(x, f.xs[i])
				x[feat] = f.xs[oob[perm[pi]]][feat]
				d := t.predict(x) - f.ys[i]
				permErr += d * d
			}
			permErr /= float64(len(oob))
			if delta := permErr - baseErr; delta > 0 {
				imp[feat] += delta
			}
		}
	}
	// Normalize to unit norm.
	norm := 0.0
	for _, v := range imp {
		norm += v * v
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range imp {
			imp[i] /= norm
		}
	}
	return imp
}

// Similarity computes the cross-similarity score between two normalized
// importance vectors the way Figure 5 does: the importance scores are
// treated as vectors and compared by Euclidean distance, mapped to (0,1]
// so identical profiles score 1. Vectors of different lengths come from
// different configuration spaces and are incomparable: they score 0, the
// one value the mapping can never produce for comparable vectors
// (stats.Euclidean ranges over its first argument only, so without the
// guard a mismatch would silently truncate).
func Similarity(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	d := stats.Euclidean(a, b)
	return 1 / (1 + d)
}

// OOBError returns the out-of-bag mean squared error, an unbiased estimate
// of generalization error.
func (f *Forest) OOBError() float64 {
	sum, n := 0.0, 0
	preds := make([]float64, len(f.xs))
	counts := make([]int, len(f.xs))
	for ti, t := range f.trees {
		for _, i := range f.oob[ti] {
			preds[i] += t.predict(f.xs[i])
			counts[i]++
		}
	}
	for i := range preds {
		if counts[i] == 0 {
			continue
		}
		d := preds[i]/float64(counts[i]) - f.ys[i]
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
