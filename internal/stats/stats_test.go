package stats

import (
	"math"
	"testing"
	"testing/quick"

	"wayfinder/internal/rng"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Fatalf("StdDev = %v, want 2", sd)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty slice moments should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Fatalf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestMinMaxNorm(t *testing.T) {
	out := MinMaxNorm([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Fatalf("MinMaxNorm = %v", out)
		}
	}
}

func TestMinMaxNormConstant(t *testing.T) {
	out := MinMaxNorm([]float64{7, 7, 7})
	for _, v := range out {
		if v != 0 {
			t.Fatalf("constant input should normalize to zeros, got %v", out)
		}
	}
}

func TestMinMaxNormPropertyBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 3+r.Intn(20))
		for i := range xs {
			xs[i] = r.Normal(0, 100)
		}
		for _, v := range MinMaxNorm(xs) {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMAE(t *testing.T) {
	got := MAE([]float64{1, 2, 3}, []float64{2, 2, 5})
	if !almostEqual(got, 1, 1e-12) {
		t.Fatalf("MAE = %v, want 1", got)
	}
}

func TestNormalizedMAE(t *testing.T) {
	got := NormalizedMAE([]float64{1, 2}, []float64{0, 10})
	// MAE = (1+8)/2 = 4.5, range = 10 → 0.45
	if !almostEqual(got, 0.45, 1e-12) {
		t.Fatalf("NormalizedMAE = %v, want 0.45", got)
	}
	if NormalizedMAE([]float64{1}, []float64{3}) != 0 {
		t.Fatal("zero-range targets should give 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("median = %v, want 3", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v, want 1", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v, want 5", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25 = %v, want 2", p)
	}
}

func TestEWMA(t *testing.T) {
	out := EWMA([]float64{1, 1, 1}, 0.5)
	for _, v := range out {
		if v != 1 {
			t.Fatalf("EWMA of constant should be constant: %v", out)
		}
	}
	out = EWMA([]float64{0, 1}, 0.5)
	if out[1] != 0.5 {
		t.Fatalf("EWMA step = %v, want 0.5", out[1])
	}
}

func TestEWMAStaysInRange(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Float64()
		}
		lo, hi := Min(xs), Max(xs)
		for _, v := range EWMA(xs, 0.3) {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingRate(t *testing.T) {
	events := []bool{true, false, true, true}
	out := MovingRate(events, 2)
	want := []float64{1, 0.5, 0.5, 1}
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Fatalf("MovingRate = %v, want %v", out, want)
		}
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	r := rng.New(31)
	xs := make([]float64, 500)
	var run Running
	for i := range xs {
		xs[i] = r.Normal(3, 7)
		run.Add(xs[i])
	}
	if !almostEqual(run.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("running mean %v vs batch %v", run.Mean(), Mean(xs))
	}
	if !almostEqual(run.Variance(), Variance(xs), 1e-6) {
		t.Fatalf("running var %v vs batch %v", run.Variance(), Variance(xs))
	}
	if run.N() != 500 {
		t.Fatalf("N = %d", run.N())
	}
}

func TestZScorer(t *testing.T) {
	samples := [][]float64{{0, 10}, {2, 10}, {4, 10}}
	z := FitZScorer(samples)
	out := z.Transform([]float64{2, 10})
	if !almostEqual(out[0], 0, 1e-12) {
		t.Fatalf("centered value should be 0, got %v", out[0])
	}
	// zero-variance dimension passes through centered.
	if !almostEqual(out[1], 0, 1e-12) {
		t.Fatalf("constant dim should map to 0, got %v", out[1])
	}
	hi := z.Transform([]float64{4, 10})
	if hi[0] <= 0 {
		t.Fatalf("above-mean value should be positive, got %v", hi[0])
	}
}

func TestZScorerEmpty(t *testing.T) {
	z := FitZScorer(nil)
	out := z.Transform([]float64{1, 2})
	if out[0] != 1 || out[1] != 2 {
		t.Fatal("empty scorer should pass through")
	}
}

func TestDistances(t *testing.T) {
	a, b := []float64{0, 0}, []float64{3, 4}
	if Euclidean(a, b) != 5 {
		t.Fatalf("Euclidean = %v", Euclidean(a, b))
	}
	if SquaredDistance(a, b) != 25 {
		t.Fatalf("SquaredDistance = %v", SquaredDistance(a, b))
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	// A = L0 L0ᵀ for a known lower-triangular L0.
	a := NewMatrix(3, 3)
	vals := [][]float64{{4, 2, 2}, {2, 5, 3}, {2, 3, 6}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Verify L Lᵀ == A.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			sum := 0.0
			for k := 0; k < 3; k++ {
				sum += l.At(i, k) * l.At(j, k)
			}
			if !almostEqual(sum, a.At(i, j), 1e-9) {
				t.Fatalf("LLᵀ(%d,%d) = %v, want %v", i, j, sum, a.At(i, j))
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1)
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestSolveCholesky(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := SolveCholesky(l, []float64{10, 8})
	// Verify A x == b.
	b0 := 4*x[0] + 2*x[1]
	b1 := 2*x[0] + 3*x[1]
	if !almostEqual(b0, 10, 1e-9) || !almostEqual(b1, 8, 1e-9) {
		t.Fatalf("solve wrong: x=%v", x)
	}
}

func TestSolveCholeskyProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(6)
		// Build A = M Mᵀ + n·I which is always SPD.
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = r.Normal(0, 1)
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k < n; k++ {
					sum += m.At(i, k) * m.At(j, k)
				}
				if i == j {
					sum += float64(n)
				}
				a.Set(i, j, sum)
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Normal(0, 5)
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := SolveCholesky(l, b)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a.At(i, j) * x[j]
			}
			if !almostEqual(sum, b[i], 1e-6) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if c := PearsonCorrelation(xs, ys); !almostEqual(c, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := PearsonCorrelation(xs, neg); !almostEqual(c, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", c)
	}
	if c := PearsonCorrelation(xs, []float64{5, 5, 5, 5}); c != 0 {
		t.Fatalf("zero-variance correlation = %v", c)
	}
}

func TestArgMaxMin(t *testing.T) {
	xs := []float64{3, 9, 1, 9}
	if ArgMax(xs) != 1 {
		t.Fatalf("ArgMax = %d", ArgMax(xs))
	}
	if ArgMin(xs) != 2 {
		t.Fatalf("ArgMin = %d", ArgMin(xs))
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("empty ArgMax/ArgMin should be -1")
	}
}

func BenchmarkCholesky(b *testing.B) {
	r := rng.New(1)
	n := 50
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := r.Normal(0, 1)
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

// randomSPDRows returns the packed lower triangle of a random symmetric
// positive-definite matrix (Gram matrix plus a diagonal boost).
func randomSPDRows(n int, r *rng.RNG) [][]float64 {
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, n)
		for j := range vecs[i] {
			vecs[i][j] = r.Normal(0, 1)
		}
	}
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = make([]float64, i+1)
		for j := 0; j <= i; j++ {
			rows[i][j] = Dot(vecs[i], vecs[j]) / float64(n)
			if i == j {
				rows[i][j] += 1
			}
		}
	}
	return rows
}

func TestTriFactorExtendMatchesFullFactorization(t *testing.T) {
	// Growing the factor one row at a time must reproduce the from-scratch
	// factorization of every leading block.
	r := rng.New(11)
	const n = 24
	rows := randomSPDRows(n, r)
	inc := &TriFactor{}
	for k := 0; k < n; k++ {
		if err := inc.Extend(rows[k][:k], rows[k][k]); err != nil {
			t.Fatalf("extend to %d: %v", k+1, err)
		}
		full := &TriFactor{}
		if err := full.FactorFromRows(rows[:k+1], 0); err != nil {
			t.Fatalf("full factorization at %d: %v", k+1, err)
		}
		for i := 0; i <= k; i++ {
			for j := 0; j <= i; j++ {
				if d := math.Abs(inc.At(i, j) - full.At(i, j)); d > 1e-10 {
					t.Fatalf("n=%d: L[%d][%d] incremental %v vs full %v", k+1, i, j, inc.At(i, j), full.At(i, j))
				}
			}
		}
	}
}

func TestTriFactorSolveMatchesSolveCholesky(t *testing.T) {
	r := rng.New(12)
	const n = 16
	rows := randomSPDRows(n, r)
	tf := &TriFactor{}
	if err := tf.FactorFromRows(rows, 0); err != nil {
		t.Fatal(err)
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			a.Set(i, j, rows[i][j])
			a.Set(j, i, rows[i][j])
		}
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Normal(0, 1)
	}
	want := SolveCholesky(l, b)
	got := make([]float64, n)
	tf.Solve(b, got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// ForwardSolve agrees with the matrix-based substitution too.
	v := make([]float64, n)
	tf.ForwardSolve(b, v)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * v[k]
		}
		if math.Abs(v[i]-sum/l.At(i, i)) > 1e-10 {
			t.Fatalf("forward solve diverged at %d", i)
		}
	}
}

func TestTriFactorTruncateRestoresExactly(t *testing.T) {
	// Extend never rewrites earlier rows, so Truncate must restore the
	// pre-extension factor byte-for-byte — the fantasy-frame contract.
	r := rng.New(13)
	const n = 12
	rows := randomSPDRows(n+3, r)
	tf := &TriFactor{}
	for k := 0; k < n; k++ {
		if err := tf.Extend(rows[k][:k], rows[k][k]); err != nil {
			t.Fatal(err)
		}
	}
	before := append([]float64(nil), tf.data...)
	for k := n; k < n+3; k++ {
		if err := tf.Extend(rows[k][:k], rows[k][k]); err != nil {
			t.Fatal(err)
		}
	}
	tf.Truncate(n)
	if tf.Len() != n {
		t.Fatalf("Len = %d after truncate, want %d", tf.Len(), n)
	}
	if len(tf.data) != len(before) {
		t.Fatalf("data length %d, want %d", len(tf.data), len(before))
	}
	for i := range before {
		if tf.data[i] != before[i] {
			t.Fatalf("data[%d] = %v, want %v (truncate must be exact)", i, tf.data[i], before[i])
		}
	}
}

func TestTriFactorExtendRejectsNonPD(t *testing.T) {
	tf := &TriFactor{}
	if err := tf.Extend(nil, 1); err != nil {
		t.Fatal(err)
	}
	// A second identical row makes the matrix singular: [[1,1],[1,1]].
	if err := tf.Extend([]float64{1}, 1); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if tf.Len() != 1 {
		t.Fatalf("failed extend mutated the factor: Len = %d", tf.Len())
	}
	// The clamped variant succeeds, reporting the clamp.
	if !tf.ExtendClamped([]float64{1}, 1, 1e-6) {
		t.Fatal("ExtendClamped should report clamping on a singular extension")
	}
	if tf.Len() != 2 {
		t.Fatalf("Len = %d after clamped extend, want 2", tf.Len())
	}
	if got, want := tf.At(1, 1), math.Sqrt(1e-6); math.Abs(got-want) > 1e-15 {
		t.Fatalf("clamped pivot = %v, want %v", got, want)
	}
}

// reconstruct returns the packed SPD matrix the factor represents:
// A[i][j] = Σ_k L[i][k]·L[j][k]. For a clamped factor this is the
// *effective* matrix — the one the clamp silently substituted — which is
// the matrix a downdate must stay consistent with.
func reconstruct(tf *TriFactor) [][]float64 {
	n := tf.Len()
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = make([]float64, i+1)
		for j := 0; j <= i; j++ {
			sum := 0.0
			for k := 0; k <= j; k++ {
				sum += tf.At(i, k) * tf.At(j, k)
			}
			rows[i][j] = sum
		}
	}
	return rows
}

// suffixRows drops the first `drop` rows/columns of a packed matrix.
func suffixRows(rows [][]float64, drop int) [][]float64 {
	out := make([][]float64, len(rows)-drop)
	for i := range out {
		out[i] = rows[i+drop][drop : drop+i+1]
	}
	return out
}

func TestTriFactorDowndateMatchesSuffixRefit(t *testing.T) {
	// Downdating the oldest row must reproduce the from-scratch
	// factorization of the matrix with that row and column deleted —
	// repeatedly, across random SPD matrices of varying conditioning.
	for seed := uint64(1); seed <= 6; seed++ {
		r := rng.New(seed)
		const n = 20
		rows := randomSPDRows(n, r)
		tf := &TriFactor{}
		if err := tf.FactorFromRows(rows, 0); err != nil {
			t.Fatal(err)
		}
		for drop := 1; drop < n; drop++ {
			if err := tf.Downdate(); err != nil {
				t.Fatalf("seed %d drop %d: %v", seed, drop, err)
			}
			want := &TriFactor{}
			if err := want.FactorFromRows(suffixRows(rows, drop), 0); err != nil {
				t.Fatalf("seed %d drop %d suffix refit: %v", seed, drop, err)
			}
			m := n - drop
			if tf.Len() != m {
				t.Fatalf("Len = %d after %d downdates, want %d", tf.Len(), drop, m)
			}
			for i := 0; i < m; i++ {
				for j := 0; j <= i; j++ {
					if d := math.Abs(tf.At(i, j) - want.At(i, j)); d > 1e-9 {
						t.Fatalf("seed %d drop %d: L[%d][%d] downdated %v vs refit %v (|Δ|=%g)",
							seed, drop, i, j, tf.At(i, j), want.At(i, j), d)
					}
				}
			}
		}
	}
}

func TestTriFactorDowndateNearSingular(t *testing.T) {
	// A nearly-rank-deficient matrix (tiny diagonal boost): the rotation
	// sweep must still track the suffix refit within tolerance.
	r := rng.New(77)
	const n = 12
	rows := randomSPDRows(n, r)
	for i := range rows {
		rows[i][i] += 1e-7 - 1 // undo the unit boost, leave 1e-7
	}
	tf := &TriFactor{}
	if err := tf.FactorFromRows(rows, 0); err != nil {
		t.Fatal(err)
	}
	for drop := 1; drop <= n/2; drop++ {
		if err := tf.Downdate(); err != nil {
			t.Fatalf("drop %d: %v", drop, err)
		}
		want := &TriFactor{}
		if err := want.FactorFromRows(suffixRows(rows, drop), 0); err != nil {
			t.Fatalf("drop %d suffix refit: %v", drop, err)
		}
		for i := 0; i < tf.Len(); i++ {
			for j := 0; j <= i; j++ {
				if d := math.Abs(tf.At(i, j) - want.At(i, j)); d > 1e-9 {
					t.Fatalf("drop %d: L[%d][%d] off by %g", drop, i, j, d)
				}
			}
		}
	}
}

func TestTriFactorDowndateClampedPivot(t *testing.T) {
	// A factor that went through the clamped-pivot rescue represents an
	// effective matrix slightly different from the requested one; the
	// downdate must stay consistent with *that* matrix's suffix.
	tf := &TriFactor{}
	if err := tf.Extend(nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := tf.Extend([]float64{0.5}, 2); err != nil {
		t.Fatal(err)
	}
	// The third row duplicates the first exactly, so the Schur complement
	// is zero and the clamp must engage.
	if !tf.ExtendClamped([]float64{1, 0.5}, 1, 1e-6) {
		t.Fatal("duplicate row should force the pivot clamp")
	}
	eff := reconstruct(tf)
	if err := tf.Downdate(); err != nil {
		t.Fatal(err)
	}
	want := &TriFactor{}
	if err := want.FactorFromRows(suffixRows(eff, 1), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tf.Len(); i++ {
		for j := 0; j <= i; j++ {
			if d := math.Abs(tf.At(i, j) - want.At(i, j)); d > 1e-9 {
				t.Fatalf("L[%d][%d] off by %g after clamped-factor downdate", i, j, d)
			}
		}
	}
}

func TestTriFactorDowndateEmpty(t *testing.T) {
	tf := &TriFactor{}
	if err := tf.Downdate(); err == nil {
		t.Fatal("Downdate of an empty factor should error")
	}
}

func TestTriFactorPackedRoundTrip(t *testing.T) {
	r := rng.New(21)
	const n = 10
	rows := randomSPDRows(n, r)
	tf := &TriFactor{}
	if err := tf.FactorFromRows(rows, 0); err != nil {
		t.Fatal(err)
	}
	packed := tf.PackedData()
	got := &TriFactor{}
	if err := got.SetPacked(n, packed); err != nil {
		t.Fatal(err)
	}
	if got.Len() != n {
		t.Fatalf("Len = %d, want %d", got.Len(), n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if got.At(i, j) != tf.At(i, j) {
				t.Fatalf("L[%d][%d] not restored exactly", i, j)
			}
		}
	}
	if err := got.SetPacked(n, packed[:len(packed)-1]); err == nil {
		t.Fatal("SetPacked should reject a length mismatch")
	}
}

func TestTriFactorBatchSolvesBitIdentical(t *testing.T) {
	// Column j of ForwardSolveBatch/SolveBatch must be bit-for-bit the
	// scalar ForwardSolve/Solve of column j: the batch layout reorders the
	// sweep across columns but never the FP operations within one.
	r := rng.New(33)
	const n, m = 18, 7
	rows := randomSPDRows(n, r)
	tf := &TriFactor{}
	if err := tf.FactorFromRows(rows, 0); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n*m)
	for i := range b {
		b[i] = r.Normal(0, 1)
	}
	fwd := make([]float64, n*m)
	tf.ForwardSolveBatch(b, fwd, m)
	full := make([]float64, n*m)
	tf.SolveBatch(b, full, m)
	col := make([]float64, n)
	scratch := make([]float64, n)
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			col[i] = b[i*m+j]
		}
		tf.ForwardSolve(col, scratch)
		for i := 0; i < n; i++ {
			if math.Float64bits(fwd[i*m+j]) != math.Float64bits(scratch[i]) {
				t.Fatalf("ForwardSolveBatch col %d row %d: %v != scalar %v", j, i, fwd[i*m+j], scratch[i])
			}
		}
		tf.Solve(col, scratch)
		for i := 0; i < n; i++ {
			if math.Float64bits(full[i*m+j]) != math.Float64bits(scratch[i]) {
				t.Fatalf("SolveBatch col %d row %d: %v != scalar %v", j, i, full[i*m+j], scratch[i])
			}
		}
	}
}
