// Package stats provides the small numerical toolkit shared by Wayfinder's
// search algorithms, simulator, and reporting layers: normalization,
// smoothing, running moments, error metrics, and dense matrix helpers.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MinMaxNorm returns the min-max normalization of xs onto [0,1] — the
// mXNorm(·) function used by the paper's throughput–memory score (Eq. 4).
// Constant input maps to all zeros.
func MinMaxNorm(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, hi := Min(xs), Max(xs)
	span := hi - lo
	if span == 0 { //wfvet:ignore floateq guards the division; only an exactly-zero span is degenerate
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / span
	}
	return out
}

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, target []float64) float64 {
	if len(pred) != len(target) || len(pred) == 0 {
		return 0
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - target[i])
	}
	return sum / float64(len(pred))
}

// NormalizedMAE returns MAE divided by the target range, the normalized MAE
// reported in the paper's Table 3. A zero range yields 0.
func NormalizedMAE(pred, target []float64) float64 {
	if len(target) == 0 {
		return 0
	}
	span := Max(target) - Min(target)
	if span == 0 { //wfvet:ignore floateq guards the division; only an exactly-zero span is degenerate
		return 0
	}
	return MAE(pred, target) / span
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// EWMA returns the exponentially-weighted moving average of xs with
// smoothing factor alpha in (0,1]; the first element seeds the average.
// It is the smoothing applied to the paper's figure time series.
func EWMA(xs []float64, alpha float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}

// MovingRate returns, for each position, the fraction of true values in the
// trailing window — used for the dashed crash-rate curves in Figs 6, 11.
func MovingRate(events []bool, window int) []float64 {
	out := make([]float64, len(events))
	if window <= 0 {
		window = 1
	}
	count := 0
	for i := range events {
		if events[i] {
			count++
		}
		if i >= window && events[i-window] {
			count--
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = float64(count) / float64(n)
	}
	return out
}

// Running tracks streaming mean and variance (Welford's algorithm).
type Running struct {
	n    int
	mean float64
	m2   float64
}

// RestoreRunning reconstructs a Running accumulator from summary
// statistics (used when deserializing trained models).
func RestoreRunning(n int, mean, variance float64) Running {
	return Running{n: n, mean: mean, m2: variance * float64(n)}
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the running population variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// ZScorer normalizes feature vectors to zero mean and unit variance, the
// preprocessing the DTM's RBF layers assume (γ=0.1 on z-scored inputs).
type ZScorer struct {
	mean []float64
	std  []float64
}

// NewZScorerFromStats reconstructs a scorer from serialized statistics.
func NewZScorerFromStats(mean, std []float64) *ZScorer {
	return &ZScorer{mean: append([]float64(nil), mean...), std: append([]float64(nil), std...)}
}

// Stats returns the scorer's per-dimension mean and std (empty for an
// unfitted scorer).
func (z *ZScorer) Stats() (mean, std []float64) { return z.mean, z.std }

// FitZScorer computes per-dimension mean/std from a sample of vectors.
// Dimensions with zero variance are given unit std so they pass through.
func FitZScorer(samples [][]float64) *ZScorer {
	if len(samples) == 0 {
		return &ZScorer{}
	}
	dim := len(samples[0])
	z := &ZScorer{mean: make([]float64, dim), std: make([]float64, dim)}
	for d := 0; d < dim; d++ {
		var run Running
		for _, s := range samples {
			run.Add(s[d])
		}
		z.mean[d] = run.Mean()
		sd := run.StdDev()
		if sd < 1e-12 {
			sd = 1
		}
		z.std[d] = sd
	}
	return z
}

// Transform returns the z-scored copy of v.
func (z *ZScorer) Transform(v []float64) []float64 {
	if len(z.mean) == 0 {
		return append([]float64(nil), v...)
	}
	out := make([]float64, len(v))
	for i := range v {
		out[i] = (v[i] - z.mean[i]) / z.std[i]
	}
	return out
}

// TransformInto z-scores v into dst (len(dst) ≥ len(v)), allocation-free
// — the batch-prediction path's Transform. The arithmetic is identical.
func (z *ZScorer) TransformInto(v, dst []float64) {
	if len(z.mean) == 0 {
		copy(dst, v)
		return
	}
	for i := range v {
		dst[i] = (v[i] - z.mean[i]) / z.std[i]
	}
}

// Euclidean returns the L2 distance between two equal-length vectors.
func Euclidean(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// SquaredDistance returns the squared L2 distance between two vectors.
func SquaredDistance(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) positive definite.
var ErrNotPositiveDefinite = errors.New("stats: matrix not positive definite")

// Cholesky computes the lower-triangular factor L with A = L Lᵀ.
// A must be square and symmetric positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("stats: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A x = b given the Cholesky factor L of A, via
// forward then backward substitution.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// TriFactor is a lower-triangular matrix in packed row-major storage: row
// i holds exactly i+1 entries, so the whole factor lives in one
// n(n+1)/2-length slice. The layout is what makes an *incremental*
// Cholesky factorization cheap: appending row n+1 appends n+1 floats to
// the backing array and touches nothing already written, so the factor of
// a growing SPD matrix (a GP kernel matrix gaining one observation per
// iteration) is extended in place with one O(n²) forward solve instead of
// an O(n³) refactorization. The converse operation, Downdate, removes the
// *oldest* row in O(n²) via a rank-1 rotation sweep — together they give a
// sliding window over an unbounded observation stream at constant memory.
type TriFactor struct {
	n    int
	data []float64
	// dscratch is Downdate's reusable rotation column (the deleted row's
	// subdiagonal), regrown on demand.
	dscratch []float64
}

// Len returns the factor's current dimension.
func (t *TriFactor) Len() int { return t.n }

// At returns element (i, j) for j ≤ i.
func (t *TriFactor) At(i, j int) float64 { return t.data[i*(i+1)/2+j] }

// Truncate shrinks the factor back to its leading n×n block — an O(1)
// reslice. Because appending rows never rewrites earlier ones, the
// truncated factor is byte-identical to the factor before the extension:
// push a fantasized observation with Extend, pop it with Truncate.
func (t *TriFactor) Truncate(n int) {
	if n < 0 || n >= t.n {
		return
	}
	t.n = n
	t.data = t.data[:n*(n+1)/2]
}

// Extend appends one row to the factor: given b = A[n][0..n-1] (the new
// point's covariances against the existing points) and d = A[n][n] (its
// variance), it solves L ℓ = b by forward substitution and sets the new
// diagonal to √(d − ℓ·ℓ). The existing rows are untouched. When the
// Schur complement d − ℓ·ℓ is not positive the factor is left unchanged
// and ErrNotPositiveDefinite is returned — the caller's cue to fall back
// to a full (jittered) refactorization.
func (t *TriFactor) Extend(b []float64, d float64) error {
	if _, err := t.extend(b, d, math.NaN()); err != nil {
		return err
	}
	return nil
}

// ExtendClamped is Extend with a positive floor on the Schur complement:
// instead of failing on a non-positive pivot it clamps it to floor, so
// the extension always succeeds (at the price of a slightly inflated
// variance for the new point). It reports whether clamping occurred.
// Used for fantasized observations, which must never trigger a
// refactorization — popping them relies on Truncate being exact.
func (t *TriFactor) ExtendClamped(b []float64, d, floor float64) bool {
	clamped, _ := t.extend(b, d, floor)
	return clamped
}

func (t *TriFactor) extend(b []float64, d, floor float64) (bool, error) {
	n := t.n
	base := len(t.data)
	t.data = append(t.data, make([]float64, n+1)...)
	row := t.data[base : base+n+1]
	for i := 0; i < n; i++ {
		sum := b[i]
		ri := t.data[i*(i+1)/2:]
		for k := 0; k < i; k++ {
			sum -= ri[k] * row[k]
		}
		row[i] = sum / ri[i]
	}
	s := d
	for k := 0; k < n; k++ {
		s -= row[k] * row[k]
	}
	clamped := false
	if !(s > 0) || math.IsNaN(s) {
		if math.IsNaN(floor) {
			t.data = t.data[:base]
			return false, ErrNotPositiveDefinite
		}
		s, clamped = floor, true
	} else if s < floor {
		s, clamped = floor, true
	}
	row[n] = math.Sqrt(s)
	t.n++
	return clamped, nil
}

// FactorFromRows computes the full Cholesky factorization of the packed
// SPD matrix given by rows (rows[i][j] = A[i][j] for j ≤ i) with diagAdd
// added to every diagonal entry, reusing t's storage. On failure t is
// emptied and ErrNotPositiveDefinite returned.
func (t *TriFactor) FactorFromRows(rows [][]float64, diagAdd float64) error {
	n := len(rows)
	need := n * (n + 1) / 2
	if cap(t.data) < need {
		t.data = make([]float64, need)
	}
	t.data = t.data[:need]
	t.n = n
	for i := 0; i < n; i++ {
		ri := t.data[i*(i+1)/2:]
		for j := 0; j <= i; j++ {
			sum := rows[i][j]
			if i == j {
				sum += diagAdd
			}
			rj := t.data[j*(j+1)/2:]
			for k := 0; k < j; k++ {
				sum -= ri[k] * rj[k]
			}
			if i == j {
				if sum <= 0 {
					t.n, t.data = 0, t.data[:0]
					return ErrNotPositiveDefinite
				}
				ri[j] = math.Sqrt(sum)
			} else {
				ri[j] = sum / rj[j]
			}
		}
	}
	return nil
}

// Downdate removes the factor's first row and column in O(n²): if L
// factors the SPD matrix A, the result factors A with its first row and
// column deleted — the "forget the oldest observation" half of a sliding
// window. Partitioning L = [[ℓ₁₁, 0], [v, L₁]], the trailing block of A
// satisfies A₁ = L₁L₁ᵀ + vvᵀ, so the new factor is the rank-1 *update* of
// L₁ by v, computed with the classic LINPACK rotation sweep. Every
// rotation has hypotenuse r = √(d² + vₖ²) ≥ d > 0, so — unlike a rank-1
// *downdate* — the sweep cannot fail on a valid factor; the only error is
// an empty one.
func (t *TriFactor) Downdate() error {
	if t.n == 0 {
		return errors.New("stats: Downdate of an empty factor")
	}
	m := t.n - 1
	if cap(t.dscratch) < m {
		t.dscratch = make([]float64, m)
	}
	v := t.dscratch[:m]
	// Save the deleted row's subdiagonal column v, then repack rows 1..n-1
	// as rows 0..n-2 with their leading entry dropped. Ascending order is
	// in-place safe: row i's destination starts at (i-1)i/2, strictly below
	// its source at i(i+1)/2 + 1.
	for i := 1; i <= m; i++ {
		src := i * (i + 1) / 2
		v[i-1] = t.data[src]
		copy(t.data[(i-1)*i/2:], t.data[src+1:src+i+1])
	}
	t.n = m
	t.data = t.data[:m*(m+1)/2]
	// Rank-1 update: rotate v into the repacked L₁, column by column.
	for k := 0; k < m; k++ {
		diag := k*(k+1)/2 + k
		dkk := t.data[diag]
		r := math.Sqrt(dkk*dkk + v[k]*v[k])
		c, s := r/dkk, v[k]/dkk
		t.data[diag] = r
		for i := k + 1; i < m; i++ {
			idx := i*(i+1)/2 + k
			t.data[idx] = (t.data[idx] + s*v[i]) / c
			v[i] = c*v[i] - s*t.data[idx]
		}
	}
	return nil
}

// PackedData returns a copy of the factor's packed storage (row-major
// lower triangle, n(n+1)/2 entries) — the serialization checkpoints use
// when the factor's construction history can no longer be replayed.
func (t *TriFactor) PackedData() []float64 {
	return append([]float64(nil), t.data...)
}

// SetPacked overwrites the factor with packed storage previously produced
// by PackedData for an n×n factor.
func (t *TriFactor) SetPacked(n int, data []float64) error {
	if n < 0 || len(data) != n*(n+1)/2 {
		return fmt.Errorf("stats: SetPacked got %d entries for dimension %d (want %d)", len(data), n, n*(n+1)/2)
	}
	t.n = n
	t.data = append(t.data[:0], data...)
	return nil
}

// ForwardSolve solves L v = b into dst (len ≥ t.Len()), allocation-free.
func (t *TriFactor) ForwardSolve(b, dst []float64) {
	for i := 0; i < t.n; i++ {
		sum := b[i]
		ri := t.data[i*(i+1)/2:]
		for k := 0; k < i; k++ {
			sum -= ri[k] * dst[k]
		}
		dst[i] = sum / ri[i]
	}
}

// Solve solves (L Lᵀ) x = b into dst via forward then backward
// substitution, allocation-free.
func (t *TriFactor) Solve(b, dst []float64) {
	t.ForwardSolve(b, dst)
	for i := t.n - 1; i >= 0; i-- {
		sum := dst[i]
		for k := i + 1; k < t.n; k++ {
			sum -= t.At(k, i) * dst[k]
		}
		dst[i] = sum / t.At(i, i)
	}
}

// ForwardSolveBatch solves L V = B for an n×m right-hand-side matrix in
// one factor sweep: b and dst are row-major n×m (entry (i,j) at i*m+j and
// dst may alias b). Each column undergoes exactly the scalar
// ForwardSolve's operation sequence — same additions in the same order,
// same final division — so column j of the result is bit-identical to
// ForwardSolve on column j. Allocation-free.
func (t *TriFactor) ForwardSolveBatch(b, dst []float64, m int) {
	for i := 0; i < t.n; i++ {
		ri := t.data[i*(i+1)/2:]
		bi := b[i*m : i*m+m]
		di := dst[i*m : i*m+m]
		copy(di, bi)
		for k := 0; k < i; k++ {
			lik := ri[k]
			dk := dst[k*m : k*m+m]
			for j, dkj := range dk {
				di[j] -= lik * dkj
			}
		}
		lii := ri[i]
		for j := range di {
			di[j] /= lii
		}
	}
}

// SolveBatch solves (L Lᵀ) X = B for an n×m right-hand-side matrix
// (row-major, dst may alias b), column-bit-identical to m scalar Solve
// calls. Allocation-free.
func (t *TriFactor) SolveBatch(b, dst []float64, m int) {
	t.ForwardSolveBatch(b, dst, m)
	for i := t.n - 1; i >= 0; i-- {
		di := dst[i*m : i*m+m]
		for k := i + 1; k < t.n; k++ {
			lki := t.data[k*(k+1)/2+i]
			dk := dst[k*m : k*m+m]
			for j, dkj := range dk {
				di[j] -= lki * dkj
			}
		}
		lii := t.data[i*(i+1)/2+i]
		for j := range di {
			di[j] /= lii
		}
	}
}

// PearsonCorrelation returns the Pearson correlation coefficient between xs
// and ys, or 0 when either side has zero variance.
func PearsonCorrelation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 { //wfvet:ignore floateq guards the division; only exactly-zero variance is degenerate
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// ArgMax returns the index of the maximum element (first on ties), or -1
// for an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element (first on ties), or -1
// for an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
