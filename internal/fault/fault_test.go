package fault

import (
	"testing"
)

func TestEmptySchedule(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Fatal("nil schedule is not Empty")
	}
	if !nilSched.HostUpAt(0, 100) {
		t.Fatal("nil schedule downs hosts")
	}
	if _, _, killed := nilSched.KillBetween(0, 0, 0, 1e9); killed {
		t.Fatal("nil schedule kills")
	}
	if _, ok := nilSched.Inject(0, 1); ok {
		t.Fatal("nil schedule injects")
	}
	if d := nilSched.Downtime(0, 0, 1e9); d != 0 {
		t.Fatalf("nil schedule has downtime %g", d)
	}
	if err := nilSched.Validate(1, 1); err != nil {
		t.Fatalf("nil schedule invalid: %v", err)
	}
	if (&Schedule{}).Empty() == false {
		t.Fatal("zero schedule is not Empty")
	}
}

func TestTimelineStableOrder(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: HostUp, Host: 1, AtSec: 300},
		{Kind: HostDown, Host: 2, AtSec: 100},
		{Kind: HostDown, Host: 1, AtSec: 100},
	}}
	tl := s.Timeline()
	if len(tl) != 3 {
		t.Fatalf("timeline has %d events", len(tl))
	}
	// Equal AtSec keeps original order (host 2 before host 1).
	if tl[0].Host != 2 || tl[1].Host != 1 || tl[2].Kind != HostUp {
		t.Fatalf("timeline order wrong: %+v", tl)
	}
}

func TestHostLiveness(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: HostDown, Host: 1, AtSec: 100},
		{Kind: HostUp, Host: 1, AtSec: 400},
	}}
	cases := []struct {
		t  float64
		up bool
	}{
		{0, true}, {99, true}, {100, false}, {250, false}, {400, true}, {1000, true},
	}
	for _, c := range cases {
		if got := s.HostUpAt(1, c.t); got != c.up {
			t.Errorf("HostUpAt(1, %g) = %v, want %v", c.t, got, c.up)
		}
	}
	if s.HostUpAt(0, 250) != true {
		t.Error("untouched host reported down")
	}
	if at, ok := s.NextUpAt(1, 200); !ok || at != 400 {
		t.Errorf("NextUpAt(1, 200) = %g, %v", at, ok)
	}
	if at, ok := s.NextUpAt(1, 50); !ok || at != 50 {
		t.Errorf("NextUpAt while up = %g, %v", at, ok)
	}
	forever := &Schedule{Events: []Event{{Kind: HostDown, Host: 0, AtSec: 10}}}
	if _, ok := forever.NextUpAt(0, 20); ok {
		t.Error("permanently-down host reported a revival")
	}
	if d := s.Downtime(1, 0, 1000); d != 300 {
		t.Errorf("Downtime = %g, want 300", d)
	}
	if d := s.Downtime(1, 200, 300); d != 100 {
		t.Errorf("windowed Downtime = %g, want 100", d)
	}
}

func TestKillBetweenOpenInterval(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: WorkerPreempt, Worker: 3, AtSec: 120},
		{Kind: HostDown, Host: 1, AtSec: 200},
	}}
	if kind, at, ok := s.KillBetween(3, 0, 100, 150); !ok || kind != WorkerPreempt || at != 120 {
		t.Fatalf("preempt not caught: %v %g %v", kind, at, ok)
	}
	// Open on both ends: starting exactly at, or ending exactly at, the
	// fault instant is not a kill.
	if _, _, ok := s.KillBetween(3, 0, 120, 150); ok {
		t.Fatal("kill at interval start (closed) — want open")
	}
	if _, _, ok := s.KillBetween(3, 0, 100, 120); ok {
		t.Fatal("kill at interval end (closed) — want open")
	}
	if _, _, ok := s.KillBetween(2, 0, 100, 150); ok {
		t.Fatal("preempt hit the wrong worker")
	}
	if kind, _, ok := s.KillBetween(0, 1, 150, 250); !ok || kind != HostDown {
		t.Fatal("host-down kill missed")
	}
	// Earliest applicable fault wins.
	if _, at, ok := s.KillBetween(3, 1, 100, 300); !ok || at != 120 {
		t.Fatalf("earliest kill = %g, %v", at, ok)
	}
}

func TestInject(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: BuildFail, Iter: 7, Attempt: 1},
		{Kind: BootFail, Iter: 7, Attempt: 2},
	}}
	if kind, ok := s.Inject(7, 1); !ok || kind != BuildFail {
		t.Fatal("buildfail(7,1) missed")
	}
	if kind, ok := s.Inject(7, 2); !ok || kind != BootFail {
		t.Fatal("bootfail(7,2) missed")
	}
	if _, ok := s.Inject(7, 3); ok {
		t.Fatal("inject(7,3) spurious")
	}
	if _, ok := s.Inject(8, 1); ok {
		t.Fatal("inject(8,1) spurious")
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	var p RetryPolicy
	if p.Max() != DefaultMaxAttempts {
		t.Fatalf("zero Max() = %d", p.Max())
	}
	if b := p.Backoff(1); b != DefaultBackoffSec {
		t.Fatalf("Backoff(1) = %g", b)
	}
	if b := p.Backoff(3); b != DefaultBackoffSec*DefaultBackoffMult*DefaultBackoffMult {
		t.Fatalf("Backoff(3) = %g", b)
	}
	p = RetryPolicy{MaxAttempts: 1, BackoffSec: 10, BackoffMult: 3}
	if p.Max() != 1 || p.Backoff(2) != 30 {
		t.Fatalf("explicit policy: Max=%d Backoff(2)=%g", p.Max(), p.Backoff(2))
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		s       *Schedule
		hosts   int
		workers int
		wantErr bool
	}{
		{"nil", nil, 1, 1, false},
		{"host out of range", &Schedule{Events: []Event{{Kind: HostDown, Host: 4, AtSec: 1}}}, 4, 8, true},
		{"down the only host", &Schedule{Events: []Event{{Kind: HostDown, Host: 0, AtSec: 1}}}, 1, 4, true},
		{"valid churn", &Schedule{Events: []Event{{Kind: HostDown, Host: 1, AtSec: 1}, {Kind: HostUp, Host: 1, AtSec: 9}}}, 2, 4, false},
		{"worker out of range", &Schedule{Events: []Event{{Kind: WorkerPreempt, Worker: 8, AtSec: 1}}}, 2, 8, true},
		{"negative time", &Schedule{Events: []Event{{Kind: WorkerPreempt, Worker: 0, AtSec: -1}}}, 1, 1, true},
		{"zero attempt", &Schedule{Events: []Event{{Kind: BuildFail, Iter: 3}}}, 1, 1, true},
		{"unknown kind", &Schedule{Events: []Event{{Kind: "meteor", AtSec: 1}}}, 1, 1, true},
		{"negative retry", &Schedule{Retry: RetryPolicy{MaxAttempts: -1}}, 1, 1, true},
		{"injection ok", &Schedule{Events: []Event{{Kind: BootFail, Iter: 0, Attempt: 1}}}, 1, 1, false},
	}
	for _, c := range cases {
		err := c.s.Validate(c.hosts, c.workers)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	src := "down:1@300,up:1@900,preempt:3@120.5,buildfail:7#1,bootfail:9#2,retry:4/20/2"
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 5 || s.Retry.MaxAttempts != 4 || s.Retry.BackoffSec != 20 {
		t.Fatalf("parsed %+v", s)
	}
	if got := s.String(); got != src {
		t.Fatalf("round trip: %q != %q", got, src)
	}
	reparsed, err := Parse(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.String() != src {
		t.Fatal("second round trip diverged")
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	for _, src := range []string{"", "   "} {
		s, err := Parse(src)
		if err != nil || s != nil {
			t.Fatalf("Parse(%q) = %v, %v", src, s, err)
		}
	}
	for _, src := range []string{
		"banana", "down:1", "down:x@3", "down:1@y", "preempt:1",
		"buildfail:x", "buildfail:1#x", "retry:x", "retry:1/2/3/4", "meteor:1@2",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
	// Attempt defaults to 1 when omitted.
	s, err := Parse("buildfail:5")
	if err != nil || s.Events[0].Attempt != 1 {
		t.Fatalf("buildfail default attempt: %+v, %v", s, err)
	}
	// A bare retry policy is a non-nil schedule with no events.
	s, err = Parse("retry:5")
	if err != nil || s == nil || !s.Empty() || s.Retry.MaxAttempts != 5 {
		t.Fatalf("bare retry: %+v, %v", s, err)
	}
}
