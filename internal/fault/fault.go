// Package fault defines deterministic fault schedules for the fleet
// schedulers: a serializable list of timed events in *virtual* time —
// hosts going down and coming back (artifacts lost, workers offline),
// workers being preempted mid-evaluation (spot instances), and
// stage-level transient build/boot failures targeted at specific
// (iteration, attempt) pairs — plus the bounded-attempt retry policy the
// engine applies when an evaluation is lost.
//
// The package is pure data and pure queries: no wall-clock, no
// randomness, no engine imports. A session consuming a schedule remains a
// pure function of (seed, workers, staleness, hosts, schedule) — the same
// schedule always produces the byte-identical report, and the empty
// schedule is exactly today's fault-free behavior.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind names one fault event type.
type Kind string

const (
	// HostDown takes a host offline at AtSec: every artifact in its store
	// partition is lost, its workers stop accepting dispatches, and any
	// evaluation running on it is killed.
	HostDown Kind = "host-down"
	// HostUp brings a downed host back at AtSec (empty disk, idle workers).
	HostUp Kind = "host-up"
	// WorkerPreempt kills whatever evaluation worker Worker is running at
	// AtSec (the spot-instance reclaim); the worker itself survives.
	WorkerPreempt Kind = "preempt"
	// BuildFail injects a transient build-stage failure into iteration
	// Iter's Attempt-th attempt (1-based).
	BuildFail Kind = "build-fail"
	// BootFail injects a transient boot-stage failure into iteration
	// Iter's Attempt-th attempt (1-based).
	BootFail Kind = "boot-fail"
)

// Event is one scheduled fault. Which fields are meaningful depends on
// Kind: host events use Host+AtSec, preemptions Worker+AtSec, and
// stage-failure injections Iter+Attempt (they are positional in the
// iteration sequence, not timed).
type Event struct {
	Kind    Kind    `json:"kind"`
	AtSec   float64 `json:"at_sec,omitempty"`
	Host    int     `json:"host,omitempty"`
	Worker  int     `json:"worker,omitempty"`
	Iter    int     `json:"iter,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
}

// RetryPolicy bounds how the engine retries a faulted evaluation. The
// zero value means the defaults: 3 attempts total, 30s initial backoff,
// doubling per failure.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per iteration (0 = default
	// 3). 1 disables retries: the first fault becomes a recorded crash.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// BackoffSec is the virtual-time backoff after the first failure
	// (0 = default 30).
	BackoffSec float64 `json:"backoff_sec,omitempty"`
	// BackoffMult multiplies the backoff per additional failure
	// (0 = default 2).
	BackoffMult float64 `json:"backoff_mult,omitempty"`
}

// Default retry-policy values (applied when the corresponding field is 0).
const (
	DefaultMaxAttempts = 3
	DefaultBackoffSec  = 30.0
	DefaultBackoffMult = 2.0
)

// Max returns the effective total attempt budget.
func (p RetryPolicy) Max() int {
	if p.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return p.MaxAttempts
}

// Backoff returns the virtual-time delay before the attempt following the
// given failure count (failures ≥ 1): BackoffSec · BackoffMult^(failures−1).
func (p RetryPolicy) Backoff(failures int) float64 {
	b := p.BackoffSec
	if b <= 0 {
		b = DefaultBackoffSec
	}
	m := p.BackoffMult
	if m <= 0 {
		m = DefaultBackoffMult
	}
	for i := 1; i < failures; i++ {
		b *= m
	}
	return b
}

// Schedule is a deterministic fault plan: the events, in any order, plus
// the retry policy. The zero value (and nil) is the empty schedule.
type Schedule struct {
	Events []Event     `json:"events,omitempty"`
	Retry  RetryPolicy `json:"retry,omitempty"`

	once  sync.Once
	order []int // event indices sorted by (AtSec, original index)
}

// Empty reports whether the schedule injects nothing (nil-safe). An empty
// schedule leaves a session byte-identical to a fault-free one.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// sorted returns the event indices in stable (AtSec, original index)
// order, computed once.
func (s *Schedule) sorted() []int {
	s.once.Do(func() {
		s.order = make([]int, len(s.Events))
		for i := range s.order {
			s.order[i] = i
		}
		sort.SliceStable(s.order, func(a, b int) bool {
			return s.Events[s.order[a]].AtSec < s.Events[s.order[b]].AtSec
		})
	})
	return s.order
}

// Timeline returns the schedule's events in stable virtual-time order —
// the order the engine's fault cursor applies them.
func (s *Schedule) Timeline() []Event {
	if s.Empty() {
		return nil
	}
	out := make([]Event, 0, len(s.Events))
	for _, i := range s.sorted() {
		out = append(out, s.Events[i])
	}
	return out
}

// HostUpAt reports whether the host is up at virtual time t: the latest
// host event at or before t wins; a host with no prior event is up.
func (s *Schedule) HostUpAt(host int, t float64) bool {
	if s.Empty() {
		return true
	}
	up := true
	for _, i := range s.sorted() {
		ev := s.Events[i]
		if ev.AtSec > t {
			break
		}
		if ev.Host != host {
			continue
		}
		switch ev.Kind {
		case HostDown:
			up = false
		case HostUp:
			up = true
		}
	}
	return up
}

// NextUpAt returns the earliest virtual time ≥ t at which the host is up
// (t itself when it already is), and false when the host stays down for
// the rest of the schedule.
func (s *Schedule) NextUpAt(host int, t float64) (float64, bool) {
	if s.HostUpAt(host, t) {
		return t, true
	}
	for _, i := range s.sorted() {
		ev := s.Events[i]
		if ev.AtSec <= t || ev.Host != host {
			continue
		}
		switch ev.Kind {
		case HostUp:
			return ev.AtSec, true
		case HostDown:
			// Still down; keep scanning.
		}
	}
	return 0, false
}

// KillBetween returns the earliest fault that kills an evaluation running
// on (worker, host) over the open interval (start, end): a preemption of
// that worker or a down event of that host. The interval is open on both
// ends — an evaluation starting exactly at a fault starts after it (the
// dispatcher already saw the event), and one ending exactly at a fault
// completed first.
func (s *Schedule) KillBetween(worker, host int, start, end float64) (Kind, float64, bool) {
	if s.Empty() {
		return "", 0, false
	}
	for _, i := range s.sorted() {
		ev := s.Events[i]
		if ev.AtSec >= end {
			break
		}
		if ev.AtSec <= start {
			continue
		}
		if (ev.Kind == WorkerPreempt && ev.Worker == worker) ||
			(ev.Kind == HostDown && ev.Host == host) {
			return ev.Kind, ev.AtSec, true
		}
	}
	return "", 0, false
}

// Inject returns the stage-failure kind scheduled for the iteration's
// attempt (1-based), if any.
func (s *Schedule) Inject(iter, attempt int) (Kind, bool) {
	if s.Empty() {
		return "", false
	}
	for _, ev := range s.Events {
		if (ev.Kind == BuildFail || ev.Kind == BootFail) && ev.Iter == iter && ev.Attempt == attempt {
			return ev.Kind, true
		}
	}
	return "", false
}

// Downtime returns the total virtual time the host spends down within
// [from, to].
func (s *Schedule) Downtime(host int, from, to float64) float64 {
	if s.Empty() || to <= from {
		return 0
	}
	total := 0.0
	up := true
	downSince := from
	for _, i := range s.sorted() {
		ev := s.Events[i]
		if ev.AtSec > to {
			break
		}
		if ev.Host != host || (ev.Kind != HostDown && ev.Kind != HostUp) {
			continue
		}
		at := ev.AtSec
		if at < from {
			at = from
		}
		switch ev.Kind {
		case HostDown:
			if up {
				up, downSince = false, at
			}
		case HostUp:
			if !up {
				up = true
				total += at - downSince
			}
		}
	}
	if !up {
		total += to - downSince
	}
	return total
}

// Validate rejects schedules that reference hosts, workers, or attempts a
// session of the given shape cannot have (nil-safe: the empty schedule is
// always valid).
func (s *Schedule) Validate(hosts, workers int) error {
	if s == nil {
		return nil
	}
	for i, ev := range s.Events {
		if ev.AtSec < 0 {
			return fmt.Errorf("fault: event %d (%s) at negative time %g", i, ev.Kind, ev.AtSec)
		}
		switch ev.Kind {
		case HostDown, HostUp:
			if ev.Host < 0 || ev.Host >= hosts {
				return fmt.Errorf("fault: event %d (%s) targets host %d of a %d-host fleet", i, ev.Kind, ev.Host, hosts)
			}
			if ev.Kind == HostDown && hosts < 2 {
				return fmt.Errorf("fault: event %d downs the only host; host churn needs Hosts ≥ 2", i)
			}
		case WorkerPreempt:
			if ev.Worker < 0 || ev.Worker >= workers {
				return fmt.Errorf("fault: event %d preempts worker %d of %d", i, ev.Worker, workers)
			}
		case BuildFail, BootFail:
			if ev.Iter < 0 {
				return fmt.Errorf("fault: event %d (%s) targets negative iteration %d", i, ev.Kind, ev.Iter)
			}
			if ev.Attempt < 1 {
				return fmt.Errorf("fault: event %d (%s) targets attempt %d (attempts are 1-based)", i, ev.Kind, ev.Attempt)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	p := s.Retry
	if p.MaxAttempts < 0 {
		return fmt.Errorf("fault: negative retry attempt budget %d", p.MaxAttempts)
	}
	if p.BackoffSec < 0 {
		return fmt.Errorf("fault: negative retry backoff %g", p.BackoffSec)
	}
	if p.BackoffMult < 0 {
		return fmt.Errorf("fault: negative retry backoff multiplier %g", p.BackoffMult)
	}
	return nil
}

// Parse decodes the schedule DSL the CLIs speak: a comma-separated event
// list —
//
//	down:H@T     host H down at virtual second T
//	up:H@T       host H back up at T
//	preempt:W@T  worker W preempted at T
//	buildfail:I#A  build failure on iteration I, attempt A (A defaults 1)
//	bootfail:I#A   boot failure on iteration I, attempt A
//	retry:M/B/X  retry policy: M attempts, B s backoff, ×X per failure
//	             (each segment after M optional)
//
// e.g. "down:1@300,up:1@900,preempt:3@120,buildfail:7,retry:4/20/2".
// The empty string parses to the empty schedule (nil).
func Parse(src string) (*Schedule, error) {
	src = strings.TrimSpace(src)
	if src == "" {
		return nil, nil
	}
	s := &Schedule{}
	for _, tok := range strings.Split(src, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		op, arg, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not op:arg", tok)
		}
		switch op {
		case "down", "up":
			host, at, err := parseAt(arg)
			if err != nil {
				return nil, fmt.Errorf("fault: %q: %w", tok, err)
			}
			kind := HostDown
			if op == "up" {
				kind = HostUp
			}
			s.Events = append(s.Events, Event{Kind: kind, Host: host, AtSec: at})
		case "preempt":
			worker, at, err := parseAt(arg)
			if err != nil {
				return nil, fmt.Errorf("fault: %q: %w", tok, err)
			}
			s.Events = append(s.Events, Event{Kind: WorkerPreempt, Worker: worker, AtSec: at})
		case "buildfail", "bootfail":
			iter, attempt, err := parseIterAttempt(arg)
			if err != nil {
				return nil, fmt.Errorf("fault: %q: %w", tok, err)
			}
			kind := BuildFail
			if op == "bootfail" {
				kind = BootFail
			}
			s.Events = append(s.Events, Event{Kind: kind, Iter: iter, Attempt: attempt})
		case "retry":
			p, err := parseRetry(arg)
			if err != nil {
				return nil, fmt.Errorf("fault: %q: %w", tok, err)
			}
			s.Retry = p
		default:
			return nil, fmt.Errorf("fault: unknown event %q (down, up, preempt, buildfail, bootfail, retry)", op)
		}
	}
	if len(s.Events) == 0 && s.Retry == (RetryPolicy{}) {
		return nil, nil
	}
	return s, nil
}

// String renders the schedule back into the DSL Parse accepts (nil-safe;
// the empty schedule renders as "").
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	var toks []string
	for _, ev := range s.Events {
		switch ev.Kind {
		case HostDown:
			toks = append(toks, fmt.Sprintf("down:%d@%s", ev.Host, fmtSec(ev.AtSec)))
		case HostUp:
			toks = append(toks, fmt.Sprintf("up:%d@%s", ev.Host, fmtSec(ev.AtSec)))
		case WorkerPreempt:
			toks = append(toks, fmt.Sprintf("preempt:%d@%s", ev.Worker, fmtSec(ev.AtSec)))
		case BuildFail:
			toks = append(toks, fmt.Sprintf("buildfail:%d#%d", ev.Iter, ev.Attempt))
		case BootFail:
			toks = append(toks, fmt.Sprintf("bootfail:%d#%d", ev.Iter, ev.Attempt))
		}
	}
	if p := s.Retry; p != (RetryPolicy{}) {
		toks = append(toks, fmt.Sprintf("retry:%d/%s/%s", p.MaxAttempts, fmtSec(p.BackoffSec), fmtSec(p.BackoffMult)))
	}
	return strings.Join(toks, ",")
}

// fmtSec renders a float without a trailing ".0" noise for whole values.
func fmtSec(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// parseAt decodes "N@T".
func parseAt(arg string) (int, float64, error) {
	idx, at, ok := strings.Cut(arg, "@")
	if !ok {
		return 0, 0, fmt.Errorf("want index@seconds")
	}
	n, err := strconv.Atoi(strings.TrimSpace(idx))
	if err != nil {
		return 0, 0, fmt.Errorf("bad index %q", idx)
	}
	t, err := strconv.ParseFloat(strings.TrimSpace(at), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad time %q", at)
	}
	return n, t, nil
}

// parseIterAttempt decodes "I" or "I#A" (attempt defaults to 1).
func parseIterAttempt(arg string) (int, int, error) {
	iter, att, hasAtt := strings.Cut(arg, "#")
	i, err := strconv.Atoi(strings.TrimSpace(iter))
	if err != nil {
		return 0, 0, fmt.Errorf("bad iteration %q", iter)
	}
	a := 1
	if hasAtt {
		a, err = strconv.Atoi(strings.TrimSpace(att))
		if err != nil {
			return 0, 0, fmt.Errorf("bad attempt %q", att)
		}
	}
	return i, a, nil
}

// parseRetry decodes "M", "M/B", or "M/B/X".
func parseRetry(arg string) (RetryPolicy, error) {
	var p RetryPolicy
	parts := strings.Split(arg, "/")
	if len(parts) > 3 {
		return p, fmt.Errorf("want attempts[/backoff[/mult]]")
	}
	m, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return p, fmt.Errorf("bad attempt budget %q", parts[0])
	}
	p.MaxAttempts = m
	if len(parts) > 1 {
		if p.BackoffSec, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
			return p, fmt.Errorf("bad backoff %q", parts[1])
		}
	}
	if len(parts) > 2 {
		if p.BackoffMult, err = strconv.ParseFloat(strings.TrimSpace(parts[2]), 64); err != nil {
			return p, fmt.Errorf("bad backoff multiplier %q", parts[2])
		}
	}
	return p, nil
}
