package simos

import "wayfinder/internal/configspace"

// NewUnikraft constructs the Unikraft unikernel profile of §4.4/Fig 9: a
// compact space of 23 OS parameters plus 10 Nginx application parameters
// (≈3.7×10¹³ permutations). Compared to Linux the achievable headroom is
// much larger — the paper attributes this to the unikernel's low-latency
// user/kernel transitions amplifying the benefit of the right
// configuration — so the hidden surface has magnitudes several times
// Linux's, with strong interactions between application concurrency and
// the network stack.
func NewUnikraft(seed uint64) *Model {
	m := &Model{
		Name:              "unikraft",
		Space:             configspace.NewSpace("unikraft-nginx"),
		MemBaseMB:         18,
		MemContribMB:      map[string]float64{},
		BuildSeconds:      35, // unikernels build fast
		BootSeconds:       1,
		CacheFetchSeconds: 2, // tiny images copy fast too
		TransferSeconds:   3,
		Seed:              seed ^ 0x1717,
	}
	add := m.Space.MustAdd

	// --- 23 Unikraft OS parameters (compile-time: unikernels are
	// configured at build time) ---
	add(&configspace.Param{Name: "CONFIG_LIBUKALLOC_ALLOCATOR", Type: configspace.Enum,
		Class: configspace.CompileTime, Values: []string{"buddy", "tlsf", "region"},
		Default: configspace.EnumValue("buddy")})
	add(&configspace.Param{Name: "CONFIG_UKALLOC_HEAP_MB", Type: configspace.Int,
		Class: configspace.CompileTime, Min: 16, Max: 1024, Default: configspace.IntValue(64)})
	add(&configspace.Param{Name: "CONFIG_LWIP_POOLS", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "CONFIG_LWIP_TCP_SND_BUF", Type: configspace.Int,
		Class: configspace.CompileTime, Min: 2048, Max: 1048576, Default: configspace.IntValue(8192)})
	add(&configspace.Param{Name: "CONFIG_LWIP_TCP_WND", Type: configspace.Int,
		Class: configspace.CompileTime, Min: 2048, Max: 1048576, Default: configspace.IntValue(16384)})
	add(&configspace.Param{Name: "CONFIG_LWIP_NUM_TCPCON", Type: configspace.Int,
		Class: configspace.CompileTime, Min: 16, Max: 4096, Default: configspace.IntValue(64)})
	add(&configspace.Param{Name: "CONFIG_LWIP_STATS", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(true)})
	add(&configspace.Param{Name: "CONFIG_LWIP_DEBUG", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "CONFIG_LIBUKNETDEV_DISPATCHERTHREADS", Type: configspace.Int,
		Class: configspace.CompileTime, Min: 1, Max: 16, Default: configspace.IntValue(1)})
	add(&configspace.Param{Name: "CONFIG_LIBUKNETDEV_STATS", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "CONFIG_LIBUKSCHED_PREEMPTIVE", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "CONFIG_LIBUKDEBUG_PRINTK", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(true)})
	add(&configspace.Param{Name: "CONFIG_LIBUKDEBUG_ASSERTIONS", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(true)})
	add(&configspace.Param{Name: "CONFIG_LIBUKALLOC_IFSTATS", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "CONFIG_OPTIMIZE_LTO", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "CONFIG_OPTIMIZE_O3", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "CONFIG_HZ", Type: configspace.Int,
		Class: configspace.CompileTime, Min: 10, Max: 1000, Default: configspace.IntValue(100)})
	add(&configspace.Param{Name: "CONFIG_LIBUKBOOT_INITRD", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "CONFIG_LIBUKLOCK_SPIN", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "CONFIG_LIBVFSCORE_PIPE_SIZE_ORDER", Type: configspace.Int,
		Class: configspace.CompileTime, Min: 10, Max: 20, Default: configspace.IntValue(12)})
	add(&configspace.Param{Name: "CONFIG_LIBUK9P", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(true)})
	add(&configspace.Param{Name: "CONFIG_PAGING_5LEVEL", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "CONFIG_LIBUKSIGNAL", Type: configspace.Bool,
		Class: configspace.CompileTime, Default: configspace.BoolValue(true)})

	// --- 10 Nginx application parameters ---
	add(&configspace.Param{Name: "nginx.worker_processes", Type: configspace.Int,
		Class: configspace.Runtime, Min: 1, Max: 16, Default: configspace.IntValue(1)})
	add(&configspace.Param{Name: "nginx.worker_connections", Type: configspace.Int,
		Class: configspace.Runtime, Min: 64, Max: 65536, Default: configspace.IntValue(512)})
	add(&configspace.Param{Name: "nginx.keepalive_requests", Type: configspace.Int,
		Class: configspace.Runtime, Min: 10, Max: 100000, Default: configspace.IntValue(100)})
	add(&configspace.Param{Name: "nginx.sendfile", Type: configspace.Bool,
		Class: configspace.Runtime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "nginx.tcp_nopush", Type: configspace.Bool,
		Class: configspace.Runtime, Default: configspace.BoolValue(false)})
	add(&configspace.Param{Name: "nginx.access_log", Type: configspace.Bool,
		Class: configspace.Runtime, Default: configspace.BoolValue(true)})
	add(&configspace.Param{Name: "nginx.gzip", Type: configspace.Bool,
		Class: configspace.Runtime, Default: configspace.BoolValue(true)})
	add(&configspace.Param{Name: "nginx.open_file_cache", Type: configspace.Int,
		Class: configspace.Runtime, Min: 0, Max: 10000, Default: configspace.IntValue(0)})
	add(&configspace.Param{Name: "nginx.worker_rlimit_nofile", Type: configspace.Int,
		Class: configspace.Runtime, Min: 512, Max: 100000, Default: configspace.IntValue(1024)})
	add(&configspace.Param{Name: "nginx.multi_accept", Type: configspace.Bool,
		Class: configspace.Runtime, Default: configspace.BoolValue(false)})

	// Hidden surface: roughly 5× total headroom, concentrated in a few
	// coordinated parameters (concurrency × buffers), giving the distinct
	// explore → exploit → explore phases of Fig 9.
	m.Effects = append(m.Effects,
		Effect{Param: "CONFIG_LIBUKALLOC_ALLOCATOR", Class: ClassCompile, Magnitude: 0.10,
			EnumEffects: map[string]float64{"buddy": 0, "tlsf": 1, "region": 0.3}},
		Effect{"CONFIG_UKALLOC_HEAP_MB", ClassMM, 0.05, Saturating(64, 16, 1024, 128), nil},
		Effect{"CONFIG_LWIP_POOLS", ClassNet, 0.08, OnGain(), nil},
		Effect{"CONFIG_LWIP_TCP_SND_BUF", ClassNet, 0.13, Saturating(8192, 2048, 1048576, 65536), nil},
		Effect{"CONFIG_LWIP_TCP_WND", ClassNet, 0.13, Saturating(16384, 2048, 1048576, 131072), nil},
		Effect{"CONFIG_LWIP_NUM_TCPCON", ClassNet, 0.08, Saturating(64, 16, 4096, 512), nil},
		Effect{"CONFIG_LWIP_STATS", ClassDebug, 0.03, OffGain(), nil},
		Effect{"CONFIG_LWIP_DEBUG", ClassDebug, 0.15, OnPenalty(), nil},
		Effect{"CONFIG_LIBUKNETDEV_DISPATCHERTHREADS", ClassSched, 0.08, Unimodal(1, 4, 0.4), nil},
		Effect{"CONFIG_LIBUKNETDEV_STATS", ClassDebug, 0.02, OnPenalty(), nil},
		Effect{"CONFIG_LIBUKSCHED_PREEMPTIVE", ClassSched, 0.04, OnGain(), nil},
		Effect{"CONFIG_LIBUKDEBUG_PRINTK", ClassDebug, 0.05, OffGain(), nil},
		Effect{"CONFIG_LIBUKDEBUG_ASSERTIONS", ClassDebug, 0.04, OffGain(), nil},
		Effect{"CONFIG_LIBUKALLOC_IFSTATS", ClassDebug, 0.025, OnPenalty(), nil},
		Effect{"CONFIG_OPTIMIZE_LTO", ClassCompile, 0.06, OnGain(), nil},
		Effect{"CONFIG_OPTIMIZE_O3", ClassCompile, 0.04, OnGain(), nil},
		Effect{"CONFIG_HZ", ClassSched, 0.02, Unimodal(100, 100, 0.5), nil},
		Effect{"CONFIG_LIBUKLOCK_SPIN", ClassSched, 0.02, OnGain(), nil},
		Effect{"nginx.worker_processes", ClassApp, 0.20, Saturating(1, 1, 16, 4), nil},
		Effect{"nginx.worker_connections", ClassApp, 0.10, Saturating(512, 64, 65536, 4096), nil},
		Effect{"nginx.keepalive_requests", ClassApp, 0.13, Saturating(100, 10, 100000, 10000), nil},
		Effect{"nginx.sendfile", ClassApp, 0.05, OnGain(), nil},
		Effect{"nginx.tcp_nopush", ClassApp, 0.025, OnGain(), nil},
		Effect{"nginx.access_log", ClassApp, 0.08, OffGain(), nil},
		Effect{"nginx.gzip", ClassApp, 0.025, OffGain(), nil},
		Effect{"nginx.open_file_cache", ClassApp, 0.04, Saturating(0, 0, 10000, 1000), nil},
		Effect{"nginx.multi_accept", ClassApp, 0.02, OnGain(), nil},
	)
	m.Interactions = append(m.Interactions,
		Interaction{A: "nginx.worker_processes", B: "nginx.worker_connections",
			Class: ClassApp, Magnitude: 0.10, Shape: BothHigh(4, 2048)},
		Interaction{A: "CONFIG_LWIP_TCP_SND_BUF", B: "CONFIG_LWIP_TCP_WND",
			Class: ClassNet, Magnitude: 0.08, Shape: BothHigh(65536, 131072)},
		Interaction{A: "nginx.worker_processes", B: "CONFIG_LIBUKNETDEV_DISPATCHERTHREADS",
			Class: ClassSched, Magnitude: 0.06, Shape: BothHigh(4, 2)},
	)

	intBad := func(f func(int64) bool) func(configspace.Value) bool {
		return func(v configspace.Value) bool { return f(v.I) }
	}
	m.CrashRules = append(m.CrashRules,
		CrashRule{"CONFIG_UKALLOC_HEAP_MB", StageBoot, 0.85, "heap too small for image",
			intBad(func(v int64) bool { return v < 24 })},
		CrashRule{"CONFIG_LIBUKNETDEV_DISPATCHERTHREADS", StageRun, 0.60, "dispatcher oversubscription deadlock",
			intBad(func(v int64) bool { return v > 12 })},
		CrashRule{"nginx.worker_rlimit_nofile", StageRun, 0.70, "fd limit below connection load",
			intBad(func(v int64) bool { return v < 768 })},
	)
	m.ComboRules = append(m.ComboRules,
		ComboCrashRule{Stage: StageRun, Prob: 0.75,
			Reason: "connection table too small for worker concurrency",
			Bad: func(c *configspace.Config) bool {
				return c.GetInt("nginx.worker_processes", 1) >= 8 &&
					c.GetInt("CONFIG_LWIP_NUM_TCPCON", 64) < 64
			}},
		ComboCrashRule{Stage: StageBoot, Prob: 0.80,
			Reason: "region allocator cannot satisfy large TCP pools",
			Bad: func(c *configspace.Config) bool {
				return c.GetString("CONFIG_LIBUKALLOC_ALLOCATOR", "buddy") == "region" &&
					c.GetInt("CONFIG_LWIP_TCP_SND_BUF", 8192) > 262144
			}},
	)
	for _, p := range m.Space.Params() {
		if p.Class == configspace.CompileTime {
			m.MemContribMB[p.Name] = 0.2
		}
	}
	m.finalize()
	return m
}
