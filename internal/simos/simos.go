// Package simos simulates the operating systems Wayfinder specializes.
//
// The real evaluation substrate (Linux/Unikraft kernels built and booted
// under QEMU/KVM on a Xeon testbed) is not available offline, so simos
// provides the substitution described in DESIGN.md: each OS profile owns a
// *hidden* ground-truth model — a performance response surface over its
// configuration parameters (sparse high-impact parameters with saturating,
// unimodal, step, and penalty shapes plus pairwise interactions), a crash
// model that makes roughly a third of random configurations fail (§2.2),
// and a memory-footprint model over compile-time options.
//
// Search algorithms never see the model; they observe only
// (configuration) → (metric value, crashed?), exactly as Wayfinder's
// pipeline observes a real kernel. Every behaviour the paper measures —
// who converges faster, crash-rate learning, transfer between related
// applications — emerges from the interaction of the search algorithm with
// this surface, not from anything hard-coded about the searchers.
package simos

import (
	"math"

	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
)

// EffectClass buckets parameters by the subsystem they influence. An
// application's sensitivity vector over classes (apps package) scales each
// parameter's effect, which is what makes Nginx/Redis/SQLite respond to
// similar parameters while NPB responds to different ones (Fig 5).
type EffectClass int

const (
	// ClassNet covers network-stack parameters.
	ClassNet EffectClass = iota
	// ClassStorage covers block/FS/writeback parameters.
	ClassStorage
	// ClassMM covers memory-management parameters.
	ClassMM
	// ClassSched covers scheduler parameters.
	ClassSched
	// ClassDebug covers logging/tracing/debug overhead parameters.
	ClassDebug
	// ClassCompile covers compile-time kernel structure choices.
	ClassCompile
	// ClassApp covers application-level parameters (Unikraft jobs tune
	// these alongside OS options — Fig 9).
	ClassApp
	numClasses
)

// String names the class.
func (c EffectClass) String() string {
	switch c {
	case ClassNet:
		return "net"
	case ClassStorage:
		return "storage"
	case ClassMM:
		return "mm"
	case ClassSched:
		return "sched"
	case ClassDebug:
		return "debug"
	case ClassCompile:
		return "compile"
	case ClassApp:
		return "app"
	default:
		return "unknown"
	}
}

// App describes an application under test: its benchmark metric and its
// sensitivity to each effect class. Constructors for the paper's four
// applications live in the apps package.
type App struct {
	// Name identifies the application ("nginx", "redis", ...).
	Name string
	// BenchTool names the benchmark driver ("wrk", "redis-benchmark", ...).
	BenchTool string
	// Unit is the metric unit ("req/s", "us/op", "Mop/s").
	Unit string
	// Maximize reports whether larger metric values are better.
	Maximize bool
	// Base is the metric value under the default configuration.
	Base float64
	// NoiseStd is the relative run-to-run noise (lognormal sigma).
	NoiseStd float64
	// Sensitivity scales class effects for this application.
	Sensitivity [numClasses]float64
	// Cores is the number of cores the app uses (1 for Redis/SQLite, 16
	// for Nginx/NPB in the paper's setup).
	Cores int
	// BenchSeconds is the virtual duration of one benchmark run.
	BenchSeconds float64
}

// Sens returns the application's sensitivity to a class.
func (a *App) Sens(c EffectClass) float64 { return a.Sensitivity[c] }

// Shape maps a parameter's raw value to a signed effect in [-1, 1] with 0
// at the default value: positive values improve performance (before class
// sensitivity and magnitude scaling), negative degrade it.
type Shape func(v float64) float64

// Effect attaches a response shape to one parameter.
type Effect struct {
	// Param is the parameter name.
	Param string
	// Class selects the sensitivity bucket.
	Class EffectClass
	// Magnitude is the maximum fractional performance swing at full
	// sensitivity (0.05 = ±5%).
	Magnitude float64
	// Shape is the response curve.
	Shape Shape
	// EnumEffects overrides Shape for Enum parameters: effect per value.
	EnumEffects map[string]float64
}

// Interaction is a pairwise effect between two parameters.
type Interaction struct {
	A, B      string
	Class     EffectClass
	Magnitude float64
	// Shape maps the two raw values to a signed joint effect in [-1, 1].
	Shape func(va, vb float64) float64
}

// Stage is where in the pipeline a configuration fails.
type Stage int

const (
	// StageOK means no failure.
	StageOK Stage = iota
	// StageBuild is a compile failure.
	StageBuild
	// StageBoot is a kernel that does not boot.
	StageBoot
	// StageRun is a runtime crash or benchmark failure.
	StageRun
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageBuild:
		return "build"
	case StageBoot:
		return "boot"
	case StageRun:
		return "run"
	default:
		return "ok"
	}
}

// CrashRule marks a dangerous region of one parameter's domain.
type CrashRule struct {
	// Param is the parameter name.
	Param string
	// Stage is where the failure manifests.
	Stage Stage
	// Prob is the failure probability when the rule fires.
	Prob float64
	// Reason documents the failure mode.
	Reason string
	// Bad reports whether a value is in the dangerous region.
	Bad func(v configspace.Value) bool
}

// ComboCrashRule fires on a combination of parameter values.
type ComboCrashRule struct {
	Stage  Stage
	Prob   float64
	Reason string
	Bad    func(c *configspace.Config) bool
}

// RuntimeSpec describes one runtime pseudo-file (sysctl) as the *kernel*
// knows it: the probing heuristic of §3.4 discovers an approximation of
// this through the vm package.
type RuntimeSpec struct {
	// Path is the pseudo-file path (e.g. "/proc/sys/net/core/somaxconn").
	Path string
	// Name is the dotted sysctl name.
	Name string
	// Default is the value after boot.
	Default int64
	// HardMin and HardMax bound what writes the kernel accepts.
	HardMin, HardMax int64
	// Writable reports whether the file accepts writes at all.
	Writable bool
}

// Model is one OS profile's hidden ground truth plus its visible
// configuration space.
type Model struct {
	// Name identifies the profile ("linux", "unikraft", "linux-riscv").
	Name string
	// Space is the visible configuration space handed to the search.
	Space *configspace.Space
	// Effects is the hidden response surface.
	Effects []Effect
	// Interactions are the hidden pairwise effects.
	Interactions []Interaction
	// CrashRules are the hidden single-parameter failure regions.
	CrashRules []CrashRule
	// ComboRules are the hidden multi-parameter failure regions.
	ComboRules []ComboCrashRule
	// MemBaseMB is the boot memory footprint with all contributions off.
	MemBaseMB float64
	// MemContribMB is the per-parameter footprint when enabled
	// (bool y=full, tristate m=40%).
	MemContribMB map[string]float64
	// RuntimeSpecs lists the kernel's runtime pseudo-files (for probing).
	RuntimeSpecs []RuntimeSpec
	// BuildSeconds is the virtual cost of a full image build.
	BuildSeconds float64
	// BootSeconds is the virtual cost of booting the image.
	BootSeconds float64
	// CacheFetchSeconds is the virtual cost of materializing an image from
	// the host's shared artifact store onto a worker instead of rebuilding
	// it (a local copy off the host's image cache).
	CacheFetchSeconds float64
	// TransferSeconds is the additional virtual cost of pulling an
	// artifact from another host's store across the fleet network.
	TransferSeconds float64
	// Seed decorrelates the model's deterministic crash draws.
	Seed uint64

	effectIdx map[string]int
}

// finalize indexes effects by parameter name. Profiles call it after
// construction.
func (m *Model) finalize() {
	m.effectIdx = make(map[string]int, len(m.Effects))
	for i, e := range m.Effects {
		m.effectIdx[e.Param] = i
	}
}

// rawValue extracts a float from a config value for shape evaluation.
func rawValue(p *configspace.Param, v configspace.Value) float64 {
	if p.Type == configspace.Enum {
		return 0 // enums use EnumEffects
	}
	return float64(v.I)
}

// PerfMultiplier evaluates the hidden response surface for an application:
// the product over effects of (1 + sens·magnitude·shape(v)), times
// interaction terms. The default configuration maps to exactly 1.
func (m *Model) PerfMultiplier(c *configspace.Config, app *App) float64 {
	mult := 1.0
	for _, e := range m.Effects {
		sens := app.Sens(e.Class)
		if sens == 0 { //wfvet:ignore floateq 0 is the app's declared-insensitive sentinel, never a computed value
			continue
		}
		p, idx := m.Space.Lookup(e.Param)
		if p == nil {
			continue
		}
		var f float64
		if p.Type == configspace.Enum {
			f = e.EnumEffects[c.Value(idx).S]
		} else {
			f = e.Shape(rawValue(p, c.Value(idx)))
		}
		contrib := 1 + sens*e.Magnitude*f
		if contrib < 0.05 {
			contrib = 0.05
		}
		mult *= contrib
	}
	for _, in := range m.Interactions {
		sens := app.Sens(in.Class)
		if sens == 0 { //wfvet:ignore floateq 0 is the app's declared-insensitive sentinel, never a computed value
			continue
		}
		pa, ia := m.Space.Lookup(in.A)
		pb, ib := m.Space.Lookup(in.B)
		if pa == nil || pb == nil {
			continue
		}
		f := in.Shape(rawValue(pa, c.Value(ia)), rawValue(pb, c.Value(ib)))
		contrib := 1 + sens*in.Magnitude*f
		if contrib < 0.05 {
			contrib = 0.05
		}
		mult *= contrib
	}
	return mult
}

// Performance returns the application metric for a configuration, with
// run-to-run noise drawn from noiseRng. For Maximize metrics it is
// base·multiplier; for minimize metrics (latency) base/multiplier, so a
// better configuration always moves the metric in the good direction.
func (m *Model) Performance(c *configspace.Config, app *App, noiseRng *rng.RNG) float64 {
	mult := m.PerfMultiplier(c, app)
	noise := math.Exp(noiseRng.Normal(0, app.NoiseStd))
	if app.Maximize {
		return app.Base * mult * noise
	}
	return app.Base / mult * noise
}

// MemoryMB returns the boot memory footprint of the configuration.
func (m *Model) MemoryMB(c *configspace.Config, noiseRng *rng.RNG) float64 {
	total := m.MemBaseMB
	for name, contrib := range m.MemContribMB {
		p, idx := m.Space.Lookup(name)
		if p == nil {
			continue
		}
		v := c.Value(idx)
		switch p.Type {
		case configspace.Bool:
			if v.I != 0 {
				total += contrib
			}
		case configspace.Tristate:
			switch configspace.TristateValue(v.I) {
			case configspace.TriYes:
				total += contrib
			case configspace.TriModule:
				total += contrib * 0.4
			}
		case configspace.Int, configspace.Hex:
			// Numeric contributions scale with log2 of the value relative
			// to the default (e.g. log buffer sizes).
			if v.I > 0 && p.Default.I > 0 {
				total += contrib * math.Log2(float64(v.I)/float64(p.Default.I))
			}
		}
	}
	if total < 8 {
		total = 8
	}
	return total * math.Exp(noiseRng.Normal(0, 0.002))
}

// CrashOutcome evaluates the hidden crash model: it returns the earliest
// failing stage and the reason, or StageOK. The draw is deterministic per
// (model, configuration) — a configuration that crashes, crashes again —
// which is what makes crash avoidance learnable (§3.2).
func (m *Model) CrashOutcome(c *configspace.Config) (Stage, string) {
	draw := rng.New(c.Hash() ^ m.Seed ^ 0x9e3779b97f4a7c15)
	worst := StageOK
	reason := ""
	consider := func(st Stage, p float64, why string) {
		if p <= 0 {
			return
		}
		if draw.Float64() < p {
			if worst == StageOK || st < worst {
				worst = st
				reason = why
			}
		}
	}
	for _, r := range m.CrashRules {
		p, idx := m.Space.Lookup(r.Param)
		if p == nil {
			continue
		}
		if r.Bad(c.Value(idx)) {
			consider(r.Stage, r.Prob, r.Reason)
		}
	}
	for _, r := range m.ComboRules {
		if r.Bad(c) {
			consider(r.Stage, r.Prob, r.Reason)
		}
	}
	return worst, reason
}

// CrashProbability returns the analytic failure probability of a
// configuration — used by tests and the crash-rate calibration, never by
// searchers.
func (m *Model) CrashProbability(c *configspace.Config) float64 {
	ok := 1.0
	for _, r := range m.CrashRules {
		p, idx := m.Space.Lookup(r.Param)
		if p == nil {
			continue
		}
		if r.Bad(c.Value(idx)) {
			ok *= 1 - r.Prob
		}
	}
	for _, r := range m.ComboRules {
		if r.Bad(c) {
			ok *= 1 - r.Prob
		}
	}
	return 1 - ok
}

// ---- Shape constructors ----

// Saturating returns a shape that grows with v and saturates at scale
// vstar, normalized so the default maps to 0 and the domain maps into
// [-1, 1]. Models "bigger backlog/buffer helps, with diminishing returns".
func Saturating(def, lo, hi, vstar float64) Shape {
	g := func(v float64) float64 { return 1 - math.Exp(-v/vstar) }
	gd := g(def)
	span := math.Max(math.Abs(g(hi)-gd), math.Abs(g(lo)-gd))
	if span == 0 { //wfvet:ignore floateq guards the normalization; an exactly-zero span means a degenerate domain
		span = 1
	}
	return func(v float64) float64 { return (g(v) - gd) / span }
}

// Unimodal returns a log-space bell curve peaking at peak with width w
// decades, normalized so the default maps to 0. Models "sweet spot" buffer
// sizes.
func Unimodal(def, peak, w float64) Shape {
	g := func(v float64) float64 {
		if v <= 0 {
			return 0
		}
		d := math.Log10(v/peak) / w
		return math.Exp(-d * d / 2)
	}
	gd := g(def)
	span := math.Max(gd, 1-gd)
	if span == 0 { //wfvet:ignore floateq guards the normalization; an exactly-zero span means a degenerate domain
		span = 1
	}
	return func(v float64) float64 { return (g(v) - gd) / span }
}

// StepLow returns a shape that is 0 at or above threshold and −1 below it.
// Models "values below X break the workload's performance".
func StepLow(threshold float64) Shape {
	return func(v float64) float64 {
		if v < threshold {
			return -1
		}
		return 0
	}
}

// LinearPenalty returns a shape that improves (up to gainFrac) as v drops
// below the default and degrades linearly (to −1) as it rises above.
// Models verbosity levels: quieter than default helps a little, louder
// hurts a lot.
func LinearPenalty(def, lo, hi, gainFrac float64) Shape {
	return func(v float64) float64 {
		if v <= def {
			if def == lo { //wfvet:ignore floateq guards the division; equal declared bounds mean a degenerate domain
				return 0
			}
			return gainFrac * (def - v) / (def - lo)
		}
		if hi == def { //wfvet:ignore floateq guards the division; equal declared bounds mean a degenerate domain
			return 0
		}
		return -(v - def) / (hi - def)
	}
}

// PowerPenalty returns a shape of −(v/hi)^exp for v>0 and 0 at v=0.
// Models printk_delay: any non-zero delay hurts, badly.
func PowerPenalty(hi, exp float64) Shape {
	return func(v float64) float64 {
		if v <= 0 {
			return 0
		}
		return -math.Pow(v/hi, exp)
	}
}

// OnPenalty returns −1 when a boolean is on, 0 when off.
func OnPenalty() Shape {
	return func(v float64) float64 {
		if v != 0 { //wfvet:ignore floateq boolean parameters are encoded as exactly 0 or 1
			return -1
		}
		return 0
	}
}

// OnGain returns +1 when a boolean is on, 0 when off.
func OnGain() Shape {
	return func(v float64) float64 {
		if v != 0 { //wfvet:ignore floateq boolean parameters are encoded as exactly 0 or 1
			return 1
		}
		return 0
	}
}

// OffGain returns +1 when a boolean is off, 0 when on — for default-on
// options whose removal improves performance.
func OffGain() Shape {
	return func(v float64) float64 {
		if v == 0 { //wfvet:ignore floateq boolean parameters are encoded as exactly 0 or 1
			return 1
		}
		return 0
	}
}

// BothHigh returns a pairwise shape that is positive only when both values
// exceed their thresholds — the synergy interaction.
func BothHigh(ta, tb float64) func(va, vb float64) float64 {
	return func(va, vb float64) float64 {
		if va >= ta && vb >= tb {
			return 1
		}
		return 0
	}
}

// BothBad returns a pairwise shape that is −1 when both predicates hold.
func BothBad(aBad, bBad func(float64) bool) func(va, vb float64) float64 {
	return func(va, vb float64) float64 {
		if aBad(va) && bBad(vb) {
			return -1
		}
		return 0
	}
}
