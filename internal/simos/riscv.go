package simos

import (
	"fmt"

	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
)

// RiscvOptions sizes the RISC-V memory-footprint profile (§4.4, Fig 10).
type RiscvOptions struct {
	// DriverOptions is the number of compile-time driver/feature options
	// carrying memory contributions.
	DriverOptions int
	// Seed drives generation.
	Seed uint64
}

// DefaultRiscvOptions matches the Fig 10 experiment scale.
func DefaultRiscvOptions() RiscvOptions {
	return RiscvOptions{DriverOptions: 200, Seed: 1}
}

// NewRiscv constructs the RISC-V Linux profile used for memory-footprint
// minimization: the space is dominated by compile-time options whose only
// observable effect is the booted image's memory consumption. The default
// configuration boots at ≈210 MB (the paper's default footprint); turning
// off every non-essential default-on option reaches the mid-180s, with the
// essential boot set guarded by crash rules — the hazard the search has to
// learn.
func NewRiscv(opts RiscvOptions) *Model {
	m := &Model{
		Name:              "linux-riscv",
		Space:             configspace.NewSpace("linux-riscv"),
		MemBaseMB:         152,
		MemContribMB:      map[string]float64{},
		BuildSeconds:      95,
		BootSeconds:       14, // QEMU emulation boots slowly
		CacheFetchSeconds: 5,
		TransferSeconds:   9,
		Seed:              opts.Seed ^ 0x415c,
	}
	r := rng.New(opts.Seed ^ 0x7a57e)

	essentials := []string{
		"CONFIG_RISCV_SBI", "CONFIG_SERIAL_SIFIVE_CONSOLE", "CONFIG_VIRTIO_MMIO",
		"CONFIG_VIRTIO_BLK", "CONFIG_EXT4_FS",
	}
	for _, name := range essentials {
		m.Space.MustAdd(&configspace.Param{Name: name, Type: configspace.Bool,
			Class: configspace.CompileTime, Default: configspace.BoolValue(true)})
		m.MemContribMB[name] = 0.8 + r.Float64()*0.8
		name := name
		m.CrashRules = append(m.CrashRules, CrashRule{
			Param: name, Stage: StageBoot, Prob: 0.97,
			Reason: name + " disabled: board cannot boot",
			Bad:    func(v configspace.Value) bool { return v.I == 0 },
		})
	}

	// Big-ticket default-on subsystems: the headroom lives here.
	bigOptions := []struct {
		name  string
		memMB float64
	}{
		{"CONFIG_DEBUG_INFO", 6.5},
		{"CONFIG_FTRACE", 4.8},
		{"CONFIG_KALLSYMS_ALL", 3.6},
		{"CONFIG_MODULES", 2.4},
		{"CONFIG_NETFILTER", 3.1},
		{"CONFIG_SOUND", 2.7},
		{"CONFIG_USB_SUPPORT", 2.2},
		{"CONFIG_WIRELESS", 2.9},
		{"CONFIG_BT", 2.0},
		{"CONFIG_PROFILING", 1.4},
	}
	for _, b := range bigOptions {
		m.Space.MustAdd(&configspace.Param{Name: b.name, Type: configspace.Bool,
			Class: configspace.CompileTime, Default: configspace.BoolValue(true)})
		m.MemContribMB[b.name] = b.memMB
	}

	// Log buffer: numeric contribution per doubling.
	m.Space.MustAdd(&configspace.Param{Name: "CONFIG_LOG_BUF_SHIFT", Type: configspace.Int,
		Class: configspace.CompileTime, Min: 12, Max: 25, Default: configspace.IntValue(17)})
	m.MemContribMB["CONFIG_LOG_BUF_SHIFT"] = 0.6

	// Driver/feature options with assorted footprints; about 55% are on by
	// default (a distro-style config carries plenty of fat).
	for i := 0; i < opts.DriverOptions; i++ {
		name := fmt.Sprintf("CONFIG_RV_DRIVER_%03d", i)
		on := r.Chance(0.55)
		if i == 10 || i == 11 {
			// Referenced by the shared-infrastructure combo rule below:
			// keep them on by default so the hazard is a *removal* hazard.
			on = true
		}
		typ := configspace.Bool
		def := configspace.BoolValue(on)
		if (i != 10 && i != 11) && r.Chance(0.4) {
			typ = configspace.Tristate
			switch {
			case on && r.Chance(0.5):
				def = configspace.TriValue(configspace.TriYes)
			case on:
				def = configspace.TriValue(configspace.TriModule)
			default:
				def = configspace.TriValue(configspace.TriNo)
			}
		}
		m.Space.MustAdd(&configspace.Param{Name: name, Type: typ,
			Class: configspace.CompileTime, Default: def})
		m.MemContribMB[name] = 0.04 + r.Float64()*0.35
	}

	// A couple of latent dependency hazards beyond the essentials: options
	// that crash the boot when removed together (shared infrastructure).
	m.ComboRules = append(m.ComboRules,
		ComboCrashRule{Stage: StageBoot, Prob: 0.85,
			Reason: "block and filesystem layers removed together",
			Bad: func(c *configspace.Config) bool {
				return c.GetInt("CONFIG_RV_DRIVER_010", 1) == 0 &&
					c.GetInt("CONFIG_RV_DRIVER_011", 1) == 0
			}},
		ComboCrashRule{Stage: StageBuild, Prob: 0.90,
			Reason: "CONFIG_DEBUG_INFO requires CONFIG_KALLSYMS_ALL in this tree",
			Bad: func(c *configspace.Config) bool {
				return c.GetInt("CONFIG_DEBUG_INFO", 1) == 1 &&
					c.GetInt("CONFIG_KALLSYMS_ALL", 1) == 0
			}},
	)

	// A small runtime section so the profile still boots and serves.
	m.Space.MustAdd(&configspace.Param{Name: "vm.min_free_kbytes", Type: configspace.Int,
		Class: configspace.Runtime, Min: 1024, Max: 262144, Default: configspace.IntValue(8192)})
	m.RuntimeSpecs = append(m.RuntimeSpecs, RuntimeSpec{
		Path: "/proc/sys/vm/min_free_kbytes", Name: "vm.min_free_kbytes",
		Default: 8192, HardMin: 1024, HardMax: 262144, Writable: true,
	})

	m.finalize()
	return m
}
