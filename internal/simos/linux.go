package simos

import (
	"fmt"

	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
)

// LinuxOptions sizes the simulated Linux profile. The high-impact
// parameters are always present; fillers pad the space to make the search
// problem realistically sparse (the overwhelming majority of Linux's
// options do nothing for a given workload).
type LinuxOptions struct {
	// FillerRuntime is the number of no-effect runtime sysctls.
	FillerRuntime int
	// FillerBoot is the number of no-effect boot parameters.
	FillerBoot int
	// FillerCompile is the number of compile-time options that only
	// contribute memory footprint.
	FillerCompile int
	// Seed drives filler generation and the crash-model draws.
	Seed uint64
}

// DefaultLinuxOptions returns the profile size used by the experiments:
// large enough that random search struggles (≈300 runtime parameters,
// ~10²⁰⁰ configurations), small enough to iterate quickly.
func DefaultLinuxOptions() LinuxOptions {
	return LinuxOptions{FillerRuntime: 260, FillerBoot: 20, FillerCompile: 60, Seed: 1}
}

// runtimeParam is one row of the hidden sysctl table.
type runtimeParam struct {
	name             string
	def              int64
	hardMin, hardMax int64
	boolTyped        bool
}

// linuxRuntimeTable lists the named sysctls of the simulated kernel. The
// high-impact ones mirror the parameters the paper reports Wayfinder
// (re)discovering: net.core.somaxconn, net.core.rmem_default,
// net.ipv4.tcp_keepalive_time, vm.stat_interval, printk verbosity/delay,
// and vm.block_dump (§4.1, "High-Impact Configuration Parameters").
var linuxRuntimeTable = []runtimeParam{
	{"net.core.somaxconn", 128, 16, 65536, false},
	{"net.core.rmem_default", 212992, 4096, 33554432, false},
	{"net.core.wmem_default", 212992, 4096, 33554432, false},
	{"net.core.rmem_max", 212992, 4096, 33554432, false},
	{"net.core.wmem_max", 212992, 4096, 33554432, false},
	{"net.core.netdev_max_backlog", 1000, 10, 100000, false},
	{"net.ipv4.tcp_max_syn_backlog", 512, 64, 65536, false},
	{"net.ipv4.tcp_keepalive_time", 7200, 60, 72000, false},
	{"net.ipv4.tcp_fin_timeout", 60, 5, 300, false},
	{"net.core.busy_poll", 0, 0, 500, false},
	{"kernel.printk_level", 7, 0, 15, false},
	{"kernel.printk_delay", 0, 0, 10000, false},
	{"vm.block_dump", 0, 0, 1, true},
	{"kernel.sched_schedstats", 0, 0, 1, true},
	{"vm.stat_interval", 1, 1, 300, false},
	{"vm.dirty_ratio", 20, 1, 99, false},
	{"vm.dirty_background_ratio", 10, 1, 99, false},
	{"vm.dirty_expire_centisecs", 3000, 100, 360000, false},
	{"vm.swappiness", 60, 0, 100, false},
	{"vm.nr_hugepages", 0, 0, 8192, false},
	{"vm.overcommit_memory", 0, 0, 2, false},
	{"vm.min_free_kbytes", 67584, 1024, 4194304, false},
	{"vm.max_map_count", 65530, 1024, 16777216, false},
	{"kernel.sched_min_granularity_ns", 3000000, 100000, 1000000000, false},
	{"kernel.sched_wakeup_granularity_ns", 4000000, 100000, 2000000000, false},
	{"kernel.sched_migration_cost_ns", 500000, 0, 100000000, false},
	{"fs.file-max", 65536, 1024, 10000000, false},
	{"kernel.threads-max", 63000, 20, 4194304, false},
}

// NewLinux constructs the simulated Linux profile (Debian-style v4.19
// defaults). The visible Space contains runtime, boot, and compile-time
// parameters; Effects/CrashRules/MemContrib form the hidden ground truth.
func NewLinux(opts LinuxOptions) *Model {
	m := &Model{
		Name:              "linux",
		Space:             configspace.NewSpace("linux"),
		MemBaseMB:         142,
		MemContribMB:      map[string]float64{},
		BuildSeconds:      110,
		BootSeconds:       9,
		CacheFetchSeconds: 6,  // copy a built image out of the host store
		TransferSeconds:   10, // ship it across the fleet network first
		Seed:              opts.Seed ^ 0x11b,
	}
	r := rng.New(opts.Seed ^ 0x5eed)

	// --- Runtime sysctls ---
	for _, rp := range linuxRuntimeTable {
		p := &configspace.Param{
			Name:    rp.name,
			Class:   configspace.Runtime,
			Default: configspace.IntValue(rp.def),
			Min:     rp.hardMin,
			Max:     rp.hardMax,
		}
		if rp.boolTyped {
			p.Type = configspace.Bool
		} else {
			p.Type = configspace.Int
		}
		m.Space.MustAdd(p)
		m.RuntimeSpecs = append(m.RuntimeSpecs, RuntimeSpec{
			Path:    "/proc/sys/" + dotsToSlashes(rp.name),
			Name:    rp.name,
			Default: rp.def, HardMin: rp.hardMin, HardMax: rp.hardMax,
			Writable: true,
		})
	}
	m.Space.MustAdd(&configspace.Param{
		Name: "net.core.default_qdisc", Type: configspace.Enum,
		Class:   configspace.Runtime,
		Values:  []string{"pfifo_fast", "fq", "fq_codel"},
		Default: configspace.EnumValue("pfifo_fast"),
	})

	// Hidden response surface over the runtime parameters.
	m.Effects = append(m.Effects,
		Effect{"net.core.somaxconn", ClassNet, 0.060, Saturating(128, 16, 65536, 2048), nil},
		Effect{"net.core.rmem_default", ClassNet, 0.035, Unimodal(212992, 4194304, 1.4), nil},
		Effect{"net.core.wmem_default", ClassNet, 0.025, Unimodal(212992, 1048576, 1.4), nil},
		Effect{"net.core.netdev_max_backlog", ClassNet, 0.040, Saturating(1000, 10, 100000, 5000), nil},
		Effect{"net.ipv4.tcp_max_syn_backlog", ClassNet, 0.020, Saturating(512, 64, 65536, 4096), nil},
		Effect{"net.ipv4.tcp_keepalive_time", ClassNet, 0.030, StepLow(600), nil},
		Effect{"net.ipv4.tcp_fin_timeout", ClassNet, 0.015, Unimodal(60, 20, 0.5), nil},
		Effect{"net.core.busy_poll", ClassNet, 0.015, Saturating(0, 0, 500, 100), nil},
		Effect{Param: "net.core.default_qdisc", Class: ClassNet, Magnitude: 0.015,
			EnumEffects: map[string]float64{"pfifo_fast": 0, "fq": 1, "fq_codel": 0.5}},
		Effect{"kernel.printk_level", ClassDebug, 0.080, LinearPenalty(7, 0, 15, 0.15), nil},
		Effect{"kernel.printk_delay", ClassDebug, 0.120, PowerPenalty(10000, 1.0), nil},
		Effect{"vm.block_dump", ClassDebug, 0.035, OnPenalty(), nil},
		Effect{"kernel.sched_schedstats", ClassDebug, 0.010, OnPenalty(), nil},
		Effect{"vm.stat_interval", ClassDebug, 0.015, Saturating(1, 1, 300, 30), nil},
		Effect{"vm.dirty_ratio", ClassStorage, 0.040, Unimodal(20, 20, 0.4), nil},
		Effect{"vm.dirty_background_ratio", ClassStorage, 0.025, Unimodal(10, 10, 0.4), nil},
		Effect{"vm.dirty_expire_centisecs", ClassStorage, 0.020, Unimodal(3000, 3000, 0.5), nil},
		Effect{"vm.swappiness", ClassMM, 0.015, Unimodal(60, 10, 0.6), nil},
		Effect{"vm.nr_hugepages", ClassMM, 0.030, Saturating(0, 0, 8192, 2048), nil},
		Effect{"kernel.sched_min_granularity_ns", ClassSched, 0.020, Unimodal(3e6, 1e7, 0.6), nil},
		Effect{"kernel.sched_wakeup_granularity_ns", ClassSched, 0.015, Unimodal(4e6, 1.5e7, 0.6), nil},
		Effect{"kernel.sched_migration_cost_ns", ClassSched, 0.015, Saturating(5e5, 0, 1e8, 5e6), nil},
	)
	m.Interactions = append(m.Interactions,
		Interaction{A: "net.core.somaxconn", B: "net.core.rmem_default",
			Class: ClassNet, Magnitude: 0.015, Shape: BothHigh(2048, 1048576)},
		Interaction{A: "kernel.printk_level", B: "kernel.printk_delay",
			Class: ClassDebug, Magnitude: 0.05,
			Shape: BothBad(func(v float64) bool { return v >= 10 }, func(v float64) bool { return v > 100 })},
	)

	// Hidden crash regions. Zone widths are calibrated so a fully random
	// configuration fails about a third of the time (§2.2).
	intBad := func(f func(int64) bool) func(configspace.Value) bool {
		return func(v configspace.Value) bool { return f(v.I) }
	}
	m.CrashRules = append(m.CrashRules,
		CrashRule{"fs.file-max", StageRun, 0.90, "file table exhausted, benchmark cannot open sockets",
			intBad(func(v int64) bool { return v < 2048 })},
		CrashRule{"net.core.rmem_max", StageRun, 0.85, "receive window collapse stalls the benchmark",
			intBad(func(v int64) bool { return v < 6144 })},
		CrashRule{"net.core.wmem_max", StageRun, 0.40, "send buffer starvation stalls the benchmark",
			intBad(func(v int64) bool { return v < 6144 })},
		CrashRule{"kernel.threads-max", StageRun, 0.90, "thread limit below workload needs",
			intBad(func(v int64) bool { return v < 40 })},
		CrashRule{"vm.min_free_kbytes", StageRun, 0.60, "watermark so high the OOM killer fires",
			intBad(func(v int64) bool { return v > 2097152 })},
		CrashRule{"vm.overcommit_memory", StageRun, 0.25, "strict overcommit rejects allocations",
			intBad(func(v int64) bool { return v == 2 })},
		CrashRule{"vm.max_map_count", StageRun, 0.80, "mmap limit below allocator needs",
			intBad(func(v int64) bool { return v < 2048 })},
		CrashRule{"vm.nr_hugepages", StageRun, 0.35, "hugepage reservation leaves no free memory",
			intBad(func(v int64) bool { return v > 7168 })},
	)

	// --- Boot-time parameters ---
	m.Space.MustAdd(&configspace.Param{
		Name: "boot.mitigations", Type: configspace.Enum, Class: configspace.BootTime,
		Values:  []string{"auto", "off", "auto,nosmt"},
		Default: configspace.EnumValue("auto"),
	})
	m.Space.MustAdd(&configspace.Param{
		Name: "boot.loglevel", Type: configspace.Int, Class: configspace.BootTime,
		Min: 0, Max: 15, Default: configspace.IntValue(7),
	})
	m.Space.MustAdd(&configspace.Param{
		Name: "boot.quiet", Type: configspace.Bool, Class: configspace.BootTime,
		Default: configspace.BoolValue(false),
	})
	m.Space.MustAdd(&configspace.Param{
		Name: "boot.maxcpus", Type: configspace.Int, Class: configspace.BootTime,
		Min: 0, Max: 48, Default: configspace.IntValue(48),
	})
	m.Space.MustAdd(&configspace.Param{
		Name: "boot.preempt", Type: configspace.Enum, Class: configspace.BootTime,
		Values:  []string{"none", "voluntary", "full"},
		Default: configspace.EnumValue("voluntary"),
	})
	m.Effects = append(m.Effects,
		Effect{Param: "boot.mitigations", Class: ClassSched, Magnitude: 0.020,
			EnumEffects: map[string]float64{"auto": 0, "off": 1, "auto,nosmt": -0.5}},
		Effect{"boot.loglevel", ClassDebug, 0.020, LinearPenalty(7, 0, 15, 0.2), nil},
		Effect{"boot.quiet", ClassDebug, 0.004, OnGain(), nil},
		Effect{"boot.maxcpus", ClassSched, 0.030, Saturating(48, 1, 48, 12), nil},
		Effect{Param: "boot.preempt", Class: ClassSched, Magnitude: 0.010,
			EnumEffects: map[string]float64{"none": 0.3, "voluntary": 0, "full": -0.3}},
	)
	m.CrashRules = append(m.CrashRules,
		CrashRule{"boot.maxcpus", StageBoot, 0.95, "maxcpus=0 leaves no boot CPU",
			intBad(func(v int64) bool { return v == 0 })},
	)

	// --- Compile-time parameters (performance-relevant core set) ---
	compileBools := []struct {
		name    string
		def     bool
		penalty float64 // OnPenalty magnitude (0 = no perf effect)
		memMB   float64
	}{
		{"CONFIG_PREEMPT", false, 0.010, 0.4},
		{"CONFIG_DEBUG_LOCKDEP", false, 0.060, 2.5},
		{"CONFIG_DEBUG_KMEMLEAK", false, 0.080, 12},
		{"CONFIG_KASAN", false, 0.350, 30},
		{"CONFIG_FTRACE", true, 0.015, 6},
		{"CONFIG_SLUB_DEBUG", true, 0.020, 3},
		{"CONFIG_PROFILING", true, 0.006, 1.5},
		{"CONFIG_DEBUG_PAGEALLOC", false, 0.120, 8},
	}
	for _, cb := range compileBools {
		m.Space.MustAdd(&configspace.Param{
			Name: cb.name, Type: configspace.Bool, Class: configspace.CompileTime,
			Default: configspace.BoolValue(cb.def),
		})
		if cb.penalty > 0 {
			// Default-off options penalize when enabled; default-on options
			// reward when disabled.
			shape := OnPenalty()
			if cb.def {
				shape = OffGain()
			}
			m.Effects = append(m.Effects, Effect{cb.name, ClassDebug, cb.penalty, shape, nil})
		}
		m.MemContribMB[cb.name] = cb.memMB
	}
	m.Space.MustAdd(&configspace.Param{
		Name: "CONFIG_HZ", Type: configspace.Enum, Class: configspace.CompileTime,
		Values: []string{"100", "250", "1000"}, Default: configspace.EnumValue("250"),
	})
	m.Effects = append(m.Effects, Effect{Param: "CONFIG_HZ", Class: ClassCompile,
		Magnitude: 0.020, EnumEffects: map[string]float64{"100": -0.5, "250": 0, "1000": 0.5}})
	m.Space.MustAdd(&configspace.Param{
		Name: "CONFIG_LOG_BUF_SHIFT", Type: configspace.Int, Class: configspace.CompileTime,
		Min: 12, Max: 25, Default: configspace.IntValue(17),
	})
	m.MemContribMB["CONFIG_LOG_BUF_SHIFT"] = 0.5 // per doubling

	// Essential boot set: disabling any of these prevents boot.
	essentials := []string{
		"CONFIG_VIRTIO", "CONFIG_VIRTIO_NET", "CONFIG_VIRTIO_BLK",
		"CONFIG_SERIAL_8250_CONSOLE", "CONFIG_EXT4_FS",
	}
	for _, name := range essentials {
		m.Space.MustAdd(&configspace.Param{
			Name: name, Type: configspace.Bool, Class: configspace.CompileTime,
			Default: configspace.BoolValue(true),
		})
		m.MemContribMB[name] = 1.2
		name := name
		m.CrashRules = append(m.CrashRules, CrashRule{
			Param: name, Stage: StageBoot, Prob: 0.97,
			Reason: name + " disabled: kernel cannot reach userspace",
			Bad:    func(v configspace.Value) bool { return v.I == 0 },
		})
	}
	m.ComboRules = append(m.ComboRules, ComboCrashRule{
		Stage: StageBuild, Prob: 0.95,
		Reason: "CONFIG_KASAN conflicts with CONFIG_DEBUG_PAGEALLOC instrumentation",
		Bad: func(c *configspace.Config) bool {
			return c.GetInt("CONFIG_KASAN", 0) == 1 && c.GetInt("CONFIG_DEBUG_PAGEALLOC", 0) == 1
		},
	})

	// --- Fillers ---
	addLinuxFillers(m, opts, r)
	m.finalize()
	return m
}

// addLinuxFillers pads the space with realistic but inert parameters.
func addLinuxFillers(m *Model, opts LinuxOptions, r *rng.RNG) {
	prefixes := []string{
		"net.ipv4.conf.all", "net.ipv4.conf.default", "net.ipv6.conf.all",
		"kernel", "vm", "fs", "net.netfilter", "dev.raid",
	}
	for i := 0; i < opts.FillerRuntime; i++ {
		prefix := prefixes[i%len(prefixes)]
		name := fmt.Sprintf("%s.tunable_%03d", prefix, i)
		var p *configspace.Param
		switch {
		case r.Chance(0.45): // boolean toggles
			p = &configspace.Param{Name: name, Type: configspace.Bool,
				Class: configspace.Runtime, Default: configspace.BoolValue(r.Chance(0.3))}
		default:
			def := int64(1) << uint(r.Intn(16))
			p = &configspace.Param{Name: name, Type: configspace.Int,
				Class: configspace.Runtime, Min: 0, Max: def * 1024,
				Default: configspace.IntValue(def)}
		}
		m.Space.MustAdd(p)
		m.RuntimeSpecs = append(m.RuntimeSpecs, RuntimeSpec{
			Path: "/proc/sys/" + dotsToSlashes(name), Name: name,
			Default: p.Default.I, HardMin: p.Min, HardMax: p.Max, Writable: true,
		})
	}
	for i := 0; i < opts.FillerBoot; i++ {
		name := fmt.Sprintf("boot.option_%03d", i)
		m.Space.MustAdd(&configspace.Param{Name: name, Type: configspace.Bool,
			Class: configspace.BootTime, Default: configspace.BoolValue(false)})
	}
	for i := 0; i < opts.FillerCompile; i++ {
		name := fmt.Sprintf("CONFIG_DRIVER_%03d", i)
		def := r.Chance(0.4)
		typ := configspace.Bool
		defVal := configspace.BoolValue(def)
		if r.Chance(0.5) {
			typ = configspace.Tristate
			switch {
			case def:
				defVal = configspace.TriValue(configspace.TriYes)
			case r.Chance(0.3):
				defVal = configspace.TriValue(configspace.TriModule)
			default:
				defVal = configspace.TriValue(configspace.TriNo)
			}
		}
		m.Space.MustAdd(&configspace.Param{Name: name, Type: typ,
			Class: configspace.CompileTime, Default: defVal})
		m.MemContribMB[name] = 0.05 + r.Float64()*0.55
	}
}

func dotsToSlashes(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			out[i] = '/'
		} else {
			out[i] = s[i]
		}
	}
	return string(out)
}

// LinuxCensusCounts reports the paper's Table 1 counts for boot-time and
// runtime options of Linux 6.0 (compile-time counts come from the kconfig
// package's v6.0 tree).
type LinuxCensusCounts struct {
	Boot    int
	Runtime int
}

// Table1Counts returns the boot/runtime option counts of the paper's
// Table 1.
func Table1Counts() LinuxCensusCounts { return LinuxCensusCounts{Boot: 231, Runtime: 13328} }

// NewLinuxCensus builds a census-scale model whose boot and runtime
// parameter counts match Table 1 exactly. It is used by the Table 1
// experiment; searches use NewLinux.
func NewLinuxCensus(seed uint64) *Model {
	counts := Table1Counts()
	opts := LinuxOptions{
		FillerRuntime: counts.Runtime - 29, // named runtime params: 28 table + qdisc
		FillerBoot:    counts.Boot - 5,     // named boot params
		FillerCompile: 0,
		Seed:          seed,
	}
	return NewLinux(opts)
}
