package simos

import (
	"maps"
	"math"
	"slices"
	"testing"
	"testing/quick"

	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
)

// testApp returns an app with uniform sensitivity 1 across all classes.
func testApp() *App {
	a := &App{Name: "test", Unit: "op/s", Maximize: true, Base: 1000, NoiseStd: 0}
	for c := EffectClass(0); c < numClasses; c++ {
		a.Sensitivity[c] = 1
	}
	return a
}

func TestShapesZeroAtDefault(t *testing.T) {
	shapes := map[string]struct {
		s   Shape
		def float64
	}{
		"saturating":    {Saturating(128, 16, 65536, 2048), 128},
		"unimodal":      {Unimodal(60, 10, 0.6), 60},
		"steplow":       {StepLow(600), 7200},
		"linearpenalty": {LinearPenalty(7, 0, 15, 0.15), 7},
		"powerpenalty":  {PowerPenalty(10000, 1), 0},
		"onpenalty":     {OnPenalty(), 0},
		"ongain":        {OnGain(), 0},
		"offgain":       {OffGain(), 1},
	}
	for _, name := range slices.Sorted(maps.Keys(shapes)) {
		tc := shapes[name]
		if f := tc.s(tc.def); math.Abs(f) > 1e-9 {
			t.Errorf("%s: shape(default) = %v, want 0", name, f)
		}
	}
}

func TestShapesBounded(t *testing.T) {
	shapes := []struct {
		s      Shape
		lo, hi float64
	}{
		{Saturating(128, 16, 65536, 2048), 16, 65536},
		{Unimodal(212992, 4194304, 1.4), 4096, 33554432},
		{LinearPenalty(7, 0, 15, 0.15), 0, 15},
		{PowerPenalty(10000, 1), 0, 10000},
	}
	r := rng.New(1)
	for i, tc := range shapes {
		for j := 0; j < 1000; j++ {
			v := tc.lo + r.Float64()*(tc.hi-tc.lo)
			if f := tc.s(v); f < -1.0001 || f > 1.0001 {
				t.Fatalf("shape %d out of [-1,1] at %v: %v", i, v, f)
			}
		}
	}
}

func TestSaturatingMonotone(t *testing.T) {
	s := Saturating(128, 16, 65536, 2048)
	prev := s(16)
	for v := 32.0; v <= 65536; v *= 2 {
		cur := s(v)
		if cur < prev {
			t.Fatalf("saturating not monotone at %v", v)
		}
		prev = cur
	}
	if s(65536) <= 0 || s(16) >= 0 {
		t.Fatal("saturating endpoints wrong sign")
	}
}

func TestUnimodalPeak(t *testing.T) {
	s := Unimodal(128, 1024, 0.5)
	if s(1024) <= s(128) || s(1024) <= s(65536) {
		t.Fatal("unimodal does not peak at its peak")
	}
}

func TestLinuxDefaultMultiplierIsOne(t *testing.T) {
	m := NewLinux(DefaultLinuxOptions())
	app := testApp()
	if mult := m.PerfMultiplier(m.Space.Default(), app); math.Abs(mult-1) > 1e-9 {
		t.Fatalf("default multiplier = %v, want exactly 1", mult)
	}
}

func TestUnikraftDefaultMultiplierIsOne(t *testing.T) {
	m := NewUnikraft(1)
	app := testApp()
	if mult := m.PerfMultiplier(m.Space.Default(), app); math.Abs(mult-1) > 1e-9 {
		t.Fatalf("default multiplier = %v, want exactly 1", mult)
	}
}

func TestPerformanceDirection(t *testing.T) {
	m := NewLinux(DefaultLinuxOptions())
	// A config with somaxconn raised should beat default for a net-heavy
	// app on both maximize and minimize metrics.
	app := testApp()
	good := m.Space.Default()
	good.MustSet("net.core.somaxconn", configspace.IntValue(8192))
	r := rng.New(1)
	if m.Performance(good, app, r) <= app.Base*0.99 {
		t.Fatal("improved config did not raise a maximize metric")
	}
	latApp := testApp()
	latApp.Maximize = false
	if m.Performance(good, latApp, rng.New(1)) >= latApp.Base*1.01 {
		t.Fatal("improved config did not lower a minimize metric")
	}
}

func TestPerfMultiplierDeterministic(t *testing.T) {
	m := NewLinux(DefaultLinuxOptions())
	app := testApp()
	r := rng.New(7)
	for i := 0; i < 50; i++ {
		c := m.Space.Random(r)
		if m.PerfMultiplier(c, app) != m.PerfMultiplier(c, app) {
			t.Fatal("multiplier not deterministic")
		}
	}
}

func TestCrashOutcomeDeterministicPerConfig(t *testing.T) {
	m := NewLinux(DefaultLinuxOptions())
	r := rng.New(3)
	for i := 0; i < 200; i++ {
		c := m.Space.Random(r)
		s1, _ := m.CrashOutcome(c)
		s2, _ := m.CrashOutcome(c)
		if s1 != s2 {
			t.Fatal("crash outcome must be stable per configuration")
		}
	}
}

func TestDefaultConfigNeverCrashes(t *testing.T) {
	for _, m := range []*Model{
		NewLinux(DefaultLinuxOptions()),
		NewUnikraft(1),
		NewRiscv(DefaultRiscvOptions()),
	} {
		if st, reason := m.CrashOutcome(m.Space.Default()); st != StageOK {
			t.Fatalf("%s default config crashes: %s (%s)", m.Name, st, reason)
		}
	}
}

func TestLinuxRandomCrashRateAboutOneThird(t *testing.T) {
	// §2.2: "about a third of randomly generated configurations crash at
	// runtime". Random here follows the §4.1 setup: runtime/boot varied,
	// compile-time pinned.
	m := NewLinux(DefaultLinuxOptions())
	m.Space.Favor(configspace.CompileTime, 0)
	r := rng.New(42)
	crash := 0
	const n = 3000
	for i := 0; i < n; i++ {
		if st, _ := m.CrashOutcome(m.Space.Random(r)); st != StageOK {
			crash++
		}
	}
	rate := float64(crash) / n
	if rate < 0.22 || rate > 0.45 {
		t.Fatalf("random crash rate = %v, want ≈1/3", rate)
	}
}

func TestUnikraftRandomCrashRate(t *testing.T) {
	m := NewUnikraft(1)
	r := rng.New(7)
	crash := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if st, _ := m.CrashOutcome(m.Space.Random(r)); st != StageOK {
			crash++
		}
	}
	rate := float64(crash) / n
	if rate < 0.15 || rate > 0.5 {
		t.Fatalf("unikraft random crash rate = %v", rate)
	}
}

func TestRiscvMutationCrashRate(t *testing.T) {
	m := NewRiscv(DefaultRiscvOptions())
	r := rng.New(11)
	crash := 0
	const n = 2000
	base := m.Space.Default()
	for i := 0; i < n; i++ {
		if st, _ := m.CrashOutcome(m.Space.Mutate(base, 30, r)); st != StageOK {
			crash++
		}
	}
	rate := float64(crash) / n
	if rate < 0.2 || rate > 0.5 {
		t.Fatalf("riscv mutate-30 crash rate = %v, want ≈1/3", rate)
	}
}

func TestCrashProbabilityConsistent(t *testing.T) {
	// The analytic probability and realized outcomes must agree: configs
	// with zero probability never crash, probability ≈ empirical rate.
	m := NewLinux(DefaultLinuxOptions())
	m.Space.Favor(configspace.CompileTime, 0)
	r := rng.New(5)
	crashes, expected := 0.0, 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		c := m.Space.Random(r)
		p := m.CrashProbability(c)
		st, _ := m.CrashOutcome(c)
		if p == 0 && st != StageOK {
			t.Fatal("zero-probability config crashed")
		}
		expected += p
		if st != StageOK {
			crashes++
		}
	}
	if math.Abs(crashes-expected)/n > 0.03 {
		t.Fatalf("empirical crashes %v vs expected %v over %d", crashes, expected, n)
	}
}

func TestLinuxHeadroomOrdering(t *testing.T) {
	// Table 2 structure: nginx improves most, then redis, sqlite ≈ 1,
	// npb ≈ 1. Verified against the hidden surface via hill climbing on
	// runtime/boot parameters.
	m := NewLinux(DefaultLinuxOptions())
	apps := []struct {
		name string
		app  *App
	}{
		{"nginx", netHeavyApp(1.0, 0.8)},
		{"redis", netHeavyApp(0.6, 0.25)},
		{"npb", npbLikeApp()},
	}
	best := map[string]float64{}
	for _, entry := range apps {
		best[entry.name] = greedyOptimize(m, entry.app, false)
	}
	if !(best["nginx"] > best["redis"] && best["redis"] > best["npb"]) {
		t.Fatalf("headroom ordering wrong: %+v", best)
	}
	if best["nginx"] < 1.18 || best["nginx"] > 1.40 {
		t.Fatalf("nginx headroom = %v, want ≈1.24-1.3", best["nginx"])
	}
	if best["npb"] > 1.06 {
		t.Fatalf("npb headroom = %v, want ≈1.02", best["npb"])
	}
}

func netHeavyApp(net, sched float64) *App {
	a := &App{Name: "x", Unit: "req/s", Maximize: true, Base: 10000}
	a.Sensitivity[ClassNet] = net
	a.Sensitivity[ClassSched] = sched
	a.Sensitivity[ClassDebug] = 1
	a.Sensitivity[ClassStorage] = 0.2
	a.Sensitivity[ClassMM] = 0.2
	return a
}

func npbLikeApp() *App {
	a := &App{Name: "npb", Unit: "Mop/s", Maximize: true, Base: 1497}
	a.Sensitivity[ClassMM] = 0.4
	a.Sensitivity[ClassSched] = 0.3
	a.Sensitivity[ClassDebug] = 0.08
	a.Sensitivity[ClassStorage] = 0.03
	return a
}

// greedyOptimize hill-climbs the configuration against the hidden
// multiplier (test-only oracle access). includeCompile extends the climb
// to compile-time parameters (Unikraft tunes everything at build time).
func greedyOptimize(m *Model, app *App, includeCompile bool) float64 {
	best := m.Space.Default()
	bestV := m.PerfMultiplier(best, app)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < m.Space.Len(); i++ {
			p := m.Space.Param(i)
			if !includeCompile && p.Class == configspace.CompileTime {
				continue
			}
			try := func(v configspace.Value) {
				if !p.InDomain(v) {
					return
				}
				cand := best.Clone()
				cand.SetIndex(i, v)
				if st, _ := m.CrashOutcome(cand); st != StageOK {
					return
				}
				if mv := m.PerfMultiplier(cand, app); mv > bestV {
					bestV, best = mv, cand
				}
			}
			switch p.Type {
			case configspace.Bool:
				try(configspace.BoolValue(true))
				try(configspace.BoolValue(false))
			case configspace.Enum:
				for _, s := range p.Values {
					try(configspace.EnumValue(s))
				}
			default:
				for v := p.Min; v < p.Max/2 && v != 0; v *= 2 {
					try(configspace.IntValue(v))
				}
				if p.Min == 0 {
					for v := int64(1); v < p.Max/2; v *= 4 {
						try(configspace.IntValue(v))
					}
				}
				try(configspace.IntValue(p.Max))
			}
		}
	}
	return bestV
}

func TestUnikraftHeadroomLarge(t *testing.T) {
	// Fig 9: Unikraft's specialized configurations reach several times the
	// default throughput.
	m := NewUnikraft(1)
	app := testApp()
	best := greedyOptimize(m, app, true)
	if best < 3 || best > 8 {
		t.Fatalf("unikraft headroom = %vx, want roughly 4-5x", best)
	}
}

func TestMemoryModelRiscv(t *testing.T) {
	m := NewRiscv(DefaultRiscvOptions())
	r := rng.New(2)
	def := m.MemoryMB(m.Space.Default(), r)
	if def < 200 || def > 220 {
		t.Fatalf("default footprint = %v MB, want ≈210", def)
	}
	// Disabling a big-ticket option must shrink the footprint by its
	// contribution.
	c := m.Space.Default()
	c.MustSet("CONFIG_DEBUG_INFO", configspace.BoolValue(false))
	c.MustSet("CONFIG_KALLSYMS_ALL", configspace.BoolValue(false)) // avoid the combo hazard
	smaller := m.MemoryMB(c, rng.New(2))
	if def-smaller < 8 {
		t.Fatalf("disabling DEBUG_INFO+KALLSYMS saved only %v MB", def-smaller)
	}
}

func TestMemoryTristateModuleWeight(t *testing.T) {
	m := NewRiscv(DefaultRiscvOptions())
	var name string
	for _, p := range m.Space.Params() {
		if p.Type == configspace.Tristate && p.Default.I == int64(configspace.TriYes) {
			name = p.Name
			break
		}
	}
	if name == "" {
		t.Skip("no default-yes tristate in generated space")
	}
	r := func() *rng.RNG { return rng.New(5) }
	yes := m.Space.Default()
	mod := m.Space.Default()
	mod.MustSet(name, configspace.TriValue(configspace.TriModule))
	off := m.Space.Default()
	off.MustSet(name, configspace.TriValue(configspace.TriNo))
	my, mm2, mn := m.MemoryMB(yes, r()), m.MemoryMB(mod, r()), m.MemoryMB(off, r())
	if !(mn < mm2 && mm2 < my) {
		t.Fatalf("tristate memory ordering wrong: n=%v m=%v y=%v", mn, mm2, my)
	}
}

func TestRiscvMemoryHeadroom(t *testing.T) {
	// Fig 10: ≈8.5% reduction is achievable (and more exists for longer
	// searches). Verify ≥10% headroom without crashing.
	m := NewRiscv(DefaultRiscvOptions())
	r := rng.New(3)
	def := m.MemoryMB(m.Space.Default(), r)
	best := m.Space.Default()
	bestV := def
	for i := 0; i < m.Space.Len(); i++ {
		p := m.Space.Param(i)
		if p.Class != configspace.CompileTime {
			continue
		}
		cand := best.Clone()
		switch p.Type {
		case configspace.Bool:
			cand.SetIndex(i, configspace.BoolValue(false))
		case configspace.Tristate:
			cand.SetIndex(i, configspace.TriValue(configspace.TriNo))
		case configspace.Int:
			cand.SetIndex(i, configspace.IntValue(p.Min))
		}
		if st, _ := m.CrashOutcome(cand); st != StageOK {
			continue
		}
		if v := m.MemoryMB(cand, rng.New(3)); v < bestV {
			bestV, best = v, cand
		}
	}
	if (def-bestV)/def < 0.10 {
		t.Fatalf("riscv memory headroom only %.1f%%", 100*(def-bestV)/def)
	}
}

func TestStageOrdering(t *testing.T) {
	// Build failures must dominate boot failures which dominate run
	// failures when multiple rules fire.
	m := NewLinux(DefaultLinuxOptions())
	c := m.Space.Default()
	// Trigger a build-stage combo (KASAN + DEBUG_PAGEALLOC) and a
	// boot-stage essential removal.
	c.MustSet("CONFIG_KASAN", configspace.BoolValue(true))
	c.MustSet("CONFIG_DEBUG_PAGEALLOC", configspace.BoolValue(true))
	c.MustSet("CONFIG_VIRTIO", configspace.BoolValue(false))
	st, _ := m.CrashOutcome(c)
	if st != StageBuild && st != StageBoot {
		t.Fatalf("stage = %v, want build or boot", st)
	}
	if st == StageBoot {
		// acceptable only if the build rule's draw missed (p=0.95); check
		// probability is high.
		if p := m.CrashProbability(c); p < 0.9 {
			t.Fatalf("crash probability = %v", p)
		}
	}
}

func TestLinuxCensusCounts(t *testing.T) {
	m := NewLinuxCensus(1)
	census := m.Space.Census()
	want := Table1Counts()
	if census.Runtime != want.Runtime {
		t.Fatalf("runtime census = %d, want %d", census.Runtime, want.Runtime)
	}
	if census.Boot != want.Boot {
		t.Fatalf("boot census = %d, want %d", census.Boot, want.Boot)
	}
}

func TestUnikraftSpaceSize(t *testing.T) {
	m := NewUnikraft(1)
	if m.Space.Len() != 33 {
		t.Fatalf("unikraft space has %d params, want 33 (10 app + 23 OS)", m.Space.Len())
	}
	// Fig 9 quotes ≈3.7×10¹³ permutations for their discretized space; our
	// integer parameters are quasi-continuous so the count is larger, but
	// the dimensionality (what Bayesian optimization's tractability hinges
	// on) matches. Record the cardinality is finite and far beyond
	// exhaustive search.
	lg := m.Space.LogCardinality()
	if lg < 13 {
		t.Fatalf("unikraft log10 cardinality = %v, suspiciously small", lg)
	}
}

func TestPerfMultiplierNeverNonPositive(t *testing.T) {
	m := NewLinux(DefaultLinuxOptions())
	app := testApp()
	if err := quick.Check(func(seed uint64) bool {
		c := m.Space.Random(rng.New(seed))
		return m.PerfMultiplier(c, app) > 0
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPerfMultiplier(b *testing.B) {
	m := NewLinux(DefaultLinuxOptions())
	app := testApp()
	c := m.Space.Random(rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PerfMultiplier(c, app)
	}
}

func BenchmarkCrashOutcome(b *testing.B) {
	m := NewLinux(DefaultLinuxOptions())
	c := m.Space.Random(rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CrashOutcome(c)
	}
}
