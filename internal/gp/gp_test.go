package gp

import (
	"math"
	"testing"

	"wayfinder/internal/rng"
)

func TestPredictNoData(t *testing.T) {
	g := New(1, 1, 0.01)
	if _, _, err := g.Predict([]float64{0}); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestInterpolatesObservations(t *testing.T) {
	g := New(0.5, 1, 1e-6)
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{1, 3, 2}
	for i := range xs {
		g.Add(xs[i], ys[i])
	}
	for i := range xs {
		mean, std, err := g.Predict(xs[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-ys[i]) > 0.01 {
			t.Fatalf("mean at training point %v = %v, want %v", xs[i], mean, ys[i])
		}
		if std > 0.05 {
			t.Fatalf("std at training point = %v, want ~0", std)
		}
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	g := New(0.3, 1, 1e-4)
	g.Add([]float64{0}, 0)
	g.Add([]float64{0.2}, 0.1)
	_, stdNear, err := g.Predict([]float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	_, stdFar, err := g.Predict([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if stdFar <= stdNear {
		t.Fatalf("stdFar=%v should exceed stdNear=%v", stdFar, stdNear)
	}
	// Far from data the posterior reverts to the prior std.
	if math.Abs(stdFar-1) > 0.05 {
		t.Fatalf("far std = %v, want ~prior 1", stdFar)
	}
}

func TestPosteriorMeanRevertsToDataMean(t *testing.T) {
	g := New(0.1, 1, 1e-4)
	g.Add([]float64{0}, 10)
	g.Add([]float64{0.1}, 12)
	mean, _, err := g.Predict([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-11) > 0.1 {
		t.Fatalf("far-field mean = %v, want data mean 11", mean)
	}
}

func TestLearnsSmoothFunction(t *testing.T) {
	g := New(0.4, 1, 1e-3)
	r := rng.New(1)
	f := func(x float64) float64 { return math.Sin(3 * x) }
	for i := 0; i < 30; i++ {
		x := r.Float64() * 2
		g.Add([]float64{x}, f(x))
	}
	maxErr := 0.0
	for x := 0.1; x < 1.9; x += 0.1 {
		mean, _, err := g.Predict([]float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(mean - f(x)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.15 {
		t.Fatalf("max interpolation error = %v", maxErr)
	}
}

func TestExpectedImprovement(t *testing.T) {
	g := New(0.5, 1, 1e-4)
	g.Add([]float64{0}, 0)
	g.Add([]float64{1}, 1)
	// EI at the incumbent should be near zero; EI in unexplored territory
	// should be positive.
	eiKnown, err := g.ExpectedImprovement([]float64{1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	eiNew, err := g.ExpectedImprovement([]float64{2}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eiNew <= eiKnown {
		t.Fatalf("EI(new)=%v should exceed EI(incumbent)=%v", eiNew, eiKnown)
	}
	if eiKnown < 0 || eiNew < 0 {
		t.Fatal("EI must be non-negative")
	}
}

func TestEIFindsMaximumOf1DFunction(t *testing.T) {
	// Bayesian-optimize f(x) = -(x-0.7)² and check convergence near 0.7.
	g := New(0.2, 1, 1e-4)
	f := func(x float64) float64 { return -(x - 0.7) * (x - 0.7) }
	r := rng.New(2)
	g.Add([]float64{0}, f(0))
	g.Add([]float64{1}, f(1))
	best, bestX := math.Inf(-1), 0.0
	for _, y := range []float64{f(0), f(1)} {
		if y > best {
			best = y
		}
	}
	for iter := 0; iter < 20; iter++ {
		// Candidate grid + jitter.
		bestEI, bestCand := -1.0, 0.0
		for i := 0; i < 50; i++ {
			x := r.Float64()
			ei, err := g.ExpectedImprovement([]float64{x}, best, 0.001)
			if err != nil {
				t.Fatal(err)
			}
			if ei > bestEI {
				bestEI, bestCand = ei, x
			}
		}
		y := f(bestCand)
		g.Add([]float64{bestCand}, y)
		if y > best {
			best, bestX = y, bestCand
		}
	}
	if math.Abs(bestX-0.7) > 0.05 {
		t.Fatalf("BO converged to %v, want ~0.7", bestX)
	}
}

func TestLogMarginalLikelihoodPrefersGoodFit(t *testing.T) {
	r := rng.New(3)
	xs := make([][]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		x := r.Float64() * 2
		xs[i] = []float64{x}
		ys[i] = math.Sin(3 * x)
	}
	good := New(0.4, 1, 1e-2)
	bad := New(1e-3, 1, 1e-2) // absurdly short length scale
	for i := range xs {
		good.Add(xs[i], ys[i])
		bad.Add(xs[i], ys[i])
	}
	llGood, err := good.LogMarginalLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	llBad, err := bad.LogMarginalLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if llGood <= llBad {
		t.Fatalf("good model LL %v should beat degenerate %v", llGood, llBad)
	}
}

func TestRefitOnAdd(t *testing.T) {
	g := New(0.5, 1, 1e-4)
	g.Add([]float64{0}, 0)
	m1, _, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	g.Add([]float64{0.5}, 5)
	m2, _, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2-5) > 0.1 {
		t.Fatalf("model did not refit after Add: %v -> %v", m1, m2)
	}
}

func TestDuplicatePointsNumericallyStable(t *testing.T) {
	g := New(0.5, 1, 1e-8)
	for i := 0; i < 5; i++ {
		g.Add([]float64{0.3}, 1.0)
	}
	mean, _, err := g.Predict([]float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("duplicate-point prediction = %v", mean)
	}
}

// BenchmarkGPRefit demonstrates the O(n³) refit cost that limits Bayesian
// optimization on large histories (the paper's scalability argument).
func BenchmarkGPRefit(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		b.Run(map[int]string{50: "n50", 100: "n100", 200: "n200"}[n], func(b *testing.B) {
			r := rng.New(1)
			g := New(0.5, 1, 1e-3)
			for i := 0; i < n; i++ {
				g.Add([]float64{r.Float64(), r.Float64()}, r.Float64())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.dirty = true
				if _, _, err := g.Predict([]float64{0.5, 0.5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
