package gp

import (
	"math"
	"testing"

	"wayfinder/internal/rng"
)

func TestPredictNoData(t *testing.T) {
	g := New(1, 1, 0.01)
	if _, _, err := g.Predict([]float64{0}); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestInterpolatesObservations(t *testing.T) {
	g := New(0.5, 1, 1e-6)
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{1, 3, 2}
	for i := range xs {
		g.Add(xs[i], ys[i])
	}
	for i := range xs {
		mean, std, err := g.Predict(xs[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-ys[i]) > 0.01 {
			t.Fatalf("mean at training point %v = %v, want %v", xs[i], mean, ys[i])
		}
		if std > 0.05 {
			t.Fatalf("std at training point = %v, want ~0", std)
		}
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	g := New(0.3, 1, 1e-4)
	g.Add([]float64{0}, 0)
	g.Add([]float64{0.2}, 0.1)
	_, stdNear, err := g.Predict([]float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	_, stdFar, err := g.Predict([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if stdFar <= stdNear {
		t.Fatalf("stdFar=%v should exceed stdNear=%v", stdFar, stdNear)
	}
	// Far from data the posterior reverts to the prior std.
	if math.Abs(stdFar-1) > 0.05 {
		t.Fatalf("far std = %v, want ~prior 1", stdFar)
	}
}

func TestPosteriorMeanRevertsToDataMean(t *testing.T) {
	g := New(0.1, 1, 1e-4)
	g.Add([]float64{0}, 10)
	g.Add([]float64{0.1}, 12)
	mean, _, err := g.Predict([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-11) > 0.1 {
		t.Fatalf("far-field mean = %v, want data mean 11", mean)
	}
}

func TestLearnsSmoothFunction(t *testing.T) {
	g := New(0.4, 1, 1e-3)
	r := rng.New(1)
	f := func(x float64) float64 { return math.Sin(3 * x) }
	for i := 0; i < 30; i++ {
		x := r.Float64() * 2
		g.Add([]float64{x}, f(x))
	}
	maxErr := 0.0
	for x := 0.1; x < 1.9; x += 0.1 {
		mean, _, err := g.Predict([]float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(mean - f(x)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.15 {
		t.Fatalf("max interpolation error = %v", maxErr)
	}
}

func TestExpectedImprovement(t *testing.T) {
	g := New(0.5, 1, 1e-4)
	g.Add([]float64{0}, 0)
	g.Add([]float64{1}, 1)
	// EI at the incumbent should be near zero; EI in unexplored territory
	// should be positive.
	eiKnown, err := g.ExpectedImprovement([]float64{1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	eiNew, err := g.ExpectedImprovement([]float64{2}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eiNew <= eiKnown {
		t.Fatalf("EI(new)=%v should exceed EI(incumbent)=%v", eiNew, eiKnown)
	}
	if eiKnown < 0 || eiNew < 0 {
		t.Fatal("EI must be non-negative")
	}
}

func TestEIFindsMaximumOf1DFunction(t *testing.T) {
	// Bayesian-optimize f(x) = -(x-0.7)² and check convergence near 0.7.
	g := New(0.2, 1, 1e-4)
	f := func(x float64) float64 { return -(x - 0.7) * (x - 0.7) }
	r := rng.New(2)
	g.Add([]float64{0}, f(0))
	g.Add([]float64{1}, f(1))
	best, bestX := math.Inf(-1), 0.0
	for _, y := range []float64{f(0), f(1)} {
		if y > best {
			best = y
		}
	}
	for iter := 0; iter < 20; iter++ {
		// Candidate grid + jitter.
		bestEI, bestCand := -1.0, 0.0
		for i := 0; i < 50; i++ {
			x := r.Float64()
			ei, err := g.ExpectedImprovement([]float64{x}, best, 0.001)
			if err != nil {
				t.Fatal(err)
			}
			if ei > bestEI {
				bestEI, bestCand = ei, x
			}
		}
		y := f(bestCand)
		g.Add([]float64{bestCand}, y)
		if y > best {
			best, bestX = y, bestCand
		}
	}
	if math.Abs(bestX-0.7) > 0.05 {
		t.Fatalf("BO converged to %v, want ~0.7", bestX)
	}
}

func TestLogMarginalLikelihoodPrefersGoodFit(t *testing.T) {
	r := rng.New(3)
	xs := make([][]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		x := r.Float64() * 2
		xs[i] = []float64{x}
		ys[i] = math.Sin(3 * x)
	}
	good := New(0.4, 1, 1e-2)
	bad := New(1e-3, 1, 1e-2) // absurdly short length scale
	for i := range xs {
		good.Add(xs[i], ys[i])
		bad.Add(xs[i], ys[i])
	}
	llGood, err := good.LogMarginalLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	llBad, err := bad.LogMarginalLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if llGood <= llBad {
		t.Fatalf("good model LL %v should beat degenerate %v", llGood, llBad)
	}
}

func TestRefitOnAdd(t *testing.T) {
	g := New(0.5, 1, 1e-4)
	g.Add([]float64{0}, 0)
	m1, _, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	g.Add([]float64{0.5}, 5)
	m2, _, err := g.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2-5) > 0.1 {
		t.Fatalf("model did not refit after Add: %v -> %v", m1, m2)
	}
}

func TestDuplicatePointsNumericallyStable(t *testing.T) {
	g := New(0.5, 1, 1e-8)
	for i := 0; i < 5; i++ {
		g.Add([]float64{0.3}, 1.0)
	}
	mean, _, err := g.Predict([]float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("duplicate-point prediction = %v", mean)
	}
}

// BenchmarkGPRefit demonstrates the O(n³) refit cost that limits Bayesian
// optimization on large histories (the paper's scalability argument) —
// kernel evaluations included, so the factor and the kernel-row cache are
// both invalidated each iteration.
func BenchmarkGPRefit(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		b.Run(map[int]string{50: "n50", 100: "n100", 200: "n200"}[n], func(b *testing.B) {
			r := rng.New(1)
			g := New(0.5, 1, 1e-3)
			for i := 0; i < n; i++ {
				g.Add([]float64{r.Float64(), r.Float64()}, r.Float64())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.kRows = g.kRows[:0]
				g.fitted = 0
				if err := g.refit(); err != nil {
					b.Fatal(err)
				}
				if _, _, err := g.Predict([]float64{0.5, 0.5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// newPair returns two GPs with identical hyperparameters: one incremental
// (the default), one forced to refactorize from scratch on every update —
// the reference the incremental layer must numerically match.
func newPair(lengthScale, signalVar, noiseVar float64) (inc, ref *GP) {
	inc = New(lengthScale, signalVar, noiseVar)
	ref = New(lengthScale, signalVar, noiseVar)
	ref.SetForceRefit(true)
	return inc, ref
}

// closeTo is the acceptance tolerance: within 1e-9, absolute-plus-relative.
func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// TestIncrementalMatchesRefit is the core property of the incremental
// surrogate layer: across randomized add sequences — long enough to cross
// the periodic-refactorization interval several times — the incremental
// predictions must match from-scratch-refit predictions within 1e-9 at
// every step.
func TestIncrementalMatchesRefit(t *testing.T) {
	for _, tc := range []struct {
		name           string
		dim            int
		noise          float64
		adds           int
		duplicateEvery int // re-add an earlier point every k adds (0 = never)
	}{
		{"d2-clean", 2, 1e-3, 150, 0},
		{"d4-clean", 4, 1e-3, 90, 0},
		{"d3-tiny-noise-duplicates", 3, 1e-8, 80, 7},
		{"d1-dense", 1, 1e-4, 120, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(42)
			inc, ref := newPair(0.5, 1, tc.noise)
			probes := make([][]float64, 8)
			for i := range probes {
				probes[i] = make([]float64, tc.dim)
				for d := range probes[i] {
					probes[i][d] = r.Float64() * 2
				}
			}
			var history [][]float64
			for step := 0; step < tc.adds; step++ {
				var x []float64
				if tc.duplicateEvery > 0 && step > 0 && step%tc.duplicateEvery == 0 {
					x = history[r.Intn(len(history))]
				} else {
					x = make([]float64, tc.dim)
					for d := range x {
						x[d] = r.Float64() * 2
					}
				}
				history = append(history, x)
				y := math.Sin(3*x[0]) + 0.1*r.Normal(0, 1)
				inc.Add(x, y)
				ref.Add(x, y)
				for _, p := range probes {
					mi, si, err := inc.Predict(p)
					if err != nil {
						t.Fatalf("step %d: incremental predict: %v", step, err)
					}
					mr, sr, err := ref.Predict(p)
					if err != nil {
						t.Fatalf("step %d: refit predict: %v", step, err)
					}
					if !closeTo(mi, mr) || !closeTo(si, sr) {
						t.Fatalf("step %d: incremental (%.15g, %.15g) vs refit (%.15g, %.15g)",
							step, mi, si, mr, sr)
					}
				}
			}
		})
	}
}

// TestIncrementalJitterRescue drives both paths through the numerical
// rescue: with zero observation noise, a second observation at an
// effectively identical location makes the kernel matrix exactly singular
// (the kernel of two points 1e-12 apart rounds to σ_f² in float64), so
// the incremental extension fails its pivot, falls back to a full
// refactorization, and both models converge on the same persistent
// jitter. Predictions must keep matching within 1e-9 afterwards.
func TestIncrementalJitterRescue(t *testing.T) {
	inc, ref := newPair(0.5, 1, 0)
	base := []float64{0.3, 0.8}
	twin := []float64{0.3 + 1e-12, 0.8}
	inc.Add(base, 1)
	ref.Add(base, 1)
	inc.Add(twin, 1.2)
	ref.Add(twin, 1.2)
	probe := []float64{0.5, 0.5}
	mi, si, err := inc.Predict(probe)
	if err != nil {
		t.Fatalf("incremental rescue failed: %v", err)
	}
	mr, sr, err := ref.Predict(probe)
	if err != nil {
		t.Fatalf("refit rescue failed: %v", err)
	}
	if inc.jitter == 0 || ref.jitter == 0 {
		t.Fatalf("jitter not engaged: incremental %v, refit %v", inc.jitter, ref.jitter)
	}
	if !closeTo(mi, mr) || !closeTo(si, sr) {
		t.Fatalf("post-rescue predictions diverged: (%v, %v) vs (%v, %v)", mi, si, mr, sr)
	}
	// The rescued models keep absorbing ordinary points consistently.
	r := rng.New(7)
	for i := 0; i < 40; i++ {
		x := []float64{r.Float64(), r.Float64()}
		y := r.Float64()
		inc.Add(x, y)
		ref.Add(x, y)
		mi, si, err := inc.Predict(probe)
		if err != nil {
			t.Fatal(err)
		}
		mr, sr, err := ref.Predict(probe)
		if err != nil {
			t.Fatal(err)
		}
		if !closeTo(mi, mr) || !closeTo(si, sr) {
			t.Fatalf("add %d after rescue: (%v, %v) vs (%v, %v)", i, mi, si, mr, sr)
		}
	}
}

// TestFantasyPushPop pins the copy-on-write frame contract: pushes change
// predictions, pops restore the pre-push posterior exactly (bit-for-bit,
// not within tolerance — the factor truncates, nothing is recomputed).
func TestFantasyPushPop(t *testing.T) {
	g := New(0.5, 1, 1e-3)
	r := rng.New(3)
	for i := 0; i < 20; i++ {
		g.Add([]float64{r.Float64(), r.Float64()}, r.Float64())
	}
	probe := []float64{0.4, 0.6}
	m0, s0, err := g.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.PushFantasy([]float64{0.4, 0.6}, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.PushFantasy([]float64{0.41, 0.61}, 5); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 22 || g.Fantasies() != 2 {
		t.Fatalf("Len/Fantasies = %d/%d, want 22/2", g.Len(), g.Fantasies())
	}
	m2, s2, err := g.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2-m0) < 0.5 {
		t.Fatalf("fantasized observation at y=5 barely moved the posterior mean: %v -> %v", m0, m2)
	}
	if s2 >= s0 {
		t.Fatalf("fantasy at the probe should shrink posterior std: %v -> %v", s0, s2)
	}
	g.PopFantasy()
	g.PopFantasy()
	if g.Len() != 20 || g.Fantasies() != 0 {
		t.Fatalf("Len/Fantasies = %d/%d after pops, want 20/0", g.Len(), g.Fantasies())
	}
	m1, s1, err := g.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m0 || s1 != s0 {
		t.Fatalf("pop did not restore the posterior exactly: (%v, %v) vs (%v, %v)", m1, s1, m0, s0)
	}
	// A real observation during active fantasies pops them first.
	if err := g.PushFantasy([]float64{0.1, 0.1}, 3); err != nil {
		t.Fatal(err)
	}
	g.Add([]float64{0.2, 0.2}, 1)
	if g.Fantasies() != 0 || g.Len() != 21 {
		t.Fatalf("Add left fantasies active: Fantasies=%d Len=%d", g.Fantasies(), g.Len())
	}
}

// TestFantasyOnDuplicatePointClamps exercises the clamped extension: a
// fantasy exactly on an existing training point with zero noise cannot
// fail (it must stay pop-free), it just inflates the pivot.
func TestFantasyOnDuplicatePointClamps(t *testing.T) {
	g := New(0.5, 1, 0)
	g.Add([]float64{0.3}, 1)
	g.Add([]float64{0.9}, 2)
	g.Add([]float64{0.5}, 1.5)
	if _, _, err := g.Predict([]float64{0.4}); err != nil {
		t.Fatal(err)
	}
	m0, s0, _ := g.Predict([]float64{0.7})
	if err := g.PushFantasy([]float64{0.3}, 1); err != nil {
		t.Fatalf("duplicate-point fantasy must clamp, not fail: %v", err)
	}
	if _, _, err := g.Predict([]float64{0.7}); err != nil {
		t.Fatal(err)
	}
	g.PopFantasy()
	m1, s1, _ := g.Predict([]float64{0.7})
	if m1 != m0 || s1 != s0 {
		t.Fatal("pop after clamped fantasy did not restore the posterior")
	}
}

// TestPredictNoAllocsSteadyState is the satellite guarantee behind the
// candidate-scoring hot path: once the model is synced, Predict (and so
// ExpectedImprovement) performs zero allocations.
func TestPredictNoAllocsSteadyState(t *testing.T) {
	g := New(0.5, 1, 1e-3)
	r := rng.New(9)
	for i := 0; i < 64; i++ {
		g.Add([]float64{r.Float64(), r.Float64(), r.Float64()}, r.Float64())
	}
	probe := []float64{0.5, 0.5, 0.5}
	if _, _, err := g.Predict(probe); err != nil { // sync
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := g.Predict(probe); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Predict allocates %.1f objects/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if _, err := g.ExpectedImprovement(probe, 1, 0.01); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ExpectedImprovement allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkGPAddIncrementalInternal measures the package-level session
// cost directly (the repo-level bench_test.go carries the headline
// BenchmarkGPAddIncremental/BenchmarkGPAddRefit pair).
func BenchmarkGPAddIncrementalInternal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := New(0.5, 1, 1e-3)
		r := rng.New(1)
		probe := []float64{0.5, 0.5}
		for j := 0; j < 128; j++ {
			g.Add([]float64{r.Float64(), r.Float64()}, r.Float64())
			if _, _, err := g.Predict(probe); err != nil {
				b.Fatal(err)
			}
		}
	}
}
