// Session checkpointing for the GP surrogate. The factor state cannot be
// rebuilt by simply re-Adding the observations: the incremental layer's
// numerical state (which prefix the last full refactorization covered, how
// many in-place extensions sit on top of it, whether the persistent jitter
// was engaged) depends on the sync cadence of the original session, and a
// from-scratch refit differs from an extended factor in the last bits —
// enough to flip an argmax and fork a resumed session. Instead the
// checkpoint records exactly that numerical state and Restore replays the
// factor's construction: one refactorization over the prefix the live
// session last refactorized, then the same one-row extensions, bit for bit.
package gp

import (
	"fmt"

	"wayfinder/internal/stats"
)

// State is a serializable image of a GP: the observations plus the
// incremental-factor bookkeeping needed to rebuild the Cholesky factor
// exactly as the live session held it.
type State struct {
	// Xs, Ys are the observed inputs and targets, in Add order
	// (fantasized observations are never part of a checkpoint).
	Xs [][]float64 `json:"xs"`
	Ys []float64   `json:"ys"`
	// Fitted is how many observations the factor covered; trailing
	// observations past it were awaiting the next lazy sync.
	Fitted int `json:"fitted"`
	// SinceRefit is how many in-place extensions sat on top of the last
	// full refactorization, so the factor's construction can be replayed:
	// refactorize the first Fitted−SinceRefit rows, extend the rest.
	SinceRefit int `json:"since_refit"`
	// Jitter is the persistent numerical-rescue diagonal.
	Jitter float64 `json:"jitter"`
	// ForceRefit preserves the from-scratch-refit baseline mode.
	ForceRefit bool `json:"force_refit,omitempty"`
	// Window is the sliding-window bound (0 = unbounded history).
	Window int `json:"window,omitempty"`
	// LengthScale and SignalVar are serialized because online adaptation
	// (SetHyperAdapt) can move them off their construction-time values; 0
	// means "keep the restore target's constructor value" so legacy
	// checkpoints restore unchanged.
	LengthScale float64 `json:"length_scale,omitempty"`
	SignalVar   float64 `json:"signal_var,omitempty"`
	// SinceAdapt is the adaptation-cadence position.
	SinceAdapt int `json:"since_adapt,omitempty"`
	// Chol is the packed factor itself, serialized only for windowed
	// models: once a downdate has dropped an observation, the factor's
	// construction history can no longer be replayed from Xs — the dropped
	// rows' kernel values are gone — so the windowed checkpoint carries
	// the numbers instead of the recipe.
	Chol []float64 `json:"chol,omitempty"`
}

// State captures the model's full state. Active fantasy frames are popped
// first: a checkpoint is a real-history boundary, exactly like Add.
func (g *GP) State() *State {
	g.PopAllFantasies()
	st := &State{
		Xs:          make([][]float64, len(g.xs)),
		Ys:          append([]float64(nil), g.ys...),
		Fitted:      g.fitted,
		SinceRefit:  g.sinceRefit,
		Jitter:      g.jitter,
		ForceRefit:  g.forceRefit,
		Window:      g.window,
		LengthScale: g.LengthScale,
		SignalVar:   g.SignalVar,
		SinceAdapt:  g.sinceAdapt,
	}
	for i, x := range g.xs {
		st.Xs[i] = append([]float64(nil), x...)
	}
	if g.window > 0 && g.fitted > 0 {
		st.Chol = g.chol.PackedData()
	}
	return st
}

// RestoreState rebuilds the model from a checkpoint. The hyperparameters
// (length scale, signal variance, noise) come from the receiver — they are
// construction-time constants — and the factor is reconstructed by
// replaying the live session's refactorize-then-extend history, so the
// restored model predicts bit-identically to the one checkpointed.
func (g *GP) RestoreState(st *State) error {
	n := len(st.Xs)
	if len(st.Ys) != n {
		return fmt.Errorf("gp: checkpoint has %d inputs for %d targets", n, len(st.Ys))
	}
	// A windowed checkpoint carries the packed factor directly; its
	// sinceRefit may exceed fitted (downdates count toward the refit
	// cadence without growing the factor), so the replay-path invariant
	// applies only when the factor must be replayed.
	direct := len(st.Chol) > 0
	if st.Fitted < 0 || st.Fitted > n || st.SinceRefit < 0 || (!direct && st.SinceRefit > st.Fitted) {
		return fmt.Errorf("gp: checkpoint factor state fitted=%d sinceRefit=%d over %d observations",
			st.Fitted, st.SinceRefit, n)
	}
	g.xs = make([][]float64, n)
	for i, x := range st.Xs {
		g.xs[i] = append([]float64(nil), x...)
	}
	g.ys = append(g.ys[:0:0], st.Ys...)
	g.kRows = nil
	g.chol = &stats.TriFactor{}
	g.alpha = nil
	g.frames = nil
	g.fitted, g.sinceRefit = 0, 0
	g.jitter = st.Jitter
	g.forceRefit = st.ForceRefit
	g.sinceAdapt = st.SinceAdapt
	if st.Window > 0 {
		g.window = st.Window
	}
	if st.LengthScale > 0 {
		g.LengthScale = st.LengthScale
	}
	if st.SignalVar > 0 {
		g.SignalVar = st.SignalVar
	}
	if st.Fitted == 0 {
		return nil
	}
	if direct {
		if err := g.chol.SetPacked(st.Fitted, st.Chol); err != nil {
			return fmt.Errorf("gp: restoring packed factor: %w", err)
		}
		g.fitted, g.sinceRefit = st.Fitted, st.SinceRefit
		if g.fitted == n {
			return g.refreshWeights()
		}
		return nil
	}
	g.kernelRow(st.Fitted - 1) // rebuild the cached rows the factor covers
	if base := st.Fitted - st.SinceRefit; base > 0 {
		if err := g.chol.FactorFromRows(g.kRows[:base], g.NoiseVar+g.jitter); err != nil {
			return fmt.Errorf("gp: restoring factor base: %w", err)
		}
	}
	for i := st.Fitted - st.SinceRefit; i < st.Fitted; i++ {
		row := g.kRows[i]
		if err := g.chol.Extend(row[:i], row[i]+g.NoiseVar+g.jitter); err != nil {
			return fmt.Errorf("gp: restoring factor extension %d: %w", i, err)
		}
	}
	g.fitted, g.sinceRefit = st.Fitted, st.SinceRefit
	if g.fitted == n {
		// The live model's weights were in sync; rebuild them now, since the
		// next sync will see a fully-covered factor and skip the refresh.
		return g.refreshWeights()
	}
	return nil
}
