package gp

import (
	"math"
	"testing"

	"wayfinder/internal/rng"
)

// drawVec returns a dim-dimensional draw from r.
func drawVec(r *rng.RNG, dim int) []float64 {
	x := make([]float64, dim)
	for i := range x {
		x[i] = r.Float64()
	}
	return x
}

// TestWindowedMatchesSuffixRefit: a windowed model sliding over a stream
// must agree with a from-scratch model trained on just the window's
// observations — the downdates are exact within rotation rounding.
func TestWindowedMatchesSuffixRefit(t *testing.T) {
	const dim, window, stream = 3, 16, 120
	r := rng.New(5)
	g := New(0.5, 1, 1e-3)
	if err := g.SetWindow(window); err != nil {
		t.Fatal(err)
	}
	xs := make([][]float64, 0, stream)
	ys := make([]float64, 0, stream)
	probe := []float64{0.4, 0.6, 0.5}
	for i := 0; i < stream; i++ {
		x := drawVec(r, dim)
		y := math.Sin(3*x[0]) + x[1] - 0.5*x[2] + 0.01*r.Normal(0, 1)
		xs, ys = append(xs, x), append(ys, y)
		g.Add(x, y)
		if _, _, err := g.Predict(probe); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		if g.Len() > window {
			t.Fatalf("add %d: Len = %d exceeds window %d after sync", i, g.Len(), window)
		}
	}
	if g.Len() != window {
		t.Fatalf("Len = %d, want %d", g.Len(), window)
	}
	ref := New(0.5, 1, 1e-3)
	for i := stream - window; i < stream; i++ {
		ref.Add(xs[i], ys[i])
	}
	for trial := 0; trial < 16; trial++ {
		x := drawVec(r, dim)
		m1, s1, err := g.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		m2, s2, err := ref.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m1-m2) > 1e-6 || math.Abs(s1-s2) > 1e-6 {
			t.Fatalf("trial %d: windowed (%v,%v) vs suffix refit (%v,%v)", trial, m1, s1, m2, s2)
		}
	}
}

// TestSetWindowRetrofitsWarmModel: setting a window below the covered
// history drains the factor down to the bound on the next sync.
func TestSetWindowRetrofitsWarmModel(t *testing.T) {
	r := rng.New(6)
	g := New(0.5, 1, 1e-3)
	for i := 0; i < 40; i++ {
		g.Add(drawVec(r, 2), r.Float64())
	}
	if _, _, err := g.Predict([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetWindow(8); err != nil {
		t.Fatal(err)
	}
	g.Add(drawVec(r, 2), r.Float64())
	if _, _, err := g.Predict([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 8 {
		t.Fatalf("Len = %d after retrofit sync, want 8", g.Len())
	}
}

// TestSetWindowGuards: a degenerate window and a mid-fantasy window
// change are explicit errors, not silent NaN factories.
func TestSetWindowGuards(t *testing.T) {
	g := New(0.5, 1, 1e-3)
	if err := g.SetWindow(1); err == nil {
		t.Fatal("window 1 accepted; a sub-2 window must be rejected")
	}
	if err := g.SetWindow(0); err != nil {
		t.Fatalf("window 0 (disable) rejected: %v", err)
	}
	r := rng.New(8)
	for i := 0; i < 5; i++ {
		g.Add(drawVec(r, 2), r.Float64())
	}
	if err := g.PushFantasy(drawVec(r, 2), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := g.SetWindow(4); err == nil {
		t.Fatal("SetWindow with active fantasy frames accepted")
	}
	g.PopAllFantasies()
	if err := g.SetWindow(4); err != nil {
		t.Fatalf("SetWindow after popping fantasies: %v", err)
	}
}

// TestFantasyAcrossWindow: fantasy frames push past the window bound
// without triggering downdates, and pop restores the posterior exactly —
// the constant-liar mechanism stays exact on a windowed model.
func TestFantasyAcrossWindow(t *testing.T) {
	const window = 8
	r := rng.New(9)
	g := New(0.5, 1, 1e-3)
	if err := g.SetWindow(window); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*window; i++ {
		g.Add(drawVec(r, 2), r.Float64())
	}
	probe := []float64{0.3, 0.7}
	m0, s0, err := g.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.PushFantasy(drawVec(r, 2), 0.9); err != nil {
		t.Fatal(err)
	}
	if err := g.PushFantasy(drawVec(r, 2), 0.9); err != nil {
		t.Fatal(err)
	}
	if g.Len() != window+2 {
		t.Fatalf("Len = %d with two fantasies, want %d (fantasies must not downdate)", g.Len(), window+2)
	}
	g.PopFantasy()
	g.PopFantasy()
	m1, s1, err := g.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(m0) != math.Float64bits(m1) || math.Float64bits(s0) != math.Float64bits(s1) {
		t.Fatalf("pop across window did not restore the posterior: (%v,%v) vs (%v,%v)", m0, s0, m1, s1)
	}
}

// TestEIBatchBitIdentical: the batched acquisition must equal the scalar
// loop bit-for-bit, on unbounded and windowed models alike.
func TestEIBatchBitIdentical(t *testing.T) {
	for _, window := range []int{0, 12} {
		r := rng.New(11)
		g := New(0.5, 1, 1e-3)
		if window > 0 {
			if err := g.SetWindow(window); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 48; i++ {
			g.Add(drawVec(r, 3), r.Float64())
		}
		cands := make([][]float64, 96)
		for i := range cands {
			cands[i] = drawVec(r, 3)
		}
		batch := make([]float64, len(cands))
		if err := g.ExpectedImprovementBatch(cands, 0.8, 0.01, batch); err != nil {
			t.Fatal(err)
		}
		for i, c := range cands {
			want, err := g.ExpectedImprovement(c, 0.8, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(batch[i]) != math.Float64bits(want) {
				t.Fatalf("window %d cand %d: batch EI %v != scalar EI %v", window, i, batch[i], want)
			}
		}
	}
}

// TestEIBatchNoAllocsSteadyState: one kernel-matrix build plus one batch
// solve, into caller storage — nothing allocated once scratch has grown.
func TestEIBatchNoAllocsSteadyState(t *testing.T) {
	r := rng.New(13)
	g := New(0.5, 1, 1e-3)
	for i := 0; i < 64; i++ {
		g.Add(drawVec(r, 3), r.Float64())
	}
	cands := make([][]float64, 96)
	for i := range cands {
		cands[i] = drawVec(r, 3)
	}
	out := make([]float64, len(cands))
	if err := g.ExpectedImprovementBatch(cands, 0.8, 0.01, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := g.ExpectedImprovementBatch(cands, 0.8, 0.01, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch EI allocates %.1f objects/op, want 0", allocs)
	}
}

// TestHyperAdaptDeterministicImprovement: the probe adopts new
// hyperparameters only on LML improvement, never worsens the evidence,
// and two identical streams adapt identically.
func TestHyperAdaptDeterministicImprovement(t *testing.T) {
	run := func() *GP {
		r := rng.New(17)
		// Deliberately mis-specified length scale so adaptation has
		// somewhere to go.
		g := New(0.05, 1, 1e-3)
		g.SetHyperAdapt(16)
		for i := 0; i < 64; i++ {
			x := drawVec(r, 2)
			g.Add(x, math.Sin(2*x[0])+x[1])
			if _, _, err := g.Predict([]float64{0.5, 0.5}); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	g1, g2 := run(), run()
	if g1.LengthScale != g2.LengthScale || g1.SignalVar != g2.SignalVar {
		t.Fatalf("identical streams adapted differently: (%v,%v) vs (%v,%v)",
			g1.LengthScale, g1.SignalVar, g2.LengthScale, g2.SignalVar)
	}
	if g1.LengthScale == 0.05 && g1.SignalVar == 1 {
		t.Fatal("mis-specified hypers never adapted over 64 adds with a 16-add cadence")
	}
	// The adopted hypers must score at least as well as the construction
	// ones on the same data.
	adapted, err := g1.LogMarginalLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	baseline := New(0.05, 1, 1e-3)
	for i := range g1.xs {
		baseline.Add(g1.xs[i], g1.ys[i])
	}
	base, err := baseline.LogMarginalLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if adapted < base {
		t.Fatalf("adaptation worsened the evidence: %v < %v", adapted, base)
	}
}

// TestWindowedCheckpointBitIdentical: a windowed (and adapting) model
// restores bit-for-bit from its packed-factor checkpoint and evolves
// identically under further adds — downdates included.
func TestWindowedCheckpointBitIdentical(t *testing.T) {
	const dim, window = 4, 10
	r := rng.New(19)
	g := New(0.35, 1.0, 1e-3)
	if err := g.SetWindow(window); err != nil {
		t.Fatal(err)
	}
	g.SetHyperAdapt(8)
	for i := 0; i < 37; i++ {
		g.Add(drawVec(r, dim), r.Float64())
		if g.Len() >= 3 {
			if _, _, err := g.Predict(drawVec(r, dim)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := g.State()
	if len(st.Chol) == 0 {
		t.Fatal("windowed checkpoint carries no packed factor")
	}
	g2 := New(0.35, 1.0, 1e-3)
	if err := g2.SetWindow(window); err != nil {
		t.Fatal(err)
	}
	g2.SetHyperAdapt(8)
	if err := g2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	probe := rng.New(23)
	for i := 0; i < 2*window; i++ {
		x := drawVec(probe, dim)
		m1, s1, err1 := g.Predict(x)
		m2, s2, err2 := g2.Predict(x)
		if err1 != nil || err2 != nil {
			t.Fatalf("predict %d: %v / %v", i, err1, err2)
		}
		if math.Float64bits(m1) != math.Float64bits(m2) || math.Float64bits(s1) != math.Float64bits(s2) {
			t.Fatalf("probe %d: restored windowed model diverged: (%v,%v) vs (%v,%v)", i, m1, s1, m2, s2)
		}
		y := probe.Float64()
		g.Add(x, y)
		g2.Add(x, y)
	}
	if g.fitted != g2.fitted || g.sinceRefit != g2.sinceRefit || g.sinceAdapt != g2.sinceAdapt ||
		g.LengthScale != g2.LengthScale || g.SignalVar != g2.SignalVar {
		t.Fatalf("windowed bookkeeping diverged: (%d,%d,%d,%g,%g) vs (%d,%d,%d,%g,%g)",
			g.fitted, g.sinceRefit, g.sinceAdapt, g.LengthScale, g.SignalVar,
			g2.fitted, g2.sinceRefit, g2.sinceAdapt, g2.LengthScale, g2.SignalVar)
	}
}
