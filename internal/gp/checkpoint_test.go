package gp

import (
	"math"
	"testing"

	"wayfinder/internal/rng"
)

// TestCheckpointBitIdentical: a restored model must predict bit-for-bit
// like the original, including mid-incremental factor states (extensions
// stacked on a refactorization base) and across the periodic-refit
// boundary.
func TestCheckpointBitIdentical(t *testing.T) {
	r := rng.New(3)
	dim := 6
	draw := func() []float64 {
		x := make([]float64, dim)
		for i := range x {
			x[i] = r.Float64()
		}
		return x
	}
	for _, n := range []int{1, 3, 17, fullRefitEvery + 5} {
		g := New(0.35, 1.0, 1e-3)
		for i := 0; i < n; i++ {
			g.Add(draw(), r.Float64())
			// Interleave predictions so the factor extends incrementally,
			// like a live session's Propose calls force.
			if g.Len() >= 3 {
				if _, _, err := g.Predict(draw()); err != nil {
					t.Fatal(err)
				}
			}
		}
		st := g.State()
		g2 := New(0.35, 1.0, 1e-3)
		if err := g2.RestoreState(st); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Same queries, bit-identical answers — and identical evolution
		// under further adds.
		probe := rng.New(77)
		for i := 0; i < 8; i++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = probe.Float64()
			}
			m1, s1, err1 := g.Predict(x)
			m2, s2, err2 := g2.Predict(x)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("n=%d: error mismatch %v vs %v", n, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if math.Float64bits(m1) != math.Float64bits(m2) || math.Float64bits(s1) != math.Float64bits(s2) {
				t.Fatalf("n=%d probe %d: prediction diverged: (%v,%v) vs (%v,%v)", n, i, m1, s1, m2, s2)
			}
			y := probe.Float64()
			g.Add(x, y)
			g2.Add(x, y)
		}
		if g.fitted != g2.fitted || g.sinceRefit != g2.sinceRefit || g.jitter != g2.jitter {
			t.Fatalf("n=%d: factor bookkeeping diverged: (%d,%d,%g) vs (%d,%d,%g)",
				n, g.fitted, g.sinceRefit, g.jitter, g2.fitted, g2.sinceRefit, g2.jitter)
		}
	}
}

// TestCheckpointRejectsCorruptState: malformed factor bookkeeping fails
// loudly instead of rebuilding something subtly different.
func TestCheckpointRejectsCorruptState(t *testing.T) {
	g := New(0.35, 1.0, 1e-3)
	bad := []*State{
		{Xs: [][]float64{{1}}, Ys: []float64{1, 2}},                        // length mismatch
		{Xs: [][]float64{{1}}, Ys: []float64{1}, Fitted: 2},                // fitted > n
		{Xs: [][]float64{{1}}, Ys: []float64{1}, Fitted: 1, SinceRefit: 2}, // sinceRefit > fitted
		{Xs: [][]float64{{1}}, Ys: []float64{1}, Fitted: -1},               // negative
	}
	for i, st := range bad {
		if err := g.RestoreState(st); err == nil {
			t.Fatalf("corrupt state %d accepted", i)
		}
	}
}
