// Package gp implements Gaussian-process regression with an RBF kernel and
// the Expected Improvement acquisition function — the Bayesian-optimization
// baseline the paper compares DeepTune against (§2.3, §4.4).
//
// The implementation is deliberately the textbook one: the kernel matrix is
// refit with an O(n³) Cholesky factorization every time a point is added,
// and prediction is O(n) per candidate after an O(n²) solve. Those costs
// are not an implementation accident — they are the scalability ceiling the
// paper measures (Gaussian processes "typically have a computational
// complexity of O(n³), and O(n²) for memory"), and the reason Bayesian
// optimization is only competitive on small spaces like Unikraft's (Fig 9).
package gp

import (
	"errors"
	"math"

	"wayfinder/internal/stats"
)

// GP is a Gaussian-process regressor over fixed-length feature vectors.
type GP struct {
	// LengthScale is the RBF kernel length scale ℓ.
	LengthScale float64
	// SignalVar is the kernel signal variance σ_f².
	SignalVar float64
	// NoiseVar is the observation noise σ_n² added to the diagonal.
	NoiseVar float64

	xs    [][]float64
	ys    []float64
	yMean float64

	chol  *stats.Matrix // Cholesky factor of K + σ_n² I
	alpha []float64     // (K+σ_n²I)⁻¹ (y − mean)
	dirty bool
}

// New returns a GP with the given hyperparameters.
func New(lengthScale, signalVar, noiseVar float64) *GP {
	return &GP{LengthScale: lengthScale, SignalVar: signalVar, NoiseVar: noiseVar}
}

// Len returns the number of observations.
func (g *GP) Len() int { return len(g.xs) }

// Add appends an observation. The model is refit lazily on the next
// prediction (a full O(n³) refactorization — see the package comment).
func (g *GP) Add(x []float64, y float64) {
	g.xs = append(g.xs, append([]float64(nil), x...))
	g.ys = append(g.ys, y)
	g.dirty = true
}

func (g *GP) kernel(a, b []float64) float64 {
	d2 := stats.SquaredDistance(a, b)
	return g.SignalVar * math.Exp(-d2/(2*g.LengthScale*g.LengthScale))
}

// ErrNoData is returned when predicting from an empty model.
var ErrNoData = errors.New("gp: no observations")

// fit factorizes the kernel matrix. Called automatically when dirty.
func (g *GP) fit() error {
	n := len(g.xs)
	if n == 0 {
		return ErrNoData
	}
	g.yMean = stats.Mean(g.ys)
	k := stats.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel(g.xs[i], g.xs[j])
			if i == j {
				v += g.NoiseVar
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	chol, err := stats.Cholesky(k)
	if err != nil {
		// Numerical rescue: add jitter and retry once.
		for i := 0; i < n; i++ {
			k.Set(i, i, k.At(i, i)+1e-6*g.SignalVar)
		}
		chol, err = stats.Cholesky(k)
		if err != nil {
			return err
		}
	}
	centered := make([]float64, n)
	for i, y := range g.ys {
		centered[i] = y - g.yMean
	}
	g.chol = chol
	g.alpha = stats.SolveCholesky(chol, centered)
	g.dirty = false
	return nil
}

// Predict returns the posterior mean and standard deviation at x.
func (g *GP) Predict(x []float64) (mean, std float64, err error) {
	if g.dirty || g.chol == nil {
		if err := g.fit(); err != nil {
			return 0, 0, err
		}
	}
	n := len(g.xs)
	kStar := make([]float64, n)
	for i := range g.xs {
		kStar[i] = g.kernel(x, g.xs[i])
	}
	mean = g.yMean
	for i := range kStar {
		mean += kStar[i] * g.alpha[i]
	}
	// Variance: k(x,x) − k*ᵀ (K+σ²I)⁻¹ k*, via v = L⁻¹ k*.
	v := forwardSolve(g.chol, kStar)
	variance := g.kernel(x, x)
	for _, vi := range v {
		variance -= vi * vi
	}
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance), nil
}

// forwardSolve solves L v = b for lower-triangular L.
func forwardSolve(l *stats.Matrix, b []float64) []float64 {
	n := l.Rows
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * v[k]
		}
		v[i] = sum / l.At(i, i)
	}
	return v
}

// ExpectedImprovement returns EI(x) for maximization over the incumbent
// best observed value, with exploration jitter xi.
func (g *GP) ExpectedImprovement(x []float64, best, xi float64) (float64, error) {
	mean, std, err := g.Predict(x)
	if err != nil {
		return 0, err
	}
	if std < 1e-12 {
		if mean > best+xi {
			return mean - best - xi, nil
		}
		return 0, nil
	}
	z := (mean - best - xi) / std
	return (mean-best-xi)*stdNormCDF(z) + std*stdNormPDF(z), nil
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// LogMarginalLikelihood returns the log evidence of the fitted model, used
// by tests and by hyperparameter selection.
func (g *GP) LogMarginalLikelihood() (float64, error) {
	if g.dirty || g.chol == nil {
		if err := g.fit(); err != nil {
			return 0, err
		}
	}
	n := len(g.xs)
	ll := 0.0
	for i := 0; i < n; i++ {
		ll -= math.Log(g.chol.At(i, i))
	}
	for i := 0; i < n; i++ {
		ll -= 0.5 * (g.ys[i] - g.yMean) * g.alpha[i]
	}
	ll -= 0.5 * float64(n) * math.Log(2*math.Pi)
	return ll, nil
}
