// Package gp implements Gaussian-process regression with an RBF kernel and
// the Expected Improvement acquisition function — the Bayesian-optimization
// baseline the paper compares DeepTune against (§2.3, §4.4).
//
// The asymptotics are the ones the paper models: Gaussian processes
// "typically have a computational complexity of O(n³), and O(n²) for
// memory", which is why Bayesian optimization is only competitive on small
// spaces like Unikraft's (Fig 9). What this implementation avoids is being
// gratuitously *worse* than that bound. The model is maintained
// incrementally:
//
//   - Adding an observation extends the packed Cholesky factor in place
//     (stats.TriFactor.Extend): one O(n²) forward solve instead of the
//     O(n³) from-scratch refactorization a naive implementation pays per
//     Add — which would make a T-observation session Θ(T⁴) instead of the
//     Θ(T³) the paper's Fig 8 decision-cost accounting assumes.
//   - Kernel rows are computed once per observation and cached, so the
//     periodic full refactorization (every fullRefitEvery incremental
//     extensions, for numerical hygiene) redoes only the O(n³) arithmetic,
//     not the O(n²·d) kernel evaluations.
//   - Predict and ExpectedImprovement reuse scratch buffers; the
//     steady-state candidate-scoring path allocates nothing.
//   - A copy-on-write "fantasy frame" (PushFantasy/PopFantasy) adds a
//     speculative observation in O(n²) and removes it for free — the
//     mechanism that makes constant-liar batch proposal affordable.
//
// Jitter policy: when a factorization (full or incremental) fails, a
// diagonal jitter of 1e-6·σ_f² is added and retained for the rest of the
// model's life, so the incremental factor and a from-scratch refit stay
// numerically interchangeable after the rescue.
package gp

import (
	"errors"
	"math"

	"wayfinder/internal/stats"
)

// fullRefitEvery bounds how many incremental extensions may stack before a
// full refactorization re-anchors the factor (numerical hygiene: forward-
// solve rounding accumulates linearly in the number of extensions).
const fullRefitEvery = 64

// GP is a Gaussian-process regressor over fixed-length feature vectors.
type GP struct {
	// LengthScale is the RBF kernel length scale ℓ.
	LengthScale float64
	// SignalVar is the kernel signal variance σ_f².
	SignalVar float64
	// NoiseVar is the observation noise σ_n² added to the diagonal.
	NoiseVar float64

	xs    [][]float64
	ys    []float64
	yMean float64

	// kRows caches the raw kernel rows: kRows[i][j] = k(xᵢ, xⱼ) for j ≤ i,
	// noise- and jitter-free so refactorizations can re-derive the
	// effective diagonal under a changed jitter.
	kRows [][]float64

	chol   *stats.TriFactor // packed Cholesky factor of K + (σ_n²+jitter) I
	alpha  []float64        // (K+σ_n²I)⁻¹ (y − mean)
	fitted int              // observations the factor currently covers
	// sinceRefit counts incremental extensions since the last full
	// refactorization; at fullRefitEvery the next sync refactorizes.
	sinceRefit int
	// jitter is the persistent numerical-rescue diagonal (0 until a
	// factorization fails, 1e-6·σ_f² afterwards).
	jitter float64
	// forceRefit disables the incremental path entirely — every sync is a
	// from-scratch refactorization. The before/after baseline for the
	// searcherscale experiment and the BenchmarkGPAddRefit benchmark.
	forceRefit bool

	// frames is the stack of active fantasized observations.
	frames []fantasyFrame

	// Reusable scratch (Predict/solve paths are allocation-free once the
	// buffers have grown to the model size).
	kStar, v, centered []float64
}

// fantasyFrame is the copy-on-write state one PushFantasy saves: the
// pre-push alpha (the solve writes a fresh slice while frames are active,
// so the saved one stays valid) and the pre-push target mean.
type fantasyFrame struct {
	alpha []float64
	yMean float64
}

// New returns a GP with the given hyperparameters.
func New(lengthScale, signalVar, noiseVar float64) *GP {
	return &GP{LengthScale: lengthScale, SignalVar: signalVar, NoiseVar: noiseVar, chol: &stats.TriFactor{}}
}

// SetForceRefit toggles full-refactorization mode: when on, every model
// update rebuilds the factor from scratch — the Θ(T⁴)-per-session behavior
// the incremental layer replaces, kept as the measurable baseline.
func (g *GP) SetForceRefit(on bool) { g.forceRefit = on }

// Len returns the number of observations (fantasized ones included while
// their frames are active).
func (g *GP) Len() int { return len(g.xs) }

// Fantasies returns the number of active fantasized observations.
func (g *GP) Fantasies() int { return len(g.frames) }

// Add appends an observation. The model is updated lazily on the next
// prediction — an O(n²) incremental factor extension (see the package
// comment). Any active fantasy frames are popped first: a real
// observation invalidates speculation.
func (g *GP) Add(x []float64, y float64) {
	g.PopAllFantasies()
	g.xs = append(g.xs, append([]float64(nil), x...))
	g.ys = append(g.ys, y)
}

func (g *GP) kernel(a, b []float64) float64 {
	d2 := stats.SquaredDistance(a, b)
	return g.SignalVar * math.Exp(-d2/(2*g.LengthScale*g.LengthScale))
}

// kernelRow returns (computing and caching on first use) the kernel row of
// observation i against observations 0..i.
func (g *GP) kernelRow(i int) []float64 {
	for len(g.kRows) <= i {
		n := len(g.kRows)
		row := make([]float64, n+1)
		for j := 0; j <= n; j++ {
			row[j] = g.kernel(g.xs[n], g.xs[j])
		}
		g.kRows = append(g.kRows, row)
	}
	return g.kRows[i]
}

// ErrNoData is returned when predicting from an empty model.
var ErrNoData = errors.New("gp: no observations")

// sync brings the factor and weights up to date with the observation list:
// incremental extensions for the common one-observation delta, a full
// refactorization when forced, overdue for hygiene, or rescued after a
// failed extension.
func (g *GP) sync() error {
	n := len(g.xs)
	if n == 0 {
		return ErrNoData
	}
	if g.chol != nil && g.chol.Len() == n && g.fitted == n {
		return nil
	}
	if g.chol == nil {
		g.chol = &stats.TriFactor{}
	}
	if g.forceRefit || g.chol.Len() != g.fitted || g.sinceRefit+(n-g.fitted) > fullRefitEvery {
		return g.refit()
	}
	for g.fitted < n {
		i := g.fitted
		row := g.kernelRow(i)
		if err := g.chol.Extend(row[:i], row[i]+g.NoiseVar+g.jitter); err != nil {
			// Numerical rescue: refactorize from scratch (adding jitter if
			// this model has not needed it before).
			return g.refit()
		}
		g.fitted++
		g.sinceRefit++
	}
	return g.refreshWeights()
}

// refit rebuilds the factor from the cached kernel rows — O(n³) arithmetic
// but no kernel evaluations — escalating to the persistent jitter on the
// first failure.
func (g *GP) refit() error {
	n := len(g.xs)
	g.kernelRow(n - 1) // ensure rows 0..n-1 are cached
	err := g.chol.FactorFromRows(g.kRows[:n], g.NoiseVar+g.jitter)
	if err != nil && g.jitter == 0 { //wfvet:ignore floateq jitter is only ever assigned exactly 0 or the escalated constant
		g.jitter = 1e-6 * g.SignalVar
		err = g.chol.FactorFromRows(g.kRows[:n], g.NoiseVar+g.jitter)
	}
	if err != nil {
		g.fitted = 0
		return err
	}
	g.fitted, g.sinceRefit = n, 0
	return g.refreshWeights()
}

// refreshWeights recomputes the target mean and alpha = (K+σ²I)⁻¹(y−mean)
// from the current factor — two O(n²) triangular solves.
func (g *GP) refreshWeights() error {
	n := len(g.xs)
	g.yMean = stats.Mean(g.ys)
	g.centered = resize(g.centered, n)
	for i, y := range g.ys {
		g.centered[i] = y - g.yMean
	}
	// While fantasy frames are active the saved alphas must survive, so
	// the solve writes a fresh slice; otherwise the buffer is reused.
	if len(g.frames) > 0 || cap(g.alpha) < n {
		g.alpha = make([]float64, n)
	}
	g.alpha = g.alpha[:n]
	g.chol.Solve(g.centered, g.alpha)
	return nil
}

// resize returns buf with length n, reallocating only on growth.
func resize(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// PushFantasy appends a speculative observation — the constant-liar
// mechanism batch proposal uses to make later slots condition on earlier
// picks. The factor is extended in place in O(n²); popping restores the
// exact pre-push state. A non-positive pivot is clamped rather than
// rescued by refactorization (a rebuild would make the pop inexact), so
// the push always succeeds once the model itself is syncable.
func (g *GP) PushFantasy(x []float64, y float64) error {
	if err := g.sync(); err != nil {
		return err
	}
	i := len(g.xs)
	g.xs = append(g.xs, append([]float64(nil), x...))
	g.ys = append(g.ys, y)
	row := g.kernelRow(i)
	g.chol.ExtendClamped(row[:i], row[i]+g.NoiseVar+g.jitter, g.NoiseVar+1e-6*g.SignalVar)
	g.fitted++
	g.frames = append(g.frames, fantasyFrame{alpha: g.alpha, yMean: g.yMean})
	return g.refreshWeights()
}

// PopFantasy removes the most recent fantasized observation in O(1): the
// factor truncates (extensions never rewrite earlier rows) and the saved
// weights are restored.
func (g *GP) PopFantasy() {
	if len(g.frames) == 0 {
		return
	}
	f := g.frames[len(g.frames)-1]
	g.frames = g.frames[:len(g.frames)-1]
	n := len(g.xs) - 1
	g.xs = g.xs[:n]
	g.ys = g.ys[:n]
	g.kRows = g.kRows[:n]
	g.chol.Truncate(n)
	g.fitted = n
	g.alpha, g.yMean = f.alpha, f.yMean
}

// PopAllFantasies unwinds every active fantasy frame.
func (g *GP) PopAllFantasies() {
	for len(g.frames) > 0 {
		g.PopFantasy()
	}
}

// Predict returns the posterior mean and standard deviation at x. The
// steady-state path (model already synced) performs no allocations.
func (g *GP) Predict(x []float64) (mean, std float64, err error) {
	if err := g.sync(); err != nil {
		return 0, 0, err
	}
	n := len(g.xs)
	g.kStar = resize(g.kStar, n)
	for i := range g.xs {
		g.kStar[i] = g.kernel(x, g.xs[i])
	}
	mean = g.yMean
	for i, k := range g.kStar {
		mean += k * g.alpha[i]
	}
	// Variance: k(x,x) − k*ᵀ (K+σ²I)⁻¹ k*, via v = L⁻¹ k*.
	g.v = resize(g.v, n)
	g.chol.ForwardSolve(g.kStar, g.v)
	variance := g.kernel(x, x)
	for _, vi := range g.v {
		variance -= vi * vi
	}
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance), nil
}

// ExpectedImprovement returns EI(x) for maximization over the incumbent
// best observed value, with exploration jitter xi.
func (g *GP) ExpectedImprovement(x []float64, best, xi float64) (float64, error) {
	mean, std, err := g.Predict(x)
	if err != nil {
		return 0, err
	}
	if std < 1e-12 {
		if mean > best+xi {
			return mean - best - xi, nil
		}
		return 0, nil
	}
	z := (mean - best - xi) / std
	return (mean-best-xi)*stdNormCDF(z) + std*stdNormPDF(z), nil
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// LogMarginalLikelihood returns the log evidence of the fitted model, used
// by tests and by hyperparameter selection.
func (g *GP) LogMarginalLikelihood() (float64, error) {
	if err := g.sync(); err != nil {
		return 0, err
	}
	n := len(g.xs)
	ll := 0.0
	for i := 0; i < n; i++ {
		ll -= math.Log(g.chol.At(i, i))
	}
	for i := 0; i < n; i++ {
		ll -= 0.5 * (g.ys[i] - g.yMean) * g.alpha[i]
	}
	ll -= 0.5 * float64(n) * math.Log(2*math.Pi)
	return ll, nil
}
