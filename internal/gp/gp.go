// Package gp implements Gaussian-process regression with an RBF kernel and
// the Expected Improvement acquisition function — the Bayesian-optimization
// baseline the paper compares DeepTune against (§2.3, §4.4).
//
// The asymptotics are the ones the paper models: Gaussian processes
// "typically have a computational complexity of O(n³), and O(n²) for
// memory", which is why Bayesian optimization is only competitive on small
// spaces like Unikraft's (Fig 9). What this implementation avoids is being
// gratuitously *worse* than that bound. The model is maintained
// incrementally:
//
//   - Adding an observation extends the packed Cholesky factor in place
//     (stats.TriFactor.Extend): one O(n²) forward solve instead of the
//     O(n³) from-scratch refactorization a naive implementation pays per
//     Add — which would make a T-observation session Θ(T⁴) instead of the
//     Θ(T³) the paper's Fig 8 decision-cost accounting assumes.
//   - Kernel rows are computed once per observation and cached, so the
//     periodic full refactorization (every fullRefitEvery incremental
//     extensions, for numerical hygiene) redoes only the O(n³) arithmetic,
//     not the O(n²·d) kernel evaluations.
//   - Predict and ExpectedImprovement reuse scratch buffers; the
//     steady-state candidate-scoring path allocates nothing.
//   - A copy-on-write "fantasy frame" (PushFantasy/PopFantasy) adds a
//     speculative observation in O(n²) and removes it for free — the
//     mechanism that makes constant-liar batch proposal affordable.
//
// Jitter policy: when a factorization (full or incremental) fails, a
// diagonal jitter of 1e-6·σ_f² is added and retained for the rest of the
// model's life, so the incremental factor and a from-scratch refit stay
// numerically interchangeable after the rescue.
package gp

import (
	"errors"
	"fmt"
	"math"

	"wayfinder/internal/stats"
)

// fullRefitEvery bounds how many incremental extensions may stack before a
// full refactorization re-anchors the factor (numerical hygiene: forward-
// solve rounding accumulates linearly in the number of extensions).
const fullRefitEvery = 64

// GP is a Gaussian-process regressor over fixed-length feature vectors.
type GP struct {
	// LengthScale is the RBF kernel length scale ℓ.
	LengthScale float64
	// SignalVar is the kernel signal variance σ_f².
	SignalVar float64
	// NoiseVar is the observation noise σ_n² added to the diagonal.
	NoiseVar float64

	xs    [][]float64
	ys    []float64
	yMean float64

	// kRows caches the raw kernel rows: kRows[i][j] = k(xᵢ, xⱼ) for j ≤ i,
	// noise- and jitter-free so refactorizations can re-derive the
	// effective diagonal under a changed jitter.
	kRows [][]float64

	chol   *stats.TriFactor // packed Cholesky factor of K + (σ_n²+jitter) I
	alpha  []float64        // (K+σ_n²I)⁻¹ (y − mean)
	fitted int              // observations the factor currently covers
	// sinceRefit counts incremental extensions since the last full
	// refactorization; at fullRefitEvery the next sync refactorizes.
	sinceRefit int
	// jitter is the persistent numerical-rescue diagonal (0 until a
	// factorization fails, 1e-6·σ_f² afterwards).
	jitter float64
	// forceRefit disables the incremental path entirely — every sync is a
	// from-scratch refactorization. The before/after baseline for the
	// searcherscale experiment and the BenchmarkGPAddRefit benchmark.
	forceRefit bool

	// window, when positive, bounds the observation history: once the
	// factor covers more than window rows, each sync downdates the oldest
	// one away (stats.TriFactor.Downdate, O(n²)), so memory and per-add
	// cost stay constant over an unbounded observation stream.
	window int
	// hyperEvery, when positive, grid-probes a small (LengthScale,
	// SignalVar) neighborhood every hyperEvery adds and refits on log-
	// marginal-likelihood improvement — deterministic online adaptation.
	hyperEvery int
	// sinceAdapt counts adds since the last hyperparameter probe.
	sinceAdapt int

	// frames is the stack of active fantasized observations.
	frames []fantasyFrame

	// Reusable scratch (Predict/solve paths are allocation-free once the
	// buffers have grown to the model size).
	kStar, v, centered []float64
	// kStarB, vB are the batch-acquisition scratch matrices (n×m row-major),
	// regrown on demand like the scalar scratch.
	kStarB, vB []float64
}

// fantasyFrame is the copy-on-write state one PushFantasy saves: the
// pre-push alpha (the solve writes a fresh slice while frames are active,
// so the saved one stays valid) and the pre-push target mean.
type fantasyFrame struct {
	alpha []float64
	yMean float64
}

// New returns a GP with the given hyperparameters.
func New(lengthScale, signalVar, noiseVar float64) *GP {
	return &GP{LengthScale: lengthScale, SignalVar: signalVar, NoiseVar: noiseVar, chol: &stats.TriFactor{}}
}

// SetForceRefit toggles full-refactorization mode: when on, every model
// update rebuilds the factor from scratch — the Θ(T⁴)-per-session behavior
// the incremental layer replaces, kept as the measurable baseline.
func (g *GP) SetForceRefit(on bool) { g.forceRefit = on }

// SetWindow bounds the observation history to the latest n observations
// (0 disables the bound). A window below 2 would make the posterior
// degenerate — Predict needs at least a pair to say anything — so it is
// rejected, as is changing the window while fantasy frames are active
// (the frames' pop bookkeeping assumes a stable history boundary).
func (g *GP) SetWindow(n int) error {
	if len(g.frames) > 0 {
		return errors.New("gp: SetWindow with active fantasy frames")
	}
	if n != 0 && n < 2 {
		return fmt.Errorf("gp: window %d is below the 2-observation minimum (0 disables)", n)
	}
	g.window = n
	return nil
}

// Window returns the sliding-window bound (0 = unbounded).
func (g *GP) Window() int { return g.window }

// SetHyperAdapt enables online hyperparameter adaptation: every `every`
// adds, a small (LengthScale, SignalVar) neighborhood is grid-probed via
// the log marginal likelihood and adopted only on improvement. 0 disables.
func (g *GP) SetHyperAdapt(every int) { g.hyperEvery = every }

// Len returns the number of observations (fantasized ones included while
// their frames are active).
func (g *GP) Len() int { return len(g.xs) }

// Fantasies returns the number of active fantasized observations.
func (g *GP) Fantasies() int { return len(g.frames) }

// Add appends an observation. The model is updated lazily on the next
// prediction — an O(n²) incremental factor extension (see the package
// comment). Any active fantasy frames are popped first: a real
// observation invalidates speculation.
func (g *GP) Add(x []float64, y float64) {
	g.PopAllFantasies()
	g.xs = append(g.xs, append([]float64(nil), x...))
	g.ys = append(g.ys, y)
	g.sinceAdapt++
}

func (g *GP) kernel(a, b []float64) float64 {
	d2 := stats.SquaredDistance(a, b)
	return g.SignalVar * math.Exp(-d2/(2*g.LengthScale*g.LengthScale))
}

// kernelRow returns (computing and caching on first use) the kernel row of
// observation i against observations 0..i.
func (g *GP) kernelRow(i int) []float64 {
	for len(g.kRows) <= i {
		n := len(g.kRows)
		row := make([]float64, n+1)
		for j := 0; j <= n; j++ {
			row[j] = g.kernel(g.xs[n], g.xs[j])
		}
		g.kRows = append(g.kRows, row)
	}
	return g.kRows[i]
}

// ErrNoData is returned when predicting from an empty model.
var ErrNoData = errors.New("gp: no observations")

// sync brings the factor and weights up to date with the observation list
// (incremental extensions, window downdates, refactorizations — see
// syncFactor), then runs the periodic hyperparameter probe.
func (g *GP) sync() error {
	n := len(g.xs)
	if n == 0 {
		return ErrNoData
	}
	if g.chol != nil && g.chol.Len() == n && g.fitted == n {
		return nil
	}
	if g.chol == nil {
		g.chol = &stats.TriFactor{}
	}
	if err := g.syncFactor(); err != nil {
		return err
	}
	return g.adaptHypers()
}

// syncFactor brings the factor and weights up to date with the
// observation list: incremental extensions for the common one-observation
// delta, a full refactorization when forced, overdue for hygiene, or
// rescued after a failed extension. With a window set, each extension
// past the bound is followed by a downdate of the oldest row, so the
// factor slides over the stream at constant size.
func (g *GP) syncFactor() error {
	if g.forceRefit || g.chol.Len() != g.fitted || g.sinceRefit+(len(g.xs)-g.fitted) > fullRefitEvery {
		return g.refit()
	}
	for g.fitted < len(g.xs) {
		i := g.fitted
		row := g.kernelRow(i)
		if err := g.chol.Extend(row[:i], row[i]+g.NoiseVar+g.jitter); err != nil {
			// Numerical rescue: refactorize from scratch (adding jitter if
			// this model has not needed it before).
			return g.refit()
		}
		g.fitted++
		g.sinceRefit++
		// A loop, not an if: a window set below the already-covered history
		// (SetWindow on a warm model) must drain down to the bound, not
		// shrink by a net zero per add.
		for g.window > 0 && len(g.frames) == 0 && g.fitted > g.window {
			if err := g.dropOldest(); err != nil {
				return err
			}
		}
	}
	return g.refreshWeights()
}

// dropOldest slides the window forward by one: downdate the factor's
// first row (O(n²)), shift the observation history, and count the
// rotation sweep toward the refit-hygiene cadence (its rounding
// accumulates exactly like an extension's).
func (g *GP) dropOldest() error {
	if err := g.chol.Downdate(); err != nil {
		return err
	}
	g.shiftHistory(1)
	g.fitted--
	g.sinceRefit++
	return nil
}

// shiftHistory drops the oldest `drop` observations from xs/ys and
// re-anchors the kernel-row cache: kernel values are pure functions of
// point pairs, so surviving rows reslice instead of recompute.
func (g *GP) shiftHistory(drop int) {
	n := len(g.xs)
	copy(g.xs, g.xs[drop:])
	for i := n - drop; i < n; i++ {
		g.xs[i] = nil
	}
	g.xs = g.xs[:n-drop]
	copy(g.ys, g.ys[drop:])
	g.ys = g.ys[:n-drop]
	if len(g.kRows) > drop {
		kept := len(g.kRows) - drop
		for i := 0; i < kept; i++ {
			g.kRows[i] = g.kRows[i+drop][drop : i+drop+1]
		}
		for i := kept; i < len(g.kRows); i++ {
			g.kRows[i] = nil
		}
		g.kRows = g.kRows[:kept]
	} else {
		for i := range g.kRows {
			g.kRows[i] = nil
		}
		g.kRows = g.kRows[:0]
	}
}

// refit rebuilds the factor from the cached kernel rows — O(n³) arithmetic
// but no kernel evaluations — escalating to the persistent jitter on the
// first failure. With a window set the history is trimmed to the bound
// first, so the refactorization is O(window³) regardless of stream length.
func (g *GP) refit() error {
	if g.window > 0 && len(g.frames) == 0 && len(g.xs) > g.window {
		g.shiftHistory(len(g.xs) - g.window)
	}
	n := len(g.xs)
	g.kernelRow(n - 1) // ensure rows 0..n-1 are cached
	err := g.chol.FactorFromRows(g.kRows[:n], g.NoiseVar+g.jitter)
	if err != nil && g.jitter == 0 { //wfvet:ignore floateq jitter is only ever assigned exactly 0 or the escalated constant
		g.jitter = 1e-6 * g.SignalVar
		err = g.chol.FactorFromRows(g.kRows[:n], g.NoiseVar+g.jitter)
	}
	if err != nil {
		g.fitted = 0
		return err
	}
	g.fitted, g.sinceRefit = n, 0
	return g.refreshWeights()
}

// hyperProbeFactors is the deterministic (LengthScale, SignalVar)
// neighborhood adaptHypers scans: one step down and up per axis.
var hyperProbeFactors = [4][2]float64{{0.8, 1}, {1.25, 1}, {1, 0.8}, {1, 1.25}}

// adaptHypers is the online hyperparameter probe: every hyperEvery adds,
// score the current hypers and four neighbors by log marginal likelihood
// and adopt the best only on strict improvement, refitting the factor
// under the adopted kernel. Purely a function of the observation history
// — no wall-clock, no randomness — so sessions stay byte-reproducible.
func (g *GP) adaptHypers() error {
	if g.hyperEvery <= 0 || g.sinceAdapt < g.hyperEvery || len(g.frames) > 0 {
		return nil
	}
	g.sinceAdapt = 0
	bestLL := g.lmlFromFactor()
	bestLS, bestSV := g.LengthScale, g.SignalVar
	improved := false
	for _, f := range hyperProbeFactors {
		ls, sv := g.LengthScale*f[0], g.SignalVar*f[1]
		ll, err := g.probeLML(ls, sv)
		if err != nil {
			continue // a probe that fails to factor is just not adopted
		}
		if ll > bestLL+1e-9 {
			bestLL, bestLS, bestSV, improved = ll, ls, sv, true
		}
	}
	if !improved {
		return nil
	}
	g.LengthScale, g.SignalVar = bestLS, bestSV
	g.kRows = nil // kernel changed: every cached row is stale
	return g.refit()
}

// lmlFromFactor computes the log marginal likelihood from the current
// factor and weights without re-syncing (the caller just did).
func (g *GP) lmlFromFactor() float64 {
	n := len(g.xs)
	ll := 0.0
	for i := 0; i < n; i++ {
		ll -= math.Log(g.chol.At(i, i))
	}
	for i := 0; i < n; i++ {
		ll -= 0.5 * (g.ys[i] - g.yMean) * g.alpha[i]
	}
	ll -= 0.5 * float64(n) * math.Log(2*math.Pi)
	return ll
}

// probeLML evaluates the log marginal likelihood the model would have
// under candidate hyperparameters, on scratch storage — the live factor,
// caches, and weights are untouched.
func (g *GP) probeLML(ls, sv float64) (float64, error) {
	n := len(g.xs)
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = make([]float64, i+1)
		for j := 0; j <= i; j++ {
			d2 := stats.SquaredDistance(g.xs[i], g.xs[j])
			rows[i][j] = sv * math.Exp(-d2/(2*ls*ls))
		}
	}
	var tf stats.TriFactor
	if err := tf.FactorFromRows(rows, g.NoiseVar+g.jitter); err != nil {
		return 0, err
	}
	mean := stats.Mean(g.ys)
	centered := make([]float64, n)
	for i, y := range g.ys {
		centered[i] = y - mean
	}
	alpha := make([]float64, n)
	tf.Solve(centered, alpha)
	ll := 0.0
	for i := 0; i < n; i++ {
		ll -= math.Log(tf.At(i, i))
	}
	for i := 0; i < n; i++ {
		ll -= 0.5 * centered[i] * alpha[i]
	}
	ll -= 0.5 * float64(n) * math.Log(2*math.Pi)
	return ll, nil
}

// refreshWeights recomputes the target mean and alpha = (K+σ²I)⁻¹(y−mean)
// from the current factor — two O(n²) triangular solves.
func (g *GP) refreshWeights() error {
	n := len(g.xs)
	g.yMean = stats.Mean(g.ys)
	g.centered = resize(g.centered, n)
	for i, y := range g.ys {
		g.centered[i] = y - g.yMean
	}
	// While fantasy frames are active the saved alphas must survive, so
	// the solve writes a fresh slice; otherwise the buffer is reused.
	if len(g.frames) > 0 || cap(g.alpha) < n {
		g.alpha = make([]float64, n)
	}
	g.alpha = g.alpha[:n]
	g.chol.Solve(g.centered, g.alpha)
	return nil
}

// resize returns buf with length n, reallocating only on growth.
func resize(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// PushFantasy appends a speculative observation — the constant-liar
// mechanism batch proposal uses to make later slots condition on earlier
// picks. The factor is extended in place in O(n²); popping restores the
// exact pre-push state. A non-positive pivot is clamped rather than
// rescued by refactorization (a rebuild would make the pop inexact), so
// the push always succeeds once the model itself is syncable.
func (g *GP) PushFantasy(x []float64, y float64) error {
	if err := g.sync(); err != nil {
		return err
	}
	i := len(g.xs)
	g.xs = append(g.xs, append([]float64(nil), x...))
	g.ys = append(g.ys, y)
	row := g.kernelRow(i)
	g.chol.ExtendClamped(row[:i], row[i]+g.NoiseVar+g.jitter, g.NoiseVar+1e-6*g.SignalVar)
	g.fitted++
	g.frames = append(g.frames, fantasyFrame{alpha: g.alpha, yMean: g.yMean})
	return g.refreshWeights()
}

// PopFantasy removes the most recent fantasized observation in O(1): the
// factor truncates (extensions never rewrite earlier rows) and the saved
// weights are restored.
func (g *GP) PopFantasy() {
	if len(g.frames) == 0 {
		return
	}
	f := g.frames[len(g.frames)-1]
	g.frames = g.frames[:len(g.frames)-1]
	n := len(g.xs) - 1
	g.xs = g.xs[:n]
	g.ys = g.ys[:n]
	g.kRows = g.kRows[:n]
	g.chol.Truncate(n)
	g.fitted = n
	g.alpha, g.yMean = f.alpha, f.yMean
}

// PopAllFantasies unwinds every active fantasy frame.
func (g *GP) PopAllFantasies() {
	for len(g.frames) > 0 {
		g.PopFantasy()
	}
}

// Predict returns the posterior mean and standard deviation at x. The
// steady-state path (model already synced) performs no allocations.
func (g *GP) Predict(x []float64) (mean, std float64, err error) {
	if err := g.sync(); err != nil {
		return 0, 0, err
	}
	n := len(g.xs)
	g.kStar = resize(g.kStar, n)
	for i := range g.xs {
		g.kStar[i] = g.kernel(x, g.xs[i])
	}
	mean = g.yMean
	for i, k := range g.kStar {
		mean += k * g.alpha[i]
	}
	// Variance: k(x,x) − k*ᵀ (K+σ²I)⁻¹ k*, via v = L⁻¹ k*.
	g.v = resize(g.v, n)
	g.chol.ForwardSolve(g.kStar, g.v)
	variance := g.kernel(x, x)
	for _, vi := range g.v {
		variance -= vi * vi
	}
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance), nil
}

// ExpectedImprovement returns EI(x) for maximization over the incumbent
// best observed value, with exploration jitter xi.
func (g *GP) ExpectedImprovement(x []float64, best, xi float64) (float64, error) {
	mean, std, err := g.Predict(x)
	if err != nil {
		return 0, err
	}
	return eiFromMoments(mean, std, best, xi), nil
}

// eiFromMoments computes EI from posterior moments — the one formula both
// the scalar and batch acquisition paths share, so their results are the
// same floating-point operations, not merely close.
func eiFromMoments(mean, std, best, xi float64) float64 {
	if std < 1e-12 {
		if mean > best+xi {
			return mean - best - xi
		}
		return 0
	}
	z := (mean - best - xi) / std
	return (mean-best-xi)*stdNormCDF(z) + std*stdNormPDF(z)
}

// ExpectedImprovementBatch scores a whole candidate pool with one kernel-
// matrix build and one triangular batch solve, writing EI(cands[j]) to
// out[j]. Column j of the batch solve performs bit-for-bit the scalar
// ForwardSolve of candidate j, and the moment and EI arithmetic is shared
// with the scalar path, so out[j] equals ExpectedImprovement(cands[j])
// exactly. Steady state (scratch grown, model synced) allocates nothing.
func (g *GP) ExpectedImprovementBatch(cands [][]float64, best, xi float64, out []float64) error {
	m := len(cands)
	if m == 0 {
		return nil
	}
	if len(out) < m {
		return fmt.Errorf("gp: batch EI output has %d slots for %d candidates", len(out), m)
	}
	if err := g.sync(); err != nil {
		return err
	}
	n := len(g.xs)
	g.kStarB = resize(g.kStarB, n*m)
	for i := 0; i < n; i++ {
		xp := g.xs[i]
		row := g.kStarB[i*m : i*m+m]
		for j, c := range cands {
			row[j] = g.kernel(c, xp)
		}
	}
	g.vB = resize(g.vB, n*m)
	g.chol.ForwardSolveBatch(g.kStarB, g.vB, m)
	for j, c := range cands {
		mean := g.yMean
		for i := 0; i < n; i++ {
			mean += g.kStarB[i*m+j] * g.alpha[i]
		}
		variance := g.kernel(c, c)
		for i := 0; i < n; i++ {
			vi := g.vB[i*m+j]
			variance -= vi * vi
		}
		if variance < 0 {
			variance = 0
		}
		out[j] = eiFromMoments(mean, math.Sqrt(variance), best, xi)
	}
	return nil
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// LogMarginalLikelihood returns the log evidence of the fitted model, used
// by tests and by hyperparameter selection.
func (g *GP) LogMarginalLikelihood() (float64, error) {
	if err := g.sync(); err != nil {
		return 0, err
	}
	n := len(g.xs)
	ll := 0.0
	for i := 0; i < n; i++ {
		ll -= math.Log(g.chol.At(i, i))
	}
	for i := 0; i < n; i++ {
		ll -= 0.5 * (g.ys[i] - g.yMean) * g.alpha[i]
	}
	ll -= 0.5 * float64(n) * math.Log(2*math.Pi)
	return ll, nil
}
