package gp

import (
	"reflect"
	"testing"

	"wayfinder/internal/snapcover"
)

// TestGPStateCoverage pins the GP ↔ State field mapping: a new piece of
// surrogate state that is not checkpointed (or not justified as
// rebuildable) fails here instead of as a diverged resumed session.
func TestGPStateCoverage(t *testing.T) {
	snapcover.Pair(t, reflect.TypeFor[GP](), reflect.TypeFor[State](), snapcover.Spec{
		Covered: map[string]string{
			"xs":         "Xs",
			"ys":         "Ys",
			"fitted":     "Fitted",
			"sinceRefit": "SinceRefit",
			"jitter":     "Jitter",
			"forceRefit": "ForceRefit",
			"window":     "Window",
			"sinceAdapt": "SinceAdapt",
			// Online adaptation can move the hyperparameters off their
			// construction-time values, so they serialize (0 = keep the
			// constructor's, for legacy checkpoints).
			"LengthScale": "LengthScale",
			"SignalVar":   "SignalVar",
			// Unbounded models replay the refactorize-then-extend history;
			// windowed models carry the packed factor in Chol (a downdate
			// destroys the replay recipe).
			"chol": "Chol",
		},
		Excluded: map[string]string{
			"NoiseVar":   "construction-time hyperparameter: the restore target is built with the same arguments",
			"hyperEvery": "construction-time adaptation cadence: reapplied by the owner (SetSurrogateWindow) before Restore",
			"yMean":      "recomputed from Ys when the weights refresh",
			"kRows":      "kernel-row cache, rebuilt from Xs during restore",
			"alpha":      "rebuilt by refreshWeights once the factor is reconstructed",
			"frames":     "fantasy frames are popped before State(): a checkpoint is a real-history boundary",
			"kStar":      "reusable scratch, regrown on demand",
			"v":          "reusable scratch, regrown on demand",
			"centered":   "reusable scratch, regrown on demand",
			"kStarB":     "batch-acquisition scratch, regrown on demand",
			"vB":         "batch-acquisition scratch, regrown on demand",
		},
	})
}
