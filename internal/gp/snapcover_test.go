package gp

import (
	"reflect"
	"testing"

	"wayfinder/internal/snapcover"
)

// TestGPStateCoverage pins the GP ↔ State field mapping: a new piece of
// surrogate state that is not checkpointed (or not justified as
// rebuildable) fails here instead of as a diverged resumed session.
func TestGPStateCoverage(t *testing.T) {
	snapcover.Pair(t, reflect.TypeFor[GP](), reflect.TypeFor[State](), snapcover.Spec{
		Covered: map[string]string{
			"xs":         "Xs",
			"ys":         "Ys",
			"fitted":     "Fitted",
			"sinceRefit": "SinceRefit",
			"jitter":     "Jitter",
			"forceRefit": "ForceRefit",
		},
		Excluded: map[string]string{
			"LengthScale": "construction-time hyperparameter: the restore target is built with the same arguments",
			"SignalVar":   "construction-time hyperparameter: the restore target is built with the same arguments",
			"NoiseVar":    "construction-time hyperparameter: the restore target is built with the same arguments",
			"yMean":       "recomputed from Ys when the weights refresh",
			"kRows":       "kernel-row cache, rebuilt from Xs during restore",
			"chol":        "rebuilt by replaying the refactorize-then-extend history RestoreState encodes",
			"alpha":       "rebuilt by refreshWeights once the factor is reconstructed",
			"frames":      "fantasy frames are popped before State(): a checkpoint is a real-history boundary",
			"kStar":       "reusable scratch, regrown on demand",
			"v":           "reusable scratch, regrown on demand",
			"centered":    "reusable scratch, regrown on demand",
		},
	})
}
