package experiments

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"wayfinder/internal/wfd"
)

// Serve is the daemon load study: one wfd daemon serving ServeJobs
// concurrent tuning sessions spread over ServeTenants tenants, with every
// tenant submitting an identical workload in parallel. It measures what a
// serve-many-users deployment cares about:
//
//   - concurrency: the peak number of jobs simultaneously resident —
//     admission runs under Daemon.Hold so the count is exact, not a
//     load-dependent sample (the experiment fails under
//     min(ServeJobs, 100));
//   - fairness: the max/min spread of per-tenant service, sampled while
//     the daemon is saturated (fails above 2×);
//   - aggregate throughput: observations served per real second across
//     the whole fleet;
//   - determinism under multiplexing: tenants submit identical specs, so
//     their canonical final reports must match byte-for-byte regardless of
//     how the scheduler interleaved them;
//   - the cross-session build index: identical workloads recompile the
//     same images, so the duplicate-build count shows what a shared
//     physical artifact store would save.
func Serve(scale Scale) (*Result, error) {
	tenants := scale.ServeTenants
	if tenants < 1 {
		tenants = 1
	}
	perTenant := scale.ServeJobs / tenants
	if perTenant < 1 {
		perTenant = 1
	}
	jobs := perTenant * tenants
	iters := scale.ServeIterations
	if iters < 1 {
		iters = 30
	}
	demand := jobs * iters

	// Small quantum and a bounded pool keep the service spread tight: the
	// scheduler's imbalance is at most ~steppers×quantum observations.
	steppers := runtime.GOMAXPROCS(0)
	if steppers > 8 {
		steppers = 8
	}
	d, err := wfd.New(wfd.Config{Quantum: 4, Steppers: steppers, EventLogCap: 64})
	if err != nil {
		return nil, err
	}
	defer d.Kill()

	// Admit under Hold so the concurrency measurement is exact: with
	// dispatch paused, no job can race to completion while the later
	// submits are still in flight, and the post-submit status shows the
	// true peak of resident sessions rather than a load-dependent sample.
	d.Hold()

	// Every tenant submits the same workload from its own goroutine — the
	// parallel-clients shape, and what makes the cross-tenant report
	// comparison meaningful.
	start := time.Now()
	ids := make([][]string, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for t := 0; t < tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			ids[t] = make([]string, perTenant)
			for k := 0; k < perTenant; k++ {
				id, err := d.Submit(wfd.JobSpec{
					Name:       fmt.Sprintf("load-%02d-%03d", t, k),
					Tenant:     fmt.Sprintf("tenant%02d", t),
					Searcher:   "random",
					Seed:       uint64(k + 1),
					Iterations: iters,
				})
				if err != nil {
					errs[t] = err
					return
				}
				ids[t][k] = id
			}
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: submit: %w", err)
		}
	}
	submitted := time.Since(start)
	st := d.Status()
	peakActive := st.Queued + st.Running
	d.Release()

	// Sample the daemon while it drains: served-total for the throughput
	// curve, per-tenant service for the fairness spread. Spread only
	// counts once the daemon is past half its demand — before that the
	// denominator is warming up.
	type sample struct {
		elapsed float64
		served  int
		spread  float64
	}
	var (
		samples  []sample
		sampleWG sync.WaitGroup
		stop     = make(chan struct{})
	)
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				st := d.Status()
				s := sample{elapsed: time.Since(start).Seconds(), served: st.ServedTotal}
				minSvc, maxSvc := -1, 0
				for _, t := range st.Tenants {
					if minSvc < 0 || t.Service < minSvc {
						minSvc = t.Service
					}
					if t.Service > maxSvc {
						maxSvc = t.Service
					}
				}
				if st.ServedTotal >= demand/2 && st.ServedTotal < demand && minSvc > 0 {
					s.spread = float64(maxSvc) / float64(minSvc)
				}
				samples = append(samples, s)
			}
		}
	}()

	ctx := context.Background()
	for t := 0; t < tenants; t++ {
		for _, id := range ids[t] {
			if err := d.WaitJob(ctx, id); err != nil {
				return nil, fmt.Errorf("serve: wait: %w", err)
			}
		}
	}
	elapsed := time.Since(start)
	close(stop)
	sampleWG.Wait()

	// Every tenant ran the identical workload: job k's canonical report
	// must be byte-identical across all of them, however the fair-share
	// scheduler interleaved the quanta.
	identical := 0
	for k := 0; k < perTenant; k++ {
		ref, err := d.ReportJSON(ids[0][k])
		if err != nil {
			return nil, fmt.Errorf("serve: report %s: %w", ids[0][k], err)
		}
		for t := 1; t < tenants; t++ {
			got, err := d.ReportJSON(ids[t][k])
			if err != nil {
				return nil, fmt.Errorf("serve: report %s: %w", ids[t][k], err)
			}
			if !bytes.Equal(ref, got) {
				return nil, fmt.Errorf("serve: tenant %d job %d report diverged from tenant 0's (scheduling leaked into session state)", t, k)
			}
			identical++
		}
	}

	maxSpread := 0.0
	for _, s := range samples {
		if s.spread > maxSpread {
			maxSpread = s.spread
		}
	}
	final := d.Status()
	if final.Done != jobs {
		return nil, fmt.Errorf("serve: %d of %d jobs done", final.Done, jobs)
	}
	if want := min(jobs, 100); peakActive < want {
		return nil, fmt.Errorf("serve: peak concurrency %d, want >= %d", peakActive, want)
	}
	if maxSpread > 2 {
		return nil, fmt.Errorf("serve: fair-share service spread %.2fx exceeds 2x", maxSpread)
	}

	res := &Result{ID: "serve", Title: "Daemon load: many tenants, many concurrent sessions"}
	tbl := Table{
		Title:   fmt.Sprintf("Per-tenant accounting (%d jobs x %d observations each)", perTenant, iters),
		Columns: []string{"tenant", "jobs", "served obs", "compute s"},
	}
	for _, t := range final.Tenants {
		tbl.Rows = append(tbl.Rows, []string{
			t.Name, fmt.Sprintf("%d", perTenant), fmt.Sprintf("%d", t.Served),
			fmt.Sprintf("%.0f", t.ComputeSec),
		})
	}
	res.Tables = append(res.Tables, tbl)

	served := Series{Name: "served observations vs real seconds"}
	spread := Series{Name: "tenant service spread (max/min) vs real seconds"}
	for _, s := range samples {
		served.X = append(served.X, s.elapsed)
		served.Y = append(served.Y, float64(s.served))
		if s.spread > 0 {
			spread.X = append(spread.X, s.elapsed)
			spread.Y = append(spread.Y, s.spread)
		}
	}
	res.Series = append(res.Series, served, spread)

	res.Notes = append(res.Notes,
		fmt.Sprintf("%d jobs over %d tenants; peak concurrency %d sessions; submitted in %.2fs",
			jobs, tenants, peakActive, submitted.Seconds()),
		fmt.Sprintf("served %d observations in %.2fs real time — %.0f obs/s over %d quanta (%d steppers, quantum 4)",
			final.ServedTotal, elapsed.Seconds(), float64(final.ServedTotal)/elapsed.Seconds(), final.Quanta, steppers),
		fmt.Sprintf("fair-share service spread at saturation: %.2fx (max/min across tenants)", maxSpread),
		fmt.Sprintf("determinism under multiplexing: %d cross-tenant report pairs byte-identical", identical),
		fmt.Sprintf("cross-session build index: %d unique images, %d duplicate builds a shared physical store would have saved",
			final.UniqueBuilds, final.DupBuilds),
	)
	return res, nil
}
