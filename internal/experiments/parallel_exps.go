package experiments

import (
	"fmt"

	"wayfinder/internal/apps"
	"wayfinder/internal/core"
	"wayfinder/internal/search"
	"wayfinder/internal/vm"
)

// Scaling reproduces the Fig 7-style worker-scaling study on the parallel
// evaluation engine: the same search session (equal iteration budget,
// same seed, random search so every worker count explores comparably) run
// at 1, 2, 4, ... workers up to Scale.Workers. The platform evaluates
// configurations on worker VMs concurrently, so the virtual wall-clock
// should fall near-linearly with the pool size while the aggregate
// compute time — what the fleet actually burns — stays flat, up to the
// per-worker image builds and end-of-session stragglers.
func Scaling(scale Scale) (*Result, error) {
	res := &Result{ID: "scaling", Title: "Parallel evaluation: virtual wall-clock vs worker count"}
	maxW := scale.Workers
	if maxW < 1 {
		maxW = 1
	}
	var counts []int
	for w := 1; w <= maxW; w *= 2 {
		counts = append(counts, w)
	}
	if last := counts[len(counts)-1]; last != maxW {
		counts = append(counts, maxW)
	}

	app := apps.Nginx()
	t := Table{
		Title:   "Worker scaling at an equal iteration budget",
		Columns: []string{"workers", "wall s", "compute s", "speedup", "efficiency"},
	}
	var xs, wall, speedup []float64
	baseWall := 0.0
	for _, w := range counts {
		m := newLinuxRuntimeFavored(scale, 1)
		s := search.NewRandom(m.Space, 1)
		var clock vm.Clock
		eng := core.NewEngine(m, app, &core.PerfMetric{App: app}, s, &clock, 1)
		rep, err := eng.Run(core.Options{Iterations: scale.Iterations, Seed: 1, Workers: w})
		if err != nil {
			return nil, err
		}
		if len(rep.History) != scale.Iterations {
			return nil, fmt.Errorf("scaling: W=%d ran %d iterations, want %d", w, len(rep.History), scale.Iterations)
		}
		if w == 1 {
			baseWall = rep.ElapsedSec
		}
		sp := baseWall / rep.ElapsedSec
		xs = append(xs, float64(w))
		wall = append(wall, rep.ElapsedSec)
		speedup = append(speedup, sp)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			fmtF(rep.ElapsedSec, 0),
			fmtF(rep.ComputeSec, 0),
			fmtF(sp, 2) + "x",
			fmtF(100*sp/float64(w), 0) + "%",
		})
	}
	res.Tables = append(res.Tables, t)
	res.Series = append(res.Series,
		Series{Name: "wall-clock-s", X: xs, Y: wall},
		Series{Name: "speedup", X: xs, Y: speedup},
	)
	res.Notes = append(res.Notes,
		"paper shape: wall-clock falls near-linearly with workers; losses are per-worker image builds and straggler rounds")
	return res, nil
}

// Straggler measures what the round barrier costs under heterogeneous
// worker speeds, and how much of it the asynchronous bounded-staleness
// scheduler recovers. The same session (equal iteration budget, same
// seed) runs three ways: the synchronous pool on uniform workers (the
// straggler-free reference), the synchronous pool with one worker slowed
// by Scale.Straggler (static iteration→worker placement forces 1/W of the
// work onto the slow machine, so the wall-clock balloons toward the
// straggler's total), and the asynchronous scheduler on the same slowed
// fleet (placement follows virtual availability, so the straggler
// naturally receives less work). The headline number is the recovery
// fraction: the share of the barrier-lost wall-clock the async scheduler
// wins back.
func Straggler(scale Scale) (*Result, error) {
	res := &Result{ID: "straggler", Title: "Async scheduler vs the round barrier under a straggler worker"}
	w := scale.Workers
	if w < 2 {
		w = 4
	}
	slow := scale.Straggler
	if slow <= 1 {
		slow = 4
	}
	factors := core.StragglerFleet(w, slow)

	app := apps.Nginx()
	run := func(async bool, speed []float64) (*core.Report, error) {
		m := newLinuxRuntimeFavored(scale, 1)
		s := search.NewRandom(m.Space, 1)
		var clock vm.Clock
		eng := core.NewEngine(m, app, &core.PerfMetric{App: app}, s, &clock, 1)
		opts := core.Options{
			Iterations:         scale.Iterations,
			Seed:               1,
			Workers:            w,
			WorkerSpeedFactors: speed,
		}
		if async {
			opts.Async = true
			opts.Staleness = -1 // unbounded
		}
		return eng.Run(opts)
	}

	reference, err := run(false, nil)
	if err != nil {
		return nil, err
	}
	syncStrag, err := run(false, factors)
	if err != nil {
		return nil, err
	}
	asyncStrag, err := run(true, factors)
	if err != nil {
		return nil, err
	}

	t := Table{
		Title:   fmt.Sprintf("%d workers, %.0fx straggler on worker %d, equal iteration budget", w, slow, w-1),
		Columns: []string{"scheduler", "straggler", "wall s", "compute s", "idle s", "utilization"},
	}
	for _, row := range []struct {
		name, strag string
		rep         *core.Report
	}{
		{"sync", "no", reference},
		{"sync", "yes", syncStrag},
		{"async", "yes", asyncStrag},
	} {
		t.Rows = append(t.Rows, []string{
			row.name,
			row.strag,
			fmtF(row.rep.ElapsedSec, 0),
			fmtF(row.rep.ComputeSec, 0),
			fmtF(row.rep.IdleSec, 0),
			fmtF(100*row.rep.Utilization, 0) + "%",
		})
	}
	res.Tables = append(res.Tables, t)

	lost := syncStrag.ElapsedSec - reference.ElapsedSec
	recoveredSec := syncStrag.ElapsedSec - asyncStrag.ElapsedSec
	recovery := 0.0
	if lost > 0 {
		recovery = recoveredSec / lost
	}
	res.Tables = append(res.Tables, Table{
		Title:   "Wall-clock lost to the straggler barrier and recovered by async dispatch",
		Columns: []string{"lost s", "recovered s", "recovery"},
		Rows: [][]string{{
			fmtF(lost, 0), fmtF(recoveredSec, 0), fmtF(100*recovery, 0) + "%",
		}},
	})
	res.Notes = append(res.Notes, fmt.Sprintf(
		"static placement gives the %.0fx straggler 1/%d of the iterations, so the sync wall-clock tracks the straggler; async placement follows virtual availability and recovers %.0f%% of the lost wall-clock",
		slow, w, 100*recovery))
	if recovery > 1 {
		res.Notes = append(res.Notes,
			"recovery above 100%: async also eliminates the ordinary barrier losses the straggler-free sync reference still pays (duration jitter makes every round's maximum exceed its mean)")
	}
	return res, nil
}
