package experiments

import (
	"fmt"

	"wayfinder/internal/apps"
	"wayfinder/internal/core"
	"wayfinder/internal/search"
	"wayfinder/internal/vm"
)

// Scaling reproduces the Fig 7-style worker-scaling study on the parallel
// evaluation engine: the same search session (equal iteration budget,
// same seed, random search so every worker count explores comparably) run
// at 1, 2, 4, ... workers up to Scale.Workers. The platform evaluates
// configurations on worker VMs concurrently, so the virtual wall-clock
// should fall near-linearly with the pool size while the aggregate
// compute time — what the fleet actually burns — stays flat, up to the
// per-worker image builds and end-of-session stragglers.
func Scaling(scale Scale) (*Result, error) {
	res := &Result{ID: "scaling", Title: "Parallel evaluation: virtual wall-clock vs worker count"}
	maxW := scale.Workers
	if maxW < 1 {
		maxW = 1
	}
	var counts []int
	for w := 1; w <= maxW; w *= 2 {
		counts = append(counts, w)
	}
	if last := counts[len(counts)-1]; last != maxW {
		counts = append(counts, maxW)
	}

	app := apps.Nginx()
	t := Table{
		Title:   "Worker scaling at an equal iteration budget",
		Columns: []string{"workers", "wall s", "compute s", "speedup", "efficiency"},
	}
	var xs, wall, speedup []float64
	baseWall := 0.0
	for _, w := range counts {
		m := newLinuxRuntimeFavored(scale, 1)
		s := search.NewRandom(m.Space, 1)
		var clock vm.Clock
		eng := core.NewEngine(m, app, &core.PerfMetric{App: app}, s, &clock, 1)
		rep, err := eng.Run(core.Options{Iterations: scale.Iterations, Seed: 1, Workers: w})
		if err != nil {
			return nil, err
		}
		if len(rep.History) != scale.Iterations {
			return nil, fmt.Errorf("scaling: W=%d ran %d iterations, want %d", w, len(rep.History), scale.Iterations)
		}
		if w == 1 {
			baseWall = rep.ElapsedSec
		}
		sp := baseWall / rep.ElapsedSec
		xs = append(xs, float64(w))
		wall = append(wall, rep.ElapsedSec)
		speedup = append(speedup, sp)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			fmtF(rep.ElapsedSec, 0),
			fmtF(rep.ComputeSec, 0),
			fmtF(sp, 2) + "x",
			fmtF(100*sp/float64(w), 0) + "%",
		})
	}
	res.Tables = append(res.Tables, t)
	res.Series = append(res.Series,
		Series{Name: "wall-clock-s", X: xs, Y: wall},
		Series{Name: "speedup", X: xs, Y: speedup},
	)
	res.Notes = append(res.Notes,
		"paper shape: wall-clock falls near-linearly with workers; losses are per-worker image builds and straggler rounds")
	return res, nil
}
