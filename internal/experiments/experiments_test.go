package experiments

import (
	"maps"
	"slices"
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps the experiment tests fast; shape assertions are loose.
func tinyScale() Scale {
	s := QuickScale()
	s.Seeds = 1
	s.Iterations = 60
	s.RandomConfigs = 120
	s.PerAppConfigs = 200
	s.TimeBudgetSec = 1200
	s.SynthIters = 30
	return s
}

func cell(t *testing.T, tab Table, row int, col string) string {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("column %q not found in %v", col, tab.Columns)
	return ""
}

func cellF(t *testing.T, tab Table, row int, col string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(cell(t, tab, row, col), "x"), "%")
	s = strings.TrimSuffix(s, "s")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", tinyScale()); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestIDsDispatch(t *testing.T) {
	// Every advertised ID must dispatch (exercised cheaply: only fig1 and
	// table1 actually run here; the rest are covered by their own tests).
	for _, id := range []string{"fig1", "table1"} {
		res, err := Run(id, tinyScale())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID != id {
			t.Fatalf("result ID %q for %q", res.ID, id)
		}
		if res.Render() == "" {
			t.Fatal("empty render")
		}
	}
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	ys := res.Series[0].Y
	if len(ys) != 13 {
		t.Fatalf("%d versions, want 13", len(ys))
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] <= ys[i-1] {
			t.Fatal("option count must grow monotonically")
		}
	}
	if ys[0] > 7000 || ys[len(ys)-1] < 20000 {
		t.Fatalf("trajectory endpoints wrong: %v .. %v", ys[0], ys[len(ys)-1])
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	res, err := Table1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	want := map[string]string{
		"bool": "7585", "tristate": "10034", "string": "154",
		"hex": "94", "int": "3405", "boot-time": "231", "runtime": "13328",
	}
	for _, col := range slices.Sorted(maps.Keys(want)) {
		if got, wantV := cell(t, tab, 0, col), want[col]; got != wantV {
			t.Errorf("%s = %s, want %s", col, got, wantV)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if rate := cellF(t, tab, 0, "crash rate"); rate < 0.2 || rate > 0.45 {
		t.Fatalf("crash rate %v, want ≈1/3", rate)
	}
	if rel := cellF(t, tab, 0, "max/default"); rel < 1.02 || rel > 1.3 {
		t.Fatalf("best/default = %v, want ≈1.1", rel)
	}
	ys := res.Series[0].Y
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatal("sorted series must be ascending")
		}
	}
	if spread := ys[len(ys)-1] / ys[0]; spread < 1.3 {
		t.Fatalf("throughput spread %vx, want large", spread)
	}
}

func TestFig5ClusterStructure(t *testing.T) {
	res, err := Fig5(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	get := func(r int, name string) float64 { return cellF(t, tab, r, name) }
	// Diagonal = 1.
	order := []string{"nginx", "redis", "sqlite", "npb"}
	for i, name := range order {
		if get(i, name) != 1 {
			t.Fatalf("diagonal %s = %v", name, get(i, name))
		}
	}
	// System-intensive cluster beats NPB pairings.
	sysPairs := []float64{get(0, "redis"), get(0, "sqlite"), get(1, "sqlite")}
	npbPairs := []float64{get(0, "npb"), get(1, "npb"), get(2, "npb")}
	for _, s := range sysPairs {
		for _, n := range npbPairs {
			if s <= n {
				t.Fatalf("cluster structure broken: sys %v <= npb %v\n%s", s, n, res.Render())
			}
		}
	}
}

func TestFig7UnicornGrowsDeepTuneFlat(t *testing.T) {
	res, err := Fig7(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Series{}
	for _, s := range res.Series {
		series[s.Name] = s
	}
	uni := series["unicorn-mem-bytes"].Y
	if uni[len(uni)-1] <= uni[0] {
		t.Fatal("unicorn memory should grow over iterations")
	}
	// Unicorn's per-iteration fit cost (deterministic sample-touch count)
	// grows with the history; DeepTune's update is bounded by its training
	// window, so its per-update sample count is capped. Wall-clock at tiny
	// scales is too noisy to compare, so the assertion uses the work
	// counter for Unicorn and the structural window bound for DeepTune.
	work := series["unicorn-work"].Y
	n := len(work) / 5
	if n == 0 {
		n = 1
	}
	if meanOf(work[len(work)-n:]) <= 2*meanOf(work[:n]) {
		t.Fatalf("unicorn work did not grow: head %v tail %v",
			meanOf(work[:n]), meanOf(work[len(work)-n:]))
	}
	dt := series["deeptune-time-s"].Y
	if len(dt) != len(work) {
		t.Fatal("series lengths differ")
	}
	for _, v := range dt {
		if v <= 0 {
			t.Fatal("deeptune update cost not recorded")
		}
	}
}

func TestFig8EvaluationDominates(t *testing.T) {
	scale := tinyScale()
	res, err := Fig8(scale)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	update := cellF(t, tab, 0, "seconds")
	if update > 2 {
		t.Fatalf("DeepTune update = %vs, want <2s wall-clock", update)
	}
	for row := 1; row < len(tab.Rows); row++ {
		test := cellF(t, tab, row, "seconds")
		if test < 10*update {
			t.Fatalf("evaluation (%vs) should dominate update (%vs)", test, update)
		}
	}
}

func TestFig9Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("search-session experiment")
	}
	scale := tinyScale()
	scale.TimeBudgetSec = 8000
	res, err := Fig9(scale)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// rows: random, bayesian, wayfinder
	rnd := cellF(t, tab, 0, "best req/s")
	wf := cellF(t, tab, 2, "best req/s")
	if wf <= rnd {
		t.Fatalf("wayfinder (%v) should beat random (%v) on unikraft\n%s", wf, rnd, res.Render())
	}
	if rel := cellF(t, tab, 2, "vs default"); rel < 1.5 {
		t.Fatalf("wayfinder unikraft improvement %vx, want large headroom", rel)
	}
}

func TestFig10Reduction(t *testing.T) {
	if testing.Short() {
		t.Skip("search-session experiment")
	}
	scale := tinyScale()
	scale.TimeBudgetSec = 4000
	res, err := Fig10(scale)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	rndBest := cellF(t, tab, 0, "best MB")
	dtBest := cellF(t, tab, 1, "best MB")
	if dtBest > 212 || rndBest > 215 {
		t.Fatalf("footprints did not shrink: random %v, deeptune %v", rndBest, dtBest)
	}
	if red := cellF(t, tab, 1, "reduction"); red < 2 {
		t.Fatalf("deeptune reduction %v%%, want a few percent at tiny scale", red)
	}
}

func TestTable4BeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("search-session experiment")
	}
	scale := tinyScale()
	scale.TimeBudgetSec = 2500
	res, err := Table4(scale)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Rows) < 3 {
		t.Fatalf("want ≥2 top rows + baseline, got %d", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "cozart" {
		t.Fatalf("last row should be the cozart baseline: %v", last)
	}
	top1Thr := cellF(t, tab, 0, "throughput (req/s)")
	baseThr, err2 := strconv.ParseFloat(last[3], 64)
	if err2 != nil {
		t.Fatal(err2)
	}
	if top1Thr < baseThr*0.95 {
		t.Fatalf("top score throughput %v far below baseline %v", top1Thr, baseThr)
	}
}

func TestRenderContainsTables(t *testing.T) {
	res, err := Table1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"table1", "boot-time", "13328"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestResampleToGrid(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 20, 30}
	out := resampleToGrid(xs, ys, 4, 5)
	// grid t = 0,1,2,3,4 → values 10 (nothing yet, holds first), 10, 20, 30, 30
	want := []float64{10, 10, 20, 30, 30}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("resample = %v, want %v", out, want)
		}
	}
}

func TestStragglerRecovery(t *testing.T) {
	scale := tinyScale()
	scale.Iterations = 120
	scale.Workers = 8
	scale.Straggler = 4
	res, err := Straggler(scale)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// Rows: sync/no-straggler, sync/straggler, async/straggler.
	ref := cellF(t, tab, 0, "wall s")
	syncWall := cellF(t, tab, 1, "wall s")
	asyncWall := cellF(t, tab, 2, "wall s")
	if syncWall < 2*ref {
		t.Fatalf("4x straggler barely hurt the sync barrier (%.0fs vs %.0fs)\n%s", syncWall, ref, res.Render())
	}
	if asyncWall >= syncWall {
		t.Fatalf("async (%.0fs) did not beat the sync barrier (%.0fs)\n%s", asyncWall, syncWall, res.Render())
	}
	// Acceptance bar: async recovers ≥80% of the straggler-lost wall-clock.
	if rec := cellF(t, res.Tables[1], 0, "recovery"); rec < 80 {
		t.Fatalf("recovery %.0f%%, want ≥80%%\n%s", rec, res.Render())
	}
	// The async scheduler should also keep the fleet busier.
	syncUtil := cellF(t, tab, 1, "utilization")
	asyncUtil := cellF(t, tab, 2, "utilization")
	if asyncUtil <= syncUtil {
		t.Fatalf("async utilization %.0f%% not above sync %.0f%%\n%s", asyncUtil, syncUtil, res.Render())
	}
}

func TestScalingSpeedup(t *testing.T) {
	scale := tinyScale()
	scale.Iterations = 160
	scale.Workers = 8
	res, err := Scaling(scale)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if got := cell(t, tab, 0, "workers"); got != "1" {
		t.Fatalf("first row workers = %s, want 1", got)
	}
	last := len(tab.Rows) - 1
	if got := cell(t, tab, last, "workers"); got != "8" {
		t.Fatalf("last row workers = %s, want 8", got)
	}
	// Acceptance bar: ≥4x wall-clock speedup at 8 workers for an equal
	// iteration budget.
	if sp := cellF(t, tab, last, "speedup"); sp < 4 {
		t.Fatalf("8-worker speedup %.2fx, want ≥4x\n%s", sp, res.Render())
	}
	// Wall-clock must fall monotonically as workers double.
	series := map[string]Series{}
	for _, s := range res.Series {
		series[s.Name] = s
	}
	wall := series["wall-clock-s"].Y
	for i := 1; i < len(wall); i++ {
		if wall[i] >= wall[i-1] {
			t.Fatalf("wall-clock not monotone: %v", wall)
		}
	}
	// Aggregate compute stays in the sequential ballpark (per-worker
	// builds are the only systematic overhead).
	seq := cellF(t, tab, 0, "compute s")
	par := cellF(t, tab, last, "compute s")
	if par > 1.5*seq {
		t.Fatalf("8-worker compute %.0fs far above sequential %.0fs", par, seq)
	}
}

func TestCachehitDedupesToSequentialBuilds(t *testing.T) {
	scale := tinyScale()
	scale.Workers = 8
	scale.Hosts = 4
	res, err := Cachehit(scale)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// Rows: sequential, per-worker caches, shared store, shared w/ hosts.
	seq := cellF(t, tab, 0, "builds")
	dup := cellF(t, tab, 1, "builds")
	shared := cellF(t, tab, 2, "builds")
	fleet := cellF(t, tab, 3, "builds")
	if dup < 8*seq {
		t.Fatalf("per-worker caches built %.0f images vs sequential %.0f — duplication pathology missing\n%s",
			dup, seq, res.Render())
	}
	// Acceptance bar: the shared store brings the W=8 build count within
	// 10%% of the sequential session's, single- and multi-host alike.
	if shared > 1.1*seq {
		t.Fatalf("shared store builds %.0f not within 10%% of sequential %.0f\n%s", shared, seq, res.Render())
	}
	if fleet > 1.1*seq {
		t.Fatalf("multi-host builds %.0f not within 10%% of sequential %.0f\n%s", fleet, seq, res.Render())
	}
	if hits := cellF(t, tab, 2, "cache hits"); hits < dup-shared {
		t.Fatalf("cache hits %.0f below the %.0f builds deduped\n%s", hits, dup-shared, res.Render())
	}
	// The multi-host run pays cross-host transfers for the same dedup.
	if remote := cellF(t, tab, 3, "remote"); remote == 0 {
		t.Fatalf("4-host run shows no remote fetches\n%s", res.Render())
	}
	if saved := cellF(t, res.Tables[1], 0, "avoided"); saved != dup-shared {
		t.Fatalf("summary says %.0f builds avoided, table says %.0f\n%s", saved, dup-shared, res.Render())
	}
}

func TestFleetTransferCostInWallClock(t *testing.T) {
	scale := tinyScale()
	scale.Workers = 8
	res, err := Fleet(scale)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// Host-ladder rows (1, 2, 4, 8) then the per-worker-cache baseline.
	last := len(tab.Rows) - 2
	rounds := cellF(t, tab, 0, "builds")
	for row := 0; row <= last; row++ {
		if b := cellF(t, tab, row, "builds"); b != rounds {
			t.Fatalf("row %d built %.0f images, want the fleet-wide %.0f (one per round)\n%s",
				row, b, rounds, res.Render())
		}
	}
	// Acceptance bar: cross-host transfers show up in the wall-clock —
	// monotone in the host count, and remote fetches grow with it.
	prevWall, prevRemote := 0.0, -1.0
	for row := 0; row <= last; row++ {
		wall := cellF(t, tab, row, "wall s")
		remote := cellF(t, tab, row, "remote")
		if wall < prevWall {
			t.Fatalf("wall-clock fell from %.0fs to %.0fs as hosts grew\n%s", prevWall, wall, res.Render())
		}
		if remote <= prevRemote {
			t.Fatalf("remote fetches did not grow with the host count\n%s", res.Render())
		}
		prevWall, prevRemote = wall, remote
	}
	if spread := cellF(t, res.Tables[1], 0, "transfer cost s"); spread <= 0 {
		t.Fatalf("transfer cost %.0fs not positive\n%s", spread, res.Render())
	}
	// The no-store baseline rebuilds the round image on every worker.
	noCache := len(tab.Rows) - 1
	if b := cellF(t, tab, noCache, "builds"); b < 7*rounds {
		t.Fatalf("per-worker baseline built %.0f images, want ≈8 per round\n%s", b, res.Render())
	}
	if saved := cellF(t, res.Tables[1], 0, "compute saved s"); saved <= 0 {
		t.Fatalf("compute saved %.0fs not positive\n%s", saved, res.Render())
	}
}

// TestElasticityNoLostWork pins the robustness acceptance bar: every
// outage rung keeps the complete observation history (retry-elsewhere
// loses nothing), the outage is paid in wall-clock — monotone
// nondecreasing in downtime — and the whole ladder is reproducible.
func TestElasticityNoLostWork(t *testing.T) {
	scale := tinyScale()
	res, err := Elasticity(scale)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Rows) < 3 {
		t.Fatalf("expected an outage ladder, got %d rungs\n%s", len(tab.Rows), res.Render())
	}
	prevDown, prevWall := -1.0, 0.0
	for row := range tab.Rows {
		if lost := cellF(t, tab, row, "lost"); lost != 0 {
			t.Fatalf("rung %d lost %.0f observations\n%s", row, lost, res.Render())
		}
		if obs := cellF(t, tab, row, "observed"); obs != float64(scale.Iterations) {
			t.Fatalf("rung %d observed %.0f of %d\n%s", row, obs, scale.Iterations, res.Render())
		}
		down := cellF(t, tab, row, "downtime s")
		wall := cellF(t, tab, row, "wall s")
		if down <= prevDown {
			t.Fatalf("downtime ladder not increasing at rung %d\n%s", row, res.Render())
		}
		if wall < prevWall {
			t.Fatalf("wall-clock fell from %.0fs to %.0fs as downtime grew\n%s", prevWall, wall, res.Render())
		}
		prevDown, prevWall = down, wall
	}
	if r := cellF(t, tab, len(tab.Rows)-1, "retries"); r <= 0 {
		t.Fatalf("deepest outage triggered no retries\n%s", res.Render())
	}
	// Determinism: the ladder is a pure function of the scale.
	again, err := Elasticity(scale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != again.Render() {
		t.Fatal("elasticity ladder diverged between identical runs")
	}
}

// TestLocalityRecovery pins the dispatch acceptance bar: locality-aware
// placement recovers at least 70% of the static baseline's cross-host
// transfer time on the recurring-image workload.
func TestLocalityRecovery(t *testing.T) {
	res, err := Locality(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[1]
	if static := cellF(t, tab, 0, "static transfer s"); static <= 0 {
		t.Fatalf("static baseline paid no cross-host transfers — the workload is not exercising placement\n%s", res.Render())
	}
	if rec := cellF(t, tab, 0, "recovered %"); rec < 70 {
		t.Fatalf("locality recovered %.0f%% of the transfer bill, want ≥ 70%%\n%s", rec, res.Render())
	}
}

func TestSearcherscaleIncrementalWins(t *testing.T) {
	scale := tinyScale()
	scale.SurrogateObs = 192
	scale.Iterations = 40
	res, err := Searcherscale(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) < 3 {
		t.Fatalf("want cost, session, and snapshot tables, got %d", len(res.Tables))
	}
	costs := res.Tables[0]
	// Row 0 full-refit, row 1 incremental: the session total and the tail
	// per-add cost must both favor the incremental path decisively (the
	// asymptotic gap is O(n), so even wall-clock noise at tiny scale
	// leaves a wide margin).
	refitTail := cellF(t, costs, 0, "tail µs/add")
	incTail := cellF(t, costs, 1, "tail µs/add")
	if incTail <= 0 || refitTail/incTail < 2 {
		t.Fatalf("incremental tail %vµs vs refit %vµs: want ≥2x win at 192 observations", incTail, refitTail)
	}
	if sp := cellF(t, costs, 1, "tail speedup"); sp < 2 {
		t.Fatalf("reported speedup %vx, want ≥2x", sp)
	}
	series := map[string]Series{}
	for _, s := range res.Series {
		series[s.Name] = s
	}
	for _, name := range []string{"gp-add-refit-s", "gp-add-incremental-s",
		"bayesian-decision-refit-s", "bayesian-decision-incremental-s"} {
		if len(series[name].Y) == 0 {
			t.Fatalf("missing series %q", name)
		}
	}
	if len(series["gp-add-refit-s"].Y) != 192 {
		t.Fatalf("gp curve has %d points, want 192", len(series["gp-add-refit-s"].Y))
	}
}

func TestServeDaemonLoad(t *testing.T) {
	// The serve experiment asserts its own acceptance bar internally:
	// >= min(jobs, 100) concurrent sessions, fair-share service spread
	// <= 2x between tenants, every cross-tenant report pair byte-identical.
	// A smaller load keeps the test quick; the concurrency floor scales
	// with the job count.
	scale := tinyScale()
	scale.ServeJobs = 48
	scale.ServeTenants = 6
	scale.ServeIterations = 30
	res, err := Serve(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 6 {
		t.Fatalf("want one table with 6 tenant rows, got %+v", res.Tables)
	}
	for row := range res.Tables[0].Rows {
		if got := cellF(t, res.Tables[0], row, "served obs"); got != 8*30 {
			t.Fatalf("tenant row %d served %v observations, want %d", row, got, 8*30)
		}
	}
	if len(res.Series) != 2 || len(res.Series[0].Y) == 0 {
		t.Fatalf("want served+spread series, got %+v", len(res.Series))
	}
	if len(res.Notes) < 5 {
		t.Fatalf("want the five summary notes, got %d", len(res.Notes))
	}
}

// TestTransferscaleMonotone pins the tuning-memory acceptance bar: the
// median observations-to-target falls strictly as the transfer corpus
// grows, across at least three corpus sizes. Runs at QuickScale — the
// ladder's separation is calibrated against those budgets.
func TestTransferscaleMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("search-session experiment")
	}
	res, err := Transferscale(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Series{}
	for _, s := range res.Series {
		series[s.Name] = s
	}
	med := series["obs-to-target-median"].Y
	if len(med) < 3 {
		t.Fatalf("corpus-size ladder has %d rungs, want ≥3", len(med))
	}
	for i := 1; i < len(med); i++ {
		if med[i] >= med[i-1] {
			t.Fatalf("median obs-to-target not strictly decreasing: %v\n%s", med, res.Render())
		}
	}
	// Warm runs actually consume the transferred seeds.
	tab := res.Tables[0]
	for row := 1; row < len(tab.Rows); row++ {
		if s := cellF(t, tab, row, "mean corpus seeds"); s <= 0 {
			t.Fatalf("warm row %d used no corpus seeds\n%s", row, res.Render())
		}
	}
	if got := res.Notes[len(res.Notes)-1]; !strings.Contains(got, "strictly decreasing across the ladder: true") {
		t.Fatalf("monotonicity note: %s", got)
	}
}

func TestSearcherscaleWindowFlatCost(t *testing.T) {
	// The experiment verifies bit-identity of both batched paths
	// internally (it errors on any divergence); the test pins the
	// flat-cost shape. The asymptotic gap is wide — the unbounded
	// surrogate's per-add cost grows ~16x over a 4-window span while the
	// windowed one stays put — so even noisy wall-clock at tiny scale
	// clears these thresholds.
	scale := tinyScale()
	scale.SurrogateStream = 600
	scale.SurrogateWindow = 64
	scale.Iterations = 40
	res, err := SearcherscaleWindow(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 {
		t.Fatalf("want cost, batch, and session tables, got %d", len(res.Tables))
	}
	costs := res.Tables[0]
	if r := cellF(t, costs, 1, "tail ratio"); r > 1.5 {
		t.Fatalf("windowed tail ratio %vx, want ≤1.5x (flat decision cost)\n%s", r, res.Render())
	}
	if r := cellF(t, costs, 0, "tail ratio"); r < 1.5 {
		t.Fatalf("unbounded tail ratio %vx, want the Θ(n²) growth visible (≥1.5x)\n%s", r, res.Render())
	}
	series := map[string]Series{}
	for _, s := range res.Series {
		series[s.Name] = s
	}
	for _, name := range []string{"gp-add-unbounded-s", "gp-add-windowed-s"} {
		if len(series[name].Y) == 0 {
			t.Fatalf("missing series %q", name)
		}
	}
	for row := range res.Tables[2].Rows {
		if d := cellF(t, res.Tables[2], row, "decision s"); d <= 0 {
			t.Fatalf("session row %d decision cost %v, want > 0", row, d)
		}
	}
	if len(res.Notes) < 3 {
		t.Fatalf("want the three summary notes, got %d", len(res.Notes))
	}
	if !strings.Contains(res.Notes[0], "PASS") {
		t.Fatalf("flat-cost note did not pass: %s", res.Notes[0])
	}
}
