// Package experiments reproduces every table and figure of the paper's
// evaluation (§2 and §4) on the simulated substrate. Each experiment
// returns a structured Result (tables and data series) that the wfbench
// command renders and the repository's benchmarks execute.
//
// Experiments accept a Scale so the same code serves three audiences:
// QuickScale for tests and testing.B benchmarks (minutes of CPU),
// PaperScale for full reproductions matching the paper's iteration
// counts, budgets, and repetition counts.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"wayfinder/internal/configspace"
	"wayfinder/internal/core"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
	"wayfinder/internal/vm"
)

// Scale sizes an experiment.
type Scale struct {
	// Seeds is the number of repeated runs averaged per curve (paper: 5).
	Seeds int
	// Iterations is the Linux search session length (paper: 250).
	Iterations int
	// RandomConfigs is Fig 2's sample count (paper: 800 valid).
	RandomConfigs int
	// PerAppConfigs is Fig 5's per-application sample count (paper: 2000).
	PerAppConfigs int
	// TimeBudgetSec is the virtual budget of Figs 9–11 (paper: 3 h).
	TimeBudgetSec float64
	// SynthIters is Fig 7's iteration count (paper: 300).
	SynthIters int
	// Workers is the largest worker-pool size the scaling experiment
	// sweeps to (paper: the platform's worker-VM fleet).
	Workers int
	// Straggler is the slowdown factor of the straggler experiment's slow
	// worker (4 = one worker evaluates four times slower).
	Straggler float64
	// Hosts is the fleet size of the cachehit/fleet experiments' multi-host
	// runs (workers are split into this many simulated hosts with
	// independent artifact-store partitions).
	Hosts int
	// SurrogateObs is how many observations the searcherscale experiment
	// feeds the GP surrogate when charting incremental-vs-refit decision
	// cost (the acceptance point sits at 256).
	SurrogateObs int
	// SurrogateStream is how many observations the searcherscale-window
	// experiment streams through the windowed surrogate — deliberately far
	// past SurrogateWindow, so the flat-cost claim is exercised where an
	// unbounded surrogate would have slowed many-fold.
	SurrogateStream int
	// SurrogateWindow is the sliding-window bound the searcherscale-window
	// experiment applies (the -gp-window value under test).
	SurrogateWindow int
	// ServeJobs/ServeTenants/ServeIterations size the serve experiment's
	// daemon load: total concurrent jobs, tenants they are spread over,
	// and each job's observation budget.
	ServeJobs       int
	ServeTenants    int
	ServeIterations int
	// FaultSchedule optionally replaces the elasticity experiment's
	// built-in outage ladder with one custom rung (fault DSL; the
	// wfbench -faults value).
	FaultSchedule string
	// Dispatch optionally overrides the fleet experiment's placement
	// policy ("static" or "locality"; the wfbench -dispatch value).
	Dispatch string
	// Linux sizes the simulated Linux profile.
	Linux simos.LinuxOptions
}

// PaperScale matches the paper's experiment sizes.
func PaperScale() Scale {
	return Scale{
		Seeds:           5,
		Iterations:      250,
		RandomConfigs:   800,
		PerAppConfigs:   2000,
		TimeBudgetSec:   3 * 3600,
		SynthIters:      300,
		Workers:         16,
		Straggler:       4,
		Hosts:           4,
		SurrogateObs:    512,
		SurrogateStream: 10000,
		SurrogateWindow: 512,
		ServeJobs:       256,
		ServeTenants:    8,
		ServeIterations: 120,
		Linux:           simos.DefaultLinuxOptions(),
	}
}

// QuickScale shrinks everything for tests and benchmarks while keeping the
// qualitative shapes.
func QuickScale() Scale {
	return Scale{
		Seeds:           2,
		Iterations:      120,
		RandomConfigs:   200,
		PerAppConfigs:   400,
		TimeBudgetSec:   6000,
		SynthIters:      60,
		Workers:         8,
		Straggler:       4,
		Hosts:           4,
		SurrogateObs:    256,
		SurrogateStream: 2500,
		SurrogateWindow: 256,
		ServeJobs:       112,
		ServeTenants:    8,
		ServeIterations: 60,
		Linux:           simos.LinuxOptions{FillerRuntime: 80, FillerBoot: 10, FillerCompile: 30, Seed: 1},
	}
}

// Series is one named data curve.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Table is one rendered table.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Result is one experiment's output.
type Result struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Tables []Table  `json:"tables,omitempty"`
	Series []Series `json:"series,omitempty"`
	Notes  []string `json:"notes,omitempty"`
}

// Render pretty-prints the result.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "\n%s\n", t.Title)
		widths := make([]int, len(t.Columns))
		for i, c := range t.Columns {
			widths[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, cell := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
			b.WriteString("\n")
		}
		writeRow(t.Columns)
		writeRow(dashes(widths))
		for _, row := range t.Rows {
			writeRow(row)
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\nseries %-28s (%3d pts)", s.Name, len(s.Y))
		if len(s.Y) > 0 {
			fmt.Fprintf(&b, " start=%-9.4g end=%-9.4g %s",
				s.Y[0], s.Y[len(s.Y)-1], sparkline(s.Y, 40))
		}
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// sparkline renders ys as a width-character Unicode block-height strip —
// enough to see convergence shapes in terminal output.
func sparkline(ys []float64, width int) string {
	if len(ys) == 0 || width <= 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	span := hi - lo
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		y := ys[i*len(ys)/width]
		level := 0
		if span > 0 {
			level = int((y - lo) / span * float64(len(blocks)-1))
		}
		out[i] = blocks[level]
	}
	return string(out)
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"fig1", "table1", "fig2", "fig5", "fig6", "table2", "fig7", "fig8",
		"table3", "fig9", "fig10", "fig11", "table4", "scaling", "straggler",
		"cachehit", "fleet", "elasticity", "locality", "searcherscale",
		"searcherscale-window", "serve", "transferscale",
	}
}

// Run dispatches an experiment by ID.
func Run(id string, scale Scale) (*Result, error) {
	switch id {
	case "fig1":
		return Fig1(scale)
	case "table1":
		return Table1(scale)
	case "fig2":
		return Fig2(scale)
	case "fig5":
		return Fig5(scale)
	case "fig6":
		return Fig6(scale)
	case "table2":
		return Table2(scale)
	case "fig7":
		return Fig7(scale)
	case "fig8":
		return Fig8(scale)
	case "table3":
		return Table3(scale)
	case "fig9":
		return Fig9(scale)
	case "fig10":
		return Fig10(scale)
	case "fig11":
		return Fig11(scale)
	case "table4":
		return Table4(scale)
	case "scaling":
		return Scaling(scale)
	case "straggler":
		return Straggler(scale)
	case "cachehit":
		return Cachehit(scale)
	case "fleet":
		return Fleet(scale)
	case "elasticity":
		return Elasticity(scale)
	case "locality":
		return Locality(scale)
	case "searcherscale":
		return Searcherscale(scale)
	case "searcherscale-window":
		return SearcherscaleWindow(scale)
	case "serve":
		return Serve(scale)
	case "transferscale":
		return Transferscale(scale)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
}

// newLinuxRuntimeFavored builds the §4.1 setup: the Linux profile with
// compile-time exploration pinned (runtime parameters favored).
func newLinuxRuntimeFavored(scale Scale, seed uint64) *simos.Model {
	opts := scale.Linux
	opts.Seed = 1 // the space/hidden model is fixed; seeds vary the search
	m := simos.NewLinux(opts)
	m.Space.Favor(configspace.CompileTime, 0)
	_ = seed
	return m
}

// session runs one session to completion through the Session state
// machine and returns the report.
func session(m *simos.Model, app *simos.App, metric core.Metric, s search.Searcher,
	opts core.Options) (*core.Report, error) {
	var clock vm.Clock
	eng := core.NewEngine(m, app, metric, s, &clock, opts.Seed)
	sess, err := eng.NewSession(opts)
	if err != nil {
		return nil, err
	}
	return sess.Run(context.Background())
}

// fmtF formats a float compactly.
func fmtF(v float64, digits int) string {
	return fmt.Sprintf("%.*f", digits, v)
}

// meanOf averages a slice.
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// resampleToGrid linearly resamples an (x, y) step series onto a uniform
// grid of n points over [0, xMax], holding the last value. Used to average
// runs whose evaluations finish at different virtual times.
func resampleToGrid(xs, ys []float64, xMax float64, n int) []float64 {
	out := make([]float64, n)
	if len(xs) == 0 {
		return out
	}
	j := 0
	cur := ys[0]
	for i := 0; i < n; i++ {
		t := xMax * float64(i) / float64(n-1)
		for j < len(xs) && xs[j] <= t {
			cur = ys[j]
			j++
		}
		out[i] = cur
	}
	return out
}

// averageRuns resamples per-run series to a grid and averages them.
func averageRuns(runs []*core.Report, value func(*core.Report) []float64, xMax float64, n int) Series {
	grid := make([]float64, n)
	for i := range grid {
		grid[i] = xMax * float64(i) / float64(n-1)
	}
	acc := make([]float64, n)
	for _, rep := range runs {
		xs := make([]float64, len(rep.History))
		for i, h := range rep.History {
			xs[i] = h.EndSec
		}
		r := resampleToGrid(xs, value(rep), xMax, n)
		for i := range acc {
			acc[i] += r[i]
		}
	}
	for i := range acc {
		acc[i] /= float64(len(runs))
	}
	return Series{X: grid, Y: acc}
}

// sortedCopy returns a sorted copy.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
