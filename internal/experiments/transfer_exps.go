// The tuning-memory experiment: how much faster a session reaches a
// quality target as the transfer corpus it warm-starts from grows.
package experiments

import (
	"fmt"

	"wayfinder/internal/apps"
	"wayfinder/internal/core"
	"wayfinder/internal/corpus"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/search"
)

// transferSizes is the corpus-size ladder Transferscale sweeps: 0 is the
// cold-start baseline, the rest grow the memory one source at a time.
var transferSizes = []int{0, 1, 2, 4}

// transferSourceApps cycles the applications the corpus is built from —
// deliberately none of them the target app, so every warm start is a
// cross-application transfer through the importance-similarity index.
var transferSourceApps = []string{"redis", "sqlite", "npb", "redis"}

// Transferscale measures observations-to-target against corpus size: a
// fixed fleet of source sessions (redis, sqlite, npb — never the nginx
// target) deposit their outcomes into a transfer corpus; nginx sessions
// then warm-start from corpora holding progressively more of those
// entries, and the experiment reports the median number of observations
// each corpus size needs to reach a quality target derived from the
// cold-start runs. Later sources run longer, so a bigger corpus holds a
// strictly better nearest neighbor — memory is worth more as it grows,
// and the median must fall monotonically across the ladder.
//
// Determinism: sessions and corpora are seeded and content-addressed, so
// the whole experiment is a pure function of its Scale; each measurement
// run gets a private copy of the frozen corpus, keeping its own deposit
// from leaking into the next run's query.
func Transferscale(scale Scale) (*Result, error) {
	iters := scale.Iterations
	if iters < 40 {
		iters = 40
	}
	seeds := scale.Seeds
	if seeds < 1 {
		seeds = 1
	}

	// Source sessions: the i-th runs longer than the (i-1)-th, so each
	// corpus growth step adds a new best-ranked (most-observed) neighbor.
	maxSize := transferSizes[len(transferSizes)-1]
	base := iters / 2
	var entries []*corpus.Entry
	for i := 0; i < maxSize; i++ {
		st, err := corpus.Open("")
		if err != nil {
			return nil, err
		}
		app, err := apps.ByName(transferSourceApps[i%len(transferSourceApps)])
		if err != nil {
			return nil, err
		}
		m := newLinuxRuntimeFavored(scale, 1)
		dc := deeptune.DefaultConfig()
		dc.Seed = 100 + uint64(i)
		s := search.NewDeepTune(m.Space, true, dc)
		opts := core.Options{Iterations: base + i*base, Seed: 100 + uint64(i), Corpus: st}
		if _, err := session(m, app, &core.PerfMetric{App: app}, s, opts); err != nil {
			return nil, err
		}
		if st.Len() != 1 {
			return nil, fmt.Errorf("transferscale: source %d deposited %d entries, want 1", i, st.Len())
		}
		for _, d := range st.Digests() {
			e, _ := st.Get(d)
			entries = append(entries, e)
		}
	}

	// assemble builds a fresh corpus holding the first n source entries.
	assemble := func(n int) (*corpus.Store, error) {
		st, err := corpus.Open("")
		if err != nil {
			return nil, err
		}
		for _, e := range entries[:n] {
			if _, err := st.Deposit(e); err != nil {
				return nil, err
			}
		}
		return st, nil
	}

	// One target run: nginx, warm-started from a private copy of the
	// size-n corpus (n=0 is the cold baseline).
	target := func(n int, seed uint64) (*core.Report, error) {
		st, err := assemble(n)
		if err != nil {
			return nil, err
		}
		m := newLinuxRuntimeFavored(scale, seed)
		app, err := apps.ByName("nginx")
		if err != nil {
			return nil, err
		}
		dc := deeptune.DefaultConfig()
		dc.Seed = seed
		s := search.NewDeepTune(m.Space, true, dc)
		opts := core.Options{Iterations: iters, Seed: seed, Corpus: st}
		if n > 0 {
			opts.WarmStartK = 4
		}
		return session(m, app, &core.PerfMetric{App: app}, s, opts)
	}

	reports := make(map[int][]*core.Report, len(transferSizes))
	for _, n := range transferSizes {
		for s := 0; s < seeds; s++ {
			rep, err := target(n, uint64(1+s))
			if err != nil {
				return nil, err
			}
			reports[n] = append(reports[n], rep)
		}
	}

	// The quality target: just under the mean of the cold runs' final
	// bests. Cold runs need most of their budget to get there, so the
	// baseline is expensive; warm runs reach it only by actually
	// exploiting the transferred seeds and weights, not by any first
	// probe clearing a trivially low bar — which is what separates the
	// ladder's sizes instead of letting them all tie at one observation.
	var coldBests []float64
	for i, rep := range reports[0] {
		if rep.Best == nil {
			return nil, fmt.Errorf("transferscale: cold run %d found no viable configuration", i)
		}
		coldBests = append(coldBests, rep.Best.Metric)
	}
	tau := 0.975 * meanOf(coldBests)

	// obsTo counts the observations a run needed to reach tau (budget+1
	// when it never did).
	obsTo := func(rep *core.Report) float64 {
		for i, h := range rep.History {
			if !h.Crashed && h.Metric >= tau {
				return float64(i + 1)
			}
		}
		return float64(iters + 1)
	}

	res := &Result{
		ID:    "transferscale",
		Title: "Tuning memory: observations-to-target vs. transfer-corpus size",
		Notes: []string{
			fmt.Sprintf("target tau = %.1f (97.5%% of the mean cold-run best), %d runs per corpus size, budget %d", tau, seeds, iters),
			"sources are redis/sqlite/npb only: every warm start crosses applications through the importance-similarity index",
		},
	}
	table := Table{
		Title:   "median observations to reach the target",
		Columns: []string{"corpus entries", "median obs-to-target", "mean best", "mean corpus seeds"},
	}
	series := Series{Name: "obs-to-target-median"}
	for _, n := range transferSizes {
		var obs, bests, seedsUsed []float64
		for _, rep := range reports[n] {
			obs = append(obs, obsTo(rep))
			if rep.Best != nil {
				bests = append(bests, rep.Best.Metric)
			}
			seedsUsed = append(seedsUsed, float64(rep.CorpusSeeds))
		}
		med := medianOf(obs)
		series.X = append(series.X, float64(n))
		series.Y = append(series.Y, med)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", n), fmtF(med, 1), fmtF(meanOf(bests), 1), fmtF(meanOf(seedsUsed), 1),
		})
	}
	res.Tables = append(res.Tables, table)
	res.Series = append(res.Series, series)

	monotone := true
	for i := 1; i < len(series.Y); i++ {
		if series.Y[i] >= series.Y[i-1] {
			monotone = false
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf("strictly decreasing across the ladder: %v", monotone))
	return res, nil
}

// medianOf returns the median of xs (mean of the middle pair when even).
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := sortedCopy(xs)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
