package experiments

import (
	"fmt"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/forest"
	"wayfinder/internal/kconfig"
	"wayfinder/internal/rng"
	"wayfinder/internal/simos"
)

// Fig1 reproduces Figure 1: the growth of Linux's compile-time
// configuration space across releases, obtained by generating and parsing
// a synthetic Kconfig tree per version and counting its options.
func Fig1(Scale) (*Result, error) {
	res := &Result{ID: "fig1", Title: "Linux compile-time configuration space over time"}
	table := Table{
		Title:   "Kconfig compile-time options per release",
		Columns: []string{"version", "options"},
	}
	var xs, ys []float64
	for i, vc := range kconfig.LinuxVersions {
		src, err := kconfig.GenerateVersion(vc.Version, 1)
		if err != nil {
			return nil, err
		}
		tree, err := kconfig.Parse(src)
		if err != nil {
			return nil, err
		}
		total := tree.Census().Total()
		table.Rows = append(table.Rows, []string{vc.Version, fmt.Sprint(total)})
		xs = append(xs, float64(i))
		ys = append(ys, float64(total))
	}
	res.Tables = append(res.Tables, table)
	res.Series = append(res.Series, Series{Name: "kconfig-options", X: xs, Y: ys})
	res.Notes = append(res.Notes,
		"paper shape: ~5.9k options at v2.6.13 growing monotonically to ~21k at v6.0")
	return res, nil
}

// Table1 reproduces Table 1: the Linux 6.0 configuration-space census.
// Compile-time counts come from parsing the generated v6.0 Kconfig tree;
// boot-time and runtime counts from walking the simulated kernel's
// command-line options and writable /proc/sys + /sys files.
func Table1(Scale) (*Result, error) {
	res := &Result{ID: "table1", Title: "Configuration space for Linux 6.0"}
	src, err := kconfig.GenerateVersion("v6.0", 1)
	if err != nil {
		return nil, err
	}
	tree, err := kconfig.Parse(src)
	if err != nil {
		return nil, err
	}
	c := tree.Census()
	census := simos.NewLinuxCensus(1).Space.Census()
	res.Tables = append(res.Tables, Table{
		Title: "Option counts by class and type",
		Columns: []string{"bool", "tristate", "string", "hex", "int",
			"boot-time", "runtime"},
		Rows: [][]string{{
			fmt.Sprint(c.Bool), fmt.Sprint(c.Tristate), fmt.Sprint(c.String),
			fmt.Sprint(c.Hex), fmt.Sprint(c.Int),
			fmt.Sprint(census.Boot), fmt.Sprint(census.Runtime),
		}},
	})
	res.Notes = append(res.Notes,
		"paper: 7585 bool, 10034 tristate, 154 string, 94 hex, 3405 int, 231 boot, 13328 runtime")
	return res, nil
}

// Fig2 reproduces Figure 2: the throughput of N random Linux
// configurations running Nginx, sorted ascending, against the default
// configuration. Crashing configurations are re-drawn until N valid ones
// are collected, as in §2.2.
func Fig2(scale Scale) (*Result, error) {
	res := &Result{ID: "fig2", Title: "Nginx throughput for random Linux configurations"}
	m := newLinuxRuntimeFavored(scale, 1)
	app := apps.Nginx()
	r := rng.New(0xf162)
	var perfs []float64
	attempts, crashes := 0, 0
	for len(perfs) < scale.RandomConfigs {
		attempts++
		c := m.Space.Random(r)
		if st, _ := m.CrashOutcome(c); st != simos.StageOK {
			crashes++
			continue
		}
		perfs = append(perfs, m.Performance(c, app, r))
	}
	sorted := sortedCopy(perfs)
	xs := make([]float64, len(sorted))
	for i := range xs {
		xs[i] = float64(i)
	}
	res.Series = append(res.Series,
		Series{Name: "sorted-throughput", X: xs, Y: sorted},
		Series{Name: "default", X: []float64{0, float64(len(sorted) - 1)}, Y: []float64{app.Base, app.Base}},
	)
	below := 0
	for _, p := range sorted {
		if p < app.Base {
			below++
		}
	}
	res.Tables = append(res.Tables, Table{
		Title:   "Random-sampling summary",
		Columns: []string{"valid configs", "crash rate", "min", "median", "max", "max/default", "frac below default"},
		Rows: [][]string{{
			fmt.Sprint(len(sorted)),
			fmtF(float64(crashes)/float64(attempts), 3),
			fmtF(sorted[0], 0), fmtF(sorted[len(sorted)/2], 0), fmtF(sorted[len(sorted)-1], 0),
			fmtF(sorted[len(sorted)-1]/app.Base, 3),
			fmtF(float64(below)/float64(len(sorted)), 2),
		}},
	})
	res.Notes = append(res.Notes,
		"paper shape: ~80% spread (≈10k..18k req/s), best ≈12% over default, ~1/3 of draws crash, 64% below default")
	return res, nil
}

// Fig5 reproduces Figure 5: the cross-similarity matrix between the four
// applications' parameter-importance profiles. For each application we
// sample random configurations, label them with the measured metric, fit
// a random-forest regressor, extract permutation feature importances, and
// compare the (unit-normalized) importance vectors by Euclidean distance.
func Fig5(scale Scale) (*Result, error) {
	res := &Result{ID: "fig5", Title: "Cross-similarity matrix of parameter importance"}
	m := newLinuxRuntimeFavored(scale, 1)
	all := apps.All()
	r := rng.New(0xf165)
	// Shared random configurations across apps keep the comparison apples
	// to apples and halve the sampling cost.
	enc := configspace.NewEncoder(m.Space)
	var cfgs []*configspace.Config
	var feats [][]float64
	for len(cfgs) < scale.PerAppConfigs {
		c := m.Space.Random(r)
		if st, _ := m.CrashOutcome(c); st != simos.StageOK {
			continue // importance is fit on valid configurations
		}
		cfgs = append(cfgs, c)
		feats = append(feats, enc.Encode(c))
	}
	importances := make([][]float64, len(all))
	for ai, app := range all {
		ys := make([]float64, len(cfgs))
		cr := rng.New(uint64(0xf165) + uint64(ai))
		for i, c := range cfgs {
			// Re-measure per app on the same configurations. Latency
			// metrics are sign-flipped so "important" means the same
			// direction everywhere.
			y := m.Performance(c, app, cr)
			if !app.Maximize {
				y = -y
			}
			ys[i] = y
		}
		cfg := forest.DefaultConfig()
		cfg.Trees = 30
		cfg.Seed = uint64(ai) + 1
		f := forest.Fit(feats, ys, cfg)
		importances[ai] = f.Importance(uint64(ai) + 100)
	}
	table := Table{
		Title:   "Cross-similarity (1 = identical importance profiles)",
		Columns: append([]string{""}, names(all)...),
	}
	for i, a := range all {
		row := []string{a.Name}
		for j := range all {
			row = append(row, fmtF(forest.Similarity(importances[i], importances[j]), 3))
		}
		table.Rows = append(table.Rows, row)
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		"paper shape: Nginx/Redis/SQLite mutually ≥0.94, NPB ≈0.45 against all three")
	return res, nil
}

func names(all []*simos.App) []string {
	out := make([]string, len(all))
	for i, a := range all {
		out[i] = a.Name
	}
	return out
}
