package experiments

import (
	"fmt"
	"time"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/core"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/gp"
	"wayfinder/internal/rng"
	"wayfinder/internal/search"
)

// Searcherscale charts the model-side decision cost of the learned
// searchers before and after the incremental surrogate layer (the §2.3
// scalability argument, measured on our own implementation):
//
//   - A Gaussian-process surrogate absorbing SurrogateObs observations
//     one at a time, once with from-scratch O(n³) refactorization per add
//     (the pre-incremental behavior, Θ(T⁴) per session) and once with the
//     O(n²) in-place Cholesky extension (Θ(T³) per session) — the
//     decision-cost-vs-observations curves.
//   - A full Bayesian search session per mode, so the saving is visible
//     in the Fig 8 accounting (per-iteration DecisionCost) and in host
//     wall-clock.
//   - A machine-readable hot-path snapshot (ns/op for the surrogate add
//     paths, native batch proposal, and the DeepTune observe path, plus
//     the end-to-end quick-session wall-clock) — the perf trajectory
//     wfbench -json captures into BENCH_PR4.json-style artifacts.
func Searcherscale(scale Scale) (*Result, error) {
	res := &Result{ID: "searcherscale", Title: "Incremental surrogates: decision cost vs observations"}
	n := scale.SurrogateObs
	if n <= 0 {
		n = 256
	}
	const dim = 6

	// --- GP add-cost curves: refit vs incremental on identical data. ---
	runGP := func(refit bool) (perAdd []float64, total float64, err error) {
		g := gp.New(0.5, 1, 1e-3)
		g.SetForceRefit(refit)
		r := rng.New(1)
		probe := make([]float64, dim)
		for d := range probe {
			probe[d] = 0.5
		}
		perAdd = make([]float64, n)
		for i := 0; i < n; i++ {
			x := make([]float64, dim)
			for d := range x {
				x[d] = r.Float64()
			}
			y := r.Float64()
			start := time.Now()
			g.Add(x, y)
			// Predict forces the factor update — the add's real cost.
			if _, _, err := g.Predict(probe); err != nil {
				return nil, 0, err
			}
			d := time.Since(start).Seconds()
			perAdd[i] = d
			total += d
		}
		return perAdd, total, nil
	}
	refitCurve, refitTotal, err := runGP(true)
	if err != nil {
		return nil, err
	}
	incCurve, incTotal, err := runGP(false)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	res.Series = append(res.Series,
		Series{Name: "gp-add-refit-s", X: xs, Y: refitCurve},
		Series{Name: "gp-add-incremental-s", X: xs, Y: incCurve},
	)
	// Tail cost: mean over the last decile, where the asymptotics dominate.
	tail := func(ys []float64) float64 {
		k := len(ys) / 10
		if k == 0 {
			k = 1
		}
		return meanOf(ys[len(ys)-k:])
	}
	speedup := 0.0
	if t := tail(incCurve); t > 0 {
		speedup = tail(refitCurve) / t
	}
	res.Tables = append(res.Tables, Table{
		Title:   fmt.Sprintf("Surrogate update cost over %d observations (dim %d)", n, dim),
		Columns: []string{"surrogate", "session s", "tail µs/add", "tail speedup"},
		Rows: [][]string{
			{"full-refit", fmtF(refitTotal, 3), fmtF(tail(refitCurve)*1e6, 1), "1.00x"},
			{"incremental", fmtF(incTotal, 3), fmtF(tail(incCurve)*1e6, 1), fmtF(speedup, 2) + "x"},
		},
	})

	// --- Full Bayesian sessions: Fig 8 decision-cost accounting. ---
	app := apps.Nginx()
	runSession := func(refit bool) (*core.Report, float64, error) {
		m := newLinuxRuntimeFavored(scale, 1)
		s := search.NewBayesian(m.Space, true, 1)
		s.SetSurrogateRefit(refit)
		start := time.Now()
		rep, err := session(m, app, &core.PerfMetric{App: app}, s,
			core.Options{Iterations: scale.Iterations, Seed: 1})
		return rep, time.Since(start).Seconds(), err
	}
	refitRep, refitWall, err := runSession(true)
	if err != nil {
		return nil, err
	}
	incRep, incWall, err := runSession(false)
	if err != nil {
		return nil, err
	}
	decisions := func(rep *core.Report) Series {
		s := Series{X: make([]float64, len(rep.History)), Y: make([]float64, len(rep.History))}
		for i, h := range rep.History {
			s.X[i] = float64(i)
			s.Y[i] = h.DecisionCost.Seconds()
		}
		return s
	}
	dRefit := decisions(refitRep)
	dRefit.Name = "bayesian-decision-refit-s"
	dInc := decisions(incRep)
	dInc.Name = "bayesian-decision-incremental-s"
	res.Series = append(res.Series, dRefit, dInc)
	sessionRow := func(label string, rep *core.Report, wall float64) []string {
		best := 0.0
		if rep.Best != nil {
			best = rep.Best.Metric
		}
		total := 0.0
		for _, h := range rep.History {
			total += h.DecisionCost.Seconds()
		}
		return []string{label, fmtF(total, 3), fmtF(wall, 2), fmtF(best, 0)}
	}
	res.Tables = append(res.Tables, Table{
		Title:   fmt.Sprintf("Bayesian session (%d iterations, sequential)", scale.Iterations),
		Columns: []string{"surrogate", "decision s", "host wall s", "best req/s"},
		Rows: [][]string{
			sessionRow("full-refit", refitRep, refitWall),
			sessionRow("incremental", incRep, incWall),
		},
	})

	// --- Hot-path snapshot: the machine-readable perf trajectory. ---
	snapshot := Table{
		Title:   "Hot-path snapshot",
		Columns: []string{"path", "ns/op", "note"},
	}
	snapshot.Rows = append(snapshot.Rows,
		[]string{"gp-add-incremental", fmtF(tail(incCurve)*1e9, 0), fmt.Sprintf("per add at n≈%d", n)},
		[]string{"gp-add-refit", fmtF(tail(refitCurve)*1e9, 0), fmt.Sprintf("per add at n≈%d", n)},
	)
	// Native batch proposal on a warm surrogate: pool scoring + constant-
	// liar fantasization for 8 slots.
	{
		m := newLinuxRuntimeFavored(scale, 1)
		s := search.NewBayesian(m.Space, true, 2)
		enc := configspace.NewEncoder(m.Space)
		r := rng.New(2)
		for i := 0; i < 96; i++ {
			c := m.Space.Random(r)
			s.Observe(search.Observation{Config: c, X: enc.Encode(c), Metric: r.Float64() * 100, Stage: "ok"})
		}
		const reps = 8
		start := time.Now()
		for i := 0; i < reps; i++ {
			batch := s.ProposeBatch(8)
			for _, c := range batch {
				s.Observe(search.Observation{Config: c, X: enc.Encode(c), Metric: r.Float64() * 100, Stage: "ok"})
			}
		}
		perOp := time.Since(start).Seconds() / reps
		snapshot.Rows = append(snapshot.Rows,
			[]string{"bayesian-propose-batch8", fmtF(perOp*1e9, 0), "8-slot batch + observes, 96-obs surrogate"})
	}
	// DeepTune observe: the incremental DTM retrain (already flat-cost).
	{
		m := newLinuxRuntimeFavored(scale, 1)
		cfg := deeptune.DefaultConfig()
		cfg.Seed = 3
		s := search.NewDeepTune(m.Space, true, cfg)
		enc := configspace.NewEncoder(m.Space)
		r := rng.New(3)
		for i := 0; i < 32; i++ {
			c := m.Space.Random(r)
			s.Observe(search.Observation{Config: c, X: enc.Encode(c), Metric: r.Float64() * 100, Stage: "ok"})
		}
		c := m.Space.Random(r)
		start := time.Now()
		s.Observe(search.Observation{Config: c, X: enc.Encode(c), Metric: 50, Stage: "ok"})
		snapshot.Rows = append(snapshot.Rows,
			[]string{"deeptune-observe", fmtF(time.Since(start).Seconds()*1e9, 0), "incremental DTM retrain, 32-obs history"})
	}
	snapshot.Rows = append(snapshot.Rows,
		[]string{"bayesian-session-incremental", fmtF(incWall*1e9, 0), "end-to-end quick session host wall-clock"},
		[]string{"bayesian-session-refit", fmtF(refitWall*1e9, 0), "end-to-end quick session host wall-clock"})
	res.Tables = append(res.Tables, snapshot)

	res.Notes = append(res.Notes,
		fmt.Sprintf("incremental Cholesky extension makes the surrogate add O(n²) instead of O(n³): tail per-add speedup %.1fx at %d observations", speedup, n),
		"decision cost is host wall-clock (the Fig 8 'update time'); evaluation costs are virtual and unchanged",
	)
	return res, nil
}
