package experiments

import (
	"fmt"
	"math"
	"time"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/core"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/gp"
	"wayfinder/internal/rng"
	"wayfinder/internal/search"
)

// Searcherscale charts the model-side decision cost of the learned
// searchers before and after the incremental surrogate layer (the §2.3
// scalability argument, measured on our own implementation):
//
//   - A Gaussian-process surrogate absorbing SurrogateObs observations
//     one at a time, once with from-scratch O(n³) refactorization per add
//     (the pre-incremental behavior, Θ(T⁴) per session) and once with the
//     O(n²) in-place Cholesky extension (Θ(T³) per session) — the
//     decision-cost-vs-observations curves.
//   - A full Bayesian search session per mode, so the saving is visible
//     in the Fig 8 accounting (per-iteration DecisionCost) and in host
//     wall-clock.
//   - A machine-readable hot-path snapshot (ns/op for the surrogate add
//     paths, native batch proposal, and the DeepTune observe path, plus
//     the end-to-end quick-session wall-clock) — the perf trajectory
//     wfbench -json captures into BENCH_PR4.json-style artifacts.
func Searcherscale(scale Scale) (*Result, error) {
	res := &Result{ID: "searcherscale", Title: "Incremental surrogates: decision cost vs observations"}
	n := scale.SurrogateObs
	if n <= 0 {
		n = 256
	}
	const dim = 6

	// --- GP add-cost curves: refit vs incremental on identical data. ---
	runGP := func(refit bool) (perAdd []float64, total float64, err error) {
		g := gp.New(0.5, 1, 1e-3)
		g.SetForceRefit(refit)
		r := rng.New(1)
		probe := make([]float64, dim)
		for d := range probe {
			probe[d] = 0.5
		}
		perAdd = make([]float64, n)
		for i := 0; i < n; i++ {
			x := make([]float64, dim)
			for d := range x {
				x[d] = r.Float64()
			}
			y := r.Float64()
			start := time.Now()
			g.Add(x, y)
			// Predict forces the factor update — the add's real cost.
			if _, _, err := g.Predict(probe); err != nil {
				return nil, 0, err
			}
			d := time.Since(start).Seconds()
			perAdd[i] = d
			total += d
		}
		return perAdd, total, nil
	}
	refitCurve, refitTotal, err := runGP(true)
	if err != nil {
		return nil, err
	}
	incCurve, incTotal, err := runGP(false)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	res.Series = append(res.Series,
		Series{Name: "gp-add-refit-s", X: xs, Y: refitCurve},
		Series{Name: "gp-add-incremental-s", X: xs, Y: incCurve},
	)
	// Tail cost: mean over the last decile, where the asymptotics dominate.
	tail := func(ys []float64) float64 {
		k := len(ys) / 10
		if k == 0 {
			k = 1
		}
		return meanOf(ys[len(ys)-k:])
	}
	speedup := 0.0
	if t := tail(incCurve); t > 0 {
		speedup = tail(refitCurve) / t
	}
	res.Tables = append(res.Tables, Table{
		Title:   fmt.Sprintf("Surrogate update cost over %d observations (dim %d)", n, dim),
		Columns: []string{"surrogate", "session s", "tail µs/add", "tail speedup"},
		Rows: [][]string{
			{"full-refit", fmtF(refitTotal, 3), fmtF(tail(refitCurve)*1e6, 1), "1.00x"},
			{"incremental", fmtF(incTotal, 3), fmtF(tail(incCurve)*1e6, 1), fmtF(speedup, 2) + "x"},
		},
	})

	// --- Full Bayesian sessions: Fig 8 decision-cost accounting. ---
	app := apps.Nginx()
	runSession := func(refit bool) (*core.Report, float64, error) {
		m := newLinuxRuntimeFavored(scale, 1)
		s := search.NewBayesian(m.Space, true, 1)
		s.SetSurrogateRefit(refit)
		start := time.Now()
		rep, err := session(m, app, &core.PerfMetric{App: app}, s,
			core.Options{Iterations: scale.Iterations, Seed: 1})
		return rep, time.Since(start).Seconds(), err
	}
	refitRep, refitWall, err := runSession(true)
	if err != nil {
		return nil, err
	}
	incRep, incWall, err := runSession(false)
	if err != nil {
		return nil, err
	}
	decisions := func(rep *core.Report) Series {
		s := Series{X: make([]float64, len(rep.History)), Y: make([]float64, len(rep.History))}
		for i, h := range rep.History {
			s.X[i] = float64(i)
			s.Y[i] = h.DecisionCost.Seconds()
		}
		return s
	}
	dRefit := decisions(refitRep)
	dRefit.Name = "bayesian-decision-refit-s"
	dInc := decisions(incRep)
	dInc.Name = "bayesian-decision-incremental-s"
	res.Series = append(res.Series, dRefit, dInc)
	sessionRow := func(label string, rep *core.Report, wall float64) []string {
		best := 0.0
		if rep.Best != nil {
			best = rep.Best.Metric
		}
		total := 0.0
		for _, h := range rep.History {
			total += h.DecisionCost.Seconds()
		}
		return []string{label, fmtF(total, 3), fmtF(wall, 2), fmtF(best, 0)}
	}
	res.Tables = append(res.Tables, Table{
		Title:   fmt.Sprintf("Bayesian session (%d iterations, sequential)", scale.Iterations),
		Columns: []string{"surrogate", "decision s", "host wall s", "best req/s"},
		Rows: [][]string{
			sessionRow("full-refit", refitRep, refitWall),
			sessionRow("incremental", incRep, incWall),
		},
	})

	// --- Hot-path snapshot: the machine-readable perf trajectory. ---
	snapshot := Table{
		Title:   "Hot-path snapshot",
		Columns: []string{"path", "ns/op", "note"},
	}
	snapshot.Rows = append(snapshot.Rows,
		[]string{"gp-add-incremental", fmtF(tail(incCurve)*1e9, 0), fmt.Sprintf("per add at n≈%d", n)},
		[]string{"gp-add-refit", fmtF(tail(refitCurve)*1e9, 0), fmt.Sprintf("per add at n≈%d", n)},
	)
	// Native batch proposal on a warm surrogate: pool scoring + constant-
	// liar fantasization for 8 slots.
	{
		m := newLinuxRuntimeFavored(scale, 1)
		s := search.NewBayesian(m.Space, true, 2)
		enc := configspace.NewEncoder(m.Space)
		r := rng.New(2)
		for i := 0; i < 96; i++ {
			c := m.Space.Random(r)
			s.Observe(search.Observation{Config: c, X: enc.Encode(c), Metric: r.Float64() * 100, Stage: "ok"})
		}
		const reps = 8
		start := time.Now()
		for i := 0; i < reps; i++ {
			batch := s.ProposeBatch(8)
			for _, c := range batch {
				s.Observe(search.Observation{Config: c, X: enc.Encode(c), Metric: r.Float64() * 100, Stage: "ok"})
			}
		}
		perOp := time.Since(start).Seconds() / reps
		snapshot.Rows = append(snapshot.Rows,
			[]string{"bayesian-propose-batch8", fmtF(perOp*1e9, 0), "8-slot batch + observes, 96-obs surrogate"})
	}
	// DeepTune observe: the incremental DTM retrain (already flat-cost).
	{
		m := newLinuxRuntimeFavored(scale, 1)
		cfg := deeptune.DefaultConfig()
		cfg.Seed = 3
		s := search.NewDeepTune(m.Space, true, cfg)
		enc := configspace.NewEncoder(m.Space)
		r := rng.New(3)
		for i := 0; i < 32; i++ {
			c := m.Space.Random(r)
			s.Observe(search.Observation{Config: c, X: enc.Encode(c), Metric: r.Float64() * 100, Stage: "ok"})
		}
		c := m.Space.Random(r)
		start := time.Now()
		s.Observe(search.Observation{Config: c, X: enc.Encode(c), Metric: 50, Stage: "ok"})
		snapshot.Rows = append(snapshot.Rows,
			[]string{"deeptune-observe", fmtF(time.Since(start).Seconds()*1e9, 0), "incremental DTM retrain, 32-obs history"})
	}
	snapshot.Rows = append(snapshot.Rows,
		[]string{"bayesian-session-incremental", fmtF(incWall*1e9, 0), "end-to-end quick session host wall-clock"},
		[]string{"bayesian-session-refit", fmtF(refitWall*1e9, 0), "end-to-end quick session host wall-clock"})
	res.Tables = append(res.Tables, snapshot)

	res.Notes = append(res.Notes,
		fmt.Sprintf("incremental Cholesky extension makes the surrogate add O(n²) instead of O(n³): tail per-add speedup %.1fx at %d observations", speedup, n),
		"decision cost is host wall-clock (the Fig 8 'update time'); evaluation costs are virtual and unchanged",
	)
	return res, nil
}

// SearcherscaleWindow extends the searcherscale argument to unbounded
// sessions: with a sliding-window surrogate (rank-1 Cholesky downdates)
// the per-decision cost stays flat no matter how long the stream runs,
// where the unbounded surrogate grows as Θ(n²) per add. It also verifies
// — bit for bit — that the batched acquisition paths (one kernel-matrix
// build + one batch solve for the whole candidate pool, and the DTM's
// matrix-shaped pool pass) compute exactly what the scalar loops did,
// and measures what the batching buys.
func SearcherscaleWindow(scale Scale) (*Result, error) {
	res := &Result{ID: "searcherscale-window", Title: "Sliding-window surrogates: flat decision cost on unbounded streams"}
	stream := scale.SurrogateStream
	if stream <= 0 {
		stream = 2500
	}
	window := scale.SurrogateWindow
	if window < 8 {
		window = 256
	}
	// The tail decile must sit well past the 2×window steady-state
	// reference band for the flat-cost comparison to mean anything.
	if stream < 4*window {
		stream = 4 * window
	}
	const dim = 6

	// --- GP add-cost: unbounded vs windowed over a long stream. ---
	runStream := func(n, win int) (perAdd []float64, err error) {
		g := gp.New(0.5, 1, 1e-3)
		if win > 0 {
			if err := g.SetWindow(win); err != nil {
				return nil, err
			}
		}
		r := rng.New(1)
		probe := make([]float64, dim)
		for d := range probe {
			probe[d] = 0.5
		}
		perAdd = make([]float64, n)
		for i := 0; i < n; i++ {
			x := make([]float64, dim)
			for d := range x {
				x[d] = r.Float64()
			}
			y := r.Float64()
			start := time.Now()
			g.Add(x, y)
			// Predict forces the factor update — the add's real cost.
			if _, _, err := g.Predict(probe); err != nil {
				return nil, err
			}
			perAdd[i] = time.Since(start).Seconds()
		}
		return perAdd, nil
	}
	// The unbounded baseline stops at 4×window: its per-add cost keeps
	// growing as Θ(n²) — which is exactly the pathology under test — so
	// streaming it the full distance would measure nothing new, slowly.
	baseN := 4 * window
	if baseN > stream {
		baseN = stream
	}
	unbounded, err := runStream(baseN, 0)
	if err != nil {
		return nil, err
	}
	windowed, err := runStream(stream, window)
	if err != nil {
		return nil, err
	}
	// band averages per-add cost over [center−h, center+h] — single adds
	// are too noisy to pin a ratio on.
	band := func(ys []float64, center int) float64 {
		h := window / 8
		lo, hi := center-h, center+h
		if lo < 0 {
			lo = 0
		}
		if hi > len(ys) {
			hi = len(ys)
		}
		return meanOf(ys[lo:hi])
	}
	tail := func(ys []float64) float64 {
		k := len(ys) / 10
		if k == 0 {
			k = 1
		}
		return meanOf(ys[len(ys)-k:])
	}
	// The flat-cost reference point sits at 2×window, the first band where
	// every add pays the full steady-state extend + rank-1 downdate; a band
	// at the window boundary itself would average in pre-window adds that
	// never downdate and understate the baseline.
	wAtWindow := band(windowed, 2*window)
	wTail := tail(windowed)
	uAtWindow := band(unbounded, 2*window)
	uTail := tail(unbounded)
	flatRatio := 0.0
	if wAtWindow > 0 {
		flatRatio = wTail / wAtWindow
	}
	growthRatio := 0.0
	if uAtWindow > 0 {
		growthRatio = uTail / uAtWindow
	}
	decimate := func(ys []float64) Series {
		stride := len(ys) / 512
		if stride < 1 {
			stride = 1
		}
		var s Series
		for i := 0; i < len(ys); i += stride {
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, ys[i])
		}
		return s
	}
	sU := decimate(unbounded)
	sU.Name = "gp-add-unbounded-s"
	sW := decimate(windowed)
	sW.Name = "gp-add-windowed-s"
	res.Series = append(res.Series, sU, sW)
	res.Tables = append(res.Tables, Table{
		Title:   fmt.Sprintf("Surrogate add cost over a %d-observation stream (window %d, dim %d)", stream, window, dim),
		Columns: []string{"surrogate", "obs", fmt.Sprintf("µs/add at %d", 2*window), "µs/add at tail", "tail ratio"},
		Rows: [][]string{
			{"unbounded", fmt.Sprint(baseN), fmtF(uAtWindow*1e6, 1), fmtF(uTail*1e6, 1), fmtF(growthRatio, 2) + "x"},
			{"windowed", fmt.Sprint(stream), fmtF(wAtWindow*1e6, 1), fmtF(wTail*1e6, 1), fmtF(flatRatio, 2) + "x"},
		},
	})

	// --- Batched acquisition: one matrix build + one batch solve for the
	// whole pool, verified bit-identical to the scalar EI loop. ---
	const pool = 96
	var eiLoopNs, eiBatchNs float64
	{
		g := gp.New(0.5, 1, 1e-3)
		if err := g.SetWindow(window); err != nil {
			return nil, err
		}
		r := rng.New(2)
		best := math.Inf(-1)
		for i := 0; i < window+window/2; i++ {
			x := make([]float64, dim)
			for d := range x {
				x[d] = r.Float64()
			}
			y := r.Float64() * 100
			if y > best {
				best = y
			}
			g.Add(x, y)
		}
		cands := make([][]float64, pool)
		for j := range cands {
			cands[j] = make([]float64, dim)
			for d := range cands[j] {
				cands[j][d] = r.Float64()
			}
		}
		const xi = 0.01
		loopEIs := make([]float64, pool)
		batchEIs := make([]float64, pool)
		// Warm both paths so factor sync and scratch growth are not billed.
		if err := g.ExpectedImprovementBatch(cands, best, xi, batchEIs); err != nil {
			return nil, err
		}
		const reps = 64
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for j, c := range cands {
				ei, err := g.ExpectedImprovement(c, best, xi)
				if err != nil {
					return nil, err
				}
				loopEIs[j] = ei
			}
		}
		eiLoopNs = time.Since(start).Seconds() * 1e9 / reps
		start = time.Now()
		for rep := 0; rep < reps; rep++ {
			if err := g.ExpectedImprovementBatch(cands, best, xi, batchEIs); err != nil {
				return nil, err
			}
		}
		eiBatchNs = time.Since(start).Seconds() * 1e9 / reps
		for j := range cands {
			if math.Float64bits(loopEIs[j]) != math.Float64bits(batchEIs[j]) {
				return nil, fmt.Errorf("searcherscale-window: batched EI diverged from the scalar loop at candidate %d: %v != %v",
					j, batchEIs[j], loopEIs[j])
			}
		}
	}

	// --- DTM pool scoring: one matrix-shaped forward pass, verified
	// bit-identical to per-candidate Predict. ---
	var dtmLoopNs, dtmBatchNs float64
	{
		cfg := deeptune.DefaultConfig()
		cfg.Seed = 5
		d := deeptune.New(dim, cfg)
		r := rng.New(5)
		const hist = 64
		xs := make([][]float64, hist)
		ys := make([]float64, hist)
		crashed := make([]bool, hist)
		for i := range xs {
			xs[i] = make([]float64, dim)
			for k := range xs[i] {
				xs[i][k] = r.Float64()
			}
			ys[i] = r.Float64() * 100
			crashed[i] = i%7 == 0
		}
		if err := d.Update(xs, ys, crashed); err != nil {
			return nil, err
		}
		cands := make([][]float64, pool)
		for j := range cands {
			cands[j] = make([]float64, dim)
			for k := range cands[j] {
				cands[j][k] = r.Float64()
			}
		}
		loopPreds := make([]deeptune.Prediction, pool)
		batchPreds := make([]deeptune.Prediction, pool)
		// Warm the batch scratch so the one-time growth is not billed.
		d.PredictBatch(cands, batchPreds)
		const reps = 64
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for j, c := range cands {
				loopPreds[j] = d.Predict(c)
			}
		}
		dtmLoopNs = time.Since(start).Seconds() * 1e9 / reps
		start = time.Now()
		for rep := 0; rep < reps; rep++ {
			d.PredictBatch(cands, batchPreds)
		}
		dtmBatchNs = time.Since(start).Seconds() * 1e9 / reps
		for j := range cands {
			l, b := loopPreds[j], batchPreds[j]
			if math.Float64bits(l.CrashProb) != math.Float64bits(b.CrashProb) ||
				math.Float64bits(l.Perf) != math.Float64bits(b.Perf) ||
				math.Float64bits(l.Sigma) != math.Float64bits(b.Sigma) ||
				math.Float64bits(l.Uncertainty) != math.Float64bits(b.Uncertainty) {
				return nil, fmt.Errorf("searcherscale-window: batched DTM prediction diverged from Predict at candidate %d", j)
			}
		}
	}
	eiSpeedup, dtmSpeedup := 0.0, 0.0
	if eiBatchNs > 0 {
		eiSpeedup = eiLoopNs / eiBatchNs
	}
	if dtmBatchNs > 0 {
		dtmSpeedup = dtmLoopNs / dtmBatchNs
	}
	res.Tables = append(res.Tables, Table{
		Title:   fmt.Sprintf("Batched acquisition over a %d-candidate pool (bit-identical to the scalar loops)", pool),
		Columns: []string{"path", "loop ns/pool", "batch ns/pool", "speedup"},
		Rows: [][]string{
			{"gp-expected-improvement", fmtF(eiLoopNs, 0), fmtF(eiBatchNs, 0), fmtF(eiSpeedup, 2) + "x"},
			{"dtm-score-pool", fmtF(dtmLoopNs, 0), fmtF(dtmBatchNs, 0), fmtF(dtmSpeedup, 2) + "x"},
		},
	})

	// --- End-to-end: the window engaged through Options.SurrogateWindow.
	// The session window is sized to the iteration budget so the sliding
	// window actually slides within the session. ---
	sessWin := scale.Iterations / 2
	if sessWin < 8 {
		sessWin = 8
	}
	app := apps.Nginx()
	runSession := func(win int) (*core.Report, float64, error) {
		m := newLinuxRuntimeFavored(scale, 1)
		s := search.NewBayesian(m.Space, true, 1)
		start := time.Now()
		rep, err := session(m, app, &core.PerfMetric{App: app}, s,
			core.Options{Iterations: scale.Iterations, Seed: 1, SurrogateWindow: win})
		return rep, time.Since(start).Seconds(), err
	}
	unbRep, unbWall, err := runSession(0)
	if err != nil {
		return nil, err
	}
	winRep, winWall, err := runSession(sessWin)
	if err != nil {
		return nil, err
	}
	sessionRow := func(label string, rep *core.Report, wall float64) []string {
		best := 0.0
		if rep.Best != nil {
			best = rep.Best.Metric
		}
		total := 0.0
		for _, h := range rep.History {
			total += h.DecisionCost.Seconds()
		}
		return []string{label, fmtF(total, 3), fmtF(wall, 2), fmtF(best, 0)}
	}
	res.Tables = append(res.Tables, Table{
		Title:   fmt.Sprintf("Bayesian session (%d iterations, window %d, sequential)", scale.Iterations, sessWin),
		Columns: []string{"surrogate", "decision s", "host wall s", "best req/s"},
		Rows: [][]string{
			sessionRow("unbounded", unbRep, unbWall),
			sessionRow(fmt.Sprintf("window-%d", sessWin), winRep, winWall),
		},
	})

	verdict := "PASS"
	if flatRatio > 1.5 {
		verdict = "FAIL"
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("flat-cost check: windowed tail µs/add at obs %d is %.2fx the steady-state cost at obs %d (acceptance ≤ 1.50x): %s",
			stream, flatRatio, 2*window, verdict),
		fmt.Sprintf("unbounded surrogate grew %.2fx over the same span it was allowed to run (%d obs)", growthRatio, baseN),
		"batched EI and batched DTM pool scoring verified bit-identical to the scalar loops before timing them",
	)
	return res, nil
}
