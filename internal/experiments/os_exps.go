package experiments

import (
	"fmt"
	"sort"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/core"
	"wayfinder/internal/cozart"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/rng"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
)

// Fig9 reproduces Figure 9: Nginx on the Unikraft unikernel, comparing
// Wayfinder (DeepTune), random search, and Bayesian optimization under a
// 3-hour virtual budget over 33 parameters (10 application + 23 OS).
func Fig9(scale Scale) (*Result, error) {
	res := &Result{ID: "fig9", Title: "Unikraft/Nginx: Wayfinder vs random vs Bayesian optimization"}
	app := apps.Nginx()
	// Unikraft's base throughput under the default config is lower than
	// Linux's tuned default; the headroom is what the figure shows.
	app.Base = 9500
	app.BenchSeconds = 30

	kinds := []struct {
		label string
		mk    func(m *simos.Model, seed uint64) search.Searcher
	}{
		{"random", func(m *simos.Model, seed uint64) search.Searcher {
			return search.NewRandom(m.Space, seed)
		}},
		{"bayesian", func(m *simos.Model, seed uint64) search.Searcher {
			return search.NewBayesian(m.Space, true, seed)
		}},
		{"wayfinder", func(m *simos.Model, seed uint64) search.Searcher {
			cfg := deeptune.DefaultConfig()
			cfg.Seed = seed
			return search.NewDeepTune(m.Space, true, cfg)
		}},
	}
	summary := Table{
		Title:   "Best throughput under the time budget (mean over runs)",
		Columns: []string{"searcher", "best req/s", "vs default", "iterations", "crash rate"},
	}
	for _, kind := range kinds {
		var runs []*core.Report
		for seed := uint64(1); seed <= uint64(scale.Seeds); seed++ {
			m := simos.NewUnikraft(1)
			rep, err := session(m, app, &core.PerfMetric{App: app}, kind.mk(m, seed),
				core.Options{TimeBudgetSec: scale.TimeBudgetSec, Seed: seed})
			if err != nil {
				return nil, err
			}
			runs = append(runs, rep)
		}
		sessionSeries(res, kind.label, runs, scale.TimeBudgetSec)
		var best, iters, crash []float64
		for _, rep := range runs {
			if rep.Best != nil {
				best = append(best, rep.Best.Metric)
			}
			iters = append(iters, float64(len(rep.History)))
			crash = append(crash, rep.CrashRate())
		}
		summary.Rows = append(summary.Rows, []string{
			kind.label, fmtF(meanOf(best), 0), fmtF(meanOf(best)/app.Base, 2) + "x",
			fmtF(meanOf(iters), 0), fmtF(meanOf(crash), 3),
		})
	}
	res.Tables = append(res.Tables, summary)
	res.Notes = append(res.Notes,
		"paper shape: Wayfinder converges by ~100 min, Bayesian needs >160 min to match, random never gets there")
	return res, nil
}

// Fig10 reproduces Figure 10: minimizing the memory footprint of RISC-V
// Linux images under a 3-hour budget, Wayfinder vs random, favoring
// compile-time options. Proposals mutate a bounded number of options from
// the distro default — fully random compile configurations essentially
// never boot.
func Fig10(scale Scale) (*Result, error) {
	res := &Result{ID: "fig10", Title: "RISC-V Linux memory footprint minimization"}
	const mutateK = 30
	app := apps.Nginx() // the workload only needs to boot; metric is MB
	kinds := []struct {
		label string
		mk    func(m *simos.Model, seed uint64) search.Searcher
	}{
		{"random", func(m *simos.Model, seed uint64) search.Searcher {
			return search.NewRandomMutate(m.Space, mutateK, seed)
		}},
		{"deeptune", func(m *simos.Model, seed uint64) search.Searcher {
			cfg := deeptune.DefaultConfig()
			cfg.Seed = seed
			cfg.PoolMutateK = mutateK
			return search.NewDeepTune(m.Space, false, cfg)
		}},
	}
	defaultMB := 0.0
	summary := Table{
		Title:   "Footprint after the budget (mean over runs)",
		Columns: []string{"searcher", "best MB", "reduction", "crashes", "late crashes (last 25%)"},
	}
	for _, kind := range kinds {
		var runs []*core.Report
		for seed := uint64(1); seed <= uint64(scale.Seeds); seed++ {
			m := simos.NewRiscv(simos.DefaultRiscvOptions())
			m.Space.Favor(configspace.Runtime, 0.2)
			if defaultMB == 0 { //wfvet:ignore floateq 0 is the not-yet-measured sentinel, never a computed value
				defaultMB = m.MemoryMB(m.Space.Default(), rng.New(1))
			}
			rep, err := session(m, app, core.MemoryMetric{}, kind.mk(m, seed),
				core.Options{TimeBudgetSec: scale.TimeBudgetSec, Seed: seed})
			if err != nil {
				return nil, err
			}
			runs = append(runs, rep)
		}
		sessionSeries(res, kind.label, runs, scale.TimeBudgetSec)
		var best, crash, late []float64
		for _, rep := range runs {
			if rep.Best != nil {
				best = append(best, rep.Best.Metric)
			}
			crash = append(crash, rep.CrashRate())
			lateCount, lateTot := 0, 0
			for _, h := range rep.History[len(rep.History)*3/4:] {
				lateTot++
				if h.Crashed {
					lateCount++
				}
			}
			if lateTot > 0 {
				late = append(late, float64(lateCount)/float64(lateTot))
			}
		}
		summary.Rows = append(summary.Rows, []string{
			kind.label, fmtF(meanOf(best), 1),
			fmtF(100*(defaultMB-meanOf(best))/defaultMB, 1) + "%",
			fmtF(meanOf(crash), 3), fmtF(meanOf(late), 3),
		})
	}
	res.Tables = append(res.Tables, summary)
	res.Notes = append(res.Notes,
		fmt.Sprintf("default footprint %.1f MB; paper: Wayfinder 192 MB (-8.5%%), random 203 MB (-5.5%%), few late crashes for Wayfinder", defaultMB))
	return res, nil
}

// fig11Sessions runs the Cozart-synergy experiment and returns the score
// metric states alongside the reports (Table 4 reuses them).
func fig11Sessions(scale Scale) (random, deeptuneRuns []*core.Report,
	scoreMetrics, randomMetrics []*core.ScoreMetric, baselinePairs [][2]float64, err error) {
	app := apps.Nginx()
	for seed := uint64(1); seed <= uint64(scale.Seeds); seed++ {
		for _, kind := range []string{"random", "deeptune"} {
			m := simos.NewLinux(scale.Linux)
			base, aerr := cozart.Apply(m, app, 1)
			if aerr != nil {
				err = aerr
				return
			}
			// Cozart fixed the compile-time configuration; Wayfinder
			// explores the runtime parameters on top (§4.4).
			m.Space.Favor(configspace.CompileTime, 0)
			sm := &core.ScoreMetric{}
			// Record the Cozart baseline's own throughput/memory for the
			// Table 4 comparison row, using the session's noise stream.
			var s search.Searcher
			if kind == "random" {
				s = search.NewRandom(m.Space, seed)
			} else {
				cfg := deeptune.DefaultConfig()
				cfg.Seed = seed
				s = search.NewDeepTune(m.Space, true, cfg)
			}
			rep, rerr := session(m, app, sm, s,
				core.Options{TimeBudgetSec: scale.TimeBudgetSec, Seed: seed, WarmStart: true})
			if rerr != nil {
				err = rerr
				return
			}
			if kind == "random" {
				random = append(random, rep)
				randomMetrics = append(randomMetrics, sm)
			} else {
				deeptuneRuns = append(deeptuneRuns, rep)
				scoreMetrics = append(scoreMetrics, sm)
				bt, bm := sm.Pair(0) // WarmStart: observation 0 is the baseline
				baselinePairs = append(baselinePairs, [2]float64{bt, bm})
			}
			_ = base
		}
	}
	return
}

// Fig11 reproduces Figure 11: co-optimizing throughput and memory (the
// Eq. 4 score) on top of a Cozart-debloated baseline, Wayfinder vs random.
func Fig11(scale Scale) (*Result, error) {
	res := &Result{ID: "fig11", Title: "Throughput-memory co-optimization on top of Cozart"}
	random, dt, dtMetrics, rndMetrics, _, err := fig11Sessions(scale)
	if err != nil {
		return nil, err
	}
	sessionSeries(res, "random", random, scale.TimeBudgetSec)
	sessionSeries(res, "deeptune", dt, scale.TimeBudgetSec)
	// Rank on scores re-normalized over each whole session: the running
	// normalization used during the search is degenerate for the first few
	// observations.
	bestFinal := func(metrics []*core.ScoreMetric) []float64 {
		var best []float64
		for _, sm := range metrics {
			finals := sm.FinalScores()
			if len(finals) == 0 {
				continue
			}
			b := finals[0]
			for _, v := range finals[1:] {
				if v > b {
					b = v
				}
			}
			best = append(best, b)
		}
		return best
	}
	res.Tables = append(res.Tables, Table{
		Title:   "Best session-normalized score (mean over runs)",
		Columns: []string{"searcher", "best score"},
		Rows: [][]string{
			{"random", fmtF(meanOf(bestFinal(rndMetrics)), 3)},
			{"deeptune", fmtF(meanOf(bestFinal(dtMetrics)), 3)},
		},
	})
	res.Notes = append(res.Notes,
		"paper shape: DeepTune's policy outscores random, with an exploitation phase of lowered crash rate")
	return res, nil
}

// Table4 reproduces Table 4: the top-5 throughput/memory scores found
// during the Fig 11 exploration, re-normalized over the whole session,
// against the Cozart baseline.
func Table4(scale Scale) (*Result, error) {
	res := &Result{ID: "table4", Title: "Top-5 throughput-memory results on top of Cozart"}
	_, dt, metrics, _, basePairs, err := fig11Sessions(scale)
	if err != nil {
		return nil, err
	}
	if len(metrics) == 0 {
		return nil, fmt.Errorf("experiments: no deeptune sessions")
	}
	// Use the first session's full re-normalized scores (the paper ranks
	// within one exploration).
	sm := metrics[0]
	finals := sm.FinalScores()
	type entry struct {
		score, thr, mem float64
	}
	var entries []entry
	for i := 0; i < sm.Len(); i++ {
		t, m := sm.Pair(i)
		entries = append(entries, entry{finals[i], t, m})
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].score > entries[b].score })
	t := Table{
		Title:   "Top-5 scores (session 1)",
		Columns: []string{"rank", "score", "memory (MB)", "throughput (req/s)"},
	}
	for i := 0; i < len(entries) && i < 5; i++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(i + 1), fmtF(entries[i].score, 2),
			fmtF(entries[i].mem, 2), fmtF(entries[i].thr, 0),
		})
	}
	t.Rows = append(t.Rows, []string{
		"cozart", "-", fmtF(basePairs[0][1], 2), fmtF(basePairs[0][0], 0),
	})
	res.Tables = append(res.Tables, t)
	_ = dt
	res.Notes = append(res.Notes,
		"paper shape: top entries beat the Cozart baseline on throughput while using less memory")
	return res, nil
}
