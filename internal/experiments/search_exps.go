package experiments

import (
	"math"
	"runtime"
	"wayfinder/internal/apps"
	"wayfinder/internal/causal"
	"wayfinder/internal/core"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/nn"
	"wayfinder/internal/rng"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
	"wayfinder/internal/stats"
)

// linuxSessions runs the §4.1 sessions for one application: random,
// DeepTune, and DeepTune+TL (pretrained on Redis), each Seeds times.
type linuxSessions struct {
	app      *simos.App
	random   []*core.Report
	deeptune []*core.Report
	transfer []*core.Report
	// deeptuneSearchers retains one DeepTune searcher per seed for
	// post-hoc audits (Table 3, high-impact parameters).
	deeptuneSearchers []*search.DeepTune
}

// pretrainRedis trains a DeepTune model on Redis and returns its snapshot
// (§4.2: "we trained a model with DeepTune on Redis for 250 iterations").
func pretrainRedis(scale Scale, seed uint64) (*nn.Snapshot, error) {
	m := newLinuxRuntimeFavored(scale, seed)
	app := apps.Redis()
	cfg := deeptune.DefaultConfig()
	cfg.Seed = seed ^ 0x7e15
	s := search.NewDeepTune(m.Space, app.Maximize, cfg)
	if _, err := session(m, app, &core.PerfMetric{App: app}, s,
		core.Options{Iterations: scale.Iterations, Seed: seed ^ 0x7e15}); err != nil {
		return nil, err
	}
	return s.Selector().Model().Snapshot(map[string]string{"app": "redis"})
}

// runLinuxSessions executes the Fig 6 protocol for one application.
func runLinuxSessions(scale Scale, app *simos.App, redisSnap *nn.Snapshot) (*linuxSessions, error) {
	out := &linuxSessions{app: app}
	metric := func() core.Metric { return &core.PerfMetric{App: app} }
	for seed := uint64(1); seed <= uint64(scale.Seeds); seed++ {
		{
			m := newLinuxRuntimeFavored(scale, seed)
			rep, err := session(m, app, metric(), search.NewRandom(m.Space, seed),
				core.Options{Iterations: scale.Iterations, Seed: seed})
			if err != nil {
				return nil, err
			}
			out.random = append(out.random, rep)
		}
		{
			m := newLinuxRuntimeFavored(scale, seed)
			cfg := deeptune.DefaultConfig()
			cfg.Seed = seed
			s := search.NewDeepTune(m.Space, app.Maximize, cfg)
			rep, err := session(m, app, metric(), s,
				core.Options{Iterations: scale.Iterations, Seed: seed})
			if err != nil {
				return nil, err
			}
			out.deeptune = append(out.deeptune, rep)
			out.deeptuneSearchers = append(out.deeptuneSearchers, s)
		}
		if redisSnap != nil {
			m := newLinuxRuntimeFavored(scale, seed)
			cfg := deeptune.DefaultConfig()
			cfg.Seed = seed + 1000
			s := search.NewDeepTune(m.Space, app.Maximize, cfg)
			if err := s.Selector().Model().Restore(redisSnap); err != nil {
				return nil, err
			}
			rep, err := session(m, app, metric(), s,
				core.Options{Iterations: scale.Iterations, Seed: seed + 1000})
			if err != nil {
				return nil, err
			}
			out.transfer = append(out.transfer, rep)
		}
	}
	return out, nil
}

// maxElapsed returns the largest virtual duration across reports.
func maxElapsed(groups ...[]*core.Report) float64 {
	max := 0.0
	for _, g := range groups {
		for _, rep := range g {
			if rep.ElapsedSec > max {
				max = rep.ElapsedSec
			}
		}
	}
	return max
}

// sessionSeries appends the smoothed-metric and crash-rate curves of one
// searcher's runs.
func sessionSeries(res *Result, label string, runs []*core.Report, xMax float64) {
	const gridN = 120
	perf := averageRuns(runs, func(r *core.Report) []float64 {
		return r.SmoothedMetricSeries(0.15)
	}, xMax, gridN)
	perf.Name = label
	crash := averageRuns(runs, func(r *core.Report) []float64 {
		return r.CrashRateSeries(40)
	}, xMax, gridN)
	crash.Name = label + "-crash"
	res.Series = append(res.Series, perf, crash)
}

// Fig6 reproduces Figure 6: for each of the four applications, the
// evolution of configuration performance and crash rate over a search
// session for random search, DeepTune, and DeepTune with transfer
// learning from Redis.
func Fig6(scale Scale) (*Result, error) {
	res := &Result{ID: "fig6", Title: "Search sessions: random vs DeepTune vs DeepTune+TL"}
	redisSnap, err := pretrainRedis(scale, 0x99)
	if err != nil {
		return nil, err
	}
	for _, app := range apps.All() {
		sess, err := runLinuxSessions(scale, app, redisSnap)
		if err != nil {
			return nil, err
		}
		xMax := maxElapsed(sess.random, sess.deeptune, sess.transfer)
		sessionSeries(res, app.Name+"/random", sess.random, xMax)
		sessionSeries(res, app.Name+"/deeptune", sess.deeptune, xMax)
		sessionSeries(res, app.Name+"/deeptune+tl", sess.transfer, xMax)
		res.Tables = append(res.Tables, fig6Summary(app, sess))
	}
	res.Notes = append(res.Notes,
		"paper shape: DeepTune overtakes random after a warm-up; crash rate falls from ~0.3 toward 0.1; TL starts higher and crashes <10%")
	return res, nil
}

func fig6Summary(app *simos.App, sess *linuxSessions) Table {
	row := func(label string, runs []*core.Report) []string {
		var best, lateCrash, overall []float64
		for _, rep := range runs {
			if rep.Best != nil {
				best = append(best, rep.Best.Metric)
			}
			cr := rep.CrashRateSeries(40)
			lateCrash = append(lateCrash, cr[len(cr)-1])
			overall = append(overall, rep.CrashRate())
		}
		return []string{
			label,
			fmtF(meanOf(best), 0),
			fmtF(meanOf(best)/app.Base, 3),
			fmtF(meanOf(overall), 3),
			fmtF(meanOf(lateCrash), 3),
		}
	}
	t := Table{
		Title:   app.Name + " session summary (mean over runs)",
		Columns: []string{"searcher", "best " + app.Unit, "vs default", "crash rate", "late crash rate"},
	}
	t.Rows = append(t.Rows, row("random", sess.random))
	t.Rows = append(t.Rows, row("deeptune", sess.deeptune))
	if len(sess.transfer) > 0 {
		t.Rows = append(t.Rows, row("deeptune+tl", sess.transfer))
	}
	return t
}

// timeToReach returns the virtual time at which a run's metric first came
// within 2% of (or beat) a fixed target — the operationalization of
// Table 2's "avg. time to find". Using one target per application makes
// the TL and no-TL columns directly comparable.
func timeToReach(rep *core.Report, target float64) float64 {
	for _, h := range rep.History {
		if h.Crashed {
			continue
		}
		within := math.Abs(h.Metric-target) <= 0.02*math.Abs(target)
		better := (rep.Maximize && h.Metric >= target) || (!rep.Maximize && h.Metric <= target)
		if within || better {
			return h.EndSec
		}
	}
	return rep.ElapsedSec
}

// Table2 reproduces Table 2: the best configurations found per
// application, their improvement over the default (Lupine-Linux) metric,
// and the average time to find them with and without transfer learning.
func Table2(scale Scale) (*Result, error) {
	res := &Result{ID: "table2", Title: "Best configurations found (Linux, 250-iteration sessions)"}
	redisSnap, err := pretrainRedis(scale, 0x99)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: "Best-performing configurations",
		Columns: []string{"app", "default", "wayfinder", "unit", "relative",
			"time to find (no TL)", "time to find (TL)"},
	}
	for _, app := range apps.All() {
		sess, err := runLinuxSessions(scale, app, redisSnap)
		if err != nil {
			return nil, err
		}
		var best []float64
		for _, rep := range sess.deeptune {
			if rep.Best != nil {
				best = append(best, rep.Best.Metric)
			}
		}
		// The per-app target is the halfway point between the default and
		// the cold-started sessions' mean best: "time to find a specialized
		// configuration". TL's speedup is how much sooner it gets there —
		// the paper's Fig 6 observation that the transferred model's first
		// configurations already perform far above default.
		coldBest := meanOf(best)
		target := app.Base + 0.5*(coldBest-app.Base)
		if !app.Maximize {
			target = app.Base - 0.5*(app.Base-coldBest)
		}
		var ttfNo, ttfTL []float64
		for _, rep := range sess.deeptune {
			ttfNo = append(ttfNo, timeToReach(rep, target))
		}
		for _, rep := range sess.transfer {
			ttfTL = append(ttfTL, timeToReach(rep, target))
		}
		rel := meanOf(best) / app.Base
		if !app.Maximize {
			rel = app.Base / meanOf(best)
		}
		t.Rows = append(t.Rows, []string{
			app.Name, fmtF(app.Base, 0), fmtF(meanOf(best), 0), app.Unit,
			fmtF(rel, 2) + "x",
			fmtF(meanOf(ttfNo), 0) + "s", fmtF(meanOf(ttfTL), 0) + "s",
		})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"paper: nginx 1.24x, redis 1.14x, sqlite 1.00x, npb 1.02x; TL speeds time-to-find 3.2-4.5x")
	return res, nil
}

// Fig7 reproduces Figure 7: the per-iteration memory consumption and
// execution time of DeepTune vs the Unicorn-style causal optimizer on a
// synthetic dataset with known optima, over a run of the search process.
func Fig7(scale Scale) (*Result, error) {
	res := &Result{ID: "fig7", Title: "Scalability: DeepTune vs Unicorn (causal inference)"}
	const dim = 24
	objective := func(x []float64, r *rng.RNG) float64 {
		// Known global optimum at x0=1, x1=0 with a local optimum ridge.
		return 10*x[0] - 6*x[1] + 3*math.Sin(3*x[2]) + r.Normal(0, 0.2)
	}
	r := rng.New(0xf167)

	// Unicorn run.
	uni := causal.New(dim, true)
	var uniTime, uniMem, uniWork, uniX []float64
	for i := 0; i < scale.SynthIters; i++ {
		x := make([]float64, dim)
		for d := range x {
			x[d] = r.Float64()
		}
		uni.Observe(x, objective(x, r))
		uni.Fit()
		st := uni.LastStats()
		uniX = append(uniX, float64(i))
		uniTime = append(uniTime, st.Duration.Seconds())
		uniMem = append(uniMem, float64(st.HeapBytes))
		uniWork = append(uniWork, float64(st.Work))
	}

	// DeepTune run: incremental updates on the same growing history.
	cfg := deeptune.DefaultConfig()
	cfg.Epochs = 2
	dtm := deeptune.New(dim, cfg)
	var dtTime, dtMem, dtX []float64
	var xs [][]float64
	var ys []float64
	var crashes []bool
	r2 := rng.New(0xf168)
	for i := 0; i < scale.SynthIters; i++ {
		x := make([]float64, dim)
		for d := range x {
			x[d] = r2.Float64()
		}
		xs = append(xs, x)
		ys = append(ys, objective(x, r2))
		crashes = append(crashes, false)
		// Incremental: train on the most recent window only, the DTM's
		// update policy for unbounded histories.
		lo := 0
		if len(xs) > 128 {
			lo = len(xs) - 128
		}
		if err := dtm.Update(xs[lo:], ys[lo:], crashes[lo:]); err != nil {
			return nil, err
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		dtX = append(dtX, float64(i))
		dtTime = append(dtTime, dtm.LastUpdateCost().Seconds())
		dtMem = append(dtMem, float64(ms.HeapAlloc))
	}
	res.Series = append(res.Series,
		Series{Name: "unicorn-time-s", X: uniX, Y: uniTime},
		Series{Name: "unicorn-work", X: uniX, Y: uniWork},
		Series{Name: "deeptune-time-s", X: dtX, Y: dtTime},
		Series{Name: "unicorn-mem-bytes", X: uniX, Y: uniMem},
		Series{Name: "deeptune-mem-bytes", X: dtX, Y: dtMem},
	)
	// Growth factors: last-decile mean over first-decile mean.
	growth := func(ys []float64) float64 {
		n := len(ys) / 10
		if n == 0 {
			n = 1
		}
		head, tail := meanOf(ys[:n]), meanOf(ys[len(ys)-n:])
		if head <= 0 {
			return math.Inf(1)
		}
		return tail / head
	}
	res.Tables = append(res.Tables, Table{
		Title:   "Per-iteration cost growth (last decile / first decile)",
		Columns: []string{"algorithm", "time growth", "work growth", "memory growth"},
		Rows: [][]string{
			{"unicorn", fmtF(growth(uniTime), 1) + "x", fmtF(float64(uni.LastStats().Work)/1e6, 1) + "M touches (final)", fmtF(growth(uniMem), 1) + "x"},
			{"deeptune", fmtF(growth(dtTime), 1) + "x", "bounded window", fmtF(growth(dtMem), 1) + "x"},
		},
	})
	res.Notes = append(res.Notes,
		"paper shape: Unicorn's per-iteration time and memory grow without bound; DeepTune stays flat")
	return res, nil
}

// Fig8 reproduces Figure 8: the average DeepTune update time vs the
// average configuration-evaluation (test) time for each application.
func Fig8(scale Scale) (*Result, error) {
	res := &Result{ID: "fig8", Title: "DeepTune update time vs configuration test time"}
	t := Table{
		Title:   "Search-loop breakdown (averages per iteration)",
		Columns: []string{"component", "seconds", "kind"},
	}
	var updateCosts []float64
	for _, app := range apps.All() {
		m := newLinuxRuntimeFavored(scale, 1)
		cfg := deeptune.DefaultConfig()
		cfg.Seed = 0xf8
		s := search.NewDeepTune(m.Space, app.Maximize, cfg)
		rep, err := session(m, app, &core.PerfMetric{App: app}, s,
			core.Options{Iterations: scale.Iterations / 2, Seed: 0xf8})
		if err != nil {
			return nil, err
		}
		var testTimes []float64
		for _, h := range rep.History {
			testTimes = append(testTimes, h.EndSec-h.StartSec)
			updateCosts = append(updateCosts, h.DecisionCost.Seconds())
		}
		t.Rows = append(t.Rows, []string{
			app.Name + " test time", fmtF(meanOf(testTimes), 1), "virtual (per evaluation)",
		})
	}
	t.Rows = append([][]string{{
		"DeepTune update", fmtF(meanOf(updateCosts), 3), "wall-clock (per iteration)",
	}}, t.Rows...)
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"paper: update 0.85±0.10 s vs 60-80 s evaluations — the evaluation dominates; "+
			"our update cost is wall-clock on the host, evaluations are virtual seconds")
	return res, nil
}

// Table3 reproduces Table 3: DeepTune's base prediction accuracy — recall
// on failing configurations, recall on running configurations, and the
// normalized MAE of performance predictions — audited on fresh random
// configurations after a training session.
func Table3(scale Scale) (*Result, error) {
	res := &Result{ID: "table3", Title: "DeepTune base prediction accuracy"}
	t := Table{
		Title:   "Prediction accuracy on held-out random configurations",
		Columns: []string{"application", "failure accuracy", "run accuracy", "perf normalized MAE"},
	}
	for ai, app := range apps.All() {
		m := newLinuxRuntimeFavored(scale, 1)
		cfg := deeptune.DefaultConfig()
		cfg.Seed = uint64(0x7a3) + uint64(ai)
		s := search.NewDeepTune(m.Space, app.Maximize, cfg)
		if _, err := session(m, app, &core.PerfMetric{App: app}, s,
			core.Options{Iterations: scale.Iterations, Seed: uint64(0x7a3) + uint64(ai)}); err != nil {
			return nil, err
		}
		model := s.Selector().Model()
		enc := s.Selector().Encoder()
		r := rng.New(uint64(0x7a4) + uint64(ai))
		var failHit, failTot, runHit, runTot float64
		var preds, actual []float64
		for i := 0; i < 400; i++ {
			c := m.Space.Random(r)
			st, _ := m.CrashOutcome(c)
			p := model.Predict(enc.Encode(c))
			if st != simos.StageOK {
				failTot++
				if p.CrashProb > 0.5 {
					failHit++
				}
				continue
			}
			runTot++
			if p.CrashProb <= 0.5 {
				runHit++
			}
			preds = append(preds, p.Perf)
			actual = append(actual, m.Performance(c, app, r))
		}
		nmae := stats.NormalizedMAE(preds, actual)
		t.Rows = append(t.Rows, []string{
			app.Name,
			fmtF(failHit/math.Max(failTot, 1), 3),
			fmtF(runHit/math.Max(runTot, 1), 3),
			fmtF(nmae, 3),
		})
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"paper: failure accuracy 0.74-0.80, run accuracy 0.31-0.46, normalized MAE 0.11-0.36; "+
			"our simulator's crash regions are cleaner than a real kernel's, so run accuracy lands higher")
	return res, nil
}
