// The fleet-robustness studies: what deterministic host churn costs a
// session that retries elsewhere (elasticity), and how much of the fleet's
// cross-host transfer bill locality-aware dispatch recovers when the same
// images recur across rounds (locality).
package experiments

import (
	"fmt"
	"time"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/core"
	"wayfinder/internal/fault"
	"wayfinder/internal/rng"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
)

// Elasticity runs one search workload under a ladder of host outages —
// the same host down for progressively longer windows — and charts what
// the churn costs. Retry-elsewhere keeps every observation: the history
// stays complete at every rung (zero lost observations), and the only
// price is wall-clock, which grows with the outage length. Every rung is
// a pure function of its schedule, so the whole ladder reproduces
// byte-identically run to run.
func Elasticity(scale Scale) (*Result, error) {
	res := &Result{ID: "elasticity", Title: "Host churn under retry-elsewhere: complete histories, wall-clock cost"}
	w := scale.Workers
	if w < 4 {
		w = 4
	}
	hosts := scale.Hosts
	if hosts < 2 {
		hosts = 2
	}
	if hosts > w {
		hosts = w
	}

	app := apps.Nginx()
	run := func(sched *fault.Schedule) (*core.Report, error) {
		m := simos.NewLinux(scale.Linux)
		s := search.NewRandom(m.Space, 1)
		return session(m, app, &core.PerfMetric{App: app}, s, core.Options{
			Iterations: scale.Iterations, Seed: 1, Workers: w, Hosts: hosts, Faults: sched,
		})
	}

	base, err := run(nil)
	if err != nil {
		return nil, err
	}

	// The outage ladder: host 1 goes down a quarter of the way into the
	// fault-free run and stays down for a growing fraction of it (the
	// deepest rung outlasts the session — the host never returns). Each
	// faulted rung also injects one transient build failure mid-session,
	// so the retry path is exercised at every rung regardless of how the
	// outage aligns with evaluation boundaries. The rungs are spaced far
	// enough apart that the downtime cost dominates round-alignment noise.
	// A caller-supplied schedule (wfbench -faults) replaces the ladder
	// with one custom rung.
	type rung struct {
		label string
		sched *fault.Schedule
	}
	start := base.ElapsedSec / 4
	rungs := []rung{{"no faults", nil}}
	if scale.FaultSchedule != "" {
		sched, err := fault.Parse(scale.FaultSchedule)
		if err != nil {
			return nil, fmt.Errorf("elasticity: %v", err)
		}
		rungs = append(rungs, rung{"custom schedule", sched})
	} else {
		for _, frac := range []float64{0.25, 0.75, 2} {
			d := base.ElapsedSec * frac
			rungs = append(rungs, rung{
				fmt.Sprintf("host 1 down %.0fs", d),
				&fault.Schedule{Events: []fault.Event{
					{Kind: fault.HostDown, Host: 1, AtSec: start},
					{Kind: fault.HostUp, Host: 1, AtSec: start + d},
					{Kind: fault.BuildFail, Iter: scale.Iterations / 2, Attempt: 1},
				}},
			})
		}
	}

	t := Table{
		Title:   fmt.Sprintf("%d workers on %d hosts, %d iterations per rung", w, hosts, scale.Iterations),
		Columns: []string{"outage", "downtime s", "observed", "lost", "retries", "wall s", "util %"},
	}
	var downs, walls []float64
	for _, r := range rungs {
		rep, err := run(r.sched)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			r.label,
			fmtF(rep.HostDowntimeSec, 0),
			fmt.Sprintf("%d", len(rep.History)),
			fmt.Sprintf("%d", rep.LostObservations),
			fmt.Sprintf("%d", rep.Retries),
			fmtF(rep.ElapsedSec, 0),
			fmtF(100*rep.Utilization, 0),
		})
		downs = append(downs, rep.HostDowntimeSec)
		walls = append(walls, rep.ElapsedSec)
	}
	res.Tables = append(res.Tables, t)
	res.Series = append(res.Series, Series{Name: "wall-clock-s", X: downs, Y: walls})
	res.Notes = append(res.Notes, fmt.Sprintf(
		"every rung keeps the full %d-observation history — evaluations killed by the outage are retried on surviving hosts; the outage is paid in wall-clock (%.0fs fault-free, %.0fs at the deepest rung), never in coverage",
		scale.Iterations, walls[0], walls[len(walls)-1]))
	return res, nil
}

// imageCycle is the scripted workload of the Locality experiment: K
// candidate images recur across rounds, and the image→slot assignment
// rotates every round. Static placement keeps slots pinned to hosts, so
// each image lands on a different host every round and its artifact has
// to be re-fetched across the fleet network; locality-aware dispatch
// follows each image to the host already holding it. Proposals are a pure
// function of the seed.
type imageCycle struct {
	space  *configspace.Space
	per    int // slots per round (the worker-pool width)
	slot   int
	images []*configspace.Config
}

func newImageCycle(space *configspace.Space, per, k int, seed uint64) *imageCycle {
	r := rng.New(seed)
	var idx []int
	for i, p := range space.Params() {
		if p.Class == configspace.CompileTime {
			idx = append(idx, i)
		}
	}
	images := make([]*configspace.Config, k)
	for n := range images {
		donor := space.Random(r)
		img := space.Default()
		perm := r.Perm(len(idx))
		for j := 0; j < 3 && j < len(perm); j++ {
			i := idx[perm[j]]
			img.SetIndex(i, donor.Value(i))
		}
		images[n] = img
	}
	return &imageCycle{space: space, per: per, images: images, slot: 0}
}

func (s *imageCycle) Name() string { return "image-cycle" }

// Propose implements search.Searcher: runtime/boot parameters held to the
// image (the workload isolates placement, so every slot of an image group
// is the identical configuration and only dispatch differs between
// policies).
func (s *imageCycle) Propose() *configspace.Config {
	round, j := s.slot/s.per, s.slot%s.per
	k := len(s.images)
	img := s.images[(j*k/s.per+round)%k]
	s.slot++
	return img.Clone()
}

// ProposeBatch implements search.BatchSearcher natively (the scripted
// slot→image assignment IS the workload; dedup would destroy it).
func (s *imageCycle) ProposeBatch(n int) []*configspace.Config {
	out := make([]*configspace.Config, 0, n)
	for len(out) < n {
		out = append(out, s.Propose())
	}
	return out
}

func (s *imageCycle) Observe(search.Observation)  {}
func (s *imageCycle) DecisionCost() time.Duration { return 0 }

// Locality measures what locality-aware dispatch recovers of the fleet's
// cross-host transfer bill. The workload cycles K recurring images whose
// slot assignment rotates across rounds: under static placement each
// image's next round lands on a host that does not hold its artifact (a
// cross-host fetch, Model.TransferSeconds each); under locality dispatch
// the evaluation follows the image to the host that already has it.
func Locality(scale Scale) (*Result, error) {
	res := &Result{ID: "locality", Title: "Locality-aware dispatch vs static placement: cross-host transfer recovery"}
	w := scale.Workers
	if w < 4 {
		w = 4
	}
	hosts := scale.Hosts
	if hosts < 2 {
		hosts = 2
	}
	if hosts > w {
		hosts = w
	}
	k := hosts // one image per host: groups and partitions align exactly
	rounds := scale.Iterations / w
	if rounds < 3*k {
		rounds = 3 * k
	}
	iters := rounds * w

	app := apps.Nginx()
	run := func(dispatch string) (*core.Report, error) {
		m := simos.NewLinux(scale.Linux)
		s := newImageCycle(m.Space, w, k, 1)
		return session(m, app, &core.PerfMetric{App: app}, s, core.Options{
			Iterations: iters, Seed: 1, Workers: w, Hosts: hosts, Dispatch: dispatch,
		})
	}
	static, err := run(core.DispatchStatic)
	if err != nil {
		return nil, err
	}
	local, err := run(core.DispatchLocality)
	if err != nil {
		return nil, err
	}

	transferSec := simos.NewLinux(scale.Linux).TransferSeconds
	staticTransfer := float64(static.CacheRemoteHits) * transferSec
	localTransfer := float64(local.CacheRemoteHits) * transferSec
	recovered := 0.0
	if staticTransfer > 0 {
		recovered = 1 - localTransfer/staticTransfer
	}

	row := func(label string, rep *core.Report, transfer float64) []string {
		return []string{
			label,
			fmt.Sprintf("%d", rep.CacheHits),
			fmt.Sprintf("%d", rep.CacheRemoteHits),
			fmtF(transfer, 0),
			fmtF(rep.TransferSavedSec, 0),
			fmtF(rep.ElapsedSec, 0),
		}
	}
	res.Tables = append(res.Tables, Table{
		Title: fmt.Sprintf("%d recurring images rotating over %d rounds, %d workers on %d hosts",
			k, rounds, w, hosts),
		Columns: []string{"dispatch", "cache hits", "remote", "transfer s", "saved s", "wall s"},
		Rows: [][]string{
			row("static", static, staticTransfer),
			row("locality", local, localTransfer),
		},
	})
	res.Tables = append(res.Tables, Table{
		Title:   "Cross-host transfer recovered by locality dispatch",
		Columns: []string{"static transfer s", "locality transfer s", "recovered %"},
		Rows: [][]string{{
			fmtF(staticTransfer, 0),
			fmtF(localTransfer, 0),
			fmtF(100*recovered, 0),
		}},
	})
	res.Notes = append(res.Notes, fmt.Sprintf(
		"static placement re-ships each recurring image across hosts as its slots rotate (%d remote fetches, %.0fs of transfer); locality dispatch routes each image group to the host already holding its artifact, recovering %.0f%% of that bill",
		static.CacheRemoteHits, staticTransfer, 100*recovered))
	return res, nil
}
