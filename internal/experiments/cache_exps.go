// The artifact-cache and fleet-topology studies: what the shared
// content-addressed build cache saves over the historical per-worker
// image caches (cachehit), and what sharding one session across simulated
// hosts costs in cross-host transfers (fleet).
package experiments

import (
	"fmt"
	"time"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/core"
	"wayfinder/internal/rng"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
)

// cacheRow renders one session's cache accounting.
func cacheRow(setup string, rep *core.Report) []string {
	return []string{
		setup,
		fmt.Sprintf("%d", rep.Workers),
		fmt.Sprintf("%d", rep.Hosts),
		fmt.Sprintf("%d", rep.Builds),
		fmt.Sprintf("%d", rep.CacheHits),
		fmt.Sprintf("%d", rep.CacheRemoteHits),
		fmt.Sprintf("%d", rep.BuildsSaved),
		fmtF(rep.ElapsedSec, 0),
		fmtF(rep.ComputeSec, 0),
	}
}

var cacheColumns = []string{
	"setup", "workers", "hosts", "builds", "cache hits", "remote", "builds saved", "wall s", "compute s",
}

// Cachehit measures the duplicate-build pathology the shared store
// removes. The workload is the §4.1 setup (compile-time exploration
// pinned): every configuration shares one image digest, so the build work
// of an entire session is a single compile — which the per-worker caches
// of the historical engine nevertheless repeated once per worker, up to
// W× the sequential build count. With the content-addressed store, one
// worker builds, the rest wait on the in-flight build and fetch, and the
// session's build count returns to the sequential figure even when the
// fleet is split across hosts.
func Cachehit(scale Scale) (*Result, error) {
	res := &Result{ID: "cachehit", Title: "Shared artifact store vs per-worker build caches"}
	w := scale.Workers
	if w < 2 {
		w = 8
	}
	hosts := scale.Hosts
	if hosts < 1 {
		hosts = 1
	}

	app := apps.Nginx()
	run := func(opts core.Options) (*core.Report, error) {
		m := newLinuxRuntimeFavored(scale, 1)
		s := search.NewRandom(m.Space, 1)
		opts.Iterations, opts.Seed = scale.Iterations, 1
		return session(m, app, &core.PerfMetric{App: app}, s, opts)
	}

	seq, err := run(core.Options{})
	if err != nil {
		return nil, err
	}
	dup, err := run(core.Options{Workers: w, DisableCache: true})
	if err != nil {
		return nil, err
	}
	shared, err := run(core.Options{Workers: w})
	if err != nil {
		return nil, err
	}
	fleet, err := run(core.Options{Workers: w, Hosts: hosts})
	if err != nil {
		return nil, err
	}

	t := Table{
		Title:   fmt.Sprintf("Builds per session at an equal iteration budget (%d iterations)", scale.Iterations),
		Columns: cacheColumns,
		Rows: [][]string{
			cacheRow("sequential", seq),
			cacheRow("per-worker caches", dup),
			cacheRow("shared store", shared),
			cacheRow(fmt.Sprintf("shared store, %d hosts", fleet.Hosts), fleet),
		},
	}
	res.Tables = append(res.Tables, t)

	avoided := dup.Builds - shared.Builds
	ratio := 0.0
	if seq.Builds > 0 {
		ratio = float64(shared.Builds) / float64(seq.Builds)
	}
	res.Tables = append(res.Tables, Table{
		Title:   "Duplicate builds avoided by the shared store",
		Columns: []string{"avoided", "builds vs sequential", "compute saved s"},
		Rows: [][]string{{
			fmt.Sprintf("%d", avoided),
			fmtF(ratio, 2) + "x",
			fmtF(dup.ComputeSec-shared.ComputeSec, 0),
		}},
	})
	res.Notes = append(res.Notes, fmt.Sprintf(
		"per-worker caches rebuilt the identical image on every worker (%d builds); the shared store dedupes to %d — %.2fx the sequential count",
		dup.Builds, shared.Builds, ratio))
	return res, nil
}

// imageSweep is the scripted fleet workload of the Fleet experiment: each
// round proposes one fresh candidate image (the default compile
// assignment with a few compile parameters resampled, ladder-style) and
// fans per-round runtime variations of it across the whole worker pool —
// the image-per-round exploration pattern where a build-cache topology
// matters on every round, not just the first. It is a native
// BatchSearcher; proposals are a pure function of the seed.
type imageSweep struct {
	space *configspace.Space
	r     *rng.RNG
	per   int // proposals per image (the worker-pool width)
	slot  int
	image *configspace.Config // current round's compile assignment donor
}

func newImageSweep(space *configspace.Space, per int, seed uint64) *imageSweep {
	return &imageSweep{space: space, r: rng.New(seed), per: per}
}

func (s *imageSweep) Name() string { return "image-sweep" }

// nextImage draws the next candidate image: three compile parameters
// resampled off the default assignment. Staying near the incumbent is how
// compile ladders actually explore — and keeps candidates compiling, so
// every round yields one shareable artifact.
func (s *imageSweep) nextImage() {
	donor := s.space.Random(s.r)
	img := s.space.Default()
	var idx []int
	for i, p := range s.space.Params() {
		if p.Class == configspace.CompileTime {
			idx = append(idx, i)
		}
	}
	perm := s.r.Perm(len(idx))
	for j := 0; j < 3 && j < len(perm); j++ {
		i := idx[perm[j]]
		img.SetIndex(i, donor.Value(i))
	}
	s.image = img
}

// Propose implements search.Searcher: runtime/boot parameters resampled
// per slot, compile parameters held to the round's image.
func (s *imageSweep) Propose() *configspace.Config {
	if s.slot%s.per == 0 {
		s.nextImage()
	}
	s.slot++
	c := s.space.Random(s.r)
	for i, p := range s.space.Params() {
		if p.Class == configspace.CompileTime {
			c.SetIndex(i, s.image.Value(i))
		}
	}
	return c
}

// ProposeBatch implements search.BatchSearcher natively (dispatch-window
// dedup is pointless here: slots differ in freshly-sampled runtime
// values).
func (s *imageSweep) ProposeBatch(n int) []*configspace.Config {
	out := make([]*configspace.Config, 0, n)
	for len(out) < n {
		out = append(out, s.Propose())
	}
	return out
}

func (s *imageSweep) Observe(search.Observation)  {}
func (s *imageSweep) DecisionCost() time.Duration { return 0 }

// Fleet shards one session across simulated hosts and measures what the
// topology costs: every round one worker builds the round's image and
// every other worker fetches it — from the host store when co-located,
// across the fleet network otherwise — so the cross-host transfer term
// recurs on every round and accumulates into the wall-clock as the host
// count grows. The per-worker-cache baseline shows what any topology
// saves: without the store, all W workers rebuild the image every round.
func Fleet(scale Scale) (*Result, error) {
	res := &Result{ID: "fleet", Title: "Multi-host fleet topology: cross-host transfer cost"}
	w := scale.Workers
	if w < 2 {
		w = 8
	}
	iters := (scale.Iterations / w) * w // whole rounds, one image per round
	if iters < w {
		iters = w
	}

	app := apps.Nginx()
	run := func(opts core.Options) (*core.Report, error) {
		m := simos.NewLinux(scale.Linux)
		s := newImageSweep(m.Space, w, 1)
		opts.Iterations, opts.Seed, opts.Workers = iters, 1, w
		return session(m, app, &core.PerfMetric{App: app}, s, opts)
	}

	var ladder []int
	for h := 1; h <= w; h *= 2 {
		ladder = append(ladder, h)
	}
	t := Table{
		Title:   fmt.Sprintf("%d workers, one fresh image per round, %d rounds", w, iters/w),
		Columns: cacheColumns,
	}
	var xs, wall []float64
	baseWall, computeAt1Host := 0.0, 0.0
	var widest *core.Report
	for _, h := range ladder {
		rep, err := run(core.Options{Hosts: h, Dispatch: scale.Dispatch})
		if err != nil {
			return nil, err
		}
		label := "1 host"
		if h > 1 {
			label = fmt.Sprintf("%d hosts", h)
		}
		t.Rows = append(t.Rows, cacheRow(label, rep))
		if h == 1 {
			baseWall, computeAt1Host = rep.ElapsedSec, rep.ComputeSec
		}
		xs = append(xs, float64(h))
		wall = append(wall, rep.ElapsedSec)
		widest = rep
	}
	noCache, err := run(core.Options{DisableCache: true})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, cacheRow("per-worker caches", noCache))
	res.Tables = append(res.Tables, t)
	res.Series = append(res.Series, Series{Name: "wall-clock-s", X: xs, Y: wall})

	spread := wall[len(wall)-1] - baseWall
	res.Tables = append(res.Tables, Table{
		Title:   "Topology cost (all-remote fleet vs single host) and cache win (vs no store)",
		Columns: []string{"transfer cost s", "compute saved s"},
		Rows: [][]string{{
			fmtF(spread, 0),
			fmtF(noCache.ComputeSec-computeAt1Host, 0),
		}},
	})

	// Where the widest fleet's work actually landed, host by host: who
	// built, who fetched locally, who paid cross-host transfers.
	hb := Table{
		Title:   fmt.Sprintf("Per-host breakdown at %d hosts", widest.Hosts),
		Columns: []string{"host", "evals", "builds", "cache hits", "remote", "build skips", "crashes", "compute s"},
	}
	for _, hs := range widest.HostBreakdown() {
		hb.Rows = append(hb.Rows, []string{
			fmt.Sprintf("%d", hs.Host),
			fmt.Sprintf("%d", hs.Evals),
			fmt.Sprintf("%d", hs.Builds),
			fmt.Sprintf("%d", hs.CacheHits),
			fmt.Sprintf("%d", hs.RemoteHits),
			fmt.Sprintf("%d", hs.BuildSkips),
			fmt.Sprintf("%d", hs.Crashes),
			fmtF(hs.ComputeSec, 0),
		})
	}
	res.Tables = append(res.Tables, hb)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"splitting %d workers across more hosts adds %.0fs of cross-host transfers to the wall-clock (every round ships one image to every other host)",
		w, spread))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"the wall-clock cache win is a wash here — duplicate builds ran concurrently anyway — but the fleet's aggregate compute (the cloud bill) drops %.0f%%: %.0fs of duplicate builds gone",
		100*(noCache.ComputeSec-computeAt1Host)/noCache.ComputeSec, noCache.ComputeSec-computeAt1Host))
	return res, nil
}
