// Package snapcover guards snapshot completeness by reflection. The
// repository's resume guarantee — a restored session proposes
// byte-identically to an uninterrupted one — silently breaks the moment
// someone adds a stateful field to a checkpointed struct and forgets to
// serialize it: nothing fails until a resumed run diverges, usually far
// from the missing field. Pair turns that omission into an immediate
// test failure: every field of the live struct must be explicitly
// mapped onto a snapshot field or excluded with a written reason, and
// stale entries on either side fail too, so the declared coverage can
// never drift from the structs it describes.
package snapcover

import (
	"fmt"
	"maps"
	"reflect"
	"slices"
	"testing"
)

// Spec declares how a live struct's fields map onto its serialized
// snapshot form.
type Spec struct {
	// Covered maps a live field to the snapshot field that carries its
	// state. Several live fields may share one snapshot field (a wall
	// clock whose per-worker positions land in the workers list), and a
	// live field may map to a snapshot field it is recomputed from.
	Covered map[string]string
	// Excluded maps a live field to the reason it need not be
	// checkpointed: construction-time constants, sync primitives,
	// scratch buffers, state derived on restore. The reason is
	// mandatory — an exclusion is a reviewed decision.
	Excluded map[string]string
	// Synthesized maps a snapshot field that no single live field
	// produces (format version tags, validation names) to how it is
	// derived.
	Synthesized map[string]string
}

// Pair asserts that spec completely and currently describes the
// live → snap field mapping: every live field is covered or excluded,
// every snapshot field is a coverage target or declared synthesized,
// and every spec entry still names an existing field.
func Pair(t *testing.T, live, snap reflect.Type, spec Spec) {
	t.Helper()
	problems, err := check(live, snap, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// check computes the coverage problems for one live/snap pair. Problems
// come back sorted by live-struct field iteration (declaration-
// independent: names are sorted), so output is stable.
func check(live, snap reflect.Type, spec Spec) ([]string, error) {
	live, err := deref(live)
	if err != nil {
		return nil, err
	}
	snap, err = deref(snap)
	if err != nil {
		return nil, err
	}
	liveFields := fieldSet(live)
	snapFields := fieldSet(snap)
	var problems []string
	add := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	for _, name := range slices.Sorted(maps.Keys(liveFields)) {
		_, cov := spec.Covered[name]
		_, exc := spec.Excluded[name]
		switch {
		case cov && exc:
			add("%s.%s is both Covered and Excluded — pick one", live.Name(), name)
		case !cov && !exc:
			add("%s.%s is not accounted for: serialize it in %s (and map it in Covered) or justify skipping it in Excluded",
				live.Name(), name, snap.Name())
		}
	}
	for _, name := range slices.Sorted(maps.Keys(spec.Covered)) {
		if !liveFields[name] {
			add("Covered lists %s.%s, which no longer exists — stale entry", live.Name(), name)
		}
		if target := spec.Covered[name]; !snapFields[target] {
			add("Covered maps %s.%s to %s.%s, which does not exist", live.Name(), name, snap.Name(), target)
		}
	}
	for _, name := range slices.Sorted(maps.Keys(spec.Excluded)) {
		if !liveFields[name] {
			add("Excluded lists %s.%s, which no longer exists — stale entry", live.Name(), name)
		}
		if spec.Excluded[name] == "" {
			add("Excluded entry for %s.%s needs a reason", live.Name(), name)
		}
	}
	targets := make(map[string]bool, len(spec.Covered)+len(spec.Synthesized))
	for _, target := range spec.Covered {
		targets[target] = true
	}
	for name := range spec.Synthesized {
		targets[name] = true
	}
	for _, name := range slices.Sorted(maps.Keys(snapFields)) {
		if !targets[name] {
			add("snapshot field %s.%s carries no live field and is not declared Synthesized — stale?", snap.Name(), name)
		}
	}
	for _, name := range slices.Sorted(maps.Keys(spec.Synthesized)) {
		if !snapFields[name] {
			add("Synthesized lists %s.%s, which no longer exists — stale entry", snap.Name(), name)
		}
		if spec.Synthesized[name] == "" {
			add("Synthesized entry for %s.%s needs a derivation note", snap.Name(), name)
		}
	}
	return problems, nil
}

// deref unwraps pointer types and insists on a struct.
func deref(typ reflect.Type) (reflect.Type, error) {
	for typ.Kind() == reflect.Pointer {
		typ = typ.Elem()
	}
	if typ.Kind() != reflect.Struct {
		return nil, fmt.Errorf("snapcover: %s is not a struct type", typ)
	}
	return typ, nil
}

// fieldSet collects a struct's field names, exported and unexported.
func fieldSet(typ reflect.Type) map[string]bool {
	out := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		out[typ.Field(i).Name] = true
	}
	return out
}
