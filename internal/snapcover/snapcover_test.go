package snapcover

import (
	"reflect"
	"strings"
	"testing"
)

type live struct {
	a int
	b string
	c []float64
}

type snap struct {
	Version int
	A       int
	B       string
}

func goodSpec() Spec {
	return Spec{
		Covered:     map[string]string{"a": "A", "b": "B"},
		Excluded:    map[string]string{"c": "scratch buffer, rebuilt lazily"},
		Synthesized: map[string]string{"Version": "format tag"},
	}
}

func mustCheck(t *testing.T, spec Spec) []string {
	t.Helper()
	problems, err := check(reflect.TypeFor[live](), reflect.TypeFor[snap](), spec)
	if err != nil {
		t.Fatal(err)
	}
	return problems
}

func TestCompleteSpecIsClean(t *testing.T) {
	if problems := mustCheck(t, goodSpec()); len(problems) != 0 {
		t.Errorf("complete spec reported problems: %v", problems)
	}
}

func TestPointerTypesUnwrap(t *testing.T) {
	problems, err := check(reflect.TypeFor[*live](), reflect.TypeFor[*snap](), goodSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("pointer pair reported problems: %v", problems)
	}
}

func TestNonStructIsAnError(t *testing.T) {
	if _, err := check(reflect.TypeFor[int](), reflect.TypeFor[snap](), goodSpec()); err == nil {
		t.Error("non-struct live type: no error")
	}
}

// expectProblem mutates the good spec and asserts it yields exactly
// want problems, one of which mentions every fragment.
func expectProblem(t *testing.T, want int, mutate func(*Spec), fragments ...string) {
	t.Helper()
	spec := goodSpec()
	mutate(&spec)
	problems := mustCheck(t, spec)
	if len(problems) != want {
		t.Fatalf("got %d problems, want %d: %v", len(problems), want, problems)
	}
	for _, p := range problems {
		matched := true
		for _, frag := range fragments {
			if !strings.Contains(p, frag) {
				matched = false
				break
			}
		}
		if matched {
			return
		}
	}
	t.Errorf("no problem mentions all of %v: %v", fragments, problems)
}

func TestUnaccountedLiveField(t *testing.T) {
	expectProblem(t, 2, func(s *Spec) { delete(s.Covered, "b") }, "live.b", "not accounted for")
}

func TestDoubleAccountedLiveField(t *testing.T) {
	expectProblem(t, 1, func(s *Spec) { s.Excluded["a"] = "also here" }, "live.a", "both Covered and Excluded")
}

func TestStaleCoveredEntry(t *testing.T) {
	expectProblem(t, 1, func(s *Spec) { s.Covered["gone"] = "A" }, "live.gone", "no longer exists")
}

func TestCoveredTargetMissing(t *testing.T) {
	expectProblem(t, 2, func(s *Spec) { s.Covered["a"] = "NoSuch" }, "snap.NoSuch", "does not exist")
}

func TestStaleExcludedEntry(t *testing.T) {
	expectProblem(t, 1, func(s *Spec) {
		delete(s.Excluded, "c")
		s.Covered["c"] = "A"
		s.Excluded["gone"] = "reason"
	}, "live.gone", "stale")
}

func TestExclusionNeedsReason(t *testing.T) {
	expectProblem(t, 1, func(s *Spec) { s.Excluded["c"] = "" }, "live.c", "needs a reason")
}

func TestOrphanSnapshotField(t *testing.T) {
	expectProblem(t, 1, func(s *Spec) { delete(s.Synthesized, "Version") }, "snap.Version", "Synthesized")
}

func TestStaleSynthesizedEntry(t *testing.T) {
	expectProblem(t, 1, func(s *Spec) { s.Synthesized["Gone"] = "tag" }, "snap.Gone", "stale")
}
