package nn

import "math"

// The DTM trains end-to-end on L = L_CCE + L_Reg + L_Cham (§3.2). L_Cham
// lives on RBFBank; the other two are here. Each loss returns its value
// and the gradient with respect to the network outputs, so the caller can
// backpropagate through the producing branch.

// CrossEntropyLogits computes the categorical cross-entropy (L_CCE) over
// raw logits against a one-hot target class, returning the loss and
// dL/dlogits (softmax(z) − onehot). For the DTM the classes are
// {runs, crashes}.
func CrossEntropyLogits(logits []float64, class int) (float64, []float64) {
	// Stable softmax.
	max := logits[0]
	for _, z := range logits[1:] {
		if z > max {
			max = z
		}
	}
	sum := 0.0
	probs := make([]float64, len(logits))
	for i, z := range logits {
		probs[i] = math.Exp(z - max)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	loss := -math.Log(math.Max(probs[class], 1e-12))
	grad := probs
	grad[class] -= 1
	return loss, grad
}

// BinaryCrossEntropyLogit computes BCE on a single logit against target
// t∈{0,1} using the numerically-stable log-sum-exp form, returning loss and
// dL/dlogit = σ(z) − t. It is the two-class special case of L_CCE, used by
// the crash head.
func BinaryCrossEntropyLogit(logit, t float64) (float64, float64) {
	// loss = max(z,0) − z·t + log(1 + exp(−|z|))
	loss := math.Max(logit, 0) - logit*t + math.Log1p(math.Exp(-math.Abs(logit)))
	return loss, Sigmoid(logit) - t
}

// HeteroscedasticLoss is Kendall & Gal's regression loss with predicted
// aleatoric uncertainty (L_Reg, §3.2): the network outputs a mean μ and a
// log-variance s := log σ², and
//
//	L = ½·exp(−s)·(y−μ)² + ½·s.
//
// It returns the loss and the gradients (dL/dμ, dL/ds). Predicting s lets
// the model attenuate the loss on intrinsically-noisy samples while being
// penalized for blanket pessimism — the mechanism that gives the DTM its
// per-prediction error estimate.
func HeteroscedasticLoss(mu, logVar, y float64) (loss, dMu, dLogVar float64) {
	// Clamp s to keep exp(−s) finite during early training.
	s := logVar
	if s > 20 {
		s = 20
	}
	if s < -20 {
		s = -20
	}
	inv := math.Exp(-s)
	diff := mu - y
	loss = 0.5*inv*diff*diff + 0.5*s
	dMu = inv * diff
	dLogVar = -0.5*inv*diff*diff + 0.5
	if logVar != s { //wfvet:ignore floateq detects whether the clamp fired; s is either logVar itself or the bound
		// outside the clamp the gradient w.r.t. logVar vanishes
		dLogVar = 0
	}
	return loss, dMu, dLogVar
}

// MSELoss is the plain squared-error loss, ½(μ−y)², returning loss and
// dL/dμ. Used by baselines and tests.
func MSELoss(mu, y float64) (float64, float64) {
	d := mu - y
	return 0.5 * d * d, d
}
