// Package nn is a small, dependency-free neural-network library built for
// the DeepTune Model (§3.2 of the paper): dense layers with ReLU and
// dropout, Gaussian RBF layers for the uncertainty branch, the Adam and SGD
// optimizers, and the three losses the DTM trains with — categorical
// cross-entropy for crash prediction, Kendall & Gal's heteroscedastic
// regression loss for performance-with-uncertainty, and the Chamfer
// distance regularizer that fits RBF centroids to the data distribution.
//
// The library works on flat []float64 vectors, sample-at-a-time, which is
// the right operating point for the DTM's small incremental-update batches.
package nn

import (
	"math"

	"wayfinder/internal/rng"
)

// Param is one trainable tensor, stored flat, with its gradient
// accumulator.
type Param struct {
	W []float64 // weights
	G []float64 // accumulated gradients
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Layer is a differentiable computation stage.
type Layer interface {
	// Forward computes the layer output for input x. When train is true,
	// stochastic layers (dropout) sample a fresh mask. The layer caches
	// what Backward needs; Forward/Backward pairs must not be interleaved
	// across samples.
	Forward(x []float64, train bool) []float64
	// Backward consumes dL/d(output) and returns dL/d(input), adding
	// parameter gradients to the layer's Params.
	Backward(grad []float64) []float64
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// OutDim returns the layer's output width.
	OutDim() int
}

// Dense is a fully-connected layer: y = W·x + b.
type Dense struct {
	In, Out int
	Weight  *Param // Out×In, row-major
	Bias    *Param // Out

	x []float64 // cached input
	y []float64
	g []float64 // reusable input-grad buffer
}

// NewDense returns a dense layer with He-uniform initialization, the
// standard choice ahead of ReLU activations.
func NewDense(in, out int, r *rng.RNG) *Dense {
	d := &Dense{
		In:     in,
		Out:    out,
		Weight: &Param{W: make([]float64, in*out), G: make([]float64, in*out)},
		Bias:   &Param{W: make([]float64, out), G: make([]float64, out)},
		y:      make([]float64, out),
		g:      make([]float64, in),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.Weight.W {
		d.Weight.W[i] = (2*r.Float64() - 1) * limit
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64, _ bool) []float64 {
	d.x = x
	for o := 0; o < d.Out; o++ {
		sum := d.Bias.W[o]
		row := d.Weight.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		d.y[o] = sum
	}
	return d.y
}

// ForwardBatch computes y = W·x + b for a whole batch of inputs in one
// matrix-shaped pass, writing row j of ys for row j of xs. The sweep is
// sample-major — the weight matrix (small, L1-resident) is rescanned per
// sample while each batch row is streamed exactly once, which beats the
// output-major order once the batch outgrows L1 — and each per-sample dot
// accumulates in the identical order to Forward, so the results are
// bit-identical to len(xs) scalar Forward calls. The layer's Backward
// caches are untouched: ForwardBatch is inference-only and safe to
// interleave with training Forward/Backward pairs.
func (d *Dense) ForwardBatch(xs, ys [][]float64) {
	for j, x := range xs {
		y := ys[j]
		for o := 0; o < d.Out; o++ {
			sum := d.Bias.W[o]
			row := d.Weight.W[o*d.In : (o+1)*d.In]
			for i, xi := range x {
				sum += row[i] * xi
			}
			y[o] = sum
		}
	}
}

// Backward implements Layer.
func (d *Dense) Backward(grad []float64) []float64 {
	for i := range d.g {
		d.g[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		go_ := grad[o]
		if go_ == 0 { //wfvet:ignore floateq sparsity skip; only exactly-zero gradients are safe to skip
			continue
		}
		row := d.Weight.W[o*d.In : (o+1)*d.In]
		grow := d.Weight.G[o*d.In : (o+1)*d.In]
		for i, xi := range d.x {
			grow[i] += go_ * xi
			d.g[i] += go_ * row[i]
		}
		d.Bias.G[o] += go_
	}
	return d.g
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// OutDim implements Layer.
func (d *Dense) OutDim() int { return d.Out }

// ReLU is the rectified linear activation.
type ReLU struct {
	dim int
	y   []float64
	g   []float64
}

// NewReLU returns a ReLU over dim features.
func NewReLU(dim int) *ReLU {
	return &ReLU{dim: dim, y: make([]float64, dim), g: make([]float64, dim)}
}

// Forward implements Layer.
func (l *ReLU) Forward(x []float64, _ bool) []float64 {
	for i, v := range x {
		if v > 0 {
			l.y[i] = v
		} else {
			l.y[i] = 0
		}
	}
	return l.y
}

// Backward implements Layer.
func (l *ReLU) Backward(grad []float64) []float64 {
	for i := range grad {
		if l.y[i] > 0 {
			l.g[i] = grad[i]
		} else {
			l.g[i] = 0
		}
	}
	return l.g
}

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// OutDim implements Layer.
func (l *ReLU) OutDim() int { return l.dim }

// Dropout zeroes each activation with probability P during training and
// scales the survivors by 1/(1-P) (inverted dropout), so inference needs
// no rescaling.
type Dropout struct {
	P   float64
	rng *rng.RNG

	dim  int
	mask []float64
	y    []float64
	g    []float64
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(dim int, p float64, r *rng.RNG) *Dropout {
	return &Dropout{
		P: p, rng: r, dim: dim,
		mask: make([]float64, dim),
		y:    make([]float64, dim),
		g:    make([]float64, dim),
	}
}

// Forward implements Layer.
func (l *Dropout) Forward(x []float64, train bool) []float64 {
	if !train || l.P <= 0 {
		copy(l.y, x)
		for i := range l.mask {
			l.mask[i] = 1
		}
		return l.y
	}
	keep := 1 - l.P
	for i, v := range x {
		if l.rng.Float64() < l.P {
			l.mask[i] = 0
			l.y[i] = 0
		} else {
			l.mask[i] = 1 / keep
			l.y[i] = v / keep
		}
	}
	return l.y
}

// Backward implements Layer.
func (l *Dropout) Backward(grad []float64) []float64 {
	for i := range grad {
		l.g[i] = grad[i] * l.mask[i]
	}
	return l.g
}

// Params implements Layer.
func (l *Dropout) Params() []*Param { return nil }

// OutDim implements Layer.
func (l *Dropout) OutDim() int { return l.dim }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// Forward runs the chain.
func (s *Sequential) Forward(x []float64, train bool) []float64 {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward back-propagates through the chain.
func (s *Sequential) Backward(grad []float64) []float64 {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params collects all trainable parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Sigmoid returns 1/(1+e^-x) computed stably.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
