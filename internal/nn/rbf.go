package nn

import (
	"math"

	"wayfinder/internal/rng"
)

// RBFBank is a Gaussian Radial Basis Function layer (§3.2, Eq. 1): a set of
// K centroids c_j in the input space, each emitting
//
//	φ_j(z) = exp(−‖z − c_j‖² / (2γ²)).
//
// The centroids are learned prototypes of the training distribution; far
// from every prototype all activations collapse toward zero, which is what
// lets the DTM flag outliers and novel configurations with high
// uncertainty. The paper finds γ = 0.1 appropriate for z-scored features.
type RBFBank struct {
	In, K     int
	Gamma     float64
	Centroids *Param // K×In, row-major

	z   []float64 // cached input
	phi []float64
}

// NewRBFBank creates a bank of k centroids drawn from a standard normal,
// matching z-scored inputs.
func NewRBFBank(in, k int, gamma float64, r *rng.RNG) *RBFBank {
	b := &RBFBank{
		In: in, K: k, Gamma: gamma,
		Centroids: &Param{W: make([]float64, k*in), G: make([]float64, k*in)},
		phi:       make([]float64, k),
	}
	for i := range b.Centroids.W {
		b.Centroids.W[i] = r.NormFloat64()
	}
	return b
}

// Forward computes the K activations for input z.
func (b *RBFBank) Forward(z []float64, _ bool) []float64 {
	b.z = z
	inv := 1 / (2 * b.Gamma * b.Gamma)
	for j := 0; j < b.K; j++ {
		c := b.Centroids.W[j*b.In : (j+1)*b.In]
		d2 := 0.0
		for i, zi := range z {
			d := zi - c[i]
			d2 += d * d
		}
		b.phi[j] = math.Exp(-d2 * inv)
	}
	return b.phi
}

// Backward propagates dL/dφ to the centroids and the input.
func (b *RBFBank) Backward(grad []float64) []float64 {
	g := make([]float64, b.In)
	inv := 1 / (b.Gamma * b.Gamma)
	for j := 0; j < b.K; j++ {
		if grad[j] == 0 { //wfvet:ignore floateq sparsity skip; only exactly-zero gradients are safe to skip
			continue
		}
		c := b.Centroids.W[j*b.In : (j+1)*b.In]
		gc := b.Centroids.G[j*b.In : (j+1)*b.In]
		// dφ/dz_i = φ · (c_i − z_i)/γ² ; dφ/dc_i = −dφ/dz_i.
		scale := grad[j] * b.phi[j] * inv
		for i, zi := range b.z {
			d := c[i] - zi
			g[i] += scale * d
			gc[i] -= scale * d
		}
	}
	return g
}

// Params implements Layer.
func (b *RBFBank) Params() []*Param { return []*Param{b.Centroids} }

// OutDim implements Layer.
func (b *RBFBank) OutDim() int { return b.K }

// MaxActivation returns the largest activation for input z — the bank's
// confidence that z resembles a known prototype. 1−MaxActivation is the
// novelty/uncertainty signal.
func (b *RBFBank) MaxActivation(z []float64) float64 {
	phi := b.Forward(z, false)
	best := 0.0
	for _, p := range phi {
		if p > best {
			best = p
		}
	}
	return best
}

// ChamferLoss computes the Chamfer distance (§3.2, L_Cham) between the
// bank's centroid set C and a batch of latent vectors Z:
//
//	L = (1/|Z|) Σ_z min_c ‖z−c‖² + (1/|C|) Σ_c min_z ‖c−z‖²
//
// and accumulates its gradient into the centroid parameter. Minimizing it
// spreads the centroids over the data distribution so that the prototypes
// fit the training data (the paper's stated purpose).
func (b *RBFBank) ChamferLoss(batch [][]float64) float64 {
	if len(batch) == 0 || b.K == 0 {
		return 0
	}
	loss := 0.0
	// Term 1: each data point pulls its nearest centroid.
	invZ := 1 / float64(len(batch))
	nearestToC := make([]int, b.K) // index into batch of nearest z per centroid
	bestForC := make([]float64, b.K)
	for j := range bestForC {
		bestForC[j] = math.Inf(1)
	}
	for zi, z := range batch {
		best, bestJ := math.Inf(1), 0
		for j := 0; j < b.K; j++ {
			c := b.Centroids.W[j*b.In : (j+1)*b.In]
			d2 := 0.0
			for i := range z {
				d := z[i] - c[i]
				d2 += d * d
			}
			if d2 < best {
				best, bestJ = d2, j
			}
			if d2 < bestForC[j] {
				bestForC[j] = d2
				nearestToC[j] = zi
			}
		}
		loss += best * invZ
		// ∂/∂c of ‖z−c‖² is 2(c−z), applied to the winning centroid only.
		c := b.Centroids.W[bestJ*b.In : (bestJ+1)*b.In]
		gc := b.Centroids.G[bestJ*b.In : (bestJ+1)*b.In]
		for i := range z {
			gc[i] += 2 * (c[i] - z[i]) * invZ
		}
	}
	// Term 2: each centroid is pulled toward its nearest data point.
	invC := 1 / float64(b.K)
	for j := 0; j < b.K; j++ {
		z := batch[nearestToC[j]]
		c := b.Centroids.W[j*b.In : (j+1)*b.In]
		gc := b.Centroids.G[j*b.In : (j+1)*b.In]
		loss += bestForC[j] * invC
		for i := range z {
			gc[i] += 2 * (c[i] - z[i]) * invC
		}
	}
	return loss
}
