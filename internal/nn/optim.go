package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and clears the gradients.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum > 0 {
			v := o.velocity[p]
			if v == nil {
				v = make([]float64, len(p.W))
				o.velocity[p] = v
			}
			for i := range p.W {
				v[i] = o.Momentum*v[i] - o.LR*p.G[i]
				p.W[i] += v[i]
			}
		} else {
			for i := range p.W {
				p.W[i] -= o.LR * p.G[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba), the DTM's default: incremental
// updates on a stream of new observations need per-parameter step-size
// adaptation to stay stable.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns Adam with the conventional β₁=0.9, β₂=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{},
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		if m == nil {
			m = make([]float64, len(p.W))
			o.m[p] = m
		}
		v := o.v[p]
		if v == nil {
			v = make([]float64, len(p.W))
			o.v[p] = v
		}
		for i := range p.W {
			g := p.G[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mHat := m[i] / bc1
			vHat := v[i] / bc2
			p.W[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Epsilon)
		}
		p.ZeroGrad()
	}
}

// ClipGradients scales gradients down so their global L2 norm is at most
// maxNorm, stabilizing incremental updates on small, skewed batches.
func ClipGradients(params []*Param, maxNorm float64) {
	total := 0.0
	for _, p := range params {
		for _, g := range p.G {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm || norm == 0 { //wfvet:ignore floateq guards the division; only an exactly-zero norm is degenerate
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.G {
			p.G[i] *= scale
		}
	}
}
