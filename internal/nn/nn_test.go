package nn

import (
	"math"
	"testing"

	"wayfinder/internal/rng"
)

// numericalGrad estimates dL/dw for one weight by central differences.
func numericalGrad(w *float64, loss func() float64) float64 {
	const h = 1e-5
	orig := *w
	*w = orig + h
	lp := loss()
	*w = orig - h
	lm := loss()
	*w = orig
	return (lp - lm) / (2 * h)
}

func TestDenseForward(t *testing.T) {
	d := NewDense(2, 1, rng.New(1))
	copy(d.Weight.W, []float64{2, 3})
	d.Bias.W[0] = 1
	y := d.Forward([]float64{4, 5}, false)
	if y[0] != 2*4+3*5+1 {
		t.Fatalf("forward = %v", y[0])
	}
}

func TestDenseGradientCheck(t *testing.T) {
	r := rng.New(2)
	d := NewDense(3, 2, r)
	x := []float64{0.5, -1.2, 2.0}
	target := []float64{1.0, -0.5}
	loss := func() float64 {
		y := d.Forward(x, false)
		sum := 0.0
		for i := range y {
			l, _ := MSELoss(y[i], target[i])
			sum += l
		}
		return sum
	}
	// Analytical gradients.
	y := d.Forward(x, false)
	grad := make([]float64, 2)
	for i := range y {
		_, g := MSELoss(y[i], target[i])
		grad[i] = g
	}
	gx := d.Backward(grad)
	for i := range d.Weight.W {
		want := numericalGrad(&d.Weight.W[i], loss)
		if math.Abs(d.Weight.G[i]-want) > 1e-6 {
			t.Fatalf("weight grad[%d] = %v, numerical %v", i, d.Weight.G[i], want)
		}
	}
	for i := range d.Bias.W {
		want := numericalGrad(&d.Bias.W[i], loss)
		if math.Abs(d.Bias.G[i]-want) > 1e-6 {
			t.Fatalf("bias grad[%d] = %v, numerical %v", i, d.Bias.G[i], want)
		}
	}
	// Input gradient via perturbing x.
	for i := range x {
		want := numericalGrad(&x[i], loss)
		if math.Abs(gx[i]-want) > 1e-6 {
			t.Fatalf("input grad[%d] = %v, numerical %v", i, gx[i], want)
		}
	}
}

func TestReLU(t *testing.T) {
	l := NewReLU(3)
	y := l.Forward([]float64{-1, 0, 2}, false)
	if y[0] != 0 || y[1] != 0 || y[2] != 2 {
		t.Fatalf("relu forward = %v", y)
	}
	g := l.Backward([]float64{5, 5, 5})
	if g[0] != 0 || g[1] != 0 || g[2] != 5 {
		t.Fatalf("relu backward = %v", g)
	}
}

func TestDropoutEval(t *testing.T) {
	l := NewDropout(4, 0.5, rng.New(3))
	x := []float64{1, 2, 3, 4}
	y := l.Forward(x, false)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
}

func TestDropoutTrainScaling(t *testing.T) {
	r := rng.New(4)
	l := NewDropout(1, 0.5, r)
	sum, n := 0.0, 20000
	for i := 0; i < n; i++ {
		y := l.Forward([]float64{1}, true)
		sum += y[0]
	}
	// Inverted dropout keeps E[y] = x.
	if mean := sum / float64(n); math.Abs(mean-1) > 0.05 {
		t.Fatalf("dropout expectation = %v, want ~1", mean)
	}
}

func TestDropoutBackwardUsesMask(t *testing.T) {
	r := rng.New(5)
	l := NewDropout(8, 0.5, r)
	y := l.Forward([]float64{1, 1, 1, 1, 1, 1, 1, 1}, true)
	g := l.Backward([]float64{1, 1, 1, 1, 1, 1, 1, 1})
	for i := range y {
		if (y[i] == 0) != (g[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestSigmoid(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
	if s := Sigmoid(100); s <= 0.999 {
		t.Fatalf("sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s >= 0.001 {
		t.Fatalf("sigmoid(-100) = %v", s)
	}
}

func TestCrossEntropyLogits(t *testing.T) {
	loss, grad := CrossEntropyLogits([]float64{0, 0}, 0)
	if math.Abs(loss-math.Log(2)) > 1e-9 {
		t.Fatalf("uniform CE = %v", loss)
	}
	if math.Abs(grad[0]+0.5) > 1e-9 || math.Abs(grad[1]-0.5) > 1e-9 {
		t.Fatalf("CE grad = %v", grad)
	}
	// Confident correct prediction → near-zero loss.
	loss, _ = CrossEntropyLogits([]float64{10, -10}, 0)
	if loss > 1e-6 {
		t.Fatalf("confident CE = %v", loss)
	}
}

func TestBCEMatchesGradient(t *testing.T) {
	for _, tc := range []struct{ z, t float64 }{{0.3, 1}, {-2, 0}, {5, 0}, {-5, 1}} {
		z := tc.z
		loss := func() float64 {
			l, _ := BinaryCrossEntropyLogit(z, tc.t)
			return l
		}
		_, g := BinaryCrossEntropyLogit(z, tc.t)
		want := numericalGrad(&z, loss)
		if math.Abs(g-want) > 1e-6 {
			t.Fatalf("BCE grad(z=%v,t=%v) = %v, numerical %v", tc.z, tc.t, g, want)
		}
	}
}

func TestHeteroscedasticGradients(t *testing.T) {
	mu, s, y := 1.3, -0.4, 2.0
	lossMu := func() float64 { l, _, _ := HeteroscedasticLoss(mu, s, y); return l }
	_, dMu, dS := HeteroscedasticLoss(mu, s, y)
	if want := numericalGrad(&mu, lossMu); math.Abs(dMu-want) > 1e-6 {
		t.Fatalf("dMu = %v, numerical %v", dMu, want)
	}
	lossS := func() float64 { l, _, _ := HeteroscedasticLoss(mu, s, y); return l }
	if want := numericalGrad(&s, lossS); math.Abs(dS-want) > 1e-6 {
		t.Fatalf("dLogVar = %v, numerical %v", dS, want)
	}
}

func TestHeteroscedasticAttenuation(t *testing.T) {
	// Larger predicted variance must shrink the residual penalty.
	lLow, _, _ := HeteroscedasticLoss(0, -2, 3)
	lHigh, _, _ := HeteroscedasticLoss(0, 2, 3)
	if lHigh >= lLow {
		t.Fatalf("high-variance loss %v should be below low-variance %v for a large residual", lHigh, lLow)
	}
}

func TestRBFForwardRange(t *testing.T) {
	r := rng.New(6)
	b := NewRBFBank(3, 5, 0.5, r)
	phi := b.Forward([]float64{0.1, -0.3, 0.7}, false)
	for _, p := range phi {
		if p < 0 || p > 1 {
			t.Fatalf("activation out of range: %v", p)
		}
	}
}

func TestRBFPeakAtCentroid(t *testing.T) {
	r := rng.New(7)
	b := NewRBFBank(2, 1, 0.1, r)
	copy(b.Centroids.W, []float64{0.5, -0.5})
	phi := b.Forward([]float64{0.5, -0.5}, false)
	if phi[0] != 1 {
		t.Fatalf("activation at centroid = %v, want 1", phi[0])
	}
	far := b.Forward([]float64{5, 5}, false)
	if far[0] > 1e-10 {
		t.Fatalf("activation far away = %v, want ~0", far[0])
	}
}

func TestRBFGradientCheck(t *testing.T) {
	r := rng.New(8)
	b := NewRBFBank(2, 3, 0.7, r)
	x := []float64{0.2, -0.1}
	loss := func() float64 {
		phi := b.Forward(x, false)
		sum := 0.0
		for _, p := range phi {
			sum += p * p // arbitrary downstream loss ½Σφ² ·2
		}
		return sum
	}
	phi := b.Forward(x, false)
	grad := make([]float64, len(phi))
	for i, p := range phi {
		grad[i] = 2 * p
	}
	gx := b.Backward(grad)
	for i := range b.Centroids.W {
		want := numericalGrad(&b.Centroids.W[i], loss)
		if math.Abs(b.Centroids.G[i]-want) > 1e-5 {
			t.Fatalf("centroid grad[%d] = %v, numerical %v", i, b.Centroids.G[i], want)
		}
	}
	for i := range x {
		want := numericalGrad(&x[i], loss)
		if math.Abs(gx[i]-want) > 1e-5 {
			t.Fatalf("input grad[%d] = %v, numerical %v", i, gx[i], want)
		}
	}
}

func TestRBFOutlierSignal(t *testing.T) {
	// After fitting centroids to a cluster, a far-away sample must produce a
	// much lower max activation — the DTM's uncertainty mechanism.
	r := rng.New(9)
	b := NewRBFBank(2, 4, 0.5, r)
	var batch [][]float64
	for i := 0; i < 50; i++ {
		batch = append(batch, []float64{r.Normal(0, 0.3), r.Normal(0, 0.3)})
	}
	opt := NewSGD(0.05, 0)
	for epoch := 0; epoch < 200; epoch++ {
		b.ChamferLoss(batch)
		opt.Step(b.Params())
	}
	inlier := b.MaxActivation([]float64{0, 0})
	outlier := b.MaxActivation([]float64{6, 6})
	if inlier < 0.5 {
		t.Fatalf("inlier activation = %v, centroids did not fit data", inlier)
	}
	if outlier > 0.01 {
		t.Fatalf("outlier activation = %v, should be near zero", outlier)
	}
}

func TestChamferDecreases(t *testing.T) {
	r := rng.New(10)
	b := NewRBFBank(2, 3, 0.5, r)
	var batch [][]float64
	for i := 0; i < 30; i++ {
		batch = append(batch, []float64{r.Normal(2, 0.5), r.Normal(-1, 0.5)})
	}
	first := b.ChamferLoss(batch)
	for i := range b.Centroids.G {
		b.Centroids.G[i] = 0
	}
	opt := NewSGD(0.05, 0)
	for epoch := 0; epoch < 100; epoch++ {
		b.ChamferLoss(batch)
		opt.Step(b.Params())
	}
	last := b.ChamferLoss(batch)
	if last >= first/2 {
		t.Fatalf("Chamfer loss %v did not substantially decrease from %v", last, first)
	}
}

func TestChamferEmptyBatch(t *testing.T) {
	b := NewRBFBank(2, 3, 0.5, rng.New(11))
	if l := b.ChamferLoss(nil); l != 0 {
		t.Fatalf("empty-batch Chamfer = %v", l)
	}
}

// trainXOR trains a tiny network on XOR with the given optimizer and
// returns the final accuracy.
func trainXOR(t *testing.T, opt Optimizer) float64 {
	t.Helper()
	r := rng.New(12)
	net := &Sequential{Layers: []Layer{
		NewDense(2, 8, r),
		NewReLU(8),
		NewDense(8, 1, r),
	}}
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 2000; epoch++ {
		for i, x := range xs {
			out := net.Forward(x, true)
			_, g := BinaryCrossEntropyLogit(out[0], ys[i])
			net.Backward([]float64{g})
		}
		opt.Step(net.Params())
	}
	correct := 0
	for i, x := range xs {
		out := net.Forward(x, false)
		if (Sigmoid(out[0]) > 0.5) == (ys[i] > 0.5) {
			correct++
		}
	}
	return float64(correct) / 4
}

func TestXORWithAdam(t *testing.T) {
	if acc := trainXOR(t, NewAdam(0.01)); acc != 1 {
		t.Fatalf("Adam XOR accuracy = %v", acc)
	}
}

func TestXORWithSGDMomentum(t *testing.T) {
	if acc := trainXOR(t, NewSGD(0.1, 0.9)); acc != 1 {
		t.Fatalf("SGD XOR accuracy = %v", acc)
	}
}

func TestHeteroscedasticRegressionLearnsNoise(t *testing.T) {
	// Fit y = 2x with input-dependent noise; the model should learn a
	// higher predicted variance in the noisy region.
	r := rng.New(13)
	net := &Sequential{Layers: []Layer{
		NewDense(1, 16, r),
		NewReLU(16),
		NewDense(16, 2, r), // [mu, logVar]
	}}
	opt := NewAdam(0.005)
	for epoch := 0; epoch < 3000; epoch++ {
		x := r.Float64() // [0,1)
		noise := 0.02
		if x > 0.5 {
			noise = 0.5
		}
		y := 2*x + r.Normal(0, noise)
		out := net.Forward([]float64{x}, true)
		_, dMu, dS := HeteroscedasticLoss(out[0], out[1], y)
		net.Backward([]float64{dMu, dS})
		opt.Step(net.Params())
	}
	quiet := net.Forward([]float64{0.25}, false)[1]
	noisy := net.Forward([]float64{0.75}, false)[1]
	if noisy <= quiet {
		t.Fatalf("predicted logVar: quiet=%v noisy=%v — should be larger in noisy region", quiet, noisy)
	}
	mu := net.Forward([]float64{0.25}, false)[0]
	if math.Abs(mu-0.5) > 0.15 {
		t.Fatalf("mean prediction at 0.25 = %v, want ~0.5", mu)
	}
}

func TestClipGradients(t *testing.T) {
	p := &Param{W: make([]float64, 2), G: []float64{3, 4}} // norm 5
	ClipGradients([]*Param{p}, 1)
	norm := math.Hypot(p.G[0], p.G[1])
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("clipped norm = %v", norm)
	}
	// Below threshold: untouched.
	p2 := &Param{W: make([]float64, 1), G: []float64{0.5}}
	ClipGradients([]*Param{p2}, 1)
	if p2.G[0] != 0.5 {
		t.Fatal("under-norm gradients should be unchanged")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := rng.New(14)
	d := NewDense(3, 2, r)
	snap := NewSnapshot()
	snap.Meta["app"] = "redis"
	if err := snap.Save([]string{"w", "b"}, d.Params()); err != nil {
		t.Fatal(err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Meta["app"] != "redis" {
		t.Fatal("meta lost")
	}
	d2 := NewDense(3, 2, rng.New(99))
	if err := snap2.Restore([]string{"w", "b"}, d2.Params()); err != nil {
		t.Fatal(err)
	}
	for i := range d.Weight.W {
		if d.Weight.W[i] != d2.Weight.W[i] {
			t.Fatal("weights differ after restore")
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	d := NewDense(2, 2, rng.New(15))
	snap := NewSnapshot()
	if err := snap.Save([]string{"only-one"}, d.Params()); err == nil {
		t.Fatal("mismatched name count should fail")
	}
	if err := snap.Restore([]string{"w", "b"}, d.Params()); err == nil {
		t.Fatal("restore of missing tensors should fail")
	}
	snap.Tensors["w"] = []float64{1}
	snap.Tensors["b"] = []float64{1, 2}
	if err := snap.Restore([]string{"w", "b"}, d.Params()); err == nil {
		t.Fatal("wrong-length tensor should fail")
	}
	if _, err := DecodeSnapshot([]byte("{bad")); err == nil {
		t.Fatal("bad JSON should fail")
	}
}

func BenchmarkDenseForward(b *testing.B) {
	r := rng.New(1)
	d := NewDense(512, 64, r)
	x := make([]float64, 512)
	for i := range x {
		x[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Forward(x, false)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	r := rng.New(1)
	d := NewDense(512, 64, r)
	opt := NewAdam(0.001)
	for i := range d.Weight.G {
		d.Weight.G[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(d.Params())
	}
}
