package nn

import (
	"encoding/json"
	"fmt"
)

// Snapshot is a serializable copy of a set of parameters, keyed by a
// caller-chosen name. It is the unit of transfer learning (§3.3): a DTM
// trained on one application is snapshotted and restored to warm-start the
// search for another.
type Snapshot struct {
	// Meta carries caller-defined metadata (source application, feature
	// dimension, training iterations) so a restore can sanity-check
	// compatibility.
	Meta map[string]string `json:"meta,omitempty"`
	// Tensors maps names to flat weight vectors.
	Tensors map[string][]float64 `json:"tensors"`
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{Meta: map[string]string{}, Tensors: map[string][]float64{}}
}

// Save copies the parameters into the snapshot under the given names.
// Names and params must align.
func (s *Snapshot) Save(names []string, params []*Param) error {
	if len(names) != len(params) {
		return fmt.Errorf("nn: %d names for %d params", len(names), len(params))
	}
	for i, p := range params {
		s.Tensors[names[i]] = append([]float64(nil), p.W...)
	}
	return nil
}

// Restore copies snapshot weights back into the parameters. Every name must
// be present with the right length.
func (s *Snapshot) Restore(names []string, params []*Param) error {
	if len(names) != len(params) {
		return fmt.Errorf("nn: %d names for %d params", len(names), len(params))
	}
	for i, p := range params {
		w, ok := s.Tensors[names[i]]
		if !ok {
			return fmt.Errorf("nn: snapshot missing tensor %q", names[i])
		}
		if len(w) != len(p.W) {
			return fmt.Errorf("nn: tensor %q has %d weights, parameter wants %d",
				names[i], len(w), len(p.W))
		}
		copy(p.W, w)
	}
	return nil
}

// MarshalJSON renders the snapshot.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	return json.Marshal((*alias)(s))
}

// Encode serializes the snapshot to JSON bytes.
func (s *Snapshot) Encode() ([]byte, error) { return json.Marshal(s) }

// DecodeSnapshot parses a snapshot from JSON bytes.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	if s.Tensors == nil {
		s.Tensors = map[string][]float64{}
	}
	if s.Meta == nil {
		s.Meta = map[string]string{}
	}
	return &s, nil
}
