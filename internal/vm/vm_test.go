package vm

import (
	"math"
	"strings"
	"testing"

	"wayfinder/internal/configspace"
	"wayfinder/internal/simos"
)

func newLinuxVM(t *testing.T) (*simos.Model, *VM) {
	t.Helper()
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 10, Seed: 1})
	v := New(m, m.Space.Default())
	if err := v.Boot(); err != nil {
		t.Fatal(err)
	}
	return m, v
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock should be at 0")
	}
	c.Advance(5)
	c.Advance(2.5)
	c.Advance(-100) // ignored
	if c.Now() != 7.5 {
		t.Fatalf("clock = %v, want 7.5", c.Now())
	}
}

func TestBootAppliesRuntimeConfig(t *testing.T) {
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 0, Seed: 1})
	c := m.Space.Default()
	c.MustSet("net.core.somaxconn", configspace.IntValue(4096))
	v := New(m, c)
	if err := v.Boot(); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile("/proc/sys/net/core/somaxconn")
	if err != nil {
		t.Fatal(err)
	}
	if got != "4096" {
		t.Fatalf("somaxconn after boot = %s", got)
	}
}

func TestBootFailsOnBrokenConfig(t *testing.T) {
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 0, Seed: 1})
	c := m.Space.Default()
	c.MustSet("CONFIG_VIRTIO", configspace.BoolValue(false))
	v := New(m, c)
	err := v.Boot()
	if err == nil {
		t.Fatal("boot should fail with essentials disabled")
	}
	if !strings.Contains(err.Error(), "boot failure") && !strings.Contains(err.Error(), "build failure") {
		t.Fatalf("unexpected error: %v", err)
	}
	if v.Booted() {
		t.Fatal("failed VM should not report booted")
	}
}

func TestReadWriteRange(t *testing.T) {
	_, v := newLinuxVM(t)
	path := "/proc/sys/net/core/somaxconn"
	if err := v.WriteFile(path, "1024"); err != nil {
		t.Fatal(err)
	}
	got, _ := v.ReadFile(path)
	if got != "1024" {
		t.Fatalf("read back %s", got)
	}
	// The hidden accepted range is [16, 65536]; out-of-range writes fail.
	if err := v.WriteFile(path, "8"); err == nil {
		t.Fatal("below-min write should fail")
	}
	if err := v.WriteFile(path, "1000000"); err == nil {
		t.Fatal("above-max write should fail")
	}
	if err := v.WriteFile(path, "banana"); err == nil {
		t.Fatal("non-numeric write should fail")
	}
	// Failed writes must not change the value.
	got, _ = v.ReadFile(path)
	if got != "1024" {
		t.Fatalf("failed write changed value to %s", got)
	}
}

func TestPseudoFileErrors(t *testing.T) {
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 0, Seed: 1})
	v := New(m, m.Space.Default())
	if _, err := v.ReadFile("/proc/sys/net/core/somaxconn"); err == nil {
		t.Fatal("read before boot should fail")
	}
	if err := v.Boot(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadFile("/proc/sys/no/such/file"); err == nil {
		t.Fatal("unknown file should fail")
	}
}

func TestListWritableSorted(t *testing.T) {
	_, v := newLinuxVM(t)
	files := v.ListWritable()
	if len(files) == 0 {
		t.Fatal("no writable files")
	}
	for i := 1; i < len(files); i++ {
		if files[i-1] >= files[i] {
			t.Fatal("files not sorted")
		}
	}
}

func TestProbeSpaceDerivesRanges(t *testing.T) {
	// §3.4: scale the default by 10 up/down; accepted writes define the
	// range.
	_, v := newLinuxVM(t)
	var clock Clock
	space, err := v.ProbeSpace("probed", DefaultProbeOptions(), &clock)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := space.Lookup("net.core.somaxconn")
	if p == nil {
		t.Fatal("somaxconn not probed")
	}
	// Default 128, hard range [16, 65536]: probing finds 12.8 rejected →
	// low stays 128? No: 128/10=12 rejected, so lo=128; hi: 1280, 12800
	// accepted, 128000 rejected → hi=12800.
	if p.Min != 128 || p.Max != 12800 {
		t.Fatalf("probed range [%d, %d], want [128, 12800]", p.Min, p.Max)
	}
	if p.Default.I != 128 {
		t.Fatalf("probed default = %d", p.Default.I)
	}
	if clock.Now() <= 0 {
		t.Fatal("probing should consume virtual time")
	}
}

func TestProbeSpaceBooleanInference(t *testing.T) {
	// Defaults of 0/1 are inferred boolean (§3.4).
	_, v := newLinuxVM(t)
	var clock Clock
	space, err := v.ProbeSpace("probed", DefaultProbeOptions(), &clock)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := space.Lookup("vm.block_dump")
	if p == nil || p.Type != configspace.Bool {
		t.Fatalf("block_dump should probe as bool, got %+v", p)
	}
	// vm.stat_interval defaults to 1 → also inferred boolean, even though
	// the kernel accepts larger values: the documented coarseness of the
	// heuristic.
	si, _ := space.Lookup("vm.stat_interval")
	if si == nil || si.Type != configspace.Bool {
		t.Fatalf("stat_interval should be (coarsely) inferred bool, got %+v", si)
	}
}

func TestProbeRestoresDefaults(t *testing.T) {
	_, v := newLinuxVM(t)
	var clock Clock
	if _, err := v.ProbeSpace("probed", DefaultProbeOptions(), &clock); err != nil {
		t.Fatal(err)
	}
	got, _ := v.ReadFile("/proc/sys/net/core/somaxconn")
	if got != "128" {
		t.Fatalf("probe left somaxconn at %s", got)
	}
}

func TestProbeSpaceAllParamsProbed(t *testing.T) {
	m, v := newLinuxVM(t)
	var clock Clock
	space, err := v.ProbeSpace("probed", DefaultProbeOptions(), &clock)
	if err != nil {
		t.Fatal(err)
	}
	if space.Len() != len(m.RuntimeSpecs) {
		t.Fatalf("probed %d params, kernel exposes %d", space.Len(), len(m.RuntimeSpecs))
	}
}

func TestProbeSpaceOverflowGuard(t *testing.T) {
	// Regression: the scale-up loop multiplied val by ScaleFactor up to
	// MaxSteps times with no overflow guard, so near-MaxInt64 defaults
	// wrapped negative; with a permissive hard range the wrapped value was
	// accepted and corrupted the derived Min/Max.
	m := &simos.Model{
		Name:  "toy",
		Space: configspace.NewSpace("toy"),
		RuntimeSpecs: []simos.RuntimeSpec{
			{Path: "/proc/sys/x/huge", Name: "x.huge",
				Default: math.MaxInt64/2 + 1, HardMin: math.MinInt64, HardMax: math.MaxInt64, Writable: true},
			{Path: "/proc/sys/x/deep", Name: "x.deep",
				Default: math.MinInt64/2 - 1, HardMin: math.MinInt64, HardMax: math.MaxInt64, Writable: true},
		},
	}
	v := New(m, m.Space.Default())
	if err := v.Boot(); err != nil {
		t.Fatal(err)
	}
	var clock Clock
	space, err := v.ProbeSpace("probed", DefaultProbeOptions(), &clock)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x.huge", "x.deep"} {
		p, _ := space.Lookup(name)
		if p == nil {
			t.Fatalf("%s not probed", name)
		}
		if p.Min > p.Max {
			t.Fatalf("%s probed an inverted range [%d, %d]", name, p.Min, p.Max)
		}
		if p.Default.I < p.Min || p.Default.I > p.Max {
			t.Fatalf("%s default %d outside probed range [%d, %d]: the scale loop wrapped",
				name, p.Default.I, p.Min, p.Max)
		}
	}
	// The huge default cannot scale up at all (10x overflows), so its
	// range top must remain the default; scaling down still works.
	huge, _ := space.Lookup("x.huge")
	if huge.Max != math.MaxInt64/2+1 {
		t.Fatalf("x.huge Max = %d, want the unscalable default %d", huge.Max, int64(math.MaxInt64/2+1))
	}
	if huge.Min >= huge.Max {
		t.Fatalf("x.huge did not scale down: [%d, %d]", huge.Min, huge.Max)
	}
}

func TestMulInt64(t *testing.T) {
	cases := []struct {
		a, b int64
		want int64
		ok   bool
	}{
		{0, 10, 0, true},
		{5, 10, 50, true},
		{-5, 10, -50, true},
		{math.MaxInt64, 2, 0, false},
		{math.MaxInt64 / 2, 3, 0, false},
		{math.MinInt64, 1, math.MinInt64, true},
		{1, math.MinInt64, math.MinInt64, true},
		{math.MinInt64, -1, 0, false},
		{math.MinInt64, 10, 0, false},
		{math.MaxInt64, 1, math.MaxInt64, true},
	}
	for _, c := range cases {
		got, ok := mulInt64(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("mulInt64(%d, %d) = (%d, %v), want (%d, %v)", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestWallClockIdleAccounting(t *testing.T) {
	w := NewWallClock(3, 100)
	if w.IdleSec() != 0 {
		t.Fatalf("fresh wall clock idle = %v, want 0", w.IdleSec())
	}
	w.Worker(0).Advance(10)
	w.Worker(1).Advance(25)
	w.Worker(2).Advance(5)
	// Wall at 125: worker 0 idles 15, worker 1 idles 0, worker 2 idles 20.
	if got := w.WorkerIdleSec(0); got != 15 {
		t.Fatalf("worker 0 idle = %v, want 15", got)
	}
	if got := w.WorkerIdleSec(1); got != 0 {
		t.Fatalf("worker 1 idle = %v, want 0", got)
	}
	if got := w.IdleSec(); got != 35 {
		t.Fatalf("aggregate idle = %v, want 35", got)
	}
	// Compute + idle = workers × (wall − base).
	if total := w.ComputeSec() + w.IdleSec(); total != 3*25 {
		t.Fatalf("compute+idle = %v, want 75", total)
	}
}

func TestWallClockStall(t *testing.T) {
	w := NewWallClock(2, 0)
	w.Worker(0).Advance(10)
	w.Worker(1).Advance(30)
	// Worker 0 waits at a barrier until worker 1 finishes: its clock must
	// reach 30 but the 20s gap is idle, not compute.
	w.Stall(0, 30)
	if got := w.Worker(0).Now(); got != 30 {
		t.Fatalf("stalled clock at %v, want 30", got)
	}
	if got := w.ComputeSec(); got != 40 {
		t.Fatalf("compute = %v after stall, want the 40s actually evaluated", got)
	}
	if got := w.WorkerIdleSec(0); got != 20 {
		t.Fatalf("worker 0 idle = %v, want the 20s stall", got)
	}
	if got := w.IdleSec(); got != 20 {
		t.Fatalf("aggregate idle = %v, want 20", got)
	}
	// Stalling backwards is a no-op.
	w.Stall(1, 5)
	if got := w.Worker(1).Now(); got != 30 {
		t.Fatalf("backward stall moved the clock to %v", got)
	}
	if got := w.IdleSec(); got != 20 {
		t.Fatalf("backward stall changed idle to %v", got)
	}
	// Compute + idle still partitions workers × wall.
	if total := w.ComputeSec() + w.IdleSec(); total != 2*30 {
		t.Fatalf("compute+idle = %v, want 60", total)
	}
}

func TestWallClockMergesWorkers(t *testing.T) {
	w := NewWallClock(3, 100)
	if w.Workers() != 3 {
		t.Fatalf("workers = %d, want 3", w.Workers())
	}
	if w.Now() != 100 {
		t.Fatalf("fresh wall clock at %v, want the 100s baseline", w.Now())
	}
	if w.ComputeSec() != 0 {
		t.Fatalf("fresh compute = %v, want 0", w.ComputeSec())
	}
	w.Worker(0).Advance(10)
	w.Worker(1).Advance(25)
	w.Worker(2).Advance(5)
	if w.Now() != 125 {
		t.Fatalf("wall = %v, want max worker clock 125", w.Now())
	}
	if w.ComputeSec() != 40 {
		t.Fatalf("compute = %v, want sum of advances 40", w.ComputeSec())
	}
	// Worker clocks are ordinary clocks: negative advances ignored.
	w.Worker(1).Advance(-50)
	if w.Now() != 125 {
		t.Fatalf("negative advance moved the wall clock to %v", w.Now())
	}
}

func TestNewClockAt(t *testing.T) {
	c := NewClockAt(42)
	if c.Now() != 42 {
		t.Fatalf("clock at %v, want 42", c.Now())
	}
	c.Advance(8)
	if c.Now() != 50 {
		t.Fatalf("clock at %v after advance, want 50", c.Now())
	}
}
